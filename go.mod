module xmlproj

go 1.22
