package xmlproj

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// cacheEngineSetup builds an engine with a result cache plus two
// projectors (title, year) over the api DTD.
func cacheEngineSetup(t *testing.T) (*Engine, *DTD, *Projector, *Projector) {
	t.Helper()
	d, err := ParseDTDString(apiDTD, "")
	if err != nil {
		t.Fatal(err)
	}
	qt, err := CompileXPath("//book/title")
	if err != nil {
		t.Fatal(err)
	}
	qy, err := CompileXPath("//book/year")
	if err != nil {
		t.Fatal(err)
	}
	pt, err := d.Infer(Materialized, qt)
	if err != nil {
		t.Fatal(err)
	}
	py, err := d.Infer(Materialized, qy)
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(EngineOptions{ResultCacheBytes: 1 << 20}), d, pt, py
}

// TestEnginePruneGatherCacheDifferential sweeps documents × projectors
// × validate modes: a warm cache hit must return byte-identical output
// (and stats) to a fresh uncached prune, under distinct cache keys per
// variant.
func TestEnginePruneGatherCacheDifferential(t *testing.T) {
	eng, _, pt, py := cacheEngineSetup(t)
	docs := []string{
		apiDoc,
		`<bib></bib>`,
		`<bib><book isbn="3"><title>Orlando</title><author>Ariosto</author><year>1516</year></book></bib>`,
	}
	for di, doc := range docs {
		for pi, p := range []*Projector{pt, py} {
			for _, validate := range []bool{false, true} {
				label := fmt.Sprintf("doc%d/proj%d/validate=%v", di, pi, validate)
				opts := StreamOptions{Validate: validate}

				fresh, err := p.PruneGather([]byte(doc), opts)
				if err != nil {
					t.Fatalf("%s: fresh prune: %v", label, err)
				}
				want := fresh.Bytes()
				wantStats := fresh.Stats
				fresh.Close()

				cold, info, err := eng.PruneGather(p, []byte(doc), opts)
				if err != nil {
					t.Fatalf("%s: cold cached prune: %v", label, err)
				}
				if !info.Enabled || info.Hit {
					t.Fatalf("%s: cold info = %+v", label, info)
				}
				if got := cold.Bytes(); !bytes.Equal(got, want) {
					t.Fatalf("%s: cold output differs:\n got %q\nwant %q", label, got, want)
				}
				cold.Close()

				warm, winfo, err := eng.PruneGather(p, []byte(doc), opts)
				if err != nil {
					t.Fatalf("%s: warm cached prune: %v", label, err)
				}
				if !winfo.Hit {
					t.Fatalf("%s: warm prune missed the cache", label)
				}
				if winfo.ETag != info.ETag || winfo.Digest != info.Digest {
					t.Fatalf("%s: unstable cache identity: %+v vs %+v", label, winfo, info)
				}
				if got := warm.Bytes(); !bytes.Equal(got, want) {
					t.Fatalf("%s: warm output differs:\n got %q\nwant %q", label, got, want)
				}
				if warm.Stats != wantStats {
					t.Fatalf("%s: warm stats %+v != fresh %+v", label, warm.Stats, wantStats)
				}
				if warm.Len() != int64(len(want)) || warm.Segments() != 1 || warm.RawBytes() != 0 {
					t.Fatalf("%s: warm accessors: len=%d segments=%d raw=%d", label, warm.Len(), warm.Segments(), warm.RawBytes())
				}
				warm.Close()
			}
		}
	}

	// Every (doc, projector, validate) triple above is a distinct key:
	// no cross-variant hits.
	m := eng.Metrics()
	wantMisses := int64(len(docs) * 2 * 2)
	if m.ResultMisses != wantMisses || m.ResultHits != wantMisses {
		t.Fatalf("result cache hits=%d misses=%d, want %d each", m.ResultHits, m.ResultMisses, wantMisses)
	}
}

// TestEnginePruneGatherETags: ETags separate projectors and validate
// modes over one document, and separate documents under one projector.
func TestEnginePruneGatherETags(t *testing.T) {
	eng, _, pt, py := cacheEngineSetup(t)
	data := []byte(apiDoc)

	res, a, err := eng.PruneGather(pt, data, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
	res, b, err := eng.PruneGather(py, data, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
	res, c, err := eng.PruneGather(pt, data, StreamOptions{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
	res, d, err := eng.PruneGather(pt, []byte(`<bib></bib>`), StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res.Close()

	if a.ETag == b.ETag || a.ETag == c.ETag || a.ETag == d.ETag {
		t.Fatalf("ETags collide: %+v %+v %+v %+v", a, b, c, d)
	}
	if a.Digest != b.Digest || a.Digest != c.Digest {
		t.Fatalf("same document, different digests: %+v %+v %+v", a, b, c)
	}
	if a.Digest == d.Digest {
		t.Fatalf("different documents share a digest: %+v %+v", a, d)
	}
	if !strings.HasPrefix(a.ETag, `"`+a.Digest+"-") {
		t.Fatalf("ETag %q does not embed digest %q", a.ETag, a.Digest)
	}
	if got := eng.ResultETag(pt, a.Digest, false); got != a.ETag {
		t.Fatalf("ResultETag %q != served ETag %q", got, a.ETag)
	}

	// CachedLen peeks without counting.
	before := eng.Metrics()
	n, ok := eng.CachedLen(pt, a.Digest, false)
	if !ok || n <= 0 {
		t.Fatalf("CachedLen(cached entry) = %d, %v", n, ok)
	}
	if _, ok := eng.CachedLen(pt, d.Digest, true); ok {
		t.Fatalf("CachedLen hit an entry that was never cached")
	}
	if _, ok := eng.CachedLen(pt, "not-a-digest", false); ok {
		t.Fatalf("CachedLen accepted a malformed digest")
	}
	after := eng.Metrics()
	if after.ResultHits != before.ResultHits || after.ResultMisses != before.ResultMisses {
		t.Fatalf("CachedLen moved hit/miss counters: %+v -> %+v", before, after)
	}
}

// TestEnginePruneGatherBypasses: NoResultCache and the pipelined engine
// skip the cache entirely; a disabled engine never reports Enabled.
func TestEnginePruneGatherBypasses(t *testing.T) {
	eng, _, pt, _ := cacheEngineSetup(t)
	data := []byte(apiDoc)

	res, info, err := eng.PruneGather(pt, data, StreamOptions{NoResultCache: true})
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
	if info.Enabled {
		t.Fatalf("NoResultCache still touched the cache: %+v", info)
	}
	res, info, err = eng.PruneGather(pt, data, StreamOptions{Engine: PrunePipelined})
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
	if info.Enabled {
		t.Fatalf("forced pipelined engine touched the cache: %+v", info)
	}
	if m := eng.Metrics(); m.ResultMisses != 0 || m.ResultHits != 0 {
		t.Fatalf("bypassed prunes moved cache counters: %+v", m)
	}

	off := NewEngine(EngineOptions{})
	if off.ResultCacheEnabled() {
		t.Fatalf("engine without ResultCacheBytes has a cache")
	}
	res, info, err = off.PruneGather(pt, data, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
	if info.Enabled {
		t.Fatalf("disabled cache reported Enabled: %+v", info)
	}
	if _, ok := off.DigestBytes(data); ok {
		t.Fatalf("disabled cache still digests")
	}
}

// TestEnginePruneBytesCached: the writer-facing wrapper serves warm
// hits byte-identical to the projector's own PruneBytes.
func TestEnginePruneBytesCached(t *testing.T) {
	eng, _, pt, _ := cacheEngineSetup(t)
	data := []byte(apiDoc)

	var want bytes.Buffer
	wantStats, err := pt.PruneBytes(&want, data, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		var got bytes.Buffer
		st, info, err := eng.PruneBytes(pt, &got, data, StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("round %d: output differs:\n got %q\nwant %q", i, got.Bytes(), want.Bytes())
		}
		if st != wantStats {
			t.Fatalf("round %d: stats %+v != %+v", i, st, wantStats)
		}
		if info.Hit != (i > 0) {
			t.Fatalf("round %d: hit=%v", i, info.Hit)
		}
	}
}

// TestEngineMultiGatherUnaffectedByResultCache: the shared-scan multi
// path bypasses the result cache by construction; with a cache
// configured its outputs still match serial prunes and no result-cache
// counters move.
func TestEngineMultiGatherUnaffectedByResultCache(t *testing.T) {
	eng, _, pt, py := cacheEngineSetup(t)
	data := []byte(apiDoc)

	results, errs, _ := eng.PruneMultiGather([]*Projector{pt, py}, data, StreamOptions{})
	for j, p := range []*Projector{pt, py} {
		if errs[j] != nil {
			t.Fatalf("projector %d: %v", j, errs[j])
		}
		serial, err := p.PruneGather(data, StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(results[j].Bytes(), serial.Bytes()) {
			t.Fatalf("projector %d: multi output differs from serial", j)
		}
		serial.Close()
		results[j].Close()
	}
	if m := eng.Metrics(); m.ResultHits != 0 || m.ResultMisses != 0 {
		t.Fatalf("multi-projector path touched the result cache: %+v", m)
	}
}

// TestPruneResultReleaseContract: double-Close is a guarded no-op and
// use-after-Close degenerates safely — for both pooled-gather-backed
// and cache-entry-backed results.
func TestPruneResultReleaseContract(t *testing.T) {
	eng, _, pt, _ := cacheEngineSetup(t)
	data := []byte(apiDoc)

	cold, _, err := eng.PruneGather(pt, data, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	warm, info, err := eng.PruneGather(pt, data, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Hit {
		t.Fatal("second prune missed")
	}

	for name, res := range map[string]*PruneResult{"gather": cold, "cached": warm} {
		if res.Len() <= 0 {
			t.Fatalf("%s: empty result before Close", name)
		}
		if err := res.Close(); err != nil {
			t.Fatalf("%s: first Close: %v", name, err)
		}
		// Double-Close must not release anyone else's pooled state — in
		// particular not after the pool reissued the gather to the prune
		// below.
		other, err := pt.PruneGather(data, StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Close(); err != nil {
			t.Fatalf("%s: second Close: %v", name, err)
		}
		if got := other.Bytes(); len(got) == 0 {
			t.Fatalf("%s: double-Close clobbered a live result", name)
		}
		other.Close()

		if _, err := res.WriteTo(&bytes.Buffer{}); !errors.Is(err, ErrResultReleased) {
			t.Fatalf("%s: WriteTo after Close = %v, want ErrResultReleased", name, err)
		}
		if res.Bytes() != nil || res.Len() != 0 || res.RawBytes() != 0 || res.Segments() != 0 {
			t.Fatalf("%s: accessors alive after Close", name)
		}
	}
}
