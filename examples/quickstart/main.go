// Quickstart: infer a type projector for one query, prune a document,
// and check that the query result is unchanged.
package main

import (
	"fmt"
	"log"

	"xmlproj"
)

const catalogDTD = `
<!ELEMENT catalog (product*)>
<!ELEMENT product (name, price, stock?, review*)>
<!ATTLIST product sku CDATA #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT stock (#PCDATA)>
<!ELEMENT review (#PCDATA)>
`

const catalogDoc = `<catalog>
  <product sku="A1"><name>Compass</name><price>19</price><stock>4</stock><review>points north</review></product>
  <product sku="B2"><name>Lantern</name><price>35</price><review>bright</review><review>heavy</review></product>
  <product sku="C3"><name>Anchor</name><price>120</price><stock>1</stock></product>
</catalog>`

func main() {
	dtd, err := xmlproj.ParseDTDString(catalogDTD, "catalog")
	if err != nil {
		log.Fatal(err)
	}
	doc, err := xmlproj.ParseXMLString(catalogDoc)
	if err != nil {
		log.Fatal(err)
	}
	if err := dtd.Validate(doc); err != nil {
		log.Fatal(err)
	}

	// Products cheaper than 40, by name. The projector will discover that
	// stock and review subtrees are never needed.
	query, err := xmlproj.CompileXPath(`//product[price < 40]/name`)
	if err != nil {
		log.Fatal(err)
	}
	projector, err := dtd.Infer(xmlproj.Materialized, query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("data needs:", query.DataNeeds())
	fmt.Println("projector:", projector)

	pruned := projector.Prune(doc)
	fmt.Printf("document: %d -> %d bytes\n", doc.Size(), pruned.Size())
	fmt.Println("pruned:", pruned.XML())

	before, err := query.Evaluate(doc)
	if err != nil {
		log.Fatal(err)
	}
	after, err := query.Evaluate(pruned)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("result on original:", before.Serialized)
	fmt.Println("result on pruned:  ", after.Serialized)
	if before.Serialized != after.Serialized {
		log.Fatal("soundness violated?!")
	}
}
