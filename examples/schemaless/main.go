// Schemaless: pruning without a DTD (the paper's §7 extension). A
// dataguide — a structural summary in grammar form — is inferred from the
// document itself; the projector analysis then runs against it unchanged.
package main

import (
	"fmt"
	"log"

	"xmlproj"
)

// A feed-like document that ships with no schema.
const feed = `<feed>
  <meta><generator>handrolled</generator><fetched>2026-07-06</fetched></meta>
  <entry lang="en">
    <title>On projection</title>
    <body>Main memory is <em>finite</em>, documents are not.</body>
    <comments><c by="ada">nice</c><c by="bob">agreed</c></comments>
  </entry>
  <entry lang="it">
    <title>Sulla proiezione</title>
    <body>La memoria e finita.</body>
  </entry>
  <telemetry><blob>ZmlsbGVyIGJ5dGVzIG5vYm9keSBxdWVyaWVz</blob><blob>bW9yZSBmaWxsZXI=</blob></telemetry>
</feed>`

func main() {
	doc, err := xmlproj.ParseXMLString(feed)
	if err != nil {
		log.Fatal(err)
	}
	// No DTD anywhere: summarise the document itself.
	dtd, err := xmlproj.InferDTD(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("inferred dataguide:")
	fmt.Print(dtd.Grammar())

	q, err := xmlproj.CompileXPath(`//entry[@lang = "en"]/title`)
	if err != nil {
		log.Fatal(err)
	}
	p, err := dtd.Infer(xmlproj.Materialized, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nprojector:", p)

	pruned := p.Prune(doc)
	fmt.Printf("document: %d -> %d bytes (meta, bodies, comments and telemetry gone)\n",
		doc.Size(), pruned.Size())
	fmt.Println("pruned:", pruned.XML())

	before, _ := q.Evaluate(doc)
	after, err := q.Evaluate(pruned)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("result on original:", before.Serialized)
	fmt.Println("result on pruned:  ", after.Serialized)
}
