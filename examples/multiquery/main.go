// Multiquery: one projector for a bunch of queries (§5). Projectors are
// closed under union, so a workload of queries over the same document can
// share a single pruned copy — something the one-query-at-a-time pruner
// of Bressan et al. cannot do.
package main

import (
	"fmt"
	"log"

	"xmlproj"
)

const ordersDTD = `
<!ELEMENT orders (order*)>
<!ELEMENT order (customer, lines, shipping?, note*)>
<!ATTLIST order id CDATA #REQUIRED status (open|paid|shipped) "open">
<!ELEMENT customer (name, email)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT email (#PCDATA)>
<!ELEMENT lines (line+)>
<!ELEMENT line (product, qty, unitprice)>
<!ELEMENT product (#PCDATA)>
<!ELEMENT qty (#PCDATA)>
<!ELEMENT unitprice (#PCDATA)>
<!ELEMENT shipping (carrier, cost)>
<!ELEMENT carrier (#PCDATA)>
<!ELEMENT cost (#PCDATA)>
<!ELEMENT note (#PCDATA)>
`

const ordersDoc = `<orders>
  <order id="1" status="paid">
    <customer><name>Ada</name><email>ada@example.com</email></customer>
    <lines><line><product>compass</product><qty>2</qty><unitprice>19</unitprice></line></lines>
    <shipping><carrier>albatross</carrier><cost>7</cost></shipping>
    <note>gift wrap</note>
  </order>
  <order id="2">
    <customer><name>Bob</name><email>bob@example.com</email></customer>
    <lines>
      <line><product>lantern</product><qty>1</qty><unitprice>35</unitprice></line>
      <line><product>rope</product><qty>3</qty><unitprice>4</unitprice></line>
    </lines>
  </order>
</orders>`

func main() {
	dtd, err := xmlproj.ParseDTDString(ordersDTD, "orders")
	if err != nil {
		log.Fatal(err)
	}
	doc, err := xmlproj.ParseXMLString(ordersDoc)
	if err != nil {
		log.Fatal(err)
	}
	if err := dtd.Validate(doc); err != nil {
		log.Fatal(err)
	}

	// A reporting workload: three queries, two languages.
	sources := []string{
		`//order[@status = "paid"]/customer/name`,
		`for $o in /orders/order return <total id="{$o/@id}">{ sum($o/lines/line/unitprice) }</total>`,
		`count(//line)`,
	}
	queries := make([]*xmlproj.Query, len(sources))
	for i, src := range sources {
		q, err := xmlproj.Compile(src)
		if err != nil {
			log.Fatalf("%s: %v", src, err)
		}
		queries[i] = q
	}

	// One union projector serves all three queries.
	p, err := dtd.Infer(xmlproj.Materialized, queries...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("union projector keeps %.0f%% of the schema: %s\n", 100*p.KeepRatio(), p)

	pruned := p.Prune(doc)
	fmt.Printf("document: %d -> %d bytes (shipping and notes are gone)\n\n", doc.Size(), pruned.Size())

	for _, q := range queries {
		before, err := q.Evaluate(doc)
		if err != nil {
			log.Fatal(err)
		}
		after, err := q.Evaluate(pruned)
		if err != nil {
			log.Fatal(err)
		}
		status := "OK"
		if before.Serialized != after.Serialized {
			status = "MISMATCH"
		}
		fmt.Printf("[%s] %s\n  -> %s\n", status, q.Source(), after.Serialized)
	}
}
