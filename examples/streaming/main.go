// Streaming: prune a large document in one pass with constant memory,
// fused with DTD validation (§6: pruning "can be executed during parsing
// and/or validation and brings no overhead").
//
// The example synthesises a log-like document of configurable size on the
// fly, so the pruner's input never exists in memory at once, and streams
// it through PruneStreamValidating.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"time"

	"xmlproj"
)

const logDTD = `
<!ELEMENT log (entry*)>
<!ELEMENT entry (when, level, message, detail?)>
<!ATTLIST entry host CDATA #REQUIRED>
<!ELEMENT when (#PCDATA)>
<!ELEMENT level (#PCDATA)>
<!ELEMENT message (#PCDATA)>
<!ELEMENT detail (frame*)>
<!ELEMENT frame (#PCDATA)>
`

// logWriter synthesises <log> with n entries into w.
func writeLog(w io.Writer, n int) error {
	if _, err := io.WriteString(w, "<log>"); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		level := "info"
		detail := ""
		if i%17 == 0 {
			level = "error"
			detail = "<detail><frame>main.go:42</frame><frame>loop.go:7</frame><frame>sched.go:1203</frame></detail>"
		}
		if _, err := fmt.Fprintf(w,
			`<entry host="h%d"><when>2026-07-06T12:%02d:%02d</when><level>%s</level><message>unit %d reported a condition that operators may want to look at eventually</message>%s</entry>`,
			i%32, (i/60)%60, i%60, level, i, detail); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "</log>")
	return err
}

func main() {
	entries := flag.Int("entries", 200000, "number of log entries to synthesise")
	flag.Parse()

	dtd, err := xmlproj.ParseDTDString(logDTD, "log")
	if err != nil {
		log.Fatal(err)
	}
	// Keep only error entries' timestamps and stack frames.
	q, err := xmlproj.CompileXPath(`//entry[level = "error"]/detail/frame`)
	if err != nil {
		log.Fatal(err)
	}
	p, err := dtd.Infer(xmlproj.Materialized, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("projector:", p)

	// Producer goroutine -> pruner, no full document ever in memory.
	pr, pw := io.Pipe()
	go func() {
		pw.CloseWithError(writeLog(pw, *entries))
	}()

	counter := &countWriter{}
	start := time.Now()
	stats, err := p.PruneStreamValidating(counter, pr)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("pruned %d elements to %d in %s\n", stats.ElementsIn, stats.ElementsOut, elapsed)
	fmt.Printf("output: %d bytes; max open-element depth: %d (constant-memory pass)\n",
		counter.n, stats.MaxDepth)
	fmt.Printf("throughput: %.2f M elements/s\n",
		float64(stats.ElementsIn)/elapsed.Seconds()/1e6)
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}
