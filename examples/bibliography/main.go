// Bibliography: the paper's running example (§3). The query descends to
// author text, filters on the value "Dante", and climbs back up with the
// ancestor axis — the kind of backward navigation path-based pruners
// cannot analyse at all.
package main

import (
	"fmt"
	"log"

	"xmlproj"
)

const bibDTD = `
<!ELEMENT bib (book*)>
<!ELEMENT book (title, author+, year?, publisher?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
`

const bibDoc = `<bib>
  <book><title>Commedia</title><author>Dante</author><year>1313</year></book>
  <book><title>Decameron</title><author>Boccaccio</author><year>1353</year><publisher>Mondadori</publisher></book>
  <book><title>Canzoniere</title><author>Petrarca</author><author>Dante</author></book>
</bib>`

func main() {
	dtd, err := xmlproj.ParseDTDString(bibDTD, "bib")
	if err != nil {
		log.Fatal(err)
	}
	doc, err := xmlproj.ParseXMLString(bibDoc)
	if err != nil {
		log.Fatal(err)
	}
	if err := dtd.Validate(doc); err != nil {
		log.Fatal(err)
	}
	// The DTD is in the class for which the analysis is complete.
	fmt.Printf("DTD: *-guarded=%v non-recursive=%v parent-unambiguous=%v\n",
		dtd.IsStarGuarded(), !dtd.IsRecursive(), dtd.IsParentUnambiguous())

	// The paper's query Q: titles of books authored by Dante.
	q, err := xmlproj.CompileXPath(
		`/descendant::author/child::text()[self::node() = "Dante"]/ancestor::book/child::title`)
	if err != nil {
		log.Fatal(err)
	}
	p, err := dtd.Infer(xmlproj.Materialized, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("projector:", p)
	// year, publisher and their text are gone; author text is kept
	// because the predicate compares against it.
	for _, name := range []string{"year", "publisher", "author#text"} {
		fmt.Printf("  keeps %-12s %v\n", name+":", p.Has(name))
	}

	pruned := p.Prune(doc)
	fmt.Println("pruned document:", pruned.XML())

	before, _ := q.Evaluate(doc)
	after, err := q.Evaluate(pruned)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("titles on original:", before.Serialized)
	fmt.Println("titles on pruned:  ", after.Serialized)
}
