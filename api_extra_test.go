package xmlproj

import (
	"strings"
	"testing"
)

func TestProjectorMarshalRoundTrip(t *testing.T) {
	d, _ := apiSetup(t)
	q, _ := CompileXPath(`//book[year]/title`)
	p, err := d.Infer(Materialized, q)
	if err != nil {
		t.Fatal(err)
	}
	text, err := p.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := d.LoadProjector(text)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(p.Names(), " ") != strings.Join(p2.Names(), " ") {
		t.Fatalf("round trip changed projector:\n%v\n%v", p.Names(), p2.Names())
	}
	// The loaded projector prunes identically.
	doc, _ := ParseXMLString(apiDoc)
	if p.Prune(doc).XML() != p2.Prune(doc).XML() {
		t.Fatal("loaded projector prunes differently")
	}
}

func TestLoadProjectorRejectsForeignNames(t *testing.T) {
	d, _ := apiSetup(t)
	if _, err := d.LoadProjector([]byte("bib\nnotaname")); err == nil {
		t.Fatal("foreign name accepted")
	}
	// Attribute and text names of declared elements are fine.
	if _, err := d.LoadProjector([]byte("bib\nbook\nbook@isbn\ntitle#text")); err != nil {
		t.Fatal(err)
	}
	// The root is always re-added.
	p, err := d.LoadProjector([]byte("book"))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Has("bib") {
		t.Fatal("root not re-added")
	}
}

func TestParseDTDFromDoc(t *testing.T) {
	doc := `<!DOCTYPE bib [
<!ELEMENT bib (book*)>
<!ELEMENT book (title)>
<!ELEMENT title (#PCDATA)>
]>
<bib><book><title>t</title></book></bib>`
	d, err := ParseDTDFromDoc(doc)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root() != "bib" {
		t.Fatalf("root = %s", d.Root())
	}
	parsed, err := ParseXMLString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(parsed); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseDTDFromDoc(`<a/>`); err == nil {
		t.Fatal("doc without DOCTYPE accepted")
	}
}

func TestParseDTDWithEntities(t *testing.T) {
	d, err := ParseDTDString(`
<!ENTITY % kids "a | b">
<!ELEMENT r (%kids;)*>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b EMPTY>
`, "r")
	if err != nil {
		t.Fatal(err)
	}
	if d.Root() != "r" {
		t.Fatalf("root = %s", d.Root())
	}
	q, _ := CompileXPath("//a")
	if _, err := d.Infer(NodesOnly, q); err != nil {
		t.Fatal(err)
	}
}

func TestInferDTDDataguide(t *testing.T) {
	doc, err := ParseXMLString(`<r><a k="1"><b>x</b></a><a k="2"/><junk><blob>zzz</blob></junk></r>`)
	if err != nil {
		t.Fatal(err)
	}
	d, err := InferDTD(doc)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root() != "r" {
		t.Fatalf("root = %s", d.Root())
	}
	if err := d.Validate(doc); err != nil {
		t.Fatalf("document invalid against its own dataguide: %v", err)
	}
	q, _ := CompileXPath("//a[b]/@k")
	p, err := d.Infer(Materialized, q)
	if err != nil {
		t.Fatal(err)
	}
	pruned := p.Prune(doc)
	if p.Has("junk") || p.Has("blob") {
		t.Fatalf("dataguide projector keeps junk: %s", p)
	}
	r1, _ := q.Evaluate(doc)
	r2, err := q.Evaluate(pruned)
	if err != nil || r1.Serialized != r2.Serialized {
		t.Fatalf("schemaless pruning changed result: %q vs %q (%v)", r1.Serialized, r2.Serialized, err)
	}
}

func TestParseXSDAPI(t *testing.T) {
	xsdSrc := `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="r"><xs:complexType><xs:sequence>
    <xs:element name="a" type="xs:string" maxOccurs="unbounded"/>
    <xs:element name="b" type="xs:string" minOccurs="0"/>
  </xs:sequence></xs:complexType></xs:element>
</xs:schema>`
	d, err := ParseXSDString(xsdSrc, "")
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := ParseXMLString(`<r><a>one</a><a>two</a><b>x</b></r>`)
	if err := d.Validate(doc); err != nil {
		t.Fatal(err)
	}
	q, _ := CompileXPath("//a")
	p, err := d.Infer(Materialized, q)
	if err != nil {
		t.Fatal(err)
	}
	pruned := p.Prune(doc)
	if strings.Contains(pruned.XML(), "<b>") {
		t.Fatalf("b not pruned: %s", pruned.XML())
	}
	if _, err := ParseXSDString("<junk/>", ""); err == nil {
		t.Fatal("junk schema accepted")
	}
	if _, err := ParseXSDFile("/nonexistent.xsd", ""); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestStaticTypeAndCanMatch(t *testing.T) {
	d, _ := apiSetup(t)
	q, _ := CompileXPath("//book/title")
	typ := q.StaticType(d)
	if len(typ) != 1 || typ[0] != "title" {
		t.Fatalf("StaticType = %v", typ)
	}
	if !q.CanMatch(d) {
		t.Fatal("//book/title must be matchable")
	}
	// The emptiness diagnostic: a typo'd name can never match.
	typo, _ := CompileXPath("//book/titel")
	if typo.CanMatch(d) {
		t.Fatal("//book/titel should be statically empty")
	}
	// Structurally impossible navigation is caught too.
	impossible, _ := CompileXPath("/bib/title") // title is under book, not bib
	if impossible.CanMatch(d) {
		t.Fatal("/bib/title should be statically empty")
	}
	// Text and attribute results are typed as derived names.
	txt, _ := CompileXPath("//author/text()")
	if got := txt.StaticType(d); len(got) != 1 || got[0] != "author#text" {
		t.Fatalf("text StaticType = %v", got)
	}
	attr, _ := CompileXPath("//book/@isbn")
	if got := attr.StaticType(d); len(got) != 1 || got[0] != "book@isbn" {
		t.Fatalf("attr StaticType = %v", got)
	}
}

func TestIndentAndDefaultsAPI(t *testing.T) {
	d, err := ParseDTDString(`
<!ELEMENT bib (book*)>
<!ELEMENT book (title, author+)>
<!ATTLIST book isbn CDATA #REQUIRED lang (en|fr) "en">
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
`, "bib")
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := ParseXMLString(`<bib><book isbn="9"><title>t</title><author>a</author></book></bib>`)
	if n := d.ApplyDefaults(doc); n != 1 { // lang="en" default
		t.Fatalf("ApplyDefaults = %d", n)
	}
	if !strings.Contains(doc.XML(), `lang="en"`) {
		t.Fatalf("default missing: %s", doc.XML())
	}
	ind := doc.IndentedXML()
	if !strings.Contains(ind, "\n  <book") {
		t.Fatalf("IndentedXML:\n%s", ind)
	}
	if _, err := ParseXMLString(ind); err != nil {
		t.Fatalf("indented output does not re-parse: %v", err)
	}
}
