package xmlproj

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"xmlproj/internal/dtd"
	"xmlproj/internal/engine"
	"xmlproj/internal/prune"
	"xmlproj/internal/rescache"
)

// DefaultResultCacheBytes is the recommended result-cache budget for
// server deployments (the xmlprojd and xmlprune default): large enough
// to hold a working set of pruned outputs, small next to the document
// corpus the paper's workloads assume.
const DefaultResultCacheBytes int64 = 256 << 20

// CacheInfo describes how the engine's result cache handled one prune.
type CacheInfo struct {
	// Enabled reports that the call was eligible for the cache (a cache
	// is configured and nothing forced a bypass). When false the other
	// fields are zero.
	Enabled bool
	// Hit reports the prune was served from a cached entry — including
	// coalescing onto another caller's in-flight fill.
	Hit bool
	// Digest is the document's content digest (32 hex chars), the value
	// clients echo back in X-Doc-Digest for body-less revalidation.
	Digest string
	// ETag is the strong entity tag for the (document, projector,
	// validate) triple: quoted "digest-fingerprint".
	ETag string
}

// grammarFingerprint renders the grammar — root, edges, content models
// and attribute declarations (which dtd.String omits but inference
// uses) — and hashes it, so structurally identical schemas share cache
// entries.
func grammarFingerprint(g *dtd.DTD) string {
	var sb strings.Builder
	sb.WriteString(g.String())
	for _, n := range g.Names() {
		def := g.Def(n)
		for i := range def.Atts {
			a := &def.Atts[i]
			fmt.Fprintf(&sb, "att %s %s %q %v %q %v\n",
				a.Name, a.Type, strings.Join(a.Enum, "|"), a.Required, a.Default, a.HasDefault)
		}
	}
	return engine.Fingerprint(sb.String())
}

// dtdFPs memoizes grammar fingerprints per parsed grammar, so
// projectors built from the same *dtd.DTD (the common case: one schema,
// many projectors) render and hash it once. Keyed by pointer: the map
// holds as many entries as the process holds distinct live grammars.
var dtdFPs sync.Map // *dtd.DTD → string

func dtdFingerprintOf(g *dtd.DTD) string {
	if v, ok := dtdFPs.Load(g); ok {
		return v.(string)
	}
	fp := grammarFingerprint(g)
	dtdFPs.Store(g, fp)
	return fp
}

// resultFingerprint is the projection-variant half of a result-cache
// key and ETag: the schema fingerprint, the sorted projector names and
// the validate mode, hashed. Everything that changes the output bytes
// is in here; the prune engine is not, because every engine emits
// byte-identical output (differential-tested), so a result filled by
// one engine legitimately serves them all.
func (p *Projector) resultFingerprint(validate bool) string {
	p.fpOnce.Do(func() {
		names := p.pr.Names.Sorted()
		parts := make([]string, 0, len(names)+1)
		parts = append(parts, dtdFingerprintOf(p.d))
		for _, n := range names {
			parts = append(parts, string(n))
		}
		p.fp[0] = engine.Fingerprint(parts...)
		p.fp[1] = engine.Fingerprint(append(parts, "validate")...)
	})
	if validate {
		return p.fp[1]
	}
	return p.fp[0]
}

// etagOf renders the strong ETag for a (digest, fingerprint) pair.
func etagOf(digest, fp string) string {
	return `"` + digest + "-" + fp + `"`
}

// ResultCacheEnabled reports whether this engine was built with a
// result cache (EngineOptions.ResultCacheBytes > 0).
func (eng *Engine) ResultCacheEnabled() bool {
	return eng.e.ResultCache().Enabled()
}

// DigestBytes returns the content digest (32 hex chars) the result
// cache keys data under — the value ResultETag and PruneGatherDigest
// accept, and what xmlprojd returns in X-Doc-Digest. ok is false when
// the engine has no result cache (digests are then meaningless to it).
// Digests are stable within a process, not across restarts.
func (eng *Engine) DigestBytes(data []byte) (digest string, ok bool) {
	if !eng.ResultCacheEnabled() {
		return "", false
	}
	return rescache.DigestBytes(data).String(), true
}

// ResultETag composes the strong ETag for (document digest, projector,
// validate): the token a client revalidates with via If-None-Match.
// Empty when the digest is empty or the cache is disabled.
func (eng *Engine) ResultETag(p *Projector, docDigest string, validate bool) string {
	if docDigest == "" || !eng.ResultCacheEnabled() {
		return ""
	}
	return etagOf(docDigest, p.resultFingerprint(validate))
}

// CachedLen peeks at the result cache: the rendered output size for
// (document digest, projector, validate) if it is cached right now.
// No prune runs and no hit/miss counters move — this is the HEAD path.
func (eng *Engine) CachedLen(p *Projector, docDigest string, validate bool) (int64, bool) {
	c := eng.e.ResultCache()
	if !c.Enabled() {
		return 0, false
	}
	dig, err := rescache.ParseDigest(docDigest)
	if err != nil {
		return 0, false
	}
	entry, ok := c.Get(rescache.Key{Doc: dig, Variant: p.resultFingerprint(validate)})
	if !ok {
		return 0, false
	}
	return entry.Len(), true
}

// PruneGather is Projector.PruneGather routed through the engine's
// result cache: the document is digested, and a repeat (digest,
// projector, validate) triple is served from cached bytes — byte
// identical to a fresh prune — without scanning the document. Cold
// triples prune once (concurrent duplicates coalesce onto one fill)
// and leave a materialized copy behind, subject to the byte budget.
// The caller must Close the result either way.
//
// The cache is bypassed (info.Enabled false, plain prune) when the
// engine has no cache, opts.NoResultCache is set, or the pipelined
// engine is forced — pipelined semantics are about streaming bounded
// windows, which an in-memory cached serve would misrepresent.
func (eng *Engine) PruneGather(p *Projector, data []byte, opts StreamOptions) (*PruneResult, CacheInfo, error) {
	return eng.PruneGatherDigest(p, data, "", opts)
}

// PruneGatherDigest is PruneGather with the document digest already in
// hand (as returned by DigestBytes) so callers that digested the body
// for ETag purposes don't hash it twice. An empty or malformed digest
// is computed from data instead.
func (eng *Engine) PruneGatherDigest(p *Projector, data []byte, docDigest string, opts StreamOptions) (*PruneResult, CacheInfo, error) {
	c := eng.e.ResultCache()
	if !c.Enabled() || opts.NoResultCache || opts.Engine == PrunePipelined {
		res, err := p.PruneGather(data, opts)
		return res, CacheInfo{}, err
	}
	var dig rescache.Digest
	if docDigest != "" {
		if d, err := rescache.ParseDigest(docDigest); err == nil {
			dig = d
		}
	}
	if dig.IsZero() {
		dig = rescache.DigestBytes(data)
	}
	fp := p.resultFingerprint(opts.Validate)
	info := CacheInfo{Enabled: true, Digest: dig.String(), ETag: etagOf(dig.String(), fp)}

	proj := eng.e.ProjectionFor(p.d, p.pr.Names)
	entry, g, st, hit, err := eng.e.CachedGather(rescache.Key{Doc: dig, Variant: fp}, func() (*prune.Gather, prune.Stats, error) {
		popts, finish := streamOptsOf(opts)
		popts.Projection = proj
		gg, gst, gerr := prune.StreamGather(data, p.d, p.pr.Names, popts)
		finish()
		return gg, gst, gerr
	})
	if err != nil {
		return nil, info, err
	}
	info.Hit = hit
	if g != nil {
		return &PruneResult{Stats: pruneStatsOf(st), g: g}, info, nil
	}
	return &PruneResult{Stats: pruneStatsOf(entry.Stats), cached: entry}, info, nil
}

// PruneBytes is Projector.PruneBytes routed through the engine's result
// cache (see PruneGather for eligibility and semantics): the pruned
// output is written to dst, from cached bytes on a hit.
func (eng *Engine) PruneBytes(p *Projector, dst io.Writer, data []byte, opts StreamOptions) (PruneStats, CacheInfo, error) {
	if !eng.ResultCacheEnabled() || opts.NoResultCache || opts.Engine == PrunePipelined {
		st, err := p.PruneBytes(dst, data, opts)
		return st, CacheInfo{}, err
	}
	res, info, err := eng.PruneGatherDigest(p, data, "", opts)
	if err != nil {
		return PruneStats{}, info, err
	}
	defer res.Close()
	if _, werr := res.WriteTo(dst); werr != nil {
		return res.Stats, info, werr
	}
	return res.Stats, info, nil
}
