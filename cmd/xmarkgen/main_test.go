package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"xmlproj"
)

func TestRunGeneratesValidDocument(t *testing.T) {
	var doc, dtdSrc, errBuf bytes.Buffer
	if err := run([]string{"-factor", "0.001", "-seed", "7"}, &doc, &errBuf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dtd"}, &dtdSrc, &errBuf); err != nil {
		t.Fatal(err)
	}
	d, err := xmlproj.ParseDTDString(dtdSrc.String(), "site")
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := xmlproj.ParseXMLString(doc.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(parsed); err != nil {
		t.Fatalf("generated document invalid: %v", err)
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b, errBuf bytes.Buffer
	if err := run([]string{"-factor", "0.001", "-seed", "3"}, &a, &errBuf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-factor", "0.001", "-seed", "3"}, &b, &errBuf); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different output")
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.xml")
	var silent, errBuf bytes.Buffer
	if err := run([]string{"-factor", "0.001", "-o", path}, &silent, &errBuf); err != nil {
		t.Fatal(err)
	}
	doc, err := xmlproj.ParseXMLFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc.XML(), "<site>") {
		t.Fatal("file content wrong")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-nonsense"}, &out, &errBuf); err == nil {
		t.Fatal("bad flag accepted")
	}
}
