// Command xmarkgen generates XMark auction documents (the repository's
// stand-in for the benchmark's xmlgen). A factor-1.0 document is roughly
// 100 MB.
//
// Usage:
//
//	xmarkgen -factor 0.01 -seed 42 -o auction.xml
//	xmarkgen -factor 0.01 -dtd          # print the auction DTD instead
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"xmlproj/internal/xmark"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "xmarkgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("xmarkgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	factor := fs.Float64("factor", 0.01, "XMark scale factor (1.0 ≈ 100 MB)")
	seed := fs.Int64("seed", 42, "generator seed (same factor+seed → identical document)")
	out := fs.String("o", "", "output file (default stdout)")
	dtdOnly := fs.Bool("dtd", false, "print the auction DTD and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	defer bw.Flush()

	if *dtdOnly {
		_, err := io.WriteString(bw, xmark.DTDSource)
		return err
	}
	doc := xmark.NewGenerator(*factor, *seed).Document()
	if err := doc.WriteXML(bw); err != nil {
		return err
	}
	_, err := fmt.Fprintln(bw)
	return err
}
