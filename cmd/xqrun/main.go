// Command xqrun evaluates an XPath or XQuery query over a document with
// the repository's in-memory engine, optionally pruning the document
// first, and reports time and memory.
//
// Usage:
//
//	xqrun -q '//person[homepage]/name' -in auction.xml
//	xqrun -q 'for $i in /site/regions/australia/item return $i/name' \
//	      -in auction.xml -dtd auction.dtd -prune
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"xmlproj"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "xqrun:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("xqrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	qsrc := fs.String("q", "", "query (XPath or XQuery; required)")
	in := fs.String("in", "", "input document (required)")
	dtdPath := fs.String("dtd", "", "DTD file (required with -prune)")
	root := fs.String("root", "", "root element (default: first declared)")
	pruneFirst := fs.Bool("prune", false, "prune with the inferred projector before evaluating")
	quiet := fs.Bool("quiet", false, "suppress the result, print only statistics")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *qsrc == "" || *in == "" {
		fs.Usage()
		return fmt.Errorf("-q and -in are required")
	}
	q, err := xmlproj.Compile(*qsrc)
	if err != nil {
		return err
	}

	raw, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	input := string(raw)

	if *pruneFirst {
		if *dtdPath == "" {
			return fmt.Errorf("-prune requires -dtd")
		}
		d, err := parseSchema(*dtdPath, *root)
		if err != nil {
			return err
		}
		p, err := d.Infer(xmlproj.Materialized, q)
		if err != nil {
			return err
		}
		var pruned strings.Builder
		start := time.Now()
		stats, err := p.PruneStream(&pruned, strings.NewReader(input))
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "xqrun: pruned %d -> %d bytes in %s\n",
			len(input), stats.BytesOut, time.Since(start))
		input = pruned.String()
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	doc, err := xmlproj.ParseXMLString(input)
	if err != nil {
		return err
	}
	res, err := q.Evaluate(doc)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	if !*quiet {
		fmt.Fprintln(stdout, res.Serialized)
	}
	fmt.Fprintf(stderr, "xqrun: %d item(s) in %s using %.1f MB allocated\n",
		res.Count, elapsed, float64(after.TotalAlloc-before.TotalAlloc)/(1<<20))
	return nil
}

// parseSchema loads a DTD, or an XML Schema when the file has an .xsd
// extension (lowered to a local tree grammar per the paper's footnote 1).
func parseSchema(path, root string) (*xmlproj.DTD, error) {
	if strings.HasSuffix(path, ".xsd") {
		return xmlproj.ParseXSDFile(path, root)
	}
	return xmlproj.ParseDTDFile(path, root)
}
