package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testDTD = `
<!ELEMENT bib (book*)>
<!ELEMENT book (title, author+)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
`

const testDoc = `<bib><book><title>Commedia</title><author>Dante</author></book><book><title>Decameron</title><author>Boccaccio</author></book></bib>`

func setup(t *testing.T) (dtdPath, docPath string) {
	t.Helper()
	dir := t.TempDir()
	dtdPath = filepath.Join(dir, "bib.dtd")
	docPath = filepath.Join(dir, "bib.xml")
	if err := os.WriteFile(dtdPath, []byte(testDTD), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(docPath, []byte(testDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	return dtdPath, docPath
}

func TestRunXPath(t *testing.T) {
	_, docPath := setup(t)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-q", "//title/text()", "-in", docPath}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(out.String()); got != "Commedia\nDecameron" {
		t.Fatalf("output = %q", got)
	}
	if !strings.Contains(errBuf.String(), "2 item(s)") {
		t.Fatalf("stats = %q", errBuf.String())
	}
}

func TestRunXQuery(t *testing.T) {
	_, docPath := setup(t)
	var out, errBuf bytes.Buffer
	err := run([]string{"-q", `for $b in /bib/book return <a>{ $b/author/text() }</a>`, "-in", docPath}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "<a>Dante</a>") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestRunWithPrune(t *testing.T) {
	dtdPath, docPath := setup(t)
	var plain, prunedOut, errBuf bytes.Buffer
	if err := run([]string{"-q", "//title/text()", "-in", docPath}, &plain, &errBuf); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-q", "//title/text()", "-in", docPath, "-dtd", dtdPath, "-prune"}, &prunedOut, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != prunedOut.String() {
		t.Fatalf("pruned run differs:\n%q\n%q", plain.String(), prunedOut.String())
	}
	if !strings.Contains(errBuf.String(), "pruned") {
		t.Fatalf("prune stats missing: %q", errBuf.String())
	}
}

func TestRunQuiet(t *testing.T) {
	_, docPath := setup(t)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-q", "//title", "-in", docPath, "-quiet"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("quiet run produced output: %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	dtdPath, docPath := setup(t)
	var out, errBuf bytes.Buffer
	if err := run(nil, &out, &errBuf); err == nil {
		t.Fatal("missing args accepted")
	}
	if err := run([]string{"-q", "//a", "-in", "/nonexistent.xml"}, &out, &errBuf); err == nil {
		t.Fatal("missing doc accepted")
	}
	if err := run([]string{"-q", "//a", "-in", docPath, "-prune"}, &out, &errBuf); err == nil {
		t.Fatal("-prune without -dtd accepted")
	}
	_ = dtdPath
}
