package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testDTD = `
<!ELEMENT bib (book*)>
<!ELEMENT book (title, author+, year?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`

const testDoc = `<bib><book><title>Commedia</title><author>Dante</author><year>1313</year></book></bib>`

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPrunes(t *testing.T) {
	dir := t.TempDir()
	dtdPath := write(t, dir, "bib.dtd", testDTD)
	var out, errBuf bytes.Buffer
	err := run([]string{"-dtd", dtdPath, "-q", "//book/title"},
		strings.NewReader(testDoc), &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "<title>Commedia</title>") {
		t.Fatalf("title lost: %s", got)
	}
	if strings.Contains(got, "Dante") || strings.Contains(got, "1313") {
		t.Fatalf("authors/years not pruned: %s", got)
	}
	if !strings.Contains(errBuf.String(), "pruned in") {
		t.Fatalf("stats missing: %s", errBuf.String())
	}
}

func TestRunShow(t *testing.T) {
	dir := t.TempDir()
	dtdPath := write(t, dir, "bib.dtd", testDTD)
	var out, errBuf bytes.Buffer
	err := run([]string{"-dtd", dtdPath, "-q", "//book/year", "-show"},
		strings.NewReader(""), &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "year") || strings.Contains(out.String(), "author") {
		t.Fatalf("-show output wrong: %s", out.String())
	}
}

func TestRunSaveAndLoadProjector(t *testing.T) {
	dir := t.TempDir()
	dtdPath := write(t, dir, "bib.dtd", testDTD)
	projPath := filepath.Join(dir, "pi.txt")
	var out1, out2, errBuf bytes.Buffer
	if err := run([]string{"-dtd", dtdPath, "-q", "//book/title", "-save-projector", projPath},
		strings.NewReader(testDoc), &out1, &errBuf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dtd", dtdPath, "-load-projector", projPath},
		strings.NewReader(testDoc), &out2, &errBuf); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Fatalf("loaded projector prunes differently:\n%s\n%s", out1.String(), out2.String())
	}
}

func TestRunValidateRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	dtdPath := write(t, dir, "bib.dtd", testDTD)
	var out, errBuf bytes.Buffer
	err := run([]string{"-dtd", dtdPath, "-q", "//title", "-validate"},
		strings.NewReader(`<bib><book><author>no title</author></book></bib>`), &out, &errBuf)
	if err == nil {
		t.Fatal("invalid document accepted with -validate")
	}
}

// TestRunFailureLeavesNoPartialOutput: a prune failing mid-stream must
// not leave a truncated output document behind.
func TestRunFailureLeavesNoPartialOutput(t *testing.T) {
	dir := t.TempDir()
	dtdPath := write(t, dir, "bib.dtd", testDTD)
	outPath := filepath.Join(dir, "pruned.xml")
	// The document starts valid (so output is written) and then hits an
	// undeclared element, failing the prune mid-stream.
	bad := `<bib><book><title>Commedia</title></book><wrong></wrong></bib>`
	var out, errBuf bytes.Buffer
	err := run([]string{"-dtd", dtdPath, "-q", "//book/title", "-out", outPath},
		strings.NewReader(bad), &out, &errBuf)
	if err == nil {
		t.Fatal("failed prune reported success")
	}
	if _, serr := os.Stat(outPath); !os.IsNotExist(serr) {
		t.Fatalf("partial output file left behind: %v", serr)
	}
}

// TestRunLoadProjectorDoesNotClaimInference: with -load-projector the
// analysis never ran, so the stats line must not say "inferred in".
func TestRunLoadProjectorDoesNotClaimInference(t *testing.T) {
	dir := t.TempDir()
	dtdPath := write(t, dir, "bib.dtd", testDTD)
	projPath := filepath.Join(dir, "pi.txt")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-dtd", dtdPath, "-q", "//book/title", "-save-projector", projPath},
		strings.NewReader(testDoc), &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errBuf.String(), "inferred in") {
		t.Fatalf("inference run should report its time: %s", errBuf.String())
	}
	errBuf.Reset()
	out.Reset()
	if err := run([]string{"-dtd", dtdPath, "-load-projector", projPath},
		strings.NewReader(testDoc), &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(errBuf.String(), "inferred in") {
		t.Fatalf("-load-projector claims an inference happened: %s", errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "pruned in") {
		t.Fatalf("stats line missing: %s", errBuf.String())
	}
	// -show on a loaded projector reports its origin, not a bogus time.
	errBuf.Reset()
	out.Reset()
	if err := run([]string{"-dtd", dtdPath, "-load-projector", projPath, "-show"},
		strings.NewReader(""), &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "inferred in") || !strings.Contains(out.String(), "loaded from") {
		t.Fatalf("-show origin wrong: %s", out.String())
	}
}

// TestRunManyInputs drives the batch path: repeatable -in, globs, -jobs,
// and an output directory.
func TestRunManyInputs(t *testing.T) {
	dir := t.TempDir()
	dtdPath := write(t, dir, "bib.dtd", testDTD)
	for i := 0; i < 5; i++ {
		doc := strings.Replace(testDoc, "Commedia", "Book"+string(rune('A'+i)), 1)
		write(t, dir, "doc"+string(rune('a'+i))+".xml", doc)
	}
	outDir := filepath.Join(dir, "pruned")
	var out, errBuf bytes.Buffer
	err := run([]string{"-dtd", dtdPath, "-q", "//book/title",
		"-in", filepath.Join(dir, "doc*.xml"), "-jobs", "3", "-out", outDir},
		strings.NewReader(""), &out, &errBuf)
	if err != nil {
		t.Fatalf("%v (stderr: %s)", err, errBuf.String())
	}
	for i := 0; i < 5; i++ {
		name := "doc" + string(rune('a'+i)) + ".xml"
		data, rerr := os.ReadFile(filepath.Join(outDir, name))
		if rerr != nil {
			t.Fatal(rerr)
		}
		if want := "Book" + string(rune('A'+i)); !strings.Contains(string(data), want) {
			t.Fatalf("%s: pruned output lost %s: %s", name, want, data)
		}
		if strings.Contains(string(data), "Dante") {
			t.Fatalf("%s: authors not pruned: %s", name, data)
		}
	}
	if !strings.Contains(errBuf.String(), "pruned 5/5 documents") {
		t.Fatalf("batch summary missing: %s", errBuf.String())
	}

	// A failing document: fail-fast by default (non-zero exit, its
	// output removed), -keep-going prunes the rest.
	write(t, dir, "bad.xml", `<bib><oops/></bib>`)
	outDir2 := filepath.Join(dir, "pruned2")
	errBuf.Reset()
	err = run([]string{"-dtd", dtdPath, "-q", "//book/title",
		"-in", filepath.Join(dir, "bad.xml"), "-in", filepath.Join(dir, "doca.xml"),
		"-jobs", "1", "-keep-going", "-out", outDir2},
		strings.NewReader(""), &out, &errBuf)
	if err == nil {
		t.Fatal("batch with a bad document reported success")
	}
	if _, serr := os.Stat(filepath.Join(outDir2, "bad.xml")); !os.IsNotExist(serr) {
		t.Fatal("failed job left a partial output")
	}
	if _, serr := os.Stat(filepath.Join(outDir2, "doca.xml")); serr != nil {
		t.Fatalf("-keep-going did not prune the healthy document: %v", serr)
	}

	// Multiple inputs to stdout is rejected.
	if err := run([]string{"-dtd", dtdPath, "-q", "//book/title",
		"-in", filepath.Join(dir, "doca.xml"), "-in", filepath.Join(dir, "docb.xml")},
		strings.NewReader(""), &out, &errBuf); err == nil {
		t.Fatal("multiple inputs without -out accepted")
	}
	// A glob that matches nothing is rejected.
	if err := run([]string{"-dtd", dtdPath, "-q", "//book/title",
		"-in", filepath.Join(dir, "nothing*.xml"), "-out", outDir},
		strings.NewReader(""), &out, &errBuf); err == nil {
		t.Fatal("empty glob accepted")
	}
}

func TestRunMissingArgs(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run(nil, strings.NewReader(""), &out, &errBuf); err == nil {
		t.Fatal("missing -dtd/-q accepted")
	}
	dir := t.TempDir()
	dtdPath := write(t, dir, "bib.dtd", testDTD)
	if err := run([]string{"-dtd", dtdPath, "-q", "]broken["},
		strings.NewReader(""), &out, &errBuf); err == nil {
		t.Fatal("broken query accepted")
	}
	if err := run([]string{"-dtd", filepath.Join(dir, "missing.dtd"), "-q", "//a"},
		strings.NewReader(""), &out, &errBuf); err == nil {
		t.Fatal("missing DTD file accepted")
	}
}

func TestRunMultiProj(t *testing.T) {
	dir := t.TempDir()
	dtdPath := write(t, dir, "bib.dtd", testDTD)
	docPath := write(t, dir, "bib.xml", testDoc)
	outDir := filepath.Join(dir, "out")

	var out, errBuf bytes.Buffer
	err := run([]string{
		"-dtd", dtdPath, "-in", docPath, "-out", outDir,
		"-proj", "titles=//book/title",
		"-proj", "authors=//book/author",
	}, strings.NewReader(""), &out, &errBuf)
	if err != nil {
		t.Fatalf("%v\nstderr: %s", err, errBuf.String())
	}

	// Each output must match a serial single-projection run.
	for _, c := range []struct{ name, query, want, reject string }{
		{"titles", "//book/title", "Commedia", "Dante"},
		{"authors", "//book/author", "Dante", "Commedia"},
	} {
		got, rerr := os.ReadFile(filepath.Join(outDir, c.name+".xml"))
		if rerr != nil {
			t.Fatal(rerr)
		}
		if !strings.Contains(string(got), c.want) || strings.Contains(string(got), c.reject) {
			t.Fatalf("%s output wrong: %s", c.name, got)
		}
		var serial, serialErr bytes.Buffer
		if err := run([]string{"-dtd", dtdPath, "-q", c.query},
			strings.NewReader(testDoc), &serial, &serialErr); err != nil {
			t.Fatal(err)
		}
		if serial.String() != string(got) {
			t.Fatalf("%s diverges from serial prune\nmulti:  %q\nserial: %q", c.name, got, serial.String())
		}
	}
	if !strings.Contains(errBuf.String(), "shared scan") {
		t.Fatalf("summary missing: %s", errBuf.String())
	}
}

func TestRunMultiProjSingleToStdout(t *testing.T) {
	dir := t.TempDir()
	dtdPath := write(t, dir, "bib.dtd", testDTD)
	var out, errBuf bytes.Buffer
	err := run([]string{"-dtd", dtdPath, "-proj", "titles=//book/title"},
		strings.NewReader(testDoc), &out, &errBuf)
	if err != nil {
		t.Fatalf("%v\nstderr: %s", err, errBuf.String())
	}
	if !strings.Contains(out.String(), "<title>Commedia</title>") || strings.Contains(out.String(), "Dante") {
		t.Fatalf("stdout output wrong: %s", out.String())
	}
}

func TestRunMultiProjBadSpecs(t *testing.T) {
	dir := t.TempDir()
	dtdPath := write(t, dir, "bib.dtd", testDTD)
	for _, args := range [][]string{
		{"-dtd", dtdPath, "-proj", "noequals"},
		{"-dtd", dtdPath, "-proj", "a=//book/title", "-proj", "a=//book/year"},
		{"-dtd", dtdPath, "-proj", "a=//book/title", "-q", "//book/year"},
		{"-dtd", dtdPath, "-proj", "a=//book/title", "-proj", "b=//book/year"}, // two projs, no -out
	} {
		var out, errBuf bytes.Buffer
		if err := run(args, strings.NewReader(testDoc), &out, &errBuf); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// TestRunMultiProjStdinBounded: the -proj shared scan buffers stdin
// whole, so the read is capped — an over-limit pipe is rejected with a
// clear error instead of swallowing unbounded memory.
func TestRunMultiProjStdinBounded(t *testing.T) {
	dir := t.TempDir()
	dtdPath := write(t, dir, "bib.dtd", testDTD)

	prev := maxMultiStdinBytes
	maxMultiStdinBytes = 64
	defer func() { maxMultiStdinBytes = prev }()

	var out, errBuf bytes.Buffer
	err := run([]string{"-dtd", dtdPath, "-proj", "titles=//book/title"},
		strings.NewReader(testDoc), &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "stdin input exceeds") {
		t.Fatalf("oversized stdin accepted: %v", err)
	}

	// At the limit exactly, the prune still runs.
	maxMultiStdinBytes = int64(len(testDoc))
	out.Reset()
	if err := run([]string{"-dtd", dtdPath, "-proj", "titles=//book/title"},
		strings.NewReader(testDoc), &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "<title>Commedia</title>") {
		t.Fatalf("output wrong: %s", out.String())
	}
}

// TestRunBatchResultCache: duplicate documents in a batch hit the
// result cache — both output files are byte-identical to a fresh prune
// and the summary reports the hit ratio.
func TestRunBatchResultCache(t *testing.T) {
	dir := t.TempDir()
	dtdPath := write(t, dir, "bib.dtd", testDTD)
	a := write(t, dir, "a.xml", testDoc)
	b := write(t, dir, "b.xml", testDoc) // same content, different file
	outDir := filepath.Join(dir, "out")

	var out, errBuf bytes.Buffer
	err := run([]string{"-dtd", dtdPath, "-q", "//book/title", "-jobs", "1",
		"-in", a, "-in", b, "-out", outDir},
		strings.NewReader(""), &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	got1, err := os.ReadFile(filepath.Join(outDir, "a.xml"))
	if err != nil {
		t.Fatal(err)
	}
	got2, err := os.ReadFile(filepath.Join(outDir, "b.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, got2) || !strings.Contains(string(got1), "<title>Commedia</title>") {
		t.Fatalf("outputs differ or lost the title:\n a: %s\n b: %s", got1, got2)
	}
	if !strings.Contains(errBuf.String(), "result cache: 1/2 prunes served from cache (50% hit ratio)") {
		t.Fatalf("missing cache summary: %s", errBuf.String())
	}

	// With the cache off the summary line disappears and output parity
	// holds regardless.
	errBuf.Reset()
	err = run([]string{"-dtd", dtdPath, "-q", "//book/title", "-jobs", "1", "-result-cache", "0",
		"-in", a, "-in", b, "-out", filepath.Join(dir, "out2")},
		strings.NewReader(""), &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := os.ReadFile(filepath.Join(dir, "out2", "b.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(uncached, got2) {
		t.Fatalf("cached output differs from uncached:\n cached: %s\nuncached: %s", got2, uncached)
	}
	if strings.Contains(errBuf.String(), "result cache:") {
		t.Fatalf("disabled cache still summarised: %s", errBuf.String())
	}
}

// TestExpandInputsDedupe: overlapping patterns yield each path once.
func TestExpandInputsDedupe(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.xml", testDoc)
	got, err := expandInputs([]string{a, filepath.Join(dir, "*.xml"), a})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != a {
		t.Fatalf("expandInputs = %v, want just %q", got, a)
	}
}
