package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testDTD = `
<!ELEMENT bib (book*)>
<!ELEMENT book (title, author+, year?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`

const testDoc = `<bib><book><title>Commedia</title><author>Dante</author><year>1313</year></book></bib>`

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPrunes(t *testing.T) {
	dir := t.TempDir()
	dtdPath := write(t, dir, "bib.dtd", testDTD)
	var out, errBuf bytes.Buffer
	err := run([]string{"-dtd", dtdPath, "-q", "//book/title"},
		strings.NewReader(testDoc), &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "<title>Commedia</title>") {
		t.Fatalf("title lost: %s", got)
	}
	if strings.Contains(got, "Dante") || strings.Contains(got, "1313") {
		t.Fatalf("authors/years not pruned: %s", got)
	}
	if !strings.Contains(errBuf.String(), "pruned in") {
		t.Fatalf("stats missing: %s", errBuf.String())
	}
}

func TestRunShow(t *testing.T) {
	dir := t.TempDir()
	dtdPath := write(t, dir, "bib.dtd", testDTD)
	var out, errBuf bytes.Buffer
	err := run([]string{"-dtd", dtdPath, "-q", "//book/year", "-show"},
		strings.NewReader(""), &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "year") || strings.Contains(out.String(), "author") {
		t.Fatalf("-show output wrong: %s", out.String())
	}
}

func TestRunSaveAndLoadProjector(t *testing.T) {
	dir := t.TempDir()
	dtdPath := write(t, dir, "bib.dtd", testDTD)
	projPath := filepath.Join(dir, "pi.txt")
	var out1, out2, errBuf bytes.Buffer
	if err := run([]string{"-dtd", dtdPath, "-q", "//book/title", "-save-projector", projPath},
		strings.NewReader(testDoc), &out1, &errBuf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dtd", dtdPath, "-load-projector", projPath},
		strings.NewReader(testDoc), &out2, &errBuf); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Fatalf("loaded projector prunes differently:\n%s\n%s", out1.String(), out2.String())
	}
}

func TestRunValidateRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	dtdPath := write(t, dir, "bib.dtd", testDTD)
	var out, errBuf bytes.Buffer
	err := run([]string{"-dtd", dtdPath, "-q", "//title", "-validate"},
		strings.NewReader(`<bib><book><author>no title</author></book></bib>`), &out, &errBuf)
	if err == nil {
		t.Fatal("invalid document accepted with -validate")
	}
}

func TestRunMissingArgs(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run(nil, strings.NewReader(""), &out, &errBuf); err == nil {
		t.Fatal("missing -dtd/-q accepted")
	}
	dir := t.TempDir()
	dtdPath := write(t, dir, "bib.dtd", testDTD)
	if err := run([]string{"-dtd", dtdPath, "-q", "]broken["},
		strings.NewReader(""), &out, &errBuf); err == nil {
		t.Fatal("broken query accepted")
	}
	if err := run([]string{"-dtd", filepath.Join(dir, "missing.dtd"), "-q", "//a"},
		strings.NewReader(""), &out, &errBuf); err == nil {
		t.Fatal("missing DTD file accepted")
	}
}
