// Command xmlprune prunes an XML document for a set of queries: it
// infers the type projector from the DTD and the queries' data needs,
// then streams the document through the one-pass pruner.
//
// Usage:
//
//	xmlprune -dtd auction.dtd -root site -q '//person[homepage]/name' \
//	         -q 'for $i in /site/regions/australia/item return $i/name' \
//	         -in auction.xml -out pruned.xml
//
// Multiple -q flags build one union projector (§5: a single pruned
// document serves the whole bunch). With -show the inferred projector is
// printed instead of pruning; -validate fuses DTD validation with the
// prune; -save-projector / -load-projector persist an inferred projector
// so loaders can reuse it without re-running the analysis.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"xmlproj"
)

type queryList []string

func (q *queryList) String() string     { return fmt.Sprint(*q) }
func (q *queryList) Set(s string) error { *q = append(*q, s); return nil }

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "xmlprune:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("xmlprune", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dtdPath := fs.String("dtd", "", "DTD file, or an XML Schema if the name ends in .xsd (required)")
	root := fs.String("root", "", "root element (default: first declared)")
	in := fs.String("in", "", "input document (default stdin)")
	out := fs.String("out", "", "output document (default stdout)")
	show := fs.Bool("show", false, "print the inferred projector and exit")
	saveProj := fs.String("save-projector", "", "also write the inferred projector to this file")
	loadProj := fs.String("load-projector", "", "skip inference and load a projector previously saved with -save-projector")
	validateFlag := fs.Bool("validate", false, "validate while pruning")
	materialize := fs.Bool("materialize", true, "keep full subtrees of result nodes")
	var queries queryList
	fs.Var(&queries, "q", "query (XPath or XQuery); repeatable")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *dtdPath == "" || (len(queries) == 0 && *loadProj == "") {
		fs.Usage()
		return fmt.Errorf("-dtd and at least one -q (or -load-projector) are required")
	}

	d, err := parseSchema(*dtdPath, *root)
	if err != nil {
		return err
	}
	start := time.Now()
	var p *xmlproj.Projector
	if *loadProj != "" {
		text, err := os.ReadFile(*loadProj)
		if err != nil {
			return err
		}
		if p, err = d.LoadProjector(text); err != nil {
			return err
		}
	} else {
		compiled := make([]*xmlproj.Query, len(queries))
		for i, src := range queries {
			q, err := xmlproj.Compile(src)
			if err != nil {
				return fmt.Errorf("query %q: %w", src, err)
			}
			compiled[i] = q
		}
		mode := xmlproj.NodesOnly
		if *materialize {
			mode = xmlproj.Materialized
		}
		if p, err = d.Infer(mode, compiled...); err != nil {
			return err
		}
	}
	inferTime := time.Since(start)
	if *saveProj != "" {
		text, err := p.MarshalText()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*saveProj, append(text, '\n'), 0o644); err != nil {
			return err
		}
	}

	if *show {
		fmt.Fprintf(stdout, "projector (%d names, keep ratio %.1f%%, inferred in %s):\n",
			len(p.Names()), 100*p.KeepRatio(), inferTime)
		for _, n := range p.Names() {
			fmt.Fprintln(stdout, " ", n)
		}
		return nil
	}

	src := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	dst := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	bw := bufio.NewWriterSize(dst, 1<<20)
	start = time.Now()
	var stats xmlproj.PruneStats
	if *validateFlag {
		stats, err = p.PruneStreamValidating(bw, bufio.NewReaderSize(src, 1<<20))
	} else {
		stats, err = p.PruneStream(bw, bufio.NewReaderSize(src, 1<<20))
	}
	if err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(stderr,
		"xmlprune: inferred in %s; pruned in %s; elements %d -> %d; %d bytes out; depth %d\n",
		inferTime, time.Since(start), stats.ElementsIn, stats.ElementsOut,
		stats.BytesOut, stats.MaxDepth)
	return nil
}

// parseSchema loads a DTD, or an XML Schema when the file has an .xsd
// extension (lowered to a local tree grammar per the paper's footnote 1).
func parseSchema(path, root string) (*xmlproj.DTD, error) {
	if strings.HasSuffix(path, ".xsd") {
		return xmlproj.ParseXSDFile(path, root)
	}
	return xmlproj.ParseDTDFile(path, root)
}
