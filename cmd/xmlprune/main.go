// Command xmlprune prunes XML documents for a set of queries: it infers
// the type projector from the DTD and the queries' data needs, then
// streams each document through the one-pass pruner.
//
// Usage:
//
//	xmlprune -dtd auction.dtd -root site -q '//person[homepage]/name' \
//	         -q 'for $i in /site/regions/australia/item return $i/name' \
//	         -in auction.xml -out pruned.xml
//
// Multiple -q flags build one union projector (§5: a single pruned
// document serves the whole bunch). -in is repeatable and accepts glob
// patterns; with more than one input document, -out names a directory
// and the documents are pruned concurrently by -jobs workers (the
// projector is inferred once and shared — it depends only on the schema
// and the queries). With -show the inferred projector is printed instead
// of pruning; -validate fuses DTD validation with the prune;
// -save-projector / -load-projector persist an inferred projector so
// loaders can reuse it without re-running the analysis.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"xmlproj"
	"xmlproj/internal/mmapio"
	"xmlproj/internal/rescache"
)

type stringList []string

func (q *stringList) String() string     { return fmt.Sprint(*q) }
func (q *stringList) Set(s string) error { *q = append(*q, s); return nil }

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "xmlprune:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("xmlprune", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dtdPath := fs.String("dtd", "", "DTD file, or an XML Schema if the name ends in .xsd (required)")
	root := fs.String("root", "", "root element (default: first declared)")
	out := fs.String("out", "", "output document, or output directory with multiple inputs (default stdout)")
	show := fs.Bool("show", false, "print the inferred projector and exit")
	saveProj := fs.String("save-projector", "", "also write the inferred projector to this file")
	loadProj := fs.String("load-projector", "", "skip inference and load a projector previously saved with -save-projector")
	validateFlag := fs.Bool("validate", false, "validate while pruning")
	materialize := fs.Bool("materialize", true, "keep full subtrees of result nodes")
	jobs := fs.Int("jobs", 0, "concurrent pruning workers for multiple inputs (default GOMAXPROCS)")
	keepGoing := fs.Bool("keep-going", false, "with multiple inputs, prune the rest after a document fails")
	intra := fs.Int("intra", 0, "intra-document parallel pruning workers; 0 auto-selects per document, >0 forces the parallel pruner")
	chunk := fs.Int("chunk", 0, "stage-1 index chunk size in bytes for intra-document parallelism (0 = auto)")
	pipeWindow := fs.Int("pipe-window", 0, "pipelined streaming window size in bytes (0 = auto); stdin and pipe inputs on multi-CPU hosts use the pipelined pruner, whose memory is bounded by ring x window")
	pipeRing := fs.Int("pipe-ring", 0, "pipelined streaming ring depth: window slabs in flight at once (0 = auto)")
	resultCache := fs.Int64("result-cache", xmlproj.DefaultResultCacheBytes, "byte budget for the content-addressed result cache: duplicate documents in a batch are pruned once and served from cache (0 or negative = disabled)")
	var queries, ins, projSpecs stringList
	fs.Var(&queries, "q", "query (XPath or XQuery); repeatable")
	fs.Var(&ins, "in", "input document or glob pattern; repeatable (default stdin)")
	fs.Var(&projSpecs, "proj", "named projection name=query;query — repeatable: one shared scan prunes the input against every -proj at once, writing <out>/<name>.xml per projection")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if len(projSpecs) > 0 {
		if len(queries) > 0 || *loadProj != "" {
			return fmt.Errorf("-proj does not combine with -q or -load-projector")
		}
		if *dtdPath == "" {
			fs.Usage()
			return fmt.Errorf("-dtd is required")
		}
		return runMulti(projSpecs, ins, *dtdPath, *root, *out, *materialize, *validateFlag, *show, stdin, stdout, stderr)
	}

	if *dtdPath == "" || (len(queries) == 0 && *loadProj == "") {
		fs.Usage()
		return fmt.Errorf("-dtd and at least one -q (or -load-projector) are required")
	}

	d, err := parseSchema(*dtdPath, *root)
	if err != nil {
		return err
	}
	inferred := *loadProj == ""
	start := time.Now()
	var p *xmlproj.Projector
	if !inferred {
		text, err := os.ReadFile(*loadProj)
		if err != nil {
			return err
		}
		if p, err = d.LoadProjector(text); err != nil {
			return err
		}
	} else {
		compiled := make([]*xmlproj.Query, len(queries))
		for i, src := range queries {
			q, err := xmlproj.Compile(src)
			if err != nil {
				return fmt.Errorf("query %q: %w", src, err)
			}
			compiled[i] = q
		}
		mode := xmlproj.NodesOnly
		if *materialize {
			mode = xmlproj.Materialized
		}
		if p, err = d.Infer(mode, compiled...); err != nil {
			return err
		}
	}
	inferTime := time.Since(start)
	// inferNote reports the analysis cost only when the analysis ran; a
	// projector loaded from disk was not "inferred in 40µs".
	inferNote := ""
	if inferred {
		inferNote = fmt.Sprintf("inferred in %s; ", inferTime)
	}
	if *saveProj != "" {
		text, err := p.MarshalText()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*saveProj, append(text, '\n'), 0o644); err != nil {
			return err
		}
	}

	if *show {
		origin := fmt.Sprintf("inferred in %s", inferTime)
		if !inferred {
			origin = fmt.Sprintf("loaded from %s", *loadProj)
		}
		fmt.Fprintf(stdout, "projector (%d names, keep ratio %.1f%%, %s):\n",
			len(p.Names()), 100*p.KeepRatio(), origin)
		for _, n := range p.Names() {
			fmt.Fprintln(stdout, " ", n)
		}
		return nil
	}

	inputs, err := expandInputs(ins)
	if err != nil {
		return err
	}

	// Build the batch: one job per input (or one stdin job). Inputs open
	// lazily and outputs are created lazily and closed by the engine, so
	// open file descriptors are bounded by the worker count, not by the
	// batch size.
	var batch []xmlproj.BatchJob
	var sinks []*fileSink
	var srcs []*fileSource
	var stdoutBuf *bufio.Writer

	// newDst resolves a job's destination: the shared buffered stdout
	// when no path is given, a lazily-created file sink otherwise.
	newDst := func(outPath, name string) io.Writer {
		if outPath == "" {
			if stdoutBuf == nil {
				stdoutBuf = bufio.NewWriterSize(stdout, 1<<20)
			}
			return stdoutBuf
		}
		sink := &fileSink{path: outPath, name: name}
		sinks = append(sinks, sink)
		return sink
	}

	addFileJob := func(inPath, outPath string) {
		src := &fileSource{lazyFile: lazyFile{path: inPath}}
		srcs = append(srcs, src)
		batch = append(batch, xmlproj.BatchJob{Name: inPath, Src: src, Dst: newDst(outPath, inPath)})
	}

	switch {
	case len(inputs) == 0:
		batch = append(batch, xmlproj.BatchJob{Name: "stdin", Src: bufio.NewReaderSize(stdin, 1<<20), Dst: newDst(*out, "stdin")})
	case len(inputs) == 1 && !isDir(*out):
		addFileJob(inputs[0], *out)
	default:
		if *out == "" {
			return fmt.Errorf("multiple inputs need -out naming a directory")
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
		seen := make(map[string]string)
		for _, in := range inputs {
			base := filepath.Base(in)
			if prev, dup := seen[base]; dup {
				return fmt.Errorf("inputs %s and %s would both write %s", prev, in, filepath.Join(*out, base))
			}
			seen[base] = in
			addFileJob(in, filepath.Join(*out, base))
		}
	}

	cacheBudget := *resultCache
	if cacheBudget < 0 {
		cacheBudget = 0
	}
	eng := xmlproj.NewEngine(xmlproj.EngineOptions{Workers: *jobs, ResultCacheBytes: cacheBudget})
	start = time.Now()
	results, agg, batchErr := eng.PruneBatch(context.Background(), p, batch, xmlproj.BatchOptions{
		Workers:            *jobs,
		Validate:           *validateFlag,
		FailFast:           !*keepGoing,
		Parallel:           *intra > 0,
		IntraWorkers:       *intra,
		IntraChunkSize:     *chunk,
		PipelineWindowSize: *pipeWindow,
		PipelineRingDepth:  *pipeRing,
	})
	elapsed := time.Since(start)
	// Release the input mappings now that every prune has run; output
	// writers hold copies (or already wrote through), never spans.
	for _, src := range srcs {
		src.close()
	}
	// The engine closed the file sinks (reporting close errors per job);
	// remove the output of every job that did not fully succeed, so a
	// failed prune never leaves a partial document behind.
	for _, sink := range sinks {
		sink.removeIfFailed(results)
	}
	if stdoutBuf != nil {
		if err := stdoutBuf.Flush(); err != nil && batchErr == nil {
			batchErr = err
		}
	}
	// Per-job error lines only make sense for batches; a single job's
	// error is the returned error, and printing it here would show it
	// twice.
	if len(batch) > 1 {
		for _, r := range results {
			if r.Err != nil {
				fmt.Fprintf(stderr, "xmlprune: %s: %v\n", r.Name, r.Err)
			}
		}
	}
	if len(batch) == 1 {
		if batchErr == nil {
			r := results[0]
			st := r.Stats
			parNote := ""
			if r.Parallel.Workers > 0 && !r.Parallel.Fallback {
				parNote = fmt.Sprintf("; parallel %d workers, %d fragments (index %s, prune %s, stitch %s)",
					r.Parallel.Workers, r.Parallel.Tasks,
					r.Parallel.IndexTime.Round(time.Microsecond),
					r.Parallel.PruneTime.Round(time.Microsecond),
					r.Parallel.StitchTime.Round(time.Microsecond))
			}
			if r.Pipeline.Workers > 0 && !r.Pipeline.Fallback {
				parNote = fmt.Sprintf("; pipelined %d workers, %d windows, %d fragments, peak %d window bytes (read %s, index %s, prune %s, emit %s)",
					r.Pipeline.Workers, r.Pipeline.Windows, r.Pipeline.Tasks, r.Pipeline.PeakWindowBytes,
					r.Pipeline.ReadTime.Round(time.Microsecond),
					r.Pipeline.IndexTime.Round(time.Microsecond),
					r.Pipeline.PruneTime.Round(time.Microsecond),
					r.Pipeline.EmitTime.Round(time.Microsecond))
			}
			fmt.Fprintf(stderr,
				"xmlprune: %spruned in %s; elements %d -> %d; %d -> %d bytes (%.1f MB/s); depth %d%s\n",
				inferNote, elapsed, st.ElementsIn, st.ElementsOut,
				r.BytesIn, st.BytesOut, r.Throughput(), st.MaxDepth, parNote)
		}
	} else {
		for _, r := range results {
			if r.Err != nil {
				continue
			}
			fmt.Fprintf(stderr, "xmlprune: %s: %d -> %d bytes in %s (%.1f MB/s)\n",
				r.Name, r.BytesIn, r.Stats.BytesOut, r.Elapsed.Round(time.Microsecond), r.Throughput())
		}
		mbps := 0.0
		if elapsed > 0 {
			mbps = float64(agg.BytesIn) / elapsed.Seconds() / 1e6
		}
		fmt.Fprintf(stderr,
			"xmlprune: %spruned %d/%d documents in %s; elements %d -> %d; %d -> %d bytes (%.1f MB/s); depth %d\n",
			inferNote, agg.Pruned, len(batch), elapsed,
			agg.ElementsIn, agg.ElementsOut, agg.BytesIn, agg.BytesOut, mbps, agg.MaxDepth)
		// Duplicate documents in the batch were pruned once and copied
		// out of the result cache; say how often that paid off.
		if m := eng.Metrics(); m.ResultHits+m.ResultCoalesced+m.ResultMisses > 0 {
			served := m.ResultHits + m.ResultCoalesced
			total := served + m.ResultMisses
			fmt.Fprintf(stderr, "xmlprune: result cache: %d/%d prunes served from cache (%.0f%% hit ratio)\n",
				served, total, 100*float64(served)/float64(total))
		}
	}
	return batchErr
}

// maxMultiStdinBytes bounds how much of stdin the -proj shared scan
// will buffer (it needs the whole document in memory): 1 GiB, matching
// the serving layer's default body limit. A variable so tests can
// exercise the rejection without a gigabyte pipe.
var maxMultiStdinBytes = int64(1 << 30)

// runMulti prunes one document against every -proj projection in a
// single shared scan: the projector set is fused into one decision
// table and the input is tokenized once, however many projections ride
// the pass. Each projection's output is byte-identical to a serial
// prune with it alone.
func runMulti(specs, ins stringList, dtdPath, root, out string, materialize, validate, show bool, stdin io.Reader, stdout, stderr io.Writer) error {
	d, err := parseSchema(dtdPath, root)
	if err != nil {
		return err
	}
	mode := xmlproj.NodesOnly
	if materialize {
		mode = xmlproj.Materialized
	}
	names := make([]string, 0, len(specs))
	projectors := make([]*xmlproj.Projector, 0, len(specs))
	seen := make(map[string]bool)
	start := time.Now()
	for _, spec := range specs {
		name, qsrc, ok := strings.Cut(spec, "=")
		if !ok || name == "" || qsrc == "" {
			return fmt.Errorf("-proj %q: want name=query;query", spec)
		}
		if seen[name] {
			return fmt.Errorf("-proj name %q given twice", name)
		}
		seen[name] = true
		var compiled []*xmlproj.Query
		for _, src := range strings.Split(qsrc, ";") {
			if src = strings.TrimSpace(src); src == "" {
				continue
			}
			q, err := xmlproj.Compile(src)
			if err != nil {
				return fmt.Errorf("-proj %s: query %q: %w", name, src, err)
			}
			compiled = append(compiled, q)
		}
		p, err := d.Infer(mode, compiled...)
		if err != nil {
			return fmt.Errorf("-proj %s: %w", name, err)
		}
		names = append(names, name)
		projectors = append(projectors, p)
	}
	inferTime := time.Since(start)

	if show {
		for j, p := range projectors {
			fmt.Fprintf(stdout, "%s: projector (%d names, keep ratio %.1f%%):\n",
				names[j], len(p.Names()), 100*p.KeepRatio())
			for _, n := range p.Names() {
				fmt.Fprintln(stdout, " ", n)
			}
		}
		return nil
	}

	inputs, err := expandInputs(ins)
	if err != nil {
		return err
	}
	if len(inputs) > 1 {
		return fmt.Errorf("-proj prunes one document against many projections; got %d inputs", len(inputs))
	}

	// The shared scan tokenizes in place, so the input is materialised
	// once: mapped when it is a regular file, read otherwise.
	var data []byte
	var mapped *mmapio.Data
	inName := "stdin"
	if len(inputs) == 1 {
		inName = inputs[0]
		if m, merr := mmapio.Open(inputs[0]); merr == nil {
			mapped = m
			data = m.Bytes()
		} else if data, err = os.ReadFile(inputs[0]); err != nil {
			return err
		}
	} else {
		// Stdin has no size to check up front, and the shared scan must
		// buffer it whole — bound the read so a runaway pipe cannot take
		// the process's memory hostage.
		if data, err = io.ReadAll(io.LimitReader(stdin, maxMultiStdinBytes+1)); err != nil {
			return err
		}
		if int64(len(data)) > maxMultiStdinBytes {
			return fmt.Errorf("stdin input exceeds %d bytes; the shared multi-projection scan buffers its input whole — write it to a file and pass -in", maxMultiStdinBytes)
		}
	}
	if mapped != nil {
		defer mapped.Close()
	}

	// Resolve destinations: several projections need -out as a directory
	// (one <name>.xml each); a single one behaves like a plain prune.
	sinkPath := make([]string, len(specs))
	if len(specs) > 1 || isDir(out) {
		if out == "" {
			return fmt.Errorf("several -proj outputs need -out naming a directory")
		}
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
		for j, name := range names {
			sinkPath[j] = filepath.Join(out, name+".xml")
		}
	} else {
		sinkPath[0] = out // possibly "": stdout
	}

	start = time.Now()
	results, errs := xmlproj.PruneMultiGather(projectors, data, xmlproj.StreamOptions{Validate: validate})
	elapsed := time.Since(start)

	var firstErr error
	var bytesOut int64
	for j := range specs {
		if errs[j] != nil {
			fmt.Fprintf(stderr, "xmlprune: %s: %v\n", names[j], errs[j])
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", names[j], errs[j])
			}
			continue
		}
		res := results[j]
		werr := func() error {
			if sinkPath[j] == "" {
				_, werr := res.WriteTo(stdout)
				return werr
			}
			f, err := os.Create(sinkPath[j])
			if err != nil {
				return err
			}
			if _, err := res.WriteTo(f); err != nil {
				f.Close()
				os.Remove(sinkPath[j])
				return err
			}
			return f.Close()
		}()
		st := res.Stats
		res.Close()
		if werr != nil {
			fmt.Fprintf(stderr, "xmlprune: %s: %v\n", names[j], werr)
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", names[j], werr)
			}
			continue
		}
		bytesOut += st.BytesOut
		fmt.Fprintf(stderr, "xmlprune: %s: elements %d -> %d; %d bytes out\n",
			names[j], st.ElementsIn, st.ElementsOut, st.BytesOut)
	}
	fmt.Fprintf(stderr,
		"xmlprune: %d projections inferred in %s; shared scan over %s (%d bytes) in %s; %d bytes out total\n",
		len(specs), inferTime, inName, len(data), elapsed, bytesOut)
	return firstErr
}

// expandInputs glob-expands every -in value; a value without matches is
// kept literally when it has no glob metacharacters (so a missing file
// reports a useful open error) and rejected otherwise. A path produced
// by several overlapping patterns is kept once — the same file pruned
// twice would also collide on its output name.
func expandInputs(ins []string) ([]string, error) {
	var out []string
	seen := make(map[string]bool)
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range ins {
		matches, err := filepath.Glob(pat)
		if err != nil {
			return nil, fmt.Errorf("bad -in pattern %q: %w", pat, err)
		}
		switch {
		case len(matches) > 0:
			sort.Strings(matches)
			for _, m := range matches {
				add(m)
			}
		case !strings.ContainsAny(pat, "*?["):
			add(pat)
		default:
			return nil, fmt.Errorf("-in pattern %q matches nothing", pat)
		}
	}
	return out, nil
}

func isDir(path string) bool {
	if path == "" {
		return false
	}
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

// lazyFile opens its file on first read and closes it at EOF or on
// error, so a large batch never holds more inputs open than there are
// workers actively reading.
type lazyFile struct {
	path string
	f    *os.File
	done bool
}

func (l *lazyFile) Read(p []byte) (int, error) {
	if l.done {
		return 0, io.EOF
	}
	if l.f == nil {
		f, err := os.Open(l.path)
		if err != nil {
			l.done = true
			return 0, err
		}
		l.f = f
	}
	n, err := l.f.Read(p)
	if err != nil {
		l.f.Close()
		l.f = nil
		l.done = true
	}
	return n, err
}

// fileSource is a batch input backed by a regular file. The prune asks
// it for in-memory bytes (prune.BytesSource) and gets the whole file
// mapped — whole-file prunes then run zero read-copy end to end, the
// scanner tokenizing the page cache in place — with the embedded
// lazyFile's streaming reads as the fallback for irregular files,
// pipes, and failed maps.
type fileSource struct {
	lazyFile
	data *mmapio.Data
}

// InputSize implements prune.Sizer via stat, without opening the file.
func (s *fileSource) InputSize() (int64, bool) {
	fi, err := os.Stat(s.path)
	if err != nil || !fi.Mode().IsRegular() {
		return 0, false
	}
	return fi.Size(), true
}

// InputBytes implements prune.BytesSource: called at most once, at the
// prune's point of commitment, it maps (or for short files reads) the
// whole input. Returning nil declines and the prune falls back to
// streaming reads.
func (s *fileSource) InputBytes() []byte {
	d, err := mmapio.Open(s.path)
	if err != nil {
		return nil
	}
	s.data = d
	return d.Bytes()
}

// ResultCacheIdentity implements rescache.Identifier: a (device, inode,
// size, mtime) fingerprint that lets the result cache skip hashing a
// file it digested before — batches with duplicate inputs (snapshots,
// hard links) identify repeats by stat alone.
func (s *fileSource) ResultCacheIdentity() (rescache.Identity, bool) {
	fi, err := os.Stat(s.path)
	if err != nil {
		return rescache.Identity{}, false
	}
	return rescache.FileIdentity(fi)
}

// close releases the mapping after the batch; the prune is done with
// the bytes by then.
func (s *fileSource) close() {
	if s.data != nil {
		s.data.Close()
		s.data = nil
	}
}

// fileSink creates its file on first write, reports the Close error (a
// full disk often only fails at close), and can remove the file again if
// the job it served did not fully succeed.
type fileSink struct {
	path    string
	name    string // job name, for removeIfFailed
	f       *os.File
	created bool
}

func (s *fileSink) Write(p []byte) (int, error) {
	if s.f == nil {
		f, err := os.Create(s.path)
		if err != nil {
			return 0, err
		}
		s.f = f
		s.created = true
	}
	return s.f.Write(p)
}

// Close is called by the engine when the job finishes.
func (s *fileSink) Close() error {
	if s.f == nil {
		return nil
	}
	f := s.f
	s.f = nil
	return f.Close()
}

// removeIfFailed deletes the created file when its job carries an error.
func (s *fileSink) removeIfFailed(results []xmlproj.BatchResult) {
	if !s.created {
		return
	}
	for _, r := range results {
		if r.Name == s.name && r.Err != nil {
			os.Remove(s.path)
			return
		}
	}
}

// parseSchema loads a DTD, or an XML Schema when the file has an .xsd
// extension (lowered to a local tree grammar per the paper's footnote 1).
func parseSchema(path, root string) (*xmlproj.DTD, error) {
	if strings.HasSuffix(path, ".xsd") {
		return xmlproj.ParseXSDFile(path, root)
	}
	return xmlproj.ParseDTDFile(path, root)
}
