package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSubset(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-factor", "0.002", "-q", "QM01,QP01", "-baseline"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Table 1", "Figure 4", "Figure 5", "Baseline", "QM01", "QP01", "max@512MB"} {
		if !strings.Contains(s, want) {
			t.Errorf("output misses %q", want)
		}
	}
}

func TestRunUnknownQuery(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-q", "QZ99"}, &out, &errBuf); err == nil {
		t.Fatal("unknown query accepted")
	}
}
