// Command xbench regenerates the paper's evaluation tables and figures
// (§6) at an arbitrary XMark scale, printing them in the paper's layout.
//
// Usage:
//
//	xbench -factor 0.05                 # Table 1 + Figures 4/5, all queries
//	xbench -factor 0.05 -q QM01,QP05    # a subset
//	xbench -baseline                    # comparison with path projection [14]
//	xbench -streamprune                 # pruner micro-benchmark → BENCH_streamprune.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"xmlproj/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "xbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("xbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	factor := fs.Float64("factor", 0.01, "XMark scale factor (1.0 ≈ 100 MB)")
	seed := fs.Int64("seed", 42, "generator seed")
	qsel := fs.String("q", "", "comma-separated query IDs (default: all)")
	baseline := fs.Bool("baseline", false, "also run the path-projection baseline comparison")
	streamprune := fs.Bool("streamprune", false, "benchmark the streaming pruner engines and write a JSON report")
	spOut := fs.String("o", "BENCH_streamprune.json", "output path for the -streamprune report")
	intra := fs.Int("intra", 0, "intra-document workers for the -streamprune parallel cases (0 = GOMAXPROCS)")
	chunk := fs.Int("chunk", 0, "stage-1 index chunk size in bytes for the parallel cases (0 = auto)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *streamprune {
		return runStreamPrune(*factor, *seed, *spOut, bench.StreamPruneOptions{IntraWorkers: *intra, ChunkSize: *chunk}, stdout, stderr)
	}

	queries := bench.AllQueries()
	if *qsel != "" {
		var sel []bench.QuerySpec
		for _, id := range strings.Split(*qsel, ",") {
			q, ok := bench.QueryByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown query %q", id)
			}
			sel = append(sel, q)
		}
		queries = sel
	}

	fmt.Fprintf(stderr, "xbench: generating XMark document at factor %g…\n", *factor)
	w := bench.NewWorkload(*factor, *seed)
	fmt.Fprintf(stderr, "xbench: document is %d bytes, %d nodes\n",
		len(w.DocBytes), w.Doc.NumNodes())

	var rows []bench.Row
	for _, q := range queries {
		fmt.Fprintf(stderr, "xbench: %s…\n", q.ID)
		row, err := bench.RunQuery(w, q)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}
	bench.PrintTable1(stdout, *factor, rows)
	fmt.Fprintln(stdout)
	bench.PrintFigure4(stdout, rows)
	fmt.Fprintln(stdout)
	bench.PrintFigure5(stdout, rows)

	if *baseline {
		fmt.Fprintln(stdout)
		var comps []bench.BaselineComparison
		for _, q := range queries {
			c, err := bench.RunBaseline(w, q)
			if err != nil {
				return err
			}
			comps = append(comps, c)
		}
		bench.PrintBaseline(stdout, comps)
	}
	return nil
}

// runStreamPrune benchmarks prune.Stream's engines (serial scanner,
// decoder reference, intra-document parallel pruner) and writes the
// JSON report consumed by the CI benchmark smoke job.
func runStreamPrune(factor float64, seed int64, out string, opts bench.StreamPruneOptions, stdout, stderr io.Writer) error {
	fmt.Fprintf(stderr, "xbench: benchmarking streaming pruner at factor %g…\n", factor)
	rep, err := bench.RunStreamPrune(factor, seed, opts)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	// Write-then-rename so a crash or full disk mid-write never leaves a
	// truncated report where CI expects a valid one.
	tmp, err := os.CreateTemp(filepath.Dir(out), filepath.Base(out)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), out); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	fmt.Fprintf(stdout, "stream prune benchmark (XMark factor %g, %d bytes)\n", rep.Factor, rep.DocBytes)
	fmt.Fprintf(stdout, "%-10s %-16s %-9s %12s %10s %12s %14s\n", "projector", "engine", "validate", "ns/op", "MB/s", "allocs/op", "copied B/op")
	for _, c := range rep.Cases {
		fmt.Fprintf(stdout, "%-10s %-16s %-9v %12d %10.2f %12d %14d\n", c.Projector, c.Engine, c.Validate, c.NsPerOp, c.MBPerSec, c.AllocsPerOp, c.CopiedBytesPerOp)
	}
	fmt.Fprintf(stdout, "low-selectivity: scanner is %.2fx faster, %.0fx fewer allocations\n",
		rep.SpeedupLow, rep.AllocRatioLow)
	fmt.Fprintf(stdout, "validated: scanner is %.2fx faster than decoder; validation overhead %.2fx (low), %.2fx (mid)\n",
		rep.SpeedupLowValidated, rep.ValidateOverheadLow, rep.ValidateOverheadMid)
	fmt.Fprintf(stdout, "parallel: %.2fx vs serial scanner on full, %.2fx on low (GOMAXPROCS=%d, NumCPU=%d)\n",
		rep.SpeedupParallel, rep.SpeedupParallelLow, rep.GOMAXPROCS, rep.NumCPU)
	fmt.Fprintf(stdout, "gather: %.1fx fewer allocated bytes than the copying scanner on low; %.1f%% of output bytes copied\n",
		rep.GatherAllocRatioLow, 100*rep.GatherCopiedFracLow)
	fmt.Fprintf(stdout, "multi: shared scan over 4 projectors is %.2fx faster than 4 serial gathers\n",
		rep.SpeedupMultiX4)
	fmt.Fprintf(stdout, "cached: warm result-cache hit is %.1fx cheaper than a fresh scanner prune on low (hit %s, digest %s)\n",
		rep.SpeedupCachedLow, time.Duration(rep.CacheHitNs), time.Duration(rep.DigestNs))
	if rep.SpeedupSkippedSingleCPU {
		fmt.Fprintln(stdout, "pipelined: single-CPU host; speedups omitted from the report (output parity and memory bound still asserted)")
	} else {
		fmt.Fprintf(stdout, "pipelined: %.2fx vs serial scanner on full (unsized input), %.2fx on low\n",
			rep.SpeedupPipelined, rep.SpeedupPipelinedLow)
	}
	fmt.Fprintf(stdout, "pipelined: first output byte after %s (scanner %s, parallel %s); peak window bytes %d of %d (ring %d x window %d)\n",
		time.Duration(rep.TTFBPipelinedNs), time.Duration(rep.TTFBScannerNs), time.Duration(rep.TTFBParallelNs),
		rep.PeakWindowBytes, int64(rep.PipelineRingDepth)*int64(rep.PipelineWindowBytes),
		rep.PipelineRingDepth, rep.PipelineWindowBytes)
	if rep.NumCPU == 1 {
		fmt.Fprintln(stdout, "parallel: single-CPU host; speedup not meaningful (output parity still asserted)")
	}
	fmt.Fprintf(stderr, "xbench: wrote %s\n", out)
	return nil
}
