package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const bibDTD = `
<!ELEMENT bib (book*)>
<!ELEMENT book (title, author+, year?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`

const bibDoc = `<bib><book><title>Commedia</title><author>Dante</author><year>1313</year></book></bib>`

// TestRunServesAndDrains boots the daemon on ephemeral ports, prunes a
// document over HTTP, checks the admin listener, then cancels the run
// context and expects a clean drained exit.
func TestRunServesAndDrains(t *testing.T) {
	dir := t.TempDir()
	dtdPath := filepath.Join(dir, "bib.dtd")
	if err := os.WriteFile(dtdPath, []byte(bibDTD), 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ready := make(chan [2]string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-listen", "127.0.0.1:0",
			"-admin", "127.0.0.1:0",
			"-schema", dtdPath, // bare path: name derives from the file base
			"-projection", "titles=bib://book/title",
			"-drain", "5s",
		}, io.Discard, func(mainAddr, adminAddr net.Addr) {
			ready <- [2]string{mainAddr.String(), adminAddr.String()}
		})
	}()

	var addrs [2]string
	select {
	case addrs = <-ready:
	case err := <-done:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not become ready")
	}
	base := "http://" + addrs[0]

	for _, url := range []string{
		base + "/prune?schema=bib&q=%2F%2Fbook%2Ftitle",
		base + "/prune?projection=titles",
	} {
		resp, err := http.Post(url, "application/xml", strings.NewReader(bibDoc))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d (body %q)", url, resp.StatusCode, body)
		}
		want := `<bib><book><title>Commedia</title></book></bib>`
		if string(body) != want {
			t.Fatalf("%s: pruned %q, want %q", url, body, want)
		}
	}

	// The admin listener serves /debug/vars and pprof.
	for _, path := range []string{"/debug/vars", "/debug/pprof/cmdline"} {
		resp, err := http.Get("http://" + addrs[1] + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("admin %s: status %d", path, resp.StatusCode)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drained shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after cancel")
	}
}

// TestRunRejectsBadFlags: startup errors (no schema, non-loopback
// admin) fail fast instead of serving misconfigured.
func TestRunRejectsBadFlags(t *testing.T) {
	dir := t.TempDir()
	dtdPath := filepath.Join(dir, "bib.dtd")
	if err := os.WriteFile(dtdPath, []byte(bibDTD), 0o644); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	if err := run(ctx, []string{"-listen", "127.0.0.1:0"}, io.Discard, nil); err == nil {
		t.Error("run with no -schema succeeded")
	}
	err := run(ctx, []string{
		"-listen", "127.0.0.1:0",
		"-admin", "0.0.0.0:0",
		"-schema", dtdPath,
	}, io.Discard, nil)
	if err == nil || !strings.Contains(err.Error(), "loopback") {
		t.Errorf("non-loopback admin: err %v, want loopback rejection", err)
	}
}

func TestLoadSchemaSpec(t *testing.T) {
	dir := t.TempDir()
	dtdPath := filepath.Join(dir, "bib.dtd")
	if err := os.WriteFile(dtdPath, []byte(bibDTD), 0o644); err != nil {
		t.Fatal(err)
	}

	name, d, err := loadSchema("catalog="+dtdPath, "")
	if err != nil || name != "catalog" || d == nil {
		t.Errorf("name=path spec: (%q, %v, %v)", name, d, err)
	}
	name, d, err = loadSchema(dtdPath, "")
	if err != nil || name != "bib" || d == nil {
		t.Errorf("bare path spec: (%q, %v, %v), want name bib", name, d, err)
	}
	if _, _, err := loadSchema("=x.dtd", ""); err == nil {
		t.Error("empty name accepted")
	}
	if _, _, err := loadSchema(filepath.Join(dir, "missing.dtd"), ""); err == nil {
		t.Error("missing file accepted")
	}
}

func TestParseProjectionSpec(t *testing.T) {
	name, schema, queries, err := parseProjectionSpec("p=bib://book/title; //book/author")
	if err != nil {
		t.Fatal(err)
	}
	if name != "p" || schema != "bib" || len(queries) != 2 ||
		queries[0] != "//book/title" || queries[1] != "//book/author" {
		t.Errorf("parsed (%q, %q, %q)", name, schema, queries)
	}
	for _, bad := range []string{"", "p", "p=bib", "p=:q", "p=bib:", "p=bib: ; "} {
		if _, _, _, err := parseProjectionSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestRequireLoopback(t *testing.T) {
	for _, ok := range []string{"127.0.0.1:6060", "localhost:0", "[::1]:6060"} {
		if err := requireLoopback(ok); err != nil {
			t.Errorf("%s rejected: %v", ok, err)
		}
	}
	for _, bad := range []string{"0.0.0.0:6060", "192.168.1.5:6060", "example.com:80", "noport"} {
		if err := requireLoopback(bad); err == nil {
			t.Errorf("%s accepted", bad)
		}
	}
}
