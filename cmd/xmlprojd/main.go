// Command xmlprojd serves type-based XML projection over HTTP: a
// long-lived pruning service in front of query engines, running the
// paper's load-time filter (§6) for many concurrent clients.
//
// Usage:
//
//	xmlprojd -schema auction=auction.dtd \
//	         -projection people='auction://person[homepage]/name' \
//	         -listen :8080 -admin 127.0.0.1:6060
//
//	curl -X POST --data-binary @auction.xml \
//	  'http://localhost:8080/prune?schema=auction&q=//person/name'
//	curl -X POST --data-binary @auction.xml \
//	  'http://localhost:8080/prune?projection=people'
//
// POST /prune streams the body through the one-pass pruner and streams
// the pruned document back. GET /debug/vars exports engine and server
// counters; pprof lives on the loopback-only admin listener. On SIGTERM
// the server stops accepting work and drains in-flight prunes.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xmlproj"
	"xmlproj/internal/server"
)

type stringList []string

func (l *stringList) String() string     { return fmt.Sprint(*l) }
func (l *stringList) Set(s string) error { *l = append(*l, s); return nil }

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "xmlprojd:", err)
		os.Exit(1)
	}
}

// run builds and serves until ctx is cancelled, then drains. onReady, if
// non-nil, receives the bound addresses once both listeners accept —
// tests use it to reach ephemeral ports.
func run(ctx context.Context, args []string, stderr io.Writer, onReady func(mainAddr, adminAddr net.Addr)) error {
	fs := flag.NewFlagSet("xmlprojd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", ":8080", "main listen address")
	admin := fs.String("admin", "127.0.0.1:6060", "admin listen address (pprof + /debug/vars), loopback only; empty disables")
	root := fs.String("root", "", "root element override applied to every schema (default: first declared)")
	maxBody := fs.Int64("max-body", server.DefaultMaxBodyBytes, "request body limit in bytes (negative = unlimited)")
	maxToken := fs.Int("max-token", 0, "scanner token-size limit in bytes (0 = default 8 MiB)")
	maxGather := fs.Int64("max-gather", server.DefaultMaxGatherBytes, "span-gather fast-path limit in bytes: bodies of known length up to this are buffered and pruned in place (negative = disabled)")
	maxConcurrent := fs.Int("max-concurrent", 0, "concurrent prune limit; also divides the intra-document worker budget (0 = GOMAXPROCS)")
	admissionWait := fs.Duration("admission-wait", 100*time.Millisecond, "how long a request queues for an admission slot before 429")
	reqTimeout := fs.Duration("request-timeout", 0, "per-request prune deadline, 408 on expiry (0 = none)")
	resultCache := fs.Int64("result-cache", xmlproj.DefaultResultCacheBytes, "byte budget for the content-addressed cache of pruned outputs; repeat documents on the gather path are served from cache with a strong ETag (0 or negative = disabled)")
	readHeaderTimeout := fs.Duration("read-header-timeout", 10*time.Second, "http server read-header timeout")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "http server keep-alive idle timeout")
	writeTimeout := fs.Duration("write-timeout", 0, "http server write timeout; bounds the whole response, so leave 0 unless responses are small")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown drain window for in-flight prunes")
	logText := fs.Bool("log-text", false, "log in text instead of JSON")
	var schemas, projections stringList
	fs.Var(&schemas, "schema", "schema to serve, as name=path (or just a path; the name is the file base); .xsd parses as XML Schema; repeatable")
	fs.Var(&projections, "projection", "projection precompiled at startup, as name=schema:query[;query...]; repeatable")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(schemas) == 0 {
		fs.Usage()
		return fmt.Errorf("at least one -schema is required")
	}

	var h slog.Handler
	if *logText {
		h = slog.NewTextHandler(stderr, nil)
	} else {
		h = slog.NewJSONHandler(stderr, nil)
	}
	logger := slog.New(h)

	cacheBudget := *resultCache
	if cacheBudget <= 0 {
		cacheBudget = -1 // Options treats 0 as "default"; the flag's 0 means off
	}
	srv := server.New(server.Options{
		MaxBodyBytes:     *maxBody,
		MaxTokenSize:     *maxToken,
		MaxGatherBytes:   *maxGather,
		MaxConcurrent:    *maxConcurrent,
		AdmissionWait:    *admissionWait,
		RequestTimeout:   *reqTimeout,
		ResultCacheBytes: cacheBudget,
		Logger:           logger,
	})
	for _, spec := range schemas {
		name, d, err := loadSchema(spec, *root)
		if err != nil {
			return err
		}
		if err := srv.AddSchema(name, d); err != nil {
			return err
		}
	}
	for _, spec := range projections {
		name, schema, queries, err := parseProjectionSpec(spec)
		if err != nil {
			return err
		}
		if err := srv.AddProjection(name, schema, false, queries...); err != nil {
			return err
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		IdleTimeout:       *idleTimeout,
		WriteTimeout:      *writeTimeout,
	}

	var adminSrv *http.Server
	var adminLn net.Listener
	if *admin != "" {
		if err := requireLoopback(*admin); err != nil {
			ln.Close()
			return err
		}
		adminLn, err = net.Listen("tcp", *admin)
		if err != nil {
			ln.Close()
			return err
		}
		adminSrv = &http.Server{Handler: srv.AdminHandler(), ReadHeaderTimeout: *readHeaderTimeout}
	}

	errc := make(chan error, 2)
	go func() { errc <- httpSrv.Serve(ln) }()
	if adminSrv != nil {
		go func() { errc <- adminSrv.Serve(adminLn) }()
	}
	var adminAddr net.Addr
	if adminLn != nil {
		adminAddr = adminLn.Addr()
		logger.Info("admin listening", "addr", adminAddr.String())
	}
	logger.Info("listening", "addr", ln.Addr().String(), "schemas", len(schemas), "projections", len(projections))
	if onReady != nil {
		onReady(ln.Addr(), adminAddr)
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Stop accepting, drain in-flight prunes, then return. A prune still
	// running when the drain window closes is cut off by Shutdown's
	// context.
	logger.Info("shutting down", "drain", *drain)
	shCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	serr := httpSrv.Shutdown(shCtx)
	if adminSrv != nil {
		if aerr := adminSrv.Shutdown(shCtx); serr == nil {
			serr = aerr
		}
	}
	return serr
}

// loadSchema parses one -schema spec: "name=path" or a bare path whose
// base name (extension stripped) becomes the schema name.
func loadSchema(spec, root string) (string, *xmlproj.DTD, error) {
	name, path, ok := strings.Cut(spec, "=")
	if !ok {
		path = spec
		base := path
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		if i := strings.LastIndexByte(base, '.'); i > 0 {
			base = base[:i]
		}
		name = base
	}
	if name == "" || path == "" {
		return "", nil, fmt.Errorf("bad -schema %q: want name=path", spec)
	}
	var d *xmlproj.DTD
	var err error
	if strings.HasSuffix(path, ".xsd") {
		d, err = xmlproj.ParseXSDFile(path, root)
	} else {
		d, err = xmlproj.ParseDTDFile(path, root)
	}
	if err != nil {
		return "", nil, fmt.Errorf("schema %s: %w", name, err)
	}
	return name, d, nil
}

// parseProjectionSpec parses one -projection spec:
// "name=schema:query[;query...]".
func parseProjectionSpec(spec string) (name, schema string, queries []string, err error) {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return "", "", nil, fmt.Errorf("bad -projection %q: want name=schema:query[;query...]", spec)
	}
	schema, qs, ok := strings.Cut(rest, ":")
	if !ok || schema == "" || qs == "" {
		return "", "", nil, fmt.Errorf("bad -projection %q: want name=schema:query[;query...]", spec)
	}
	for _, q := range strings.Split(qs, ";") {
		if q = strings.TrimSpace(q); q != "" {
			queries = append(queries, q)
		}
	}
	if len(queries) == 0 {
		return "", "", nil, fmt.Errorf("bad -projection %q: no queries", spec)
	}
	return name, schema, queries, nil
}

// requireLoopback rejects admin addresses that would expose pprof
// beyond the local host.
func requireLoopback(addr string) error {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("bad -admin %q: %w", addr, err)
	}
	if host == "localhost" {
		return nil
	}
	if ip := net.ParseIP(host); ip != nil && ip.IsLoopback() {
		return nil
	}
	return fmt.Errorf("-admin %q is not a loopback address; pprof must stay local", addr)
}
