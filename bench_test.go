package xmlproj_test

// Benchmarks regenerating the paper's evaluation (§6):
//
//   BenchmarkTable1      — Table 1: per query, pruned size (size% metric),
//                          speed-up (speedx) and memory gain (memx);
//                          ns/op is the load+query time on the pruned doc.
//   BenchmarkFigure4     — Figure 4: load+query time per query, original
//                          vs pruned series (ns/op).
//   BenchmarkFigure5     — Figure 5: memory per query, original vs pruned
//                          series (B/op with -benchmem, plus MBalloc).
//   BenchmarkPruningLinear, BenchmarkPruneMemory, BenchmarkStaticAnalysis
//                        — the §6 overhead claims: prune time linear in
//                          document size with depth-bounded memory;
//                          static analysis always negligible.
//   BenchmarkHeuristicRewrite — the §5 for/if rewriting heuristic.
//   BenchmarkBaselineComparison — precision and pruning work vs the
//                          path-based baseline of [14].
//   BenchmarkAblationContext — what the Fig. 1 contexts buy on
//                          backward-axis queries.
//   BenchmarkQueryBunch  — the §5 multi-query scenario: one union
//                          projector for the whole workload.
//
// The default scale is XMark factor 0.01 (~1 MB); the paper used 56 MB.
// Shapes (who wins, by what factor) are the reproduction target;
// cmd/xbench re-runs everything at arbitrary scale.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"xmlproj/internal/bench"
	"xmlproj/internal/core"
	"xmlproj/internal/prune"
	"xmlproj/internal/xmark"
	"xmlproj/internal/xquery"
)

const benchFactor = 0.01

var (
	wlOnce sync.Once
	wl     *bench.Workload
)

func workload() *bench.Workload {
	wlOnce.Do(func() { wl = bench.NewWorkload(benchFactor, 42) })
	return wl
}

type prepared struct {
	q           bench.QuerySpec
	prunedBytes []byte
	row         bench.Row
}

var (
	prepMu sync.Mutex
	preps  = map[string]*prepared{}
)

// prepare runs the full pipeline once per query and caches the pruned
// document and the one-shot Table 1 row.
func prepare(b *testing.B, id string) *prepared {
	b.Helper()
	prepMu.Lock()
	defer prepMu.Unlock()
	if p, ok := preps[id]; ok {
		return p
	}
	w := workload()
	q, ok := bench.QueryByID(id)
	if !ok {
		b.Fatalf("unknown query %s", id)
	}
	row, err := bench.RunQuery(w, q)
	if err != nil {
		b.Fatalf("%s: %v", id, err)
	}
	pr, err := w.Projector(q)
	if err != nil {
		b.Fatalf("%s: %v", id, err)
	}
	prunedBytes, _, err := bench.PruneBytes(w, pr)
	if err != nil {
		b.Fatalf("%s: %v", id, err)
	}
	p := &prepared{q: q, prunedBytes: prunedBytes, row: row}
	preps[id] = p
	return p
}

func allIDs() []string {
	qs := bench.AllQueries()
	ids := make([]string, len(qs))
	for i, q := range qs {
		ids[i] = q.ID
	}
	return ids
}

// BenchmarkTable1 regenerates Table 1: one sub-benchmark per query,
// timing the load+query run on the pruned document and reporting the
// pruned size percentage, the speed-up and the memory gain as metrics.
func BenchmarkTable1(b *testing.B) {
	for _, id := range allIDs() {
		b.Run(id, func(b *testing.B) {
			p := prepare(b, id)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bench.MeasureRun(p.q, p.prunedBytes); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(p.row.SizePercent, "size%")
			b.ReportMetric(p.row.Speedup, "speedx")
			b.ReportMetric(p.row.MemRatio, "memx")
		})
	}
}

// BenchmarkFigure4 regenerates Figure 4: load+query wall time per query,
// on the original and the pruned document (two series).
func BenchmarkFigure4(b *testing.B) {
	for _, id := range allIDs() {
		p := func(b *testing.B) *prepared { return prepare(b, id) }
		b.Run(id+"/original", func(b *testing.B) {
			pp := p(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bench.MeasureRun(pp.q, workload().DocBytes); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(id+"/pruned", func(b *testing.B) {
			pp := p(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bench.MeasureRun(pp.q, pp.prunedBytes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure5 regenerates Figure 5: memory used to process each
// query on the original and the pruned document. The MBalloc metric is
// the figure's y-axis (B/op from -benchmem agrees).
func BenchmarkFigure5(b *testing.B) {
	for _, id := range allIDs() {
		b.Run(id, func(b *testing.B) {
			p := prepare(b, id)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bench.MeasureRun(p.q, p.prunedBytes); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(p.row.Orig.AllocBytes)/(1<<20), "MBalloc-orig")
			b.ReportMetric(float64(p.row.Pruned.AllocBytes)/(1<<20), "MBalloc-pruned")
		})
	}
}

// BenchmarkPruningLinear checks the §6 claim that pruning time is linear
// in document size: the MB/s metric should be roughly constant across
// scales.
func BenchmarkPruningLinear(b *testing.B) {
	q, _ := bench.QueryByID("QP01")
	for _, factor := range []float64{0.005, 0.01, 0.02, 0.04} {
		b.Run(fmt.Sprintf("factor=%g", factor), func(b *testing.B) {
			w := bench.NewWorkload(factor, 42)
			pr, err := w.Projector(q)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(w.DocBytes)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var sink bytes.Buffer
				if _, err := prune.Stream(&sink, bytes.NewReader(w.DocBytes), w.D, pr.Names, prune.StreamOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPruneMemory checks that the streaming pruner's working set is
// bounded by document depth, not size: maxdepth stays flat as the
// document grows.
func BenchmarkPruneMemory(b *testing.B) {
	q, _ := bench.QueryByID("QP02")
	for _, factor := range []float64{0.005, 0.02} {
		b.Run(fmt.Sprintf("factor=%g", factor), func(b *testing.B) {
			w := bench.NewWorkload(factor, 42)
			pr, err := w.Projector(q)
			if err != nil {
				b.Fatal(err)
			}
			var depth int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var sink bytes.Buffer
				st, err := prune.Stream(&sink, bytes.NewReader(w.DocBytes), w.D, pr.Names, prune.StreamOptions{})
				if err != nil {
					b.Fatal(err)
				}
				depth = st.MaxDepth
			}
			b.ReportMetric(float64(depth), "maxdepth")
		})
	}
}

// BenchmarkStaticAnalysis times projector inference per query (the paper:
// always below half a second, even for complex queries and DTDs).
func BenchmarkStaticAnalysis(b *testing.B) {
	w := workload()
	for _, id := range []string{"QM01", "QM09", "QM10", "QM19", "QP05", "QP08", "QP13", "QP14"} {
		q, _ := bench.QueryByID(id)
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.Projector(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHeuristicRewrite quantifies the §5 for/if rewriting: without
// it, the extracted path ends in descendant-or-self::node() and pruning
// degenerates; with it, the pushed predicate restores selectivity.
func BenchmarkHeuristicRewrite(b *testing.B) {
	w := workload()
	src := `for $y in /site/open_auctions/open_auction/descendant-or-self::node()
return if ($y/increase = "1.00") then $y/increase else ()`
	ast := xquery.MustParse(src)

	size := func(pr *core.Projector) float64 {
		out, _, err := bench.PruneBytes(w, pr)
		if err != nil {
			b.Fatal(err)
		}
		return 100 * float64(len(out)) / float64(len(w.DocBytes))
	}
	b.Run("without", func(b *testing.B) {
		var pct float64
		for i := 0; i < b.N; i++ {
			pr, err := core.Infer(w.D, xquery.Extract(ast))
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				pct = size(pr)
			}
		}
		b.ReportMetric(pct, "size%")
	})
	b.Run("with", func(b *testing.B) {
		var pct float64
		for i := 0; i < b.N; i++ {
			pr, err := core.Infer(w.D, xquery.Extract(xquery.RewriteForIf(ast)))
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				pct = size(pr)
			}
		}
		b.ReportMetric(pct, "size%")
	})
}

// BenchmarkBaselineComparison reproduces the §1.1/§5 comparison with
// Marian & Siméon's path-based projection: retained size (precision) and
// visited nodes (pruning work) per query.
func BenchmarkBaselineComparison(b *testing.B) {
	w := workload()
	for _, id := range []string{"QP01", "QP03", "QP05", "QP10", "QP21", "QM14"} {
		q, _ := bench.QueryByID(id)
		b.Run(id, func(b *testing.B) {
			var c bench.BaselineComparison
			var err error
			for i := 0; i < b.N; i++ {
				c, err = bench.RunBaseline(w, q)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*float64(c.TypePrunedBytes)/float64(len(w.DocBytes)), "type-size%")
			b.ReportMetric(100*float64(c.PathPrunedBytes)/float64(len(w.DocBytes)), "path-size%")
			b.ReportMetric(float64(c.PathVisited)/float64(c.TypeVisited), "visit-ratio")
		})
	}
}

// BenchmarkAblationContext quantifies the Fig. 1 context machinery: on
// backward-axis queries the context-free analysis keeps more names.
func BenchmarkAblationContext(b *testing.B) {
	w := workload()
	for _, id := range []string{"QP09", "QP10", "QP19"} {
		q, _ := bench.QueryByID(id)
		paths, err := w.DataNeeds(q)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(id, func(b *testing.B) {
			var with, without int
			for i := 0; i < b.N; i++ {
				prWith, err := core.Infer(w.D, paths)
				if err != nil {
					b.Fatal(err)
				}
				prWithout, err := core.InferNoContext(w.D, paths)
				if err != nil {
					b.Fatal(err)
				}
				with, without = prWith.Names.Len(), prWithout.Names.Len()
			}
			b.ReportMetric(float64(with), "names-ctx")
			b.ReportMetric(float64(without), "names-noctx")
		})
	}
}

// BenchmarkGenerator measures XMark document generation throughput (the
// xmlgen stand-in).
func BenchmarkGenerator(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		doc := xmark.NewGenerator(0.005, int64(i)).Document()
		if doc.Root == nil {
			b.Fatal("empty document")
		}
	}
}

// BenchmarkQueryBunch measures the §5 multi-query scenario: one union
// projector serving the whole benchmark workload minus QP13 (the
// deliberately unselective /site//node(), which alone keeps everything
// and would mask the union) — the capability [9] lacks. The size% metric
// is the pruned fraction under the union projector; per-query pruning
// would produce 42 separate documents instead of this single one.
func BenchmarkQueryBunch(b *testing.B) {
	w := workload()
	var union *core.Projector
	for i := 0; i < b.N; i++ {
		union = nil
		for _, q := range bench.AllQueries() {
			if q.ID == "QP13" {
				continue
			}
			pr, err := w.Projector(q)
			if err != nil {
				b.Fatal(err)
			}
			if union == nil {
				union = pr
			} else {
				union.Union(pr)
			}
		}
	}
	pruned, _, err := bench.PruneBytes(w, union)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(100*float64(len(pruned))/float64(len(w.DocBytes)), "size%")
	b.ReportMetric(float64(union.Names.Len()), "names")
}
