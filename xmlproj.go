// Package xmlproj implements type-based XML projection (Benzaken,
// Castagna, Colazzo, Nguyên — VLDB 2006): given a DTD and one or more
// XPath 1.0 / XQuery-FLWR queries, it statically infers a *type
// projector* — a set of DTD names — such that pruning every node whose
// name is outside the projector does not change the queries' results.
// Pruning is a single one-pass traversal with constant memory, so large
// documents can be cut down to their query-relevant core before a
// main-memory engine ever materialises them.
//
// Typical use:
//
//	d, _ := xmlproj.ParseDTDFile("auction.dtd", "site")
//	q, _ := xmlproj.CompileXPath(`//person[profile/@income]/name`)
//	p, _ := d.Infer(xmlproj.Materialized, q)
//	p.PruneStream(out, in)     // stream the pruned document
//
// The package also ships the in-memory XPath/XQuery engine used by the
// reproduction benchmarks (Evaluate), validation, and the XMark document
// generator (under internal/, driven by cmd/xmarkgen).
package xmlproj

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"xmlproj/internal/core"
	"xmlproj/internal/dataguide"
	"xmlproj/internal/dtd"
	"xmlproj/internal/prune"
	"xmlproj/internal/rescache"
	"xmlproj/internal/tree"
	"xmlproj/internal/validate"
	"xmlproj/internal/xpath"
	"xmlproj/internal/xpathl"
	"xmlproj/internal/xquery"
	"xmlproj/internal/xsd"
)

// DTD is a parsed Document Type Definition, viewed as a local tree
// grammar (§2.2 of the paper).
type DTD struct {
	d *dtd.DTD

	// fp caches the schema fingerprint used as an Engine cache key.
	fpOnce sync.Once
	fp     string
}

// ParseDTD reads DTD declarations from r, expanding parameter entities
// and conditional sections first (so real-world DTDs like XHTML parse).
// rootTag names the document root element; if empty, the first declared
// element is the root.
func ParseDTD(r io.Reader, rootTag string) (*DTD, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return ParseDTDString(string(src), rootTag)
}

// ParseDTDString is ParseDTD over a string.
func ParseDTDString(src, rootTag string) (*DTD, error) {
	d, err := dtd.ParseWithEntities(src, rootTag)
	if err != nil {
		return nil, err
	}
	return &DTD{d: d}, nil
}

// ParseXSD reads an XML Schema (a practical subset: sequence/choice/all,
// occurrence bounds, attributes, mixed content, named and anonymous
// complex types) and lowers it to a local tree grammar, per the paper's
// footnote 1. Local elements whose types differ across contexts are
// merged soundly.
func ParseXSD(r io.Reader, rootTag string) (*DTD, error) {
	d, err := xsd.Parse(r, rootTag)
	if err != nil {
		return nil, err
	}
	return &DTD{d: d}, nil
}

// ParseXSDString is ParseXSD over a string.
func ParseXSDString(src, rootTag string) (*DTD, error) {
	d, err := xsd.ParseString(src, rootTag)
	if err != nil {
		return nil, err
	}
	return &DTD{d: d}, nil
}

// ParseXSDFile is ParseXSD over a file.
func ParseXSDFile(path, rootTag string) (*DTD, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseXSD(f, rootTag)
}

// InferDTD builds a dataguide — a structural summary in local-tree-grammar
// form — from a document that has no schema (the paper's §7 extension).
// The document is valid against the result by construction, so projectors
// inferred from it are sound for pruning that document (and any document
// with the same structural summary).
func InferDTD(doc *Document) (*DTD, error) {
	d, err := dataguide.FromDocument(doc.t)
	if err != nil {
		return nil, err
	}
	return &DTD{d: d}, nil
}

// ParseDTDFromDoc extracts and parses the internal DTD subset of a
// document's <!DOCTYPE root [ … ]> declaration.
func ParseDTDFromDoc(doc string) (*DTD, error) {
	root, subset, ok := dtd.InternalSubset(doc)
	if !ok {
		return nil, fmt.Errorf("xmlproj: document has no internal DTD subset")
	}
	return ParseDTDString(subset, root)
}

// ParseDTDFile is ParseDTD over a file.
func ParseDTDFile(path, rootTag string) (*DTD, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseDTD(f, rootTag)
}

// Root returns the root element tag.
func (d *DTD) Root() string { return string(d.d.Root) }

// IsStarGuarded, IsRecursive and IsParentUnambiguous report the Def. 4.3
// grammar properties. On *-guarded, non-recursive, parent-unambiguous
// DTDs the inferred projectors are not only sound but complete for
// strongly-specified queries (Thms. 4.4, 4.7).
func (d *DTD) IsStarGuarded() bool       { return d.d.IsStarGuarded() }
func (d *DTD) IsRecursive() bool         { return d.d.IsRecursive() }
func (d *DTD) IsParentUnambiguous() bool { return d.d.IsParentUnambiguous() }

// Grammar renders the DTD in the paper's edge notation (for inspection).
func (d *DTD) Grammar() string { return d.d.String() }

// QueryKind discriminates compiled query languages.
type QueryKind uint8

const (
	// XPathQuery is an XPath 1.0 expression.
	XPathQuery QueryKind = iota
	// XQueryQuery is a query in the FLWR core of XQuery.
	XQueryQuery
)

// Query is a compiled query together with its XPathℓ data-need paths
// (§3.3/§5), ready for projector inference.
type Query struct {
	Kind   QueryKind
	source string
	xp     xpath.Expr
	xq     xquery.Query
	paths  []*xpathl.Path
}

// CompileXPath parses an XPath 1.0 query and computes its XPathℓ
// approximation.
func CompileXPath(src string) (*Query, error) {
	e, err := xpath.Parse(src)
	if err != nil {
		return nil, err
	}
	paths, err := xpathl.FromQuery(e)
	if err != nil {
		return nil, err
	}
	return &Query{Kind: XPathQuery, source: src, xp: e, paths: paths}, nil
}

// CompileXQuery parses a FLWR-core XQuery query, applies the §5
// rewriting heuristic, and extracts its data-need paths (Fig. 3).
func CompileXQuery(src string) (*Query, error) {
	q, err := xquery.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Query{
		Kind:   XQueryQuery,
		source: src,
		xq:     q,
		paths:  xquery.Extract(xquery.RewriteForIf(q)),
	}, nil
}

// Compile parses src as XPath first and falls back to XQuery, so callers
// can accept either language. When both parses fail, the XPath diagnostic
// is reported if the source starts like a path expression (the XQuery
// fallback would otherwise shadow it with a less useful error); in the
// ambiguous case both diagnostics are combined.
func Compile(src string) (*Query, error) {
	q, xpErr := CompileXPath(src)
	if xpErr == nil {
		return q, nil
	}
	q, xqErr := CompileXQuery(src)
	if xqErr == nil {
		return q, nil
	}
	if startsLikePath(src) {
		return nil, xpErr
	}
	return nil, fmt.Errorf("xmlproj: query is neither XPath (%v) nor XQuery (%v)", xpErr, xqErr)
}

// startsLikePath reports whether src begins the way a location path does —
// an axis, an abbreviated step, or a name step — rather than a FLWR
// keyword, so Compile can pick the more useful diagnostic.
func startsLikePath(src string) bool {
	s := strings.TrimSpace(src)
	for _, p := range []string{"/", ".", "@", "*", "(", "child::", "descendant::", "attribute::", "self::", "parent::", "ancestor::"} {
		if strings.HasPrefix(s, p) {
			return true
		}
	}
	return false
}

// Source returns the original query text.
func (q *Query) Source() string { return q.source }

// DataNeeds renders the extracted XPathℓ paths (one per line), mainly
// for inspection and tests.
func (q *Query) DataNeeds() string {
	parts := make([]string, len(q.paths))
	for i, p := range q.paths {
		parts[i] = p.String()
	}
	return strings.Join(parts, "\n")
}

// StaticType returns the set of DTD names the query's results can have —
// the τ of the paper's Fig. 1 type system, computed on the query's XPathℓ
// approximation (Thm. 4.4: every result node's name is in the set).
func (q *Query) StaticType(d *DTD) []string {
	c := core.NewChecker(d.d)
	names := dtd.NameSet{}
	for _, p := range q.paths {
		names.AddAll(c.Type(p))
	}
	out := make([]string, 0, names.Len())
	for _, n := range names.Sorted() {
		out = append(out, string(n))
	}
	return out
}

// CanMatch reports whether the query can return anything at all on
// documents valid against d — the §4.1 emptiness diagnostic (property
// (2)): on *-guarded non-recursive DTDs an empty static type means the
// query is empty on every instance; a typo'd element name is caught
// before any document is read.
func (q *Query) CanMatch(d *DTD) bool {
	return len(q.StaticType(d)) > 0
}

// Mode selects what the projector must preserve.
type Mode uint8

const (
	// NodesOnly preserves the identity of the result node-set (the exact
	// statement of Thm. 4.5); result subtrees may still be pruned.
	NodesOnly Mode = iota
	// Materialized additionally keeps the full subtree (and attributes)
	// of every result node, so results can be serialised (the remark
	// after Thm. 4.5). XQuery queries always use Materialized needs:
	// their extraction already marks returned paths.
	Materialized
)

// Projector is an inferred type projector π (Def. 2.6) for a DTD.
type Projector struct {
	d  *dtd.DTD
	pr *core.Projector

	// fp memoizes the result-cache/ETag fingerprints for the plain and
	// validated variants of this projector (see resultFingerprint).
	fpOnce sync.Once
	fp     [2]string
}

// Infer computes the union projector for a bunch of queries (§5:
// projectors are closed under union, so one pruned document serves all
// the queries).
func (d *DTD) Infer(mode Mode, queries ...*Query) (*Projector, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("xmlproj: no queries to infer from")
	}
	out := &core.Projector{D: d.d, Names: dtd.NewNameSet(d.d.Root)}
	for _, q := range queries {
		var pr *core.Projector
		var err error
		if mode == Materialized && q.Kind == XPathQuery {
			pr, err = core.InferMaterialized(d.d, q.paths)
		} else {
			pr, err = core.Infer(d.d, q.paths)
		}
		if err != nil {
			return nil, fmt.Errorf("xmlproj: %s: %w", q.source, err)
		}
		out.Union(pr)
	}
	return &Projector{d: d.d, pr: out}, nil
}

// Names returns the projector's names, sorted. Text names carry a
// "#text" suffix and attribute names an "@attr" suffix.
func (p *Projector) Names() []string {
	ns := p.pr.Names.Sorted()
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = string(n)
	}
	sort.Strings(out)
	return out
}

// Has reports whether the projector keeps the given name.
func (p *Projector) Has(name string) bool { return p.pr.Has(dtd.Name(name)) }

// KeepRatio returns the fraction of root-reachable names kept — a static
// selectivity indicator.
func (p *Projector) KeepRatio() float64 { return p.pr.KeepRatio() }

func (p *Projector) String() string { return p.pr.String() }

// MarshalText serialises the projector as newline-separated names, so an
// inferred projector can be stored and reused (e.g. computed once by an
// administrator, applied by loaders).
func (p *Projector) MarshalText() ([]byte, error) {
	return []byte(strings.Join(p.Names(), "\n")), nil
}

// LoadProjector rebuilds a projector for d from a MarshalText rendering.
// Unknown names are rejected — a projector is only meaningful against the
// DTD it was inferred for.
func (d *DTD) LoadProjector(text []byte) (*Projector, error) {
	names := dtd.NameSet{}
	for _, f := range strings.Fields(string(text)) {
		n := dtd.Name(f)
		base := n
		if i := strings.IndexAny(string(n), "#@"); i > 0 {
			base = n[:i]
		}
		if d.d.Def(base) == nil {
			return nil, fmt.Errorf("xmlproj: projector name %q not defined by this DTD", f)
		}
		names.Add(n)
	}
	names.Add(d.d.Root)
	return &Projector{d: d.d, pr: &core.Projector{D: d.d, Names: names}}, nil
}

// Document is a parsed XML document.
type Document struct {
	t *tree.Document
}

// ParseXML reads an XML document.
func ParseXML(r io.Reader) (*Document, error) {
	t, err := tree.Parse(r)
	if err != nil {
		return nil, err
	}
	return &Document{t: t}, nil
}

// ParseXMLString is ParseXML over a string.
func ParseXMLString(src string) (*Document, error) {
	t, err := tree.ParseString(src)
	if err != nil {
		return nil, err
	}
	return &Document{t: t}, nil
}

// ParseXMLFile is ParseXML over a file.
func ParseXMLFile(path string) (*Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseXML(f)
}

// XML serialises the document.
func (doc *Document) XML() string { return doc.t.XML() }

// WriteXML serialises the document to w.
func (doc *Document) WriteXML(w io.Writer) error { return doc.t.WriteXML(w) }

// IndentedXML serialises the document with indentation for human
// consumption; mixed content stays on one line, so no significant
// whitespace is introduced.
func (doc *Document) IndentedXML() string { return doc.t.IndentedXML() }

// Size returns the document's serialised size in bytes.
func (doc *Document) Size() int64 { return doc.t.SerializedSize() }

// NumNodes returns the number of element and text nodes.
func (doc *Document) NumNodes() int { return doc.t.NumNodes() }

// Validate checks the document against the DTD (Def. 2.4).
func (d *DTD) Validate(doc *Document) error {
	_, err := validate.Document(d.d, doc.t)
	return err
}

// ApplyDefaults fills in the DTD's declared attribute defaults on every
// element that omits them, as an XML processor does after validation. It
// returns the number of attributes added.
func (d *DTD) ApplyDefaults(doc *Document) int {
	return validate.ApplyDefaults(d.d, doc.t)
}

// Prune computes the π-projection of an in-memory document (Def. 2.7).
// The document must be valid w.r.t. the projector's DTD.
func (p *Projector) Prune(doc *Document) *Document {
	return &Document{t: prune.Tree(p.d, doc.t, p.pr.Names)}
}

// PruneStats reports what a streaming prune did.
type PruneStats struct {
	// ElementsIn and ElementsOut count element start tags read / elements
	// written. ElementsIn includes descendants of pruned subtrees (they
	// are scanned past, not materialised).
	ElementsIn, ElementsOut int64
	// TextIn and TextOut count non-whitespace logical text nodes read /
	// written; consecutive character-data chunks (entities, CDATA) count
	// as one text node.
	TextIn, TextOut int64
	// ElementsSkipped and TextSkipped count nodes inside pruned subtrees
	// (a subset of ElementsIn / TextIn).
	ElementsSkipped, TextSkipped int64
	// BytesOut counts output bytes.
	BytesOut int64
	// MaxDepth is the deepest open-element stack seen; the pruner's
	// memory is proportional to it, not to the document size.
	MaxDepth int
}

// PruneStream prunes the document read from src to dst in a single
// bufferless pass with constant memory (§6). Subtrees of pruned elements
// are skipped without being materialised.
func (p *Projector) PruneStream(dst io.Writer, src io.Reader) (PruneStats, error) {
	return p.pruneStream(dst, src, false)
}

// PruneStreamValidating is PruneStream fused with DTD validation: the
// kept part of the document is validated while it is pruned.
func (p *Projector) PruneStreamValidating(dst io.Writer, src io.Reader) (PruneStats, error) {
	return p.pruneStream(dst, src, true)
}

func (p *Projector) pruneStream(dst io.Writer, src io.Reader, validate bool) (PruneStats, error) {
	st, err := prune.Stream(dst, src, p.d, p.pr.Names, prune.StreamOptions{Validate: validate})
	return pruneStatsOf(st), err
}

// PruneEngine names the tokenizer behind a streaming prune. The zero
// value auto-selects: the pipelined streaming parallel pruner for
// UTF-8 reader input on multi-CPU hosts (unknown sizes, or known sizes
// past a threshold), the two-stage batch parallel pruner for large
// in-memory input, the byte-level serial scanner otherwise for UTF-8,
// and encoding/xml for everything else.
type PruneEngine int

const (
	PruneAuto      PruneEngine = PruneEngine(prune.EngineAuto)
	PruneScanner   PruneEngine = PruneEngine(prune.EngineScanner)
	PruneDecoder   PruneEngine = PruneEngine(prune.EngineDecoder)
	PruneParallel  PruneEngine = PruneEngine(prune.EngineParallel)
	PrunePipelined PruneEngine = PruneEngine(prune.EnginePipelined)
)

// String returns the engine's name as logged by servers and tools.
func (e PruneEngine) String() string {
	switch e {
	case PruneScanner:
		return "scanner"
	case PruneDecoder:
		return "decoder"
	case PruneParallel:
		return "parallel"
	case PrunePipelined:
		return "pipelined"
	default:
		return "auto"
	}
}

// StreamOptions configures PruneStreamOpts. The zero value matches
// PruneStream: no validation, auto-selected engine, default limits.
type StreamOptions struct {
	// Validate fuses DTD validation with the prune.
	Validate bool
	// Engine forces a tokenizer; zero auto-selects.
	Engine PruneEngine
	// MaxTokenSize bounds the scanner's token buffer; a single token
	// larger than this fails the prune instead of growing memory without
	// bound. Zero means the scanner default (8 MiB).
	MaxTokenSize int
	// IntraWorkers bounds intra-document parallel pruning (0 means
	// GOMAXPROCS; 1 keeps the prune serial).
	IntraWorkers int
	// Context, when non-nil, aborts the prune when cancelled: the source
	// is checked before every read and the prune returns the context
	// error (wrapped), recognisable with errors.Is.
	Context context.Context
	// Detail, when non-nil, receives the per-stage timings of a parallel
	// prune (Workers == 0 means the prune ran serially).
	Detail *ParallelStages
	// Pipeline, when non-nil, receives the per-stage timings and peak
	// window residency of a pipelined prune (Windows == 0 means the
	// pipelined engine did not run).
	Pipeline *PipelineStages
	// PipelineWindowSize bounds each pipelined window slab in bytes
	// (0 means the engine default, 1 MiB). Peak input residency is
	// bounded by PipelineRingDepth × PipelineWindowSize.
	PipelineWindowSize int
	// PipelineRingDepth bounds how many window slabs can be in flight at
	// once across the read → index → prune stages (0 means workers+2).
	PipelineRingDepth int
	// Chosen, when non-nil, receives the engine that actually ran.
	Chosen *PruneEngine
	// NoResultCache bypasses the engine's content-addressed result cache
	// for this call (Engine.PruneGather and friends): the document is
	// digested and pruned fresh, and nothing is stored. It has no effect
	// on plain Projector methods, which never touch the cache.
	NoResultCache bool
}

// PruneStreamOpts is PruneStream with per-call options: validation,
// engine selection, token-size limits, worker budgets and context
// cancellation — what a long-lived server needs to run untrusted
// streams through the pruner safely.
func (p *Projector) PruneStreamOpts(dst io.Writer, src io.Reader, opts StreamOptions) (PruneStats, error) {
	popts, finish := streamOptsOf(opts)
	st, err := prune.Stream(dst, src, p.d, p.pr.Names, popts)
	finish()
	return pruneStatsOf(st), err
}

// PruneBytes is PruneStreamOpts over input that is already fully in
// memory: the scanner tokenizes data in place, so the input side of
// the prune copies nothing. Note MaxTokenSize is not enforced on the
// in-memory scanner paths (len(data) already bounds memory); bound
// such inputs by size.
func (p *Projector) PruneBytes(dst io.Writer, data []byte, opts StreamOptions) (PruneStats, error) {
	popts, finish := streamOptsOf(opts)
	st, err := prune.StreamBytes(dst, data, p.d, p.pr.Names, popts)
	finish()
	return pruneStatsOf(st), err
}

// PruneResult is the span-gather outcome of PruneGather: the pruned
// output described as spans over the caller's input plus a small
// buffer of synthesized bytes. WriteTo flushes it with vectored I/O —
// over a TCP connection the kept subtrees go to the kernel straight
// from the input buffer, never copied in user space. The input slice
// must stay alive and unmodified until Close.
//
// Release contract: a PruneResult may wrap pooled gather state, so the
// owner must call Close exactly when done with it — on every path,
// including error paths after a partial WriteTo. A result that is never
// Closed is not unsafe (the garbage collector reclaims it) but its
// buffers leave the pool, costing fresh allocations on later prunes.
// Close is guarded by an atomic flag on the result itself: calling it
// again is a no-op even after the pool has reissued the underlying
// gather state to another prune, so a double-Close can never release a
// different owner's buffers. After Close, accessor methods are safe but
// degenerate — WriteTo returns ErrResultReleased, Bytes returns nil and
// the size accessors return zero — rather than touching recycled state.
// A PruneResult is single-owner: the struct itself is not meant for
// concurrent use (share the written output instead).
//
// When a result is served by an Engine's result cache it is backed by
// an immutable cached copy instead of pooled spans; the same contract
// applies, and Close simply drops the reference (cached bytes are owned
// by the cache, never returned to a pool).
type PruneResult struct {
	// Stats reports what the prune did; BytesOut is the rendered size.
	Stats    PruneStats
	g        *prune.Gather
	cached   *rescache.Entry
	released atomic.Bool
}

// ErrResultReleased is returned by PruneResult.WriteTo after Close.
var ErrResultReleased = errors.New("xmlproj: PruneResult used after Close")

// WriteTo renders the pruned document to w (io.WriterTo).
func (r *PruneResult) WriteTo(w io.Writer) (int64, error) {
	if r.released.Load() {
		return 0, ErrResultReleased
	}
	if r.cached != nil {
		return r.cached.WriteTo(w)
	}
	return r.g.WriteTo(w)
}

// Bytes materialises the pruned document in a fresh slice (nil after
// Close).
func (r *PruneResult) Bytes() []byte {
	if r.released.Load() {
		return nil
	}
	if r.cached != nil {
		return r.cached.AppendTo(nil)
	}
	return r.g.Bytes()
}

// Len is the rendered output size in bytes (0 after Close).
func (r *PruneResult) Len() int64 {
	if r.released.Load() {
		return 0
	}
	if r.cached != nil {
		return r.cached.Len()
	}
	return r.g.Len()
}

// RawBytes counts output bytes referenced in place from the input —
// bytes the prune never copied. A cache-served result reports 0: its
// bytes are a materialized copy, nothing aliases the caller's input.
func (r *PruneResult) RawBytes() int64 {
	if r.released.Load() || r.cached != nil {
		return 0
	}
	return r.g.RawBytes()
}

// Segments is the number of gather segments (writev iovecs); a
// cache-served result is one contiguous segment.
func (r *PruneResult) Segments() int {
	if r.released.Load() {
		return 0
	}
	if r.cached != nil {
		return 1
	}
	return r.g.Segments()
}

// Close releases the result's internal state for reuse. Safe to call
// more than once (see the release contract above); the result must not
// be used afterwards.
func (r *PruneResult) Close() error {
	if !r.released.CompareAndSwap(false, true) {
		return nil
	}
	g := r.g
	r.g, r.cached = nil, nil
	if g != nil {
		return g.Close()
	}
	return nil
}

// PruneGather prunes in-memory input without rendering it: output is
// recorded as a gather list over data, so nothing is copied until the
// result is flushed. Rendered output is byte-identical to PruneStream.
// The caller must Close the result.
func (p *Projector) PruneGather(data []byte, opts StreamOptions) (*PruneResult, error) {
	popts, finish := streamOptsOf(opts)
	g, st, err := prune.StreamGather(data, p.d, p.pr.Names, popts)
	finish()
	if err != nil {
		return nil, err
	}
	return &PruneResult{Stats: pruneStatsOf(st), g: g}, nil
}

// MaxFusedProjectors is how many projectors one shared scan can fuse
// into a single decision table; PruneMultiGather shards larger sets
// into consecutive fused passes. Servers bounding request fan-out can
// use it as a natural limit.
const MaxFusedProjectors = dtd.MaxMultiProjections

// PruneMultiGather prunes in-memory input against every projector in ps
// with one shared scan: the projector set is fused into a per-symbol
// decision table and the scanner walks the document once, so a batch of
// N queries costs one tokenization instead of N. Every projector's
// rendered output and stats are identical to a serial PruneGather with
// that projector alone.
//
// Results align with ps. Verdicts are per projector: errs[j] non-nil
// means projector j's serial prune would have failed (results[j] is
// then nil); syntax and well-formedness errors fail every projector,
// exactly as they would fail every serial run. All projectors must
// stem from the same DTD. The caller must Close every non-nil result
// (see the PruneResult release contract); data must stay alive and
// unmodified until then.
func PruneMultiGather(ps []*Projector, data []byte, opts StreamOptions) ([]*PruneResult, []error) {
	results := make([]*PruneResult, len(ps))
	errs := make([]error, len(ps))
	if len(ps) == 0 {
		return results, errs
	}
	d, pis, err := multiProjectorSet(ps)
	if err != nil {
		for j := range errs {
			errs[j] = err
		}
		return results, errs
	}
	gathers, stats, gerrs := prune.StreamMultiGather(data, d, pis, multiOptsOf(opts))
	for j := range ps {
		if gerrs[j] != nil {
			errs[j] = gerrs[j]
			continue
		}
		results[j] = &PruneResult{Stats: pruneStatsOf(stats[j]), g: gathers[j]}
	}
	return results, errs
}

// PruneMulti is PruneMultiGather for streaming destinations: src is
// materialised once, pruned against every projector in one shared scan,
// and each projector's output is flushed to the matching writer. dsts
// must align with ps; a nil writer skips the flush (the stats still
// report the rendered size).
func PruneMulti(dsts []io.Writer, src io.Reader, ps []*Projector, opts StreamOptions) ([]PruneStats, []error) {
	if len(dsts) != len(ps) {
		panic("xmlproj.PruneMulti: len(dsts) != len(ps)")
	}
	stats := make([]PruneStats, len(ps))
	errs := make([]error, len(ps))
	if len(ps) == 0 {
		return stats, errs
	}
	d, pis, err := multiProjectorSet(ps)
	if err != nil {
		for j := range errs {
			errs[j] = err
		}
		return stats, errs
	}
	msts, merrs := prune.StreamMulti(dsts, src, d, pis, multiOptsOf(opts))
	for j := range ps {
		stats[j], errs[j] = pruneStatsOf(msts[j]), merrs[j]
	}
	return stats, errs
}

// multiProjectorSet checks that every projector stems from one DTD and
// extracts the name sets for the shared scan.
func multiProjectorSet(ps []*Projector) (*dtd.DTD, []dtd.NameSet, error) {
	d := ps[0].d
	pis := make([]dtd.NameSet, len(ps))
	for j, p := range ps {
		if p.d != d {
			return nil, nil, fmt.Errorf("xmlproj: projector %d was inferred from a different DTD", j)
		}
		pis[j] = p.pr.Names
	}
	return d, pis, nil
}

func multiOptsOf(opts StreamOptions) prune.MultiOptions {
	return prune.MultiOptions{
		Validate:     opts.Validate,
		MaxTokenSize: opts.MaxTokenSize,
		Ctx:          opts.Context,
	}
}

// streamOptsOf converts public stream options; the returned finish
// writes Detail/Chosen back after the prune ran.
func streamOptsOf(opts StreamOptions) (prune.StreamOptions, func()) {
	popts := prune.StreamOptions{
		Validate:           opts.Validate,
		Engine:             prune.Engine(opts.Engine),
		MaxTokenSize:       opts.MaxTokenSize,
		ParallelWorkers:    opts.IntraWorkers,
		PipelineWindowSize: opts.PipelineWindowSize,
		PipelineRingDepth:  opts.PipelineRingDepth,
		Ctx:                opts.Context,
	}
	var det prune.ParallelDetail
	if opts.Detail != nil {
		popts.Detail = &det
	}
	var pdet prune.PipelineDetail
	if opts.Pipeline != nil {
		popts.Pipeline = &pdet
	}
	var chosen prune.Engine
	if opts.Chosen != nil {
		popts.Chosen = &chosen
	}
	return popts, func() {
		if opts.Detail != nil {
			*opts.Detail = ParallelStages{
				IndexTime:  det.IndexTime,
				PruneTime:  det.PruneTime,
				StitchTime: det.StitchTime,
				Workers:    det.Workers,
				Tasks:      det.Tasks,
				Fallback:   det.Fallback,
			}
		}
		if opts.Pipeline != nil {
			*opts.Pipeline = PipelineStages{
				ReadTime:        pdet.ReadTime,
				IndexTime:       pdet.IndexTime,
				PruneTime:       pdet.PruneTime,
				EmitTime:        pdet.EmitTime,
				Windows:         pdet.Windows,
				Tasks:           pdet.Tasks,
				Workers:         pdet.Workers,
				PeakWindowBytes: pdet.PeakWindowBytes,
				Fallback:        pdet.Fallback,
			}
		}
		if opts.Chosen != nil {
			*opts.Chosen = PruneEngine(chosen)
		}
	}
}

func pruneStatsOf(st prune.Stats) PruneStats {
	return PruneStats{
		ElementsIn:      st.ElementsIn,
		ElementsOut:     st.ElementsOut,
		TextIn:          st.TextIn,
		TextOut:         st.TextOut,
		ElementsSkipped: st.ElementsSkipped,
		TextSkipped:     st.TextSkipped,
		BytesOut:        st.BytesOut,
		MaxDepth:        st.MaxDepth,
	}
}

// Result is the outcome of evaluating a query.
type Result struct {
	// Count is the number of items (nodes or atomic values) returned.
	Count int
	// Serialized is the result rendered as text: node results serialised
	// as XML, atomics printed, items separated by newlines.
	Serialized string
}

// Evaluate runs the query on a document with the repository's in-memory
// engine (the stand-in for Galax in the paper's experiments).
func (q *Query) Evaluate(doc *Document) (Result, error) {
	switch q.Kind {
	case XPathQuery:
		v, err := xpath.NewEvaluator(doc.t).Eval(q.xp)
		if err != nil {
			return Result{}, err
		}
		if ns, ok := v.(xpath.NodeSet); ok {
			items := make(xquery.Seq, len(ns))
			for i, r := range ns {
				items[i] = r
			}
			return Result{Count: len(ns), Serialized: xquery.Serialize(items)}, nil
		}
		return Result{Count: 1, Serialized: xpath.ToString(v)}, nil
	default:
		s, err := xquery.NewEvaluator(doc.t).Eval(q.xq)
		if err != nil {
			return Result{}, err
		}
		return Result{Count: len(s), Serialized: xquery.Serialize(s)}, nil
	}
}
