package xmlproj

import (
	"strings"
	"testing"
)

const apiDTD = `
<!ELEMENT bib (book*)>
<!ELEMENT book (title, author+, year?)>
<!ATTLIST book isbn CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`

const apiDoc = `<bib>
<book isbn="1"><title>Commedia</title><author>Dante</author><year>1313</year></book>
<book isbn="2"><title>Decameron</title><author>Boccaccio</author></book>
</bib>`

func apiSetup(t *testing.T) (*DTD, *Document) {
	t.Helper()
	d, err := ParseDTDString(apiDTD, "")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseXMLString(apiDoc)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(doc); err != nil {
		t.Fatal(err)
	}
	return d, doc
}

func TestEndToEndXPath(t *testing.T) {
	d, doc := apiSetup(t)
	q, err := CompileXPath(`//book[author = "Dante"]/title`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Infer(Materialized, q)
	if err != nil {
		t.Fatal(err)
	}
	pruned := p.Prune(doc)
	if pruned.Size() >= doc.Size() {
		t.Fatalf("pruning did not shrink: %d vs %d", pruned.Size(), doc.Size())
	}
	r1, err := q.Evaluate(doc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := q.Evaluate(pruned)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Serialized != r2.Serialized || r1.Count != 1 {
		t.Fatalf("results differ: %q vs %q", r1.Serialized, r2.Serialized)
	}
	if !strings.Contains(r1.Serialized, "Commedia") {
		t.Fatalf("result = %q", r1.Serialized)
	}
}

func TestEndToEndXQuery(t *testing.T) {
	d, doc := apiSetup(t)
	q, err := CompileXQuery(`for $b in /bib/book where $b/year return <t>{ $b/title/text() }</t>`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Infer(NodesOnly, q)
	if err != nil {
		t.Fatal(err)
	}
	pruned := p.Prune(doc)
	r1, _ := q.Evaluate(doc)
	r2, err := q.Evaluate(pruned)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Serialized != r2.Serialized {
		t.Fatalf("results differ:\n%q\n%q", r1.Serialized, r2.Serialized)
	}
	if r1.Serialized != "<t>Commedia</t>" {
		t.Fatalf("result = %q", r1.Serialized)
	}
}

func TestCompileAutoDetect(t *testing.T) {
	if q, err := Compile("//book/title"); err != nil || q.Kind != XPathQuery {
		t.Fatalf("xpath autodetect: %v %v", q, err)
	}
	if q, err := Compile("for $b in /bib/book return $b/title"); err != nil || q.Kind != XQueryQuery {
		t.Fatalf("xquery autodetect: %v %v", q, err)
	}
	if _, err := Compile("for $ in in"); err == nil {
		t.Fatal("junk accepted")
	}
}

func TestCompileErrorNotShadowed(t *testing.T) {
	// A broken path expression must surface the XPath diagnostic, not the
	// XQuery fallback's "trailing input" (which shadowed it).
	_, err := Compile(`//item[@id="x"]/name(`)
	if err == nil {
		t.Fatal("broken path accepted")
	}
	if !strings.Contains(err.Error(), "xpath") {
		t.Fatalf("XPath diagnostic shadowed: %v", err)
	}
	if strings.Contains(err.Error(), "xquery: trailing input") {
		t.Fatalf("XQuery fallback error leaked for a path expression: %v", err)
	}

	// A query that is neither must report both diagnostics.
	_, err = Compile("for $ in in")
	if err == nil {
		t.Fatal("junk accepted")
	}
	if !strings.Contains(err.Error(), "neither XPath") || !strings.Contains(err.Error(), "XQuery") {
		t.Fatalf("combined error missing a diagnostic: %v", err)
	}
}

func TestPruneStream(t *testing.T) {
	d, _ := apiSetup(t)
	q, _ := CompileXPath("//book/year")
	p, err := d.Infer(Materialized, q)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	stats, err := p.PruneStream(&out, strings.NewReader(apiDoc))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "<year>1313</year>") {
		t.Fatalf("output = %s", out.String())
	}
	if strings.Contains(out.String(), "Dante") {
		t.Fatalf("authors not pruned: %s", out.String())
	}
	if stats.ElementsOut >= stats.ElementsIn {
		t.Fatalf("stats = %+v", stats)
	}
	// Fused validation accepts the valid document…
	out.Reset()
	if _, err := p.PruneStreamValidating(&out, strings.NewReader(apiDoc)); err != nil {
		t.Fatal(err)
	}
	// …and rejects an invalid one.
	if _, err := p.PruneStreamValidating(&out, strings.NewReader(`<bib><book/></bib>`)); err == nil {
		t.Fatal("invalid doc accepted by validating prune")
	}
}

func TestInferBunchOfQueries(t *testing.T) {
	d, _ := apiSetup(t)
	q1, _ := CompileXPath("//book/title")
	q2, _ := CompileXPath("//book/year")
	p, err := d.Infer(NodesOnly, q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Has("title") || !p.Has("year") {
		t.Fatalf("bunch projector misses names: %s", p)
	}
	if p.Has("author") {
		t.Fatalf("bunch projector over-keeps: %s", p)
	}
	if _, err := d.Infer(NodesOnly); err == nil {
		t.Fatal("empty bunch must error")
	}
}

func TestProjectorIntrospection(t *testing.T) {
	d, _ := apiSetup(t)
	q, _ := CompileXPath("//book/title")
	p, _ := d.Infer(NodesOnly, q)
	names := p.Names()
	if len(names) == 0 || names[0] != "bib" {
		t.Fatalf("Names = %v", names)
	}
	if r := p.KeepRatio(); r <= 0 || r >= 1 {
		t.Fatalf("KeepRatio = %v", r)
	}
	if p.String() == "" {
		t.Fatal("String empty")
	}
}

func TestDTDIntrospection(t *testing.T) {
	d, _ := apiSetup(t)
	if d.Root() != "bib" {
		t.Fatalf("Root = %s", d.Root())
	}
	if d.IsRecursive() || !d.IsStarGuarded() || !d.IsParentUnambiguous() {
		t.Fatal("bib DTD properties wrong")
	}
	if !strings.Contains(d.Grammar(), "book -> book[") {
		t.Fatalf("Grammar = %s", d.Grammar())
	}
}

func TestQueryIntrospection(t *testing.T) {
	q, _ := CompileXPath(`//book[year]/title`)
	if q.Source() == "" {
		t.Fatal("Source empty")
	}
	needs := q.DataNeeds()
	if !strings.Contains(needs, "child::title") || !strings.Contains(needs, "child::year") {
		t.Fatalf("DataNeeds = %s", needs)
	}
}

func TestParseErrorsSurface(t *testing.T) {
	if _, err := ParseDTDString("<!junk", ""); err == nil {
		t.Fatal("bad DTD accepted")
	}
	if _, err := ParseXMLString("<a>"); err == nil {
		t.Fatal("bad XML accepted")
	}
	if _, err := CompileXPath("a["); err == nil {
		t.Fatal("bad XPath accepted")
	}
	if _, err := CompileXQuery("for $x"); err == nil {
		t.Fatal("bad XQuery accepted")
	}
	if _, err := ParseDTDFile("/nonexistent.dtd", ""); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := ParseXMLFile("/nonexistent.xml"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestValidateRejects(t *testing.T) {
	d, _ := apiSetup(t)
	doc, _ := ParseXMLString(`<bib><book isbn="1"><author>x</author></book></bib>`)
	if err := d.Validate(doc); err == nil {
		t.Fatal("invalid doc accepted")
	}
}
