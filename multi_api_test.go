package xmlproj

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// multiAPIProjectors infers three projectors of different selectivity
// from the shared test DTD.
func multiAPIProjectors(t *testing.T, d *DTD) []*Projector {
	t.Helper()
	var ps []*Projector
	for _, src := range []string{
		`//book[author = "Dante"]/title`,
		`//book/year`,
		`/bib/book/@isbn`,
	} {
		q, err := CompileXPath(src)
		if err != nil {
			t.Fatal(err)
		}
		p, err := d.Infer(Materialized, q)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	return ps
}

func TestPruneMultiGatherMatchesSerial(t *testing.T) {
	d, _ := apiSetup(t)
	ps := multiAPIProjectors(t, d)
	data := []byte(apiDoc)
	for _, validate := range []bool{false, true} {
		opts := StreamOptions{Validate: validate}
		results, errs := PruneMultiGather(ps, data, opts)
		for j, p := range ps {
			serial, serr := p.PruneGather(data, opts)
			if (serr == nil) != (errs[j] == nil) {
				t.Fatalf("projector %d: multi verdict %v, serial %v", j, errs[j], serr)
			}
			if serr != nil {
				continue
			}
			if got, want := string(results[j].Bytes()), string(serial.Bytes()); got != want {
				t.Fatalf("projector %d output diverges\nmulti:  %q\nserial: %q", j, got, want)
			}
			if results[j].Stats != serial.Stats {
				t.Fatalf("projector %d stats diverge\nmulti:  %+v\nserial: %+v", j, results[j].Stats, serial.Stats)
			}
			serial.Close()
			results[j].Close()
		}
	}
}

func TestPruneMultiWriters(t *testing.T) {
	d, _ := apiSetup(t)
	ps := multiAPIProjectors(t, d)
	outs := make([]bytes.Buffer, len(ps))
	dsts := make([]io.Writer, len(ps))
	for j := range outs {
		dsts[j] = &outs[j]
	}
	stats, errs := PruneMulti(dsts, strings.NewReader(apiDoc), ps, StreamOptions{})
	for j, p := range ps {
		if errs[j] != nil {
			t.Fatalf("projector %d: %v", j, errs[j])
		}
		var want bytes.Buffer
		if _, err := p.PruneStream(&want, strings.NewReader(apiDoc)); err != nil {
			t.Fatal(err)
		}
		if outs[j].String() != want.String() {
			t.Fatalf("projector %d output diverges\nmulti:  %q\nserial: %q", j, outs[j].String(), want.String())
		}
		if stats[j].BytesOut != int64(outs[j].Len()) {
			t.Fatalf("projector %d BytesOut = %d, wrote %d", j, stats[j].BytesOut, outs[j].Len())
		}
	}
}

func TestPruneMultiRejectsMixedDTDs(t *testing.T) {
	d, _ := apiSetup(t)
	other, err := ParseDTDString(apiDTD, "")
	if err != nil {
		t.Fatal(err)
	}
	ps := multiAPIProjectors(t, d)
	q, err := CompileXPath(`//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := other.Infer(Materialized, q)
	if err != nil {
		t.Fatal(err)
	}
	results, errs := PruneMultiGather(append(ps, foreign), []byte(apiDoc), StreamOptions{})
	for j := range errs {
		if errs[j] == nil {
			t.Fatalf("projector %d accepted a mixed-DTD set", j)
		}
		if results[j] != nil {
			t.Fatalf("projector %d returned a result from a rejected set", j)
		}
	}
}
