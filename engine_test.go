package xmlproj

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestEngineInferCachedConcurrent: 8 concurrent InferCached calls for
// the same query bunch perform exactly one inference, and a warm cache
// answers a second burst without inferring at all.
func TestEngineInferCachedConcurrent(t *testing.T) {
	d, _ := apiSetup(t)
	eng := NewEngine(EngineOptions{})
	q1, err := CompileXPath("//book/title")
	if err != nil {
		t.Fatal(err)
	}
	q2, err := CompileXQuery("for $b in /bib/book return $b/author")
	if err != nil {
		t.Fatal(err)
	}

	const N = 8
	burst := func() {
		var wg sync.WaitGroup
		for i := 0; i < N; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p, err := eng.InferCached(d, Materialized, q1, q2)
				if err != nil {
					t.Error(err)
					return
				}
				if !p.Has("title") || !p.Has("author") {
					t.Errorf("projector incomplete: %v", p.Names())
				}
			}()
		}
		wg.Wait()
	}

	burst()
	m := eng.Metrics()
	if m.Inferences != 1 {
		t.Fatalf("cold burst of %d ran %d inferences, want 1 (metrics %+v)", N, m.Inferences, m)
	}
	if m.CacheMisses != 1 || m.CacheHits+m.Coalesced != N-1 {
		t.Fatalf("cold burst metrics: %+v", m)
	}

	burst() // warm
	m = eng.Metrics()
	if m.Inferences != 1 {
		t.Fatalf("warm cache re-inferred: %+v", m)
	}
	if m.CacheHits < N {
		t.Fatalf("warm burst not served from cache: %+v", m)
	}

	// The bunch is canonicalised: same queries, different order and a
	// duplicate — still the same cache entry.
	if _, err := eng.InferCached(d, Materialized, q2, q1, q2); err != nil {
		t.Fatal(err)
	}
	if m = eng.Metrics(); m.Inferences != 1 {
		t.Fatalf("permuted bunch missed the cache: %+v", m)
	}
	// A different mode is a different workload.
	if _, err := eng.InferCached(d, NodesOnly, q1, q2); err != nil {
		t.Fatal(err)
	}
	if m = eng.Metrics(); m.Inferences != 2 {
		t.Fatalf("mode not part of the key: %+v", m)
	}
	if m.CacheEntries != 2 {
		t.Fatalf("CacheEntries = %d, want 2", m.CacheEntries)
	}
}

// TestEngineSchemaKeyedCache: structurally identical schemas share a
// cache entry; a different schema does not.
func TestEngineSchemaKeyedCache(t *testing.T) {
	eng := NewEngine(EngineOptions{})
	q, err := CompileXPath("//book/title")
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := apiSetup(t)
	d2, err := ParseDTDString(apiDTD, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.InferCached(d1, Materialized, q); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.InferCached(d2, Materialized, q); err != nil {
		t.Fatal(err)
	}
	if m := eng.Metrics(); m.Inferences != 1 {
		t.Fatalf("identical schema re-inferred: %+v", m)
	}
	d3, err := ParseDTDString(`<!ELEMENT bib (book*)><!ELEMENT book (title)><!ELEMENT title (#PCDATA)>`, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.InferCached(d3, Materialized, q); err != nil {
		t.Fatal(err)
	}
	if m := eng.Metrics(); m.Inferences != 2 {
		t.Fatalf("different schema hit the cache: %+v", m)
	}
}

// TestEnginePruneBatch drives the public batch API end to end.
func TestEnginePruneBatch(t *testing.T) {
	d, _ := apiSetup(t)
	eng := NewEngine(EngineOptions{Workers: 3})
	q, err := CompileXPath("//book/title")
	if err != nil {
		t.Fatal(err)
	}
	p, err := eng.InferCached(d, Materialized, q)
	if err != nil {
		t.Fatal(err)
	}
	const n = 9
	jobs := make([]BatchJob, n)
	outs := make([]*bytes.Buffer, n)
	for i := range jobs {
		outs[i] = &bytes.Buffer{}
		doc := fmt.Sprintf(`<bib><book isbn="%d"><title>T%d</title><author>A</author></book></bib>`, i, i)
		jobs[i] = BatchJob{Name: fmt.Sprintf("doc%d", i), Src: strings.NewReader(doc), Dst: outs[i]}
	}
	results, agg, err := eng.PruneBatch(context.Background(), p, jobs, BatchOptions{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %s: %v", r.Name, r.Err)
		}
		if want := fmt.Sprintf("<title>T%d</title>", i); !strings.Contains(outs[i].String(), want) {
			t.Fatalf("job %d output = %s", i, outs[i].String())
		}
	}
	if agg.Pruned != n || agg.Failed != 0 || agg.Skipped != 0 {
		t.Fatalf("aggregate: %+v", agg)
	}
	if agg.BytesIn == 0 || agg.BytesOut == 0 || agg.MaxDepth != 3 {
		t.Fatalf("aggregate stats: %+v", agg)
	}
	if m := eng.Metrics(); m.DocsPruned != n || m.BytesIn != agg.BytesIn {
		t.Fatalf("metrics: %+v", m)
	}
}
