package xmlproj

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"xmlproj/internal/core"
	"xmlproj/internal/engine"
	"xmlproj/internal/prune"
)

// Engine is a concurrent projection engine for server-style workloads:
// it caches inferred projectors in a bounded LRU keyed by (schema,
// query bunch, mode) — with single-flight deduplication, so N
// concurrent requests for the same workload pay for one inference —
// and prunes batches of documents through a bounded worker pool.
// Projector inference depends only on the schema and the queries
// (§5: projectors are closed under union and can be computed once per
// workload), which is exactly what makes the cache sound.
//
// An Engine is safe for concurrent use by any number of goroutines.
type Engine struct {
	e *engine.Engine
}

// EngineOptions configures NewEngine.
type EngineOptions struct {
	// CacheSize bounds the projector cache. Zero means a default (128);
	// negative disables caching while keeping single-flight deduplication.
	CacheSize int
	// Workers is the default pool width for PruneBatch. Zero means
	// GOMAXPROCS.
	Workers int
	// ResultCacheBytes budgets the content-addressed result cache: a
	// sharded, byte-budgeted LRU of pruned outputs keyed by (document
	// digest, projection fingerprint, validate mode), with single-flight
	// fill. Repeat prunes of an unchanged document under the same
	// projector are served from cached bytes in O(digest) time through
	// Engine.PruneGather / Engine.PruneBytes and batch jobs with
	// in-memory sources. Zero or negative disables the cache (the
	// recommended server default is 256 MiB, DefaultResultCacheBytes).
	ResultCacheBytes int64
}

// NewEngine returns an engine with the given options.
func NewEngine(opts EngineOptions) *Engine {
	return &Engine{e: engine.New(engine.Options{
		CacheSize:        opts.CacheSize,
		Workers:          opts.Workers,
		ResultCacheBytes: opts.ResultCacheBytes,
	})}
}

// InferCached is Infer through the engine's projector cache: the first
// request for a (schema, query bunch, mode) workload runs the static
// analysis, concurrent duplicates wait for it, and later requests hit
// the cache. The query bunch is canonicalised (sorted, deduplicated),
// so the same set of queries in any order is one cache entry.
func (eng *Engine) InferCached(d *DTD, mode Mode, queries ...*Query) (*Projector, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("xmlproj: no queries to infer from")
	}
	key := engine.Key{
		Schema: d.fingerprint(),
		Bunch:  bunchFingerprint(queries),
		Mode:   uint8(mode),
	}
	pr, err := eng.e.InferCached(key, func() (*core.Projector, error) {
		p, err := d.Infer(mode, queries...)
		if err != nil {
			return nil, err
		}
		return p.pr, nil
	})
	if err != nil {
		return nil, err
	}
	return &Projector{d: d.d, pr: pr}, nil
}

// fingerprint hashes the grammar so structurally identical schemas
// share cache entries (see grammarFingerprint).
func (d *DTD) fingerprint() string {
	d.fpOnce.Do(func() { d.fp = grammarFingerprint(d.d) })
	return d.fp
}

// bunchFingerprint canonicalises a query bunch: each query is tagged
// with its language, the renderings are sorted and deduplicated.
func bunchFingerprint(queries []*Query) string {
	parts := make([]string, len(queries))
	for i, q := range queries {
		parts[i] = fmt.Sprintf("%d\x00%s", q.Kind, q.source)
	}
	sort.Strings(parts)
	uniq := parts[:0]
	for i, p := range parts {
		if i == 0 || p != parts[i-1] {
			uniq = append(uniq, p)
		}
	}
	return engine.Fingerprint(uniq...)
}

// BatchJob is one document for PruneBatch: a source stream and a
// destination. If Dst implements io.Closer the engine closes it when
// the job finishes, folding the close error into the job's error — so
// "disk full at close" surfaces on the job, and at most Workers
// destinations are open at a time.
type BatchJob struct {
	// Name labels the job in results (typically the input path).
	Name string
	Src  io.Reader
	Dst  io.Writer
}

// BatchResult is the outcome of one batch job.
type BatchResult struct {
	Name string
	// Stats covers what was pruned; on error, the prefix before the
	// failure.
	Stats PruneStats
	// BytesIn counts bytes read from the source.
	BytesIn int64
	// Elapsed is the wall time the prune took (zero for skipped jobs).
	Elapsed time.Duration
	// Parallel reports how the intra-document parallel pruner ran for
	// this job; Parallel.Workers == 0 means the job ran serially.
	Parallel ParallelStages
	// Pipeline reports how the pipelined streaming pruner ran for this
	// job; Pipeline.Workers == 0 means the pipelined engine did not run.
	Pipeline PipelineStages
	// Err is nil on success; jobs skipped after cancellation carry the
	// context error.
	Err error
}

// ParallelStages is the per-stage breakdown of one intra-document
// parallel prune: structural indexing, concurrent fragment pruning, and
// the sequential splice pass that stitches the fragments together.
type ParallelStages struct {
	IndexTime, PruneTime, StitchTime time.Duration
	// Workers is the resolved worker count; Tasks the number of document
	// ranges pruned concurrently.
	Workers, Tasks int
	// Fallback reports that the document was handed to the serial pruner
	// (input the structural index cannot describe).
	Fallback bool
}

// PipelineStages is the per-stage breakdown of one pipelined streaming
// prune: reading source bytes into window slabs, incremental structural
// indexing, concurrent fragment pruning, and in-order emission.
type PipelineStages struct {
	ReadTime, IndexTime, PruneTime, EmitTime time.Duration
	// Windows is the number of window slabs the document was cut into;
	// Tasks the number of fragment ranges delegated to workers; Workers
	// the resolved worker count.
	Windows, Tasks, Workers int
	// PeakWindowBytes is the high-water mark of input bytes resident in
	// window slabs at once — bounded by ring depth × window size.
	PeakWindowBytes int64
	// Fallback reports that the stream was handed to the serial pruner
	// (token cap too small for the windowing invariants).
	Fallback bool
}

// Throughput returns the job's input processing rate in MB/s (0 when
// nothing was timed).
func (r BatchResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.BytesIn) / r.Elapsed.Seconds() / 1e6
}

// BatchOptions configures one PruneBatch call.
type BatchOptions struct {
	// Workers bounds the pool for this batch; zero uses the engine
	// default.
	Workers int
	// Validate fuses DTD validation with each prune.
	Validate bool
	// FailFast cancels the remaining jobs after the first failure;
	// otherwise the batch keeps going and reports every error.
	FailFast bool
	// Parallel forces the intra-document parallel pruner for every job.
	// When false it is still auto-selected per job for large inputs of
	// known size on multi-CPU hosts.
	Parallel bool
	// IntraWorkers bounds the parallel pruner's concurrency within one
	// document (0 means GOMAXPROCS). Batches mixing inter-document and
	// intra-document parallelism will want Workers × IntraWorkers to be
	// about GOMAXPROCS.
	IntraWorkers int
	// IntraChunkSize overrides the parallel pruner's stage-1 chunk
	// granularity in bytes (0 = auto).
	IntraChunkSize int
	// PipelineWindowSize and PipelineRingDepth bound the pipelined
	// streaming pruner per job — window slab size in bytes and in-flight
	// slab count (0 = engine defaults). Auto-selection runs the pipelined
	// engine for unsized (or large sized) reader sources on multi-CPU
	// hosts; each such job's peak input residency is their product.
	PipelineWindowSize int
	PipelineRingDepth  int
}

// BatchStats aggregates a batch: summed pruner stats (MaxDepth is the
// maximum), total input bytes, and job outcomes.
type BatchStats struct {
	PruneStats
	BytesIn                 int64
	Pruned, Failed, Skipped int
}

// PruneBatch prunes every job against p through a bounded worker pool,
// in one streaming pass per document. Results are in job order. The
// batch stops early when ctx is cancelled or, with FailFast, on the
// first failure. The returned error is nil only if every job succeeded.
func (eng *Engine) PruneBatch(ctx context.Context, p *Projector, jobs []BatchJob, opts BatchOptions) ([]BatchResult, BatchStats, error) {
	ejobs := make([]engine.Job, len(jobs))
	for i, j := range jobs {
		ejobs[i] = engine.Job{Name: j.Name, Src: j.Src, Dst: j.Dst}
	}
	eopts := engine.BatchOptions{
		Workers:            opts.Workers,
		Validate:           opts.Validate,
		FailFast:           opts.FailFast,
		IntraWorkers:       opts.IntraWorkers,
		IntraChunkSize:     opts.IntraChunkSize,
		PipelineWindowSize: opts.PipelineWindowSize,
		PipelineRingDepth:  opts.PipelineRingDepth,
	}
	if opts.Parallel {
		eopts.Engine = prune.EngineParallel
	}
	// With a result cache configured, let jobs whose sources expose
	// in-memory bytes be served content-addressed: repeat documents cost
	// a digest instead of a scan. Streaming jobs are unaffected.
	if eng.e.ResultCache().Enabled() {
		eopts.ResultVariant = p.resultFingerprint(opts.Validate)
	}
	res, agg, err := eng.e.PruneBatch(ctx, p.d, p.pr.Names, ejobs, eopts)
	out := make([]BatchResult, len(res))
	for i, r := range res {
		out[i] = BatchResult{
			Name: r.Name, Stats: pruneStatsOf(r.Stats), BytesIn: r.BytesIn, Elapsed: r.Elapsed,
			Parallel: ParallelStages{
				IndexTime:  r.Parallel.IndexTime,
				PruneTime:  r.Parallel.PruneTime,
				StitchTime: r.Parallel.StitchTime,
				Workers:    r.Parallel.Workers,
				Tasks:      r.Parallel.Tasks,
				Fallback:   r.Parallel.Fallback,
			},
			Pipeline: PipelineStages{
				ReadTime:        r.Pipeline.ReadTime,
				IndexTime:       r.Pipeline.IndexTime,
				PruneTime:       r.Pipeline.PruneTime,
				EmitTime:        r.Pipeline.EmitTime,
				Windows:         r.Pipeline.Windows,
				Tasks:           r.Pipeline.Tasks,
				Workers:         r.Pipeline.Workers,
				PeakWindowBytes: r.Pipeline.PeakWindowBytes,
				Fallback:        r.Pipeline.Fallback,
			},
			Err: r.Err,
		}
	}
	return out, BatchStats{
		PruneStats: pruneStatsOf(agg.Stats),
		BytesIn:    agg.BytesIn,
		Pruned:     agg.Pruned,
		Failed:     agg.Failed,
		Skipped:    agg.Skipped,
	}, err
}

// PruneMultiGather is the package-level PruneMultiGather routed through
// the engine's caches: each member projection is compiled once per
// (schema, π) workload and the fused decision table once per ordered
// projector set, both LRU-cached with single-flight deduplication. The
// returned flag reports whether the fused table was answered from the
// cache (false also when the set exceeds the fuse limit and was
// sharded). Results follow the package-level contract: per-projector
// verdicts, Close every non-nil result.
func (eng *Engine) PruneMultiGather(ps []*Projector, data []byte, opts StreamOptions) ([]*PruneResult, []error, bool) {
	results := make([]*PruneResult, len(ps))
	errs := make([]error, len(ps))
	if len(ps) == 0 {
		return results, errs, false
	}
	d, pis, err := multiProjectorSet(ps)
	if err != nil {
		for j := range errs {
			errs[j] = err
		}
		return results, errs, false
	}
	mp, projs, hit := eng.e.MultiProjectionFor(d, pis)
	mopts := multiOptsOf(opts)
	mopts.Projections = projs
	mopts.Combined = mp
	gathers, stats, gerrs := prune.StreamMultiGather(data, d, pis, mopts)
	for j := range ps {
		if gerrs[j] != nil {
			errs[j] = gerrs[j]
			continue
		}
		results[j] = &PruneResult{Stats: pruneStatsOf(stats[j]), g: gathers[j]}
	}
	return results, errs, hit
}

// EngineMetrics is a point-in-time snapshot of an engine's counters.
type EngineMetrics struct {
	// CacheHits counts InferCached calls answered from the cache,
	// CacheMisses calls that ran inference, Coalesced calls that shared
	// another caller's in-flight inference, Evictions LRU evictions, and
	// CacheEntries the current cache population.
	CacheHits, CacheMisses, Coalesced, Evictions int64
	CacheEntries                                 int
	// Inferences counts analyses actually executed; InferenceTime is
	// their cumulative wall time.
	Inferences    int64
	InferenceTime time.Duration
	// DocsPruned / PruneErrors count batch jobs by outcome; BytesIn /
	// BytesOut total the document bytes streamed.
	DocsPruned, PruneErrors int64
	BytesIn, BytesOut       int64
	// ProjectionHits / ProjectionMisses count compiled-projection cache
	// lookups: PruneBatch compiles π against the schema's symbol table
	// once per (schema, π) workload and reuses it across batches.
	ProjectionHits, ProjectionMisses int64
	// MultiHits / MultiMisses count fused multi-projection decision-table
	// cache lookups (PruneMultiGather fuses an ordered projector set once
	// per workload).
	MultiHits, MultiMisses int64
	// ParallelPrunes counts jobs that ran on the intra-document parallel
	// pruner; ParallelFallbacks the subset handed back to the serial
	// scanner. IndexTime, FragmentTime and StitchTime accumulate the
	// parallel pruner's per-stage wall times across those jobs.
	ParallelPrunes, ParallelFallbacks   int64
	IndexTime, FragmentTime, StitchTime time.Duration
	// PipelinedPrunes counts prunes that ran on the pipelined streaming
	// engine; PipelinedFallbacks the subset handed to the serial scanner.
	// The stage times accumulate across those prunes; PeakWindowBytes is
	// the largest window-slab residency any single prune reached.
	PipelinedPrunes, PipelinedFallbacks                                      int64
	PipelineReadTime, PipelineIndexTime, PipelinePruneTime, PipelineEmitTime time.Duration
	PeakWindowBytes                                                          int64
	// ResultHits counts prunes served from the content-addressed result
	// cache, ResultMisses prunes that filled it, ResultCoalesced callers
	// that piggybacked on another caller's in-flight fill, and
	// ResultEvictions entries dropped by the size-aware LRU.
	// ResultBypasses counts outputs served but too large to store,
	// ResultIdentityHits digests answered by the file-identity fast path
	// without rehashing. ResultEntries / ResultBytes are the current
	// population and footprint under ResultBudget. All zero when the
	// cache is disabled.
	ResultHits, ResultMisses, ResultCoalesced, ResultEvictions int64
	ResultBypasses, ResultIdentityHits                         int64
	ResultEntries                                              int
	ResultBytes, ResultBudget                                  int64
}

// Metrics returns a snapshot of the engine's counters.
func (eng *Engine) Metrics() EngineMetrics {
	m := eng.e.Metrics()
	return EngineMetrics{
		CacheHits:        m.CacheHits,
		CacheMisses:      m.CacheMisses,
		Coalesced:        m.Coalesced,
		Evictions:        m.Evictions,
		CacheEntries:     m.CacheEntries,
		Inferences:       m.Inferences,
		InferenceTime:    m.InferenceTime,
		DocsPruned:       m.DocsPruned,
		PruneErrors:      m.PruneErrors,
		BytesIn:          m.BytesIn,
		BytesOut:         m.BytesOut,
		ProjectionHits:   m.ProjectionHits,
		ProjectionMisses: m.ProjectionMisses,
		MultiHits:        m.MultiHits,
		MultiMisses:      m.MultiMisses,

		ParallelPrunes:    m.ParallelPrunes,
		ParallelFallbacks: m.ParallelFallbacks,
		IndexTime:         m.IndexTime,
		FragmentTime:      m.FragmentTime,
		StitchTime:        m.StitchTime,

		PipelinedPrunes:    m.PipelinedPrunes,
		PipelinedFallbacks: m.PipelinedFallbacks,
		PipelineReadTime:   m.PipelineReadTime,
		PipelineIndexTime:  m.PipelineIndexTime,
		PipelinePruneTime:  m.PipelinePruneTime,
		PipelineEmitTime:   m.PipelineEmitTime,
		PeakWindowBytes:    m.PeakWindowBytes,

		ResultHits:         m.ResultCache.Hits,
		ResultMisses:       m.ResultCache.Misses,
		ResultCoalesced:    m.ResultCache.Coalesced,
		ResultEvictions:    m.ResultCache.Evictions,
		ResultBypasses:     m.ResultCache.Bypasses,
		ResultIdentityHits: m.ResultCache.IdentityHits,
		ResultEntries:      m.ResultCache.Entries,
		ResultBytes:        m.ResultCache.Bytes,
		ResultBudget:       m.ResultCache.Budget,
	}
}

// MetricsMap returns the metrics snapshot flattened into
// export-friendly key/value pairs (durations in nanoseconds) — the
// hook expvar-style publishers serialise; xmlprojd's /debug/vars is
// built on it.
func (eng *Engine) MetricsMap() map[string]any {
	return eng.e.Metrics().Map()
}

// RecordPrune credits one streaming prune that ran outside PruneBatch —
// a server streaming a request through Projector.PruneStreamOpts — into
// the engine's counters, with the batch pool's outcome classification:
// nil errors count as DocsPruned, context cancellations (however
// wrapped) count in neither bucket, everything else as PruneErrors.
func (eng *Engine) RecordPrune(bytesIn int64, stats PruneStats, det ParallelStages, pdet PipelineStages, err error) {
	eng.e.RecordPrune(bytesIn, stats.BytesOut, prune.ParallelDetail{
		IndexTime:  det.IndexTime,
		PruneTime:  det.PruneTime,
		StitchTime: det.StitchTime,
		Workers:    det.Workers,
		Tasks:      det.Tasks,
		Fallback:   det.Fallback,
	}, prune.PipelineDetail{
		ReadTime:        pdet.ReadTime,
		IndexTime:       pdet.IndexTime,
		PruneTime:       pdet.PruneTime,
		EmitTime:        pdet.EmitTime,
		Windows:         pdet.Windows,
		Tasks:           pdet.Tasks,
		Workers:         pdet.Workers,
		PeakWindowBytes: pdet.PeakWindowBytes,
		Fallback:        pdet.Fallback,
	}, err)
}

// IntraWorkerBudget divides the host's CPUs across width concurrent
// prunes: the recommended per-document intra-parallelism budget for a
// server admitting up to width requests at once, never below 1.
// PruneBatch applies the same rule against its pool width when
// BatchOptions.IntraWorkers is unset.
func IntraWorkerBudget(procs, width int) int {
	return engine.IntraBudget(procs, width)
}
