package xquery

import (
	"strings"
	"testing"

	"xmlproj/internal/tree"
)

// TestStringRendersAndReparses: the String() rendering of every AST shape
// parses back to a query with the same rendering (a fixpoint), so dumps
// are always valid FLWR syntax.
func TestStringRendersAndReparses(t *testing.T) {
	srcs := []string{
		`()`,
		`for $x in /a/b return $x/c`,
		`let $x := /a/b return count($x)`,
		`if (/a) then /b else ()`,
		`for $x in /a where $x/y return $x`,
		`<r a="1" b="{ $x }">{ /a/b }</r>`,
		`<empty/>`,
		`some $x in /a/b satisfies $x/c = 1`,
		`every $x in /a/b satisfies $x/c`,
		`count(for $x in /a return $x)`,
		`distinct-values(/a/@k)`,
		`(/a, /b, "text", 3)`,
		`for $x in /a order by $x/k descending return $x`,
		`sum(/a/b), avg(/a/b), min(/a/b), max(/a/b)`,
	}
	for _, src := range srcs {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		s1 := q1.String()
		q2, err := Parse(s1)
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", s1, src, err)
		}
		if s2 := q2.String(); s2 != s1 {
			t.Errorf("String not a fixpoint: %q -> %q -> %q", src, s1, s2)
		}
	}
}

func TestFuncQAggregates(t *testing.T) {
	doc, err := tree.ParseString(`<r><v>1</v><v>2</v><v>6</v></r>`)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		// FuncQ forms (FLWR argument forces the query-level function).
		`sum(for $v in /r/v return $v)`:                     "9",
		`avg(for $v in /r/v return $v)`:                     "3",
		`min(for $v in /r/v return $v)`:                     "1",
		`max(for $v in /r/v return $v)`:                     "6",
		`count(for $v in /r/v return $v)`:                   "3",
		`empty(for $v in /r/nosuch return $v)`:              "true",
		`exists(for $v in /r/v return $v)`:                  "true",
		`sum(for $v in /r/none return $v)`:                  "0",
		`string-join(for $v in /r/v return $v/text(), "+")`: "1+2+6",
		`data(for $v in /r/v return $v/text())`:             "1\n2\n6",
	}
	for src, want := range cases {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		s, err := NewEvaluator(doc).Eval(q)
		if err != nil {
			t.Fatalf("Eval(%q): %v", src, err)
		}
		if got := Serialize(s); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
	// Aggregates over the empty sequence (other than sum) are empty.
	q := MustParse(`avg(for $v in /r/none return $v)`)
	s, err := NewEvaluator(doc).Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 0 {
		t.Fatalf("avg(()) = %v, want empty", s)
	}
}

func TestFuncQArityErrors(t *testing.T) {
	doc, _ := tree.ParseString(`<r/>`)
	for _, src := range []string{
		`count(for $v in /r return $v, for $v in /r return $v)`,
		`string-join(for $v in /r return $v)`,
	} {
		q, err := Parse(src)
		if err != nil {
			continue
		}
		if _, err := NewEvaluator(doc).Eval(q); err == nil {
			t.Errorf("Eval(%q) succeeded, want arity error", src)
		}
	}
}

func TestVisitedExposed(t *testing.T) {
	doc, _ := tree.ParseString(`<r><v>1</v></r>`)
	ev := NewEvaluator(doc)
	if _, err := ev.Eval(MustParse(`//v`)); err != nil {
		t.Fatal(err)
	}
	if ev.Visited() == 0 {
		t.Fatal("Visited not counted")
	}
}

func TestFreeVarsAllShapes(t *testing.T) {
	cases := map[string][]string{
		`<e k="{$a}">{ $b }</e>`:               {"a", "b"},
		`if ($c) then $d else $e`:              {"c", "d", "e"},
		`some $x in $f satisfies $x = $g`:      {"f", "g"},
		`count($h)`:                            {"h"},
		`let $x := $i return ($x, $j)`:         {"i", "j"},
		`for $x in /a order by $x/k return $x`: {},
		`for $x in $k order by $m return $x`:   {"k", "m"},
		`-$n`:                                  {"n"},
		`$p[$q]/a[$r]`:                         {"p", "q", "r"},
	}
	for src, want := range cases {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		free := map[string]bool{}
		FreeVars(q, free)
		for _, v := range want {
			if !free[v] {
				t.Errorf("%q: free variable %s not found (got %v)", src, v, free)
			}
		}
		if len(free) != len(want) {
			t.Errorf("%q: free vars = %v, want %v", src, free, want)
		}
	}
}

func TestSubstSelfShapes(t *testing.T) {
	// Push-able conditions of various shapes through the rewriting.
	rewriteOK := []string{
		`for $y in /s/a return if (count($y/k) > 1) then $y/n else ()`,
		`for $y in /s/a return if (-$y/k = -1) then $y/n else ()`,
		`for $y in /s/a return if (contains($y/k, "x") and $y/m) then $y/n else ()`,
	}
	for _, src := range rewriteOK {
		q := MustParse(src)
		f, ok := RewriteForIf(q).(For)
		if !ok {
			t.Fatalf("%q: not a for after rewriting", src)
		}
		if _, isIf := f.Return.(If); isIf {
			t.Errorf("%q: condition not pushed", src)
		}
		if strings.Contains(f.In.String(), "$y") {
			t.Errorf("%q: $y leaked into in-path: %s", src, f.In)
		}
	}
	// Not push-able: $y under a nested filter predicate.
	src := `for $y in /s/a return if ($y[1]/k) then $y/n else ()`
	q := MustParse(src)
	if f, ok := RewriteForIf(q).(For); ok {
		if _, isIf := f.Return.(If); !isIf {
			t.Errorf("%q: filter-predicated variable should not be pushed", src)
		}
	}
}

func TestRewritePreservesSemantics(t *testing.T) {
	doc, err := tree.ParseString(`<s><a><k>v</k><n>one</n></a><a><k>w</k><n>two</n></a></s>`)
	if err != nil {
		t.Fatal(err)
	}
	srcs := []string{
		`for $y in /s/a return if ($y/k = "v") then $y/n/text() else ()`,
		`for $y in /s/descendant-or-self::node() return if ($y/k = "w") then $y/n/text() else ()`,
		`for $y in /s/a return if (count($y/k) > 0) then $y/n/text() else ()`,
	}
	for _, src := range srcs {
		q := MustParse(src)
		before, err := NewEvaluator(doc).Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		after, err := NewEvaluator(doc).Eval(RewriteForIf(q))
		if err != nil {
			t.Fatalf("%q rewritten fails: %v", src, err)
		}
		if Serialize(before) != Serialize(after) {
			t.Errorf("%q: rewriting changed semantics: %q vs %q",
				src, Serialize(before), Serialize(after))
		}
	}
}
