package xquery

import (
	"testing"

	"xmlproj/internal/xpath"
)

func TestParseSimpleFor(t *testing.T) {
	q := MustParse(`for $b in /site/people/person return $b/name`)
	f, ok := q.(For)
	if !ok || f.Var != "b" {
		t.Fatalf("parse = %#v", q)
	}
	if _, ok := f.In.(Expr); !ok {
		t.Fatalf("In = %#v", f.In)
	}
	ret := f.Return.(Expr)
	pe := ret.E.(xpath.PathExpr)
	if v, ok := pe.Filter.(xpath.Var); !ok || v.Name != "b" {
		t.Fatalf("return not rooted at $b: %#v", pe)
	}
}

func TestParseLet(t *testing.T) {
	q := MustParse(`let $x := /a/b return count($x)`)
	l, ok := q.(Let)
	if !ok || l.Var != "x" {
		t.Fatalf("parse = %#v", q)
	}
	if _, ok := l.Return.(Expr); !ok {
		t.Fatalf("count($x) should parse as an XPath expression: %#v", l.Return)
	}
}

func TestParseWhereDesugarsToIf(t *testing.T) {
	q := MustParse(`for $b in /a/b where $b/c = 3 return $b/d`)
	f := q.(For)
	iff, ok := f.Return.(If)
	if !ok {
		t.Fatalf("where not desugared: %#v", f.Return)
	}
	if _, ok := iff.Else.(Empty); !ok {
		t.Fatalf("else branch should be (): %#v", iff.Else)
	}
}

func TestParseMultipleBindings(t *testing.T) {
	q := MustParse(`for $a in /x/a, $b in $a/b return $b`)
	f := q.(For)
	if f.Var != "a" {
		t.Fatalf("outer var = %s", f.Var)
	}
	inner, ok := f.Return.(For)
	if !ok || inner.Var != "b" {
		t.Fatalf("multiple bindings not nested: %#v", f.Return)
	}
}

func TestParseMixedForLet(t *testing.T) {
	q := MustParse(`for $p in /s/p let $a := $p/x return count($a)`)
	f := q.(For)
	l, ok := f.Return.(Let)
	if !ok || l.Var != "a" {
		t.Fatalf("for/let chain wrong: %#v", f.Return)
	}
}

func TestParseIf(t *testing.T) {
	q := MustParse(`if (/a/b) then /a/c else ()`)
	iff := q.(If)
	if _, ok := iff.Else.(Empty); !ok {
		t.Fatalf("else = %#v", iff.Else)
	}
}

func TestParseElementConstructor(t *testing.T) {
	q := MustParse(`<result>{ /a/b }</result>`)
	el, ok := q.(Element)
	if !ok || el.Tag != "result" {
		t.Fatalf("parse = %#v", q)
	}
	if _, ok := el.Body.(Expr); !ok {
		t.Fatalf("body = %#v", el.Body)
	}
}

func TestParseElementWithAttrs(t *testing.T) {
	q := MustParse(`<item name="fixed" value="{ $b/x }"/>`)
	el := q.(Element)
	if len(el.Attrs) != 2 {
		t.Fatalf("attrs = %#v", el.Attrs)
	}
	if el.Attrs[0].Literal != "fixed" || el.Attrs[0].Expr != nil {
		t.Fatalf("literal attr wrong: %#v", el.Attrs[0])
	}
	if el.Attrs[1].Expr == nil {
		t.Fatalf("computed attr wrong: %#v", el.Attrs[1])
	}
	if el.Body != nil {
		t.Fatalf("self-closing constructor has body: %#v", el.Body)
	}
}

func TestParseNestedElements(t *testing.T) {
	q := MustParse(`<out><name>{ $p/name/text() }</name><count>{ count($p/watch) }</count></out>`)
	el := q.(Element)
	seq, ok := el.Body.(Sequence)
	if !ok || len(seq.Items) != 2 {
		t.Fatalf("body = %#v", el.Body)
	}
	if seq.Items[0].(Element).Tag != "name" || seq.Items[1].(Element).Tag != "count" {
		t.Fatalf("nested tags wrong")
	}
}

func TestParseElementWithLiteralText(t *testing.T) {
	q := MustParse(`<p>hello { $x } world</p>`)
	el := q.(Element)
	seq := el.Body.(Sequence)
	if len(seq.Items) != 3 {
		t.Fatalf("body = %#v", seq)
	}
	if seq.Items[0].(Text).S != "hello " {
		t.Fatalf("text = %#v", seq.Items[0])
	}
}

func TestParseSequence(t *testing.T) {
	q := MustParse(`/a/b, /a/c`)
	seq, ok := q.(Sequence)
	if !ok || len(seq.Items) != 2 {
		t.Fatalf("parse = %#v", q)
	}
}

func TestParseEmptySequence(t *testing.T) {
	if _, ok := MustParse(`()`).(Empty); !ok {
		t.Fatal("() should parse to Empty")
	}
}

func TestParseCountOverFLWR(t *testing.T) {
	// XMark Q5 shape.
	q := MustParse(`count(for $i in /site/closed_auctions/closed_auction where $i/price >= 40 return $i/price)`)
	fq, ok := q.(FuncQ)
	if !ok || fq.Name != "count" {
		t.Fatalf("parse = %#v", q)
	}
	if _, ok := fq.Args[0].(For); !ok {
		t.Fatalf("arg = %#v", fq.Args[0])
	}
}

func TestParseAggregateOverPathStaysXPath(t *testing.T) {
	// XMark Q3 shape: the aggregate participates in arithmetic, so it must
	// parse at the XPath level.
	q := MustParse(`for $b in /s/a where zero-or-one($b/x) * 2 <= $b/y return $b`)
	f := q.(For)
	iff := f.Return.(If)
	if _, ok := iff.Cond.(Expr); !ok {
		t.Fatalf("cond = %#v", iff.Cond)
	}
}

func TestParseQuantified(t *testing.T) {
	// XMark Q4 shape.
	q := MustParse(`for $b in /s/a where some $pr in $b/p satisfies $pr/text() > 20 return $b/x`)
	f := q.(For)
	iff := f.Return.(If)
	qt, ok := iff.Cond.(Quantified)
	if !ok || qt.Var != "pr" || qt.Every {
		t.Fatalf("cond = %#v", iff.Cond)
	}
}

func TestParseDistinctValues(t *testing.T) {
	q := MustParse(`for $i in distinct-values(/s/p/@cat) return $i`)
	f := q.(For)
	fq, ok := f.In.(FuncQ)
	if !ok || fq.Name != "distinct-values" {
		t.Fatalf("In = %#v", f.In)
	}
}

func TestParseOrderBy(t *testing.T) {
	// XMark Q19 shape.
	q := MustParse(`for $b in /site/regions//item let $k := $b/name/text() order by zero-or-one($b/name/text()) ascending return <item name="{$k}">{ $b/location/text() }</item>`)
	f := q.(For)
	l := f.Return.(Let)
	ob, ok := l.Return.(OrderBy)
	if !ok || len(ob.Keys) != 1 || ob.Descending {
		t.Fatalf("order by wrong: %#v", l.Return)
	}
	if _, ok := ob.Body.(Element); !ok {
		t.Fatalf("order-by body = %#v", ob.Body)
	}
}

func TestParseParenthesisedFLWR(t *testing.T) {
	q := MustParse(`(for $x in /a/b return $x, /a/c)`)
	seq, ok := q.(Sequence)
	if !ok || len(seq.Items) != 2 {
		t.Fatalf("parse = %#v", q)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "for $x in", "for x in /a return $x", "let $x = 1 return $x",
		"if /a then 1 else 2", "<a>{", "<a></b>", "for $x in /a where return $x",
		"/a/b,",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseCommentsSkipped(t *testing.T) {
	q := MustParse(`(: XMark Q1 :) for $b in /site/people/person return $b/name`)
	if _, ok := q.(For); !ok {
		t.Fatalf("parse = %#v", q)
	}
}

func TestFreeVars(t *testing.T) {
	q := MustParse(`for $x in /a/b return ($x/c, $y)`)
	free := map[string]bool{}
	FreeVars(q, free)
	if free["x"] || !free["y"] {
		t.Fatalf("free vars = %v", free)
	}
}
