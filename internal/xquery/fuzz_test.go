package xquery

// Random-DTD × random-document × random-FLWR fuzzing of the full XQuery
// pipeline (extraction → inference → pruning → evaluation), mirroring the
// XPath-level fuzzer in internal/prune.

import (
	"testing"

	"xmlproj/internal/core"
	"xmlproj/internal/gen"
	"xmlproj/internal/prune"
	"xmlproj/internal/validate"
)

func TestFuzzXQuerySoundness(t *testing.T) {
	rounds := int64(15)
	queriesPer := 20
	if testing.Short() {
		rounds, queriesPer = 3, 6
	}
	for seed := int64(0); seed < rounds; seed++ {
		d := gen.RandomDTD(seed, gen.DTDOptions{Elements: 8, AllowRecursion: seed%2 == 1})
		qg := gen.NewQueryGen(d, seed*7+3, gen.QueryOptions{})
		doc := gen.New(d, seed, gen.Options{MaxDepth: 6}).Document()
		if _, err := validate.Document(d, doc); err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < queriesPer; qi++ {
			src := qg.FLWRSource()
			q, err := Parse(src)
			if err != nil {
				t.Fatalf("seed %d: generated query %q does not parse: %v", seed, src, err)
			}
			paths := Extract(RewriteForIf(q))
			pr, err := core.Infer(d, paths)
			if err != nil {
				t.Fatalf("seed %d: %q: infer: %v", seed, src, err)
			}
			orig, err := NewEvaluator(doc).Eval(q)
			if err != nil {
				t.Fatalf("seed %d: %q on original: %v", seed, src, err)
			}
			pruned := prune.Tree(d, doc, pr.Names)
			if pruned.Root == nil {
				if len(orig) != 0 && Serialize(orig) != "0" {
					t.Fatalf("seed %d: %q returned %q but π = %s pruned everything\ngrammar:\n%s",
						seed, src, Serialize(orig), pr, d)
				}
				continue
			}
			after, err := NewEvaluator(pruned).Eval(q)
			if err != nil {
				t.Fatalf("seed %d: %q on pruned: %v", seed, src, err)
			}
			if Serialize(orig) != Serialize(after) {
				t.Fatalf("seed %d: %q changed after pruning\norig:   %q\npruned: %q\nπ = %s\ngrammar:\n%s\ndoc: %s",
					seed, src, Serialize(orig), Serialize(after), pr, d, doc.XML())
			}
		}
	}
}
