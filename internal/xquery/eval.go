package xquery

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"xmlproj/internal/tree"
	"xmlproj/internal/xpath"
)

// Item is one member of an XQuery sequence: a node (xpath.NodeRef) or an
// atomic value (string, float64, bool).
type Item interface{}

// Seq is an XQuery sequence.
type Seq []Item

// Evaluator executes FLWR-core queries over one document. Like the XPath
// engine it is a DOM-style main-memory processor; it is the system's
// stand-in for Galax in the paper's experiments.
type Evaluator struct {
	doc *tree.Document
	xe  *xpath.Evaluator
	// vars holds FLWR bindings, stacked by name.
	vars map[string][]Seq
}

// NewEvaluator returns an evaluator over doc.
func NewEvaluator(doc *tree.Document) *Evaluator {
	return &Evaluator{doc: doc, xe: xpath.NewEvaluator(doc), vars: map[string][]Seq{}}
}

// Visited exposes the underlying engine's node-visit counter.
func (ev *Evaluator) Visited() int64 { return ev.xe.Visited }

// Eval evaluates a query with the document root as context.
func (ev *Evaluator) Eval(q Query) (Seq, error) {
	return ev.eval(q)
}

func (ev *Evaluator) push(name string, v Seq) { ev.vars[name] = append(ev.vars[name], v) }

func (ev *Evaluator) pop(name string) {
	s := ev.vars[name]
	ev.vars[name] = s[:len(s)-1]
}

// syncXPathVars exposes the current FLWR bindings to the XPath engine.
func (ev *Evaluator) syncXPathVars() {
	for name, stack := range ev.vars {
		if len(stack) == 0 {
			delete(ev.xe.Vars, name)
			continue
		}
		ev.xe.Vars[name] = seqToXPathValue(stack[len(stack)-1])
	}
}

// seqToXPathValue lowers a sequence to an XPath value: node sequences
// become node-sets, atomic singletons pass through, the empty sequence is
// the empty node-set.
func seqToXPathValue(s Seq) xpath.Value {
	if len(s) == 1 {
		switch v := s[0].(type) {
		case string, float64, bool:
			return v
		}
	}
	ns := make(xpath.NodeSet, 0, len(s))
	for _, it := range s {
		if r, ok := it.(xpath.NodeRef); ok {
			ns = append(ns, r)
		}
	}
	return ns
}

func valueToSeq(v xpath.Value) Seq {
	switch t := v.(type) {
	case xpath.NodeSet:
		out := make(Seq, len(t))
		for i, r := range t {
			out[i] = r
		}
		return out
	default:
		return Seq{t}
	}
}

func (ev *Evaluator) eval(q Query) (Seq, error) {
	switch t := q.(type) {
	case Empty:
		return nil, nil
	case Text:
		return Seq{t.S}, nil
	case Sequence:
		var out Seq
		for _, it := range t.Items {
			s, err := ev.eval(it)
			if err != nil {
				return nil, err
			}
			out = append(out, s...)
		}
		return out, nil
	case Expr:
		ev.syncXPathVars()
		v, err := ev.xe.Eval(t.E)
		if err != nil {
			return nil, err
		}
		return valueToSeq(v), nil
	case For:
		in, err := ev.eval(t.In)
		if err != nil {
			return nil, err
		}
		var out Seq
		if ob, ok := t.Return.(OrderBy); ok {
			return ev.evalOrderedFor(in, t.Var, ob)
		}
		for _, item := range in {
			ev.push(t.Var, Seq{item})
			s, err := ev.eval(t.Return)
			ev.pop(t.Var)
			if err != nil {
				return nil, err
			}
			out = append(out, s...)
		}
		return out, nil
	case Let:
		val, err := ev.eval(t.Val)
		if err != nil {
			return nil, err
		}
		ev.push(t.Var, val)
		defer ev.pop(t.Var)
		return ev.eval(t.Return)
	case If:
		cond, err := ev.eval(t.Cond)
		if err != nil {
			return nil, err
		}
		if effectiveBool(cond) {
			return ev.eval(t.Then)
		}
		return ev.eval(t.Else)
	case OrderBy:
		// An OrderBy not directly under a For (degenerate): just evaluate
		// the body.
		return ev.eval(t.Body)
	case Element:
		return ev.evalElement(t)
	case FuncQ:
		return ev.evalFuncQ(t)
	case Quantified:
		in, err := ev.eval(t.In)
		if err != nil {
			return nil, err
		}
		for _, item := range in {
			ev.push(t.Var, Seq{item})
			s, err := ev.eval(t.Sat)
			ev.pop(t.Var)
			if err != nil {
				return nil, err
			}
			if effectiveBool(s) != t.Every {
				return Seq{!t.Every}, nil
			}
		}
		return Seq{t.Every}, nil
	}
	return nil, fmt.Errorf("xquery: cannot evaluate %T", q)
}

// evalOrderedFor evaluates for $v in `in` order by keys return body.
func (ev *Evaluator) evalOrderedFor(in Seq, varName string, ob OrderBy) (Seq, error) {
	type entry struct {
		keys []string
		item Item
	}
	entries := make([]entry, 0, len(in))
	for _, item := range in {
		ev.push(varName, Seq{item})
		ev.syncXPathVars()
		keys := make([]string, len(ob.Keys))
		for i, k := range ob.Keys {
			v, err := ev.xe.Eval(k)
			if err != nil {
				ev.pop(varName)
				return nil, err
			}
			keys[i] = xpath.ToString(v)
		}
		ev.pop(varName)
		entries = append(entries, entry{keys: keys, item: item})
	}
	sort.SliceStable(entries, func(i, j int) bool {
		for k := range entries[i].keys {
			if entries[i].keys[k] != entries[j].keys[k] {
				less := entries[i].keys[k] < entries[j].keys[k]
				if ob.Descending {
					return !less
				}
				return less
			}
		}
		return false
	})
	var out Seq
	for _, e := range entries {
		ev.push(varName, Seq{e.item})
		s, err := ev.eval(ob.Body)
		ev.pop(varName)
		if err != nil {
			return nil, err
		}
		out = append(out, s...)
	}
	return out, nil
}

// effectiveBool is the XQuery effective boolean value of a sequence.
func effectiveBool(s Seq) bool {
	if len(s) == 0 {
		return false
	}
	if len(s) == 1 {
		switch v := s[0].(type) {
		case bool:
			return v
		case string:
			return v != ""
		case float64:
			return v != 0 && !math.IsNaN(v)
		}
	}
	return true // non-empty node sequence
}

// evalElement builds a constructed element. Node content is deep-copied
// (XQuery constructor semantics); adjacent atomic values are joined with
// single spaces.
func (ev *Evaluator) evalElement(e Element) (Seq, error) {
	n := tree.NewElement(e.Tag)
	for _, a := range e.Attrs {
		if a.Expr == nil {
			n.SetAttr(a.Name, a.Literal)
			continue
		}
		s, err := ev.eval(a.Expr)
		if err != nil {
			return nil, err
		}
		n.SetAttr(a.Name, seqString(s))
	}
	if e.Body != nil {
		var textBuf strings.Builder
		flushText := func() {
			if textBuf.Len() > 0 {
				n.Append(tree.NewText(textBuf.String()))
				textBuf.Reset()
			}
		}
		// Literal text pieces splice in verbatim; within one enclosed
		// expression, adjacent atomic items are joined by single spaces
		// (XQuery constructor semantics).
		for _, piece := range bodyPieces(e.Body) {
			if txt, ok := piece.(Text); ok {
				textBuf.WriteString(txt.S)
				continue
			}
			items, err := ev.eval(piece)
			if err != nil {
				return nil, err
			}
			pendingAtomic := false
			for _, item := range items {
				switch v := item.(type) {
				case xpath.NodeRef:
					if v.IsAttr() {
						n.SetAttr(v.N.Attrs[v.AttrIdx].Name, v.N.Attrs[v.AttrIdx].Value)
						continue
					}
					flushText()
					n.Append(copyNode(v.N))
					pendingAtomic = false
				default:
					if pendingAtomic {
						textBuf.WriteString(" ")
					}
					textBuf.WriteString(atomicString(item))
					pendingAtomic = true
				}
			}
		}
		flushText()
	}
	return Seq{xpath.ElemRef(n)}, nil
}

// bodyPieces splits a constructor body into its top-level content pieces.
func bodyPieces(q Query) []Query {
	if s, ok := q.(Sequence); ok {
		return s.Items
	}
	return []Query{q}
}

func copyNode(n *tree.Node) *tree.Node {
	m := &tree.Node{Kind: n.Kind, Tag: n.Tag, Data: n.Data}
	m.Attrs = append(m.Attrs, n.Attrs...)
	for _, c := range n.Children {
		m.Append(copyNode(c))
	}
	return m
}

func atomicString(it Item) string {
	switch v := it.(type) {
	case xpath.NodeRef:
		return v.StringValue()
	case string:
		return v
	case float64:
		return xpath.FormatNumber(v)
	case bool:
		if v {
			return "true"
		}
		return "false"
	}
	return ""
}

func seqString(s Seq) string {
	parts := make([]string, len(s))
	for i, it := range s {
		parts[i] = atomicString(it)
	}
	return strings.Join(parts, " ")
}

func (ev *Evaluator) evalFuncQ(f FuncQ) (Seq, error) {
	args := make([]Seq, len(f.Args))
	for i, a := range f.Args {
		s, err := ev.eval(a)
		if err != nil {
			return nil, err
		}
		args[i] = s
	}
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("xquery: %s() expects %d argument(s), got %d", f.Name, n, len(args))
		}
		return nil
	}
	switch f.Name {
	case "count":
		if err := arity(1); err != nil {
			return nil, err
		}
		return Seq{float64(len(args[0]))}, nil
	case "empty":
		if err := arity(1); err != nil {
			return nil, err
		}
		return Seq{len(args[0]) == 0}, nil
	case "exists":
		if err := arity(1); err != nil {
			return nil, err
		}
		return Seq{len(args[0]) > 0}, nil
	case "sum", "avg", "min", "max":
		if err := arity(1); err != nil {
			return nil, err
		}
		return aggregateSeq(f.Name, args[0])
	case "distinct-values":
		if err := arity(1); err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		var out Seq
		for _, it := range args[0] {
			s := atomicString(it)
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
		return out, nil
	case "string-join":
		if err := arity(2); err != nil {
			return nil, err
		}
		parts := make([]string, len(args[0]))
		for i, it := range args[0] {
			parts[i] = atomicString(it)
		}
		return Seq{strings.Join(parts, seqString(args[1]))}, nil
	case "zero-or-one", "exactly-one", "data":
		if err := arity(1); err != nil {
			return nil, err
		}
		return args[0], nil
	}
	return nil, fmt.Errorf("xquery: unknown function %s()", f.Name)
}

func aggregateSeq(name string, s Seq) (Seq, error) {
	if len(s) == 0 {
		if name == "sum" {
			return Seq{0.0}, nil
		}
		return nil, nil
	}
	acc := 0.0
	switch name {
	case "min":
		acc = math.Inf(1)
	case "max":
		acc = math.Inf(-1)
	}
	for _, it := range s {
		f := xpath.ToNumber(atomicString(it))
		switch name {
		case "sum", "avg":
			acc += f
		case "min":
			acc = math.Min(acc, f)
		case "max":
			acc = math.Max(acc, f)
		}
	}
	if name == "avg" {
		acc /= float64(len(s))
	}
	return Seq{acc}, nil
}

// Serialize renders a result sequence as XML text (constructed elements
// serialised, atomics printed, top-level items separated by newlines).
func Serialize(s Seq) string {
	var sb strings.Builder
	for i, it := range s {
		if i > 0 {
			sb.WriteString("\n")
		}
		switch v := it.(type) {
		case xpath.NodeRef:
			if v.IsAttr() {
				sb.WriteString(v.StringValue())
			} else {
				d := tree.Document{Root: v.N}
				sb.WriteString(d.XML())
			}
		default:
			sb.WriteString(atomicString(it))
		}
	}
	return sb.String()
}
