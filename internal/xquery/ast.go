// Package xquery implements the FLWR core of XQuery used by the paper
// (§5): parsing, the Fig. 3 path-extraction function E(q, Γ, m), the
// for/if predicate-pushing heuristic, and an evaluator.
package xquery

import (
	"fmt"
	"strings"

	"xmlproj/internal/xpath"
)

// Query is a FLWR-core query:
//
//	q ::= () | <tag>q</tag> | q, q | for x in q return q
//	    | let x := q return q | if q then q else q | Exp
type Query interface {
	fmt.Stringer
	queryNode()
}

// Empty is the empty sequence ().
type Empty struct{}

// Sequence is q1, q2, …, qn.
type Sequence struct{ Items []Query }

// Attr is one attribute of an element constructor; Value may be a literal
// (Expr nil) or a computed expression.
type Attr struct {
	Name    string
	Literal string
	Expr    Query
}

// Element is an element constructor <tag …>q</tag>.
type Element struct {
	Tag   string
	Attrs []Attr
	Body  Query
}

// Text is literal character content inside an element constructor.
type Text struct{ S string }

// For is for $Var in In return Return. Multiple bindings and where
// clauses are desugared by the parser into nested For/If.
type For struct {
	Var    string
	In     Query
	Return Query
}

// Let is let $Var := Val return Return.
type Let struct {
	Var    string
	Val    Query
	Return Query
}

// If is if (Cond) then Then else Else.
type If struct {
	Cond Query
	Then Query
	Else Query
}

// OrderBy wraps a For body: evaluate Return for each binding, ordered by
// the Keys. It is produced by "order by" clauses; extraction treats keys
// as value-consuming expressions.
type OrderBy struct {
	// Keys are evaluated in the for-variable's scope.
	Keys       []xpath.Expr
	Descending bool
	Body       Query
}

// Expr wraps an XPath expression (possibly rooted at a variable) as a
// query.
type Expr struct{ E xpath.Expr }

func (Empty) queryNode()    {}
func (Sequence) queryNode() {}
func (Element) queryNode()  {}
func (Text) queryNode()     {}
func (For) queryNode()      {}
func (Let) queryNode()      {}
func (If) queryNode()       {}
func (OrderBy) queryNode()  {}
func (Expr) queryNode()     {}

func (Empty) String() string { return "()" }

func (s Sequence) String() string {
	parts := make([]string, len(s.Items))
	for i, q := range s.Items {
		parts[i] = q.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func (e Element) String() string {
	var sb strings.Builder
	sb.WriteString("<")
	sb.WriteString(e.Tag)
	for _, a := range e.Attrs {
		sb.WriteString(" ")
		sb.WriteString(a.Name)
		sb.WriteString("=")
		if a.Expr != nil {
			sb.WriteString("{" + a.Expr.String() + "}")
		} else {
			sb.WriteString(`"` + a.Literal + `"`)
		}
	}
	if e.Body == nil {
		sb.WriteString("/>")
		return sb.String()
	}
	sb.WriteString(">{ ")
	sb.WriteString(e.Body.String())
	sb.WriteString(" }</")
	sb.WriteString(e.Tag)
	sb.WriteString(">")
	return sb.String()
}

func (t Text) String() string { return fmt.Sprintf("%q", t.S) }

func (f For) String() string {
	if ob, ok := f.Return.(OrderBy); ok {
		keys := make([]string, len(ob.Keys))
		for i, k := range ob.Keys {
			keys[i] = k.String()
		}
		dir := ""
		if ob.Descending {
			dir = " descending"
		}
		return fmt.Sprintf("for $%s in %s order by %s%s return %s",
			f.Var, f.In, strings.Join(keys, ", "), dir, ob.Body)
	}
	return fmt.Sprintf("for $%s in %s return %s", f.Var, f.In, f.Return)
}

func (l Let) String() string {
	return fmt.Sprintf("let $%s := %s return %s", l.Var, l.Val, l.Return)
}

func (i If) String() string {
	return fmt.Sprintf("if (%s) then %s else %s", i.Cond, i.Then, i.Else)
}

func (o OrderBy) String() string {
	keys := make([]string, len(o.Keys))
	for i, k := range o.Keys {
		keys[i] = k.String()
	}
	dir := ""
	if o.Descending {
		dir = " descending"
	}
	return fmt.Sprintf("order by %s%s %s", strings.Join(keys, ", "), dir, o.Body)
}

func (e Expr) String() string { return e.E.String() }

// FreeVars collects the free variables of a query into out.
func FreeVars(q Query, out map[string]bool) {
	switch t := q.(type) {
	case Empty, Text, nil:
	case Sequence:
		for _, it := range t.Items {
			FreeVars(it, out)
		}
	case Element:
		for _, a := range t.Attrs {
			if a.Expr != nil {
				FreeVars(a.Expr, out)
			}
		}
		FreeVars(t.Body, out)
	case For:
		FreeVars(t.In, out)
		inner := map[string]bool{}
		FreeVars(t.Return, inner)
		delete(inner, t.Var)
		for v := range inner {
			out[v] = true
		}
	case Let:
		FreeVars(t.Val, out)
		inner := map[string]bool{}
		FreeVars(t.Return, inner)
		delete(inner, t.Var)
		for v := range inner {
			out[v] = true
		}
	case If:
		FreeVars(t.Cond, out)
		FreeVars(t.Then, out)
		FreeVars(t.Else, out)
	case OrderBy:
		for _, k := range t.Keys {
			exprFreeVars(k, out)
		}
		FreeVars(t.Body, out)
	case Quantified:
		FreeVars(t.In, out)
		inner := map[string]bool{}
		FreeVars(t.Sat, inner)
		delete(inner, t.Var)
		for v := range inner {
			out[v] = true
		}
	case FuncQ:
		for _, a := range t.Args {
			FreeVars(a, out)
		}
	case Expr:
		exprFreeVars(t.E, out)
	}
}

func exprFreeVars(e xpath.Expr, out map[string]bool) {
	switch t := e.(type) {
	case xpath.Var:
		out[t.Name] = true
	case xpath.Binary:
		exprFreeVars(t.L, out)
		exprFreeVars(t.R, out)
	case xpath.Neg:
		exprFreeVars(t.E, out)
	case xpath.Call:
		for _, a := range t.Args {
			exprFreeVars(a, out)
		}
	case xpath.PathExpr:
		if t.Filter != nil {
			exprFreeVars(t.Filter, out)
		}
		for _, p := range t.FilterPreds {
			exprFreeVars(p, out)
		}
		for _, st := range t.Path.Steps {
			for _, p := range st.Preds {
				exprFreeVars(p, out)
			}
		}
	}
}
