package xquery

import (
	"xmlproj/internal/xpath"
	"xmlproj/internal/xpathl"
)

// This file implements the Fig. 3 path-extraction function E(q, Γ, m) and
// the §5 for/if rewriting heuristic. The extracted XPathℓ paths are the
// query's data needs; their union projector (core.Infer) is a sound
// projector for the whole query.

// binding is one Γ entry (x; for P) or (x; let P).
type binding struct {
	isFor bool
	path  *xpathl.Path
}

// env is Γ: each variable may be bound to several paths (one per path
// extracted from its binding query).
type env map[string][]binding

func (e env) extend(name string, isFor bool, paths []*xpathl.Path) env {
	out := make(env, len(e)+1)
	for k, v := range e {
		out[k] = v
	}
	var bs []binding
	for _, p := range paths {
		bs = append(bs, binding{isFor: isFor, path: p})
	}
	out[name] = bs
	return out
}

// dosStep is the descendant-or-self::node() materialisation step.
var dosStep = xpathl.SStep{Axis: xpath.DescendantOrSelf, Test: xpath.NodeTestNode}

// Extract computes the data-need paths of a top-level query:
// E(q, ∅, 1). Free variables are treated as bound to the document root.
func Extract(q Query) []*xpathl.Path {
	return dedupPaths(extract(q, env{}, 1))
}

// forPaths returns {P | (x; for P) ∈ Γ}.
func forPaths(g env) []*xpathl.Path {
	var out []*xpathl.Path
	for _, bs := range g {
		for _, b := range bs {
			if b.isFor {
				out = append(out, b.path)
			}
		}
	}
	return out
}

// allPaths returns {P | (x; − P) ∈ Γ}.
func allPaths(g env) []*xpathl.Path {
	var out []*xpathl.Path
	for _, bs := range g {
		for _, b := range bs {
			out = append(out, b.path)
		}
	}
	return out
}

func extract(q Query, g env, m int) []*xpathl.Path {
	switch t := q.(type) {
	case Empty, Text, nil:
		return nil // lines 1; literal text has no data needs
	case Sequence:
		var out []*xpathl.Path
		for _, it := range t.Items {
			out = append(out, extract(it, g, m)...)
		}
		return out // line 4
	case Element:
		out := forPaths(g) // line 5
		for _, a := range t.Attrs {
			if a.Expr != nil {
				out = append(out, extract(a.Expr, g, 1)...)
			}
		}
		out = append(out, extract(t.Body, g, 1)...)
		return out
	case For:
		inPaths := extract(t.In, g, 0) // line 16
		g2 := g.extend(t.Var, true, inPaths)
		return append(inPaths, extract(t.Return, g2, m)...)
	case Let:
		valPaths := extract(t.Val, g, 0) // line 17
		g2 := g.extend(t.Var, false, valPaths)
		return append(valPaths, extract(t.Return, g2, m)...)
	case If:
		// Line 15: condition with m=0, branches with m=1, plus every
		// bound path.
		out := extract(t.Cond, g, 0)
		out = append(out, extract(t.Then, g, 1)...)
		out = append(out, extract(t.Else, g, 1)...)
		out = append(out, allPaths(g)...)
		return out
	case OrderBy:
		var out []*xpathl.Path
		for _, k := range t.Keys {
			out = append(out, extractExpr(k, g, 1)...)
		}
		return append(out, extract(t.Body, g, m)...)
	case Quantified:
		inPaths := extract(t.In, g, 0)
		g2 := g.extend(t.Var, true, inPaths)
		return append(inPaths, extract(t.Sat, g2, 0)...)
	case FuncQ:
		// Line 14 lifted to sequence functions.
		var out []*xpathl.Path
		for i, a := range t.Args {
			step := xpathl.FuncArgAxis(t.Name, i)
			for _, p := range extract(a, g, 0) {
				out = append(out, p.AppendStep(step))
			}
		}
		return out
	case Expr:
		return extractExpr(t.E, g, m)
	}
	return nil
}

// extractExpr implements lines 2–3, 6–14 over embedded XPath expressions,
// resolving variable-rooted paths through Γ.
func extractExpr(e xpath.Expr, g env, m int) []*xpathl.Path {
	switch t := e.(type) {
	case xpath.Literal, xpath.Number:
		if m == 1 {
			return forPaths(g) // line 2
		}
		return nil // line 3
	case xpath.Var:
		var out []*xpathl.Path
		for _, b := range g[t.Name] {
			if m == 1 {
				out = append(out, b.path.AppendStep(dosStep)) // line 6
			} else {
				out = append(out, b.path) // line 7
			}
		}
		if len(out) == 0 && m == 1 {
			// A free variable is assumed bound to the root.
			out = append(out, rootDosPath())
		}
		return out
	case xpath.Neg:
		return extractExpr(t.E, g, 1)
	case xpath.Binary:
		switch t.Op {
		case xpath.OpAnd, xpath.OpOr, xpath.OpUnion:
			return append(extractExpr(t.L, g, m), extractExpr(t.R, g, m)...)
		case xpath.OpEq, xpath.OpNeq, xpath.OpLt, xpath.OpLe, xpath.OpGt, xpath.OpGe:
			// Value comparison: operand string-values are needed (the same
			// strengthening as xpathl.ExtractCond; see its package note).
			return append(extractExpr(t.L, g, 1), extractExpr(t.R, g, 1)...)
		default: // arithmetic
			return append(extractExpr(t.L, g, 1), extractExpr(t.R, g, 1)...)
		}
	case xpath.Call:
		// Line 14: argument paths with F(f, i) appended.
		var out []*xpathl.Path
		for i, a := range t.Args {
			step := xpathl.FuncArgAxis(t.Name, i)
			for _, p := range extractExpr(a, g, 0) {
				out = append(out, p.AppendStep(step))
			}
		}
		return out
	case xpath.PathExpr:
		return extractPathExpr(t, g, m)
	}
	return nil
}

func rootDosPath() *xpathl.Path {
	return &xpathl.Path{Absolute: true, Steps: []xpathl.Step{{SStep: dosStep}}}
}

// extractPathExpr handles lines 8–12: paths rooted at the document or at
// a variable, with their predicates approximated into conditions.
func extractPathExpr(pe xpath.PathExpr, g env, m int) []*xpathl.Path {
	// Approximate the navigational part (predicates become conditions).
	approxPath := func(abs bool) *xpathl.Path {
		cp := pe
		cp.Filter = nil
		cp.FilterPreds = nil
		cp.Path.Absolute = abs
		ps, err := xpathl.FromQuery(cp)
		if err != nil || len(ps) != 1 {
			return &xpathl.Path{Absolute: abs}
		}
		return ps[0]
	}
	widen := func(p *xpathl.Path) *xpathl.Path {
		if m == 1 {
			return p.AppendStep(dosStep) // lines 8, 10
		}
		return p
	}
	if pe.Filter == nil {
		// Lines 8–9: a document-rooted path (a relative top-level path is
		// interpreted against the root, as the paper's /P form).
		return []*xpathl.Path{widen(approxPath(true))}
	}
	v, ok := pe.Filter.(xpath.Var)
	if !ok {
		// A non-variable filter (rare; e.g. a parenthesised expression):
		// conservatively take the filter's needs materialised.
		return extractExpr(pe.Filter, g, 1)
	}
	// Line 10: x/Q — prefix every binding path of x.
	rel := approxPath(false)
	// Filter predicates $x[Exp] become a condition on a self step.
	if len(pe.FilterPreds) > 0 {
		cond := &xpathl.Cond{}
		for _, pr := range pe.FilterPreds {
			for _, sp := range xpathl.ExtractCond(pr) {
				cond.Disjuncts = append(cond.Disjuncts, sp)
			}
		}
		selfStep := xpathl.Step{
			SStep: xpathl.SStep{Axis: xpath.Self, Test: xpath.NodeTestNode},
			Cond:  cond,
		}
		rel = &xpathl.Path{Steps: append([]xpathl.Step{selfStep}, rel.Steps...)}
	}
	var out []*xpathl.Path
	bs := g[v.Name]
	if len(bs) == 0 {
		// Free variable: treat as bound to the document node.
		out = append(out, widen(xpathl.MakeAbsolute(rel)))
		return out
	}
	for _, b := range bs {
		out = append(out, widen(xpathl.Concat(b.path, rel)))
	}
	return out
}

func dedupPaths(paths []*xpathl.Path) []*xpathl.Path {
	seen := map[string]bool{}
	var out []*xpathl.Path
	for _, p := range paths {
		if p == nil || len(p.Steps) == 0 && !p.Absolute {
			continue
		}
		k := p.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, p)
	}
	return out
}

// RewriteForIf applies the §5 heuristic: a for over a path whose body is
// `if C($x) then q else ()` — with C referring only to $x and using no
// positional functions — becomes a for over the path filtered by
// [C(self::node())]. The rewriting preserves semantics and lets the
// extractor see the condition, restoring pruning that path-only analyses
// lose.
func RewriteForIf(q Query) Query {
	switch t := q.(type) {
	case Sequence:
		items := make([]Query, len(t.Items))
		for i, it := range t.Items {
			items[i] = RewriteForIf(it)
		}
		return Sequence{Items: items}
	case Element:
		t.Body = RewriteForIf(t.Body)
		return t
	case Let:
		t.Val = RewriteForIf(t.Val)
		t.Return = RewriteForIf(t.Return)
		return t
	case If:
		t.Cond = RewriteForIf(t.Cond)
		t.Then = RewriteForIf(t.Then)
		t.Else = RewriteForIf(t.Else)
		return t
	case OrderBy:
		t.Body = RewriteForIf(t.Body)
		return t
	case FuncQ:
		args := make([]Query, len(t.Args))
		for i, a := range t.Args {
			args[i] = RewriteForIf(a)
		}
		return FuncQ{Name: t.Name, Args: args}
	case Quantified:
		t.In = RewriteForIf(t.In)
		t.Sat = RewriteForIf(t.Sat)
		return t
	case For:
		t.In = RewriteForIf(t.In)
		t.Return = RewriteForIf(t.Return)
		rewritten := tryPushCondition(t)
		return rewritten
	default:
		return q
	}
}

// tryPushCondition attempts the actual rewriting on one for-loop.
func tryPushCondition(f For) Query {
	iff, ok := f.Return.(If)
	if !ok {
		return f
	}
	if _, isEmpty := iff.Else.(Empty); !isEmpty {
		return f
	}
	condExpr, ok := iff.Cond.(Expr)
	if !ok {
		return f
	}
	inExpr, ok := f.In.(Expr)
	if !ok {
		return f
	}
	inPath, ok := inExpr.E.(xpath.PathExpr)
	if !ok || len(inPath.Path.Steps) == 0 {
		return f
	}
	// The condition must depend only on the loop variable and must not use
	// positional functions (their meaning changes inside a predicate).
	free := map[string]bool{}
	exprFreeVars(condExpr.E, free)
	delete(free, f.Var)
	if len(free) > 0 || usesPositional(condExpr.E) {
		return f
	}
	cond, ok := substSelf(condExpr.E, f.Var)
	if !ok {
		return f
	}
	last := len(inPath.Path.Steps) - 1
	step := inPath.Path.Steps[last]
	step.Preds = append(append([]xpath.Expr{}, step.Preds...), cond)
	newSteps := append(append([]xpath.Step{}, inPath.Path.Steps[:last]...), step)
	inPath.Path = xpath.Path{Absolute: inPath.Path.Absolute, Steps: newSteps}
	return For{Var: f.Var, In: Expr{E: inPath}, Return: iff.Then}
}

func usesPositional(e xpath.Expr) bool {
	found := false
	var walk func(xpath.Expr)
	walk = func(e xpath.Expr) {
		switch t := e.(type) {
		case xpath.Call:
			if t.Name == "position" || t.Name == "last" {
				found = true
			}
			for _, a := range t.Args {
				walk(a)
			}
		case xpath.Binary:
			walk(t.L)
			walk(t.R)
		case xpath.Neg:
			walk(t.E)
		case xpath.PathExpr:
			if t.Filter != nil {
				walk(t.Filter)
			}
			for _, p := range t.FilterPreds {
				walk(p)
			}
			for _, st := range t.Path.Steps {
				for _, p := range st.Preds {
					walk(p)
				}
			}
		}
	}
	walk(e)
	return found
}

// substSelf replaces references to $v by the context node: $v/P becomes
// P, a bare $v becomes self::node(). It reports failure for shapes it
// cannot rewrite (e.g. $v inside a nested filter).
func substSelf(e xpath.Expr, v string) (xpath.Expr, bool) {
	switch t := e.(type) {
	case xpath.Literal, xpath.Number:
		return e, true
	case xpath.Var:
		if t.Name == v {
			return xpath.PathExpr{Path: xpath.Path{Steps: []xpath.Step{{Axis: xpath.Self, Test: xpath.NodeTestNode}}}}, true
		}
		return e, true
	case xpath.Neg:
		inner, ok := substSelf(t.E, v)
		return xpath.Neg{E: inner}, ok
	case xpath.Binary:
		l, ok1 := substSelf(t.L, v)
		r, ok2 := substSelf(t.R, v)
		return xpath.Binary{Op: t.Op, L: l, R: r}, ok1 && ok2
	case xpath.Call:
		args := make([]xpath.Expr, len(t.Args))
		for i, a := range t.Args {
			na, ok := substSelf(a, v)
			if !ok {
				return e, false
			}
			args[i] = na
		}
		return xpath.Call{Name: t.Name, Args: args}, true
	case xpath.PathExpr:
		if t.Filter == nil {
			return e, true
		}
		fv, ok := t.Filter.(xpath.Var)
		if !ok || fv.Name != v {
			return e, false
		}
		if len(t.FilterPreds) > 0 {
			return e, false
		}
		return xpath.PathExpr{Path: t.Path}, true
	}
	return e, false
}
