package xquery

import (
	"strings"
	"testing"

	"xmlproj/internal/tree"
)

const siteXML = `<site>
<people>
<person id="p0"><name>Ada</name><watches><watch open_auction="a1"/><watch open_auction="a2"/></watches></person>
<person id="p1"><name>Bob</name></person>
<person id="p2"><name>Cid</name><watches><watch open_auction="a1"/></watches></person>
</people>
<open_auctions>
<open_auction id="a1"><bidder><increase>3</increase></bidder><bidder><increase>12</increase></bidder></open_auction>
<open_auction id="a2"><bidder><increase>5</increase></bidder></open_auction>
</open_auctions>
</site>`

func siteDoc(t *testing.T) *tree.Document {
	t.Helper()
	d, err := tree.ParseString(siteXML)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func run(t *testing.T, doc *tree.Document, src string) string {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	s, err := NewEvaluator(doc).Eval(q)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return Serialize(s)
}

func TestEvalSimpleFor(t *testing.T) {
	doc := siteDoc(t)
	got := run(t, doc, `for $p in /site/people/person return $p/name/text()`)
	if got != "Ada\nBob\nCid" {
		t.Fatalf("got %q", got)
	}
}

func TestEvalWhere(t *testing.T) {
	doc := siteDoc(t)
	got := run(t, doc, `for $p in /site/people/person where $p/watches return $p/name/text()`)
	if got != "Ada\nCid" {
		t.Fatalf("got %q", got)
	}
}

func TestEvalLetAndCount(t *testing.T) {
	doc := siteDoc(t)
	got := run(t, doc, `for $p in /site/people/person let $w := $p/watches/watch return count($w)`)
	if got != "2\n0\n1" {
		t.Fatalf("got %q", got)
	}
}

func TestEvalElementConstruction(t *testing.T) {
	doc := siteDoc(t)
	got := run(t, doc, `for $p in /site/people/person where $p/watches return <watcher name="{$p/name/text()}">{ count($p/watches/watch) }</watcher>`)
	want := `<watcher name="Ada">2</watcher>` + "\n" + `<watcher name="Cid">1</watcher>`
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestEvalConstructorCopiesNodes(t *testing.T) {
	doc := siteDoc(t)
	got := run(t, doc, `<out>{ /site/people/person[1]/name }</out>`)
	if got != "<out><name>Ada</name></out>" {
		t.Fatalf("got %q", got)
	}
	// The original document is untouched.
	if doc.Root.Children[0].Children[0].Children[0].Tag != "name" {
		t.Fatal("original mutated")
	}
}

func TestEvalIf(t *testing.T) {
	doc := siteDoc(t)
	got := run(t, doc, `if (/site/people) then "yes" else "no"`)
	if got != "yes" {
		t.Fatalf("got %q", got)
	}
	got = run(t, doc, `if (/site/nosuch) then "yes" else "no"`)
	if got != "no" {
		t.Fatalf("got %q", got)
	}
}

func TestEvalSequence(t *testing.T) {
	doc := siteDoc(t)
	got := run(t, doc, `count(/site/people/person), count(//watch)`)
	if got != "3\n3" {
		t.Fatalf("got %q", got)
	}
}

func TestEvalJoin(t *testing.T) {
	// XMark Q8 shape: who watches what.
	doc := siteDoc(t)
	got := run(t, doc, `
for $p in /site/people/person
let $w := for $a in /site/open_auctions/open_auction
          where some $x in $p/watches/watch satisfies $x/@open_auction = $a/@id
          return $a
return <w person="{$p/name/text()}">{ count($w) }</w>`)
	want := `<w person="Ada">2</w>` + "\n" + `<w person="Bob">0</w>` + "\n" + `<w person="Cid">1</w>`
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestEvalCountOverFLWR(t *testing.T) {
	doc := siteDoc(t)
	got := run(t, doc, `count(for $p in /site/people/person where $p/watches return $p)`)
	if got != "2" {
		t.Fatalf("got %q", got)
	}
}

func TestEvalDistinctValues(t *testing.T) {
	doc := siteDoc(t)
	got := run(t, doc, `for $c in distinct-values(//watch/@open_auction) return <cat>{ $c }</cat>`)
	if got != "<cat>a1</cat>\n<cat>a2</cat>" {
		t.Fatalf("got %q", got)
	}
}

func TestEvalQuantifiedEvery(t *testing.T) {
	doc := siteDoc(t)
	got := run(t, doc, `if (every $w in //watch satisfies $w/@open_auction) then "all" else "some"`)
	if got != "all" {
		t.Fatalf("got %q", got)
	}
}

func TestEvalOrderBy(t *testing.T) {
	doc := siteDoc(t)
	got := run(t, doc, `for $p in /site/people/person order by $p/name/text() descending return $p/name/text()`)
	if got != "Cid\nBob\nAda" {
		t.Fatalf("got %q", got)
	}
}

func TestEvalPositionalInXPath(t *testing.T) {
	// XMark Q2 shape.
	doc := siteDoc(t)
	got := run(t, doc, `for $b in /site/open_auctions/open_auction return <increase>{ $b/bidder[1]/increase/text() }</increase>`)
	if got != "<increase>3</increase>\n<increase>5</increase>" {
		t.Fatalf("got %q", got)
	}
}

func TestEvalArithmeticWhere(t *testing.T) {
	// XMark Q3 shape.
	doc := siteDoc(t)
	got := run(t, doc, `for $b in /site/open_auctions/open_auction where zero-or-one($b/bidder[1]/increase/text()) * 2 <= $b/bidder[last()]/increase/text() return $b/@id`)
	if got != "a1" {
		t.Fatalf("got %q", got)
	}
}

func TestEvalAggregates(t *testing.T) {
	doc := siteDoc(t)
	cases := map[string]string{
		`sum(//increase)`:                 "20",
		`avg(//increase)`:                 "6.666666666666667",
		`min(//increase)`:                 "3",
		`max(//increase)`:                 "12",
		`string-join(("a","b","c"), "-")`: "a-b-c",
		`empty(//nosuch)`:                 "true",
		`exists(//watch)`:                 "true",
	}
	for src, want := range cases {
		if got := run(t, doc, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestEvalTextContent(t *testing.T) {
	doc := siteDoc(t)
	got := run(t, doc, `<p>watchers: { count(//watch) } total</p>`)
	if got != "<p>watchers: 3 total</p>" {
		t.Fatalf("got %q", got)
	}
}

func TestEvalNestedConstructors(t *testing.T) {
	doc := siteDoc(t)
	got := run(t, doc, `<out><n>{ count(//person) }</n><w>{ count(//watch) }</w></out>`)
	if got != "<out><n>3</n><w>3</w></out>" {
		t.Fatalf("got %q", got)
	}
}

func TestEvalVariableShadowing(t *testing.T) {
	doc := siteDoc(t)
	got := run(t, doc, `for $x in /site/people/person[1] return (for $x in $x/watches/watch return $x/@open_auction)`)
	if got != "a1\na2" {
		t.Fatalf("got %q", got)
	}
}

func TestEvalErrors(t *testing.T) {
	doc := siteDoc(t)
	for _, src := range []string{
		`$unbound`, `unknownagg(//a, //b, //c)`,
	} {
		q, err := Parse(src)
		if err != nil {
			continue // parse error is fine too
		}
		if _, err := NewEvaluator(doc).Eval(q); err == nil {
			t.Errorf("Eval(%q) succeeded, want error", src)
		}
	}
}

func TestSerializeAtomics(t *testing.T) {
	doc := siteDoc(t)
	if got := run(t, doc, `"x", 3, true()`); got != "x\n3\ntrue" {
		t.Fatalf("got %q", got)
	}
}

func TestEvalWhitespaceQuery(t *testing.T) {
	doc := siteDoc(t)
	src := strings.ReplaceAll(`for $p in /site/people/person
	where $p/watches
	return $p/@id`, "\t", "  ")
	if got := run(t, doc, src); got != "p0\np2" {
		t.Fatalf("got %q", got)
	}
}
