package xquery

import (
	"fmt"
	"strings"

	"xmlproj/internal/xpath"
)

// Two query forms beyond the paper's grammar are needed by the XMark
// benchmark queries and are handled natively:
//
//   - FuncQ: an aggregate applied to a full query, e.g. count(for … ),
//     distinct-values(path) (Q5, Q10, Q20);
//   - Quantified: some $x in q satisfies q (Q4).

// FuncQ applies a function to query arguments (sequence-level functions
// whose arguments may be FLWR expressions).
type FuncQ struct {
	Name string
	Args []Query
}

// Quantified is some/every $Var in In satisfies Sat.
type Quantified struct {
	Every bool
	Var   string
	In    Query
	Sat   Query
}

func (FuncQ) queryNode()      {}
func (Quantified) queryNode() {}

func (f FuncQ) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return f.Name + "(" + strings.Join(parts, ", ") + ")"
}

func (q Quantified) String() string {
	kw := "some"
	if q.Every {
		kw = "every"
	}
	return fmt.Sprintf("%s $%s in %s satisfies %s", kw, q.Var, q.In, q.Sat)
}

// seqFuncs are functions parsed at the query level so their arguments may
// be FLWR expressions or need sequence semantics.
var seqFuncs = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
	"distinct-values": true, "empty": true, "exists": true,
	"zero-or-one": true, "exactly-one": true, "data": true, "string-join": true,
}

// Parse parses a FLWR-core query.
func Parse(src string) (Query, error) {
	lex := xpath.NewLexer(src)
	p, err := xpath.NewParser(lex)
	if err != nil {
		return nil, err
	}
	qp := &qparser{p: p}
	q, err := qp.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.Tok().Kind != xpath.TokEOF {
		return nil, fmt.Errorf("xquery: trailing input at offset %d: %s", p.Tok().Pos, p.Tok())
	}
	return q, nil
}

// MustParse parses a known-good query, panicking on error.
func MustParse(src string) Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type qparser struct {
	p *xpath.Parser
}

func (qp *qparser) tok() xpath.Token { return qp.p.Tok() }

func (qp *qparser) advance() error { return qp.p.Advance() }

func (qp *qparser) expect(k xpath.TokKind, what string) error {
	if qp.tok().Kind != k {
		return fmt.Errorf("xquery: expected %s at offset %d, found %s", what, qp.tok().Pos, qp.tok())
	}
	return qp.advance()
}

func (qp *qparser) expectKeyword(kw string) error {
	if qp.tok().Kind != xpath.TokIdent || qp.tok().Text != kw {
		return fmt.Errorf("xquery: expected %q at offset %d, found %s", kw, qp.tok().Pos, qp.tok())
	}
	return qp.advance()
}

func (qp *qparser) atKeyword(kw string) bool {
	return qp.tok().Kind == xpath.TokIdent && qp.tok().Text == kw
}

// parseQuery parses a comma-separated sequence of single expressions.
func (qp *qparser) parseQuery() (Query, error) {
	first, err := qp.parseSingle()
	if err != nil {
		return nil, err
	}
	if qp.tok().Kind != xpath.TokComma {
		return first, nil
	}
	seq := Sequence{Items: []Query{first}}
	for qp.tok().Kind == xpath.TokComma {
		if err := qp.advance(); err != nil {
			return nil, err
		}
		item, err := qp.parseSingle()
		if err != nil {
			return nil, err
		}
		seq.Items = append(seq.Items, item)
	}
	return seq, nil
}

func (qp *qparser) parseSingle() (Query, error) {
	t := qp.tok()
	switch {
	case t.Kind == xpath.TokIdent && (t.Text == "for" || t.Text == "let") && qp.nextIsDollar():
		return qp.parseFLWR()
	case t.Kind == xpath.TokIdent && (t.Text == "some" || t.Text == "every") && qp.nextIsDollar():
		return qp.parseQuantified()
	case t.Kind == xpath.TokIdent && t.Text == "if":
		return qp.parseIf()
	case t.Kind == xpath.TokLt:
		return qp.parseElement()
	case t.Kind == xpath.TokIdent && pureSeqFuncs[t.Text] && qp.nextIsLParen():
		// Functions with no XPath-level counterpart are always parsed at
		// the query level.
		return qp.parseFuncQ()
	default:
		// Try a plain XPath expression first — it covers arithmetic over
		// parenthesised expressions and aggregate calls over paths (e.g.
		// zero-or-one(p) * 2 <= q). If that fails, backtrack and try the
		// query-level constructs that XPath cannot express: (), sequence
		// parentheses, and aggregates over FLWR arguments.
		start := t.Pos
		e, xerr := qp.p.ParseExpr()
		if xerr == nil {
			return Expr{E: e}, nil
		}
		qp.p.Lexer().SetPos(start)
		if err := qp.p.ResetLookahead(); err != nil {
			return nil, err
		}
		switch {
		case qp.tok().Kind == xpath.TokLParen:
			if err := qp.advance(); err != nil {
				return nil, err
			}
			if qp.tok().Kind == xpath.TokRParen {
				return Empty{}, qp.advance()
			}
			q, err := qp.parseQuery()
			if err != nil {
				return nil, err
			}
			if err := qp.expect(xpath.TokRParen, ")"); err != nil {
				return nil, err
			}
			return q, nil
		case qp.tok().Kind == xpath.TokIdent && seqFuncs[qp.tok().Text] && qp.nextIsLParen():
			return qp.parseFuncQ()
		}
		return nil, xerr
	}
}

// pureSeqFuncs have no XPath-level implementation; they always parse as
// FuncQ.
var pureSeqFuncs = map[string]bool{
	"distinct-values": true, "string-join": true,
}

// nextIsDollar peeks whether the token after the current keyword is '$'.
func (qp *qparser) nextIsDollar() bool {
	lex := qp.p.Lexer()
	save := lex.Pos()
	defer lex.SetPos(save)
	t, err := lex.Next()
	return err == nil && t.Kind == xpath.TokDollar
}

func (qp *qparser) nextIsLParen() bool {
	lex := qp.p.Lexer()
	save := lex.Pos()
	defer lex.SetPos(save)
	t, err := lex.Next()
	return err == nil && t.Kind == xpath.TokLParen
}

type clause struct {
	isFor bool
	v     string
	q     Query
}

func (qp *qparser) parseVar() (string, error) {
	if err := qp.expect(xpath.TokDollar, "$"); err != nil {
		return "", err
	}
	if qp.tok().Kind != xpath.TokIdent {
		return "", fmt.Errorf("xquery: expected variable name at offset %d", qp.tok().Pos)
	}
	name := qp.tok().Text
	return name, qp.advance()
}

func (qp *qparser) parseFLWR() (Query, error) {
	var clauses []clause
	for qp.atKeyword("for") || qp.atKeyword("let") {
		isFor := qp.tok().Text == "for"
		if err := qp.advance(); err != nil {
			return nil, err
		}
		for {
			v, err := qp.parseVar()
			if err != nil {
				return nil, err
			}
			if isFor {
				if err := qp.expectKeyword("in"); err != nil {
					return nil, err
				}
			} else {
				if err := qp.expect(xpath.TokColonEq, ":="); err != nil {
					return nil, err
				}
			}
			q, err := qp.parseSingle()
			if err != nil {
				return nil, err
			}
			clauses = append(clauses, clause{isFor: isFor, v: v, q: q})
			if qp.tok().Kind != xpath.TokComma {
				break
			}
			if err := qp.advance(); err != nil {
				return nil, err
			}
		}
	}

	var whereCond Query
	if qp.atKeyword("where") {
		if err := qp.advance(); err != nil {
			return nil, err
		}
		c, err := qp.parseSingle()
		if err != nil {
			return nil, err
		}
		whereCond = c
	}

	var orderKeys []xpath.Expr
	descending := false
	if qp.atKeyword("stable") {
		if err := qp.advance(); err != nil {
			return nil, err
		}
	}
	if qp.atKeyword("order") {
		if err := qp.advance(); err != nil {
			return nil, err
		}
		if err := qp.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := qp.p.ParseExpr()
			if err != nil {
				return nil, err
			}
			orderKeys = append(orderKeys, e)
			if qp.atKeyword("ascending") {
				if err := qp.advance(); err != nil {
					return nil, err
				}
			} else if qp.atKeyword("descending") {
				descending = true
				if err := qp.advance(); err != nil {
					return nil, err
				}
			}
			if qp.tok().Kind != xpath.TokComma {
				break
			}
			if err := qp.advance(); err != nil {
				return nil, err
			}
		}
	}

	if err := qp.expectKeyword("return"); err != nil {
		return nil, err
	}
	body, err := qp.parseSingle()
	if err != nil {
		return nil, err
	}

	// Desugar inside out: where becomes an if with an empty else; order by
	// wraps the body of the innermost for.
	if whereCond != nil {
		body = If{Cond: whereCond, Then: body, Else: Empty{}}
	}
	if len(orderKeys) > 0 {
		body = OrderBy{Keys: orderKeys, Descending: descending, Body: body}
	}
	out := body
	for i := len(clauses) - 1; i >= 0; i-- {
		c := clauses[i]
		if c.isFor {
			out = For{Var: c.v, In: c.q, Return: out}
		} else {
			out = Let{Var: c.v, Val: c.q, Return: out}
		}
	}
	return out, nil
}

func (qp *qparser) parseQuantified() (Query, error) {
	every := qp.tok().Text == "every"
	if err := qp.advance(); err != nil {
		return nil, err
	}
	v, err := qp.parseVar()
	if err != nil {
		return nil, err
	}
	if err := qp.expectKeyword("in"); err != nil {
		return nil, err
	}
	in, err := qp.parseSingle()
	if err != nil {
		return nil, err
	}
	if err := qp.expectKeyword("satisfies"); err != nil {
		return nil, err
	}
	sat, err := qp.parseSingle()
	if err != nil {
		return nil, err
	}
	return Quantified{Every: every, Var: v, In: in, Sat: sat}, nil
}

func (qp *qparser) parseIf() (Query, error) {
	if err := qp.advance(); err != nil { // "if"
		return nil, err
	}
	if err := qp.expect(xpath.TokLParen, "("); err != nil {
		return nil, err
	}
	cond, err := qp.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := qp.expect(xpath.TokRParen, ")"); err != nil {
		return nil, err
	}
	if err := qp.expectKeyword("then"); err != nil {
		return nil, err
	}
	then, err := qp.parseSingle()
	if err != nil {
		return nil, err
	}
	if err := qp.expectKeyword("else"); err != nil {
		return nil, err
	}
	els, err := qp.parseSingle()
	if err != nil {
		return nil, err
	}
	return If{Cond: cond, Then: then, Else: els}, nil
}

func (qp *qparser) parseFuncQ() (Query, error) {
	name := qp.tok().Text
	if err := qp.advance(); err != nil {
		return nil, err
	}
	if err := qp.expect(xpath.TokLParen, "("); err != nil {
		return nil, err
	}
	var args []Query
	if qp.tok().Kind != xpath.TokRParen {
		for {
			a, err := qp.parseSingle()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if qp.tok().Kind != xpath.TokComma {
				break
			}
			if err := qp.advance(); err != nil {
				return nil, err
			}
		}
	}
	if err := qp.expect(xpath.TokRParen, ")"); err != nil {
		return nil, err
	}
	return FuncQ{Name: name, Args: args}, nil
}

// parseElement parses an element constructor. On entry the lookahead is
// TokLt; the lexer sits just after '<'.
func (qp *qparser) parseElement() (Query, error) {
	if err := qp.advance(); err != nil { // consume '<'
		return nil, err
	}
	if qp.tok().Kind != xpath.TokIdent {
		return nil, fmt.Errorf("xquery: expected element name at offset %d", qp.tok().Pos)
	}
	el := Element{Tag: qp.tok().Text}
	if err := qp.advance(); err != nil {
		return nil, err
	}
	for qp.tok().Kind == xpath.TokIdent {
		a := Attr{Name: qp.tok().Text}
		if err := qp.advance(); err != nil {
			return nil, err
		}
		if err := qp.expect(xpath.TokEq, "="); err != nil {
			return nil, err
		}
		switch qp.tok().Kind {
		case xpath.TokLiteral:
			// A literal attribute value; it may itself contain {expr}
			// (XQuery allows enclosed expressions inside attribute
			// values — the XMark queries use the whole-value form).
			lit := qp.tok().Text
			if strings.HasPrefix(lit, "{") && strings.HasSuffix(lit, "}") {
				inner, err := Parse(lit[1 : len(lit)-1])
				if err != nil {
					return nil, fmt.Errorf("xquery: attribute %s: %w", a.Name, err)
				}
				a.Expr = inner
			} else {
				a.Literal = lit
			}
			if err := qp.advance(); err != nil {
				return nil, err
			}
		case xpath.TokLBrace:
			if err := qp.advance(); err != nil {
				return nil, err
			}
			inner, err := qp.parseQuery()
			if err != nil {
				return nil, err
			}
			a.Expr = inner
			if err := qp.expect(xpath.TokRBrace, "}"); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("xquery: bad attribute value at offset %d", qp.tok().Pos)
		}
		el.Attrs = append(el.Attrs, a)
	}
	switch qp.tok().Kind {
	case xpath.TokSlash:
		if err := qp.advance(); err != nil {
			return nil, err
		}
		if qp.tok().Kind != xpath.TokGt {
			return nil, fmt.Errorf("xquery: expected /> at offset %d", qp.tok().Pos)
		}
		// Do NOT advance past '>': content scanning is raw; resume
		// token-level parsing from the current lexer position.
		if err := qp.advance(); err != nil {
			return nil, err
		}
		return el, nil
	case xpath.TokGt:
		// The lexer now sits right after '>'; scan raw content.
		body, err := qp.parseContent(el.Tag)
		if err != nil {
			return nil, err
		}
		el.Body = body
		return el, nil
	}
	return nil, fmt.Errorf("xquery: malformed element constructor at offset %d", qp.tok().Pos)
}

// parseContent scans raw element-constructor content until the matching
// closing tag. On entry the lexer is positioned just after the opening
// '>'. On exit the parser lookahead is re-primed past the closing tag.
func (qp *qparser) parseContent(tag string) (Query, error) {
	lex := qp.p.Lexer()
	var items []Query
	for {
		rest := lex.Rest()
		if rest == "" {
			return nil, fmt.Errorf("xquery: unterminated element <%s>", tag)
		}
		stop := strings.IndexAny(rest, "<{")
		if stop < 0 {
			return nil, fmt.Errorf("xquery: unterminated element <%s>", tag)
		}
		if text := rest[:stop]; strings.TrimSpace(text) != "" {
			items = append(items, Text{S: text})
		}
		lex.SetPos(lex.Pos() + stop)
		rest = lex.Rest()
		switch {
		case strings.HasPrefix(rest, "</"):
			lex.SetPos(lex.Pos() + 2)
			if err := qp.p.ResetLookahead(); err != nil {
				return nil, err
			}
			if qp.tok().Kind != xpath.TokIdent || qp.tok().Text != tag {
				return nil, fmt.Errorf("xquery: mismatched closing tag </%s> for <%s>", qp.tok().Text, tag)
			}
			if err := qp.advance(); err != nil {
				return nil, err
			}
			if qp.tok().Kind != xpath.TokGt {
				return nil, fmt.Errorf("xquery: expected > after </%s", tag)
			}
			if err := qp.advance(); err != nil {
				return nil, err
			}
			return seqOf(items), nil
		case strings.HasPrefix(rest, "<"):
			// Nested element constructor: position the lookahead at '<'.
			if err := qp.p.ResetLookahead(); err != nil {
				return nil, err
			}
			child, err := qp.parseElement()
			if err != nil {
				return nil, err
			}
			items = append(items, child)
			// parseElement leaves the lookahead one token past the
			// constructor; rewind the raw scanner to just after it.
			lex.SetPos(qp.tok().Pos)
		case strings.HasPrefix(rest, "{"):
			lex.SetPos(lex.Pos() + 1)
			if err := qp.p.ResetLookahead(); err != nil {
				return nil, err
			}
			inner, err := qp.parseQuery()
			if err != nil {
				return nil, err
			}
			items = append(items, inner)
			if qp.tok().Kind != xpath.TokRBrace {
				return nil, fmt.Errorf("xquery: expected } at offset %d, found %s", qp.tok().Pos, qp.tok())
			}
			// Resume raw scanning just after '}': the lookahead token
			// after '}' must not be consumed as a token.
			lex.SetPos(qp.tok().Pos + 1)
		}
	}
}

func seqOf(items []Query) Query {
	switch len(items) {
	case 0:
		return Empty{}
	case 1:
		return items[0]
	default:
		return Sequence{Items: items}
	}
}
