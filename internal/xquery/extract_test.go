package xquery

import (
	"strings"
	"testing"

	"xmlproj/internal/core"
	"xmlproj/internal/dtd"
	"xmlproj/internal/gen"
	"xmlproj/internal/prune"
	"xmlproj/internal/validate"
)

func extracted(t *testing.T, src string) []string {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	paths := Extract(q)
	out := make([]string, len(paths))
	for i, p := range paths {
		out[i] = p.String()
	}
	return out
}

func hasPath(paths []string, want string) bool {
	for _, p := range paths {
		if p == want {
			return true
		}
	}
	return false
}

func TestExtractSimpleFor(t *testing.T) {
	paths := extracted(t, `for $p in /site/people/person return $p/name`)
	if !hasPath(paths, "/self::site/child::people/child::person") {
		t.Fatalf("missing binding path: %v", paths)
	}
	// The result path must be materialised (m=1 appends dos, line 6/10).
	found := false
	for _, p := range paths {
		if strings.HasPrefix(p, "/self::site/child::people/child::person/child::name/descendant-or-self::node()") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing materialised result path: %v", paths)
	}
}

func TestExtractLetNotMaterialisedWhenUnused(t *testing.T) {
	paths := extracted(t, `for $p in /a/b let $x := $p/c return count($x)`)
	// count needs only the nodes: no dos after c.
	for _, p := range paths {
		if strings.Contains(p, "child::c/descendant-or-self") {
			t.Fatalf("count argument materialised: %v", paths)
		}
	}
	found := false
	for _, p := range paths {
		if strings.Contains(p, "child::c") {
			found = true
		}
	}
	if !found {
		t.Fatalf("let path lost: %v", paths)
	}
}

func TestExtractWhereCondition(t *testing.T) {
	paths := extracted(t, `for $p in /s/p where $p/x = 3 return $p/y`)
	// The comparison operand needs its string-value.
	found := false
	for _, p := range paths {
		if strings.Contains(p, "child::x/descendant-or-self::node()") {
			found = true
		}
	}
	if !found {
		t.Fatalf("where operand not extracted: %v", paths)
	}
}

func TestExtractElementConstructor(t *testing.T) {
	paths := extracted(t, `for $p in /s/p return <o a="{$p/x}">{ $p/y }</o>`)
	var hasX, hasY bool
	for _, p := range paths {
		if strings.Contains(p, "child::x") {
			hasX = true
		}
		if strings.Contains(p, "child::y/descendant-or-self") {
			hasY = true
		}
	}
	if !hasX || !hasY {
		t.Fatalf("constructor needs lost: %v", paths)
	}
}

func TestExtractPredicateBecomesCondition(t *testing.T) {
	paths := extracted(t, `for $p in /s/p[x] return $p/y`)
	found := false
	for _, p := range paths {
		if strings.Contains(p, "child::p[child::x]") {
			found = true
		}
	}
	if !found {
		t.Fatalf("predicate lost: %v", paths)
	}
}

func TestExtractQuantified(t *testing.T) {
	paths := extracted(t, `for $a in /s/a where some $w in $a/w satisfies $w/@k = "x" return $a/n`)
	var hasW, hasK bool
	for _, p := range paths {
		if strings.Contains(p, "child::w") {
			hasW = true
		}
		if strings.Contains(p, "attribute::k") {
			hasK = true
		}
	}
	if !hasW || !hasK {
		t.Fatalf("quantifier needs lost: %v", paths)
	}
}

func TestExtractFreeVariableIsRoot(t *testing.T) {
	paths := extracted(t, `$doc/site/people`)
	if !hasPath(paths, "/self::site/child::people/descendant-or-self::node()") {
		// $doc unbound → treated as root; /$doc/site/people ≈ /site/people.
		t.Fatalf("free-variable path wrong: %v", paths)
	}
}

// The §5 heuristic.
func TestRewriteForIf(t *testing.T) {
	src := `for $y in /s//node() return if ($y/k = "v") then $y/n else ()`
	q := MustParse(src)
	rw := RewriteForIf(q)
	f, ok := rw.(For)
	if !ok {
		t.Fatalf("rewritten = %#v", rw)
	}
	if _, isIf := f.Return.(If); isIf {
		t.Fatalf("if not eliminated: %s", rw)
	}
	s := rw.String()
	if !strings.Contains(s, "[((self::node()/child::k") && !strings.Contains(s, "[(child::k") {
		// The predicate must reference the context node, not $y.
		if strings.Contains(s, "$y/k") && strings.Contains(s, "if") {
			t.Fatalf("condition not pushed: %s", s)
		}
	}
	if strings.Contains(f.In.String(), "$y") {
		t.Fatalf("loop variable leaked into the in-path: %s", f.In)
	}
}

func TestRewriteForIfKeepsElse(t *testing.T) {
	src := `for $y in /s/a return if ($y/k) then $y/n else $y/m`
	q := MustParse(src)
	if _, ok := RewriteForIf(q).(For).Return.(If); !ok {
		t.Fatal("non-empty else must not be rewritten")
	}
}

func TestRewriteForIfRejectsForeignVars(t *testing.T) {
	src := `for $x in /s/a return for $y in /s/b return if ($y/k = $x/k) then $y else ()`
	q := MustParse(src)
	inner := RewriteForIf(q).(For).Return.(For)
	if _, ok := inner.Return.(If); !ok {
		t.Fatal("condition referencing an outer variable must not be pushed")
	}
}

func TestRewriteForIfRejectsPositional(t *testing.T) {
	src := `for $y in /s/a return if (count($y/k) > position()) then $y else ()`
	q := MustParse(src)
	if _, ok := RewriteForIf(q).(For).Return.(If); !ok {
		t.Fatal("positional condition must not be pushed")
	}
}

// TestRewriteImprovesPruning demonstrates the §5 claim: without the
// rewriting, a for over …//node() extracts a path ending in
// descendant-or-self::node() and pruning degenerates; with it, the
// condition restricts the projector.
func TestRewriteImprovesPruning(t *testing.T) {
	d, err := dtd.ParseString(`
<!ELEMENT s (a*, junk*)>
<!ELEMENT a (k, n)>
<!ELEMENT k (#PCDATA)>
<!ELEMENT n (#PCDATA)>
<!ELEMENT junk (payload)>
<!ELEMENT payload (#PCDATA)>
`, "s")
	if err != nil {
		t.Fatal(err)
	}
	src := `for $y in /s/descendant-or-self::node() return if ($y/k = "v") then $y/k else ()`
	q := MustParse(src)

	without, err := core.Infer(d, Extract(q))
	if err != nil {
		t.Fatal(err)
	}
	with, err := core.Infer(d, Extract(RewriteForIf(q)))
	if err != nil {
		t.Fatal(err)
	}
	if !without.Has("junk") {
		t.Fatalf("without rewriting the projector should degenerate: %s", without)
	}
	if with.Has("junk") || with.Has("payload") {
		t.Fatalf("with rewriting junk must be pruned: %s", with)
	}
	if !with.Has("a") || !with.Has("k") {
		t.Fatalf("rewritten projector misses needed names: %s", with)
	}
}

// XQuery-level soundness: serialised results on the original and the
// pruned document coincide.
func TestXQuerySoundness(t *testing.T) {
	d, err := dtd.ParseString(`
<!ELEMENT site (people, auctions)>
<!ELEMENT people (person*)>
<!ELEMENT person (name, watches?)>
<!ATTLIST person id CDATA #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT watches (watch*)>
<!ELEMENT watch EMPTY>
<!ATTLIST watch auction CDATA #REQUIRED>
<!ELEMENT auctions (auction*)>
<!ELEMENT auction (seller?, price)>
<!ATTLIST auction id CDATA #REQUIRED>
<!ELEMENT seller (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`, "site")
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`for $p in /site/people/person return $p/name/text()`,
		`for $p in /site/people/person where $p/watches return <w id="{$p/@id}">{ count($p/watches/watch) }</w>`,
		`count(for $a in /site/auctions/auction where $a/price >= 40 return $a)`,
		`for $p in /site/people/person let $w := for $a in /site/auctions/auction where some $x in $p/watches/watch satisfies $x/@auction = $a/@id return $a return <r>{ $p/name/text() }{ count($w) }</r>`,
		`for $c in distinct-values(//watch/@auction) return <c>{ $c }</c>`,
		`for $p in /site/people/person order by $p/name/text() return $p/@id`,
		`sum(/site/auctions/auction/price)`,
		`if (//auction[seller]) then <found/> else <none/>`,
		`for $a in //auction return if ($a/seller = "Ada") then $a/price/text() else ()`,
	}
	for seed := int64(0); seed < 6; seed++ {
		doc := gen.New(d, seed, gen.Options{MaxDepth: 6}).Document()
		if _, err := validate.Document(d, doc); err != nil {
			t.Fatal(err)
		}
		for _, src := range queries {
			q := MustParse(src)
			paths := Extract(RewriteForIf(q))
			pr, err := core.Infer(d, paths)
			if err != nil {
				t.Fatalf("%q: %v", src, err)
			}
			pruned := prune.Tree(d, doc, pr.Names)
			origSeq, err := NewEvaluator(doc).Eval(q)
			if err != nil {
				t.Fatalf("%q on original: %v", src, err)
			}
			if pruned.Root == nil {
				t.Fatalf("%q: projector dropped the root: %s", src, pr)
			}
			prunedSeq, err := NewEvaluator(pruned).Eval(q)
			if err != nil {
				t.Fatalf("%q on pruned: %v", src, err)
			}
			if o, p := Serialize(origSeq), Serialize(prunedSeq); o != p {
				t.Fatalf("%q differs after pruning:\norig:   %q\npruned: %q\nπ = %s\ndoc = %s",
					src, o, p, pr, doc.XML())
			}
		}
	}
}
