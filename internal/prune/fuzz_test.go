package prune

// Three-level fuzzing of Thm. 4.5: random DTDs × random valid documents ×
// random queries. This is the strongest soundness net in the repository —
// it exercises grammar shapes (recursion, unions, optionality,
// attributes) that the fixed benchmark DTDs cannot.

import (
	"testing"

	"xmlproj/internal/core"
	"xmlproj/internal/gen"
	"xmlproj/internal/tree"
	"xmlproj/internal/validate"
	"xmlproj/internal/xpath"
	"xmlproj/internal/xpathl"
)

func fuzzRound(t *testing.T, dtdSeed int64, recursive bool) {
	t.Helper()
	d := gen.RandomDTD(dtdSeed, gen.DTDOptions{Elements: 9, AllowRecursion: recursive})
	qg := gen.NewQueryGen(d, dtdSeed*31+7, gen.QueryOptions{MaxSteps: 4, MaxPreds: 2, AllAxes: true})

	docs := make([]*tree.Document, 3)
	for i := range docs {
		docs[i] = gen.New(d, dtdSeed*17+int64(i), gen.Options{MaxDepth: 6}).Document()
		if _, err := validate.Document(d, docs[i]); err != nil {
			t.Fatalf("dtd seed %d: generated invalid document: %v\ngrammar:\n%s", dtdSeed, err, d)
		}
	}

	for qi := 0; qi < 25; qi++ {
		q := qg.Query()
		src := q.String()
		paths, err := xpathl.FromQuery(q)
		if err != nil {
			t.Fatalf("dtd seed %d: approximate %q: %v", dtdSeed, src, err)
		}
		pr, err := core.Infer(d, paths)
		if err != nil {
			t.Fatalf("dtd seed %d: infer %q: %v", dtdSeed, src, err)
		}
		for di, doc := range docs {
			orig, err := xpath.NewEvaluator(doc).Eval(q)
			if err != nil {
				t.Fatalf("%q on original: %v", src, err)
			}
			ons := orig.(xpath.NodeSet)
			pruned := Tree(d, doc, pr.Names)
			if pruned.Root == nil {
				if len(ons) != 0 {
					t.Fatalf("dtd seed %d doc %d: %q selects %d nodes but π = %s pruned everything\ngrammar:\n%s\ndoc: %s",
						dtdSeed, di, src, len(ons), pr, d, doc.XML())
				}
				continue
			}
			after, err := xpath.NewEvaluator(pruned).Eval(q)
			if err != nil {
				t.Fatalf("%q on pruned: %v", src, err)
			}
			pns := after.(xpath.NodeSet)
			os, ps := resultSet(ons), resultSet(pns)
			if len(os) != len(ps) {
				t.Fatalf("dtd seed %d doc %d: %q: %d results before, %d after pruning\nπ = %s\ngrammar:\n%s\ndoc: %s\npruned: %s",
					dtdSeed, di, src, len(os), len(ps), pr, d, doc.XML(), pruned.XML())
			}
			for k := range os {
				if !ps[k] {
					t.Fatalf("dtd seed %d doc %d: %q lost node %s", dtdSeed, di, src, k)
				}
			}
		}
	}
}

func TestFuzzSoundnessNonRecursiveDTDs(t *testing.T) {
	rounds := int64(20)
	if testing.Short() {
		rounds = 4
	}
	for seed := int64(0); seed < rounds; seed++ {
		fuzzRound(t, seed, false)
	}
}

func TestFuzzSoundnessRecursiveDTDs(t *testing.T) {
	rounds := int64(20)
	if testing.Short() {
		rounds = 4
	}
	for seed := int64(100); seed < 100+rounds; seed++ {
		fuzzRound(t, seed, true)
	}
}
