package prune

// Property-based checks of Thm. 4.5 (soundness of projector inference):
// for random valid documents t and queries Q, evaluating Q on t and on
// t∖π — with π inferred from Q's XPathℓ approximation — yields the same
// node-set. With materialised projectors, the string-values of the
// results agree too.

import (
	"fmt"
	"testing"

	"xmlproj/internal/core"
	"xmlproj/internal/dtd"
	"xmlproj/internal/gen"
	"xmlproj/internal/tree"
	"xmlproj/internal/validate"
	"xmlproj/internal/xpath"
	"xmlproj/internal/xpathl"
)

// resultKey identifies a query result node independently of pruning:
// node ID plus attribute name (attribute indexes may shift when sibling
// attributes are pruned).
func resultKey(r xpath.NodeRef) string {
	if r.IsAttr() {
		return fmt.Sprintf("%d@%s", r.N.ID, r.N.Attrs[r.AttrIdx].Name)
	}
	return fmt.Sprintf("%d", r.N.ID)
}

func resultSet(ns xpath.NodeSet) map[string]bool {
	out := make(map[string]bool, len(ns))
	for _, r := range ns {
		out[resultKey(r)] = true
	}
	return out
}

// checkSound evaluates q on doc and on its pruned version and fails if
// the result node-sets differ.
func checkSound(t *testing.T, d *dtd.DTD, doc *tree.Document, qsrc string, materialized bool) {
	t.Helper()
	q, err := xpath.Parse(qsrc)
	if err != nil {
		t.Fatalf("parse %q: %v", qsrc, err)
	}
	paths, err := xpathl.FromQuery(q)
	if err != nil {
		t.Fatalf("approximate %q: %v", qsrc, err)
	}
	var pr *core.Projector
	if materialized {
		pr, err = core.InferMaterialized(d, paths)
	} else {
		pr, err = core.Infer(d, paths)
	}
	if err != nil {
		t.Fatalf("infer %q: %v", qsrc, err)
	}
	pruned := Tree(d, doc, pr.Names)
	if pruned.Root != nil && !tree.IsProjectionOf(pruned.Root, doc.Root) {
		t.Fatalf("%q: pruned doc is not a projection", qsrc)
	}

	origRes, err1 := xpath.NewEvaluator(doc).Eval(q)
	if err1 != nil {
		t.Fatalf("%q on original: %v", qsrc, err1)
	}
	if pruned.Root == nil {
		if ns, ok := origRes.(xpath.NodeSet); ok && len(ns) > 0 {
			t.Fatalf("%q: projector pruned the whole document but the query selects %d nodes (π=%s)", qsrc, len(ns), pr)
		}
		return
	}
	prunedRes, err2 := xpath.NewEvaluator(pruned).Eval(q)
	if err2 != nil {
		t.Fatalf("%q on pruned: %v", qsrc, err2)
	}
	ons, ok1 := origRes.(xpath.NodeSet)
	pns, ok2 := prunedRes.(xpath.NodeSet)
	if !ok1 || !ok2 {
		t.Fatalf("%q: non-node-set result", qsrc)
	}
	os, ps := resultSet(ons), resultSet(pns)
	if len(os) != len(ps) {
		t.Fatalf("%q: |orig| = %d, |pruned| = %d\nπ = %s\ndoc = %s\npruned = %s",
			qsrc, len(os), len(ps), pr, doc.XML(), pruned.XML())
	}
	for k := range os {
		if !ps[k] {
			t.Fatalf("%q: node %s lost after pruning\nπ = %s\ndoc = %s", qsrc, k, pr, doc.XML())
		}
	}
	if materialized {
		// With a materialised projector, result subtrees must be intact.
		om := map[string]string{}
		for _, r := range ons {
			om[resultKey(r)] = r.StringValue()
		}
		for _, r := range pns {
			if want := om[resultKey(r)]; r.StringValue() != want {
				t.Fatalf("%q: string-value of %s changed: %q vs %q\nπ = %s",
					qsrc, resultKey(r), r.StringValue(), want, pr)
			}
		}
	}
}

const soundnessDTD = `
<!ELEMENT site (regions, people)>
<!ELEMENT regions (item*)>
<!ELEMENT item (name, payment?, description)>
<!ATTLIST item id CDATA #REQUIRED featured CDATA #IMPLIED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT payment (#PCDATA)>
<!ELEMENT description (text | parlist)>
<!ELEMENT text (#PCDATA | bold | keyword)*>
<!ELEMENT bold (#PCDATA)>
<!ELEMENT keyword (#PCDATA)>
<!ELEMENT parlist (listitem+)>
<!ELEMENT listitem (text)>
<!ELEMENT people (person*)>
<!ELEMENT person (name, watches?)>
<!ATTLIST person id CDATA #REQUIRED>
<!ELEMENT watches (watch*)>
<!ELEMENT watch EMPTY>
<!ATTLIST watch open_auction CDATA #REQUIRED>
`

var soundnessQueries = []string{
	"/site/regions/item/name",
	"//name",
	"//keyword",
	"/site//item[payment]/name",
	"//item/description//keyword",
	"descendant::text/child::text()",
	"//person[watches]/name",
	"//watch/@open_auction",
	"//item[@featured]/name",
	`//item[name = "Dante"]/payment`,
	"//listitem/ancestor::item/name",
	"//keyword/parent::node()",
	"//keyword/ancestor::description",
	"//item[not(payment)]/name",
	"//item[count(payment) > 0]/name",
	"//person[name or watches]/@id",
	"//item[2]/name",
	"//text[position() = last()]",
	"//item[description/text]/name",
	`//item[contains(name, "alpha")]/@id`,
	"//name/following-sibling::payment",
	"//payment/preceding-sibling::name",
	"//name/following::keyword",
	"//keyword/preceding::name",
	"/site/regions/item/description/parlist/listitem//keyword",
	"//watches/watch",
	"self::site/child::people",
	"//person/name | //item/name",
	"//parlist/listitem/text/bold",
	`//text[bold = "Dante"]/keyword`,
}

func TestSoundnessFixedQueries(t *testing.T) {
	d, err := dtd.ParseString(soundnessDTD, "")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 8; seed++ {
		g := gen.New(d, seed, gen.Options{MaxDepth: 7, MaxRepeat: 3})
		doc := g.Document()
		if _, err := validate.Document(d, doc); err != nil {
			t.Fatalf("generator produced invalid doc (seed %d): %v", seed, err)
		}
		for _, q := range soundnessQueries {
			checkSound(t, d, doc, q, false)
		}
	}
}

func TestSoundnessMaterialized(t *testing.T) {
	d, err := dtd.ParseString(soundnessDTD, "")
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"//item", "//description", "//person", "//item[payment]",
		"/site/regions/item/description", "//text", "//item/@id",
	}
	for seed := int64(0); seed < 6; seed++ {
		doc := gen.New(d, seed, gen.Options{}).Document()
		for _, q := range queries {
			checkSound(t, d, doc, q, true)
		}
	}
}

func TestSoundnessRandomQueries(t *testing.T) {
	d, err := dtd.ParseString(soundnessDTD, "")
	if err != nil {
		t.Fatal(err)
	}
	qg := gen.NewQueryGen(d, 42, gen.QueryOptions{MaxSteps: 4, MaxPreds: 2, AllAxes: true})
	nDocs := 6
	nQueries := 120
	if testing.Short() {
		nDocs, nQueries = 2, 30
	}
	docs := make([]*tree.Document, nDocs)
	for i := range docs {
		docs[i] = gen.New(d, int64(100+i), gen.Options{MaxDepth: 6}).Document()
	}
	for i := 0; i < nQueries; i++ {
		q := qg.Query()
		src := q.String()
		if _, err := xpath.Parse(src); err != nil {
			t.Fatalf("generated query %q does not re-parse: %v", src, err)
		}
		for _, doc := range docs {
			checkSound(t, d, doc, src, false)
		}
	}
}

// TestSoundnessRecursiveDTD checks soundness (which must hold even where
// completeness fails) on the paper's recursive, non-*-guarded DTD.
func TestSoundnessRecursiveDTD(t *testing.T) {
	d, err := dtd.ParseString(`
<!ELEMENT c (a | b)>
<!ELEMENT a (a*, t)>
<!ELEMENT t (#PCDATA)>
<!ELEMENT b (#PCDATA)>
`, "c")
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"self::c[a]/child::b",
		"self::c/child::a/parent::node()",
		"//a/t",
		"descendant::a[a]/t",
		"//t/ancestor::a",
		"//a[not(a)]/t/child::text()",
	}
	for seed := int64(0); seed < 10; seed++ {
		doc := gen.New(d, seed, gen.Options{MaxDepth: 5}).Document()
		if _, err := validate.Document(d, doc); err != nil {
			t.Fatalf("invalid generated doc: %v", err)
		}
		for _, q := range queries {
			checkSound(t, d, doc, q, false)
		}
	}
}
