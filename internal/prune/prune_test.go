package prune

import (
	"strings"
	"testing"

	"xmlproj/internal/dtd"
	"xmlproj/internal/tree"
	"xmlproj/internal/validate"
)

const bibDTD = `
<!ELEMENT bib (book*)>
<!ELEMENT book (title, author+, year?)>
<!ATTLIST book isbn CDATA #REQUIRED lang (en|fr|it) "en">
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`

const bibDoc = `<bib><book isbn="1" lang="it"><title>Commedia</title><author>Dante</author><year>1313</year></book><book isbn="2"><title>Decameron</title><author>Boccaccio</author></book></bib>`

func setup(t *testing.T) (*dtd.DTD, *tree.Document) {
	t.Helper()
	d, err := dtd.ParseString(bibDTD, "")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := tree.ParseString(bibDoc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := validate.Document(d, doc); err != nil {
		t.Fatal(err)
	}
	return d, doc
}

func TestTreePruneKeepsSelected(t *testing.T) {
	d, doc := setup(t)
	pi := dtd.NewNameSet("bib", "book", "title", dtd.TextName("title"))
	out := Tree(d, doc, pi)
	if got := out.XML(); got != `<bib><book><title>Commedia</title></book><book><title>Decameron</title></book></bib>` {
		t.Fatalf("pruned = %s", got)
	}
}

func TestTreePruneIsProjection(t *testing.T) {
	d, doc := setup(t)
	pi := dtd.NewNameSet("bib", "book", "author", dtd.TextName("author"))
	out := Tree(d, doc, pi)
	if !tree.IsProjectionOf(out.Root, doc.Root) {
		t.Fatal("pruned tree is not a ≤-projection of the original (Lemma 2.8)")
	}
}

func TestTreePruneAttributes(t *testing.T) {
	d, doc := setup(t)
	pi := dtd.NewNameSet("bib", "book", dtd.AttrName("book", "isbn"))
	out := Tree(d, doc, pi)
	book := out.Root.Children[0]
	if v, ok := book.Attr("isbn"); !ok || v != "1" {
		t.Fatalf("isbn lost: %+v", book.Attrs)
	}
	if _, ok := book.Attr("lang"); ok {
		t.Fatal("lang should be pruned")
	}
}

func TestTreePruneRootDropped(t *testing.T) {
	d, doc := setup(t)
	out := Tree(d, doc, dtd.NewNameSet("book"))
	if out.Root != nil {
		t.Fatal("dropping the root name must yield the empty document")
	}
}

func TestTreePrunePreservesIDs(t *testing.T) {
	d, doc := setup(t)
	pi := dtd.NewNameSet("bib", "book", "year", dtd.TextName("year"))
	out := Tree(d, doc, pi)
	var origYear, prunedYear tree.NodeID
	doc.Walk(func(n *tree.Node) bool {
		if n.Tag == "year" {
			origYear = n.ID
		}
		return true
	})
	out.Walk(func(n *tree.Node) bool {
		if n.Tag == "year" {
			prunedYear = n.ID
		}
		return true
	})
	if origYear == 0 || origYear != prunedYear {
		t.Fatalf("IDs not preserved: %d vs %d", origYear, prunedYear)
	}
}

func TestStreamMatchesTree(t *testing.T) {
	d, doc := setup(t)
	pis := []dtd.NameSet{
		dtd.NewNameSet("bib", "book", "title", dtd.TextName("title"), dtd.AttrName("book", "isbn")),
		dtd.NewNameSet("bib", "book", "author", "year", dtd.TextName("author")),
		dtd.NewNameSet("bib"),
		d.ReachableFromRoot().Union(d.AttNames(d.ReachableFromRoot())),
	}
	for _, pi := range pis {
		want := Tree(d, doc, pi).XML()
		got, _, err := StreamString(bibDoc, d, pi, StreamOptions{})
		if err != nil {
			t.Fatalf("Stream(%s): %v", pi, err)
		}
		if got != want {
			t.Errorf("stream/tree mismatch for %s:\nstream: %s\ntree:   %s", pi, got, want)
		}
	}
}

func TestStreamStats(t *testing.T) {
	d, _ := setup(t)
	pi := dtd.NewNameSet("bib", "book", "title", dtd.TextName("title"))
	_, stats, err := StreamString(bibDoc, d, pi, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ElementsIn != 8 { // every start tag in the input, skipped subtrees included
		t.Errorf("ElementsIn = %d", stats.ElementsIn)
	}
	if stats.ElementsOut != 5 { // bib, 2 books, 2 titles
		t.Errorf("ElementsOut = %d", stats.ElementsOut)
	}
	if stats.TextIn != 5 { // 2 titles + 3 texts inside pruned author/year subtrees
		t.Errorf("TextIn = %d", stats.TextIn)
	}
	if stats.ElementsSkipped != 0 || stats.TextSkipped != 3 {
		t.Errorf("skipped counts = %d elements, %d texts", stats.ElementsSkipped, stats.TextSkipped)
	}
	if stats.TextOut != 2 || stats.BytesOut == 0 || stats.MaxDepth != 3 {
		t.Errorf("stats = %+v", stats)
	}
}

// TestStreamCoalescesCharData: character data split by the decoder at
// CDATA and entity boundaries is one logical text node — it must be
// counted once, validated once, and survive a validating round trip.
func TestStreamCoalescesCharData(t *testing.T) {
	d, err := dtd.ParseString(`<!ELEMENT a (#PCDATA)>`, "a")
	if err != nil {
		t.Fatal(err)
	}
	pi := dtd.NewNameSet("a", dtd.TextName("a"))
	out, stats, err := StreamString(`<a>foo<![CDATA[ & bar ]]>baz</a>`, d, pi, StreamOptions{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TextIn != 1 || stats.TextOut != 1 {
		t.Errorf("TextIn = %d, TextOut = %d; want 1, 1 (one logical text node)", stats.TextIn, stats.TextOut)
	}
	if want := `<a>foo &amp; bar baz</a>`; out != want {
		t.Errorf("output = %s, want %s", out, want)
	}
	// A comment does not break the run either (the tree parser merges
	// text across comments).
	out, stats, err = StreamString(`<a>foo<!--c-->bar</a>`, d, pi, StreamOptions{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TextIn != 1 || out != `<a>foobar</a>` {
		t.Errorf("TextIn = %d, output = %s", stats.TextIn, out)
	}
}

// TestStreamCountsSkippedSubtrees: descendants of a discarded subtree are
// scanned past by the pruner and must show up in ElementsIn / TextIn.
func TestStreamCountsSkippedSubtrees(t *testing.T) {
	d, err := dtd.ParseString(`
<!ELEMENT r (keep?, drop?)>
<!ELEMENT keep (#PCDATA)>
<!ELEMENT drop (leaf, leaf)>
<!ELEMENT leaf (#PCDATA)>
`, "r")
	if err != nil {
		t.Fatal(err)
	}
	pi := dtd.NewNameSet("r", "keep", dtd.TextName("keep"))
	doc := `<r><keep>k</keep><drop><leaf>a<![CDATA[b]]></leaf><leaf> </leaf></drop></r>`
	out, stats, err := StreamString(doc, d, pi, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out != `<r><keep>k</keep></r>` {
		t.Errorf("output = %s", out)
	}
	if stats.ElementsIn != 5 { // r, keep, drop, leaf, leaf
		t.Errorf("ElementsIn = %d, want 5", stats.ElementsIn)
	}
	if stats.ElementsSkipped != 2 { // the two leaves under drop
		t.Errorf("ElementsSkipped = %d, want 2", stats.ElementsSkipped)
	}
	if stats.TextIn != 2 || stats.TextSkipped != 1 { // "k" and coalesced "ab"; whitespace-only leaf text is not a text node
		t.Errorf("TextIn = %d, TextSkipped = %d", stats.TextIn, stats.TextSkipped)
	}
}

func TestStreamValidates(t *testing.T) {
	d, _ := setup(t)
	pi := d.ReachableFromRoot()
	cases := []struct {
		name, doc string
	}{
		{"wrong root", `<book isbn="1"><title>t</title><author>a</author></book>`},
		{"bad order", `<bib><book isbn="1"><author>a</author><title>t</title></book></bib>`},
		{"incomplete", `<bib><book isbn="1"><title>t</title></book></bib>`},
		{"missing attr", `<bib><book><title>t</title><author>a</author></book></bib>`},
		{"bad enum", `<bib><book isbn="1" lang="xx"><title>t</title><author>a</author></book></bib>`},
		{"stray text", `<bib>zzz</bib>`},
		{"undeclared attr", `<bib><book isbn="1" z="1"><title>t</title><author>a</author></book></bib>`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, _, err := StreamString(c.doc, d, pi, StreamOptions{Validate: true}); err == nil {
				t.Fatal("invalid document accepted while validating")
			}
			// Without validation the same document streams through (pruning
			// is independent of deep validity).
			if _, _, err := StreamString(c.doc, d, pi, StreamOptions{}); err != nil && !strings.Contains(err.Error(), "not declared") {
				t.Fatalf("non-validating stream failed unexpectedly: %v", err)
			}
		})
	}
	// And the valid document passes with validation on.
	if _, _, err := StreamString(bibDoc, d, pi, StreamOptions{Validate: true}); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
}

func TestStreamSkipsPrunedSubtreeValidation(t *testing.T) {
	// Content errors inside a pruned-away subtree are not reported: the
	// pruner skips the subtree without tokenising it deeply.
	d, _ := setup(t)
	pi := dtd.NewNameSet("bib") // drop all books
	doc := `<bib><book isbn="1"><title>t</title><bogus-free-text/></book></bib>`
	if _, _, err := StreamString(doc, d, pi, StreamOptions{Validate: true}); err == nil {
		// The skipped subtree contains an undeclared element, but the
		// pruner never looks at it.
		return
	}
	t.Skip("decoder surfaced the skipped subtree; acceptable but unexpected")
}

func TestStreamUndeclaredElement(t *testing.T) {
	d, _ := setup(t)
	pi := d.ReachableFromRoot()
	if _, _, err := StreamString(`<bib><zine/></bib>`, d, pi, StreamOptions{}); err == nil {
		t.Fatal("undeclared element must fail (names drive pruning)")
	}
}

func TestStreamEscaping(t *testing.T) {
	d, err := dtd.ParseString(`<!ELEMENT a (#PCDATA)><!ATTLIST a v CDATA #IMPLIED>`, "a")
	if err != nil {
		t.Fatal(err)
	}
	pi := dtd.NewNameSet("a", dtd.TextName("a"), dtd.AttrName("a", "v"))
	in := `<a v="x&amp;&quot;y">1 &lt; 2 &amp; 3</a>`
	out, _, err := StreamString(in, d, pi, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	re, err := tree.ParseString(out)
	if err != nil {
		t.Fatalf("pruned output does not re-parse: %v\n%s", err, out)
	}
	if re.Root.Children[0].Data != "1 < 2 & 3" {
		t.Fatalf("text mangled: %q", re.Root.Children[0].Data)
	}
	if v, _ := re.Root.Attr("v"); v != `x&"y` {
		t.Fatalf("attr mangled: %q", v)
	}
}

func TestStreamMalformed(t *testing.T) {
	d, _ := setup(t)
	pi := d.ReachableFromRoot()
	for _, doc := range []string{`<bib>`, `<bib></bok>`, ``} {
		if _, _, err := StreamString(doc, d, pi, StreamOptions{}); err == nil {
			t.Errorf("malformed %q accepted", doc)
		}
	}
}
