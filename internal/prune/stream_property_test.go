package prune

import (
	"math/rand"
	"testing"

	"xmlproj/internal/dtd"
	"xmlproj/internal/gen"
	"xmlproj/internal/tree"
	"xmlproj/internal/xmark"
)

// randomProjector draws a random chain-closed name set: starting from the
// root, it repeatedly adds a random child of an already-kept name, so the
// result is a union of chains (Def. 2.6).
func randomProjector(d *dtd.DTD, rng *rand.Rand, steps int) dtd.NameSet {
	pi := dtd.NewNameSet(d.Root)
	kept := []dtd.Name{d.Root}
	for i := 0; i < steps; i++ {
		from := kept[rng.Intn(len(kept))]
		children := d.Children(from).Sorted()
		if len(children) == 0 {
			continue
		}
		c := children[rng.Intn(len(children))]
		if !pi.Has(c) {
			pi.Add(c)
			kept = append(kept, c)
		}
	}
	return pi
}

// TestStreamEqualsTreeProperty: for random valid documents and random
// chain-closed projectors, the streaming pruner and the tree pruner
// produce byte-identical documents, and both are ≤-projections of the
// input (Lemma 2.8).
func TestStreamEqualsTreeProperty(t *testing.T) {
	d, err := dtd.ParseString(`
<!ELEMENT s (a*, b?)>
<!ELEMENT a (c, d*)>
<!ATTLIST a id CDATA #REQUIRED kind (x|y) "x">
<!ELEMENT b (#PCDATA | c)*>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (a?, c?)>
`, "s")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		doc := gen.New(d, int64(trial), gen.Options{MaxDepth: 6}).Document()
		pi := randomProjector(d, rng, 1+rng.Intn(10))
		want := Tree(d, doc, pi)
		got, _, err := StreamString(doc.XML(), d, pi, StreamOptions{Validate: true})
		if err != nil {
			t.Fatalf("trial %d: stream: %v (π = %s)", trial, err, pi)
		}
		if got != want.XML() {
			t.Fatalf("trial %d: stream and tree disagree for π = %s\nstream: %s\ntree:   %s\ninput:  %s",
				trial, pi, got, want.XML(), doc.XML())
		}
		if want.Root != nil && !tree.IsProjectionOf(want.Root, doc.Root) {
			t.Fatalf("trial %d: pruned tree is not a projection (Lemma 2.8)", trial)
		}
	}
}

// TestStreamEqualsTreeOnXMark repeats the agreement property on the real
// benchmark DTD and generator.
func TestStreamEqualsTreeOnXMark(t *testing.T) {
	d := xmark.DTD()
	rng := rand.New(rand.NewSource(7))
	doc := xmark.NewGenerator(0.002, 11).Document()
	xml := doc.XML()
	for trial := 0; trial < 15; trial++ {
		pi := randomProjector(d, rng, 5+rng.Intn(40))
		want := Tree(d, doc, pi).XML()
		got, _, err := StreamString(xml, d, pi, StreamOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got != want {
			t.Fatalf("trial %d: mismatch for π = %s", trial, pi)
		}
	}
}

// TestPruneIdempotent: pruning an already-pruned document with the same
// projector is the identity.
func TestPruneIdempotent(t *testing.T) {
	d := xmark.DTD()
	doc := xmark.NewGenerator(0.002, 13).Document()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		pi := randomProjector(d, rng, 10+rng.Intn(30))
		once := Tree(d, doc, pi)
		if once.Root == nil {
			continue
		}
		twice := Tree(d, once, pi)
		if once.XML() != twice.XML() {
			t.Fatalf("pruning not idempotent for π = %s", pi)
		}
	}
}

// TestPruneMonotone: a larger projector keeps a superset of bytes — the
// ≤ order of Def. 2.1 respects projector inclusion.
func TestPruneMonotone(t *testing.T) {
	d := xmark.DTD()
	doc := xmark.NewGenerator(0.002, 17).Document()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		small := randomProjector(d, rng, 8)
		large := small.Clone()
		// Extend the chain-closed set further.
		kept := large.Sorted()
		for i := 0; i < 10; i++ {
			from := kept[rng.Intn(len(kept))]
			cs := d.Children(from).Sorted()
			if len(cs) == 0 {
				continue
			}
			large.Add(cs[rng.Intn(len(cs))])
			kept = large.Sorted()
		}
		a := Tree(d, doc, small)
		b := Tree(d, doc, large)
		if a.Root == nil {
			continue
		}
		if !tree.IsProjectionOf(a.Root, b.Root) {
			t.Fatalf("small-projector prune is not a projection of large-projector prune")
		}
	}
}
