package prune

// Shared-scan multi-projection: prune one in-memory document against N
// projectors in a single scanner pass (scan.PruneMulti), producing one
// independent span-gather result per projector. The projector set is
// fused into a dtd.MultiProjection decision table; sets larger than the
// 64-projector fuse limit are sharded into consecutive fused passes.

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"xmlproj/internal/dtd"
	"xmlproj/internal/scan"
)

// MultiOptions configures a shared-scan multi-prune.
type MultiOptions struct {
	// Validate checks content models, attribute declarations and the
	// root element while pruning. Verdicts are per projector: a serial
	// prune only validates the regions its projector keeps, so one
	// projector can fail while the others complete.
	Validate bool
	// MaxTokenSize is accepted for symmetry with StreamOptions but, as
	// on every in-memory scanner path, not enforced (see StreamBytes).
	MaxTokenSize int
	// Projections, when non-nil, holds the compiled form of each π
	// (aligned with the pis argument; nil entries are compiled on the
	// spot), letting batch callers compile once per (DTD, π) pair.
	Projections []*dtd.Projection
	// Combined, when non-nil, is the pre-fused decision table for the
	// whole projector set (engine caches hold these); it must have been
	// combined from the same projections in the same order. Ignored
	// when the set exceeds the fuse limit.
	Combined *dtd.MultiProjection
	// Ctx, when non-nil, aborts between fused passes when cancelled.
	Ctx context.Context
}

// StreamMultiGather prunes in-memory input against every projector in
// pis with a shared scan, returning one Gather per projector. Each
// projector's rendered output is byte-identical to a serial
// StreamGather with that projector alone, and stats match it.
//
// The results are per projector: errs[j] non-nil means projector j's
// serial prune would have failed — gathers[j] is then nil, and the
// other projectors are unaffected unless the failure was a syntax or
// well-formedness error (which fails every projector, as it would every
// serial run). The caller must Close every non-nil Gather; data must
// stay alive and unmodified until then.
//
// Non-UTF-8 input falls back to one decoder-path StreamGather per
// projector — correct, but without the shared-scan saving.
func StreamMultiGather(data []byte, d *dtd.DTD, pis []dtd.NameSet, opts MultiOptions) ([]*Gather, []Stats, []error) {
	n := len(pis)
	gathers := make([]*Gather, n)
	stats := make([]Stats, n)
	errs := make([]error, n)
	if n == 0 {
		return gathers, stats, errs
	}
	if err := ctxErr(opts.Ctx); err != nil {
		fillErr(errs, 0, n, err)
		return gathers, stats, errs
	}
	if looksNonUTF8(data) {
		sopts := StreamOptions{Validate: opts.Validate, Engine: EngineDecoder, MaxTokenSize: opts.MaxTokenSize, Ctx: opts.Ctx}
		for j, pi := range pis {
			gathers[j], stats[j], errs[j] = StreamGather(data, d, pi, sopts)
		}
		return gathers, stats, errs
	}
	projs := make([]*dtd.Projection, n)
	for j := range pis {
		if opts.Projections != nil && opts.Projections[j] != nil {
			projs[j] = opts.Projections[j]
		} else {
			projs[j] = d.CompileProjection(pis[j])
		}
	}
	for base := 0; base < n; base += dtd.MaxMultiProjections {
		end := base + dtd.MaxMultiProjections
		if end > n {
			end = n
		}
		if err := ctxErr(opts.Ctx); err != nil {
			fillErr(errs, base, end, err)
			continue
		}
		mp := opts.Combined
		if mp == nil || mp.N() != n || base != 0 {
			var err error
			mp, err = dtd.CombineProjections(projs[base:end])
			if err != nil {
				fillErr(errs, base, end, fmt.Errorf("prune: %w", err))
				continue
			}
		}
		sls := make([]*scan.SpanList, end-base)
		for i := range sls {
			g := gatherPool.Get().(*Gather)
			g.closed = false
			gathers[base+i] = g
			sls[i] = g.sl
		}
		ssts, serrs := scan.PruneMulti(sls, data, d, mp, scan.Options{Validate: opts.Validate, MaxTokenSize: opts.MaxTokenSize})
		for i := range sls {
			j := base + i
			stats[j].fold(ssts[i])
			if serrs[i] != nil {
				errs[j] = fmt.Errorf("prune: %w", serrs[i])
				gathers[j].Close()
				gathers[j] = nil
				stats[j].BytesOut = 0
				continue
			}
			stats[j].BytesOut = gathers[j].sl.Len()
		}
	}
	return gathers, stats, errs
}

// StreamMulti is StreamMultiGather for streaming destinations: the
// source is materialised in memory once (an input implementing
// BytesSource is used in place), pruned against every projector in one
// shared scan, and each projector's output is flushed to the matching
// writer with vectored I/O. dsts must align with pis; a nil writer
// skips the flush (the stats still report the rendered size).
func StreamMulti(dsts []io.Writer, src io.Reader, d *dtd.DTD, pis []dtd.NameSet, opts MultiOptions) ([]Stats, []error) {
	if len(dsts) != len(pis) {
		panic("prune.StreamMulti: len(dsts) != len(pis)")
	}
	stats := make([]Stats, len(pis))
	errs := make([]error, len(pis))
	if err := ctxErr(opts.Ctx); err != nil {
		fillErr(errs, 0, len(pis), err)
		return stats, errs
	}
	data, inMem := inputBytesOf(src)
	if !inMem {
		buf := inputPool.Get().(*bytes.Buffer)
		buf.Reset()
		if size, known := inputSize(src); known && size > 0 && size < int64(int(^uint(0)>>1)) {
			buf.Grow(int(size))
		}
		r := src
		if opts.Ctx != nil {
			r = &ctxReader{ctx: opts.Ctx, r: src}
		}
		if _, rerr := buf.ReadFrom(r); rerr != nil {
			inputPool.Put(buf)
			fillErr(errs, 0, len(pis), fmt.Errorf("prune: %w", rerr))
			return stats, errs
		}
		data = buf.Bytes()
		defer func() {
			if buf.Cap() <= maxPooledInput {
				inputPool.Put(buf)
			}
		}()
	}
	gathers, gstats, gerrs := StreamMultiGather(data, d, pis, opts)
	for j, g := range gathers {
		stats[j], errs[j] = gstats[j], gerrs[j]
		if g == nil {
			continue
		}
		if dsts[j] != nil {
			if _, werr := g.WriteTo(dsts[j]); werr != nil && errs[j] == nil {
				errs[j] = fmt.Errorf("prune: %w", werr)
			}
		}
		g.Close()
	}
	return stats, errs
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("prune: %w", err)
	}
	return nil
}

func fillErr(errs []error, base, end int, err error) {
	for j := base; j < end; j++ {
		if errs[j] == nil {
			errs[j] = err
		}
	}
}
