package prune

import (
	"bytes"
	"io"
	"testing"

	"xmlproj/internal/dtd"
	"xmlproj/internal/xmark"
)

// benchProjectors are the π shapes the streaming pruner meets in
// practice: a low-selectivity projector keeping a thin slice of the
// document (most subtrees skip-scanned), a mid one, and the identity
// projector (everything raw-copied, validated or not).
func benchProjectors(d *dtd.DTD) map[string]dtd.NameSet {
	low := dtd.NewNameSet("site", "regions", "africa", "item", "item@id",
		"location", "location#text")
	mid := dtd.NewNameSet("site", "people", "person", "person@id", "name",
		"name#text", "emailaddress", "emailaddress#text", "open_auctions",
		"open_auction", "open_auction@id", "initial", "initial#text")
	full := dtd.NewNameSet()
	for _, n := range d.Names() {
		full.Add(n)
	}
	return map[string]dtd.NameSet{"low": low, "mid": mid, "full": full}
}

func benchDoc(b *testing.B) (*dtd.DTD, []byte) {
	b.Helper()
	d := xmark.DTD()
	doc := xmark.NewGenerator(0.01, 42).Document()
	var buf bytes.Buffer
	if err := doc.WriteXML(&buf); err != nil {
		b.Fatal(err)
	}
	return d, buf.Bytes()
}

func benchStream(b *testing.B, eng Engine, pi dtd.NameSet, validate bool) {
	d, src := benchDoc(b)
	opts := StreamOptions{Engine: eng, Validate: validate, Projection: d.CompileProjection(pi)}
	rd := bytes.NewReader(src)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(src)
		if _, err := Stream(io.Discard, rd, d, pi, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// benchStreamUnsized measures the pipelined engine the way it is met in
// practice: an io.Reader whose total size is unknown (a socket or pipe),
// so inputSize cannot pre-buffer and the windowed pipeline carries the
// prune. The bytes.Reader is hidden behind a plain io.Reader wrapper to
// defeat the size probe.
func benchStreamUnsized(b *testing.B, eng Engine, pi dtd.NameSet, validate bool) {
	d, src := benchDoc(b)
	opts := StreamOptions{Engine: eng, Validate: validate, Projection: d.CompileProjection(pi)}
	rd := bytes.NewReader(src)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(src)
		if _, err := Stream(io.Discard, struct{ io.Reader }{rd}, d, pi, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGather measures the span-gather path: same prune, but output
// recorded as spans over the input instead of copied to a writer.
// Steady state it allocates nothing (pooled gather, reused span list).
func benchGather(b *testing.B, eng Engine, pi dtd.NameSet, validate bool) {
	d, src := benchDoc(b)
	opts := StreamOptions{Engine: eng, Validate: validate, Projection: d.CompileProjection(pi)}
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, _, err := StreamGather(src, d, pi, opts)
		if err != nil {
			b.Fatal(err)
		}
		g.Close()
	}
}

// BenchmarkStreamPrune compares the byte-level scanner against the
// encoding/xml token path on an XMark document across projector
// selectivities, with and without fused validation. The scanner must
// beat the decoder by ≥2x throughput and ≥10x fewer allocations on the
// low-selectivity projector, and the validating scanner must stay
// within ~25% of the unvalidated one (dense DFAs keep validation on the
// raw-copy and skip-scan fast paths).
//
// The parallel cases measure the two-stage intra-document pruner; the
// pipelined cases measure the windowed read→index→prune→emit pipeline
// over an unsized reader (its realistic input shape); the auto cases
// measure EngineAuto's selection overhead — on a single-CPU host auto
// resolves to the serial scanner and must stay within ~5% of it (the
// cost of one size probe).
func BenchmarkStreamPrune(b *testing.B) {
	d := xmark.DTD()
	for name, pi := range benchProjectors(d) {
		pi := pi
		b.Run("scanner/"+name, func(b *testing.B) { benchStream(b, EngineScanner, pi, false) })
		b.Run("decoder/"+name, func(b *testing.B) { benchStream(b, EngineDecoder, pi, false) })
		b.Run("scanner-validate/"+name, func(b *testing.B) { benchStream(b, EngineScanner, pi, true) })
		b.Run("decoder-validate/"+name, func(b *testing.B) { benchStream(b, EngineDecoder, pi, true) })
		b.Run("parallel/"+name, func(b *testing.B) { benchStream(b, EngineParallel, pi, false) })
		b.Run("parallel-validate/"+name, func(b *testing.B) { benchStream(b, EngineParallel, pi, true) })
		b.Run("pipelined/"+name, func(b *testing.B) { benchStreamUnsized(b, EnginePipelined, pi, false) })
		b.Run("pipelined-validate/"+name, func(b *testing.B) { benchStreamUnsized(b, EnginePipelined, pi, true) })
		b.Run("auto/"+name, func(b *testing.B) { benchStream(b, EngineAuto, pi, false) })
		b.Run("gather/"+name, func(b *testing.B) { benchGather(b, EngineScanner, pi, false) })
		b.Run("gather-validate/"+name, func(b *testing.B) { benchGather(b, EngineScanner, pi, true) })
		b.Run("gather-parallel/"+name, func(b *testing.B) { benchGather(b, EngineParallel, pi, false) })
	}
}
