package prune

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"xmlproj/internal/dtd"
	"xmlproj/internal/xmark"
)

// The shared-scan multi-pruner is differentially tested against the
// serial span-gather path: for every projector in the set, the fused
// pass must reproduce the serial StreamGather's verdict, rendered
// bytes and stats exactly — with and without validation, including
// sets where validation kills some projectors and not others.

// checkMulti runs StreamMultiGather (and the writer-path StreamMulti)
// over data and requires per-projector agreement with serial
// StreamGather runs.
func checkMulti(t *testing.T, label string, data []byte, d *dtd.DTD, pis []dtd.NameSet, validate bool) {
	t.Helper()
	sopts := StreamOptions{Validate: validate, Engine: EngineScanner}
	type want struct {
		ok  bool
		out string
		st  Stats
	}
	wants := make([]want, len(pis))
	for j, pi := range pis {
		g, st, err := StreamGather(data, d, pi, sopts)
		if err == nil {
			wants[j] = want{ok: true, out: string(g.Bytes()), st: st}
			g.Close()
		}
	}
	gathers, stats, errs := StreamMultiGather(data, d, pis, MultiOptions{Validate: validate})
	for j := range pis {
		if wants[j].ok != (errs[j] == nil) {
			t.Fatalf("%s: multi verdict diverges from serial (validate=%v, projector %d)\nserial ok: %v\nmulti err: %v",
				label, validate, j, wants[j].ok, errs[j])
		}
		if errs[j] != nil {
			if gathers[j] != nil {
				t.Fatalf("%s: projector %d returned a Gather alongside an error", label, j)
			}
			continue
		}
		if got := string(gathers[j].Bytes()); got != wants[j].out {
			t.Fatalf("%s: multi output diverges (validate=%v, projector %d)\nmulti:  %q\nserial: %q",
				label, validate, j, got, wants[j].out)
		}
		var wb bytes.Buffer
		if n, err := gathers[j].WriteTo(&wb); err != nil || wb.String() != wants[j].out || n != int64(len(wants[j].out)) {
			t.Fatalf("%s: multi WriteTo mismatch (projector %d, n=%d, err=%v)", label, j, n, err)
		}
		if stats[j] != wants[j].st {
			t.Fatalf("%s: multi stats diverge (validate=%v, projector %d)\nmulti:  %+v\nserial: %+v",
				label, validate, j, stats[j], wants[j].st)
		}
		gathers[j].Close()
	}

	// Writer path: same verdicts, same rendered bytes through WriteTo.
	outs := make([]bytes.Buffer, len(pis))
	dsts := make([]io.Writer, len(pis))
	for j := range outs {
		dsts[j] = &outs[j]
	}
	msts, merrs := StreamMulti(dsts, bytes.NewReader(data), d, pis, MultiOptions{Validate: validate})
	for j := range pis {
		if wants[j].ok != (merrs[j] == nil) {
			t.Fatalf("%s: StreamMulti verdict diverges (validate=%v, projector %d): %v",
				label, validate, j, merrs[j])
		}
		if merrs[j] != nil {
			continue
		}
		if outs[j].String() != wants[j].out {
			t.Fatalf("%s: StreamMulti output diverges (validate=%v, projector %d)\nmulti:  %q\nserial: %q",
				label, validate, j, outs[j].String(), wants[j].out)
		}
		if msts[j] != wants[j].st {
			t.Fatalf("%s: StreamMulti stats diverge (projector %d)\nmulti:  %+v\nserial: %+v",
				label, j, msts[j], wants[j].st)
		}
	}
}

var multiBibPis = []dtd.NameSet{
	dtd.NewNameSet("bib", "book", "title", "title#text", "author", "author#text", "year", "year#text", "book@isbn", "book@lang"),
	dtd.NewNameSet("bib", "book", "title", "title#text"),
	dtd.NewNameSet("bib", "book", "book@isbn"),
	dtd.NewNameSet("bib"),
}

func TestMultiMatchesSerialFixed(t *testing.T) {
	d := mustDTD(t)
	for _, doc := range fixedBibDocs {
		for _, v := range []bool{false, true} {
			checkMulti(t, "fixed", []byte(doc), d, multiBibPis, v)
		}
	}
}

// TestMultiMatchesSerialInvalid feeds documents that violate the DTD:
// validation verdicts are per projector (a projector that never keeps
// the violating region accepts, one that keeps it fails), and the
// fused pass must reproduce each serial verdict and the surviving
// outputs byte for byte.
func TestMultiMatchesSerialInvalid(t *testing.T) {
	d := mustDTD(t)
	docs := []string{
		`<bib><book isbn="1"><author>A</author><title>T</title></book></bib>`,
		`<bib><book isbn="1"><title>T</title></book></bib>`,
		`<bib>stray<book isbn="1"><title>T</title><author>A</author></book></bib>`,
		`<bib><book isbn="1">x<title>T</title><author>A</author></book></bib>`,
		`<book isbn="1"><title>T</title><author>A</author></book>`,
		`<bib><book><title>T</title><author>A</author></book></bib>`,
		`<bib><book isbn="1" lang="de"><title>T</title><author>A</author></book></bib>`,
		`<bib><book isbn="1" x="1"><title>T</title><author>A</author></book></bib>`,
		`<bib><book isbn="1"><title>T</title><author>A</author><year>1</year><year>2</year></book></bib>`,
		`<bib><book isbn="1"/></bib>`,
	}
	for _, doc := range docs {
		for _, v := range []bool{false, true} {
			checkMulti(t, "invalid", []byte(doc), d, multiBibPis, v)
		}
	}
}

// TestMultiMatchesSerialMalformed: syntax and well-formedness errors
// fail every projector of the fused pass, as they fail every serial run.
func TestMultiMatchesSerialMalformed(t *testing.T) {
	d := mustDTD(t)
	cases := []string{
		``,
		`<bib>`,
		`<bib><book isbn="1"></bib>`,
		`</bib>`,
		`<bib>&bogus;</bib>`,
		`<bib>a & b</bib>`,
		`<bib><book isbn=1/></bib>`,
		`<bib><!-- -- --></bib>`,
		`<notdeclared/>`,
	}
	for _, src := range cases {
		gathers, _, errs := StreamMultiGather([]byte(src), d, multiBibPis, MultiOptions{})
		for j := range multiBibPis {
			if errs[j] == nil {
				t.Errorf("multi projector %d accepted malformed input %q", j, src)
			}
			if gathers[j] != nil {
				t.Errorf("multi projector %d returned a Gather for malformed input %q", j, src)
			}
		}
	}
}

// TestMultiMatchesSerialRandom draws random projector subsets over the
// XMark grammar and a corpus document, comparing the fused pass against
// each serial gather — the satellite's randomized differential.
func TestMultiMatchesSerialRandom(t *testing.T) {
	d := xmark.DTD()
	doc := []byte(xmark.NewGenerator(0.002, 23).Document().XML())
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(7)
		pis := make([]dtd.NameSet, n)
		for j := range pis {
			pis[j] = randomProjector(d, rng, 3+rng.Intn(40))
		}
		checkMulti(t, "random", doc, d, pis, false)
		checkMulti(t, "random", doc, d, pis, true)
	}
}

// TestMultiShardsBeyondFuseLimit: more than 64 projectors shard into
// consecutive fused passes, each still matching its serial gather.
func TestMultiShardsBeyondFuseLimit(t *testing.T) {
	d := mustDTD(t)
	doc := []byte(bibDoc)
	rng := rand.New(rand.NewSource(7))
	pis := make([]dtd.NameSet, dtd.MaxMultiProjections+6)
	for j := range pis {
		pis[j] = randomProjector(d, rng, 1+rng.Intn(8))
	}
	checkMulti(t, "sharded", doc, d, pis, false)
	checkMulti(t, "sharded", doc, d, pis, true)
}

// TestMultiPrecompiled: precompiled projections and a pre-fused
// decision table must give the same results as on-the-spot compiles.
func TestMultiPrecompiled(t *testing.T) {
	d := mustDTD(t)
	doc := []byte(bibDoc)
	projs := make([]*dtd.Projection, len(multiBibPis))
	for j, pi := range multiBibPis {
		projs[j] = d.CompileProjection(pi)
	}
	mp, err := dtd.CombineProjections(projs)
	if err != nil {
		t.Fatal(err)
	}
	base, _, berrs := StreamMultiGather(doc, d, multiBibPis, MultiOptions{})
	pre, _, perrs := StreamMultiGather(doc, d, multiBibPis, MultiOptions{Projections: projs, Combined: mp})
	for j := range multiBibPis {
		if (berrs[j] == nil) != (perrs[j] == nil) {
			t.Fatalf("projector %d: verdicts diverge with precompiled inputs: %v vs %v", j, berrs[j], perrs[j])
		}
		if berrs[j] != nil {
			continue
		}
		if !bytes.Equal(base[j].Bytes(), pre[j].Bytes()) {
			t.Fatalf("projector %d: output diverges with precompiled inputs", j)
		}
		base[j].Close()
		pre[j].Close()
	}
}

// TestMultiEmptySet: a zero-projector call is a no-op, not a panic.
func TestMultiEmptySet(t *testing.T) {
	d := mustDTD(t)
	gathers, stats, errs := StreamMultiGather([]byte(bibDoc), d, nil, MultiOptions{})
	if len(gathers) != 0 || len(stats) != 0 || len(errs) != 0 {
		t.Fatalf("empty projector set: got %d/%d/%d results", len(gathers), len(stats), len(errs))
	}
}
