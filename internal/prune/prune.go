// Package prune implements type-driven projection (Def. 2.7): given a
// document valid w.r.t. a DTD and a type projector π, it erases every
// node whose name under the interpretation ℑ is not in π.
//
// Two pruners are provided. PruneTree projects an in-memory document.
// Stream is the paper's §6 pruner: a single bufferless one-pass traversal
// of the token stream with constant memory, optionally fused with
// validation, suitable for running at parse/load time.
package prune

import (
	"bufio"
	"bytes"
	"context"
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"
	"unicode"
	"unicode/utf8"

	"xmlproj/internal/dtd"
	"xmlproj/internal/scan"
	"xmlproj/internal/tree"
	"xmlproj/internal/validate"
)

// Tree computes the π-projection t∖π of a document (Def. 2.7). The
// returned document shares nothing with the input; node IDs are preserved
// so that query results on the original and the pruned document can be
// compared by identity (the form of Thm. 4.5).
//
// Attributes are kept when their derived name is in π; if the owning
// element is kept but none of its attribute names are in π, the element
// keeps no attributes.
func Tree(d *dtd.DTD, doc *tree.Document, pi dtd.NameSet) *tree.Document {
	if doc.Root == nil {
		return &tree.Document{}
	}
	rootName := validate.NameOf(d, doc.Root)
	if !pi.Has(rootName) {
		return &tree.Document{}
	}
	out := &tree.Document{Root: pruneNode(d, doc.Root, pi, nil)}
	return out
}

func pruneNode(d *dtd.DTD, n *tree.Node, pi dtd.NameSet, parent *tree.Node) *tree.Node {
	m := &tree.Node{ID: n.ID, Kind: n.Kind, Tag: n.Tag, Data: n.Data, Parent: parent}
	name := validate.NameOf(d, n)
	if n.Kind == tree.Element {
		for _, a := range n.Attrs {
			if pi.Has(dtd.AttrName(name, a.Name)) {
				m.Attrs = append(m.Attrs, a)
			}
		}
	}
	for _, c := range n.Children {
		cn := validate.NameOf(d, c)
		if !pi.Has(cn) {
			continue
		}
		child := pruneNode(d, c, pi, m)
		child.Index = len(m.Children)
		m.Children = append(m.Children, child)
	}
	return m
}

// Stats reports what a streaming prune did.
type Stats struct {
	// ElementsIn / ElementsOut count element start tags read / elements
	// written. ElementsIn includes the descendants of discarded subtrees:
	// the pruner consumes their tokens (without materialising them) to
	// find the matching end tag, so they are part of the input actually
	// scanned.
	ElementsIn, ElementsOut int64
	// TextIn / TextOut count non-whitespace logical text nodes read /
	// written. Consecutive character-data chunks (entity boundaries, CDATA
	// sections) are coalesced into one logical text node before counting,
	// mirroring the tree data model. TextIn includes text inside discarded
	// subtrees.
	TextIn, TextOut int64
	// ElementsSkipped / TextSkipped count the elements and logical text
	// nodes inside discarded subtrees (a subset of ElementsIn / TextIn;
	// the discarded subtree's root element is not included — it was
	// surfaced, and counted, before being discarded).
	ElementsSkipped, TextSkipped int64
	// BytesOut counts bytes written to the destination.
	BytesOut int64
	// MaxDepth is the deepest open-element stack observed — the streaming
	// pruner's working set is proportional to this, not to the document.
	MaxDepth int
}

// fold copies a scanner-path Stats into the public struct (BytesOut is
// accounted separately by the counting writer).
func (st *Stats) fold(sst scan.Stats) {
	st.ElementsIn = sst.ElementsIn
	st.ElementsOut = sst.ElementsOut
	st.TextIn = sst.TextIn
	st.TextOut = sst.TextOut
	st.ElementsSkipped = sst.ElementsSkipped
	st.TextSkipped = sst.TextSkipped
	st.MaxDepth = sst.MaxDepth
}

// Engine selects the tokenizer behind Stream.
type Engine int

const (
	// EngineAuto picks the byte-level scanner for UTF-8 input and falls
	// back to encoding/xml when the first bytes look like a UTF-16/32
	// document. This is the default.
	EngineAuto Engine = iota
	// EngineScanner forces the byte-level scanner (internal/scan).
	EngineScanner
	// EngineDecoder forces the encoding/xml token path. It is the
	// reference implementation: the scanner's output and stats are
	// differentially tested against it.
	EngineDecoder
	// EngineParallel forces the two-stage parallel pruner: a parallel
	// structural index over byte chunks, concurrent fragment pruning,
	// and a sequential splice pass — byte-identical output and identical
	// verdicts to EngineScanner. The whole input is buffered in memory.
	// EngineAuto selects it for large inputs of known size when more
	// than one CPU is available.
	EngineParallel
	// EnginePipelined forces the pipelined streaming parallel pruner:
	// reading, incremental structural indexing, concurrent fragment
	// pruning and in-order emission overlap in a bounded ring of window
	// buffers, so memory stays at ring × window bytes however large the
	// document — with byte-identical output and identical verdicts to
	// EngineScanner. EngineAuto selects it for UTF-8 readers — unknown
	// size, or known size past a threshold — when more than one CPU is
	// available.
	EnginePipelined
)

// ParallelDetail reports how an EngineParallel prune executed.
type ParallelDetail struct {
	// IndexTime, PruneTime and StitchTime are the wall times of the
	// structural-index stage, the concurrent fragment stage, and the
	// sequential splice pass.
	IndexTime, PruneTime, StitchTime time.Duration
	// Workers is the resolved worker count; Tasks the number of content
	// ranges pruned concurrently.
	Workers, Tasks int
	// Fallback reports that the input was handed to the serial scanner
	// (structure the index cannot describe, or a tiny token cap).
	Fallback bool
}

// PipelineDetail reports how an EnginePipelined prune executed.
type PipelineDetail struct {
	// ReadTime, IndexTime, PruneTime and EmitTime are the per-stage
	// times: source reads, incremental index+plan, summed concurrent
	// fragment work, and the spine's in-order splice-and-emit pass.
	ReadTime, IndexTime, PruneTime, EmitTime time.Duration
	// Windows is the number of windows streamed; Tasks the number of
	// delegated content ranges; Workers the resolved worker count.
	Windows, Tasks, Workers int
	// PeakWindowBytes is the peak window bytes simultaneously resident —
	// bounded by PipelineRingDepth × PipelineWindowSize.
	PeakWindowBytes int64
	// Fallback reports that the input was handed to the serial scanner
	// (a token cap too small for the parallel invariants).
	Fallback bool
}

// parallelMinBytes is the input size below which EngineAuto does not
// bother with the parallel pruner.
const parallelMinBytes = 4 << 20

// pipelineMinBytes is the known input size below which EngineAuto does
// not bother with the pipelined pruner (unknown-size readers always
// qualify — the point is not having to buffer them).
const pipelineMinBytes = 1 << 20

// StreamOptions configures a streaming prune.
type StreamOptions struct {
	// Validate checks content models, attribute declarations and the root
	// element while pruning (§6: "prune the document while validating it").
	// Validation is fused into the scanner's fast paths: raw-copy
	// passthrough stays enabled, with every element and text symbol still
	// walked through the dense content-model DFAs.
	Validate bool
	// Engine selects the tokenizer; the zero value is EngineAuto.
	Engine Engine
	// MaxTokenSize bounds the scanner-path token buffer; a single token
	// larger than this fails with scan.ErrTokenTooLong. Zero means
	// scan.DefaultMaxTokenSize. The decoder path is not affected.
	MaxTokenSize int
	// Projection, when non-nil, is the compiled form of π to use on the
	// scanner path, letting batch callers compile π once per (DTD, π)
	// pair instead of once per document. It must have been compiled from
	// the same DTD and π passed to Stream.
	Projection *dtd.Projection
	// ParallelWorkers bounds EngineParallel's concurrency (0 means
	// GOMAXPROCS); ParallelChunkSize and ParallelFragTarget override the
	// stage-1 chunk granularity and the per-fragment target size.
	ParallelWorkers    int
	ParallelChunkSize  int
	ParallelFragTarget int
	// PipelineWindowSize and PipelineRingDepth configure EnginePipelined:
	// the window buffer size and the number of windows in flight. Peak
	// input-side memory is their product. Zero means the engine defaults
	// (1 MiB windows, workers+2 ring). ParallelWorkers and
	// ParallelFragTarget apply to the pipelined engine too.
	PipelineWindowSize int
	PipelineRingDepth  int
	// Detail, when non-nil, receives per-stage execution details of an
	// EngineParallel prune.
	Detail *ParallelDetail
	// Pipeline, when non-nil, receives per-stage execution details of an
	// EnginePipelined prune.
	Pipeline *PipelineDetail
	// Ctx, when non-nil, aborts the prune when the context is cancelled:
	// the source is checked before every read and Stream returns the
	// context error (wrapped), recognisable with errors.Is. Long prunes
	// driven by a server request can thus be cut off when the client
	// goes away or a deadline passes.
	Ctx context.Context
	// Chosen, when non-nil, receives the engine Stream resolved for this
	// input (never EngineAuto), so callers can log what actually ran.
	Chosen *Engine
}

// Stream prunes the XML document read from src against π, writing the
// pruned document to dst in one pass. Subtrees rooted at pruned elements
// are skipped without buffering, so memory use is bounded by the document
// depth.
//
// By default the prune runs on the byte-level scanner (internal/scan):
// tags and text are tokenized as sub-slices of the read buffer, names
// resolve through the DTD's dense symbol table, subtrees outside π are
// skip-scanned without materialisation, and subtrees whose reachable
// closure lies inside π are copied through verbatim — with or without
// validation, which rides along on the dense content-model DFAs. Output
// is byte-identical to the encoding/xml path, which is kept as the
// fallback for non-UTF-8 input and as the testing oracle.
//
// A src implementing BytesSource (an mmap'd file, a buffered request
// body) is never read: the prune switches to the in-memory fast paths
// (StreamBytes) and scans the caller's bytes in place.
func Stream(dst io.Writer, src io.Reader, d *dtd.DTD, pi dtd.NameSet, opts StreamOptions) (Stats, error) {
	if opts.Ctx != nil {
		src = &ctxReader{ctx: opts.Ctx, r: src}
	}
	if data, ok := inputBytesOf(src); ok {
		return StreamBytes(dst, data, d, pi, opts)
	}
	return streamReader(dst, src, d, pi, opts)
}

// StreamBytes is Stream over input that is already fully in memory:
// the scanner aliases data instead of reading and buffering it, so the
// input side copies nothing, and EngineParallel skips the buffering
// pass entirely. Output and stats are byte-identical to Stream's; one
// documented exception: MaxTokenSize is not enforced on the in-memory
// scanner paths (the cap bounds the streaming scanner's buffer growth,
// which in-memory input does not have) — bound such inputs by size.
func StreamBytes(dst io.Writer, data []byte, d *dtd.DTD, pi dtd.NameSet, opts StreamOptions) (Stats, error) {
	var stats Stats
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return stats, fmt.Errorf("prune: %w", err)
		}
	}
	eng := resolveBytesEngine(data, opts)
	if eng == EngineDecoder {
		// The reference path tokenizes through a reader; in-memory input
		// is simply a reader that never refills.
		ropts := opts
		ropts.Engine = EngineDecoder
		var src io.Reader = bytes.NewReader(data)
		if opts.Ctx != nil {
			src = &ctxReader{ctx: opts.Ctx, r: src}
		}
		return streamReader(dst, src, d, pi, ropts)
	}
	if opts.Chosen != nil {
		*opts.Chosen = eng
	}
	bw := bwPool.Get().(*bufio.Writer)
	bw.Reset(countingWriter{w: dst, n: &stats.BytesOut})
	defer func() {
		bw.Reset(io.Discard) // drop the caller's writer before pooling
		bwPool.Put(bw)
	}()
	proj := opts.Projection
	if proj == nil {
		proj = d.CompileProjection(pi)
	}
	var sst scan.Stats
	var err error
	switch eng {
	case EngineParallel:
		var det scan.ParallelDetail
		sst, det, err = scan.PruneParallel(bw, data, d, proj, parallelOptsOf(opts))
		setDetail(opts, det)
	case EnginePipelined:
		// Forced pipelined over in-memory input: stream it. (EngineAuto
		// prefers EngineParallel here — the input is already resident,
		// so the pipeline's memory bound buys nothing.)
		var det scan.PipelineDetail
		sst, det, err = scan.PrunePipelined(bw, bytes.NewReader(data), d, proj, pipelineOptsOf(opts))
		setPipeDetail(opts, det)
	default:
		sst, err = scan.PruneBytes(bw, data, d, proj, scanOptsOf(opts))
	}
	stats.fold(sst)
	if err != nil {
		return stats, fmt.Errorf("prune: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return stats, fmt.Errorf("prune: %w", err)
	}
	return stats, nil
}

// Gather is the span-gather result of StreamGather: the pruned output
// described as an ordered list of spans over the caller's input plus a
// small escape buffer of synthesized bytes. Flushing (io.WriterTo)
// hands the spans to the kernel as one writev on TCP connections —
// raw-copied subtrees go out straight from the input buffer. The input
// slice must stay alive and unmodified until Close, which recycles the
// gather's state; a Gather must not be used after Close.
type Gather struct {
	sl     *scan.SpanList
	closed bool
}

var gatherPool = sync.Pool{New: func() any { return &Gather{sl: new(scan.SpanList)} }}

// WriteTo flushes the rendered output with vectored I/O.
func (g *Gather) WriteTo(w io.Writer) (int64, error) { return g.sl.WriteTo(w) }

// Bytes materialises the rendered output in a fresh slice.
func (g *Gather) Bytes() []byte { return g.sl.Bytes() }

// AppendTo appends the rendered output to dst.
func (g *Gather) AppendTo(dst []byte) []byte { return g.sl.AppendTo(dst) }

// Len is the rendered output size in bytes.
func (g *Gather) Len() int64 { return g.sl.Len() }

// RawBytes counts the output bytes referenced in place from the input
// — bytes the prune never copied. Len()-RawBytes() is the synthesized
// remainder (re-rendered tags, escaped text).
func (g *Gather) RawBytes() int64 { return g.sl.RawBytes() }

// Segments is the number of gather segments (writev iovecs).
func (g *Gather) Segments() int { return g.sl.Segments() }

// Close drops the gather's input reference and recycles its state.
// Safe to call more than once.
func (g *Gather) Close() error {
	if g.closed {
		return nil
	}
	g.closed = true
	g.sl.Clear()
	gatherPool.Put(g)
	return nil
}

// StreamGather prunes in-memory input into a span-gather result
// instead of a destination writer: output bytes that survive the
// projection are referenced in place, so nothing is copied until the
// result is flushed — and flushing to a TCP connection is vectored
// writes straight out of data. The rendered output is byte-identical
// to Stream's, and stats match it (BytesOut is the rendered size).
//
// Engine selection follows StreamBytes; non-UTF-8 input runs the
// decoder reference path, materialised into the escape buffer as one
// segment. MaxTokenSize is not enforced on the in-memory scanner paths
// (see StreamBytes). On error no Gather is returned (partial output is
// discarded, unlike the streaming paths which have already written
// it). The caller must Close the returned Gather.
func StreamGather(data []byte, d *dtd.DTD, pi dtd.NameSet, opts StreamOptions) (*Gather, Stats, error) {
	var stats Stats
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return nil, stats, fmt.Errorf("prune: %w", err)
		}
	}
	g := gatherPool.Get().(*Gather)
	g.closed = false
	eng := resolveBytesEngine(data, opts)
	if eng == EnginePipelined {
		// Gather output spans the whole resident input; the pipeline's
		// windowed streaming buys nothing here. Run the batch parallel
		// pruner, which produces the same bytes.
		eng = EngineParallel
	}
	if eng == EngineDecoder {
		g.sl.Reset(data)
		ropts := opts
		ropts.Engine = EngineDecoder
		st, err := streamReader(g.sl, bytes.NewReader(data), d, pi, ropts)
		if err != nil {
			g.Close()
			return nil, st, err
		}
		return g, st, nil
	}
	if opts.Chosen != nil {
		*opts.Chosen = eng
	}
	proj := opts.Projection
	if proj == nil {
		proj = d.CompileProjection(pi)
	}
	var sst scan.Stats
	var err error
	if eng == EngineParallel {
		var det scan.ParallelDetail
		sst, det, err = scan.PruneParallelGather(g.sl, data, d, proj, parallelOptsOf(opts))
		setDetail(opts, det)
	} else {
		sst, err = scan.PruneGather(g.sl, data, d, proj, scanOptsOf(opts))
	}
	stats.fold(sst)
	stats.BytesOut = g.sl.Len()
	if err != nil {
		g.Close()
		return nil, stats, fmt.Errorf("prune: %w", err)
	}
	return g, stats, nil
}

// resolveBytesEngine picks the engine for in-memory input: non-UTF-8
// heads sniff to the decoder; inputs worth splitting go parallel.
func resolveBytesEngine(data []byte, opts StreamOptions) Engine {
	eng := opts.Engine
	if eng != EngineAuto {
		return eng
	}
	switch {
	case looksNonUTF8(data):
		return EngineDecoder
	case len(data) >= parallelMinBytes && runtime.GOMAXPROCS(0) > 1 && opts.ParallelWorkers != 1:
		return EngineParallel
	default:
		return EngineScanner
	}
}

func scanOptsOf(opts StreamOptions) scan.Options {
	return scan.Options{
		Validate:     opts.Validate,
		RawCopy:      true,
		MaxTokenSize: opts.MaxTokenSize,
	}
}

func parallelOptsOf(opts StreamOptions) scan.ParallelOptions {
	return scan.ParallelOptions{
		Options:    scanOptsOf(opts),
		Workers:    opts.ParallelWorkers,
		ChunkSize:  opts.ParallelChunkSize,
		FragTarget: opts.ParallelFragTarget,
	}
}

func pipelineOptsOf(opts StreamOptions) scan.PipelineOptions {
	return scan.PipelineOptions{
		Options:    scanOptsOf(opts),
		Workers:    opts.ParallelWorkers,
		WindowSize: opts.PipelineWindowSize,
		RingDepth:  opts.PipelineRingDepth,
		FragTarget: opts.ParallelFragTarget,
	}
}

func setPipeDetail(opts StreamOptions, det scan.PipelineDetail) {
	if opts.Pipeline != nil {
		*opts.Pipeline = PipelineDetail{
			ReadTime:        time.Duration(det.ReadNanos),
			IndexTime:       time.Duration(det.IndexNanos),
			PruneTime:       time.Duration(det.PruneNanos),
			EmitTime:        time.Duration(det.EmitNanos),
			Windows:         det.Windows,
			Tasks:           det.Tasks,
			Workers:         det.Workers,
			PeakWindowBytes: det.PeakWindowBytes,
			Fallback:        det.Fallback,
		}
	}
}

func setDetail(opts StreamOptions, det scan.ParallelDetail) {
	if opts.Detail != nil {
		*opts.Detail = ParallelDetail{
			IndexTime:  time.Duration(det.IndexNanos),
			PruneTime:  time.Duration(det.PruneNanos),
			StitchTime: time.Duration(det.StitchNanos),
			Workers:    det.Workers,
			Tasks:      det.Tasks,
			Fallback:   det.Fallback,
		}
	}
}

// streamReader is the reader-based body of Stream; src is already
// context-wrapped by the caller when a context is set.
func streamReader(dst io.Writer, src io.Reader, d *dtd.DTD, pi dtd.NameSet, opts StreamOptions) (Stats, error) {
	var stats Stats
	bw := bwPool.Get().(*bufio.Writer)
	bw.Reset(countingWriter{w: dst, n: &stats.BytesOut})
	defer func() {
		bw.Reset(io.Discard) // drop the caller's writer before pooling
		bwPool.Put(bw)
	}()

	eng := opts.Engine
	// The input size must be probed before the sniff below wraps src in a
	// MultiReader that hides the concrete reader type.
	size, sizeKnown := inputSize(src)
	if eng == EngineAuto {
		var hdr [4]byte
		n, _ := io.ReadFull(src, hdr[:])
		src = io.MultiReader(bytes.NewReader(hdr[:n]), src)
		switch {
		case looksNonUTF8(hdr[:n]):
			eng = EngineDecoder
		case runtime.GOMAXPROCS(0) > 1 && opts.ParallelWorkers != 1 &&
			(!sizeKnown || size >= pipelineMinBytes):
			// A worker budget of exactly 1 (a batch or server already
			// saturating the CPUs) makes the overlap machinery pure
			// overhead; stay serial. Otherwise the pipelined pruner
			// covers both cases the parallel pruner could not: unknown
			// sizes (no need to buffer the whole input to split it) and
			// known sizes (reading overlaps pruning instead of
			// completing before it).
			eng = EnginePipelined
		default:
			eng = EngineScanner
		}
	}
	if opts.Chosen != nil {
		*opts.Chosen = eng
	}
	if eng == EnginePipelined {
		proj := opts.Projection
		if proj == nil {
			proj = d.CompileProjection(pi)
		}
		sst, det, err := scan.PrunePipelined(bw, src, d, proj, pipelineOptsOf(opts))
		setPipeDetail(opts, det)
		stats.fold(sst)
		if err != nil {
			return stats, fmt.Errorf("prune: %w", err)
		}
		if err := bw.Flush(); err != nil {
			return stats, fmt.Errorf("prune: %w", err)
		}
		return stats, nil
	}
	if eng == EngineParallel {
		proj := opts.Projection
		if proj == nil {
			proj = d.CompileProjection(pi)
		}
		buf := inputPool.Get().(*bytes.Buffer)
		buf.Reset()
		if sizeKnown && size > 0 && size < int64(int(^uint(0)>>1)) {
			buf.Grow(int(size))
		}
		if _, rerr := buf.ReadFrom(src); rerr != nil {
			inputPool.Put(buf)
			return stats, fmt.Errorf("prune: %w", rerr)
		}
		sst, det, err := scan.PruneParallel(bw, buf.Bytes(), d, proj, parallelOptsOf(opts))
		if buf.Cap() <= maxPooledInput {
			inputPool.Put(buf)
		}
		setDetail(opts, det)
		stats.fold(sst)
		if err != nil {
			return stats, fmt.Errorf("prune: %w", err)
		}
		if err := bw.Flush(); err != nil {
			return stats, fmt.Errorf("prune: %w", err)
		}
		return stats, nil
	}
	if eng == EngineScanner {
		proj := opts.Projection
		if proj == nil {
			proj = d.CompileProjection(pi)
		}
		sst, err := scan.Prune(bw, src, d, proj, scanOptsOf(opts))
		stats.fold(sst)
		if err != nil {
			return stats, fmt.Errorf("prune: %w", err)
		}
		if err := bw.Flush(); err != nil {
			return stats, fmt.Errorf("prune: %w", err)
		}
		return stats, nil
	}

	dec := xml.NewDecoder(src)

	type frame struct {
		name  dtd.Name
		def   *dtd.Def
		state int // content-model DFA state (when validating)
	}
	var stack []frame
	sawRoot := false
	// open is true while the most recent start tag is still unclosed in
	// the output (no '>' written yet), enabling <e/> self-closing output.
	open := false
	closeOpen := func() {
		if open {
			bw.WriteString(">")
			open = false
		}
	}

	// text accumulates the current logical text node: consecutive
	// character-data chunks (split by the decoder at entity and CDATA
	// boundaries) coalesced, with whitespace-only chunks dropped, exactly
	// as the tree parser merges them. The run is counted, validated and
	// written once, when the next tag ends it.
	var text strings.Builder
	flushText := func() error {
		if text.Len() == 0 {
			return nil
		}
		s := text.String()
		text.Reset()
		stats.TextIn++
		top := &stack[len(stack)-1]
		tn := dtd.TextName(top.name)
		if opts.Validate {
			next := top.def.Automaton().Next(top.state, tn)
			if next < 0 {
				return fmt.Errorf("prune: text content not allowed in %s", top.name)
			}
			top.state = next
		}
		if pi.Has(tn) {
			closeOpen()
			bw.WriteString(tree.EscapeText(s))
			stats.TextOut++
		}
		return nil
	}

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return stats, fmt.Errorf("prune: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if err := flushText(); err != nil {
				return stats, err
			}
			stats.ElementsIn++
			sawRoot = true
			tag := t.Name.Local
			name, ok := d.ElementName(tag)
			if !ok {
				return stats, fmt.Errorf("prune: element %q not declared in DTD", tag)
			}
			if len(stack) == 0 && opts.Validate && name != d.Root {
				return stats, fmt.Errorf("prune: root element is %s, DTD requires %s", name, d.Root)
			}
			if opts.Validate && len(stack) > 0 {
				top := &stack[len(stack)-1]
				top.state = top.def.Automaton().Next(top.state, name)
				if top.state < 0 {
					return stats, fmt.Errorf("prune: element %s not allowed here in content of %s", name, top.name)
				}
			}
			if !pi.Has(name) {
				// Constant memory: the decoder discards the whole subtree
				// without materialising it, counting what it scans past.
				// The skipped subtree still counts as validated only
				// shallowly; the paper's pruner behaves the same way
				// (discarded data is not needed, hence not checked deeply).
				if err := skipSubtree(dec, &stats); err != nil {
					return stats, fmt.Errorf("prune: %w", err)
				}
				continue
			}
			def := d.Def(name)
			closeOpen()
			if err := writeStart(bw, tag, t.Attr, def, pi, opts); err != nil {
				return stats, err
			}
			open = true
			stack = append(stack, frame{name: name, def: def, state: def.Automaton().Start()})
			if len(stack) > stats.MaxDepth {
				stats.MaxDepth = len(stack)
			}
		case xml.EndElement:
			if len(stack) == 0 {
				return stats, fmt.Errorf("prune: unbalanced end element %s", t.Name.Local)
			}
			if err := flushText(); err != nil {
				return stats, err
			}
			top := stack[len(stack)-1]
			if opts.Validate && !top.def.Automaton().Accepting(top.state) {
				return stats, fmt.Errorf("prune: content of %s is incomplete (model %s)", top.name, top.def.Content)
			}
			stack = stack[:len(stack)-1]
			if open {
				bw.WriteString("/>")
				open = false
			} else {
				bw.WriteString("</")
				bw.WriteString(t.Name.Local)
				bw.WriteString(">")
			}
			stats.ElementsOut++
		case xml.CharData:
			if len(stack) == 0 {
				continue
			}
			if allSpace(t) {
				continue
			}
			text.Write(t)
		case xml.Comment, xml.ProcInst, xml.Directive:
			// Outside the data model; dropped (the paper's pruner keeps
			// only elements, attributes and text). The surrounding
			// character data stays one logical text node, as in the tree
			// parser, so the run is not flushed here.
		}
	}
	if len(stack) != 0 {
		return stats, fmt.Errorf("prune: unterminated element %s", stack[len(stack)-1].name)
	}
	if !sawRoot {
		return stats, fmt.Errorf("prune: no root element in input")
	}
	if err := bw.Flush(); err != nil {
		return stats, fmt.Errorf("prune: %w", err)
	}
	return stats, nil
}

// skipSubtree consumes the remainder of the current element — the
// equivalent of xml.Decoder.Skip — while counting the elements and
// logical text nodes scanned past, so Stats reflects the whole input.
// Nothing is materialised; memory stays constant.
func skipSubtree(dec *xml.Decoder, stats *Stats) error {
	depth := 1
	// pending is true while a non-whitespace text run is open; runs merge
	// across comments and PIs, matching the main loop and the tree parser.
	pending := false
	flush := func() {
		if pending {
			stats.TextIn++
			stats.TextSkipped++
			pending = false
		}
	}
	for depth > 0 {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			flush()
			stats.ElementsIn++
			stats.ElementsSkipped++
			depth++
		case xml.EndElement:
			flush()
			depth--
		case xml.CharData:
			if !allSpace(t) {
				pending = true
			}
		}
	}
	return nil
}

func writeStart(bw *bufio.Writer, tag string, attrs []xml.Attr, def *dtd.Def, pi dtd.NameSet, opts StreamOptions) error {
	bw.WriteString("<")
	bw.WriteString(tag)
	for _, a := range attrs {
		if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
			continue
		}
		if opts.Validate {
			ad := def.AttDef(a.Name.Local)
			if ad == nil {
				return fmt.Errorf("prune: undeclared attribute %q on %s", a.Name.Local, tag)
			}
			if len(ad.Enum) > 0 && !inList(ad.Enum, a.Value) {
				return fmt.Errorf("prune: attribute %q on %s has value %q outside its enumeration", a.Name.Local, tag, a.Value)
			}
		}
		if !pi.Has(dtd.AttrName(def.Name, a.Name.Local)) {
			continue
		}
		bw.WriteString(" ")
		bw.WriteString(a.Name.Local)
		bw.WriteString("=\"")
		bw.WriteString(tree.EscapeAttr(a.Value))
		bw.WriteString("\"")
	}
	if opts.Validate {
		for i := range def.Atts {
			ad := &def.Atts[i]
			if !ad.Required {
				continue
			}
			if !hasAttr(attrs, ad.Attr) {
				return fmt.Errorf("prune: missing required attribute %q on %s", ad.Attr, tag)
			}
		}
	}
	return nil
}

// allSpace reports whether the chunk is whitespace-only, without the
// string conversion that strings.TrimSpace(string(t)) would allocate on
// every character-data token.
func allSpace(b []byte) bool {
	i := 0
	for i < len(b) && b[i] < utf8.RuneSelf {
		switch b[i] {
		case ' ', '\t', '\n', '\r', '\v', '\f':
			i++
		default:
			return false
		}
	}
	for i < len(b) {
		r, size := utf8.DecodeRune(b[i:])
		if !unicode.IsSpace(r) {
			return false
		}
		i += size
	}
	return true
}

// looksNonUTF8 sniffs the first bytes for UTF-16/32 byte-order marks or
// null-padded '<' patterns; such documents go to the encoding/xml path
// (which itself rejects undeclared non-UTF-8 encodings, matching the
// scanner). UTF-8 declarations and the UTF-8 BOM stay on the scanner.
func looksNonUTF8(h []byte) bool {
	if len(h) >= 2 {
		if (h[0] == 0xFE && h[1] == 0xFF) || (h[0] == 0xFF && h[1] == 0xFE) {
			return true // UTF-16 BOM (UTF-32LE BOM shares the prefix)
		}
		if (h[0] == 0x3C && h[1] == 0x00) || (h[0] == 0x00 && h[1] == 0x3C) {
			return true // '<' in UTF-16 without a BOM
		}
	}
	if len(h) >= 4 && h[0] == 0x00 && h[1] == 0x00 && h[2] == 0xFE && h[3] == 0xFF {
		return true // UTF-32BE BOM
	}
	return false
}

func inList(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func hasAttr(attrs []xml.Attr, name string) bool {
	for _, a := range attrs {
		if a.Name.Local == name {
			return true
		}
	}
	return false
}

// ctxReader aborts reads once its context is cancelled, so a prune
// whose client went away or whose deadline passed stops consuming the
// source instead of streaming to completion.
type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (c *ctxReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.r.Read(p)
}

// InputSize forwards the underlying reader's size so EngineAuto can
// still see it through the wrapper.
func (c *ctxReader) InputSize() (int64, bool) { return inputSize(c.r) }

// InputBytes forwards an in-memory source through the wrapper. A
// cancelled context declines the fast path so the error surfaces
// through the ordinary read.
func (c *ctxReader) InputBytes() []byte {
	if c.ctx.Err() != nil {
		return nil
	}
	if bs, ok := c.r.(BytesSource); ok {
		return bs.InputBytes()
	}
	return nil
}

// BytesSource is implemented by readers whose entire content is
// already in memory — an mmap'd file, a buffered request body. Stream
// consults it before reading anything: a non-nil slice switches the
// prune to the zero-copy in-memory paths (StreamBytes) and the reader
// is never read from. InputBytes is called at most once per prune, at
// the point of commitment, so implementations may do real work (map
// the file) and should account the full length as consumed; returning
// nil declines, and the prune falls back to ordinary reads. Wrapping
// readers (counting readers, instrumented streams) should forward it,
// as they do Sizer.
type BytesSource interface {
	InputBytes() []byte
}

func inputBytesOf(src io.Reader) ([]byte, bool) {
	if bs, ok := src.(BytesSource); ok {
		if b := bs.InputBytes(); b != nil {
			return b, true
		}
	}
	return nil, false
}

// Sizer lets a wrapping reader (a counting reader, an instrumented
// stream) forward the size of its underlying input so EngineAuto can
// still consider the parallel pruner.
type Sizer interface {
	InputSize() (size int64, known bool)
}

// InputSize reports the number of unread bytes in src when its concrete
// type (bytes/strings readers, regular files) or a Sizer implementation
// exposes it — the signal EngineAuto uses to decide whether a parallel
// prune is worth buffering the input.
func InputSize(src io.Reader) (int64, bool) { return inputSize(src) }

func inputSize(src io.Reader) (int64, bool) {
	switch r := src.(type) {
	case Sizer:
		return r.InputSize()
	case *bytes.Reader:
		return int64(r.Len()), true
	case *strings.Reader:
		return int64(r.Len()), true
	case *os.File:
		cur, err := r.Seek(0, io.SeekCurrent)
		if err != nil {
			return 0, false
		}
		fi, err := r.Stat()
		if err != nil || !fi.Mode().IsRegular() || fi.Size() < cur {
			return 0, false
		}
		return fi.Size() - cur, true
	}
	return 0, false
}

// bwPool recycles the output buffers across prunes; a batch of small
// documents would otherwise allocate a 64 KiB buffer each.
var bwPool = sync.Pool{New: func() any {
	return bufio.NewWriterSize(io.Discard, 1<<16)
}}

// inputPool recycles EngineParallel's whole-document input buffers.
// Buffers above maxPooledInput are dropped rather than pinned.
var inputPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledInput = 64 << 20

type countingWriter struct {
	w io.Writer
	n *int64
}

func (c countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	*c.n += int64(n)
	return n, err
}

// StreamString is Stream over strings, for tests and tools.
func StreamString(src string, d *dtd.DTD, pi dtd.NameSet, opts StreamOptions) (string, Stats, error) {
	var sb strings.Builder
	stats, err := Stream(&sb, strings.NewReader(src), d, pi, opts)
	return sb.String(), stats, err
}
