package prune

import (
	"bytes"
	"context"
	"errors"
	"io"
	"runtime"
	"strings"
	"testing"

	"xmlproj/internal/dtd"
)

// TestStreamContextCancelled: a cancelled context aborts the prune
// before the next read; the returned error unwraps to the context
// error with errors.Is.
func TestStreamContextCancelled(t *testing.T) {
	d, _ := setup(t)
	pi := dtd.NewNameSet("bib", "book", "title", dtd.TextName("title"))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	_, err := Stream(&out, strings.NewReader(bibDoc), d, pi, StreamOptions{Ctx: ctx})
	if err == nil {
		t.Fatal("prune under a cancelled context succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
}

// cancelMidwayReader cancels its context after the first chunk, so the
// prune aborts mid-document.
type cancelMidwayReader struct {
	data   []byte
	served bool
	cancel context.CancelFunc
}

func (r *cancelMidwayReader) Read(p []byte) (int, error) {
	if r.served {
		return 0, io.EOF
	}
	r.served = true
	half := len(r.data) / 2
	n := copy(p, r.data[:half])
	r.cancel()
	return n, nil
}

func TestStreamContextCancelledMidway(t *testing.T) {
	d, _ := setup(t)
	pi := dtd.NewNameSet("bib", "book", "title", dtd.TextName("title"))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	_, err := Stream(&out, &cancelMidwayReader{data: []byte(bibDoc), cancel: cancel}, d, pi, StreamOptions{Ctx: ctx})
	if err == nil {
		t.Fatal("prune cancelled midway succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
}

// TestStreamChosenEngine: Stream reports which engine it resolved, and
// auto-selection refuses the concurrent pruners when the caller's
// worker budget is exactly 1 — the overlap machinery with one worker is
// pure overhead.
func TestStreamChosenEngine(t *testing.T) {
	d, _ := setup(t)
	pi := dtd.NewNameSet("bib", "book", "title", dtd.TextName("title"))

	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	// A document comfortably over the pipeline threshold, of known size.
	var sb strings.Builder
	sb.WriteString("<bib>")
	row := `<book isbn="1"><title>T</title><author>A</author></book>`
	for sb.Len() < pipelineMinBytes+1024 {
		sb.WriteString(row)
	}
	sb.WriteString("</bib>")
	big := sb.String()

	cases := []struct {
		name    string
		workers int
		want    Engine
	}{
		{"budget-free picks pipelined", 0, EnginePipelined},
		{"budget of one stays serial", 1, EngineScanner},
		{"budget of two picks pipelined", 2, EnginePipelined},
	}
	for _, c := range cases {
		var chosen Engine
		var out bytes.Buffer
		_, err := Stream(&out, strings.NewReader(big), d, pi, StreamOptions{
			ParallelWorkers: c.workers,
			Chosen:          &chosen,
		})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if chosen != c.want {
			t.Errorf("%s: chosen engine %d, want %d", c.name, chosen, c.want)
		}
	}

	// Small input: the scanner, and the out-param reports it.
	var chosen Engine
	var out bytes.Buffer
	if _, err := Stream(&out, strings.NewReader(bibDoc), d, pi, StreamOptions{Chosen: &chosen}); err != nil {
		t.Fatal(err)
	}
	if chosen != EngineScanner {
		t.Errorf("small input chose engine %d, want scanner", chosen)
	}
}
