package prune

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"xmlproj/internal/dtd"
	"xmlproj/internal/gen"
	"xmlproj/internal/scan"
	"xmlproj/internal/xmark"
)

// The byte-level scanner (EngineScanner) is differentially tested
// against the encoding/xml path (EngineDecoder): on every input where
// both succeed they must produce byte-identical output and identical
// stats, and any input rejected by one must be rejected by the other.
//
// One documented divergence is excluded: the scanner matches end tags
// by literal prefix, while encoding/xml matches them by resolved
// namespace, so two prefixes bound to the same URI compare differently.
// Inputs containing "xmlns" are therefore only checked loosely.

func mustDTD(t *testing.T) *dtd.DTD {
	t.Helper()
	d, err := dtd.ParseString(bibDTD, "")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// parallelVariants are the EngineParallel configurations every
// differential corpus additionally runs under: single worker, several
// workers with an adversarial stage-1 chunk size that cuts mid-tag, and
// a tiny fragment target that forces many splice points on even the
// smallest documents.
var parallelVariants = []StreamOptions{
	{Engine: EngineParallel, ParallelWorkers: 1},
	{Engine: EngineParallel, ParallelWorkers: 4, ParallelChunkSize: 3},
	{Engine: EngineParallel, ParallelWorkers: 3, ParallelFragTarget: 64},
}

// pipelinedVariants are the EnginePipelined configurations every
// differential corpus additionally runs under: windows far smaller than
// the documents (so constructs straddle window boundaries), a minimal
// ring, a tiny fragment target forcing splices, and the defaults.
var pipelinedVariants = []StreamOptions{
	{Engine: EnginePipelined, ParallelWorkers: 1, PipelineWindowSize: 300},
	{Engine: EnginePipelined, ParallelWorkers: 4, PipelineWindowSize: 300, PipelineRingDepth: 2, ParallelFragTarget: 24},
	{Engine: EnginePipelined, ParallelWorkers: 3, ParallelFragTarget: 64},
}

// checkGather runs the span-gather path under opts and requires the
// same verdict as the streaming scanner, byte-identical rendered
// output (both materialised and flushed through WriteTo) and equal
// stats. This is the differential oracle for the gather emitter.
func checkGather(t *testing.T, label, src string, d *dtd.DTD, pi dtd.NameSet, opts StreamOptions, accepted bool, wantOut string, wantStats Stats) {
	t.Helper()
	g, gst, gerr := StreamGather([]byte(src), d, pi, opts)
	if accepted != (gerr == nil) {
		t.Fatalf("%s: gather disagrees on acceptance: %v\ninput: %q", label, gerr, src)
	}
	if gerr != nil {
		return
	}
	defer g.Close()
	if got := string(g.Bytes()); got != wantOut {
		t.Fatalf("%s: gather output differs\ngather:  %q\nscanner: %q\ninput: %q", label, got, wantOut, src)
	}
	var wb bytes.Buffer
	n, err := g.WriteTo(&wb)
	if err != nil || n != int64(len(wantOut)) || wb.String() != wantOut {
		t.Fatalf("%s: gather WriteTo mismatch (n=%d, err=%v)\n got: %q\nwant: %q", label, n, err, wb.String(), wantOut)
	}
	if gst != wantStats {
		t.Fatalf("%s: gather stats differ\ngather:  %+v\nscanner: %+v\ninput: %q", label, gst, wantStats, src)
	}
	if g.RawBytes() > g.Len() {
		t.Fatalf("%s: RawBytes %d exceeds Len %d", label, g.RawBytes(), g.Len())
	}
}

func runBoth(t *testing.T, src string, d *dtd.DTD, pi dtd.NameSet, validate bool) {
	t.Helper()
	var sb, db strings.Builder
	sst, serr := Stream(&sb, strings.NewReader(src), d, pi, StreamOptions{Validate: validate, Engine: EngineScanner})
	dst, derr := Stream(&db, strings.NewReader(src), d, pi, StreamOptions{Validate: validate, Engine: EngineDecoder})
	if (serr == nil) != (derr == nil) {
		t.Fatalf("engines disagree on acceptance (validate=%v)\nscanner: %v\ndecoder: %v\ninput: %q",
			validate, serr, derr, src)
	}
	checkGather(t, "serial", src, d, pi,
		StreamOptions{Validate: validate, Engine: EngineScanner}, serr == nil, sb.String(), sst)
	for _, popts := range parallelVariants {
		popts.Validate = validate
		var pb strings.Builder
		pst, perr := Stream(&pb, strings.NewReader(src), d, pi, popts)
		if (serr == nil) != (perr == nil) {
			t.Fatalf("parallel engine disagrees on acceptance (validate=%v, workers=%d)\nscanner:  %v\nparallel: %v\ninput: %q",
				validate, popts.ParallelWorkers, serr, perr, src)
		}
		checkGather(t, "parallel", src, d, pi, popts, serr == nil, sb.String(), sst)
		if serr != nil {
			continue
		}
		if pb.String() != sb.String() {
			t.Fatalf("parallel engine disagrees on output (validate=%v, workers=%d)\nscanner:  %q\nparallel: %q\ninput: %q",
				validate, popts.ParallelWorkers, sb.String(), pb.String(), src)
		}
		if pst != sst {
			t.Fatalf("parallel engine disagrees on stats (validate=%v, workers=%d)\nscanner:  %+v\nparallel: %+v\ninput: %q",
				validate, popts.ParallelWorkers, sst, pst, src)
		}
	}
	for _, popts := range pipelinedVariants {
		popts.Validate = validate
		var pb strings.Builder
		pst, perr := Stream(&pb, strings.NewReader(src), d, pi, popts)
		if (serr == nil) != (perr == nil) {
			t.Fatalf("pipelined engine disagrees on acceptance (validate=%v, workers=%d)\nscanner:   %v\npipelined: %v\ninput: %q",
				validate, popts.ParallelWorkers, serr, perr, src)
		}
		if serr != nil {
			continue
		}
		if pb.String() != sb.String() {
			t.Fatalf("pipelined engine disagrees on output (validate=%v, workers=%d)\nscanner:   %q\npipelined: %q\ninput: %q",
				validate, popts.ParallelWorkers, sb.String(), pb.String(), src)
		}
		if pst != sst {
			t.Fatalf("pipelined engine disagrees on stats (validate=%v, workers=%d)\nscanner:   %+v\npipelined: %+v\ninput: %q",
				validate, popts.ParallelWorkers, sst, pst, src)
		}
	}
	if serr != nil {
		return
	}
	if sb.String() != db.String() {
		t.Fatalf("engines disagree on output (validate=%v, π=%s)\nscanner: %q\ndecoder: %q\ninput:   %q",
			validate, pi, sb.String(), db.String(), src)
	}
	if sst != dst {
		t.Fatalf("engines disagree on stats (validate=%v, π=%s)\nscanner: %+v\ndecoder: %+v\ninput: %q",
			validate, pi, sst, dst, src)
	}
}

var fixedBibDocs []string

func init() {
	fixedBibDocs = []string{
		bibDoc,
		`<bib/>`,
		`<bib></bib>`,
		`<bib><book isbn="1"><title>a&amp;b &lt; &#99;</title><author>x</author></book></bib>`,
		"<bib>\n  <book isbn=\"1\">\n    <title>T</title><author>A</author>\n  </book>\n</bib>",
		`<?xml version="1.0"?><bib><!-- c --><book isbn="1"><title><![CDATA[<raw>&]]></title><author>A</author></book></bib>`,
		`<bib><book isbn="1"><title>t<?pi data?>t2</title><author>A</author></book></bib>`,
		`<bib><book isbn = '1' lang='it'><title   >T</title ><author>A</author></book></bib>`,
		`<bib><book isbn="&quot;1&quot;"><title>&#x48;i</title><author>A</author></book></bib>`,
		"<bib><book isbn=\"1\"><title>line\r\nbreak\rx</title><author>A</author></book></bib>",
		// Non-verbatim text, then comments splitting the run, then a
		// verbatim chunk: the verbatim bytes must not ride the raw-copy
		// window ahead of the pending decoded text (reordering bug).
		`<bib><book isbn="1"><title>a&lt;b<!--x-->mid<!--y-->c&gt;d</title><author>A</author></book></bib>`,
		`<bib><book isbn="1"><title>plain<!--x-->a&lt;b<!--y-->tail</title><author>A</author></book></bib>`,
		// Escape-heavy mixes: alternating raw and synthesized output makes
		// the gather emitter interleave input spans with escape-buffer
		// spans at every boundary.
		`<bib><book isbn="&#49;"><title>&lt;a&gt;&amp;b</title><author>A&#x41;B</author><year>&#50;</year></book></bib>`,
		`<bib><book isbn="1"><title>r</title><author>a&amp;<![CDATA[&]]>&lt;</author></book><book isbn="2"><title>raw2</title><author>plain</author></book></bib>`,
	}
}

func TestScannerMatchesDecoderFixed(t *testing.T) {
	d := mustDTD(t)
	docs := fixedBibDocs
	pis := []dtd.NameSet{
		dtd.NewNameSet("bib", "book", "title", "title#text", "author", "author#text", "year", "year#text", "book@isbn", "book@lang"),
		dtd.NewNameSet("bib", "book", "title", "title#text"),
		dtd.NewNameSet("bib", "book", "book@isbn"),
		dtd.NewNameSet("bib"),
	}
	for _, doc := range docs {
		for _, pi := range pis {
			for _, v := range []bool{false, true} {
				runBoth(t, doc, d, pi, v)
			}
		}
	}
}

func TestScannerMatchesDecoderRandom(t *testing.T) {
	d, err := dtd.ParseString(`
<!ELEMENT s (a*, b?)>
<!ELEMENT a (c, d*)>
<!ATTLIST a id CDATA #REQUIRED kind (x|y) "x">
<!ELEMENT b (#PCDATA | c)*>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (a?, c?)>
`, "s")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		doc := gen.New(d, int64(trial), gen.Options{MaxDepth: 6}).Document().XML()
		pi := randomProjector(d, rng, 1+rng.Intn(10))
		runBoth(t, doc, d, pi, false)
		runBoth(t, doc, d, pi, true)
	}
}

func TestScannerMatchesDecoderOnXMark(t *testing.T) {
	d := xmark.DTD()
	doc := xmark.NewGenerator(0.002, 23).Document().XML()
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		pi := randomProjector(d, rng, 5+rng.Intn(40))
		runBoth(t, doc, d, pi, false)
		runBoth(t, doc, d, pi, true)
	}
}

// TestScannerMalformed: the malformed corpus must be rejected by both
// engines.
func TestScannerMalformed(t *testing.T) {
	d := mustDTD(t)
	pi := dtd.NewNameSet("bib", "book", "title", "title#text", "author", "author#text")
	cases := []string{
		``,                              // no root
		`   `,                           // whitespace only
		`<bib>`,                         // unterminated element
		`<bib><book isbn="1"></bib>`,    // mismatched end tag
		`</bib>`,                        // unbalanced end tag
		`<bib>&bogus;</bib>`,            // unknown entity
		`<bib>&amp</bib>`,               // entity without semicolon
		`<bib>a & b</bib>`,              // bare ampersand
		`<bib>]]></bib>`,                // stray CDATA terminator
		`<bib><![CDATA[x</bib>`,         // truncated CDATA
		`<bib><![CDAT[x]]></bib>`,       // bad CDATA introducer
		`<bib><book isbn=1/></bib>`,     // unquoted attribute
		`<bib><book isbn></book></bib>`, // attribute without value
		`<bib><book isbn="1/></bib>`,    // unterminated attribute value
		`<bib><!-- comment --></bib`,    // truncated end tag
		`<bib><!- no --></bib>`,         // bad comment introducer
		`<bib><!-- -- --></bib>`,        // double dash inside comment
		`<bib><book/><9tag/></bib>`,     // invalid name start
		`<?xml version="2.0"?><bib/>`,   // unsupported version
		`<?xml version="1.0" encoding="utf-16"?><bib/>`, // undeclared charset
		"<bib>\x01</bib>",                          // char outside XML range
		"<bib>\xff\xfe</bib>",                      // invalid UTF-8 in content
		`<bib><book isbn="` + "\x02" + `"/></bib>`, // bad char in attr value
		`<notdeclared/>`,                           // undeclared element
	}
	for _, src := range cases {
		for _, eng := range []Engine{EngineScanner, EngineDecoder, EngineParallel, EnginePipelined} {
			var sb strings.Builder
			_, err := Stream(&sb, strings.NewReader(src), d, pi, StreamOptions{Engine: eng})
			if err == nil {
				t.Errorf("engine %d accepted malformed input %q", eng, src)
			}
		}
	}
}

// TestScannerMatchesDecoderInvalid: well-formed documents that violate
// the DTD. Both engines must agree on acceptance with and without
// validation (the skipped parts of a document are only shallowly
// validated, identically on both paths), and under the full-closure π —
// where raw-copy windows span the whole document even while validating —
// the scanner must still reject every one of them.
func TestScannerMatchesDecoderInvalid(t *testing.T) {
	d := mustDTD(t)
	docs := []string{
		// Bad child order: author before title.
		`<bib><book isbn="1"><author>A</author><title>T</title></book></bib>`,
		// Missing required child: no author.
		`<bib><book isbn="1"><title>T</title></book></bib>`,
		// Unexpected text content in element-only models.
		`<bib>stray<book isbn="1"><title>T</title><author>A</author></book></bib>`,
		`<bib><book isbn="1">x<title>T</title><author>A</author></book></bib>`,
		// Wrong root element.
		`<book isbn="1"><title>T</title><author>A</author></book>`,
		// Missing required attribute.
		`<bib><book><title>T</title><author>A</author></book></bib>`,
		// Enumeration violation.
		`<bib><book isbn="1" lang="de"><title>T</title><author>A</author></book></bib>`,
		// Undeclared attribute.
		`<bib><book isbn="1" x="1"><title>T</title><author>A</author></book></bib>`,
		// Repeated optional child: two years.
		`<bib><book isbn="1"><title>T</title><author>A</author><year>1</year><year>2</year></book></bib>`,
		// Empty element with a non-empty content model.
		`<bib><book isbn="1"/></bib>`,
	}
	fullPi := dtd.NewNameSet("bib", "book", "title", "title#text", "author", "author#text",
		"year", "year#text", "book@isbn", "book@lang")
	pis := []dtd.NameSet{
		fullPi,
		dtd.NewNameSet("bib", "book", "title", "title#text"),
		dtd.NewNameSet("bib"),
	}
	for _, doc := range docs {
		for _, pi := range pis {
			runBoth(t, doc, d, pi, false)
			runBoth(t, doc, d, pi, true)
		}
		var sb strings.Builder
		_, err := Stream(&sb, strings.NewReader(doc), d, fullPi,
			StreamOptions{Validate: true, Engine: EngineScanner})
		if err == nil {
			t.Errorf("validated scanner accepted invalid document %q", doc)
		}
	}
}

// TestStreamMaxTokenSize: a single oversized token fails with
// scan.ErrTokenTooLong under an explicit cap, and passes under the
// default one.
func TestStreamMaxTokenSize(t *testing.T) {
	d := mustDTD(t)
	pi := dtd.NewNameSet("bib", "book", "title", "title#text", "author", "author#text", "book@isbn")
	big := `<bib><book isbn="1"><title>` + strings.Repeat("x", 100<<10) +
		`</title><author>A</author></book></bib>`
	var sb strings.Builder
	_, err := Stream(&sb, strings.NewReader(big), d, pi,
		StreamOptions{Engine: EngineScanner, MaxTokenSize: 64 << 10})
	if !errors.Is(err, scan.ErrTokenTooLong) {
		t.Fatalf("capped prune: want ErrTokenTooLong, got %v", err)
	}
	sb.Reset()
	if _, err := Stream(&sb, strings.NewReader(big), d, pi, StreamOptions{Engine: EngineScanner}); err != nil {
		t.Fatalf("default cap rejected a 100KiB token: %v", err)
	}
	if !strings.Contains(sb.String(), strings.Repeat("x", 100<<10)) {
		t.Fatal("oversized token mangled in output")
	}
}

// TestParallelEngineAdversarialChunks sweeps worker counts against
// stage-1 chunk sizes down to a single byte — every cut lands mid-tag,
// mid-CDATA or mid-comment somewhere in the corpus — and requires the
// parallel engine to match the serial scanner byte for byte.
func TestParallelEngineAdversarialChunks(t *testing.T) {
	d := mustDTD(t)
	pi := dtd.NewNameSet("bib", "book", "title", "title#text", "author", "author#text", "book@isbn")
	for _, doc := range fixedBibDocs {
		var sb strings.Builder
		sst, serr := Stream(&sb, strings.NewReader(doc), d, pi, StreamOptions{Engine: EngineScanner})
		for _, workers := range []int{1, 2, 4, 8} {
			for _, chunk := range []int{1, 2, 5} {
				var pb strings.Builder
				pst, perr := Stream(&pb, strings.NewReader(doc), d, pi, StreamOptions{
					Engine:             EngineParallel,
					ParallelWorkers:    workers,
					ParallelChunkSize:  chunk,
					ParallelFragTarget: 1,
				})
				if (serr == nil) != (perr == nil) {
					t.Fatalf("w=%d chunk=%d: verdicts diverge: scanner=%v parallel=%v\ninput: %q",
						workers, chunk, serr, perr, doc)
				}
				if serr != nil {
					continue
				}
				if pb.String() != sb.String() {
					t.Fatalf("w=%d chunk=%d: output diverges\nscanner:  %q\nparallel: %q\ninput: %q",
						workers, chunk, sb.String(), pb.String(), doc)
				}
				if pst != sst {
					t.Fatalf("w=%d chunk=%d: stats diverge\nscanner:  %+v\nparallel: %+v",
						workers, chunk, sst, pst)
				}
			}
		}
	}
}

// TestParallelEngineMaxTokenSize: the oversized token is caught by the
// stage-1 index bound — before any fragment worker would buffer it —
// not by a fallback to the serial scanner.
func TestParallelEngineMaxTokenSize(t *testing.T) {
	d := mustDTD(t)
	pi := dtd.NewNameSet("bib", "book", "title", "title#text", "author", "author#text", "book@isbn")
	big := `<bib><book isbn="1"><title>` + strings.Repeat("x", 512<<10) +
		`</title><author>A</author></book></bib>`
	var det ParallelDetail
	var sb strings.Builder
	_, err := Stream(&sb, strings.NewReader(big), d, pi, StreamOptions{
		Engine: EngineParallel, MaxTokenSize: 256 << 10, Detail: &det,
	})
	if !errors.Is(err, scan.ErrTokenTooLong) {
		t.Fatalf("capped parallel prune: want ErrTokenTooLong, got %v", err)
	}
	if det.Fallback {
		t.Fatal("oversized token should fail in the index stage, not via serial fallback")
	}
	sb.Reset()
	if _, err := Stream(&sb, strings.NewReader(big), d, pi, StreamOptions{Engine: EngineParallel, Detail: &det}); err != nil {
		t.Fatalf("default cap rejected a 512KiB token: %v", err)
	}
	if !strings.Contains(sb.String(), strings.Repeat("x", 512<<10)) {
		t.Fatal("oversized token mangled in parallel output")
	}
}

// TestStreamAutoSelectsPipelined: on multi-CPU hosts EngineAuto
// upgrades reader input to the pipelined pruner — both known sizes past
// the threshold (reading overlaps pruning) and unknown sizes (nothing
// needs buffering) — and the upgraded runs match the serial scanner
// byte for byte. Small known sizes and single-CPU hosts stay serial.
func TestStreamAutoSelectsPipelined(t *testing.T) {
	d := mustDTD(t)
	pi := dtd.NewNameSet("bib", "book", "title", "title#text", "book@isbn")
	entry := `<book isbn="1"><title>T` + strings.Repeat("x", 200) +
		`</title><author>A</author></book>`
	var b strings.Builder
	b.WriteString(`<bib>`)
	for b.Len() < pipelineMinBytes {
		b.WriteString(entry)
	}
	b.WriteString(`</bib>`)
	big := b.String()

	want := EngineScanner
	if runtime.GOMAXPROCS(0) > 1 {
		want = EnginePipelined
	}
	var sb strings.Builder
	sst, err := Stream(&sb, strings.NewReader(big), d, pi, StreamOptions{Engine: EngineScanner})
	if err != nil {
		t.Fatal(err)
	}

	// Known size past the threshold.
	var chosen Engine
	var pdet PipelineDetail
	var pb strings.Builder
	pst, err := Stream(&pb, strings.NewReader(big), d, pi, StreamOptions{Chosen: &chosen, Pipeline: &pdet})
	if err != nil {
		t.Fatal(err)
	}
	if chosen != want {
		t.Fatalf("auto-selection on a sized reader chose engine %d, want %d", chosen, want)
	}
	if want == EnginePipelined && pdet.Windows == 0 {
		t.Fatal("pipelined run reported no windows")
	}
	if pb.String() != sb.String() {
		t.Fatal("auto-selected engine output diverges from the serial scanner")
	}
	if pst != sst {
		t.Fatalf("auto-selected engine stats diverge\nscanner: %+v\nauto:    %+v", sst, pst)
	}

	// Unknown size: the pipelined pruner is exactly the engine that does
	// not need to know it.
	chosen = EngineAuto
	var unsized strings.Builder
	ust, err := Stream(&unsized, bufio.NewReader(strings.NewReader(big)), d, pi, StreamOptions{Chosen: &chosen})
	if err != nil {
		t.Fatal(err)
	}
	if chosen != want {
		t.Fatalf("auto-selection on an unsized reader chose engine %d, want %d", chosen, want)
	}
	if unsized.String() != sb.String() {
		t.Fatal("unsized-reader output diverges")
	}
	if ust != sst {
		t.Fatalf("unsized-reader stats diverge\nscanner: %+v\nauto:    %+v", sst, ust)
	}

	// A small input of known size stays on the serial scanner.
	chosen = EngineAuto
	var small strings.Builder
	if _, err := Stream(&small, strings.NewReader(bibDoc), d, pi, StreamOptions{Chosen: &chosen}); err != nil {
		t.Fatal(err)
	}
	if chosen != EngineScanner {
		t.Fatalf("auto-selection on a small input chose engine %d, want scanner", chosen)
	}
	// In-memory input of any size prefers the batch parallel pruner —
	// it is already resident, so the pipeline's memory bound buys
	// nothing.
	chosen = EngineAuto
	var inmem strings.Builder
	if _, err := StreamBytes(&inmem, []byte(big), d, pi, StreamOptions{Chosen: &chosen}); err != nil {
		t.Fatal(err)
	}
	wantMem := EngineScanner
	if runtime.GOMAXPROCS(0) > 1 && len(big) >= parallelMinBytes {
		wantMem = EngineParallel
	}
	if chosen != wantMem {
		t.Fatalf("auto-selection on in-memory input chose engine %d, want %d", chosen, wantMem)
	}
	if inmem.String() != sb.String() {
		t.Fatal("in-memory output diverges")
	}
}

// shortStutterReader returns short reads and interleaves (0, nil)
// results, hiding the input's size; io.Reader permits both.
type shortStutterReader struct {
	r io.Reader
	n int
}

func (s *shortStutterReader) Read(p []byte) (int, error) {
	s.n++
	if s.n%3 == 0 {
		return 0, nil
	}
	if len(p) > 7 {
		p = p[:7]
	}
	return s.r.Read(p)
}

// oneByteAtATime yields a single byte per Read.
type oneByteAtATime struct{ r io.Reader }

func (o oneByteAtATime) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

// TestStreamTortureReaders: adversarial readers — one byte per read,
// short reads with (0, nil) stutters, no size information — must not
// change any engine's output, stats or verdict. The pipelined engine
// runs with windows small enough that every read boundary lands inside
// some construct.
func TestStreamTortureReaders(t *testing.T) {
	d := mustDTD(t)
	pi := dtd.NewNameSet("bib", "book", "title", "title#text", "author", "author#text", "book@isbn")
	for _, doc := range fixedBibDocs {
		for _, validate := range []bool{false, true} {
			var sb strings.Builder
			sst, serr := Stream(&sb, strings.NewReader(doc), d, pi, StreamOptions{Validate: validate, Engine: EngineScanner})
			engines := []StreamOptions{
				{Engine: EngineScanner},
				{Engine: EnginePipelined, ParallelWorkers: 2, PipelineWindowSize: 300, PipelineRingDepth: 2, ParallelFragTarget: 16},
			}
			readers := map[string]func() io.Reader{
				"onebyte": func() io.Reader { return oneByteAtATime{strings.NewReader(doc)} },
				"stutter": func() io.Reader { return &shortStutterReader{r: strings.NewReader(doc)} },
			}
			for _, opts := range engines {
				opts.Validate = validate
				for rname, mk := range readers {
					var tb strings.Builder
					tst, terr := Stream(&tb, mk(), d, pi, opts)
					if (serr == nil) != (terr == nil) {
						t.Fatalf("engine %d under %s reader disagrees on acceptance (validate=%v)\nplain:   %v\ntorture: %v\ninput: %q",
							opts.Engine, rname, validate, serr, terr, doc)
					}
					if serr != nil {
						continue
					}
					if tb.String() != sb.String() {
						t.Fatalf("engine %d under %s reader diverges (validate=%v)\nplain:   %q\ntorture: %q",
							opts.Engine, rname, validate, sb.String(), tb.String())
					}
					if tst != sst {
						t.Fatalf("engine %d under %s reader stats diverge (validate=%v)\nplain:   %+v\ntorture: %+v",
							opts.Engine, rname, validate, sst, tst)
					}
				}
			}
		}
	}
}

// TestStreamAutoSniffsUTF16 routes byte-order-marked input to the
// decoder path, which rejects it as an unhandled charset rather than
// tripping the byte scanner on binary noise.
func TestStreamAutoSniffsUTF16(t *testing.T) {
	d := mustDTD(t)
	pi := dtd.NewNameSet("bib")
	utf16 := []byte{0xFE, 0xFF}
	for _, r := range "<bib/>" {
		utf16 = append(utf16, 0x00, byte(r))
	}
	var sb strings.Builder
	_, err := Stream(&sb, bytes.NewReader(utf16), d, pi, StreamOptions{})
	if err == nil {
		t.Fatal("UTF-16 input unexpectedly accepted")
	}
}

func FuzzStreamDifferential(f *testing.F) {
	d, err := dtd.ParseString(bibDTD, "")
	if err != nil {
		f.Fatal(err)
	}
	pi := dtd.NewNameSet("bib", "book", "title", "title#text", "author", "author#text", "book@isbn")
	f.Add(bibDoc, uint16(0))
	f.Add(`<bib><book isbn="1"><title>T</title><author>A</author></book></bib>`, uint16(7))
	f.Add(`<?xml version="1.0"?><bib><!--c--><book isbn="&lt;"><title><![CDATA[x]]></title></book></bib>`, uint16(3))
	f.Add(`<bib>&#65;&amp;</bib>`, uint16(1))
	f.Add(`<bib><book isbn="1"></bib>`, uint16(2))
	f.Add(`<bib>&amp</bib>`, uint16(5))
	f.Add(`<bib>]]></bib>`, uint16(4))
	f.Add(`<bib><![CDATA[x</bib>`, uint16(6))
	f.Add(`<bib xmlns:p="u"><p:book isbn="1"/></bib>`, uint16(0))
	f.Add(`<bib><book isbn="1"><title>a&lt;b<!--x-->mid<!--y-->c&gt;d</title></book></bib>`, uint16(9))
	// Well-formed but DTD-invalid: the validated run must reject these on
	// both engines (and the unvalidated run must still match byte for byte).
	f.Add(`<bib><book isbn="1"><author>A</author><title>T</title></book></bib>`, uint16(0))
	f.Add(`<bib><book isbn="1"><title>T</title></book></bib>`, uint16(11))
	f.Add(`<bib>stray<book isbn="1"><title>T</title><author>A</author></book></bib>`, uint16(1))
	f.Add(`<bib><book><title>T</title><author>A</author></book></bib>`, uint16(0))
	f.Add(`<bib><book isbn="1" lang="de"><title>T</title><author>A</author></book></bib>`, uint16(8))
	f.Add(`<bib><book isbn="1"/></bib>`, uint16(2))
	// Chunk sizes chosen so a stage-1 cut straddles a tag, a CDATA
	// terminator, a comment close and an entity reference.
	f.Add(`<bib><book isbn="1"><title><![CDATA[a]]b]]></title><author>A</author></book></bib>`, uint16(13))
	f.Add(`<bib><!-- straddle --><book isbn="1"><title>t</title><author>&#x41;</author></book></bib>`, uint16(10))
	f.Add(`<bib><book isbn='s'><title>a</title><author>b</author></book><book isbn="t"><title>c</title><author>d</author></book></bib>`, uint16(17))
	// Escape-heavy seeds for the span-gather emitter: output alternates
	// between raw input spans and synthesized escape-buffer bytes.
	f.Add(`<bib><book isbn="&#49;"><title>&lt;t&gt;</title><author>A&amp;B</author></book></bib>`, uint16(5))
	f.Add(`<bib><book isbn="1"><title>raw</title><author><![CDATA[&]]>&#x42;</author></book></bib>`, uint16(12))
	f.Fuzz(func(t *testing.T, src string, chunk uint16) {
		// End tags are matched by resolved namespace in encoding/xml but
		// by literal prefix in the scanner; inputs that bind prefixes are
		// outside the differential contract.
		if strings.Contains(src, "xmlns") {
			t.Skip()
		}
		var sb, db strings.Builder
		sst, serr := Stream(&sb, strings.NewReader(src), d, pi, StreamOptions{Engine: EngineScanner})
		dst, derr := Stream(&db, strings.NewReader(src), d, pi, StreamOptions{Engine: EngineDecoder})
		if (serr == nil) != (derr == nil) {
			t.Fatalf("engines disagree on acceptance\nscanner: %v\ndecoder: %v", serr, derr)
		}
		// The shared-scan multi-pruner must agree per projector with
		// serial gathers on whatever the fuzzer found — verdicts, bytes
		// and stats, with and without validation.
		mpis := []dtd.NameSet{
			pi,
			dtd.NewNameSet("bib", "book", "title", "title#text"),
			dtd.NewNameSet("bib", "book", "book@isbn"),
		}
		for _, validate := range []bool{false, true} {
			sopts := StreamOptions{Validate: validate, Engine: EngineScanner}
			gathers, mstats, merrs := StreamMultiGather([]byte(src), d, mpis, MultiOptions{Validate: validate})
			for j, mpi := range mpis {
				g, gst, gerr := StreamGather([]byte(src), d, mpi, sopts)
				if (gerr == nil) != (merrs[j] == nil) {
					t.Fatalf("multi verdict diverges from serial (validate=%v, projector %d)\nserial: %v\nmulti:  %v",
						validate, j, gerr, merrs[j])
				}
				if gerr != nil {
					continue
				}
				if got, want := string(gathers[j].Bytes()), string(g.Bytes()); got != want {
					t.Fatalf("multi output diverges (validate=%v, projector %d)\nmulti:  %q\nserial: %q",
						validate, j, got, want)
				}
				if mstats[j] != gst {
					t.Fatalf("multi stats diverge (validate=%v, projector %d)\nmulti:  %+v\nserial: %+v",
						validate, j, mstats[j], gst)
				}
				g.Close()
			}
			for _, g := range gathers {
				if g != nil {
					g.Close()
				}
			}
		}
		// The fuzzed chunk doubles as the pipelined window size (clamped
		// up to the engine's floor internally), so window boundaries land
		// wherever the fuzzer steers them.
		fuzzWin := 256 + int(chunk)
		if serr != nil {
			var pb strings.Builder
			if _, perr := Stream(&pb, strings.NewReader(src), d, pi, StreamOptions{
				Engine: EngineParallel, ParallelWorkers: 4, ParallelChunkSize: int(chunk), ParallelFragTarget: 1,
			}); perr == nil {
				t.Fatalf("parallel engine accepted input the scanner rejects (chunk=%d): %q", chunk, src)
			}
			var plb strings.Builder
			if _, perr := Stream(&plb, strings.NewReader(src), d, pi, StreamOptions{
				Engine: EnginePipelined, ParallelWorkers: 4, PipelineWindowSize: fuzzWin, PipelineRingDepth: 2, ParallelFragTarget: 1,
			}); perr == nil {
				t.Fatalf("pipelined engine accepted input the scanner rejects (win=%d): %q", fuzzWin, src)
			}
			if g, _, gerr := StreamGather([]byte(src), d, pi, StreamOptions{Engine: EngineScanner}); gerr == nil {
				g.Close()
				t.Fatalf("gather path accepted input the scanner rejects: %q", src)
			}
			return
		}
		if sb.String() != db.String() {
			t.Fatalf("engines disagree on output\nscanner: %q\ndecoder: %q", sb.String(), db.String())
		}
		if sst != dst {
			t.Fatalf("engines disagree on stats\nscanner: %+v\ndecoder: %+v", sst, dst)
		}
		// Validation must also agree — raw-copy windows stay on under
		// validation, so this exercises the fused fast path too.
		var sv, dv strings.Builder
		svst, sverr := Stream(&sv, strings.NewReader(src), d, pi, StreamOptions{Validate: true, Engine: EngineScanner})
		_, dverr := Stream(&dv, strings.NewReader(src), d, pi, StreamOptions{Validate: true, Engine: EngineDecoder})
		if (sverr == nil) != (dverr == nil) {
			t.Fatalf("engines disagree on acceptance under validation\nscanner: %v\ndecoder: %v", sverr, dverr)
		}
		if sverr == nil && sv.String() != dv.String() {
			t.Fatalf("engines disagree on validated output\nscanner: %q\ndecoder: %q", sv.String(), dv.String())
		}
		// The parallel engine, under the fuzzed stage-1 chunk size and a
		// fragment target that forces splices, must match the scanner's
		// verdict, bytes and stats — validated and not. The span-gather
		// emitter must match on the same grid, serial and parallel.
		for _, validate := range []bool{false, true} {
			wantErr, wantOut, wantStats := serr, sb.String(), sst
			if validate {
				wantErr, wantOut, wantStats = sverr, sv.String(), svst
			}
			popts := StreamOptions{
				Validate:           validate,
				Engine:             EngineParallel,
				ParallelWorkers:    4,
				ParallelChunkSize:  int(chunk),
				ParallelFragTarget: 1,
			}
			var pb strings.Builder
			pst, perr := Stream(&pb, strings.NewReader(src), d, pi, popts)
			if (wantErr == nil) != (perr == nil) {
				t.Fatalf("parallel engine disagrees on acceptance (validate=%v, chunk=%d)\nscanner:  %v\nparallel: %v",
					validate, chunk, wantErr, perr)
			}
			checkGather(t, "serial", src, d, pi,
				StreamOptions{Validate: validate, Engine: EngineScanner}, wantErr == nil, wantOut, wantStats)
			checkGather(t, "parallel", src, d, pi, popts, wantErr == nil, wantOut, wantStats)
			var plb strings.Builder
			plst, plerr := Stream(&plb, strings.NewReader(src), d, pi, StreamOptions{
				Validate:           validate,
				Engine:             EnginePipelined,
				ParallelWorkers:    4,
				PipelineWindowSize: fuzzWin,
				PipelineRingDepth:  2,
				ParallelFragTarget: 1,
			})
			if (wantErr == nil) != (plerr == nil) {
				t.Fatalf("pipelined engine disagrees on acceptance (validate=%v, win=%d)\nscanner:   %v\npipelined: %v",
					validate, fuzzWin, wantErr, plerr)
			}
			if wantErr != nil {
				continue
			}
			if plb.String() != wantOut {
				t.Fatalf("pipelined engine disagrees on output (validate=%v, win=%d)\nscanner:   %q\npipelined: %q",
					validate, fuzzWin, wantOut, plb.String())
			}
			if plst != wantStats {
				t.Fatalf("pipelined engine disagrees on stats (validate=%v, win=%d)\nscanner:   %+v\npipelined: %+v",
					validate, fuzzWin, wantStats, plst)
			}
			if pb.String() != wantOut {
				t.Fatalf("parallel engine disagrees on output (validate=%v, chunk=%d)\nscanner:  %q\nparallel: %q",
					validate, chunk, wantOut, pb.String())
			}
			if !validate && pst != wantStats {
				t.Fatalf("parallel engine disagrees on stats (chunk=%d)\nscanner:  %+v\nparallel: %+v",
					chunk, wantStats, pst)
			}
		}
	})
}
