// Package dataguide implements the paper's §7 future-work extension:
// applying type-based projection "in the absence of DTDs, by using
// dataguides/path-summaries instead".
//
// FromDocument scans a document once and synthesises a local tree grammar
// — a dataguide — that the document is valid against by construction: for
// every element tag it records the set of child tags, whether text
// occurs, and the attributes seen, and declares the content model as the
// star-guarded union of the observations. The type projector inferred
// against this grammar is then sound for the document that produced it
// (and for any document with the same structural summary).
//
// Compared to a hand-written DTD a dataguide is weaker — every content
// model is (a | b | …)* — but the reachability structure, which is what
// drives projector inference, is exactly the document's own.
package dataguide

import (
	"fmt"
	"sort"

	"xmlproj/internal/dtd"
	"xmlproj/internal/tree"
)

// FromDocument builds the dataguide grammar of a document.
func FromDocument(doc *tree.Document) (*dtd.DTD, error) {
	if doc.Root == nil {
		return nil, fmt.Errorf("dataguide: empty document")
	}
	type info struct {
		children map[string]bool
		attrs    map[string]bool
		text     bool
	}
	infos := map[string]*info{}
	order := []string{}
	get := func(tag string) *info {
		if in, ok := infos[tag]; ok {
			return in
		}
		in := &info{children: map[string]bool{}, attrs: map[string]bool{}}
		infos[tag] = in
		order = append(order, tag)
		return in
	}

	doc.Walk(func(n *tree.Node) bool {
		if n.Kind != tree.Element {
			return true
		}
		in := get(n.Tag)
		for _, a := range n.Attrs {
			in.attrs[a.Name] = true
		}
		for _, c := range n.Children {
			if c.Kind == tree.Text {
				in.text = true
			} else {
				in.children[c.Tag] = true
			}
		}
		return true
	})

	// Render as DTD source and reuse the DTD machinery (automata, caches,
	// property checks) unchanged.
	var sb []byte
	for _, tag := range order {
		in := infos[tag]
		kids := make([]string, 0, len(in.children))
		for k := range in.children {
			kids = append(kids, k)
		}
		sort.Strings(kids)
		switch {
		case len(kids) == 0 && !in.text:
			sb = fmt.Appendf(sb, "<!ELEMENT %s EMPTY>\n", tag)
		case len(kids) == 0:
			sb = fmt.Appendf(sb, "<!ELEMENT %s (#PCDATA)>\n", tag)
		default:
			// The star-guarded union of everything observed. #PCDATA is
			// included only when text was seen, so the grammar does not
			// invent a text name the document never uses.
			sb = fmt.Appendf(sb, "<!ELEMENT %s (", tag)
			if in.text {
				sb = append(sb, "#PCDATA | "...)
			}
			sb = fmt.Appendf(sb, "%s", kids[0])
			for _, k := range kids[1:] {
				sb = fmt.Appendf(sb, " | %s", k)
			}
			sb = append(sb, ")*>\n"...)
		}
		sb = appendAttrs(sb, tag, in.attrs)
	}
	return dtd.ParseString(string(sb), doc.Root.Tag)
}

func appendAttrs(sb []byte, tag string, attrs map[string]bool) []byte {
	if len(attrs) == 0 {
		return sb
	}
	names := make([]string, 0, len(attrs))
	for a := range attrs {
		names = append(names, a)
	}
	sort.Strings(names)
	sb = fmt.Appendf(sb, "<!ATTLIST %s", tag)
	for _, a := range names {
		sb = fmt.Appendf(sb, " %s CDATA #IMPLIED", a)
	}
	return append(sb, ">\n"...)
}
