package dataguide

import (
	"testing"

	"xmlproj/internal/core"
	"xmlproj/internal/dtd"
	"xmlproj/internal/gen"
	"xmlproj/internal/prune"
	"xmlproj/internal/tree"
	"xmlproj/internal/validate"
	"xmlproj/internal/xmark"
	"xmlproj/internal/xpath"
	"xmlproj/internal/xpathl"
)

func TestFromDocumentBasics(t *testing.T) {
	doc, err := tree.ParseString(`<r a="1"><x>text</x><y><x/></y><y/></r>`)
	if err != nil {
		t.Fatal(err)
	}
	d, err := FromDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root != "r" {
		t.Fatalf("root = %s", d.Root)
	}
	// x occurs both with text (under r) and empty (under y); the dataguide
	// merges by tag, so x allows text.
	if !d.Children("r").Has("x") || !d.Children("y").Has("x") {
		t.Fatalf("child structure wrong: %s", d)
	}
	if def := d.Def("r"); def.AttDef("a") == nil {
		t.Fatal("attribute a lost")
	}
	// The producing document is valid against its dataguide.
	if _, err := validate.Document(d, doc); err != nil {
		t.Fatalf("document invalid against its own dataguide: %v", err)
	}
}

// The defining property: every document is valid against its own
// dataguide — across random documents from random grammars.
func TestDocumentValidAgainstOwnDataguide(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		src := gen.RandomDTD(seed, gen.DTDOptions{Elements: 8, AllowRecursion: seed%2 == 0})
		doc := gen.New(src, seed, gen.Options{MaxDepth: 6}).Document()
		d, err := FromDocument(doc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := validate.Document(d, doc); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// Schemaless soundness: prune a document with a projector inferred from
// its dataguide; queries are preserved.
func TestSchemalessSoundness(t *testing.T) {
	queries := []string{
		"/site/regions/africa/item/name",
		"//keyword",
		"//person[homepage]/name",
		"//item[payment]/name/text()",
		"//bidder/increase",
	}
	doc := xmark.NewGenerator(0.002, 23).Document()
	d, err := FromDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range queries {
		q := xpath.MustParse(src)
		paths, err := xpathl.FromQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := core.InferMaterialized(d, paths)
		if err != nil {
			t.Fatal(err)
		}
		pruned := prune.Tree(d, doc, pr.Names)
		orig, err := xpath.NewEvaluator(doc).Select(q)
		if err != nil {
			t.Fatal(err)
		}
		if pruned.Root == nil {
			if len(orig) > 0 {
				t.Fatalf("%s: dataguide projector dropped everything", src)
			}
			continue
		}
		after, err := xpath.NewEvaluator(pruned).Select(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(orig) != len(after) {
			t.Fatalf("%s: %d results before, %d after (π = %s)", src, len(orig), len(after), pr)
		}
		for i := range orig {
			if orig[i].N.ID != after[i].N.ID || orig[i].StringValue() != after[i].StringValue() {
				t.Fatalf("%s: result %d differs", src, i)
			}
		}
	}
}

// The dataguide projector should still prune aggressively: a selective
// query keeps a small fraction of the document.
func TestSchemalessSelectivity(t *testing.T) {
	doc := xmark.NewGenerator(0.004, 29).Document()
	d, err := FromDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	paths, _ := xpathl.FromQuery(xpath.MustParse("/site/people/person/name"))
	pr, err := core.InferMaterialized(d, paths)
	if err != nil {
		t.Fatal(err)
	}
	pruned := prune.Tree(d, doc, pr.Names)
	ratio := float64(pruned.SerializedSize()) / float64(doc.SerializedSize())
	if ratio > 0.2 {
		t.Fatalf("dataguide pruning kept %.0f%%, want selective", 100*ratio)
	}
}

// A dataguide is by construction *-guarded (every content model is a
// starred union), so the completeness machinery applies when the document
// is non-recursive.
func TestDataguideProperties(t *testing.T) {
	doc, _ := tree.ParseString(`<r><a><b/></a><a/></r>`)
	d, err := FromDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsStarGuarded() {
		t.Fatal("dataguide must be *-guarded")
	}
	if d.IsRecursive() {
		t.Fatal("non-recursive document gave a recursive dataguide")
	}
	// Recursive structure is reflected.
	doc2, _ := tree.ParseString(`<r><r/></r>`)
	d2, _ := FromDocument(doc2)
	if !d2.IsRecursive() {
		t.Fatal("recursive document should give a recursive dataguide")
	}
}

func TestFromDocumentEmpty(t *testing.T) {
	if _, err := FromDocument(&tree.Document{}); err == nil {
		t.Fatal("empty document accepted")
	}
}

func TestDataguideNamesAreTags(t *testing.T) {
	doc, _ := tree.ParseString(`<r><text>x</text></r>`)
	d, err := FromDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	// The awkward case: an element named "text" must still work.
	if _, ok := d.ElementName("text"); !ok {
		t.Fatal("element named text lost")
	}
	if !d.Children("text").Has(dtd.TextName("text")) {
		t.Fatalf("text content of <text> lost: %s", d)
	}
}
