//go:build unix

package rescache

import (
	"os"
	"syscall"
)

// FileIdentity extracts the (dev, inode, size, mtime) identity of a
// regular file for the digest fast path. ok=false for non-regular
// files (their content can change without the identity moving) and
// when the platform stat shape is unavailable.
func FileIdentity(fi os.FileInfo) (Identity, bool) {
	if fi == nil || !fi.Mode().IsRegular() {
		return Identity{}, false
	}
	st, ok := fi.Sys().(*syscall.Stat_t)
	if !ok {
		return Identity{}, false
	}
	return Identity{
		Dev:        uint64(st.Dev),
		Ino:        uint64(st.Ino),
		Size:       fi.Size(),
		MTimeNanos: fi.ModTime().UnixNano(),
	}, true
}
