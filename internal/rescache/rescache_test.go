package rescache

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xmlproj/internal/prune"
)

func TestDigestBytes(t *testing.T) {
	a := DigestBytes([]byte("<site><a/></site>"))
	b := DigestBytes([]byte("<site><b/></site>"))
	if a == b {
		t.Fatalf("distinct content produced equal digests: %s", a)
	}
	if a != DigestBytes([]byte("<site><a/></site>")) {
		t.Fatalf("digest is not deterministic within the process")
	}
	if a.IsZero() {
		t.Fatalf("digest of real content is zero")
	}
	if got := len(a.String()); got != 32 {
		t.Fatalf("digest renders to %d hex chars, want 32", got)
	}

	parsed, err := ParseDigest(a.String())
	if err != nil {
		t.Fatalf("ParseDigest(%q): %v", a.String(), err)
	}
	if parsed != a {
		t.Fatalf("ParseDigest round trip: got %s want %s", parsed, a)
	}
	if _, err := ParseDigest("abc"); err == nil {
		t.Fatalf("ParseDigest accepted a short digest")
	}
	if _, err := ParseDigest("zz" + a.String()[2:]); err == nil {
		t.Fatalf("ParseDigest accepted non-hex input")
	}
}

func TestDigestFoldsLength(t *testing.T) {
	// The length occupies the digest's second half: two documents of
	// different sizes can never share a digest, whatever the hash does.
	a := DigestBytes(make([]byte, 100))
	b := DigestBytes(make([]byte, 101))
	if a == b {
		t.Fatalf("different-length inputs share a digest: %s", a)
	}
	if bytes.Equal(a[8:16], b[8:16]) {
		t.Fatalf("length not folded into digest: %s vs %s", a, b)
	}
}

func TestFileIdentity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.xml")
	if err := os.WriteFile(path, []byte("<site/>"), 0o644); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	id, ok := FileIdentity(fi)
	if !ok {
		t.Skip("FileIdentity unsupported on this platform")
	}
	if id.Size != int64(len("<site/>")) {
		t.Fatalf("identity size = %d, want %d", id.Size, len("<site/>"))
	}
	if id.Ino == 0 && id.Dev == 0 {
		t.Fatalf("identity has no device/inode: %+v", id)
	}
	di, err := os.Stat(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := FileIdentity(di); ok {
		t.Fatalf("FileIdentity accepted a directory")
	}
}

func TestDigestForIdentityMemo(t *testing.T) {
	c := New(1 << 20)
	data := []byte("<site><person/></site>")
	id := Identity{Dev: 7, Ino: 42, Size: int64(len(data)), MTimeNanos: 12345}

	d1 := c.DigestFor(data, &id)
	d2 := c.DigestFor(data, &id)
	if d1 != d2 {
		t.Fatalf("memoized digest differs: %s vs %s", d1, d2)
	}
	m := c.Snapshot()
	if m.IdentityMisses != 1 || m.IdentityHits != 1 {
		t.Fatalf("identity memo counters = %d misses / %d hits, want 1/1", m.IdentityMisses, m.IdentityHits)
	}

	// A stale identity (size disagrees with the bytes in hand) must not
	// be trusted or memoized.
	stale := Identity{Dev: 7, Ino: 42, Size: int64(len(data)) + 1, MTimeNanos: 12345}
	if got := c.DigestFor(data, &stale); got != DigestBytes(data) {
		t.Fatalf("stale identity changed the digest")
	}
	if m := c.Snapshot(); m.IdentityMisses != 1 || m.IdentityHits != 1 {
		t.Fatalf("stale identity touched the memo: %+v", m)
	}

	// Nil identity digests directly.
	if got := c.DigestFor(data, nil); got != d1 {
		t.Fatalf("nil-identity digest differs from content digest")
	}
}

func TestGetOrFillSingleFlight(t *testing.T) {
	// Mirrors TestInferCachedSingleFlight: N concurrent cold callers for
	// one key must run exactly one fill; the rest coalesce onto it.
	c := New(1 << 20)
	key := Key{Doc: DigestBytes([]byte("doc")), Variant: "fp"}

	var calls atomic.Int64
	fill := func() (*Entry, error) {
		calls.Add(1)
		time.Sleep(20 * time.Millisecond)
		return NewEntry([]byte("<pruned/>"), prune.Stats{BytesOut: 9}), nil
	}

	const n = 8
	start := make(chan struct{})
	entries := make([]*Entry, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			e, _, err := c.GetOrFill(key, fill)
			if err != nil {
				t.Errorf("GetOrFill: %v", err)
			}
			entries[i] = e
		}(i)
	}
	close(start)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fill ran %d times, want 1", got)
	}
	for i := 1; i < n; i++ {
		if entries[i] != entries[0] {
			t.Fatalf("caller %d got a different entry instance", i)
		}
	}
	m := c.Snapshot()
	if m.Misses != 1 || m.Coalesced != n-1 {
		t.Fatalf("misses=%d coalesced=%d, want 1 and %d", m.Misses, m.Coalesced, n-1)
	}
	if e, hit, _ := c.GetOrFill(key, fill); !hit || !bytes.Equal(e.Bytes(), []byte("<pruned/>")) {
		t.Fatalf("warm lookup missed (hit=%v)", hit)
	}
	if m := c.Snapshot(); m.Hits != 1 {
		t.Fatalf("hits=%d after warm lookup, want 1", m.Hits)
	}
}

func TestGetOrFillErrorNotCached(t *testing.T) {
	c := New(1 << 20)
	key := Key{Doc: DigestBytes([]byte("doc")), Variant: "fp"}
	boom := errors.New("boom")

	var calls int
	if _, _, err := c.GetOrFill(key, func() (*Entry, error) { calls++; return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure must not be cached: the next request retries.
	e, hit, err := c.GetOrFill(key, func() (*Entry, error) { calls++; return NewEntry([]byte("ok"), prune.Stats{}), nil })
	if err != nil || hit || e == nil {
		t.Fatalf("retry after error: e=%v hit=%v err=%v", e, hit, err)
	}
	if calls != 2 {
		t.Fatalf("fill ran %d times, want 2", calls)
	}
}

func TestGetOrFillDeclined(t *testing.T) {
	// fill may return (nil, nil) to keep its result out of the cache
	// (output too large to retain); the decline is counted as a bypass
	// and nothing is stored.
	c := New(1 << 20)
	key := Key{Doc: DigestBytes([]byte("doc")), Variant: "fp"}
	e, hit, err := c.GetOrFill(key, func() (*Entry, error) { return nil, nil })
	if e != nil || hit || err != nil {
		t.Fatalf("declined fill: e=%v hit=%v err=%v", e, hit, err)
	}
	m := c.Snapshot()
	if m.Bypasses != 1 || m.Entries != 0 {
		t.Fatalf("bypasses=%d entries=%d, want 1 and 0", m.Bypasses, m.Entries)
	}
}

func TestCacheable(t *testing.T) {
	c := New(16 * 1024) // perShard = 1 KiB
	if !c.Cacheable(100) {
		t.Fatalf("small output not cacheable")
	}
	if c.Cacheable(2048) {
		t.Fatalf("output above the per-shard budget reported cacheable")
	}
	var nilc *Cache
	if nilc.Cacheable(1) || nilc.Enabled() {
		t.Fatalf("nil cache claims to cache")
	}
}

func TestNilCache(t *testing.T) {
	var c *Cache
	if c := New(0); c != nil {
		t.Fatalf("New(0) should disable the cache")
	}
	if _, ok := c.Get(Key{}); ok {
		t.Fatalf("nil cache hit")
	}
	e, hit, err := c.GetOrFill(Key{}, func() (*Entry, error) { return NewEntry([]byte("x"), prune.Stats{}), nil })
	if err != nil || hit || e == nil || !bytes.Equal(e.Bytes(), []byte("x")) {
		t.Fatalf("nil cache GetOrFill: e=%v hit=%v err=%v", e, hit, err)
	}
	if got := c.Snapshot(); got != (Metrics{}) {
		t.Fatalf("nil cache metrics = %+v", got)
	}
	if c.DigestFor([]byte("d"), nil) != DigestBytes([]byte("d")) {
		t.Fatalf("nil cache DigestFor mismatch")
	}
}

func TestEvictionKeepsEveryShardUnderBudget(t *testing.T) {
	// Budget sized so each shard retains roughly one small entry; a
	// flood of inserts must evict rather than grow.
	const budget = 16 * 512
	c := New(budget)
	for i := 0; i < 128; i++ {
		key := Key{Doc: DigestBytes([]byte(fmt.Sprintf("doc-%d", i))), Variant: "fp"}
		out := bytes.Repeat([]byte("x"), 200)
		if _, _, err := c.GetOrFill(key, func() (*Entry, error) { return NewEntry(out, prune.Stats{}), nil }); err != nil {
			t.Fatal(err)
		}
		if got := c.Bytes(); got > budget {
			t.Fatalf("after %d inserts cache holds %d bytes > budget %d", i+1, got, budget)
		}
	}
	m := c.Snapshot()
	if m.Evictions == 0 {
		t.Fatalf("no evictions after overfilling: %+v", m)
	}
	if m.Entries == 0 {
		t.Fatalf("cache emptied itself: %+v", m)
	}
	checkShardInvariants(t, c)
}

func TestLRUEvictsColdestAndTouchRefreshes(t *testing.T) {
	// White-box: find three keys that share a shard (the shard seed is
	// process-stable), size the shard to hold two, and check that Get
	// refreshes recency: a, b inserted; a touched; c inserted → b, the
	// coldest, is the one evicted.
	cost := entryCost(Key{Variant: "fp"}, NewEntry(make([]byte, 100), prune.Stats{}))
	c := New(shardCount * cost * 2)

	keys := make([]Key, 0, 3)
	target := -1
	for i := 0; len(keys) < 3; i++ {
		k := Key{Doc: DigestBytes([]byte(fmt.Sprintf("probe-%d", i))), Variant: "fp"}
		sh := -1
		for j := range c.shards {
			if c.shardOf(k) == &c.shards[j] {
				sh = j
				break
			}
		}
		if target == -1 {
			target = sh
		}
		if sh == target {
			keys = append(keys, k)
		}
		if i > 10000 {
			t.Fatalf("could not find colliding keys")
		}
	}
	a, b, cc := keys[0], keys[1], keys[2]
	fillWith := func(tag string) func() (*Entry, error) {
		return func() (*Entry, error) {
			out := make([]byte, 100)
			copy(out, tag)
			return NewEntry(out, prune.Stats{}), nil
		}
	}
	c.GetOrFill(a, fillWith("a"))
	c.GetOrFill(b, fillWith("b"))
	if _, ok := c.Get(a); !ok { // touch a: b becomes coldest
		t.Fatalf("a missing before eviction")
	}
	c.GetOrFill(cc, fillWith("c"))

	if _, ok := c.Get(b); ok {
		t.Fatalf("coldest entry b survived eviction")
	}
	if _, ok := c.Get(a); !ok {
		t.Fatalf("touched entry a was evicted")
	}
	if _, ok := c.Get(cc); !ok {
		t.Fatalf("new entry c was evicted")
	}
	checkShardInvariants(t, c)
}

// TestStressBudgetInvariant hammers the cache from many goroutines —
// hits, misses, coalesced fills, declines and evictions across shards —
// while sampling the global footprint, which must never exceed the
// budget. Run under -race in CI.
func TestStressBudgetInvariant(t *testing.T) {
	const budget = 16 * 4096
	c := New(budget)

	stop := make(chan struct{})
	var samplerErr atomic.Value
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if got := c.Bytes(); got > budget {
				samplerErr.Store(fmt.Errorf("footprint %d exceeds budget %d", got, budget))
				return
			}
		}
	}()

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*2654435761 + 12345
			next := func(n uint64) uint64 {
				rng = rng*6364136223846793005 + 1442695040888963407
				return (rng >> 33) % n
			}
			for i := 0; i < 400; i++ {
				key := Key{Doc: DigestBytes([]byte(fmt.Sprintf("doc-%d", next(64)))), Variant: "fp"}
				size := int(next(5000)) // some entries exceed the per-shard budget
				switch next(3) {
				case 0:
					c.Get(key)
				default:
					c.GetOrFill(key, func() (*Entry, error) {
						e := NewEntry(make([]byte, size), prune.Stats{})
						if !c.Cacheable(e.Len()) {
							return nil, nil
						}
						return e, nil
					})
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	sampler.Wait()
	if err := samplerErr.Load(); err != nil {
		t.Fatal(err)
	}
	if got := c.Bytes(); got > budget {
		t.Fatalf("final footprint %d exceeds budget %d", got, budget)
	}
	checkShardInvariants(t, c)
	m := c.Snapshot()
	if m.Misses == 0 || m.Hits == 0 {
		t.Fatalf("stress exercised nothing: %+v", m)
	}
}

// checkShardInvariants verifies each shard's accounting: the tracked
// byte total equals the sum of its entries' costs, and never exceeds
// the per-shard budget.
func checkShardInvariants(t *testing.T, c *Cache) {
	t.Helper()
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		var sum int64
		for el := s.lru.Front(); el != nil; el = el.Next() {
			se := el.Value.(*shardEntry)
			sum += se.cost
			if se.cost != entryCost(se.key, se.e) {
				t.Errorf("shard %d: stale cost %d for key %v", i, se.cost, se.key)
			}
		}
		if sum != s.bytes {
			t.Errorf("shard %d: accounted %d bytes, entries sum to %d", i, s.bytes, sum)
		}
		if s.bytes > c.perShard {
			t.Errorf("shard %d: %d bytes exceeds per-shard budget %d", i, s.bytes, c.perShard)
		}
		if len(s.idx) != s.lru.Len() {
			t.Errorf("shard %d: index has %d keys, lru %d", i, len(s.idx), s.lru.Len())
		}
		s.mu.Unlock()
	}
}
