//go:build !unix

package rescache

import "os"

// FileIdentity is unavailable on platforms without a unix stat shape:
// callers fall back to rehashing content, which is always correct.
func FileIdentity(fi os.FileInfo) (Identity, bool) {
	return Identity{}, false
}
