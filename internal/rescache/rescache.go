// Package rescache is the content-addressed cache of pruned outputs:
// the piece that makes repeat (document, projector) pairs — the
// workload the paper's amortization argument assumes — cost a digest
// and a map probe instead of a full scan.
//
// Keys are (document digest, variant), where the variant folds in the
// projection fingerprint, the validate mode and any engine-visible
// option that changes the answer. The pruned output itself is
// engine-independent (every engine is differential-tested to produce
// byte-identical bytes), so the engine choice is deliberately NOT part
// of the key: a result filled by the scanner serves a request that
// would have run the parallel pruner.
//
// Entries store materialized output bytes — an owned copy made at
// insert time — so the pooled span-gather buffers the pruner works in
// can be released immediately; nothing in the cache aliases pooled
// state. Eviction is size-aware LRU per shard under a global byte
// budget, and concurrent cold requests for one key are single-flight
// deduplicated: N callers, one prune.
package rescache

import (
	"container/list"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/maphash"
	"io"
	"sync"
	"sync/atomic"

	"xmlproj/internal/prune"
)

// Digest identifies document content: a keyed 64-bit hash over the
// bytes plus the exact length. The hash seed is drawn per process, so
// digests (and the ETags built from them) are stable within one server
// process but not across restarts — which HTTP conditional requests
// tolerate by design (a miss just re-prunes). Documents of different
// lengths can never collide; equal-length collisions need the keyed
// 64-bit hash to collide, which the hidden seed makes infeasible to
// construct and negligible (~n²/2⁶⁴) to hit by accident at cache-sized
// populations.
type Digest [16]byte

// docSeed keys DigestBytes; shardSeed spreads keys across shards.
var (
	docSeed   = maphash.MakeSeed()
	shardSeed = maphash.MakeSeed()
)

// DigestBytes digests document content. One pass at memory bandwidth —
// an order of magnitude cheaper than the scan it stands in for, which
// is what makes "serve repeat prunes in O(digest) time" a win.
func DigestBytes(b []byte) Digest {
	var d Digest
	binary.LittleEndian.PutUint64(d[0:8], maphash.Bytes(docSeed, b))
	binary.LittleEndian.PutUint64(d[8:16], uint64(len(b)))
	return d
}

// String renders the digest as 32 hex characters.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// IsZero reports whether the digest is unset.
func (d Digest) IsZero() bool { return d == Digest{} }

// ParseDigest parses a String rendering back into a Digest.
func ParseDigest(s string) (Digest, error) {
	var d Digest
	if len(s) != 2*len(d) {
		return d, fmt.Errorf("rescache: digest must be %d hex characters, got %d", 2*len(d), len(s))
	}
	if _, err := hex.Decode(d[:], []byte(s)); err != nil {
		return d, fmt.Errorf("rescache: bad digest: %w", err)
	}
	return d, nil
}

// Key identifies one cached result: document content by digest, and
// everything else that determines the output bytes — projection
// fingerprint, validate mode — folded into the variant string by the
// caller.
type Key struct {
	Doc     Digest
	Variant string
}

// Entry is one cached pruned output: an owned, immutable copy of the
// rendered bytes plus the prune's stats. Entries are shared by every
// reader that hits them; nothing may mutate the byte slice.
type Entry struct {
	out   []byte
	Stats prune.Stats
}

// NewEntry wraps an output copy the cache takes ownership of. The
// caller must not retain or modify out afterwards.
func NewEntry(out []byte, stats prune.Stats) *Entry {
	return &Entry{out: out, Stats: stats}
}

// Bytes returns the rendered output. The slice is shared and must be
// treated as read-only.
func (e *Entry) Bytes() []byte { return e.out }

// Len is the rendered output size in bytes.
func (e *Entry) Len() int64 { return int64(len(e.out)) }

// WriteTo writes the rendered output to w (io.WriterTo).
func (e *Entry) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(e.out)
	return int64(n), err
}

// AppendTo appends the rendered output to dst.
func (e *Entry) AppendTo(dst []byte) []byte { return append(dst, e.out...) }

// entryOverhead approximates the per-entry bookkeeping cost (list
// element, map bucket share, Entry and key headers) charged against
// the byte budget alongside the output bytes.
const entryOverhead = 128

func entryCost(key Key, e *Entry) int64 {
	return int64(len(e.out)) + int64(len(key.Variant)) + entryOverhead
}

// shardCount is the fixed shard fan-out (power of two). Sixteen
// mutexes keep hit-path contention negligible at server concurrency
// without fragmenting the byte budget into uselessly small slices.
const shardCount = 16

// identityCap bounds the file-identity memo table.
const identityCap = 4096

type shard struct {
	mu    sync.Mutex
	lru   *list.List // *shardEntry, most recently used first
	idx   map[Key]*list.Element
	bytes int64
}

type shardEntry struct {
	key  Key
	e    *Entry
	cost int64
}

// call is one in-flight fill; concurrent requests for the same key
// block on done and share entry/err. A nil entry with a nil err means
// the leader's output was too large to cache — waiters re-fill
// privately.
type call struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// Identity is a file's identity for the digest fast path: device,
// inode, size and mtime. An unchanged identity memoizes the content
// digest, so repeat prunes of the same file never rehash it. The usual
// caveat applies: a file rewritten in place within mtime granularity
// at the same size is indistinguishable, exactly as with make(1).
type Identity struct {
	Dev, Ino         uint64
	Size, MTimeNanos int64
}

// Identifier lets a prune source volunteer its file identity; batch
// sources backed by regular files implement it so the engine can take
// the digest fast path.
type Identifier interface {
	ResultCacheIdentity() (Identity, bool)
}

type idEntry struct {
	id     Identity
	digest Digest
}

// Cache is a sharded, byte-budgeted, content-addressed cache of pruned
// outputs. Safe for concurrent use. A nil *Cache is valid and disabled:
// Get always misses and GetOrFill degenerates to calling fill.
type Cache struct {
	shards   [shardCount]shard
	perShard int64 // byte budget per shard; global budget = shardCount × perShard ≤ budget

	flightMu sync.Mutex
	flight   map[Key]*call

	idMu  sync.Mutex
	idLRU *list.List // *idEntry
	idIdx map[Identity]*list.Element

	budget                       int64
	hits, misses, coalesced      atomic.Int64
	evictions, bypasses          atomic.Int64
	identityHits, identityMisses atomic.Int64
}

// New returns a cache with the given global byte budget, or nil (a
// valid, disabled cache) when the budget is not positive.
func New(budget int64) *Cache {
	if budget <= 0 {
		return nil
	}
	c := &Cache{
		budget:   budget,
		perShard: budget / shardCount,
		flight:   make(map[Key]*call),
		idLRU:    list.New(),
		idIdx:    make(map[Identity]*list.Element),
	}
	for i := range c.shards {
		c.shards[i].lru = list.New()
		c.shards[i].idx = make(map[Key]*list.Element)
	}
	return c
}

// Enabled reports whether the cache exists.
func (c *Cache) Enabled() bool { return c != nil }

// Budget returns the global byte budget (0 when disabled).
func (c *Cache) Budget() int64 {
	if c == nil {
		return 0
	}
	return c.budget
}

// Cacheable reports whether an output of n bytes can be retained at
// all: entries above the per-shard budget are served but never stored
// — copying them out would only thrash the LRU.
func (c *Cache) Cacheable(n int64) bool {
	return c != nil && n+entryOverhead <= c.perShard
}

func (c *Cache) shardOf(key Key) *shard {
	var h maphash.Hash
	h.SetSeed(shardSeed)
	h.Write(key.Doc[:])
	h.WriteString(key.Variant)
	return &c.shards[h.Sum64()&(shardCount-1)]
}

// lookup probes one shard, refreshing LRU position on success.
func (c *Cache) lookup(key Key) (*Entry, bool) {
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.idx[key]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*shardEntry).e, true
}

// Get probes the cache without filling: a peek for HEAD-style lookups.
// It refreshes the entry's LRU position but moves no hit/miss counters
// — a probe that finds nothing did not cost a prune.
func (c *Cache) Get(key Key) (*Entry, bool) {
	if c == nil {
		return nil, false
	}
	return c.lookup(key)
}

// GetOrFill returns the entry for key, running fill on a miss with
// single-flight deduplication: one caller fills, concurrent callers
// for the same key block and share the entry (hit=true for them) or
// the error (shared but never cached, so a later request retries).
// fill may return (nil, nil) to decline caching — its caller keeps
// whatever it produced privately, and blocked waiters get (nil, false,
// nil) and should fill for themselves.
func (c *Cache) GetOrFill(key Key, fill func() (*Entry, error)) (*Entry, bool, error) {
	if c == nil {
		e, err := fill()
		return e, false, err
	}
	if e, ok := c.lookup(key); ok {
		c.hits.Add(1)
		return e, true, nil
	}
	c.flightMu.Lock()
	if f, ok := c.flight[key]; ok {
		c.flightMu.Unlock()
		<-f.done
		c.coalesced.Add(1)
		if f.err != nil {
			return nil, false, f.err
		}
		if f.entry != nil {
			return f.entry, true, nil
		}
		return nil, false, nil
	}
	f := &call{done: make(chan struct{})}
	c.flight[key] = f
	c.flightMu.Unlock()

	c.misses.Add(1)
	f.entry, f.err = fill()
	c.flightMu.Lock()
	delete(c.flight, key)
	c.flightMu.Unlock()
	switch {
	case f.err != nil:
		// Errors are shared with waiters but never cached.
	case f.entry != nil:
		c.insert(key, f.entry)
	default:
		c.bypasses.Add(1)
	}
	close(f.done)
	return f.entry, false, f.err
}

// insert adds key→e to its shard, evicting from the cold end until the
// shard is back under budget. The per-shard budget is an invariant,
// never exceeded after insert returns — which bounds the global
// footprint by shardCount × perShard ≤ Budget.
func (c *Cache) insert(key Key, e *Entry) {
	cost := entryCost(key, e)
	if cost > c.perShard {
		c.bypasses.Add(1)
		return
	}
	s := c.shardOf(key)
	s.mu.Lock()
	if el, ok := s.idx[key]; ok {
		old := el.Value.(*shardEntry)
		s.bytes += cost - old.cost
		old.e, old.cost = e, cost
		s.lru.MoveToFront(el)
	} else {
		s.idx[key] = s.lru.PushFront(&shardEntry{key: key, e: e, cost: cost})
		s.bytes += cost
	}
	for s.bytes > c.perShard {
		cold := s.lru.Back()
		se := cold.Value.(*shardEntry)
		s.lru.Remove(cold)
		delete(s.idx, se.key)
		s.bytes -= se.cost
		c.evictions.Add(1)
	}
	s.mu.Unlock()
}

// DigestFor digests data, memoizing by file identity when one is
// offered: an unchanged (dev, inode, size, mtime) returns the stored
// digest without rehashing. An identity whose Size disagrees with the
// data in hand (a stat that raced a rewrite) is not trusted and not
// memoized.
func (c *Cache) DigestFor(data []byte, id *Identity) Digest {
	if c == nil || id == nil || id.Size != int64(len(data)) {
		return DigestBytes(data)
	}
	c.idMu.Lock()
	if el, ok := c.idIdx[*id]; ok {
		c.idLRU.MoveToFront(el)
		d := el.Value.(*idEntry).digest
		c.idMu.Unlock()
		c.identityHits.Add(1)
		return d
	}
	c.idMu.Unlock()
	c.identityMisses.Add(1)
	d := DigestBytes(data)
	c.idMu.Lock()
	if _, ok := c.idIdx[*id]; !ok {
		c.idIdx[*id] = c.idLRU.PushFront(&idEntry{id: *id, digest: d})
		for c.idLRU.Len() > identityCap {
			cold := c.idLRU.Back()
			c.idLRU.Remove(cold)
			delete(c.idIdx, cold.Value.(*idEntry).id)
		}
	}
	c.idMu.Unlock()
	return d
}

// Bytes returns the cache's current accounted footprint.
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.bytes
		s.mu.Unlock()
	}
	return total
}

// Entries returns the number of cached results.
func (c *Cache) Entries() int {
	if c == nil {
		return 0
	}
	var n int
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Metrics is a point-in-time snapshot of the cache's counters.
type Metrics struct {
	// Hits counts lookups served from a cached entry, Misses lookups
	// that ran a fill, Coalesced callers that piggybacked on another
	// caller's in-flight fill.
	Hits, Misses, Coalesced int64
	// Evictions counts entries dropped by the size-aware LRU; Bypasses
	// counts results served but never stored (larger than a shard's
	// budget).
	Evictions, Bypasses int64
	// IdentityHits / IdentityMisses count digest-fast-path probes by
	// outcome: a hit skipped rehashing an unchanged file.
	IdentityHits, IdentityMisses int64
	// Entries and Bytes are the current population and accounted
	// footprint; Budget the configured global byte budget.
	Entries int
	Bytes   int64
	Budget  int64
}

// Snapshot returns the cache's metrics (zero when disabled).
func (c *Cache) Snapshot() Metrics {
	if c == nil {
		return Metrics{}
	}
	return Metrics{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Coalesced:      c.coalesced.Load(),
		Evictions:      c.evictions.Load(),
		Bypasses:       c.bypasses.Load(),
		IdentityHits:   c.identityHits.Load(),
		IdentityMisses: c.identityMisses.Load(),
		Entries:        c.Entries(),
		Bytes:          c.Bytes(),
		Budget:         c.budget,
	}
}
