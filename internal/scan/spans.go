package scan

// Span-gather output. A projected document is mostly a subset of the
// input bytes (the paper's core observation), so when the input is
// fully in memory the pruner does not need to copy anything: output is
// recorded as a SpanList — an ordered gather list of {off, len} ranges
// over the input plus a small escape buffer holding the few bytes the
// pruner synthesizes (re-rendered tags, escaped text, "/>") — and
// flushed with vectored I/O. The emitter interface below is the single
// seam: the pruner writes through it, and the target is either the
// classic bufio.Writer (streaming path, unchanged) or a SpanList
// (in-memory ResetBytes path, zero output copies).

import (
	"bufio"
	"io"
	"net"
	"sync"
)

// emitter is the pruner's output target. raw emits a verbatim span
// buf[off:end] of the scanner's buffer; in ResetBytes mode the buffer
// aliases the whole input and never slides, so off/end are absolute
// input offsets — the invariant that makes gather output sound. The
// lit* methods emit synthesized bytes, which the emitter must copy
// before returning (callers reuse the scratch). splice folds a
// fragment's pre-computed gather list in at the current point.
//
// Emitters never fail: bufio defers write errors to Flush, and a
// gather list cannot fail at all.
type emitter interface {
	raw(buf []byte, off, end int)
	lit(p []byte)
	litString(s string)
	litByte(c byte)
	splice(fr *SpanList)
}

// streamEmitter is the classic streaming target: every span and
// synthesized byte is copied into the bufio.Writer.
type streamEmitter struct{ bw *bufio.Writer }

func (e *streamEmitter) raw(buf []byte, off, end int) { e.bw.Write(buf[off:end]) }
func (e *streamEmitter) lit(p []byte)                 { e.bw.Write(p) }
func (e *streamEmitter) litString(s string)           { e.bw.WriteString(s) }
func (e *streamEmitter) litByte(c byte)               { e.bw.WriteByte(c) }

// splice copies a fragment's segments out in order — one copy per
// fragment, where the old per-fragment bytes.Buffer path paid two
// (fragment buffer, then buffer into the spine writer).
func (e *streamEmitter) splice(fr *SpanList) {
	for _, sp := range fr.spans {
		e.bw.Write(fr.segment(sp))
	}
}

// nopEmitter discards everything. Skip fragments never produce output;
// wiring them to nopEmitter makes that invariant crash-proof (the old
// arrangement handed them a pooled bufio.Writer wrapping a nil writer,
// which any stray write would eventually have flushed into a panic).
type nopEmitter struct{}

func (nopEmitter) raw([]byte, int, int) {}
func (nopEmitter) lit([]byte)           {}
func (nopEmitter) litString(string)     {}
func (nopEmitter) litByte(byte)         {}
func (nopEmitter) splice(*SpanList)     {}

// Span is one gather segment. Off >= 0 addresses the input; Off < 0
// encodes an escape-buffer segment starting at ^Off. The encoding is
// internal — renderers go through SpanList.segment.
type Span struct {
	Off, Len int
}

// SpanList is the span-gather output of one prune over in-memory
// input: rendered output equals the concatenation of its spans, most
// of which point straight into the input. It implements the pruner's
// emitter interface, and io.WriterTo for vectored flushing.
//
// A SpanList is single-goroutine state; Reset it before reuse.
type SpanList struct {
	input []byte
	spans []Span
	esc   []byte // synthesized bytes referenced by Off<0 spans

	total    int64 // rendered output size
	rawTotal int64 // bytes referenced in place (not copied)

	bufs net.Buffers // reusable WriteTo scratch
}

// Reset points the list at a new input and drops all recorded output;
// span and escape capacity is retained.
func (sl *SpanList) Reset(input []byte) {
	sl.input = input
	sl.spans = sl.spans[:0]
	sl.esc = sl.esc[:0]
	sl.total, sl.rawTotal = 0, 0
}

// Clear drops every reference (input, spans, escape bytes) so a pooled
// list never pins caller buffers.
func (sl *SpanList) Clear() {
	sl.input = nil
	sl.spans = sl.spans[:0]
	sl.esc = sl.esc[:0]
	sl.total, sl.rawTotal = 0, 0
	sl.bufs = sl.bufs[:0]
}

// Len is the rendered output size in bytes.
func (sl *SpanList) Len() int64 { return sl.total }

// RawBytes counts the output bytes served in place from the input —
// the bytes a copying emitter would have memcpy'd and this one did
// not. Len()-RawBytes() is the synthesized remainder.
func (sl *SpanList) RawBytes() int64 { return sl.rawTotal }

// Segments is the number of gather segments (writev iovecs).
func (sl *SpanList) Segments() int { return len(sl.spans) }

func (sl *SpanList) segment(sp Span) []byte {
	if sp.Off >= 0 {
		return sl.input[sp.Off : sp.Off+sp.Len]
	}
	off := ^sp.Off
	return sl.esc[off : off+sp.Len]
}

// WriteTo flushes the gather list with vectored I/O: the segments are
// assembled into a net.Buffers, which hands them to the kernel in one
// writev when w is a TCP connection and writes them in order
// otherwise. The assembly scratch is retained across calls.
func (sl *SpanList) WriteTo(w io.Writer) (int64, error) {
	bufs := sl.bufs[:0]
	for _, sp := range sl.spans {
		bufs = append(bufs, sl.segment(sp))
	}
	sl.bufs = bufs[:0] // net.Buffers consumes its slice; keep the capacity
	nb := net.Buffers(bufs)
	return nb.WriteTo(w)
}

// AppendTo appends the rendered output to dst.
func (sl *SpanList) AppendTo(dst []byte) []byte {
	for _, sp := range sl.spans {
		dst = append(dst, sl.segment(sp)...)
	}
	return dst
}

// Bytes materialises the rendered output in a fresh slice (tests,
// small results); the zero-copy paths use WriteTo.
func (sl *SpanList) Bytes() []byte { return sl.AppendTo(make([]byte, 0, sl.total)) }

// Write appends p as synthesized bytes, making SpanList an io.Writer —
// reference paths (the encoding/xml decoder) can materialise into a
// gather list as one escape segment. It never fails.
func (sl *SpanList) Write(p []byte) (int, error) {
	sl.lit(p)
	return len(p), nil
}

// raw records input[off:end], merging with an adjacent preceding input
// span — the pruner emits canonical tags and window flushes as many
// small contiguous spans, so merging keeps the list (and the eventual
// iovec count) proportional to the number of pruning decisions, not
// tokens.
func (sl *SpanList) raw(_ []byte, off, end int) {
	n := end - off
	if n <= 0 {
		return
	}
	sl.total += int64(n)
	sl.rawTotal += int64(n)
	if k := len(sl.spans); k > 0 {
		if last := &sl.spans[k-1]; last.Off >= 0 && last.Off+last.Len == off {
			last.Len += n
			return
		}
	}
	sl.spans = append(sl.spans, Span{Off: off, Len: n})
}

func (sl *SpanList) lit(p []byte) {
	if len(p) == 0 {
		return
	}
	off := len(sl.esc)
	sl.esc = append(sl.esc, p...)
	sl.escSpan(off, len(p))
}

func (sl *SpanList) litString(s string) {
	if len(s) == 0 {
		return
	}
	off := len(sl.esc)
	sl.esc = append(sl.esc, s...)
	sl.escSpan(off, len(s))
}

func (sl *SpanList) litByte(c byte) {
	off := len(sl.esc)
	sl.esc = append(sl.esc, c)
	sl.escSpan(off, 1)
}

// escSpan records escape-buffer range [off, off+n), merging with a
// preceding escape span that ends at off (consecutive lit appends
// always do).
func (sl *SpanList) escSpan(off, n int) {
	sl.total += int64(n)
	if k := len(sl.spans); k > 0 {
		if last := &sl.spans[k-1]; last.Off < 0 && ^last.Off+last.Len == off {
			last.Len += n
			return
		}
	}
	sl.spans = append(sl.spans, Span{Off: ^off, Len: n})
}

// splice concatenates a fragment's gather list: input spans are shared
// verbatim — fragment workers scan with absolute offsets
// (ResetBytesAt) over the same backing input, so the parallel stitch
// is list concatenation with no per-fragment memcpy. Only escape bytes
// are copied and rebased, and those are the few synthesized bytes.
func (sl *SpanList) splice(fr *SpanList) {
	for _, sp := range fr.spans {
		if sp.Off >= 0 {
			sl.raw(nil, sp.Off, sp.Off+sp.Len)
		} else {
			off := len(sl.esc)
			o := ^sp.Off
			sl.esc = append(sl.esc, fr.esc[o:o+sp.Len]...)
			sl.escSpan(off, sp.Len)
		}
	}
}

// spanListPool recycles fragment gather lists across parallel prunes.
var spanListPool = sync.Pool{New: func() any { return new(SpanList) }}

func getSpanList(input []byte) *SpanList {
	sl := spanListPool.Get().(*SpanList)
	sl.Reset(input)
	return sl
}

// putSpanList clears the list — dropping its input reference so the
// pool never pins caller data — and recycles it.
func putSpanList(sl *SpanList) {
	sl.Clear()
	spanListPool.Put(sl)
}
