package scan

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"xmlproj/internal/dtd"
)

// stutterReader returns short reads and interleaves (0, nil) results.
type stutterReader struct {
	r io.Reader
	n int
}

func (s *stutterReader) Read(p []byte) (int, error) {
	s.n++
	if s.n%3 == 0 {
		return 0, nil
	}
	if len(p) > 7 {
		p = p[:7]
	}
	return s.r.Read(p)
}

func prunePipelinedStr(t *testing.T, src io.Reader, d *dtd.DTD, p *dtd.Projection, popts PipelineOptions) (string, Stats, PipelineDetail, error) {
	t.Helper()
	var sb strings.Builder
	bw := bufio.NewWriter(&sb)
	st, det, err := PrunePipelined(bw, src, d, p, popts)
	if err == nil {
		err = bw.Flush()
	}
	return sb.String(), st, det, err
}

// TestPipelinedMatchesSerial is the core differential: across
// projectors, documents, worker counts, fragment targets, window sizes
// and ring depths — with windows far smaller than the document, so
// every construct kind gets cut by a window boundary — the pipelined
// pruner's output, stats and verdict must be identical to the serial
// scanner's.
func TestPipelinedMatchesSerial(t *testing.T) {
	docs := map[string]string{
		"site":  genSite(4, 3),
		"small": `<site><regions><item id="1"><name>n</name></item></regions></site>`,
		"mixed": `<site><regions>` +
			`<item id="1"><name>a&lt;b</name><note>x</note><note>y</note></item>` +
			"<item id='2' featured=\"yes\"><name>n2</name>\n  <note>t</note></item>" +
			`<item id="3"><name><![CDATA[cd]]>tail</name></item>` +
			`</regions><people><person id="p"><name>who</name></person></people></site>`,
		"comments": `<site><regions><item id="1"><name>a<!-- c -->b</name>` +
			`<note>t1</note><?pi data?><note>t2</note></item></regions></site>`,
		"crlf": "<site>\r\n  <regions>\r\n    <item id=\"1\">\r\n      <name>a\r\nb</name>\r\n    </item>\r\n  </regions>\r\n</site>",
	}
	for pname, pi := range siteProjectors {
		d, p := setupSite(t, pi)
		for dname, doc := range docs {
			for _, validate := range []bool{false, true} {
				opts := Options{Validate: validate, RawCopy: true}
				var sb strings.Builder
				bw := bufio.NewWriter(&sb)
				sst, serr := Prune(bw, strings.NewReader(doc), d, p, opts)
				bw.Flush()
				want := sb.String()
				for _, workers := range []int{1, 2, 4} {
					for _, target := range []int{1, 40, 1 << 20} {
						for _, win := range []int{256, 300, 1 << 10, 1 << 20} {
							for _, ring := range []int{2, 4} {
								got, pst, det, perr := prunePipelinedStr(t, strings.NewReader(doc), d, p, PipelineOptions{
									Options:    opts,
									Workers:    workers,
									WindowSize: win,
									RingDepth:  ring,
									FragTarget: target,
								})
								id := fmt.Sprintf("%s/%s validate=%v w=%d target=%d win=%d ring=%d (windows=%d tasks=%d)",
									pname, dname, validate, workers, target, win, ring, det.Windows, det.Tasks)
								if (serr == nil) != (perr == nil) {
									t.Fatalf("%s: verdict diverges: serial=%v pipelined=%v", id, serr, perr)
								}
								if serr != nil {
									continue
								}
								if got != want {
									t.Fatalf("%s: output diverges\nserial:    %q\npipelined: %q", id, want, got)
								}
								if pst != sst {
									t.Fatalf("%s: stats diverge\nserial:    %+v\npipelined: %+v", id, sst, pst)
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestPipelinedTortureReaders: one-byte reads, short reads and (0, nil)
// stutters must not change output, stats or verdict.
func TestPipelinedTortureReaders(t *testing.T) {
	doc := genSite(2, 2)
	for pname, pi := range siteProjectors {
		d, p := setupSite(t, pi)
		opts := Options{Validate: true, RawCopy: true}
		var sb strings.Builder
		bw := bufio.NewWriter(&sb)
		sst, serr := Prune(bw, strings.NewReader(doc), d, p, opts)
		bw.Flush()
		want := sb.String()
		readers := map[string]func() io.Reader{
			"onebyte": func() io.Reader { return iotest(strings.NewReader(doc)) },
			"stutter": func() io.Reader { return &stutterReader{r: strings.NewReader(doc)} },
			"iotest1": func() io.Reader { return io.LimitReader(strings.NewReader(doc), int64(len(doc))) },
		}
		for rname, mk := range readers {
			got, pst, _, perr := prunePipelinedStr(t, mk(), d, p, PipelineOptions{
				Options: opts, Workers: 4, WindowSize: 300, RingDepth: 3, FragTarget: 16,
			})
			if (serr == nil) != (perr == nil) {
				t.Fatalf("%s/%s: verdict diverges: serial=%v pipelined=%v", pname, rname, serr, perr)
			}
			if serr != nil {
				continue
			}
			if got != want {
				t.Fatalf("%s/%s: output diverges", pname, rname)
			}
			if pst != sst {
				t.Fatalf("%s/%s: stats diverge\nserial:    %+v\npipelined: %+v", pname, rname, sst, pst)
			}
		}
	}
}

// TestPipelinedVerdictParityOnBadDocs: malformed and invalid documents
// must be accepted or rejected exactly as the serial scanner decides,
// whatever the windowing.
func TestPipelinedVerdictParityOnBadDocs(t *testing.T) {
	docs := []string{
		``,
		`no xml here`,
		`<site><regions></regions>`,
		`<site><regions></regions></site><site></site>`,
		`<site><regions><item id="1"></wrong></item></regions></site>`,
		`<site><regions><item id="1"><name>n</name></item></regions></site>trailing`,
		`<site><regions><item id="1"><name>n</name></item></regions>text</site>`,
		`<region><item id="1"/></region>`,
		`<site><regions><item><name>n</name></item></regions></site>`,
		`<site><regions><item id="1" featured="maybe"><name>n</name></item></regions></site>`,
		`<site><regions><item id="1" bogus="x"><name>n</name></item></regions></site>`,
		`<site><regions><item id="1"><note>n</note></item></regions></site>`,
		`<site><regions><item id="1"><name>n</name>stray</item></regions></site>`,
		`<site><regions><item id="1"><name>a &unknown; b</name></item></regions></site>`,
		`<site><regions><item id="1"><name attr="<">n</name></item></regions></site>`,
		`<site><regions><item id="1"><name>n</name><undeclared/></item></regions></site>`,
		`</site>`,
		`<site><regions><item id="1"><name>n</name></item></regions></site></extra>`,
	}
	for pname, pi := range siteProjectors {
		d, p := setupSite(t, pi)
		for _, validate := range []bool{false, true} {
			opts := Options{Validate: validate, RawCopy: true}
			for i, doc := range docs {
				var sb strings.Builder
				bw := bufio.NewWriter(&sb)
				_, serr := Prune(bw, strings.NewReader(doc), d, p, opts)
				for _, win := range []int{256, 1 << 20} {
					_, _, _, perr := prunePipelinedStr(t, strings.NewReader(doc), d, p, PipelineOptions{
						Options: opts, Workers: 4, WindowSize: win, FragTarget: 24,
					})
					if (serr == nil) != (perr == nil) {
						t.Errorf("%s validate=%v doc %d win=%d: serial=%v pipelined=%v",
							pname, validate, i, win, serr, perr)
					}
				}
			}
		}
	}
}

// TestPipelinedMaxTokenSize: a token larger than the cap fails with
// ErrTokenTooLong even though it spans many windows (the carry can
// never complete); a cap too small for the parallel invariants falls
// back to the serial pruner wholesale.
func TestPipelinedMaxTokenSize(t *testing.T) {
	d, p := setupSite(t, siteProjectors["all"])
	big := strings.Repeat("x", 3*windowFlushSize)
	doc := `<site><regions><item id="1"><name>` + big + `</name></item></regions></site>`
	cap := 2 * windowFlushSize
	_, _, det, err := prunePipelinedStr(t, strings.NewReader(doc), d, p, PipelineOptions{
		Options: Options{RawCopy: true, MaxTokenSize: cap}, Workers: 2, WindowSize: 16 << 10,
	})
	if !errors.Is(err, ErrTokenTooLong) {
		t.Fatalf("got %v, want ErrTokenTooLong", err)
	}
	if det.Fallback {
		t.Fatal("oversized token should fail in the indexer, not fall back")
	}
	var sb strings.Builder
	bw := bufio.NewWriter(&sb)
	_, serr := Prune(bw, strings.NewReader(doc), d, p, Options{MaxTokenSize: cap})
	if !errors.Is(serr, ErrTokenTooLong) {
		t.Fatalf("serial scanner disagrees: %v", serr)
	}
	_, _, det, err = prunePipelinedStr(t, strings.NewReader(doc), d, p, PipelineOptions{
		Options: Options{MaxTokenSize: 1 << 10}, Workers: 2,
	})
	if !det.Fallback {
		t.Fatal("tiny token cap must use the serial pruner")
	}
	if !errors.Is(err, ErrTokenTooLong) {
		t.Fatalf("fallback verdict: %v", err)
	}
}

// TestPipelinedBoundedMemory: peak resident window bytes stay within
// ring × window on a document much larger than the ring.
func TestPipelinedBoundedMemory(t *testing.T) {
	doc := genSite(64, 4) // ~hundreds of KiB
	d, p := setupSite(t, siteProjectors["low"])
	win, ring := 8<<10, 3
	var sb strings.Builder
	bw := bufio.NewWriter(&sb)
	sst, serr := Prune(bw, strings.NewReader(doc), d, p, Options{RawCopy: true})
	bw.Flush()
	if serr != nil {
		t.Fatal(serr)
	}
	got, pst, det, err := prunePipelinedStr(t, strings.NewReader(doc), d, p, PipelineOptions{
		Options: Options{RawCopy: true}, Workers: 4, WindowSize: win, RingDepth: ring, FragTarget: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != sb.String() || pst != sst {
		t.Fatalf("large-doc divergence: stats %+v vs %+v, len %d vs %d", pst, sst, len(got), sb.Len())
	}
	if det.Windows < int(len(doc)/win) {
		t.Fatalf("expected ~%d windows, got %d", len(doc)/win, det.Windows)
	}
	if det.Tasks == 0 {
		t.Fatal("expected delegated ranges")
	}
	if det.PeakWindowBytes > int64(ring)*int64(win) {
		t.Fatalf("peak window bytes %d exceeds ring bound %d", det.PeakWindowBytes, ring*win)
	}
}

// TestPipelinedDelegatesSkippedSubtrees: a projector that discards the
// dominant subtree must still delegate its interior ranges (as skip
// fragments), pausing and resuming the spine's skip scan across window
// boundaries.
func TestPipelinedDelegatesSkippedSubtrees(t *testing.T) {
	doc := genSite(8, 4)
	d, p := setupSite(t, siteProjectors["skip-heavy"])
	var sb strings.Builder
	bw := bufio.NewWriter(&sb)
	sst, serr := Prune(bw, strings.NewReader(doc), d, p, Options{RawCopy: true})
	bw.Flush()
	if serr != nil {
		t.Fatal(serr)
	}
	got, pst, det, err := prunePipelinedStr(t, strings.NewReader(doc), d, p, PipelineOptions{
		Options: Options{RawCopy: true}, Workers: 4, WindowSize: 2 << 10, RingDepth: 3, FragTarget: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != sb.String() || pst != sst {
		t.Fatalf("skip-heavy divergence: stats %+v vs %+v", pst, sst)
	}
	if det.Tasks == 0 {
		t.Fatal("expected skip ranges to be delegated")
	}
}
