package scan

import (
	"bytes"
	"testing"
)

func TestSpanListGatherMechanics(t *testing.T) {
	input := []byte("0123456789abcdef")
	var sl SpanList
	sl.Reset(input)

	// Adjacent input spans coalesce into one segment.
	sl.raw(input, 0, 4)
	sl.raw(input, 4, 8)
	if sl.Segments() != 1 {
		t.Fatalf("adjacent raw spans: %d segments, want 1", sl.Segments())
	}
	// Adjacent synthesized bytes coalesce too.
	sl.litString("<x>")
	sl.litByte('!')
	if sl.Segments() != 2 {
		t.Fatalf("after lits: %d segments, want 2", sl.Segments())
	}
	// A non-adjacent input span starts a new segment.
	sl.raw(input, 12, 16)
	if sl.Segments() != 3 {
		t.Fatalf("after gap: %d segments, want 3", sl.Segments())
	}

	want := "01234567<x>!cdef"
	if got := string(sl.Bytes()); got != want {
		t.Fatalf("Bytes() = %q, want %q", got, want)
	}
	if sl.Len() != int64(len(want)) {
		t.Fatalf("Len() = %d, want %d", sl.Len(), len(want))
	}
	if sl.RawBytes() != 12 {
		t.Fatalf("RawBytes() = %d, want 12", sl.RawBytes())
	}

	var wb bytes.Buffer
	n, err := sl.WriteTo(&wb)
	if err != nil || n != int64(len(want)) || wb.String() != want {
		t.Fatalf("WriteTo: n=%d err=%v got %q", n, err, wb.String())
	}
	// WriteTo is repeatable (the net.Buffers scratch is rebuilt).
	wb.Reset()
	if _, err := sl.WriteTo(&wb); err != nil || wb.String() != want {
		t.Fatalf("second WriteTo: err=%v got %q", err, wb.String())
	}
}

func TestSpanListSplice(t *testing.T) {
	input := []byte("0123456789abcdef")
	var fr SpanList
	fr.Reset(input)
	fr.raw(input, 2, 5)
	fr.litString("&amp;")
	fr.raw(input, 8, 10)

	var sl SpanList
	sl.Reset(input)
	sl.litByte('>')
	sl.splice(&fr)
	sl.raw(input, 14, 16)

	want := ">234&amp;89ef"
	if got := string(sl.Bytes()); got != want {
		t.Fatalf("spliced Bytes() = %q, want %q", got, want)
	}
	// Splice shares input spans and copies escape bytes: mutating the
	// fragment afterwards must not change the spliced result.
	fr.Clear()
	if got := string(sl.Bytes()); got != want {
		t.Fatalf("after fragment Clear: %q, want %q", got, want)
	}
	if sl.RawBytes() != 7 {
		t.Fatalf("RawBytes() = %d, want 7", sl.RawBytes())
	}
}

func TestSpanListClearDropsReferences(t *testing.T) {
	input := []byte("abcd")
	sl := getSpanList(input)
	sl.raw(input, 0, 4)
	sl.litByte('x')
	putSpanList(sl)
	if sl.input != nil || len(sl.spans) != 0 || len(sl.esc) != 0 || sl.Len() != 0 {
		t.Fatal("putSpanList left state behind; the pool would pin caller data")
	}
}

func TestSpanListWrite(t *testing.T) {
	// SpanList is an io.Writer (the decoder-fallback path renders into
	// the escape buffer).
	var sl SpanList
	sl.Reset(nil)
	n, err := sl.Write([]byte("hello "))
	if err != nil || n != 6 {
		t.Fatalf("Write: n=%d err=%v", n, err)
	}
	sl.Write([]byte("world"))
	if got := string(sl.Bytes()); got != "hello world" {
		t.Fatalf("Bytes() = %q", got)
	}
	if sl.RawBytes() != 0 || sl.Segments() != 1 {
		t.Fatalf("written bytes should be one synthesized segment: raw=%d segs=%d", sl.RawBytes(), sl.Segments())
	}
}
