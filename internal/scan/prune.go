package scan

import (
	"bufio"
	"fmt"
	"io"
	"sync"

	"xmlproj/internal/dtd"
)

// Options configures a scanner-based prune.
type Options struct {
	// Validate checks content models, attribute declarations and the
	// root element while pruning.
	Validate bool
	// RawCopy enables verbatim passthrough windows for subtrees whose
	// reachable closure is inside π. Safe to combine with Validate:
	// while a subtree rides a window the scanner keeps feeding element
	// and text symbols through the dense content-model DFAs and checking
	// attributes, so validation continues without leaving the verbatim
	// path.
	RawCopy bool
	// MaxTokenSize bounds the scanner's sliding buffer: a single token
	// (one tag, one text chunk, one attribute value) larger than this
	// fails with scan.ErrTokenTooLong. Zero means DefaultMaxTokenSize.
	MaxTokenSize int
}

// Stats mirrors the streaming pruner's counters (the prune package owns
// the documented contract; BytesOut is counted by the caller's writer).
type Stats struct {
	ElementsIn, ElementsOut      int64
	TextIn, TextOut              int64
	ElementsSkipped, TextSkipped int64
	MaxDepth                     int
}

// prunerPool recycles pruner state — the scanner's sliding buffer, the
// element stack, text and tag scratch — across prunes, so a batch of
// documents pays the allocation cost once, not per document.
var prunerPool = sync.Pool{New: func() any { return &pruner{s: NewScanner(nil)} }}

// Prune runs the byte-level pruner: src is tokenized in place, names
// resolve through the DTD symbol table, and the compiled projection
// answers keep/skip per element with an array lookup. Output written to
// bw is byte-identical to the encoding/xml-based pruner's. Scanner and
// pruner state come from a pool and are returned on completion.
func Prune(bw *bufio.Writer, src io.Reader, d *dtd.DTD, proj *dtd.Projection, opts Options) (Stats, error) {
	pr := prunerPool.Get().(*pruner)
	pr.s.Reset(src)
	pr.prep(d, proj, opts)
	pr.useStream(bw)
	err := pr.run()
	st := pr.st
	pr.release()
	prunerPool.Put(pr)
	return st, err
}

// PruneBytes is Prune over input that is already fully in memory: the
// scanner aliases data (ResetBytes), so nothing is read or copied on
// the input side and raw-copy windows stream straight out of data.
// MaxTokenSize is not enforced — the cap exists to bound the streaming
// scanner's buffer growth, and an in-memory input has no buffer to
// grow; bound such inputs by size before handing them over.
func PruneBytes(bw *bufio.Writer, data []byte, d *dtd.DTD, proj *dtd.Projection, opts Options) (Stats, error) {
	pr := prunerPool.Get().(*pruner)
	pr.s.ResetBytes(data)
	pr.prep(d, proj, opts)
	pr.useStream(bw)
	err := pr.run()
	st := pr.st
	pr.release()
	prunerPool.Put(pr)
	return st, err
}

// PruneGather prunes in-memory input into sl: output is recorded as a
// gather list of input spans plus a small escape buffer of synthesized
// bytes, copying nothing. The rendered output (SpanList.WriteTo,
// AppendTo, Bytes) is byte-identical to Prune's. sl is Reset over data
// first. Like PruneBytes, MaxTokenSize is not enforced.
func PruneGather(sl *SpanList, data []byte, d *dtd.DTD, proj *dtd.Projection, opts Options) (Stats, error) {
	sl.Reset(data)
	pr := prunerPool.Get().(*pruner)
	pr.s.ResetBytes(data)
	pr.prep(d, proj, opts)
	pr.useGather(sl)
	err := pr.run()
	st := pr.st
	pr.release()
	prunerPool.Put(pr)
	return st, err
}

// prep prepares pooled state for a new input. The caller has already
// pointed the scanner at the input (Reset / ResetBytes / ResetBytesAt)
// and must install an output target with useStream, useGather or
// useDiscard before run.
func (pr *pruner) prep(d *dtd.DTD, proj *dtd.Projection, opts Options) {
	pr.s.SetMaxTokenSize(opts.MaxTokenSize)
	pr.d, pr.p, pr.opts = d, proj, opts
	pr.st = Stats{}
	pr.stack = pr.stack[:0]
	pr.open, pr.sawRoot, pr.runPending = false, false, false
	pr.textBuf = pr.textBuf[:0]
	pr.win, pr.winDepth, pr.openInWin, pr.openRel = false, 0, false, 0
	pr.skipBuf = pr.skipBuf[:0]
	pr.skipOffs = pr.skipOffs[:0]
	pr.skipPending = false
	pr.mode, pr.ctxBase = modeNormal, 0
	pr.events = pr.events[:0]
	pr.sp = nil
}

// useStream targets the classic buffered-copy output path. The
// streamEmitter lives inside the pooled pruner, so installing it
// allocates nothing.
func (pr *pruner) useStream(bw *bufio.Writer) {
	pr.se.bw = bw
	pr.em = &pr.se
}

// useGather targets a span-gather list (in-memory inputs only: gather
// spans are absolute input offsets, sound only in ResetBytes mode).
func (pr *pruner) useGather(sl *SpanList) { pr.em = sl }

// useDiscard wires a non-emitting role (skip fragments).
func (pr *pruner) useDiscard() { pr.em = nopEmitter{} }

// release drops references to per-prune inputs so the pool does not pin
// the caller's reader, writer, DTD or projection. Scratch buffers keep
// their capacity — that is the point of pooling.
func (pr *pruner) release() {
	for i := range pr.stack {
		pr.stack[i] = frame{}
	}
	pr.stack = pr.stack[:0]
	pr.s.Reset(nil)
	pr.d, pr.p = nil, nil
	pr.em, pr.se.bw = nil, nil
}

// windowFlushSize bounds how many verbatim bytes a raw-copy window may
// hold before being streamed out, keeping memory independent of the
// copied subtree's size.
const windowFlushSize = 32 << 10

type frame struct {
	sym    int32
	prefix string        // interned; "" for unprefixed tags
	state  int32         // dense content-model DFA state (when validating)
	aut    *dtd.DenseDFA // the element's dense automaton
}

type pruner struct {
	s    *Scanner
	d    *dtd.DTD
	p    *dtd.Projection
	opts Options
	st   Stats

	// em is the output target; se backs it on the streaming path so
	// installing the emitter never allocates.
	em emitter
	se streamEmitter

	stack   []frame
	open    bool // last start tag's '>' not yet written (enables <e/>)
	sawRoot bool

	// Logical text run: runPending is set when a non-whitespace chunk
	// joined the current run; textBuf holds the decoded bytes that are
	// not already flowing through the raw-copy window.
	runPending bool
	textBuf    []byte

	// Raw-copy window: while win is set, the scanner's mark pins the
	// start of a span of input bytes already known to equal the
	// canonical output; non-verbatim tokens flush the span and restart
	// it. openInWin marks a provisionally-copied '>' (at mark-relative
	// openRel) that must be withheld if the element turns out to
	// self-close in the output.
	win       bool
	winDepth  int // stack depth of the raw root; window closes below it
	openInWin bool
	openRel   int

	tagBuf   []byte // canonical rendering of the current start tag
	attrVal  []byte // decoded attribute value / discard scratch
	seen     []bool // declared-attribute tracking for #REQUIRED checks
	prefixes map[string]string

	// skip-scan name stack: full end-tag names to match, stored in one
	// growable buffer to stay allocation-free in steady state.
	skipBuf  []byte
	skipOffs []int

	// Parallel-prune state. mode selects the pruner's role: modeNormal is
	// the plain serial pruner (also the spine of a parallel prune, when
	// sp is set); modeFragment prunes one content range of a kept context
	// element, recording child-level symbols in events instead of walking
	// the context element's content-model DFA (the spine replays them at
	// the splice point, in document order); modePipe is the spine of a
	// pipelined prune over one non-final window — end of input means
	// "window exhausted, more to come", so run returns nil with all
	// cross-window state (stack, DFA states, pending text run, open '>')
	// left in place for the next window. ctxBase is the seeded stack
	// depth a fragment starts and must end at.
	mode    uint8
	ctxBase int
	events  []int32
	sp      *spliceSet

	// skipPending carries skipScan's pending-text-run flag across a
	// modePipe window pause (errPause), so a logical run straddling
	// windows inside a skipped subtree still counts once.
	skipPending bool
}

const (
	modeNormal uint8 = iota
	modeFragment
	modePipe
)

// errPause is skipScan's internal signal that a modePipe window ended
// mid-subtree: not an error — the pipelined spine resumes the skip scan
// at the start of the next window (pr.skipOffs is non-empty).
var errPause = fmt.Errorf("scan: window pause")

// eventText marks a logical text run in a fragment's event stream; other
// values are child element symbols.
const eventText int32 = -1

func (pr *pruner) run() error {
	s := pr.s
	for {
		if pr.sp != nil && pr.sp.at(s.pos) {
			if err := pr.applySplice(); err != nil {
				return err
			}
			continue
		}
		var tokRel int
		if pr.win {
			tokRel = s.pos - s.mark
		} else {
			s.setMark()
		}
		b, ok := s.getc()
		if !ok {
			if !s.atEOF() {
				return s.rerr
			}
			break
		}
		if b != '<' {
			s.ungetc()
			if err := pr.chunk(tokRel, false); err != nil {
				return err
			}
		} else {
			b2, ok := s.getc()
			if !ok {
				return s.readErr()
			}
			switch b2 {
			case '/':
				if err := pr.endTag(tokRel); err != nil {
					return err
				}
			case '?':
				if pr.win {
					pr.flushWindowUpTo(tokRel)
				}
				if err := s.skipPI(); err != nil {
					return err
				}
				pr.winRestart()
			case '!':
				b3, ok := s.getc()
				if !ok {
					return s.readErr()
				}
				switch b3 {
				case '-':
					b4, ok := s.getc()
					if !ok {
						return s.readErr()
					}
					if b4 != '-' {
						return errSyntax("invalid sequence <!- not part of <!--")
					}
					if pr.win {
						pr.flushWindowUpTo(tokRel)
					}
					if err := s.skipComment(); err != nil {
						return err
					}
					pr.winRestart()
				case '[':
					if err := s.expectCDATA(); err != nil {
						return err
					}
					if err := pr.chunk(tokRel, true); err != nil {
						return err
					}
				default:
					// Directive. The first byte after <! is accumulated
					// uninterpreted, as in encoding/xml.
					if pr.win {
						pr.flushWindowUpTo(tokRel)
					}
					if err := s.skipDirective(); err != nil {
						return err
					}
					pr.winRestart()
				}
			default:
				s.ungetc()
				if err := pr.startTag(tokRel); err != nil {
					return err
				}
			}
		}
		if !pr.win {
			s.clearMark()
		}
	}
	if pr.mode == modePipe {
		// End of a non-final pipelined window. The indexer guarantees the
		// window ends exactly after a complete construct, so the loop
		// paused at a token boundary; everything else (pending text run,
		// open '>', element stack) continues into the next window.
		return nil
	}
	if pr.mode == modeFragment {
		// The cut rule guarantees the byte after this range is an element
		// tag, where the serial pruner would flush the pending text run.
		if err := pr.flushText(); err != nil {
			return err
		}
		if pr.win {
			pr.closeWindow()
		}
		if len(pr.stack) != pr.ctxBase {
			top := pr.stack[len(pr.stack)-1]
			return fmt.Errorf("unterminated element %s", pr.p.Syms.Info(top.sym).Name)
		}
		return nil
	}
	if len(pr.stack) != 0 {
		top := pr.stack[len(pr.stack)-1]
		return fmt.Errorf("unterminated element %s", pr.p.Syms.Info(top.sym).Name)
	}
	if !pr.sawRoot {
		return fmt.Errorf("no root element in input")
	}
	return nil
}

// chunk reads one character-data chunk (plain text after the current
// position, or a CDATA section body) and folds it into the current
// logical text run, mirroring the decoder path: whitespace-only chunks
// are dropped, others coalesce until the next element tag.
func (pr *pruner) chunk(tokRel int, cdata bool) error {
	s := pr.s
	depth := len(pr.stack)
	var dst []byte
	prevLen := 0
	if depth == 0 {
		dst = pr.attrVal[:0]
	} else {
		dst = pr.textBuf
		prevLen = len(dst)
	}
	out, info, err := s.text(dst, -1, cdata)
	if cdata {
		// CDATA bodies are re-escaped on output, never copied raw.
		info.verbatim = false
	}
	if depth == 0 {
		pr.attrVal = out[:0]
		// Text outside the root is tokenized and validated but ignored
		// by the pruner, exactly like the decoder path.
		return err
	}
	if err != nil {
		pr.textBuf = out[:prevLen]
		return err
	}
	if info.ws {
		pr.textBuf = out[:prevLen]
		if pr.win {
			// Dropped bytes must not ride along in the window.
			pr.flushWindowUpTo(tokRel)
			pr.winRestart()
		}
		return nil
	}
	pr.runPending = true
	if pr.win {
		top := &pr.stack[depth-1]
		if info.verbatim && prevLen == 0 && pr.p.Flags(top.sym)&dtd.KeepText != 0 {
			// The raw bytes are exactly the canonical output, and no
			// earlier decoded text from this run is pending in textBuf
			// (which a later window flush would reorder behind these
			// bytes): keep them in the window, not in textBuf.
			pr.closeOpen()
			pr.textBuf = out[:prevLen]
			pr.maybeSlide()
			return nil
		}
		pr.flushWindowUpTo(tokRel)
		pr.textBuf = out
		pr.winRestart()
		return nil
	}
	pr.textBuf = out
	return nil
}

// flushText ends the current logical text run: counts it, validates its
// placement, and writes the escaped bytes if π keeps the element's text.
func (pr *pruner) flushText() error {
	if !pr.runPending {
		return nil
	}
	pr.runPending = false
	pr.st.TextIn++
	top := &pr.stack[len(pr.stack)-1]
	if pr.opts.Validate {
		if pr.mode == modeFragment && len(pr.stack) == pr.ctxBase {
			// The context element's incoming DFA state is unknown here;
			// record the event for the spine to replay at the splice.
			pr.events = append(pr.events, eventText)
		} else {
			next := top.aut.NextText(top.state)
			if next < 0 {
				pr.textBuf = pr.textBuf[:0]
				return fmt.Errorf("text content not allowed in %s", pr.p.Syms.Info(top.sym).Name)
			}
			top.state = next
		}
	}
	if pr.p.Flags(top.sym)&dtd.KeepText != 0 {
		pr.closeOpen()
		writeEscapedText(pr.em, pr.textBuf)
		pr.st.TextOut++
	}
	pr.textBuf = pr.textBuf[:0]
	return nil
}

// closeOpen commits a pending start-tag '>'. When the '>' is riding in
// the raw-copy window its bytes flow out with the window; otherwise it
// is written here.
func (pr *pruner) closeOpen() {
	if !pr.open {
		return
	}
	pr.open = false
	if pr.openInWin {
		pr.openInWin = false
		return
	}
	pr.em.litByte('>')
}

// flushWindowUpTo writes the window's verbatim span up to mark-relative
// position rel and releases the mark; the caller restarts the window
// after consuming the current (non-verbatim) token. A provisional
// start-tag '>' at the end of the span is withheld — closeOpen writes
// it later if the element gets kept content, and "/>" replaces it if
// the element self-closes in the output.
func (pr *pruner) flushWindowUpTo(rel int) {
	s := pr.s
	end := rel
	if pr.openInWin && pr.openRel < end {
		end = pr.openRel
		pr.openInWin = false
	}
	if end > 0 {
		pr.em.raw(s.buf, s.mark, s.mark+end)
	}
	s.clearMark()
}

// winRestart re-pins the window at the current position.
func (pr *pruner) winRestart() {
	if pr.win {
		pr.s.setMark()
	}
}

// maybeSlide streams out the window's committed bytes once it grows
// past windowFlushSize, so raw-copied subtrees never buffer wholesale.
func (pr *pruner) maybeSlide() {
	s := pr.s
	if s.pos-s.mark < windowFlushSize {
		return
	}
	if pr.openInWin {
		if pr.openRel > 0 {
			pr.em.raw(s.buf, s.mark, s.mark+pr.openRel)
			s.mark += pr.openRel
			pr.openRel = 0
		}
		return
	}
	pr.em.raw(s.buf, s.mark, s.pos)
	s.mark = s.pos
}

// closeWindow flushes the remaining span and deactivates raw copying.
func (pr *pruner) closeWindow() {
	s := pr.s
	if s.mark >= 0 && s.pos > s.mark {
		pr.em.raw(s.buf, s.mark, s.pos)
	}
	s.clearMark()
	pr.win = false
	pr.openInWin = false
}

func (pr *pruner) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if p, ok := pr.prefixes[string(b)]; ok {
		return p
	}
	if pr.prefixes == nil {
		pr.prefixes = make(map[string]string)
	}
	p := string(b)
	pr.prefixes[p] = p
	return p
}

// startTag handles a start (or empty-element) tag; the scanner mark is
// at the '<' and the '<' is consumed.
func (pr *pruner) startTag(tokRel int) error {
	s := pr.s
	nameRel := s.pos - s.mark
	ok, err := s.readName()
	if err != nil {
		return err
	}
	if !ok {
		return errSyntax("expected element name after <")
	}
	nameEndRel := s.pos - s.mark
	name := s.buf[s.mark+nameRel : s.mark+nameEndRel]
	if !s.checkName(name) {
		return errSyntax("invalid XML name: " + string(name))
	}
	prefixB, local, okn := splitName(name)
	if !okn {
		return errSyntax("expected element name after <")
	}
	if err := pr.flushText(); err != nil {
		return err
	}
	pr.st.ElementsIn++
	pr.sawRoot = true
	sym, found := pr.p.Syms.Lookup(local)
	if !found {
		return fmt.Errorf("element %q not declared in DTD", local)
	}
	info := pr.p.Syms.Info(sym)
	if pr.opts.Validate {
		if len(pr.stack) == 0 {
			if info.Name != pr.d.Root {
				return fmt.Errorf("root element is %s, DTD requires %s", info.Name, pr.d.Root)
			}
		} else if pr.mode == modeFragment && len(pr.stack) == pr.ctxBase {
			// A child of the fragment's context element: its transition in
			// the context DFA is replayed by the spine at the splice point.
			pr.events = append(pr.events, sym)
		} else {
			// The parent's dense automaton takes the child transition
			// with two array loads — no name hashing on the hot path.
			top := &pr.stack[len(pr.stack)-1]
			top.state = top.aut.Next(top.state, sym)
			if top.state < 0 {
				return fmt.Errorf("element %s not allowed here in content of %s",
					info.Name, pr.p.Syms.Info(top.sym).Name)
			}
		}
	}
	flags := pr.p.Flags(sym)

	if flags&dtd.KeepElem == 0 {
		// Discarded subtree: the root's end-tag name must still match,
		// so copy the full name before attribute spans invalidate it.
		pr.pushSkipName(name)
		if pr.win {
			pr.flushWindowUpTo(tokRel)
		}
		empty, err := pr.skipAttrs()
		if err != nil {
			return err
		}
		if !empty {
			if err := pr.skipScan(); err != nil {
				return err
			}
		} else {
			pr.popSkipName()
		}
		pr.winRestart()
		return nil
	}

	prefix := pr.intern(prefixB)
	pr.closeOpen()

	// Raw-copy window activation: every name reachable from this
	// element is in π, so on valid inputs the whole subtree projects to
	// itself and its canonical spans can be copied through.
	if !pr.win && pr.opts.RawCopy && flags&dtd.RawCopy != 0 {
		pr.win = true
		tokRel = 0 // mark already sits at this token's '<'
	}

	// Lazy tag rendering: while the tag stays canonical its rendering is
	// exactly the raw input span [tokRel, ...), so nothing is materialised
	// into tagBuf — in a raw-copy window the bytes ride the window, and
	// outside one they are written straight from the scanner's buffer. At
	// the first deviation, demote copies the still-canonical head of the
	// span into tagBuf and kept attributes append canonically from there.
	canonical := len(prefixB) == 0
	pr.tagBuf = pr.tagBuf[:0]
	demote := func(boundaryRel int) {
		canonical = false
		pr.tagBuf = append(pr.tagBuf[:0], s.buf[s.mark+tokRel:s.mark+boundaryRel]...)
	}
	if !canonical {
		// The prefix is dropped in canonical output, so the raw span was
		// never equal to the rendering; start tagBuf from scratch.
		pr.tagBuf = append(pr.tagBuf, '<')
		pr.tagBuf = append(pr.tagBuf, info.Tag...)
	}

	if pr.opts.Validate {
		decl := pr.p.Attrs(sym)
		if cap(pr.seen) < len(decl) {
			pr.seen = make([]bool, len(decl))
		}
		pr.seen = pr.seen[:len(decl)]
		for i := range pr.seen {
			pr.seen[i] = false
		}
	}

	empty := false
	for {
		preSpace := s.pos - s.mark
		s.space()
		spaceLen := (s.pos - s.mark) - preSpace
		b, ok := s.getc()
		if !ok {
			return s.readErr()
		}
		if b == '/' {
			if canonical && spaceLen != 0 {
				demote(preSpace)
			}
			b2, ok := s.getc()
			if !ok {
				return s.readErr()
			}
			if b2 != '>' {
				return errSyntax("expected /> in element")
			}
			empty = true
			break
		}
		if b == '>' {
			if canonical && spaceLen != 0 {
				demote(preSpace)
			}
			break
		}
		s.ungetc()
		// attrCanon tracks whether this attribute's raw bytes (from
		// preSpace) are already its canonical rendering.
		attrCanon := spaceLen == 1 && s.buf[s.mark+preSpace] == ' '
		anRel := s.pos - s.mark
		ok, err := s.readName()
		if err != nil {
			return err
		}
		if !ok {
			return errSyntax("expected attribute name in element")
		}
		anEndRel := s.pos - s.mark
		if !s.checkName(s.buf[s.mark+anRel : s.mark+anEndRel]) {
			return errSyntax("invalid XML name: " + string(s.buf[s.mark+anRel:s.mark+anEndRel]))
		}
		eqRel := s.pos - s.mark
		s.space()
		if s.pos-s.mark != eqRel {
			attrCanon = false
		}
		b, ok = s.getc()
		if !ok {
			return s.readErr()
		}
		if b != '=' {
			return errSyntax("attribute name without = in element")
		}
		qRel := s.pos - s.mark
		s.space()
		if s.pos-s.mark != qRel {
			attrCanon = false
		}
		qb, ok := s.getc()
		if !ok {
			return s.readErr()
		}
		if qb != '"' && qb != '\'' {
			return errSyntax("unquoted or missing attribute value in element")
		}
		if qb != '"' {
			attrCanon = false
		}
		var vinfo textInfo
		pr.attrVal, vinfo, err = s.text(pr.attrVal[:0], int(qb), false)
		if err != nil {
			return err
		}
		if !vinfo.verbatim {
			attrCanon = false
		}

		// Re-derive the name from its offsets: the value decode may
		// have slid the buffer.
		aname := s.buf[s.mark+anRel : s.mark+anEndRel]
		aprefix, alocal, okn := splitName(aname)
		if !okn {
			return errSyntax("expected attribute name in element")
		}
		decl := pr.p.Attrs(sym)
		api := -1
		for i := range decl {
			if string(alocal) == decl[i].Attr {
				api = i
				break
			}
		}
		if pr.opts.Validate && api >= 0 {
			pr.seen[api] = true
		}
		if string(aprefix) == "xmlns" || string(alocal) == "xmlns" {
			if canonical {
				demote(preSpace)
			}
			continue
		}
		if pr.opts.Validate {
			if api < 0 {
				return fmt.Errorf("undeclared attribute %q on %s", alocal, info.Tag)
			}
			ad := decl[api].Def
			if len(ad.Enum) > 0 && !inEnum(ad.Enum, pr.attrVal) {
				return fmt.Errorf("attribute %q on %s has value %q outside its enumeration", alocal, info.Tag, pr.attrVal)
			}
		}
		keep := false
		if api >= 0 {
			keep = decl[api].Keep
		} else {
			keep = pr.p.KeepExtraAttr(sym, alocal)
		}
		if !keep {
			if canonical {
				demote(preSpace)
			}
			continue
		}
		if len(aprefix) != 0 {
			attrCanon = false
		}
		if canonical && attrCanon {
			continue // the raw span already carries this attribute canonically
		}
		if canonical {
			demote(preSpace)
		}
		pr.tagBuf = append(pr.tagBuf, ' ')
		pr.tagBuf = append(pr.tagBuf, alocal...)
		pr.tagBuf = append(pr.tagBuf, '=', '"')
		pr.tagBuf = appendEscapedAttr(pr.tagBuf, pr.attrVal)
		pr.tagBuf = append(pr.tagBuf, '"')
	}

	if pr.opts.Validate {
		decl := pr.p.Attrs(sym)
		for i := range decl {
			if decl[i].Def.Required && !pr.seen[i] {
				return fmt.Errorf("missing required attribute %q on %s", decl[i].Def.Attr, info.Tag)
			}
		}
	}

	pr.stack = append(pr.stack, frame{sym: sym, prefix: prefix, state: info.Dense.Start(), aut: info.Dense})
	if len(pr.stack) > pr.st.MaxDepth {
		pr.st.MaxDepth = len(pr.stack)
	}
	if pr.win && pr.winDepth == 0 {
		pr.winDepth = len(pr.stack)
	}

	if empty {
		// The decoder synthesizes the end element immediately.
		if pr.opts.Validate {
			top := pr.stack[len(pr.stack)-1]
			if !top.aut.Accepting(top.state) {
				return fmt.Errorf("content of %s is incomplete (model %s)", info.Name, info.Def.Content)
			}
		}
		pr.stack = pr.stack[:len(pr.stack)-1]
		pr.st.ElementsOut++
		if pr.win {
			if canonical {
				pr.maybeSlide()
			} else {
				pr.flushWindowUpTo(tokRel)
				pr.em.lit(pr.tagBuf)
				pr.em.litString("/>")
				pr.winRestart()
			}
			if len(pr.stack) < pr.winDepth {
				pr.closeWindow()
				pr.winDepth = 0
			}
		} else if canonical {
			pr.em.raw(s.buf, s.mark+tokRel, s.pos)
		} else {
			pr.em.lit(pr.tagBuf)
			pr.em.litString("/>")
		}
		return nil
	}

	pr.open = true
	if pr.win {
		if canonical {
			pr.openInWin = true
			pr.openRel = (s.pos - s.mark) - 1
			pr.maybeSlide()
		} else {
			pr.flushWindowUpTo(tokRel)
			pr.em.lit(pr.tagBuf)
			pr.openInWin = false
			pr.winRestart()
		}
	} else if canonical {
		// The trailing '>' stays deferred (closeOpen) so the element can
		// still self-close in the output.
		pr.em.raw(s.buf, s.mark+tokRel, s.pos-1)
	} else {
		pr.em.lit(pr.tagBuf)
	}
	return nil
}

// endTag handles an end tag; "</" is consumed and the mark is at '<'.
func (pr *pruner) endTag(tokRel int) error {
	s := pr.s
	nameRel := s.pos - s.mark
	ok, err := s.readName()
	if err != nil {
		return err
	}
	if !ok {
		return errSyntax("expected element name after </")
	}
	nameEndRel := s.pos - s.mark
	preSpace := s.pos - s.mark
	s.space()
	spaceLen := (s.pos - s.mark) - preSpace
	b, ok := s.getc()
	if !ok {
		return s.readErr()
	}
	if b != '>' {
		return errSyntax("invalid characters between </" +
			string(s.buf[s.mark+nameRel:s.mark+nameEndRel]) + " and >")
	}
	name := s.buf[s.mark+nameRel : s.mark+nameEndRel]
	if !s.checkName(name) {
		return errSyntax("invalid XML name: " + string(name))
	}
	prefixB, local, okn := splitName(name)
	if !okn {
		return errSyntax("expected element name after </")
	}
	if err := pr.flushText(); err != nil {
		return err
	}
	if len(pr.stack) == 0 {
		return fmt.Errorf("unbalanced end element %s", local)
	}
	top := pr.stack[len(pr.stack)-1]
	info := pr.p.Syms.Info(top.sym)
	if string(local) != info.Tag || string(prefixB) != top.prefix {
		return fmt.Errorf("element <%s> closed by </%s>", info.Tag, name)
	}
	if pr.opts.Validate && !top.aut.Accepting(top.state) {
		return fmt.Errorf("content of %s is incomplete (model %s)", info.Name, info.Def.Content)
	}
	pr.stack = pr.stack[:len(pr.stack)-1]
	pr.st.ElementsOut++

	if pr.open {
		pr.open = false
		if pr.win {
			pr.flushWindowUpTo(tokRel)
			pr.em.litString("/>")
			pr.winRestart()
		} else {
			pr.em.litString("/>")
		}
		pr.openInWin = false
	} else if pr.win {
		if len(prefixB) == 0 && spaceLen == 0 {
			pr.maybeSlide()
		} else {
			pr.flushWindowUpTo(tokRel)
			pr.em.litString("</")
			pr.em.litString(info.Tag)
			pr.em.litByte('>')
			pr.winRestart()
		}
	} else if len(prefixB) == 0 && spaceLen == 0 {
		pr.em.raw(s.buf, s.mark+tokRel, s.pos) // raw "</tag>" is canonical
	} else {
		pr.em.litString("</")
		pr.em.litString(info.Tag)
		pr.em.litByte('>')
	}
	if pr.win && len(pr.stack) < pr.winDepth {
		pr.closeWindow()
		pr.winDepth = 0
	}
	return nil
}

func inEnum(enum []string, v []byte) bool {
	for _, e := range enum {
		if string(v) == e {
			return true
		}
	}
	return false
}

// writeEscapedText emits text content with the pruner's escaping
// (matching tree.EscapeText: &, < and > become entities).
func writeEscapedText(em emitter, b []byte) {
	last := 0
	for i := 0; i < len(b); i++ {
		var esc string
		switch b[i] {
		case '&':
			esc = "&amp;"
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		default:
			continue
		}
		em.lit(b[last:i])
		em.litString(esc)
		last = i + 1
	}
	em.lit(b[last:])
}

// appendEscapedAttr appends an attribute value with the pruner's
// escaping (matching tree.EscapeAttr: &, <, > and " become entities).
func appendEscapedAttr(dst, b []byte) []byte {
	for i := 0; i < len(b); i++ {
		switch b[i] {
		case '&':
			dst = append(dst, "&amp;"...)
		case '<':
			dst = append(dst, "&lt;"...)
		case '>':
			dst = append(dst, "&gt;"...)
		case '"':
			dst = append(dst, "&quot;"...)
		default:
			dst = append(dst, b[i])
		}
	}
	return dst
}
