package scan

// Shared-scan multi-projection: one pass of the byte-level scanner
// evaluating N compiled projections simultaneously, producing N
// independent span-gather outputs over the same input buffer.
//
// The projector set is fused into a per-symbol decision table
// (dtd.MultiProjection): per-symbol keep-element / keep-text / per-
// attribute bitmasks over the projectors. A "live set" bitmask is
// threaded through the element stack — bit j set means projector j
// keeps every element on the path, so this region of the document is
// being emitted for j. A child's live set is always a subset of its
// parent's, so the masks shrink monotonically with depth and a subtree
// whose live set is empty is dead for every projector: it is consumed
// once with the existing skip-scan machinery (well-formedness only,
// memchr hot loop), its skipped-node counts distributed to all
// projectors.
//
// Each projector's rendered output is byte-identical to what a serial
// PruneGather with that projector alone would produce. The serial
// pruner's raw-copy windows are not replicated — they are an output
// batching device, not a semantic one: every canonical token is emitted
// here as an input span into the live projectors' SpanLists, and
// adjacent spans merge, so a π-closed subtree still collapses to one
// gather segment per projector. Verbatim text chunks (decoded bytes ==
// raw bytes) are likewise emitted as input spans for the projectors
// keeping them, so kept text is not copied N ways.
//
// Validation is per projector: a serial prune only validates the
// regions it keeps, so with N projectors the verdicts can differ. A
// validation failure kills exactly the projectors whose serial runs
// would have seen it (the emitting-region mask at the failure point, or
// the keeper mask for attribute checks): their error is recorded, their
// bits leave the alive mask, and the scan continues for the rest.
// Syntax and well-formedness errors abort the whole pass — every serial
// run fails on those.

import (
	"fmt"
	"math/bits"
	"sync"

	"xmlproj/internal/dtd"
)

// mframe is one open element of the shared scan.
type mframe struct {
	sym    int32
	prefix string // interned; "" for unprefixed tags
	live   uint64 // projectors keeping every element on this path
	state  int32  // shared content-model DFA state (when validating)
	aut    *dtd.DenseDFA
}

// mpruner is the pooled state of one shared-scan multi-prune. It wraps
// a serial pruner for the scanner and the skip-scan machinery (name
// stack, attribute scratch, the global ElementsIn/TextIn counters) —
// those are projector-independent — and adds the mask-typed mirror of
// the serial pruner's per-element state.
type mpruner struct {
	pr   *pruner
	d    *dtd.DTD
	mp   *dtd.MultiProjection
	opts Options

	outs  []*SpanList
	alive uint64 // projectors not yet killed by a validation error
	errs  []error

	stack   []mframe
	open    uint64 // per-projector deferred start-tag '>'
	sawRoot bool

	runPending bool

	tagBufs [][]byte // per-projector demoted tag renderings
	attrBuf []byte   // shared canonical attr / escaped text / end-tag scratch

	elemsOut, textOut   []int64
	elemsSkip, textSkip []int64
	maxDepth            []int
}

var multiPool = sync.Pool{New: func() any { return &mpruner{pr: &pruner{s: NewScanner(nil)}} }}

// PruneMulti prunes in-memory input against every projector of the
// fused decision table in a single scanner pass. sls must hold one
// SpanList per projector; each is Reset over data and receives that
// projector's output, byte-identical to a serial PruneGather with the
// same projector alone. The returned slices are per projector: errs[j]
// is non-nil when projector j's serial prune would have failed (its
// SpanList contents are then meaningless), and stats[j] mirrors the
// serial prune's counters. Like PruneGather, MaxTokenSize is not
// enforced, and opts.RawCopy is irrelevant (span merging subsumes the
// raw-copy window).
func PruneMulti(sls []*SpanList, data []byte, d *dtd.DTD, mp *dtd.MultiProjection, opts Options) ([]Stats, []error) {
	if len(sls) != mp.N() {
		panic("scan.PruneMulti: len(sls) != mp.N()")
	}
	for _, sl := range sls {
		sl.Reset(data)
	}
	m := multiPool.Get().(*mpruner)
	m.prep(sls, data, d, mp, opts)
	gerr := m.run()
	n := mp.N()
	stats := make([]Stats, n)
	errs := make([]error, n)
	for j := 0; j < n; j++ {
		if m.errs[j] != nil {
			errs[j] = m.errs[j]
		} else {
			errs[j] = gerr
		}
		stats[j] = Stats{
			ElementsIn:      m.pr.st.ElementsIn,
			ElementsOut:     m.elemsOut[j],
			TextIn:          m.pr.st.TextIn,
			TextOut:         m.textOut[j],
			ElementsSkipped: m.elemsSkip[j],
			TextSkipped:     m.textSkip[j],
			MaxDepth:        m.maxDepth[j],
		}
	}
	m.release()
	multiPool.Put(m)
	return stats, errs
}

func (m *mpruner) prep(sls []*SpanList, data []byte, d *dtd.DTD, mp *dtd.MultiProjection, opts Options) {
	pr := m.pr
	pr.s.ResetBytes(data)
	pr.s.SetMaxTokenSize(opts.MaxTokenSize)
	pr.st = Stats{}
	pr.textBuf = pr.textBuf[:0]
	pr.skipBuf = pr.skipBuf[:0]
	pr.skipOffs = pr.skipOffs[:0]
	pr.mode, pr.ctxBase, pr.sp = modeNormal, 0, nil
	m.d, m.mp, m.opts = d, mp, opts
	m.outs = append(m.outs[:0], sls...)
	m.alive = mp.All()
	m.open, m.sawRoot, m.runPending = 0, false, false
	m.stack = m.stack[:0]
	n := mp.N()
	if cap(m.errs) < n {
		m.errs = make([]error, n)
		m.tagBufs = make([][]byte, n)
		m.elemsOut = make([]int64, n)
		m.textOut = make([]int64, n)
		m.elemsSkip = make([]int64, n)
		m.textSkip = make([]int64, n)
		m.maxDepth = make([]int, n)
	}
	m.errs = m.errs[:n]
	m.tagBufs = m.tagBufs[:n]
	m.elemsOut, m.textOut = m.elemsOut[:n], m.textOut[:n]
	m.elemsSkip, m.textSkip = m.elemsSkip[:n], m.textSkip[:n]
	m.maxDepth = m.maxDepth[:n]
	for j := 0; j < n; j++ {
		m.errs[j] = nil
		m.elemsOut[j], m.textOut[j] = 0, 0
		m.elemsSkip[j], m.textSkip[j] = 0, 0
		m.maxDepth[j] = 0
	}
}

// release drops per-prune references so the pool pins neither the
// caller's input nor its span lists. Scratch keeps its capacity.
func (m *mpruner) release() {
	m.pr.s.Reset(nil)
	m.d, m.mp = nil, nil
	for i := range m.outs {
		m.outs[i] = nil
	}
	m.outs = m.outs[:0]
	for i := range m.stack {
		m.stack[i] = mframe{}
	}
	m.stack = m.stack[:0]
	for j := range m.errs {
		m.errs[j] = nil
	}
}

// Mask-fanned emission helpers: one span/lit append per set bit.

func (m *mpruner) rawTo(mask uint64, off, end int) {
	for mask != 0 {
		j := bits.TrailingZeros64(mask)
		mask &^= 1 << uint(j)
		m.outs[j].raw(nil, off, end)
	}
}

func (m *mpruner) litTo(mask uint64, p []byte) {
	for mask != 0 {
		j := bits.TrailingZeros64(mask)
		mask &^= 1 << uint(j)
		m.outs[j].lit(p)
	}
}

func (m *mpruner) litStringTo(mask uint64, s string) {
	for mask != 0 {
		j := bits.TrailingZeros64(mask)
		mask &^= 1 << uint(j)
		m.outs[j].litString(s)
	}
}

func (m *mpruner) litByteTo(mask uint64, c byte) {
	for mask != 0 {
		j := bits.TrailingZeros64(mask)
		mask &^= 1 << uint(j)
		m.outs[j].litByte(c)
	}
}

func (m *mpruner) addTo(counts []int64, mask uint64, n int64) {
	for mask != 0 {
		j := bits.TrailingZeros64(mask)
		mask &^= 1 << uint(j)
		counts[j] += n
	}
}

// kill records err for every projector in mask and removes them from
// the alive set. Their outputs are abandoned — the caller discards the
// SpanList of any projector with a non-nil error.
func (m *mpruner) kill(mask uint64, err error) {
	mask &= m.alive
	for mk := mask; mk != 0; {
		j := bits.TrailingZeros64(mk)
		mk &^= 1 << uint(j)
		m.errs[j] = err
	}
	m.alive &^= mask
	m.open &^= mask
}

// closeOpen commits pending start-tag '>'s for the projectors in mask.
func (m *mpruner) closeOpen(mask uint64) {
	pend := m.open & mask
	if pend == 0 {
		return
	}
	m.open &^= pend
	m.litByteTo(pend, '>')
}

func (m *mpruner) run() error {
	s := m.pr.s
	for m.alive != 0 {
		tokStart := s.pos
		b, ok := s.getc()
		if !ok {
			if !s.atEOF() {
				return s.rerr
			}
			break
		}
		if b != '<' {
			s.ungetc()
			if err := m.chunk(tokStart, false); err != nil {
				return err
			}
			continue
		}
		b2, ok := s.getc()
		if !ok {
			return s.readErr()
		}
		switch b2 {
		case '/':
			if err := m.endTag(tokStart); err != nil {
				return err
			}
		case '?':
			if err := s.skipPI(); err != nil {
				return err
			}
		case '!':
			b3, ok := s.getc()
			if !ok {
				return s.readErr()
			}
			switch b3 {
			case '-':
				b4, ok := s.getc()
				if !ok {
					return s.readErr()
				}
				if b4 != '-' {
					return errSyntax("invalid sequence <!- not part of <!--")
				}
				if err := s.skipComment(); err != nil {
					return err
				}
			case '[':
				if err := s.expectCDATA(); err != nil {
					return err
				}
				if err := m.chunk(s.pos, true); err != nil {
					return err
				}
			default:
				if err := s.skipDirective(); err != nil {
					return err
				}
			}
		default:
			s.ungetc()
			if err := m.startTag(tokStart); err != nil {
				return err
			}
		}
	}
	if m.alive == 0 {
		// Every projector has already failed the way its serial run
		// would; the rest of the input is irrelevant.
		return nil
	}
	if len(m.stack) != 0 {
		top := m.stack[len(m.stack)-1]
		return fmt.Errorf("unterminated element %s", m.mp.Syms.Info(top.sym).Name)
	}
	if !m.sawRoot {
		return fmt.Errorf("no root element in input")
	}
	return nil
}

// chunk folds one character-data chunk (or CDATA body) into the current
// logical text run. A verbatim chunk whose run has no earlier decoded
// bytes pending is emitted immediately as an input span for the
// projectors keeping this element's text — its raw bytes equal the
// escaped output — instead of being copied into the run buffer.
func (m *mpruner) chunk(chunkStart int, cdata bool) error {
	s := m.pr.s
	depth := len(m.stack)
	var dst []byte
	prevLen := 0
	if depth == 0 {
		dst = m.pr.attrVal[:0]
	} else {
		dst = m.pr.textBuf
		prevLen = len(dst)
	}
	out, info, err := s.text(dst, -1, cdata)
	if cdata {
		// CDATA bodies are re-escaped on output, never copied raw.
		info.verbatim = false
	}
	if depth == 0 {
		// Text outside the root is tokenized and validated but ignored,
		// exactly like the serial pruner.
		m.pr.attrVal = out[:0]
		return err
	}
	if err != nil {
		m.pr.textBuf = out[:prevLen]
		return err
	}
	if info.ws {
		m.pr.textBuf = out[:prevLen]
		return nil
	}
	m.runPending = true
	top := &m.stack[depth-1]
	keep := top.live & m.alive & m.mp.KeepText(top.sym)
	if keep == 0 {
		// No surviving projector keeps this element's text: the run only
		// needs its counters and placement validation, not its bytes.
		// (Masks shrink monotonically, so keep is still 0 at flush.)
		m.pr.textBuf = out[:prevLen]
		return nil
	}
	if info.verbatim && prevLen == 0 {
		// The raw bytes are exactly the canonical output and nothing
		// earlier in this run is pending in the buffer (which a later
		// flush would reorder behind these bytes).
		m.closeOpen(keep)
		m.rawTo(keep, chunkStart, s.pos)
		m.pr.textBuf = out[:prevLen]
		return nil
	}
	m.pr.textBuf = out
	return nil
}

// flushText ends the current logical text run: counts it (globally and
// per dead-region projector), validates its placement for the live
// projectors, and emits the escaped remainder to the keepers.
func (m *mpruner) flushText() error {
	if !m.runPending {
		return nil
	}
	m.runPending = false
	m.pr.st.TextIn++
	top := &m.stack[len(m.stack)-1]
	if sk := m.alive &^ top.live; sk != 0 {
		m.addTo(m.textSkip, sk, 1)
	}
	live := top.live & m.alive
	if m.opts.Validate && live != 0 {
		next := top.aut.NextText(top.state)
		if next < 0 {
			m.kill(live, fmt.Errorf("text content not allowed in %s", m.mp.Syms.Info(top.sym).Name))
			m.pr.textBuf = m.pr.textBuf[:0]
			return nil
		}
		top.state = next
	}
	if keep := live & m.alive & m.mp.KeepText(top.sym); keep != 0 {
		m.closeOpen(keep)
		if len(m.pr.textBuf) > 0 {
			m.attrBuf = appendEscapedText(m.attrBuf[:0], m.pr.textBuf)
			m.litTo(keep, m.attrBuf)
		}
		m.addTo(m.textOut, keep, 1)
	}
	m.pr.textBuf = m.pr.textBuf[:0]
	return nil
}

// skipAll consumes the content and end tag of the current discarded
// element — its full name already sits on the skip name stack — and
// distributes the skipped-node counts to every surviving projector:
// each one's serial run consumes exactly this region with skipScan,
// either from this element or from a shallower discarded ancestor.
func (m *mpruner) skipAll() error {
	preE, preT := m.pr.st.ElementsSkipped, m.pr.st.TextSkipped
	if err := m.pr.skipScan(); err != nil {
		return err
	}
	if d := m.pr.st.ElementsSkipped - preE; d != 0 {
		m.addTo(m.elemsSkip, m.alive, d)
	}
	if d := m.pr.st.TextSkipped - preT; d != 0 {
		m.addTo(m.textSkip, m.alive, d)
	}
	return nil
}

// startTag handles a start (or empty-element) tag; the '<' is consumed
// and tokStart is its absolute offset.
func (m *mpruner) startTag(tokStart int) error {
	s := m.pr.s
	nameOff := s.pos
	ok, err := s.readName()
	if err != nil {
		return err
	}
	if !ok {
		return errSyntax("expected element name after <")
	}
	nameEnd := s.pos
	name := s.buf[nameOff:nameEnd]
	if !s.checkName(name) {
		return errSyntax("invalid XML name: " + string(name))
	}
	prefixB, local, okn := splitName(name)
	if !okn {
		return errSyntax("expected element name after <")
	}
	if err := m.flushText(); err != nil {
		return err
	}
	m.pr.st.ElementsIn++
	m.sawRoot = true
	// P: projectors for which this element sits in an emitting region.
	// The rest are inside a subtree their serial runs consume with
	// skipScan — no symbol lookup, no validation, and this element
	// counts as skipped for them. (By the serial contract a discard
	// root is counted skipped only for projectors it is *inside* a
	// skipped region of, not for the ones discarding it right here.)
	var P uint64
	if len(m.stack) == 0 {
		P = m.alive
	} else {
		P = m.stack[len(m.stack)-1].live & m.alive
	}
	if sk := m.alive &^ P; sk != 0 {
		m.addTo(m.elemsSkip, sk, 1)
	}
	var info *dtd.SymInfo
	var K uint64
	sym, found := m.mp.Syms.Lookup(local)
	if !found {
		m.kill(P, fmt.Errorf("element %q not declared in DTD", local))
	} else {
		info = m.mp.Syms.Info(sym)
		if m.opts.Validate && P != 0 {
			if len(m.stack) == 0 {
				if info.Name != m.d.Root {
					m.kill(P, fmt.Errorf("root element is %s, DTD requires %s", info.Name, m.d.Root))
					P = 0
				}
			} else {
				top := &m.stack[len(m.stack)-1]
				next := top.aut.Next(top.state, sym)
				if next < 0 {
					m.kill(P, fmt.Errorf("element %s not allowed here in content of %s",
						info.Name, m.mp.Syms.Info(top.sym).Name))
					P = 0
				} else {
					top.state = next
				}
			}
		}
		K = P & m.alive & m.mp.KeepElem(sym)
	}

	if K == 0 {
		// Dead for every surviving projector: one skip pass over the
		// tag and subtree, exactly like the serial discard path.
		if m.alive == 0 {
			return nil
		}
		m.pr.pushSkipName(name)
		empty, err := m.pr.skipAttrs()
		if err != nil {
			return err
		}
		if !empty {
			return m.skipAll()
		}
		m.pr.popSkipName()
		return nil
	}

	prefix := m.pr.intern(prefixB)
	m.closeOpen(K)

	// Lazy tag rendering, masked: canonMask holds the keepers whose
	// rendering so far is exactly the raw span [tokStart, ...). At a
	// projector's first deviation it is demoted — the still-canonical
	// head of the span is copied into its tag buffer and kept attributes
	// append canonically from there. The per-attribute parse runs once;
	// only the keep decisions differ across projectors.
	canonMask := uint64(0)
	if len(prefixB) == 0 {
		canonMask = K
	} else {
		// The prefix is dropped in canonical output, so no raw span was
		// ever equal to any keeper's rendering.
		for mk := K; mk != 0; {
			j := bits.TrailingZeros64(mk)
			mk &^= 1 << uint(j)
			m.tagBufs[j] = append(m.tagBufs[j][:0], '<')
			m.tagBufs[j] = append(m.tagBufs[j], info.Tag...)
		}
	}
	demote := func(mask uint64, boundary int) {
		for mk := mask; mk != 0; {
			j := bits.TrailingZeros64(mk)
			mk &^= 1 << uint(j)
			m.tagBufs[j] = append(m.tagBufs[j][:0], s.buf[tokStart:boundary]...)
		}
		canonMask &^= mask
	}

	decl := m.mp.Attrs(sym)
	if m.opts.Validate {
		if cap(m.pr.seen) < len(decl) {
			m.pr.seen = make([]bool, len(decl))
		}
		m.pr.seen = m.pr.seen[:len(decl)]
		for i := range m.pr.seen {
			m.pr.seen[i] = false
		}
	}

	empty := false
	for {
		preSpace := s.pos
		s.space()
		spaceLen := s.pos - preSpace
		b, ok := s.getc()
		if !ok {
			return s.readErr()
		}
		if b == '/' {
			if spaceLen != 0 && canonMask != 0 {
				demote(canonMask, preSpace)
			}
			b2, ok := s.getc()
			if !ok {
				return s.readErr()
			}
			if b2 != '>' {
				return errSyntax("expected /> in element")
			}
			empty = true
			break
		}
		if b == '>' {
			if spaceLen != 0 && canonMask != 0 {
				demote(canonMask, preSpace)
			}
			break
		}
		s.ungetc()
		// attrCanon tracks whether this attribute's raw bytes (from
		// preSpace) are already its canonical rendering — a projector-
		// independent property of the input.
		attrCanon := spaceLen == 1 && s.buf[preSpace] == ' '
		anOff := s.pos
		ok, err := s.readName()
		if err != nil {
			return err
		}
		if !ok {
			return errSyntax("expected attribute name in element")
		}
		anEnd := s.pos
		if !s.checkName(s.buf[anOff:anEnd]) {
			return errSyntax("invalid XML name: " + string(s.buf[anOff:anEnd]))
		}
		eqOff := s.pos
		s.space()
		if s.pos != eqOff {
			attrCanon = false
		}
		b, ok = s.getc()
		if !ok {
			return s.readErr()
		}
		if b != '=' {
			return errSyntax("attribute name without = in element")
		}
		qOff := s.pos
		s.space()
		if s.pos != qOff {
			attrCanon = false
		}
		qb, ok := s.getc()
		if !ok {
			return s.readErr()
		}
		if qb != '"' && qb != '\'' {
			return errSyntax("unquoted or missing attribute value in element")
		}
		if qb != '"' {
			attrCanon = false
		}
		var vinfo textInfo
		m.pr.attrVal, vinfo, err = s.text(m.pr.attrVal[:0], int(qb), false)
		if err != nil {
			return err
		}
		if !vinfo.verbatim {
			attrCanon = false
		}
		aname := s.buf[anOff:anEnd]
		aprefix, alocal, okn := splitName(aname)
		if !okn {
			return errSyntax("expected attribute name in element")
		}
		api := -1
		for i := range decl {
			if string(alocal) == decl[i].Attr {
				api = i
				break
			}
		}
		if m.opts.Validate && api >= 0 {
			m.pr.seen[api] = true
		}
		if string(aprefix) == "xmlns" || string(alocal) == "xmlns" {
			if canonMask != 0 {
				demote(canonMask, preSpace)
			}
			continue
		}
		if m.opts.Validate {
			// Only the projectors keeping this element validate its
			// attributes — a discarding serial run skipAttrs past them.
			if vk := K & m.alive; vk != 0 {
				if api < 0 {
					m.kill(vk, fmt.Errorf("undeclared attribute %q on %s", alocal, info.Tag))
				} else if ad := decl[api].Def; len(ad.Enum) > 0 && !inEnum(ad.Enum, m.pr.attrVal) {
					m.kill(vk, fmt.Errorf("attribute %q on %s has value %q outside its enumeration", alocal, info.Tag, m.pr.attrVal))
				}
			}
		}
		var keepMask uint64
		if api >= 0 {
			keepMask = decl[api].Keep
		} else {
			keepMask = m.mp.KeepExtraAttr(sym, alocal)
		}
		keepMask &= K
		// Keepers dropping this attribute can no longer ride the raw span.
		if dm := canonMask &^ keepMask; dm != 0 {
			demote(dm, preSpace)
		}
		if len(aprefix) != 0 {
			attrCanon = false
		}
		if !attrCanon && canonMask != 0 {
			demote(canonMask, preSpace)
		}
		// Still-canonical keepers carry the attribute inside their raw
		// span; the demoted ones get its canonical rendering appended
		// (built once, shared).
		if appendMask := keepMask &^ canonMask; appendMask != 0 {
			m.attrBuf = append(m.attrBuf[:0], ' ')
			m.attrBuf = append(m.attrBuf, alocal...)
			m.attrBuf = append(m.attrBuf, '=', '"')
			m.attrBuf = appendEscapedAttr(m.attrBuf, m.pr.attrVal)
			m.attrBuf = append(m.attrBuf, '"')
			for mk := appendMask; mk != 0; {
				j := bits.TrailingZeros64(mk)
				mk &^= 1 << uint(j)
				m.tagBufs[j] = append(m.tagBufs[j], m.attrBuf...)
			}
		}
	}

	if m.opts.Validate {
		if vk := K & m.alive; vk != 0 {
			for i := range decl {
				if decl[i].Def.Required && !m.pr.seen[i] {
					m.kill(vk, fmt.Errorf("missing required attribute %q on %s", decl[i].Def.Attr, info.Tag))
					break
				}
			}
		}
	}

	K &= m.alive
	if K == 0 {
		// Every keeper died mid-tag. The tag is already consumed; the
		// content, if any, is dead for whoever is left.
		if m.alive == 0 || empty {
			return nil
		}
		m.pr.pushSkipName(name)
		return m.skipAll()
	}

	m.stack = append(m.stack, mframe{sym: sym, prefix: prefix, live: K, state: info.Dense.Start(), aut: info.Dense})
	depth := len(m.stack)
	// A projector in K is, by the live-set prefix property, live in
	// every frame below — so this shared depth is its serial depth.
	for mk := K; mk != 0; {
		j := bits.TrailingZeros64(mk)
		mk &^= 1 << uint(j)
		if depth > m.maxDepth[j] {
			m.maxDepth[j] = depth
		}
	}

	if empty {
		if m.opts.Validate {
			top := m.stack[depth-1]
			if !top.aut.Accepting(top.state) {
				m.kill(K, fmt.Errorf("content of %s is incomplete (model %s)", info.Name, info.Def.Content))
			}
		}
		m.stack = m.stack[:depth-1]
		if emit := K & m.alive; emit != 0 {
			m.addTo(m.elemsOut, emit, 1)
			if cm := canonMask & emit; cm != 0 {
				m.rawTo(cm, tokStart, s.pos)
			}
			for mk := emit &^ canonMask; mk != 0; {
				j := bits.TrailingZeros64(mk)
				mk &^= 1 << uint(j)
				m.outs[j].lit(m.tagBufs[j])
				m.outs[j].litString("/>")
			}
		}
		return nil
	}

	if emit := K & m.alive; emit != 0 {
		// The trailing '>' stays deferred per projector (closeOpen) so
		// the element can still self-close in that projector's output.
		if cm := canonMask & emit; cm != 0 {
			m.rawTo(cm, tokStart, s.pos-1)
		}
		for mk := emit &^ canonMask; mk != 0; {
			j := bits.TrailingZeros64(mk)
			mk &^= 1 << uint(j)
			m.outs[j].lit(m.tagBufs[j])
		}
		m.open |= emit
	}
	return nil
}

// endTag handles an end tag; "</" is consumed and tokStart is the
// absolute offset of '<'.
func (m *mpruner) endTag(tokStart int) error {
	s := m.pr.s
	nameOff := s.pos
	ok, err := s.readName()
	if err != nil {
		return err
	}
	if !ok {
		return errSyntax("expected element name after </")
	}
	nameEnd := s.pos
	preSpace := s.pos
	s.space()
	spaceLen := s.pos - preSpace
	b, ok := s.getc()
	if !ok {
		return s.readErr()
	}
	if b != '>' {
		return errSyntax("invalid characters between </" +
			string(s.buf[nameOff:nameEnd]) + " and >")
	}
	name := s.buf[nameOff:nameEnd]
	if !s.checkName(name) {
		return errSyntax("invalid XML name: " + string(name))
	}
	prefixB, local, okn := splitName(name)
	if !okn {
		return errSyntax("expected element name after </")
	}
	if err := m.flushText(); err != nil {
		return err
	}
	if len(m.stack) == 0 {
		return fmt.Errorf("unbalanced end element %s", local)
	}
	top := m.stack[len(m.stack)-1]
	info := m.mp.Syms.Info(top.sym)
	if string(local) != info.Tag || string(prefixB) != top.prefix {
		// skipScan enforces end-tag matching too, so every serial run
		// fails here: a whole-pass error, like the other syntax errors.
		return fmt.Errorf("element <%s> closed by </%s>", info.Tag, name)
	}
	if live := top.live & m.alive; live != 0 && m.opts.Validate && !top.aut.Accepting(top.state) {
		m.kill(live, fmt.Errorf("content of %s is incomplete (model %s)", info.Name, info.Def.Content))
	}
	m.stack = m.stack[:len(m.stack)-1]
	live := top.live & m.alive
	if live == 0 {
		return nil
	}
	m.addTo(m.elemsOut, live, 1)
	op := m.open & live
	if op != 0 {
		m.open &^= op
		m.litStringTo(op, "/>")
	}
	if closed := live &^ op; closed != 0 {
		if len(prefixB) == 0 && spaceLen == 0 {
			m.rawTo(closed, tokStart, s.pos) // raw "</tag>" is canonical
		} else {
			m.attrBuf = append(m.attrBuf[:0], '<', '/')
			m.attrBuf = append(m.attrBuf, info.Tag...)
			m.attrBuf = append(m.attrBuf, '>')
			m.litTo(closed, m.attrBuf)
		}
	}
	return nil
}

// appendEscapedText appends text content with the pruner's escaping
// (matching writeEscapedText: &, < and > become entities).
func appendEscapedText(dst, b []byte) []byte {
	for i := 0; i < len(b); i++ {
		switch b[i] {
		case '&':
			dst = append(dst, "&amp;"...)
		case '<':
			dst = append(dst, "&lt;"...)
		case '>':
			dst = append(dst, "&gt;"...)
		default:
			dst = append(dst, b[i])
		}
	}
	return dst
}
