package scan

import (
	"bufio"
	"errors"
	"fmt"
	"strings"
	"testing"

	"xmlproj/internal/dtd"
)

const siteDTD = `
<!ELEMENT site (regions, people?)>
<!ELEMENT regions (item*)>
<!ELEMENT item (name, note*, item*)>
<!ATTLIST item id CDATA #REQUIRED featured (yes|no) "no">
<!ELEMENT name (#PCDATA)>
<!ELEMENT note (#PCDATA)>
<!ELEMENT people (person*)>
<!ELEMENT person (name)>
<!ATTLIST person id CDATA #REQUIRED>
`

func setupSite(t *testing.T, pi dtd.NameSet) (*dtd.DTD, *dtd.Projection) {
	t.Helper()
	d, err := dtd.ParseString(siteDTD, "")
	if err != nil {
		t.Fatal(err)
	}
	return d, d.CompileProjection(pi)
}

// genSite builds a document with one dominant subtree (regions) holding
// nested items, plus a small people section — the shape that forces the
// planner to recurse rather than cut flat at depth 1.
func genSite(items, depth int) string {
	var b strings.Builder
	b.WriteString("<?xml version=\"1.0\"?>\n<!-- corpus -->\n<site><regions>")
	var item func(id, d int)
	item = func(id, d int) {
		fmt.Fprintf(&b, `<item id="i%d"><name>item %d &amp; co</name>`, id, id)
		b.WriteString(`<note>plain note</note><note><![CDATA[raw <note>]]></note>`)
		if d > 0 {
			item(id*10+1, d-1)
			item(id*10+2, d-1)
		}
		b.WriteString(`</item>`)
	}
	for i := 0; i < items; i++ {
		item(i+1, depth)
	}
	b.WriteString(`</regions><people>`)
	for i := 0; i < 5; i++ {
		fmt.Fprintf(&b, `<person id="p%d"><name>person %d</name></person>`, i, i)
	}
	b.WriteString(`</people></site>`)
	return b.String()
}

func pruneParallelStr(t *testing.T, src string, d *dtd.DTD, p *dtd.Projection, popts ParallelOptions) (string, Stats, ParallelDetail, error) {
	t.Helper()
	var sb strings.Builder
	bw := bufio.NewWriter(&sb)
	st, det, err := PruneParallel(bw, []byte(src), d, p, popts)
	if err == nil {
		err = bw.Flush()
	}
	return sb.String(), st, det, err
}

var siteProjectors = map[string]dtd.NameSet{
	"all": dtd.NewNameSet("site", "regions", "item", "item@id", "item@featured",
		"name", "name#text", "note", "note#text", "people", "person", "person@id"),
	"low": dtd.NewNameSet("site", "regions", "item", "item@id", "name", "name#text"),
	"skip-heavy": dtd.NewNameSet("site", "people", "person", "person@id",
		"name", "name#text"),
	"root-only": dtd.NewNameSet("site"),
}

// TestParallelMatchesSerial is the core differential: for every
// projector, worker count, fragment target and stage-1 chunk size —
// including adversarial one-byte chunks that cut mid-tag, mid-CDATA and
// mid-comment — the parallel pruner's output, stats and verdict must be
// identical to the serial scanner's.
func TestParallelMatchesSerial(t *testing.T) {
	docs := map[string]string{
		"site":  genSite(4, 3),
		"small": `<site><regions><item id="1"><name>n</name></item></regions></site>`,
		"mixed": `<site><regions>` +
			`<item id="1"><name>a&lt;b</name><note>x</note><note>y</note></item>` +
			"<item id='2' featured=\"yes\"><name>n2</name>\n  <note>t</note></item>" +
			`<item id="3"><name><![CDATA[cd]]>tail</name></item>` +
			`</regions><people><person id="p"><name>who</name></person></people></site>`,
		"comments": `<site><regions><item id="1"><name>a<!-- c -->b</name>` +
			`<note>t1</note><?pi data?><note>t2</note></item></regions></site>`,
		"ws": "<site>\n  <regions>\n    <item id=\"1\">\n      <name>n</name>\n    </item>\n  </regions>\n</site>",
	}
	for pname, pi := range siteProjectors {
		d, p := setupSite(t, pi)
		for dname, doc := range docs {
			for _, validate := range []bool{false, true} {
				opts := Options{Validate: validate, RawCopy: true}
				var sb strings.Builder
				bw := bufio.NewWriter(&sb)
				sst, serr := Prune(bw, strings.NewReader(doc), d, p, opts)
				bw.Flush()
				want := sb.String()
				for _, workers := range []int{1, 2, 4, 8} {
					for _, target := range []int{1, 40, 1 << 20} {
						for _, chunk := range []int{1, 17, 64 << 10} {
							got, pst, det, perr := pruneParallelStr(t, doc, d, p, ParallelOptions{
								Options:    opts,
								Workers:    workers,
								ChunkSize:  chunk,
								FragTarget: target,
							})
							id := fmt.Sprintf("%s/%s validate=%v w=%d target=%d chunk=%d (tasks=%d)",
								pname, dname, validate, workers, target, chunk, det.Tasks)
							if (serr == nil) != (perr == nil) {
								t.Fatalf("%s: verdict diverges: serial=%v parallel=%v", id, serr, perr)
							}
							if serr != nil {
								continue
							}
							if got != want {
								t.Fatalf("%s: output diverges\nserial:   %q\nparallel: %q", id, want, got)
							}
							if pst != sst {
								t.Fatalf("%s: stats diverge\nserial:   %+v\nparallel: %+v", id, sst, pst)
							}
						}
					}
				}
			}
		}
	}
}

// TestParallelRecursesDominantSubtree: with a tiny fragment target the
// planner must split the single dominant subtree into many tasks, not
// one per depth-1 child.
func TestParallelRecursesDominantSubtree(t *testing.T) {
	d, p := setupSite(t, siteProjectors["all"])
	doc := genSite(2, 5)
	_, _, det, err := pruneParallelStr(t, doc, d, p, ParallelOptions{
		Options: Options{RawCopy: true}, Workers: 4, FragTarget: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if det.Tasks < 8 {
		t.Fatalf("expected recursion into the dominant subtree, got %d tasks", det.Tasks)
	}
	if det.Fallback {
		t.Fatal("unexpected serial fallback")
	}
}

// TestParallelVerdictParityOnBadDocs: malformed and invalid documents
// must be rejected (or accepted) exactly as the serial scanner decides,
// whatever the fragmentation.
func TestParallelVerdictParityOnBadDocs(t *testing.T) {
	docs := []string{
		``,
		`no xml here`,
		`<site><regions></regions>`, // unterminated root
		`<site><regions></regions></site><site></site>`, // two roots
		`<site><regions><item id="1"></wrong></item></regions></site>`,
		`<site><regions><item id="1"><name>n</name></item></regions></site>trailing`,
		`<site><regions><item id="1"><name>n</name></item></regions>text</site>`,              // text in site content
		`<region><item id="1"/></region>`,                                                     // undeclared root
		`<site><regions><item><name>n</name></item></regions></site>`,                         // missing required attr
		`<site><regions><item id="1" featured="maybe"><name>n</name></item></regions></site>`, // enum
		`<site><regions><item id="1" bogus="x"><name>n</name></item></regions></site>`,        // undeclared attr
		`<site><regions><item id="1"><note>n</note></item></regions></site>`,                  // model violation
		`<site><regions><item id="1"><name>n</name>stray</item></regions></site>`,             // text not allowed
		`<site><regions><item id="1"><name>a &unknown; b</name></item></regions></site>`,      // bad entity
		`<site><regions><item id="1"><name attr="<">n</name></item></regions></site>`,         // '<' in value
		`<site><regions><item id="1"><name>n</name><undeclared/></item></regions></site>`,
	}
	for pname, pi := range siteProjectors {
		d, p := setupSite(t, pi)
		for _, validate := range []bool{false, true} {
			opts := Options{Validate: validate, RawCopy: true}
			for i, doc := range docs {
				var sb strings.Builder
				bw := bufio.NewWriter(&sb)
				_, serr := Prune(bw, strings.NewReader(doc), d, p, opts)
				for _, target := range []int{1, 1 << 20} {
					_, _, _, perr := pruneParallelStr(t, doc, d, p, ParallelOptions{
						Options: opts, Workers: 4, ChunkSize: 11, FragTarget: target,
					})
					if (serr == nil) != (perr == nil) {
						t.Errorf("%s validate=%v doc %d target=%d: serial=%v parallel=%v",
							pname, validate, i, target, serr, perr)
					}
				}
			}
		}
	}
}

// TestParallelMaxTokenSize: an oversized token fails in stage 1 with
// ErrTokenTooLong — before any fragment tries to buffer it — matching
// the serial scanner's verdict.
func TestParallelMaxTokenSize(t *testing.T) {
	d, p := setupSite(t, siteProjectors["all"])
	big := strings.Repeat("x", 3*windowFlushSize)
	doc := `<site><regions><item id="1"><name>` + big + `</name></item></regions></site>`
	cap := 2 * windowFlushSize
	opts := ParallelOptions{Options: Options{RawCopy: true, MaxTokenSize: cap}, Workers: 2}
	_, _, det, err := pruneParallelStr(t, doc, d, p, opts)
	if !errors.Is(err, ErrTokenTooLong) {
		t.Fatalf("got %v, want ErrTokenTooLong", err)
	}
	if det.Fallback {
		t.Fatal("oversized token should fail in stage 1, not fall back")
	}
	var sb strings.Builder
	bw := bufio.NewWriter(&sb)
	_, serr := Prune(bw, strings.NewReader(doc), d, p, opts.Options)
	if !errors.Is(serr, ErrTokenTooLong) {
		t.Fatalf("serial scanner disagrees: %v", serr)
	}
	// A small-cap prune falls back to the serial scanner wholesale.
	smallOpts := ParallelOptions{Options: Options{MaxTokenSize: 1 << 10}, Workers: 2}
	_, _, det, err = pruneParallelStr(t, doc, d, p, smallOpts)
	if !det.Fallback {
		t.Fatal("tiny token cap must use the serial pruner")
	}
	if !errors.Is(err, ErrTokenTooLong) {
		t.Fatalf("fallback verdict: %v", err)
	}
}

// TestParallelFallbackOnUnindexable: structure stage 1 cannot describe
// (e.g. a directive mid-document is fine, but '<' inside a quoted
// attribute value is not) falls back to the serial scanner and inherits
// its verdict.
func TestParallelFallbackOnUnindexable(t *testing.T) {
	d, p := setupSite(t, siteProjectors["all"])
	doc := `<site><regions><item id="<1>"><name>n</name></item></regions></site>`
	_, _, det, perr := pruneParallelStr(t, doc, d, p, ParallelOptions{Workers: 2})
	if !det.Fallback {
		t.Fatal("expected serial fallback")
	}
	var sb strings.Builder
	bw := bufio.NewWriter(&sb)
	_, serr := Prune(bw, strings.NewReader(doc), d, p, Options{})
	if (serr == nil) != (perr == nil) {
		t.Fatalf("fallback verdict diverges: serial=%v parallel=%v", serr, perr)
	}
}

// TestResetBytesRestoresOwnBuffer: after a zero-copy prune the pooled
// scanner must not pin the caller's data.
func TestResetBytesRestoresOwnBuffer(t *testing.T) {
	s := NewScanner(nil)
	own := s.buf
	data := []byte(`<a>text</a>`)
	s.ResetBytes(data)
	if &s.buf[0] != &data[0] {
		t.Fatal("ResetBytes did not alias the input")
	}
	if got := s.Peek(2); string(got) != "<a" {
		t.Fatalf("Peek over aliased data: %q", got)
	}
	s.Reset(strings.NewReader("x"))
	if len(s.buf) != len(own) || cap(s.buf) != cap(own) {
		t.Fatal("Reset did not restore the scanner-owned buffer")
	}
}
