package scan

// Skip-scan: when a start tag's name is not in π, the whole subtree is
// discarded. The scanner still enforces well-formedness — names,
// attribute syntax, entities, character ranges, comment and PI rules,
// end-tag matching — exactly as the decoder path does when it consumes
// the subtree token by token, but nothing is materialised: no symbol
// lookups, no attribute decisions, no output. Only the stats contract
// is maintained (ElementsSkipped and logical TextSkipped runs).

// pushSkipName records a full tag name on the skip name stack (one
// shared buffer; allocation-free in steady state).
func (pr *pruner) pushSkipName(name []byte) {
	pr.skipOffs = append(pr.skipOffs, len(pr.skipBuf))
	pr.skipBuf = append(pr.skipBuf, name...)
}

func (pr *pruner) popSkipName() {
	last := len(pr.skipOffs) - 1
	pr.skipBuf = pr.skipBuf[:pr.skipOffs[last]]
	pr.skipOffs = pr.skipOffs[:last]
}

func (pr *pruner) topSkipName() []byte {
	return pr.skipBuf[pr.skipOffs[len(pr.skipOffs)-1]:]
}

// skipAttrs consumes the rest of a start tag — attributes and the
// closing '>' or '/>' — with syntax-level checks only, reporting
// whether the element was self-closing. Attribute values are decoded
// into scratch (their character content must still validate) and
// discarded.
func (pr *pruner) skipAttrs() (empty bool, err error) {
	s := pr.s
	for {
		s.space()
		b, ok := s.getc()
		if !ok {
			return false, s.readErr()
		}
		if b == '/' {
			b2, ok := s.getc()
			if !ok {
				return false, s.readErr()
			}
			if b2 != '>' {
				return false, errSyntax("expected /> in element")
			}
			return true, nil
		}
		if b == '>' {
			return false, nil
		}
		s.ungetc()
		s.setMark()
		ok, err := s.readName()
		if err != nil {
			s.clearMark()
			return false, err
		}
		if !ok {
			s.clearMark()
			return false, errSyntax("expected attribute name in element")
		}
		nm := s.marked()
		if !s.checkName(nm) {
			err := errSyntax("invalid XML name: " + string(nm))
			s.clearMark()
			return false, err
		}
		if _, _, okn := splitName(nm); !okn {
			s.clearMark()
			return false, errSyntax("expected attribute name in element")
		}
		s.clearMark()
		s.space()
		b, ok = s.getc()
		if !ok {
			return false, s.readErr()
		}
		if b != '=' {
			return false, errSyntax("attribute name without = in element")
		}
		s.space()
		qb, ok := s.getc()
		if !ok {
			return false, s.readErr()
		}
		if qb != '"' && qb != '\'' {
			return false, errSyntax("unquoted or missing attribute value in element")
		}
		pr.attrVal, _, err = s.text(pr.attrVal[:0], int(qb), false)
		if err != nil {
			return false, err
		}
	}
}

// skipScan consumes the content and end tags of the discarded elements
// whose names sit on the skip name stack, counting skipped elements and
// logical text runs. Depth-only scanning with full well-formedness
// checks; memory stays constant. Depth is the name stack itself
// (len(pr.skipOffs)), so a modePipe window boundary can pause the scan
// (errPause) and the pipelined spine can resume it on the next window
// with nothing but the pruner's own state.
func (pr *pruner) skipScan() error {
	s := pr.s
	flush := func() {
		if pr.skipPending {
			pr.st.TextIn++
			pr.st.TextSkipped++
			pr.skipPending = false
		}
	}
	for len(pr.skipOffs) > 0 {
		if pr.sp != nil && pr.sp.at(s.pos) {
			// A delegated range inside this skipped subtree. The range
			// starts at an element tag, where this loop would flush.
			flush()
			if err := pr.applySkipSplice(); err != nil {
				return err
			}
			continue
		}
		b, ok := s.getc()
		if !ok {
			if pr.mode == modePipe && s.atEOF() {
				// Non-final window exhausted at a construct boundary;
				// the next window resumes here.
				return errPause
			}
			return s.readErr()
		}
		if b != '<' {
			s.ungetc()
			var info textInfo
			var err error
			pr.attrVal, info, err = s.text(pr.attrVal[:0], -1, false)
			if err != nil {
				return err
			}
			if !info.ws {
				pr.skipPending = true
			}
			continue
		}
		b2, ok := s.getc()
		if !ok {
			return s.readErr()
		}
		switch b2 {
		case '/':
			flush()
			s.setMark()
			ok, err := s.readName()
			if err != nil {
				s.clearMark()
				return err
			}
			if !ok {
				s.clearMark()
				return errSyntax("expected element name after </")
			}
			nameEnd := s.pos - s.mark
			s.space()
			b, ok = s.getc()
			if !ok {
				s.clearMark()
				return s.readErr()
			}
			if b != '>' {
				err := errSyntax("invalid characters between </" + string(s.buf[s.mark:s.mark+nameEnd]) + " and >")
				s.clearMark()
				return err
			}
			name := s.buf[s.mark : s.mark+nameEnd]
			if !s.checkName(name) {
				err := errSyntax("invalid XML name: " + string(name))
				s.clearMark()
				return err
			}
			if _, _, okn := splitName(name); !okn {
				s.clearMark()
				return errSyntax("expected element name after </")
			}
			if string(name) != string(pr.topSkipName()) {
				err := errSyntax("element <" + string(pr.topSkipName()) + "> closed by </" + string(name) + ">")
				s.clearMark()
				return err
			}
			s.clearMark()
			pr.popSkipName()
		case '?':
			if err := s.skipPI(); err != nil {
				return err
			}
		case '!':
			b3, ok := s.getc()
			if !ok {
				return s.readErr()
			}
			switch b3 {
			case '-':
				b4, ok := s.getc()
				if !ok {
					return s.readErr()
				}
				if b4 != '-' {
					return errSyntax("invalid sequence <!- not part of <!--")
				}
				if err := s.skipComment(); err != nil {
					return err
				}
			case '[':
				if err := s.expectCDATA(); err != nil {
					return err
				}
				var info textInfo
				var err error
				pr.attrVal, info, err = s.text(pr.attrVal[:0], -1, true)
				if err != nil {
					return err
				}
				if !info.ws {
					pr.skipPending = true
				}
			default:
				if err := s.skipDirective(); err != nil {
					return err
				}
			}
		default:
			flush()
			pr.st.ElementsIn++
			pr.st.ElementsSkipped++
			s.ungetc()
			s.setMark()
			ok, err := s.readName()
			if err != nil {
				s.clearMark()
				return err
			}
			if !ok {
				s.clearMark()
				return errSyntax("expected element name after <")
			}
			name := s.marked()
			if !s.checkName(name) {
				err := errSyntax("invalid XML name: " + string(name))
				s.clearMark()
				return err
			}
			if _, _, okn := splitName(name); !okn {
				s.clearMark()
				return errSyntax("expected element name after <")
			}
			pr.pushSkipName(name)
			s.clearMark()
			empty, err := pr.skipAttrs()
			if err != nil {
				return err
			}
			if empty {
				pr.popSkipName()
			}
		}
	}
	return nil
}
