package scan

// Pipelined streaming parallel pruner. The two-stage parallel pruner
// (parallel.go) needs the whole document in memory; this one prunes an
// io.Reader of unknown length under a fixed memory bound by overlapping
// four stages:
//
//	reader  — fills pooled window slabs from src (a bounded ring)
//	indexer — incremental structural indexing (index.StreamIndexer)
//	          plus planning: complete sibling subtrees group into
//	          delegated content ranges, exactly like the batch planner
//	workers — prune each range with the ordinary fragment machinery
//	          (ResetBytesAt over the window's bytes)
//	spine   — the calling goroutine: runs the serial pruner over each
//	          window in order, splicing fragment results in at their
//	          cut points, so output is byte-identical to serial
//
// The window-boundary invariant that makes the spine simple: a
// presented window always ends exactly at the end of a complete
// '<'-construct. Everything after the last complete construct — the
// trailing text run, an incomplete tag — is carried into the next
// window, so no token ever straddles a window and the spine pauses
// only at token boundaries (run's top-of-loop, or skipScan's, which
// returns errPause and resumes on the next window). Cross-window
// pruner state (element stack, DFA states, pending text run, deferred
// '>', skip name stack) simply stays in the pruner, which is re-pointed
// at each window with ResetBytesAt.
//
// Memory: ring depth × window size of pooled slabs, plus the carry
// (bounded by MaxTokenSize — a construct or text run that cannot
// complete within the cap fails exactly like the serial scanner's
// sliding-buffer cap would).

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xmlproj/internal/dtd"
	"xmlproj/internal/index"
)

// DefaultPipelineWindow is the default window size for the pipelined
// pruner.
const DefaultPipelineWindow = 1 << 20

// PipelineOptions configures PrunePipelined.
type PipelineOptions struct {
	Options
	// Workers bounds fragment concurrency; 0 means GOMAXPROCS.
	Workers int
	// WindowSize is the pooled window slab size in bytes (0 =
	// DefaultPipelineWindow). Peak pooled memory is RingDepth windows.
	WindowSize int
	// RingDepth is the number of pooled window slabs in flight
	// (0 = Workers+2, at least 4).
	RingDepth int
	// FragTarget overrides the per-fragment target size in bytes
	// (0 = auto from window size and worker count). Tests use tiny
	// values to force many fragments on small documents.
	FragTarget int
}

// PipelineDetail reports how a pipelined prune was executed.
type PipelineDetail struct {
	// ReadNanos is time spent in src.Read; IndexNanos the incremental
	// index+plan stage; PruneNanos the summed fragment-worker time;
	// EmitNanos the spine's in-order splice-and-emit pass.
	ReadNanos, IndexNanos, PruneNanos, EmitNanos int64
	// Windows is the number of windows presented to the spine; Tasks
	// the number of delegated content ranges; Workers the resolved
	// worker count.
	Windows, Tasks, Workers int
	// PeakWindowBytes is the peak sum of window bytes simultaneously
	// resident between indexing and spine completion — bounded by
	// RingDepth × WindowSize (plus a MaxTokenSize-bounded carry).
	PeakWindowBytes int64
	// Fallback is true when the input was handed to the serial pruner
	// (a token cap too small for the parallel invariants).
	Fallback bool
}

// rawWin is one reader→indexer hand-off: a pooled slab whose payload
// region slab[headroom:headroom+n] holds fresh input bytes. err is the
// terminal read status (io.EOF or a real error) — the reader stops
// after sending it.
type rawWin struct {
	slab []byte
	n    int
	err  error
}

// pipeWin is one indexer→spine window: data is the window's bytes
// (ending at a complete construct unless final or dead), tasks the
// delegated ranges within it, slab the pooled buffer to recycle once
// the spine is done (nil for oversized carry assemblies).
type pipeWin struct {
	slab  []byte
	data  []byte
	tasks []*fragTask
	final bool  // last window: the spine runs modeNormal and end checks
	rerr  error // final window's terminal read status (io.EOF or error)
	dead  bool  // contains a construct the spine is guaranteed to error at
}

// pipeTask pairs a delegated range with the window bytes it indexes
// into.
type pipeTask struct {
	t    *fragTask
	data []byte
}

// pipeCounters are the cross-goroutine stage counters.
type pipeCounters struct {
	readNanos, idxNanos, pruneNanos int64
	windows, tasks                  int64
	resident, peak                  int64
}

func atomicMax(p *int64, v int64) {
	for {
		cur := atomic.LoadInt64(p)
		if v <= cur || atomic.CompareAndSwapInt64(p, cur, v) {
			return
		}
	}
}

// PrunePipelined prunes src with the pipelined streaming parallel
// pruner, writing output byte-identical to Prune's to bw. Memory stays
// bounded by ring depth × window size regardless of document size.
func PrunePipelined(bw *bufio.Writer, src io.Reader, d *dtd.DTD, proj *dtd.Projection, opts PipelineOptions) (Stats, PipelineDetail, error) {
	var det PipelineDetail
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	det.Workers = workers
	maxTok := opts.MaxTokenSize
	if maxTok <= 0 {
		maxTok = DefaultMaxTokenSize
	}
	if maxTok < 2*windowFlushSize {
		// Same rule as the batch parallel pruner: a cap this tight
		// interacts with the serial scanner's buffer growth in ways the
		// per-window bound does not reproduce.
		det.Fallback = true
		st, err := Prune(bw, src, d, proj, opts.Options)
		return st, det, err
	}

	win := opts.WindowSize
	if win <= 0 {
		win = DefaultPipelineWindow
	}
	if win < 256 {
		win = 256
	}
	// The slab's leading headroom receives the previous window's carry,
	// so the common case (small trailing text run) assembles in place
	// with one small copy and the documented bound — ring × window —
	// counts everything.
	headroom := win / 4
	if headroom > 64<<10 {
		headroom = 64 << 10
	}
	payload := win - headroom

	ring := opts.RingDepth
	if ring <= 0 {
		ring = workers + 2
		if ring < 4 {
			ring = 4
		}
	}
	if ring < 2 {
		ring = 2
	}
	target := opts.FragTarget
	if target <= 0 {
		target = win / (2 * workers)
		const minTarget, maxTarget = 16 << 10, 4 << 20
		if target < minTarget {
			target = minTarget
		}
		if target > maxTarget {
			target = maxTarget
		}
	}
	minFrag := target / 8
	if minFrag < 1 {
		minFrag = 1
	}

	c := new(pipeCounters)
	abort := make(chan struct{})
	free := make(chan []byte, ring)
	for i := 0; i < ring; i++ {
		free <- make([]byte, win)
	}
	rawCh := make(chan rawWin)
	taskCh := make(chan pipeTask, 4*workers)
	planCh := make(chan *pipeWin, ring)
	var wg sync.WaitGroup

	// Reader: fill each slab's payload region completely (or to the
	// terminal error) and hand it over. The (0, nil) retry bound
	// mirrors the scanner's own fill.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(rawCh)
		zero := 0
		for {
			var slab []byte
			select {
			case slab = <-free:
			case <-abort:
				return
			}
			n := 0
			var rerr error
			t0 := time.Now()
			for n < payload {
				m, err := src.Read(slab[headroom+n : win])
				n += m
				if err != nil {
					rerr = err
					break
				}
				if m == 0 {
					zero++
					if zero >= 100 {
						rerr = io.ErrNoProgress
						break
					}
				} else {
					zero = 0
				}
			}
			atomic.AddInt64(&c.readNanos, time.Since(t0).Nanoseconds())
			select {
			case rawCh <- rawWin{slab: slab, n: n, err: rerr}:
			case <-abort:
				return
			}
			if rerr != nil {
				return
			}
		}
	}()

	// Indexer + planner: assemble carry+payload, index the window,
	// plan delegated ranges, dispatch them to the workers, then present
	// the window to the spine. Runs until the terminal window (final,
	// dead, or token-cap failure).
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(taskCh)
		defer close(planCh)
		si := index.StreamIndexer{MaxTokenSize: maxTok, Lookup: proj.Syms.Lookup}
		pl := pipePlanner{p: proj, target: target, minFrag: minFrag}
		var carry []byte
		present := func(pw *pipeWin) bool {
			for _, t := range pw.tasks {
				t.ready = make(chan struct{})
				select {
				case taskCh <- pipeTask{t: t, data: pw.data}:
				case <-abort:
					return false
				}
			}
			atomic.AddInt64(&c.windows, 1)
			atomic.AddInt64(&c.tasks, int64(len(pw.tasks)))
			atomicMax(&c.peak, atomic.AddInt64(&c.resident, int64(len(pw.data))))
			select {
			case planCh <- pw:
				return true
			case <-abort:
				return false
			}
		}
		for {
			var rw rawWin
			var ok bool
			select {
			case rw, ok = <-rawCh:
			case <-abort:
				return
			}
			if !ok {
				return
			}
			// Assemble the window: carry + fresh payload.
			var data, slab []byte
			if len(carry) <= headroom {
				start := headroom - len(carry)
				copy(rw.slab[start:headroom], carry)
				data = rw.slab[start : headroom+rw.n]
				slab = rw.slab
			} else {
				// Oversized carry (a construct still incomplete after a
				// whole window): assemble privately and recycle the slab
				// now. Bounded by the MaxTokenSize check below.
				buf := make([]byte, 0, len(carry)+rw.n)
				buf = append(buf, carry...)
				buf = append(buf, rw.slab[headroom:headroom+rw.n]...)
				data = buf
				select {
				case free <- rw.slab:
				case <-abort:
					return
				}
			}
			final := rw.err != nil

			t0 := time.Now()
			w := si.Window(data)
			pw := &pipeWin{slab: slab, data: data, final: final, rerr: rw.err}
			switch {
			case w.Err != nil:
				// Token cap exceeded: surface the serial scanner's
				// verdict through the final-window machinery (the spine
				// hits the preset read error at the window's end).
				pw.final = true
				pw.rerr = fmt.Errorf("%w: %v", ErrTokenTooLong, w.Err)
			case w.Dead:
				// The window contains a construct the serial scanner is
				// guaranteed to reject: stop delegating and let the spine
				// reproduce the exact error (modePipe — it errors before
				// the window ends).
				pw.final = false
				pw.dead = true
			default:
				if final {
					if gap := len(data) - w.Consumed; maxTok > 0 && gap > maxTok && rw.err == io.EOF {
						pw.rerr = fmt.Errorf("%w (%d-byte text run)", ErrTokenTooLong, gap)
					}
				} else {
					// Carry the tail (trailing text + incomplete
					// construct) before the spine can recycle the slab.
					carry = append(carry[:0], data[w.Consumed:]...)
					data = data[:w.Consumed]
					pw.data = data
				}
				pw.tasks = pl.window(w.Entries)
			}
			atomic.AddInt64(&c.idxNanos, time.Since(t0).Nanoseconds())
			if !pw.final && !pw.dead && len(pw.data) == 0 {
				// Nothing completed in this window (giant construct in
				// progress): recycle the slab and keep accumulating.
				if slab != nil {
					select {
					case free <- slab:
					case <-abort:
						return
					}
				}
			} else if !present(pw) {
				return
			}
			if pw.final || pw.dead {
				return
			}
			if maxTok > 0 && len(carry) > maxTok {
				// The carry can never complete within the cap; fail like
				// the serial scanner's sliding-buffer cap.
				present(&pipeWin{
					final: true,
					rerr:  fmt.Errorf("%w (%d bytes)", ErrTokenTooLong, maxTok),
				})
				return
			}
		}
	}()

	// Fragment workers.
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case pt, ok := <-taskCh:
					if !ok {
						return
					}
					t0 := time.Now()
					runTask(pt.data, d, proj, opts.Options, pt.t)
					atomic.AddInt64(&c.pruneNanos, time.Since(t0).Nanoseconds())
					close(pt.t.ready)
				case <-abort:
					return
				}
			}
		}()
	}

	// Spine: the calling goroutine consumes windows in order. Raw-copy
	// windows must not span the per-window scanner re-point, so they
	// stay off on the spine (fragments still use them; their output is
	// byte-identical either way).
	spineOpts := opts.Options
	spineOpts.RawCopy = false
	pr := prunerPool.Get().(*pruner)
	pr.s.ResetBytes(nil)
	pr.prep(d, proj, spineOpts)
	pr.useStream(bw)
	pr.mode = modePipe

	var err error
	var emitNanos int64
	finished := false
	for pw := range planCh {
		pr.s.ResetBytesAt(pw.data, 0, len(pw.data))
		if pw.final {
			pr.mode = modeNormal
			if pw.rerr != nil {
				pr.s.rerr = pw.rerr
			}
		}
		var sp *spliceSet
		if len(pw.tasks) > 0 {
			sp = &spliceSet{tasks: pw.tasks}
		}
		pr.sp = sp
		t0 := time.Now()
		werr := pr.runWindow()
		emitNanos += time.Since(t0).Nanoseconds()
		if werr == errPause {
			werr = nil
		}
		if sp != nil {
			for _, t := range pw.tasks[:sp.i] {
				if t.res.sl != nil {
					putSpanList(t.res.sl)
					t.res.sl = nil
				}
			}
		}
		atomic.AddInt64(&c.resident, -int64(len(pw.data)))
		if pw.slab != nil {
			select {
			case free <- pw.slab:
			default:
			}
		}
		if werr == nil {
			// Desync guards: a dead window must have errored, and every
			// delegated range must have been reached. Both are proven
			// unreachable by the indexer's ground-truth invariant; the
			// guards turn a would-be silent corruption into an error.
			if pw.dead {
				werr = fmt.Errorf("scan: pipelined prune desynchronised (malformed window passed)")
			} else if sp != nil && sp.i < len(pw.tasks) {
				werr = fmt.Errorf("scan: pipelined prune desynchronised (%d unapplied ranges)", len(pw.tasks)-sp.i)
			}
		}
		if werr != nil {
			err = werr
			break
		}
		if pw.final {
			finished = true
			break
		}
	}
	close(abort)
	wg.Wait()
	if err == nil && !finished {
		err = fmt.Errorf("scan: pipelined prune ended without a final window")
	}
	st := pr.st
	pr.release()
	prunerPool.Put(pr)

	det.ReadNanos = atomic.LoadInt64(&c.readNanos)
	det.IndexNanos = atomic.LoadInt64(&c.idxNanos)
	det.PruneNanos = atomic.LoadInt64(&c.pruneNanos)
	det.EmitNanos = emitNanos
	det.Windows = int(atomic.LoadInt64(&c.windows))
	det.Tasks = int(atomic.LoadInt64(&c.tasks))
	det.PeakWindowBytes = atomic.LoadInt64(&c.peak)
	return st, det, err
}

// runWindow processes one pipelined window: resume a skip scan paused
// at the previous window boundary, then run the spine loop. Returns
// errPause when a non-final window ends inside a skipped subtree.
func (pr *pruner) runWindow() error {
	if len(pr.skipOffs) > 0 {
		if err := pr.skipScan(); err != nil {
			return err
		}
	}
	return pr.run()
}

// pipeFrame is one open element on the pipelined planner's stack:
// the element's symbol and whether it (and every ancestor) is kept —
// which decides whether ranges under it delegate as kept fragments or
// skip fragments.
type pipeFrame struct {
	sym  int32
	kept bool
}

// pipePlanner cuts each window's entries into delegated content
// ranges, with the same rules as the batch planner (plan/content in
// parallel.go): complete sibling subtrees group to roughly target
// bytes, dominant subtrees decompose recursively (here: the persistent
// stack), comments and text ride inside whichever range covers them,
// and everything at document level stays on the spine. The stack
// persists across windows — a Start without its End in this window
// pushes a frame the matching End pops windows later.
type pipePlanner struct {
	p       *dtd.Projection
	target  int
	minFrag int
	stack   []pipeFrame
	match   []int
	mstk    []int
}

func (pl *pipePlanner) window(ents []index.Entry) []*fragTask {
	if len(ents) == 0 {
		return nil
	}
	// Pair in-window Start entries with their End entries; unmatched
	// Starts straddle the window end, unmatched Ends close frames from
	// earlier windows.
	match := pl.match[:0]
	for range ents {
		match = append(match, -1)
	}
	pl.match = match
	stk := pl.mstk[:0]
	for i := range ents {
		switch ents[i].Kind {
		case index.Start:
			stk = append(stk, i)
		case index.End:
			if len(stk) > 0 {
				j := stk[len(stk)-1]
				stk = stk[:len(stk)-1]
				match[j] = i
			}
		}
	}
	pl.mstk = stk[:0]

	var tasks []*fragTask
	groupLo, groupHi, acc := -1, -1, 0
	closeAt := func(off int) {
		if groupLo >= 0 && off-groupLo >= pl.minFrag {
			d := len(pl.stack)
			top := pl.stack[d-1]
			tasks = append(tasks, &fragTask{
				lo: groupLo, hi: off,
				skip:    !top.kept,
				ctxSym:  top.sym,
				ctxBase: d,
			})
		}
		groupLo, groupHi, acc = -1, -1, 0
	}
	push := func(e *index.Entry) {
		parentKept := true
		if n := len(pl.stack); n > 0 {
			parentKept = pl.stack[n-1].kept
		}
		kept := parentKept && e.Sym >= 0 && pl.p.Flags(e.Sym)&dtd.KeepElem != 0
		pl.stack = append(pl.stack, pipeFrame{sym: e.Sym, kept: kept})
	}

	i := 0
	for i < len(ents) {
		e := &ents[i]
		switch e.Kind {
		case index.Start:
			m := match[i]
			if m < 0 {
				// Straddles the window end: the spine processes the start
				// tag; the subtree's content decomposes in later windows.
				closeAt(e.Off)
				push(e)
				i++
				continue
			}
			if len(pl.stack) == 0 {
				// Document level: the spine handles root (and any stray
				// sibling) tags; content decomposes one level down.
				push(e)
				i++
				continue
			}
			size := ents[m].End - e.Off
			if acc >= pl.target {
				closeAt(e.Off)
			}
			top := pl.stack[len(pl.stack)-1]
			if size > 2*pl.target && (!top.kept || e.Sym >= 0) {
				// Dominant complete subtree: spine takes its tags, its
				// children group at the next level.
				closeAt(e.Off)
				push(e)
				i++
				continue
			}
			if groupLo < 0 {
				groupLo = e.Off
			}
			acc += size
			groupHi = ents[m].End
			i = m + 1
		case index.StartEmpty:
			if len(pl.stack) == 0 {
				i++
				continue
			}
			if acc >= pl.target {
				closeAt(e.Off)
			}
			if groupLo < 0 {
				groupLo = e.Off
			}
			acc += e.End - e.Off
			groupHi = e.End
			i++
		case index.End:
			// Closes the current context: the group ends before the end
			// tag, which the spine processes.
			closeAt(e.Off)
			if len(pl.stack) > 0 {
				pl.stack = pl.stack[:len(pl.stack)-1]
			}
			i++
		default:
			// Comment/PI/CDATA: rides inside an open group's span (group
			// ranges are contiguous) or falls to the spine.
			i++
		}
	}
	if groupLo >= 0 {
		// Window ends with an open group: cut at the end of the last
		// grouped subtree; trailing non-element entries go to the spine.
		closeAt(groupHi)
	}
	return tasks
}
