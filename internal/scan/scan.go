// Package scan is a byte-level streaming XML scanner purpose-built for
// type-based projection (§6 of the paper: pruning fused with parsing).
// Unlike encoding/xml it materialises nothing: tags, attributes and text
// are handled as sub-slices of an internal sliding read buffer, element
// tags resolve through a byte-keyed symbol table, and projector
// membership is a dense flag array lookup. Subtrees outside π are
// discarded by a validate-only skip scan that never builds tokens, and
// subtrees whose reachable closure is inside π can be copied to the
// output as verbatim byte spans.
//
// The scanner mirrors encoding/xml's strict-mode tokenizer behaviour
// byte for byte (entity rules, \r normalisation, character validation,
// "]]>" rejection, directive nesting), so the two pruning paths accept
// the same documents and produce identical output; the differential
// tests in internal/prune hold it to that.
package scan

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
	"unicode"
	"unicode/utf8"
)

// defaultBufSize is the initial sliding-buffer size. The buffer grows
// only when a single token (one text chunk, one tag) exceeds it, so
// memory stays proportional to token size, not document size.
const defaultBufSize = 64 << 10

// DefaultMaxTokenSize bounds the sliding buffer's growth when the
// caller does not set a limit: a single token (one tag, one text chunk,
// one attribute value) larger than this fails with ErrTokenTooLong
// instead of growing the buffer without bound on hostile input.
const DefaultMaxTokenSize = 8 << 20

// ErrTokenTooLong reports that a single token exceeded the scanner's
// maximum token size.
var ErrTokenTooLong = fmt.Errorf("xml token exceeds the scanner's maximum token size")

// Scanner is the low-level byte source: a sliding buffer over an
// io.Reader with mark-based span retention, plus the tokenization
// primitives shared by the emitting pruner and the skip scanner.
type Scanner struct {
	r        io.Reader
	buf      []byte
	pos      int // next unread byte
	end      int // buf[pos:end] holds valid data
	mark     int // earliest byte that must survive a refill; -1 when none
	rerr     error
	maxToken int // buffer growth cap; 0 means DefaultMaxTokenSize

	// ownBuf preserves the scanner-owned buffer across ResetBytes (which
	// aliases buf to caller data) so Reset can restore it.
	ownBuf []byte

	// nameCache memoises full XML-name validation for the rare names
	// that are not pure ASCII (checked by delegating to encoding/xml,
	// keeping the two paths' notion of a valid name identical).
	nameCache map[string]bool
}

// NewScanner returns a scanner reading from r.
func NewScanner(r io.Reader) *Scanner {
	return &Scanner{r: r, buf: make([]byte, defaultBufSize), mark: -1}
}

// Reset reuses the scanner (and its buffer) for a new input.
func (s *Scanner) Reset(r io.Reader) {
	if s.ownBuf != nil {
		s.buf, s.ownBuf = s.ownBuf, nil
	}
	s.r = r
	s.pos, s.end = 0, 0
	s.mark = -1
	s.rerr = nil
}

// ResetBytes reuses the scanner over an in-memory input without
// copying: the buffer aliases data and the read error is preset to
// io.EOF, so fill never compacts, grows, or reads — every mark-based
// span is a direct view into data. The caller must not mutate data
// while the scanner is in use; Reset restores the scanner-owned buffer.
func (s *Scanner) ResetBytes(data []byte) {
	if s.ownBuf == nil {
		s.ownBuf = s.buf
	}
	s.r = nil
	s.buf = data
	s.pos, s.end = 0, len(data)
	s.mark = -1
	s.rerr = io.EOF
}

// ResetBytesAt is ResetBytes restricted to the window data[lo:hi]:
// scanning starts at lo and input ends at hi, while positions — and
// therefore the spans a gather emitter records — remain absolute
// offsets into data. Parallel fragment workers use it so their gather
// lists splice into the spine by plain concatenation, no rebasing.
func (s *Scanner) ResetBytesAt(data []byte, lo, hi int) {
	s.ResetBytes(data[:hi])
	s.pos = lo
}

// SetMaxTokenSize bounds the buffer growth a single token may force;
// n <= 0 restores DefaultMaxTokenSize. Tokens already fitting the
// current buffer are unaffected.
func (s *Scanner) SetMaxTokenSize(n int) { s.maxToken = n }

// Peek returns up to n buffered bytes without consuming them.
func (s *Scanner) Peek(n int) []byte {
	for s.end-s.pos < n && s.fill() {
	}
	if s.end-s.pos < n {
		n = s.end - s.pos
	}
	return s.buf[s.pos : s.pos+n]
}

// fill reads more data, compacting the buffer from the mark (or the
// read position) first. Returns false when no byte was added.
func (s *Scanner) fill() bool {
	if s.rerr != nil {
		return false
	}
	base := s.pos
	if s.mark >= 0 && s.mark < base {
		base = s.mark
	}
	if base > 0 {
		copy(s.buf, s.buf[base:s.end])
		s.pos -= base
		s.end -= base
		if s.mark >= 0 {
			s.mark -= base
		}
	} else if s.end == len(s.buf) {
		// A single token larger than the buffer: grow, up to the
		// configured cap — hostile input must not take memory hostage.
		max := s.maxToken
		if max <= 0 {
			max = DefaultMaxTokenSize
		}
		if len(s.buf) >= max {
			s.rerr = fmt.Errorf("%w (%d bytes)", ErrTokenTooLong, max)
			return false
		}
		n := 2 * len(s.buf)
		if n > max {
			n = max
		}
		nb := make([]byte, n)
		copy(nb, s.buf[:s.end])
		s.buf = nb
	}
	// io.Reader permits (0, nil); bound the retries so a pathological
	// reader errors instead of hanging the prune (as bufio does).
	for i := 0; i < 100; i++ {
		n, err := s.r.Read(s.buf[s.end:len(s.buf):len(s.buf)])
		s.end += n
		if err != nil {
			s.rerr = err
			return n > 0
		}
		if n > 0 {
			return true
		}
	}
	s.rerr = io.ErrNoProgress
	return false
}

// getc returns the next byte. ok is false at end of input or on a read
// error; the caller distinguishes via readErr.
func (s *Scanner) getc() (byte, bool) {
	if s.pos < s.end {
		b := s.buf[s.pos]
		s.pos++
		return b, true
	}
	if s.fill() {
		b := s.buf[s.pos]
		s.pos++
		return b, true
	}
	return 0, false
}

// ungetc backs up one byte. Valid immediately after a successful getc.
func (s *Scanner) ungetc() { s.pos-- }

// readErr converts the pending read error for a caller that needed more
// input: io.EOF mid-construct becomes a syntax error, like
// encoding/xml's mustgetc.
func (s *Scanner) readErr() error {
	if s.rerr == io.EOF || s.rerr == nil {
		return errSyntax("unexpected EOF")
	}
	return s.rerr
}

// atEOF reports whether input ended cleanly.
func (s *Scanner) atEOF() bool { return s.rerr == io.EOF }

// setMark pins the current position: bytes from here on survive
// refills, so spans relative to the mark stay valid.
func (s *Scanner) setMark() { s.mark = s.pos }

// clearMark releases the pin.
func (s *Scanner) clearMark() { s.mark = -1 }

// marked returns the span from the mark to the current position.
func (s *Scanner) marked() []byte { return s.buf[s.mark:s.pos] }

// errSyntax builds a syntax error. The message format intentionally
// resembles encoding/xml's so operators see familiar diagnostics, but
// the differential contract only requires that the two paths agree on
// *whether* an input errors, not on the message.
func errSyntax(msg string) error { return fmt.Errorf("XML syntax error: %s", msg) }

// space skips the tag-level whitespace set (space, CR, LF, tab) —
// exactly encoding/xml's space(), which is narrower than Unicode
// whitespace.
func (s *Scanner) space() {
	for {
		b, ok := s.getc()
		if !ok {
			return
		}
		if b != ' ' && b != '\r' && b != '\n' && b != '\t' {
			s.ungetc()
			return
		}
	}
}

// isNameByte mirrors encoding/xml: the single-byte characters allowed
// inside names. Multi-byte runes are accepted here and validated by
// checkName.
func isNameByte(c byte) bool {
	return 'A' <= c && c <= 'Z' ||
		'a' <= c && c <= 'z' ||
		'0' <= c && c <= '9' ||
		c == '_' || c == ':' || c == '.' || c == '-' ||
		c >= utf8.RuneSelf
}

// readName consumes a name (per encoding/xml's readName byte rules).
// ok is false when no name byte is present. The scanner's buffer slides
// under refills, so callers recover the name span mark-relative: record
// rel = s.pos - s.mark before the call (with a mark already held) and
// slice s.buf[s.mark+rel : s.pos] after it.
func (s *Scanner) readName() (ok bool, err error) {
	b, got := s.getc()
	if !got {
		return false, s.readErr()
	}
	if !isNameByte(b) {
		s.ungetc()
		return false, nil
	}
	for {
		b, got = s.getc()
		if !got {
			return false, s.readErr()
		}
		if !isNameByte(b) {
			s.ungetc()
			return true, nil
		}
	}
}

// checkName validates a scanned name against the full XML Name
// production, the way encoding/xml's isName does. ASCII names are
// checked directly; names with multi-byte runes are validated by
// running them through encoding/xml itself (memoised — such names are
// vanishingly rare on real documents).
func (s *Scanner) checkName(name []byte) bool {
	if len(name) == 0 {
		return false
	}
	c := name[0]
	if c < utf8.RuneSelf {
		if !('A' <= c && c <= 'Z' || 'a' <= c && c <= 'z' || c == '_' || c == ':') {
			return false
		}
		ascii := true
		for _, b := range name[1:] {
			if b >= utf8.RuneSelf {
				ascii = false
				break
			}
		}
		if ascii {
			return true // tail bytes already passed isNameByte
		}
	}
	key := string(name)
	if v, ok := s.nameCache[key]; ok {
		return v
	}
	dec := xml.NewDecoder(strings.NewReader("<" + key + "/>"))
	_, err := dec.Token()
	if s.nameCache == nil {
		s.nameCache = make(map[string]bool)
	}
	s.nameCache[key] = err == nil
	return err == nil
}

// splitName applies encoding/xml's nsname rule to a full name: more
// than one colon is malformed; one colon with non-empty halves splits
// off the prefix; otherwise the whole name is the local name (and the
// prefix is empty, even when the name contains a colon at an edge).
func splitName(name []byte) (prefix, local []byte, ok bool) {
	first := -1
	n := 0
	for i, b := range name {
		if b == ':' {
			if first < 0 {
				first = i
			}
			n++
		}
	}
	if n > 1 {
		return nil, nil, false
	}
	if n == 1 && first > 0 && first < len(name)-1 {
		return name[:first], name[first+1:], true
	}
	return nil, name, true
}

// isXMLNSAttr reports whether a split attribute name is a namespace
// declaration, exactly as the decoder-based pruner decides it: the
// prefix is "xmlns" or the local name is "xmlns".
func isXMLNSAttr(prefix, local []byte) bool {
	return string(prefix) == "xmlns" || string(local) == "xmlns"
}

// isInCharacterRange is the XML Char production, as in encoding/xml.
func isInCharacterRange(r rune) bool {
	return r == 0x09 ||
		r == 0x0A ||
		r == 0x0D ||
		r >= 0x20 && r <= 0xD7FF ||
		r >= 0xE000 && r <= 0xFFFD ||
		r >= 0x10000 && r <= 0x10FFFF
}

// decodeEntity consumes a character reference after its '&' and returns
// the decoded rune, mirroring encoding/xml's strict handling: the five
// predefined entities, decimal and hex character references (values
// above MaxRune rejected, surrogates replaced like string(rune)
// conversion), anything else is a syntax error.
func (s *Scanner) decodeEntity() (rune, error) {
	b, ok := s.getc()
	if !ok {
		return 0, s.readErr()
	}
	if b == '#' {
		base := 10
		b, ok = s.getc()
		if !ok {
			return 0, s.readErr()
		}
		if b == 'x' {
			base = 16
			b, ok = s.getc()
			if !ok {
				return 0, s.readErr()
			}
		}
		var n uint64
		digits := 0
		for {
			var v byte
			switch {
			case '0' <= b && b <= '9':
				v = b - '0'
			case base == 16 && 'a' <= b && b <= 'f':
				v = b - 'a' + 10
			case base == 16 && 'A' <= b && b <= 'F':
				v = b - 'A' + 10
			default:
				goto done
			}
			digits++
			if n <= 1<<32 { // saturate; anything this big is already invalid
				n = n*uint64(base) + uint64(v)
			}
			b, ok = s.getc()
			if !ok {
				return 0, s.readErr()
			}
		}
	done:
		if b != ';' {
			s.ungetc()
			return 0, errSyntax("invalid character entity (no semicolon)")
		}
		if digits == 0 || n > unicode.MaxRune {
			return 0, errSyntax("invalid character entity")
		}
		r := rune(n)
		if !utf8.ValidRune(r) {
			r = utf8.RuneError // string(rune) conversion semantics
		}
		return r, nil
	}
	// Named entity: collect name bytes into a small local buffer (the
	// recognised names are at most four bytes; anything longer errors
	// anyway), require ';', and accept only the five predefined names —
	// custom <!ENTITY> definitions are not resolved, exactly like
	// encoding/xml with a nil Entity map in strict mode.
	var name [8]byte
	n := 0
	for isNameByte(b) {
		if n < len(name) {
			name[n] = b
			n++
		} else {
			n = len(name) + 1 // too long: cannot be predefined
		}
		b, ok = s.getc()
		if !ok {
			return 0, s.readErr()
		}
	}
	if b != ';' {
		s.ungetc()
		return 0, errSyntax("invalid character entity (no semicolon)")
	}
	if n <= len(name) {
		switch string(name[:n]) {
		case "lt":
			return '<', nil
		case "gt":
			return '>', nil
		case "amp":
			return '&', nil
		case "apos":
			return '\'', nil
		case "quot":
			return '"', nil
		}
	}
	return 0, errSyntax("invalid character entity")
}

// skipComment consumes a comment after "<!--", enforcing the strict
// "--" rule: the only legal occurrence of "--" is the closing "-->".
func (s *Scanner) skipComment() error {
	var b0, b1 byte
	for {
		b, ok := s.getc()
		if !ok {
			return s.readErr()
		}
		if b0 == '-' && b1 == '-' {
			if b != '>' {
				return errSyntax(`invalid sequence "--" not allowed in comments`)
			}
			return nil
		}
		b0, b1 = b1, b
	}
}

// skipDirective consumes a <!DOCTYPE ...>-style directive after its
// "<!" and first byte, reproducing encoding/xml's nesting rules: quoted
// angle brackets are ignored, nested "<...>" groups tracked by depth,
// and comments inside the directive skipped.
func (s *Scanner) skipDirective() error {
	inquote := byte(0)
	depth := 0
	for {
		b, ok := s.getc()
		if !ok {
			return s.readErr()
		}
		if inquote == 0 && b == '>' && depth == 0 {
			return nil
		}
	handle:
		switch {
		case b == inquote:
			inquote = 0
		case inquote != 0:
			// quoted: no special meaning
		case b == '\'' || b == '"':
			inquote = b
		case b == '>' && depth > 0:
			depth--
		case b == '<':
			// "<!--" opens a comment inside the directive; any other
			// "<" increases nesting.
			lead := [3]byte{'!', '-', '-'}
			for i := 0; i < 3; i++ {
				if b, ok = s.getc(); !ok {
					return s.readErr()
				}
				if b != lead[i] {
					depth++
					goto handle
				}
			}
			var b0, b1 byte
			for {
				if b, ok = s.getc(); !ok {
					return s.readErr()
				}
				if b0 == '-' && b1 == '-' && b == '>' {
					break
				}
				b0, b1 = b1, b
			}
		}
	}
}

// skipPI consumes a processing instruction after "<?": the target name
// is validated, and an <?xml?> declaration gets the same version and
// encoding checks as encoding/xml (no CharsetReader: any non-UTF-8
// declared encoding is an error — Stream routes byte-order-marked
// UTF-16/32 inputs to the decoder path up front, and both paths reject
// declared non-UTF-8 encodings). The caller must not hold a mark.
func (s *Scanner) skipPI() error {
	s.setMark()
	ok, err := s.readName()
	if err != nil {
		s.clearMark()
		return err
	}
	if !ok || !s.checkName(s.marked()) {
		s.clearMark()
		return errSyntax("expected target name after <?")
	}
	isXMLDecl := string(s.marked()) == "xml"
	s.space()
	if !isXMLDecl {
		s.clearMark()
		var b0 byte
		for {
			b, got := s.getc()
			if !got {
				return s.readErr()
			}
			if b0 == '?' && b == '>' {
				return nil
			}
			b0 = b
		}
	}
	contentRel := s.pos - s.mark
	var b0 byte
	for {
		b, got := s.getc()
		if !got {
			s.clearMark()
			return s.readErr()
		}
		if b0 == '?' && b == '>' {
			break
		}
		b0 = b
	}
	content := string(s.buf[s.mark+contentRel : s.pos-2])
	s.clearMark()
	if ver := procInstParam("version", content); ver != "" && ver != "1.0" {
		return fmt.Errorf("xml: unsupported version %q; only version 1.0 is supported", ver)
	}
	if enc := procInstParam("encoding", content); enc != "" && !strings.EqualFold(enc, "utf-8") {
		return fmt.Errorf("xml: encoding %q declared but the input is not UTF-8", enc)
	}
	return nil
}

// procInstParam extracts a param="..." value from an <?xml?>
// declaration, as encoding/xml's procInst does.
func procInstParam(param, s string) string {
	param = param + "="
	lenp := len(param)
	i := 0
	var sep byte
	for i < len(s) {
		sub := s[i:]
		k := strings.Index(sub, param)
		if k < 0 || lenp+k >= len(sub) {
			return ""
		}
		i += lenp + k + 1
		if c := sub[lenp+k]; c == '\'' || c == '"' {
			sep = c
			break
		}
	}
	if sep == 0 {
		return ""
	}
	j := strings.IndexByte(s[i:], sep)
	if j < 0 {
		return ""
	}
	return s[i : i+j]
}

// textInfo describes a decoded text chunk.
type textInfo struct {
	// ws is true when every decoded rune is Unicode whitespace (the
	// pruner drops such chunks, like the tree parser's TrimSpace test).
	ws bool
	// verbatim is true when the chunk's raw input bytes are already in
	// canonical output form: no entity was decoded, no \r was
	// normalised, and no '>' occurs (the escaper would rewrite it).
	// Raw-copy windows may pass such chunks through untouched.
	verbatim bool
}

// firstSpecial returns the index of the first byte of chunk contained
// in specials, or len(chunk) when none occurs. Each byte is located
// with bytes.IndexByte (memchr), bounding every later search by the
// earliest hit so far, so the scan is a handful of vectorised passes
// instead of a byte-at-a-time loop.
func firstSpecial(chunk []byte, specials string) int {
	n := len(chunk)
	for i := 0; i < len(specials); i++ {
		if j := bytes.IndexByte(chunk[:n], specials[i]); j >= 0 {
			n = j
		}
	}
	return n
}

// text decodes character data into dst (appending) and returns the
// extended slice. quote is -1 for element content, or the quote byte
// for an attribute value; cdata selects CDATA-section rules. The
// behaviour mirrors encoding/xml's Decoder.text in strict mode:
// predefined and numeric entities, \r and \r\n normalised to \n, "]]>"
// rejected in unquoted chardata, '<' rejected inside quoted values, and
// the decoded result checked for UTF-8 validity and the XML Char range.
//
// The hot loop jumps from one "special" byte to the next with memchr
// (firstSpecial) and bulk-copies the plain spans between them; only the
// rare special bytes are handled individually.
func (s *Scanner) text(dst []byte, quote int, cdata bool) ([]byte, textInfo, error) {
	info := textInfo{verbatim: true}
	base := len(dst)
	// The terminator comes first so the later searches are bounded by
	// its position. ']' matters only in unquoted chardata ("]]>"), '&'
	// and '<' only outside CDATA, '>' only for the verbatim flag (the
	// output escaper rewrites it; CDATA is re-escaped by the caller).
	var specials string
	switch {
	case cdata:
		specials = "]\r"
	case quote < 0:
		specials = "<&]\r>"
	case quote == '"':
		specials = "\"&<\r>"
	default:
		specials = "'&<\r>"
	}
loop:
	for {
		if s.pos == s.end && !s.fill() {
			if cdata {
				if !s.atEOF() {
					return dst, info, s.rerr
				}
				return dst, info, errSyntax("unexpected EOF in CDATA section")
			}
			break
		}
		chunk := s.buf[s.pos:s.end]
		j := firstSpecial(chunk, specials)
		if j > 0 {
			dst = append(dst, chunk[:j]...)
			s.pos += j
			if j == len(chunk) {
				continue
			}
		}
		switch b := chunk[j]; b {
		case '<':
			if quote >= 0 {
				return dst, info, errSyntax("unescaped < inside quoted string")
			}
			break loop // not consumed; the caller reads the tag
		case '&':
			s.pos++
			r, err := s.decodeEntity()
			if err != nil {
				return dst, info, err
			}
			dst = utf8.AppendRune(dst, r)
			info.verbatim = false
		case '\r':
			s.pos++
			dst = append(dst, '\n')
			info.verbatim = false
			// \r\n collapses to the \n already written.
			if s.pos == s.end {
				s.fill()
			}
			if s.pos < s.end && s.buf[s.pos] == '\n' {
				s.pos++
			}
		case '>':
			s.pos++
			dst = append(dst, '>')
			info.verbatim = false
		case ']':
			// Collect the whole run of ']'s, then look at the byte after
			// it: "]]>" ends a CDATA section (chopping the "]]" already
			// appended) and is illegal in plain chardata.
			run := 0
			for {
				if s.pos == s.end && !s.fill() {
					break
				}
				if s.pos < s.end && s.buf[s.pos] == ']' {
					s.pos++
					run++
					dst = append(dst, ']')
					continue
				}
				break
			}
			if run >= 2 {
				if s.pos == s.end {
					s.fill()
				}
				if s.pos < s.end && s.buf[s.pos] == '>' {
					s.pos++
					if cdata {
						dst = dst[:len(dst)-2]
						break loop
					}
					return dst, info, errSyntax("unescaped ]]> not in CDATA section")
				}
			}
		default: // the quote byte ends an attribute value
			s.pos++
			break loop
		}
	}
	// Validate the decoded bytes: UTF-8 and the XML Char production,
	// computing whitespace-ness in the same pass. ASCII runs in a tight
	// byte loop; multi-byte runes fall back to full decoding.
	info.ws = true
	buf := dst[base:]
	i := 0
	for i < len(buf) {
		c := buf[i]
		if c >= utf8.RuneSelf {
			break
		}
		if c > ' ' { // 0x21–0x7F: always a valid, non-space XML char
			info.ws = false
			i++
			continue
		}
		switch c {
		case ' ', '\t', '\n', '\r':
			i++
		default:
			return dst, info, errSyntax(fmt.Sprintf("illegal character code %U", rune(c)))
		}
	}
	for i < len(buf) {
		r, size := utf8.DecodeRune(buf[i:])
		if r == utf8.RuneError && size == 1 {
			return dst, info, errSyntax("invalid UTF-8")
		}
		if !isInCharacterRange(r) {
			return dst, info, errSyntax(fmt.Sprintf("illegal character code %U", r))
		}
		if info.ws && !unicode.IsSpace(r) {
			info.ws = false
		}
		i += size
	}
	return dst, info, nil
}

// expectCDATA consumes the "[CDATA[" tail after "<![".
func (s *Scanner) expectCDATA() error {
	const tail = "CDATA["
	for i := 0; i < len(tail); i++ {
		b, ok := s.getc()
		if !ok {
			return s.readErr()
		}
		if b != tail[i] {
			return errSyntax("invalid <![ sequence")
		}
	}
	return nil
}
