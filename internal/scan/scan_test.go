package scan

import (
	"bufio"
	"io"
	"strings"
	"testing"

	"xmlproj/internal/dtd"
)

const bibDTD = `
<!ELEMENT bib (book*)>
<!ELEMENT book (title, author+, year?)>
<!ATTLIST book isbn CDATA #REQUIRED lang (en|fr|it) "en">
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`

func setup(t *testing.T, pi dtd.NameSet) (*dtd.DTD, *dtd.Projection) {
	t.Helper()
	d, err := dtd.ParseString(bibDTD, "")
	if err != nil {
		t.Fatal(err)
	}
	return d, d.CompileProjection(pi)
}

func prune(t *testing.T, src string, d *dtd.DTD, p *dtd.Projection, opts Options) (string, Stats, error) {
	t.Helper()
	var sb strings.Builder
	bw := bufio.NewWriter(&sb)
	st, err := Prune(bw, strings.NewReader(src), d, p, opts)
	if err == nil {
		err = bw.Flush()
	}
	return sb.String(), st, err
}

var fullPi = dtd.NewNameSet(
	"bib", "book", "title", "title#text", "author", "author#text",
	"year", "year#text", "book@isbn", "book@lang",
)

// TestRawCopyMatchesSlowPath: for a π whose closure is closed (raw-copy
// eligible), output with RawCopy on and off must be identical.
func TestRawCopyMatchesSlowPath(t *testing.T) {
	d, p := setup(t, fullPi)
	docs := []string{
		`<bib><book isbn="1" lang="it"><title>T</title><author>A</author><year>1999</year></book></bib>`,
		`<bib><book isbn="1"><title>a&amp;b</title><author>A</author></book></bib>`,
		`<bib><book isbn="1"><title><![CDATA[<x>]]></title><author>A</author></book></bib>`,
		`<bib><book isbn="1"><title>t</title><!-- c --><author>A</author></book></bib>`,
		"<bib>\n <book isbn=\"1\">\n  <title>T</title><author>A</author>\n </book>\n</bib>",
		`<bib><book  isbn="1" ><title>T</title><author>A</author></book></bib>`,
		`<bib><book isbn='1'><title>T</title><author>A</author></book></bib>`,
	}
	for _, doc := range docs {
		slow, sst, serr := prune(t, doc, d, p, Options{})
		fast, fst, ferr := prune(t, doc, d, p, Options{RawCopy: true})
		if serr != nil || ferr != nil {
			t.Fatalf("prune failed: %v / %v (input %q)", serr, ferr, doc)
		}
		if slow != fast {
			t.Errorf("raw copy diverges\nslow: %q\nfast: %q\ninput: %q", slow, fast, doc)
		}
		if sst != fst {
			t.Errorf("raw copy stats diverge: %+v vs %+v (input %q)", sst, fst, doc)
		}
	}
}

// TestRawCopyEmptyElement: <a></a> must collapse to <a/> even when the
// bytes ride through a raw-copy window.
func TestRawCopyEmptyElement(t *testing.T) {
	d, p := setup(t, fullPi)
	out, _, err := prune(t, `<bib><book isbn="1"><title></title><author>A</author></book></bib>`, d, p, Options{RawCopy: true})
	if err != nil {
		t.Fatal(err)
	}
	want := `<bib><book isbn="1"><title/><author>A</author></book></bib>`
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

// TestRawCopyWindowSlides: a verbatim subtree much larger than the
// window flush size must stream through unchanged.
func TestRawCopyWindowSlides(t *testing.T) {
	d, p := setup(t, fullPi)
	var b strings.Builder
	b.WriteString(`<bib>`)
	for i := 0; i < 2000; i++ {
		b.WriteString(`<book isbn="1" lang="en"><title>title title title title</title><author>somebody</author></book>`)
	}
	b.WriteString(`</bib>`)
	doc := b.String()
	if len(doc) < 4*windowFlushSize {
		t.Fatalf("test document too small to exercise sliding: %d bytes", len(doc))
	}
	out, st, err := prune(t, doc, d, p, Options{RawCopy: true})
	if err != nil {
		t.Fatal(err)
	}
	if out != doc {
		t.Fatal("identity projection altered the document")
	}
	if st.ElementsIn != 1+2000*3 || st.ElementsOut != st.ElementsIn {
		t.Fatalf("bad stats: %+v", st)
	}
}

// TestSkipScanStats: subtree skipping keeps the ElementsSkipped /
// TextSkipped contract (root of the skipped subtree is not "skipped").
func TestSkipScanStats(t *testing.T) {
	pi := dtd.NewNameSet("bib", "book", "title", "title#text", "book@isbn")
	d, p := setup(t, pi)
	doc := `<bib><book isbn="1"><title>T</title><author>Deep<!-- c -->Name</author><year>1999</year></book></bib>`
	out, st, err := prune(t, doc, d, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := `<bib><book isbn="1"><title>T</title></book></bib>`
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
	if st.ElementsIn != 5 || st.ElementsOut != 3 || st.ElementsSkipped != 0 {
		t.Fatalf("element stats: %+v", st)
	}
	// author's run merges across the comment into one logical text node;
	// year's text is another. Both are inside skipped subtrees.
	if st.TextIn != 3 || st.TextOut != 1 || st.TextSkipped != 2 {
		t.Fatalf("text stats: %+v", st)
	}
}

// TestSkipScanNested: skipped subtrees may contain elements undeclared
// in the DTD (no symbol lookups happen inside them), but their syntax is
// still checked.
func TestSkipScanNested(t *testing.T) {
	pi := dtd.NewNameSet("bib", "book", "book@isbn")
	d, p := setup(t, pi)
	doc := `<bib><book isbn="1"><title>T<undeclared attr="v">x</undeclared></title><author>A</author></book></bib>`
	out, st, err := prune(t, doc, d, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out != `<bib><book isbn="1"/></bib>` {
		t.Fatalf("got %q", out)
	}
	if st.ElementsSkipped != 1 || st.ElementsIn != 5 {
		t.Fatalf("stats: %+v", st)
	}
	if _, _, err := prune(t, `<bib><book isbn="1"><title><bad</title><author>A</author></book></bib>`, d, p, Options{}); err == nil {
		t.Fatal("syntax error inside skipped subtree not detected")
	}
	if _, _, err := prune(t, `<bib><book isbn="1"><title><a>x</b></title><author>A</author></book></bib>`, d, p, Options{}); err == nil {
		t.Fatal("mismatched end tag inside skipped subtree not detected")
	}
}

// TestValidateErrors exercises the validating scanner's error paths.
func TestValidateErrors(t *testing.T) {
	d, p := setup(t, fullPi)
	cases := []string{
		`<book isbn="1"><title>T</title><author>A</author></book>`,                      // wrong root
		`<bib><book><title>T</title><author>A</author></book></bib>`,                    // missing required attr
		`<bib><book isbn="1" lang="xx"><title>T</title><author>A</author></book></bib>`, // enum violation
		`<bib><book isbn="1" bogus="1"><title>T</title><author>A</author></book></bib>`, // undeclared attr
		`<bib><book isbn="1"><author>A</author></book></bib>`,                           // content model violation
		`<bib>text</bib>`, // text not allowed
	}
	for _, src := range cases {
		if _, _, err := prune(t, src, d, p, Options{Validate: true}); err == nil {
			t.Errorf("validation accepted %q", src)
		}
	}
}

// TestScannerBufferBoundaries drives tiny reads so tokens straddle
// buffer refills and the mark-relative span recovery is exercised.
func TestScannerBufferBoundaries(t *testing.T) {
	d, p := setup(t, fullPi)
	doc := `<bib><book isbn="12345678901234567890"><title>` +
		strings.Repeat("long text ", 50) + `&amp;</title><author>A</author></book></bib>`
	var sb strings.Builder
	bw := bufio.NewWriter(&sb)
	s := NewScanner(iotest(strings.NewReader(doc)))
	pr := &pruner{s: s, d: d, p: p, opts: Options{RawCopy: true}}
	pr.useStream(bw)
	if err := pr.run(); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	want, _, err := prune(t, doc, d, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Fatalf("one-byte reads diverge:\n%q\n%q", sb.String(), want)
	}
}

// iotest returns a reader that yields one byte at a time.
type oneByteReader struct{ r *strings.Reader }

func (o oneByteReader) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

func iotest(r *strings.Reader) oneByteReader { return oneByteReader{r} }

// noProgressReader returns (0, nil) forever after its content runs out,
// which io.Reader permits; the scanner must error rather than spin.
type noProgressReader struct{ r *strings.Reader }

func (n noProgressReader) Read(p []byte) (int, error) {
	if n.r.Len() == 0 {
		return 0, nil
	}
	return n.r.Read(p)
}

func TestNoProgressReaderErrors(t *testing.T) {
	d, p := setup(t, fullPi)
	var sb strings.Builder
	bw := bufio.NewWriter(&sb)
	s := NewScanner(noProgressReader{strings.NewReader(`<bib><book isbn="1">`)})
	pr := &pruner{s: s, d: d, p: p, opts: Options{}}
	pr.useStream(bw)
	err := pr.run()
	if err != io.ErrNoProgress {
		t.Fatalf("want io.ErrNoProgress, got %v", err)
	}
}
