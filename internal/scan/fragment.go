package scan

// Parallel-prune fragments and splices. A parallel prune (see
// parallel.go) cuts the document's content into byte ranges at element
// tag boundaries; worker pruners process each range concurrently, and
// the serial "spine" pruner — running over the whole document — splices
// each range's pre-computed result in at its cut point instead of
// re-scanning the bytes. The cut rule (a range starts and ends at an
// element tag, never inside text, at a comment, or mid-construct)
// guarantees logical text runs never span a cut: the serial pruner
// flushes a pending run exactly at element tags, so a fragment flushing
// at its EOF reproduces the flush the spine would have done at the tag
// that follows the range.

import (
	"fmt"
)

// fragTask is one delegated content range [lo, hi) of the document.
type fragTask struct {
	lo, hi int
	// skip marks a range inside a discarded subtree: processed for
	// well-formedness and stats only, with no output and no events.
	skip bool
	// ctxSym and ctxBase describe a kept range's context element (the
	// parent whose children the range holds) and its stack depth.
	ctxSym  int32
	ctxBase int

	// ready, when non-nil, is closed by the worker once res is
	// populated; the spine blocks on it before splicing. The batch
	// parallel pruner leaves it nil — there the worker pool is joined
	// before the spine starts. The pipelined pruner overlaps the two
	// and needs the per-task handshake.
	ready chan struct{}

	res fragResult
}

// fragResult is what a worker produced for one range. Output is a
// span-gather list over the whole document (workers scan with absolute
// offsets via ResetBytesAt), so the spine folds it in by concatenation
// — or, on the streaming path, with a single copy out of the input.
type fragResult struct {
	st     Stats
	events []int32
	sl     *SpanList
	err    error
}

// spliceSet is the spine's ordered view of the delegated ranges.
type spliceSet struct {
	tasks []*fragTask
	i     int
}

// at reports whether pos is the next splice point.
func (sp *spliceSet) at(pos int) bool {
	return sp.i < len(sp.tasks) && sp.tasks[sp.i].lo == pos
}

// applySplice folds the next delegated range's result into the spine at
// its cut point: flush the pending text run (the serial pruner would
// flush it at the element tag the range starts with), replay the
// fragment's context-level events through the live content-model state,
// write the fragment's output, fold its stats, surface its error, and
// jump the scanner past the range. Event replay precedes the fragment's
// own error because every recorded event happened earlier in document
// order than the point where the fragment stopped.
func (pr *pruner) applySplice() error {
	t := pr.sp.tasks[pr.sp.i]
	pr.sp.i++
	if t.ready != nil {
		<-t.ready
	}
	if err := pr.flushText(); err != nil {
		return err
	}
	res := &t.res
	if pr.opts.Validate {
		top := &pr.stack[len(pr.stack)-1]
		for _, ev := range res.events {
			if ev == eventText {
				next := top.aut.NextText(top.state)
				if next < 0 {
					return fmt.Errorf("text content not allowed in %s", pr.p.Syms.Info(top.sym).Name)
				}
				top.state = next
			} else {
				next := top.aut.Next(top.state, ev)
				if next < 0 {
					return fmt.Errorf("element %s not allowed here in content of %s",
						pr.p.Syms.Info(ev).Name, pr.p.Syms.Info(top.sym).Name)
				}
				top.state = next
			}
		}
	}
	if res.sl != nil && res.sl.Len() > 0 {
		pr.closeOpen()
		pr.em.splice(res.sl)
	}
	pr.foldStats(&res.st)
	if res.err != nil {
		return res.err
	}
	pr.s.pos = t.hi
	return nil
}

// applySkipSplice is applySplice for a range inside a discarded
// subtree: stats only — no output, no events, no validation.
func (pr *pruner) applySkipSplice() error {
	t := pr.sp.tasks[pr.sp.i]
	pr.sp.i++
	if t.ready != nil {
		<-t.ready
	}
	pr.foldStats(&t.res.st)
	if t.res.err != nil {
		return t.res.err
	}
	pr.s.pos = t.hi
	return nil
}

func (pr *pruner) foldStats(st *Stats) {
	pr.st.ElementsIn += st.ElementsIn
	pr.st.ElementsOut += st.ElementsOut
	pr.st.TextIn += st.TextIn
	pr.st.TextOut += st.TextOut
	pr.st.ElementsSkipped += st.ElementsSkipped
	pr.st.TextSkipped += st.TextSkipped
	if st.MaxDepth > pr.st.MaxDepth {
		pr.st.MaxDepth = st.MaxDepth
	}
}

// runFragment prunes one kept content range. The scanner is already
// reset over the range's bytes; the stack is seeded with ctxBase frames
// (only the top one's symbol matters — ancestor end tags are outside
// the range) so stack depth equals real document depth and MaxDepth
// folds by max.
func (pr *pruner) runFragment(ctxSym int32, ctxBase int) error {
	pr.mode = modeFragment
	pr.ctxBase = ctxBase
	pr.stack = pr.stack[:0]
	for i := 0; i < ctxBase; i++ {
		pr.stack = append(pr.stack, frame{sym: -1})
	}
	pr.stack[ctxBase-1] = frame{sym: ctxSym}
	pr.sawRoot = true
	return pr.run()
}

// runSkipFragment processes one range inside a discarded subtree with
// skipScan's exact semantics — full well-formedness checks, skipped
// element and logical-text-run counting, nothing materialised — but
// terminated by the end of the range instead of by the subtree's end
// tag. Structure stage 1 verified guarantees the range holds complete,
// balanced constructs, so no end tag here can close an element opened
// outside the range.
func (pr *pruner) runSkipFragment() error {
	s := pr.s
	pending := false
	flush := func() {
		if pending {
			pr.st.TextIn++
			pr.st.TextSkipped++
			pending = false
		}
	}
	for {
		b, ok := s.getc()
		if !ok {
			if !s.atEOF() {
				return s.rerr
			}
			// The byte after the range is an element tag, where skipScan
			// would flush the pending run.
			flush()
			if len(pr.skipOffs) != 0 {
				return errSyntax("unterminated element in skipped content")
			}
			return nil
		}
		if b != '<' {
			s.ungetc()
			var info textInfo
			var err error
			pr.attrVal, info, err = s.text(pr.attrVal[:0], -1, false)
			if err != nil {
				return err
			}
			if !info.ws {
				pending = true
			}
			continue
		}
		b2, ok := s.getc()
		if !ok {
			return s.readErr()
		}
		switch b2 {
		case '/':
			flush()
			s.setMark()
			ok, err := s.readName()
			if err != nil {
				s.clearMark()
				return err
			}
			if !ok {
				s.clearMark()
				return errSyntax("expected element name after </")
			}
			nameEnd := s.pos - s.mark
			s.space()
			b, ok = s.getc()
			if !ok {
				s.clearMark()
				return s.readErr()
			}
			if b != '>' {
				err := errSyntax("invalid characters between </" + string(s.buf[s.mark:s.mark+nameEnd]) + " and >")
				s.clearMark()
				return err
			}
			name := s.buf[s.mark : s.mark+nameEnd]
			if !s.checkName(name) {
				err := errSyntax("invalid XML name: " + string(name))
				s.clearMark()
				return err
			}
			if _, _, okn := splitName(name); !okn {
				s.clearMark()
				return errSyntax("expected element name after </")
			}
			if len(pr.skipOffs) == 0 {
				err := errSyntax("unbalanced end element " + string(name))
				s.clearMark()
				return err
			}
			if string(name) != string(pr.topSkipName()) {
				err := errSyntax("element <" + string(pr.topSkipName()) + "> closed by </" + string(name) + ">")
				s.clearMark()
				return err
			}
			s.clearMark()
			pr.popSkipName()
		case '?':
			if err := s.skipPI(); err != nil {
				return err
			}
		case '!':
			b3, ok := s.getc()
			if !ok {
				return s.readErr()
			}
			switch b3 {
			case '-':
				b4, ok := s.getc()
				if !ok {
					return s.readErr()
				}
				if b4 != '-' {
					return errSyntax("invalid sequence <!- not part of <!--")
				}
				if err := s.skipComment(); err != nil {
					return err
				}
			case '[':
				if err := s.expectCDATA(); err != nil {
					return err
				}
				var info textInfo
				var err error
				pr.attrVal, info, err = s.text(pr.attrVal[:0], -1, true)
				if err != nil {
					return err
				}
				if !info.ws {
					pending = true
				}
			default:
				if err := s.skipDirective(); err != nil {
					return err
				}
			}
		default:
			flush()
			pr.st.ElementsIn++
			pr.st.ElementsSkipped++
			s.ungetc()
			s.setMark()
			ok, err := s.readName()
			if err != nil {
				s.clearMark()
				return err
			}
			if !ok {
				s.clearMark()
				return errSyntax("expected element name after <")
			}
			name := s.marked()
			if !s.checkName(name) {
				err := errSyntax("invalid XML name: " + string(name))
				s.clearMark()
				return err
			}
			if _, _, okn := splitName(name); !okn {
				s.clearMark()
				return errSyntax("expected element name after <")
			}
			pr.pushSkipName(name)
			s.clearMark()
			empty, err := pr.skipAttrs()
			if err != nil {
				return err
			}
			if empty {
				pr.popSkipName()
			}
		}
	}
}
