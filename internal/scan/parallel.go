package scan

// Two-stage parallel pruner. Stage 1 (internal/index) builds a
// structural index of the whole document in parallel. The planner then
// cuts the index into content ranges — children of the root, recursing
// into dominant subtrees, kept or skipped alike — and a worker pool
// prunes each range concurrently with the ordinary pruner machinery
// over zero-copy sub-slices (ResetBytes). Finally the serial "spine"
// pruner runs over the document with a splice set: everything outside
// the delegated ranges (prolog, context start/end tags, stray text) is
// processed exactly as in a serial prune, and at each cut point the
// pre-computed fragment result is folded in — output bytes
// concatenated in order, context-level validation events replayed
// through the live content-model DFA, stats summed — and the scanner
// jumps past the range. Output and verdicts are byte-for-byte those of
// the serial pruner.

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"xmlproj/internal/dtd"
	"xmlproj/internal/index"
)

// ParallelOptions configures PruneParallel.
type ParallelOptions struct {
	Options
	// Workers bounds both stage-1 indexing and stage-2 fragment
	// concurrency; 0 means GOMAXPROCS.
	Workers int
	// ChunkSize overrides the stage-1 byte-chunk granularity (0 = auto).
	ChunkSize int
	// FragTarget overrides the per-fragment target size in bytes
	// (0 = auto from input size and worker count). Tests use tiny values
	// to force many fragments on small documents.
	FragTarget int
}

// ParallelDetail reports how a parallel prune was executed.
type ParallelDetail struct {
	// IndexNanos, PruneNanos and StitchNanos are the wall times of the
	// structural-index stage, the parallel fragment stage, and the
	// sequential spine/splice pass.
	IndexNanos, PruneNanos, StitchNanos int64
	// Workers is the resolved worker count; Tasks the number of
	// delegated content ranges.
	Workers, Tasks int
	// Fallback is true when the input was handed to the serial pruner
	// (unindexable structure, or a token cap too small for the parallel
	// invariants).
	Fallback bool
}

// PruneParallel prunes data with the two-stage parallel pruner, writing
// output byte-identical to Prune's to bw. Inputs the structural index
// cannot describe fall back to the serial pruner, which reproduces the
// exact serial verdict.
func PruneParallel(bw *bufio.Writer, data []byte, d *dtd.DTD, proj *dtd.Projection, opts ParallelOptions) (Stats, ParallelDetail, error) {
	return pruneParallel(data, d, proj, opts, parallelOut{bw: bw})
}

// PruneParallelGather is PruneParallel with span-gather output: the
// spine records into sl and fragment gather lists fold in by list
// concatenation, so the stitch copies nothing but synthesized escape
// bytes. Rendered output is byte-identical to PruneParallel's. Serial
// fallbacks run PruneGather, so (like every in-memory gather path)
// MaxTokenSize is enforced only by the stage-1 index pre-scan, not on
// fallback.
func PruneParallelGather(sl *SpanList, data []byte, d *dtd.DTD, proj *dtd.Projection, opts ParallelOptions) (Stats, ParallelDetail, error) {
	return pruneParallel(data, d, proj, opts, parallelOut{sl: sl})
}

// parallelOut selects the spine's output target: exactly one of bw/sl
// is set.
type parallelOut struct {
	bw *bufio.Writer
	sl *SpanList
}

func (o parallelOut) install(pr *pruner, data []byte) {
	if o.sl != nil {
		o.sl.Reset(data)
		pr.useGather(o.sl)
	} else {
		pr.useStream(o.bw)
	}
}

// serial runs the serial pruner into the same target. The streaming
// fallback re-reads data through the scanner so the exact serial
// verdict — including MaxTokenSize enforcement — is reproduced; the
// gather fallback is PruneGather, which scans in place.
func (o parallelOut) serial(data []byte, d *dtd.DTD, proj *dtd.Projection, opts Options) (Stats, error) {
	if o.sl != nil {
		return PruneGather(o.sl, data, d, proj, opts)
	}
	return Prune(o.bw, bytes.NewReader(data), d, proj, opts)
}

func pruneParallel(data []byte, d *dtd.DTD, proj *dtd.Projection, opts ParallelOptions, out parallelOut) (Stats, ParallelDetail, error) {
	var det ParallelDetail
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	det.Workers = workers
	maxTok := opts.MaxTokenSize
	if maxTok <= 0 {
		maxTok = DefaultMaxTokenSize
	}
	serial := func() (Stats, ParallelDetail, error) {
		det.Fallback = true
		st, err := out.serial(data, d, proj, opts.Options)
		return st, det, err
	}
	if maxTok < 2*windowFlushSize {
		// A cap this tight interacts with the serial scanner's buffer
		// growth in ways stage 1's per-construct bound does not
		// reproduce; the serial pruner gives the exact verdict.
		return serial()
	}

	t0 := time.Now()
	ix, err := index.Build(data, index.Options{
		Workers:      workers,
		ChunkSize:    opts.ChunkSize,
		MaxTokenSize: maxTok,
		Lookup:       proj.Syms.Lookup,
	})
	det.IndexNanos = time.Since(t0).Nanoseconds()
	if err != nil {
		if errors.Is(err, index.ErrTokenTooLong) {
			// Matches the serial scanner's cap, detected before any
			// fragment buffers the oversized token.
			return Stats{}, det, fmt.Errorf("%w: %v", ErrTokenTooLong, err)
		}
		return serial()
	}
	defer ix.Release()

	tasks := plan(ix, len(data), proj, workers, opts.FragTarget)
	det.Tasks = len(tasks)

	t1 := time.Now()
	if len(tasks) > 0 {
		runTasks(data, d, proj, opts.Options, tasks, workers)
	}
	det.PruneNanos = time.Since(t1).Nanoseconds()

	t2 := time.Now()
	spineOpts := opts.Options
	if len(tasks) > 0 {
		// Raw-copy windows must not ride across splice jumps; fragments
		// still use them internally, and window output is byte-identical
		// to the plain path, so disabling them on the (tiny) spine
		// changes nothing observable.
		spineOpts.RawCopy = false
	}
	pr := prunerPool.Get().(*pruner)
	pr.s.ResetBytes(data)
	pr.prep(d, proj, spineOpts)
	out.install(pr, data)
	if len(tasks) > 0 {
		pr.sp = &spliceSet{tasks: tasks}
	}
	err = pr.run()
	st := pr.st
	pr.release()
	prunerPool.Put(pr)
	det.StitchNanos = time.Since(t2).Nanoseconds()

	for _, t := range tasks {
		if t.res.sl != nil {
			putSpanList(t.res.sl)
			t.res.sl = nil
		}
	}
	return st, det, err
}

// runTasks prunes the delegated ranges on a worker pool.
func runTasks(data []byte, d *dtd.DTD, proj *dtd.Projection, opts Options, tasks []*fragTask, workers int) {
	if workers > len(tasks) {
		workers = len(tasks)
	}
	ch := make(chan *fragTask)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				runTask(data, d, proj, opts, t)
			}
		}()
	}
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	wg.Wait()
}

// runTask prunes one range. Kept ranges record their output into a
// pooled span-gather list with absolute offsets (ResetBytesAt), so the
// spine's splice is list concatenation instead of a buffer copy; skip
// ranges never emit and run against the discard emitter — there is no
// writer here at all, so nothing can flush into a nil destination.
func runTask(data []byte, d *dtd.DTD, proj *dtd.Projection, opts Options, t *fragTask) {
	pr := prunerPool.Get().(*pruner)
	pr.s.ResetBytesAt(data, t.lo, t.hi)
	pr.prep(d, proj, opts)
	if t.skip {
		pr.useDiscard()
		t.res.err = pr.runSkipFragment()
		t.res.st = pr.st
	} else {
		sl := getSpanList(data)
		pr.useGather(sl)
		t.res.err = pr.runFragment(t.ctxSym, t.ctxBase)
		t.res.st = pr.st
		t.res.events = append([]int32(nil), pr.events...)
		t.res.sl = sl
	}
	pr.release()
	prunerPool.Put(pr)
}

// planner cuts the structural index into delegated content ranges.
type planner struct {
	ents        []index.Entry
	match       []int // Start entry index -> its End entry index
	p           *dtd.Projection
	target      int
	depthBudget int
	tasks       []*fragTask
}

// plan builds the task list: content ranges cut at element-tag
// boundaries, grouped to roughly target bytes, recursing into children
// larger than twice the target so a handful of dominant subtrees (an
// XMark root has only six children) still decompose across workers.
func plan(ix *index.Index, dataLen int, proj *dtd.Projection, workers, fragTarget int) []*fragTask {
	if ix.RootStart < 0 || ix.RootEnd <= ix.RootStart {
		return nil
	}
	root := ix.Entries[ix.RootStart]
	if root.Sym < 0 {
		// Undeclared root: the spine errors at the tag before any splice.
		return nil
	}
	target := fragTarget
	if target <= 0 {
		target = dataLen / (workers * 8)
		const minTarget, maxTarget = 128 << 10, 8 << 20
		if target < minTarget {
			target = minTarget
		}
		if target > maxTarget {
			target = maxTarget
		}
	}
	pl := &planner{
		ents:        ix.Entries,
		match:       buildMatch(ix.Entries),
		p:           proj,
		target:      target,
		depthBudget: 64,
	}
	kept := proj.Flags(root.Sym)&dtd.KeepElem != 0
	pl.content(ix.RootStart, kept, root.Sym)
	return pl.tasks
}

// buildMatch pairs every Start entry with its End entry.
func buildMatch(ents []index.Entry) []int {
	match := make([]int, len(ents))
	var stack []int
	for i := range ents {
		switch ents[i].Kind {
		case index.Start:
			stack = append(stack, i)
		case index.End:
			j := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			match[j] = i
		}
	}
	return match
}

// content plans the content of the element whose Start entry is pi,
// emitting tasks in document order.
func (pl *planner) content(pi int, kept bool, sym int32) {
	pd := pl.ents[pi].Depth
	end := pl.match[pi]
	endOff := pl.ents[end].Off // the parent's end tag: a valid cut point
	ctxBase := int(pd) + 1

	groupLo, acc := -1, 0
	closeAt := func(off int) {
		if groupLo >= 0 && off > groupLo {
			pl.tasks = append(pl.tasks, &fragTask{
				lo: groupLo, hi: off,
				skip:    !kept,
				ctxSym:  sym,
				ctxBase: ctxBase,
			})
		}
		groupLo, acc = -1, 0
	}

	i := pi + 1
	for i < end {
		e := &pl.ents[i]
		if e.Depth != pd+1 || (e.Kind != index.Start && e.Kind != index.StartEmpty) {
			// Comments, PIs, CDATA and deeper entries are not cut points;
			// they ride inside whichever range covers them.
			i++
			continue
		}
		var spanEnd, next int
		if e.Kind == index.StartEmpty {
			spanEnd, next = e.End, i+1
		} else {
			m := pl.match[i]
			spanEnd, next = pl.ents[m].End, m+1
		}
		size := spanEnd - e.Off
		if acc >= pl.target {
			closeAt(e.Off)
		}
		if e.Kind == index.Start && size > 2*pl.target && pl.depthBudget > 0 &&
			(!kept || e.Sym >= 0) {
			// Dominant subtree: the spine handles its start and end tags;
			// its content decomposes recursively.
			closeAt(e.Off)
			childKept := kept && e.Sym >= 0 && pl.p.Flags(e.Sym)&dtd.KeepElem != 0
			pl.depthBudget--
			pl.content(i, childKept, e.Sym)
			pl.depthBudget++
			i = next
			continue
		}
		if groupLo < 0 {
			groupLo = e.Off
		}
		acc += size
		i = next
	}
	closeAt(endOff)
}
