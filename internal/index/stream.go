package index

// Streaming structural indexing for the pipelined pruner. The batch
// Build API requires the whole document; StreamIndexer produces the
// same entries window-at-a-time, carrying element depth across window
// boundaries and telling the caller how many bytes of each window were
// covered by complete constructs — everything after that (a trailing
// text run, an incomplete construct) must be re-presented at the start
// of the next window, so a presented window always ends exactly at the
// end of a complete '<'-construct and no text run or construct ever
// straddles one.
//
// Classification is the same speculative, context-free routine Build
// uses, refactored into a tri-state form: a construct is complete
// (streamOK), needs bytes beyond the window (streamNeedMore — retry
// when more input arrives), or is malformed in a way the serial
// scanner is guaranteed to error at within the bytes already seen
// (streamMalformed — a '<' inside a start tag, quoted or bare). Only
// the malformed case kills a window: the caller stops delegating and
// lets the spine pruner reproduce the exact serial error.

import (
	"bytes"
	"fmt"
)

// streamStatus is the tri-state result of classifying one construct
// against a bounded window.
type streamStatus uint8

const (
	// streamOK: the construct is complete within the window.
	streamOK streamStatus = iota
	// streamNeedMore: the construct extends past the window; retry with
	// more bytes.
	streamNeedMore
	// streamMalformed: the serial scanner is guaranteed to reject the
	// construct using only the bytes already seen ('<' inside a start
	// tag, bare or inside a closed quoted value).
	streamMalformed
)

// classifyStream classifies the construct starting at the structural
// '<' at data[off], like classifyAt but distinguishing "incomplete"
// from "malformed". It is context-free: the result depends only on
// bytes from off forward.
func classifyStream(data []byte, off int, lookup func([]byte) (int32, bool)) (Entry, streamStatus) {
	e := Entry{Off: off, Sym: -1}
	rest := data[off+1:]
	if len(rest) == 0 {
		return e, streamNeedMore
	}
	switch rest[0] {
	case '/':
		return classifyEndTag(data, off, lookup)
	case '?':
		// PI: ends at the first "?>".
		k := bytes.Index(rest[1:], []byte("?>"))
		if k < 0 {
			return e, streamNeedMore
		}
		e.Kind = PI
		e.End = off + 2 + k + 2
		return e, streamOK
	case '!':
		if bytes.HasPrefix(rest, []byte("!--")) {
			k := bytes.Index(rest[3:], []byte("-->"))
			if k < 0 {
				return e, streamNeedMore
			}
			e.Kind = Comment
			e.End = off + 4 + k + 3
			return e, streamOK
		}
		if bytes.HasPrefix(rest, []byte("![CDATA[")) {
			k := bytes.Index(rest[8:], []byte("]]>"))
			if k < 0 {
				return e, streamNeedMore
			}
			e.Kind = CDATA
			e.End = off + 9 + k + 3
			return e, streamOK
		}
		return classifyDirective(data, off)
	default:
		return classifyStartTag(data, off, lookup)
	}
}

// StreamIndexer builds a structural index incrementally, one window at
// a time. Windows must be presented in document order, each beginning
// with the bytes the previous Window call did not consume. The zero
// value is ready to use after setting Lookup and MaxTokenSize.
type StreamIndexer struct {
	// MaxTokenSize bounds a single construct or inter-construct text
	// gap, mirroring the serial scanner's sliding-buffer cap. 0 means
	// no bound.
	MaxTokenSize int
	// Lookup resolves a tag's local name to its DTD symbol; nil leaves
	// every Sym at -1.
	Lookup func(local []byte) (int32, bool)

	depth int32 // open-element depth carried across windows
	dead  bool  // a malformed construct was seen; no further indexing
	ents  []Entry
}

// Window is the index of one presented window.
type Window struct {
	// Entries are the complete constructs found, in document order,
	// with absolute depths (the same Depth convention as Build). The
	// slice is reused by the next Window call.
	Entries []Entry
	// Consumed is the end offset of the last complete construct: the
	// caller must carry data[Consumed:] — the trailing text run plus
	// any incomplete construct — into the next window.
	Consumed int
	// Dead reports a construct the serial scanner is guaranteed to
	// error at within this window (a malformed start tag, or an end
	// tag with no element open). Entries stops before it; the caller
	// must stop delegating and let the spine reproduce the error.
	Dead bool
	// Err is a MaxTokenSize violation (wrapped ErrTokenTooLong): a
	// single construct or text gap exceeded the cap.
	Err error
}

// Depth returns the current open-element depth (the number of Start
// entries seen without their End), i.e. the depth at the start of the
// next window.
func (si *StreamIndexer) Depth() int { return int(si.depth) }

// Reset returns the indexer to its initial state, keeping buffers.
func (si *StreamIndexer) Reset() {
	si.depth = 0
	si.dead = false
	si.ents = si.ents[:0]
}

// Window indexes one window of document content. data must start with
// the bytes the previous call did not consume (data[Consumed:]).
func (si *StreamIndexer) Window(data []byte) Window {
	si.ents = si.ents[:0]
	w := Window{}
	if si.dead {
		w.Dead = true
		w.Entries = si.ents
		return w
	}
	maxTok := si.MaxTokenSize
	pos := 0
	runStart := 0 // end of the last accepted construct in this window
	for pos < len(data) {
		j := bytes.IndexByte(data[pos:], '<')
		if j < 0 {
			break
		}
		j += pos
		e, st := classifyStream(data, j, si.Lookup)
		if st == streamNeedMore {
			break
		}
		if st == streamMalformed {
			si.dead = true
			w.Dead = true
			break
		}
		if maxTok > 0 {
			// The carry discipline guarantees the text run since the last
			// construct starts inside this window, so these per-window
			// checks are the cumulative ones stitch applies to the whole
			// document.
			if gap := e.Off - runStart; gap > maxTok {
				w.Err = fmt.Errorf("%w (%d-byte text run)", ErrTokenTooLong, gap)
				break
			}
			if ln := e.End - e.Off; ln > maxTok {
				w.Err = fmt.Errorf("%w (%d-byte construct)", ErrTokenTooLong, ln)
				break
			}
		}
		e.Depth = si.depth
		switch e.Kind {
		case Start:
			si.depth++
		case StartEmpty:
			// Depth unchanged. Unlike Build, depth 0 is fine here: the
			// serial pruner accepts empty-element tags at document level.
		case End:
			if si.depth == 0 {
				// No element open: the spine errors at this tag
				// ("unbalanced end element"), exactly like serial.
				si.dead = true
				w.Dead = true
			} else {
				si.depth--
				e.Depth = si.depth
			}
		}
		if w.Dead {
			break
		}
		si.ents = append(si.ents, e)
		pos = e.End
		runStart = e.End
	}
	w.Entries = si.ents
	w.Consumed = runStart
	return w
}
