// Package index builds a structural index of an XML document for the
// parallel pruner, simdjson-style: the input is split into byte chunks
// scanned concurrently for structural '<' positions, each classified as
// a start tag, end tag, comment, CDATA section, processing instruction
// or directive; a cheap sequential fix-up pass then stitches chunk
// boundaries (a construct spanning a cut invalidates the speculative
// entries it covers) and prefix-sums depth deltas into absolute depths.
//
// Classification is context-free: given that an offset really is a
// structural '<' (outside every tag, comment, CDATA section, PI and
// directive), the construct's kind and extent depend only on the bytes
// from that offset forward. Workers therefore scan speculatively —
// assuming their chunk starts in element content — and the stitch pass
// validates each speculative entry by reaching it through verified
// ground: an entry is kept only when the scan cursor arrives at its
// offset through a gap the worker proved free of '<'. Entries the
// cursor lands inside of (the worker had desynchronised) are dropped
// and the region is rescanned serially until it resynchronises.
//
// The index is intentionally conservative: structure it cannot classify
// (an unterminated construct, '<' inside a quoted attribute value, no
// single non-empty root) reports ErrStructure and the caller falls back
// to the serial pruner, which reproduces the exact serial verdict.
package index

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Kind classifies one structural entry.
type Kind uint8

const (
	// Start is a start tag <e ...>; StartEmpty an empty-element tag
	// <e .../>; End an end tag </e>.
	Start Kind = iota
	StartEmpty
	End
	// Comment, PI, CDATA and Directive are the non-element constructs;
	// they do not change depth.
	Comment
	PI
	CDATA
	Directive
)

// Entry is one structural position: the construct's byte extent
// [Off, End), its kind, the element symbol for tags (-1 when the name
// is not in the DTD or not a tag), and the absolute element depth
// assigned by the stitch pass. Depth is the number of open elements
// enclosing the construct, with an End tag recording the depth of the
// element it closes — an element's Start and End entries carry the
// same Depth (the root's are 0, its children's 1, and so on).
type Entry struct {
	Off   int
	End   int
	Sym   int32
	Depth int32
	Kind  Kind
}

// Options configures Build.
type Options struct {
	// Workers bounds stage-1 parallelism; 0 means GOMAXPROCS.
	Workers int
	// ChunkSize is the byte-chunk granularity for the parallel scan;
	// 0 picks a size from the input length and worker count.
	ChunkSize int
	// MaxTokenSize bounds a single construct or inter-construct text
	// gap; longer ones fail with ErrTokenTooLong, mirroring the serial
	// scanner's sliding-buffer cap. 0 means no stage-1 bound.
	MaxTokenSize int
	// Lookup resolves a tag's local name to its DTD symbol (for Entry.Sym);
	// nil leaves every Sym at -1.
	Lookup func(local []byte) (int32, bool)
}

// Index is the structural index of one document.
type Index struct {
	Entries []Entry
	// RootStart and RootEnd are the Entries indexes of the root
	// element's start and end tags.
	RootStart, RootEnd int

	chunks [][]Entry // pooled per-chunk scratch
}

// ErrStructure reports document structure the index cannot describe
// (an unterminated construct, '<' inside a quoted value, no single
// non-empty root element, unbalanced tags). The caller is expected to
// fall back to the serial pruner, which either handles the input or
// reproduces the serial error verdict.
var ErrStructure = errors.New("index: document structure unsuitable for parallel pruning")

// ErrTokenTooLong reports a single construct or text gap longer than
// Options.MaxTokenSize, detected in stage 1 before any fragment work.
var ErrTokenTooLong = errors.New("index: token exceeds the maximum token size")

var indexPool = sync.Pool{New: func() any { return new(Index) }}

// Build scans data in parallel and returns its structural index.
// Errors are either ErrStructure (fall back to serial), ErrTokenTooLong
// (hard failure, matches the serial scanner's cap) — both wrapped.
func Build(data []byte, opts Options) (*Index, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunk := opts.ChunkSize
	if chunk <= 0 {
		chunk = len(data) / (workers * 4)
		const minChunk, maxChunk = 64 << 10, 8 << 20
		if chunk < minChunk {
			chunk = minChunk
		}
		if chunk > maxChunk {
			chunk = maxChunk
		}
	}
	n := (len(data) + chunk - 1) / chunk
	if n < 1 {
		n = 1
	}

	ix := indexPool.Get().(*Index)
	ix.Entries = ix.Entries[:0]
	ix.RootStart, ix.RootEnd = -1, -1
	if cap(ix.chunks) < n {
		ix.chunks = make([][]Entry, n)
	}
	chunks := ix.chunks[:n]
	// anoms[i] is the offset where chunk i's worker stopped classifying
	// (an unclassifiable '<'), or -1.
	anoms := make([]int, n)

	// Stage 1a: speculative parallel chunk scan.
	var wg sync.WaitGroup
	conc := workers
	if conc > n {
		conc = n
	}
	var next int32
	nextMu := sync.Mutex{}
	take := func() int {
		nextMu.Lock()
		i := int(next)
		next++
		nextMu.Unlock()
		return i
	}
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ci := take()
				if ci >= n {
					return
				}
				from := ci * chunk
				to := from + chunk
				if to > len(data) {
					to = len(data)
				}
				chunks[ci], anoms[ci] = scanChunk(data, from, to, chunks[ci][:0], opts.Lookup)
			}
		}()
	}
	wg.Wait()

	// Stage 1b: sequential stitch — validate speculative entries by
	// reaching them through verified ground, repair desynchronised
	// regions, and prefix-sum depths.
	if err := ix.stitch(data, chunks, anoms, chunk, opts); err != nil {
		ix.Release()
		return nil, err
	}
	return ix, nil
}

// Release returns the index's buffers to the pool. The index and its
// entries must not be used afterwards.
func (ix *Index) Release() {
	ix.RootStart, ix.RootEnd = -1, -1
	indexPool.Put(ix)
}

// scanChunk finds and classifies structural '<' positions in [from,to),
// assuming from lies in element content. Constructs may extend past to;
// classification reads as far as it needs. Returns the entries and the
// offset of the first '<' it could not classify (-1 when none).
func scanChunk(data []byte, from, to int, out []Entry, lookup func([]byte) (int32, bool)) ([]Entry, int) {
	pos := from
	for pos < to {
		j := bytes.IndexByte(data[pos:to], '<')
		if j < 0 {
			break
		}
		off := pos + j
		e, ok := classifyAt(data, off, lookup)
		if !ok {
			return out, off
		}
		out = append(out, e)
		pos = e.End
	}
	return out, -1
}

// classifyAt classifies the construct starting at the structural '<' at
// data[off]. It is context-free: the result depends only on bytes from
// off forward. ok is false when the construct cannot be classified
// (unterminated, '<' inside the tag or a quoted value, malformed name
// start handled permissively — see below). The batch index does not
// care why classification failed; the streaming indexer does, so the
// guts live in classifyStream (stream.go) and this wrapper collapses
// its tri-state result.
func classifyAt(data []byte, off int, lookup func([]byte) (int32, bool)) (Entry, bool) {
	e, st := classifyStream(data, off, lookup)
	return e, st == streamOK
}

// classifyEndTag scans "</name ... >". Malformed interiors still get an
// extent (the first '>'): the fragment that re-tokenizes the region
// reports the precise serial error.
func classifyEndTag(data []byte, off int, lookup func([]byte) (int32, bool)) (Entry, streamStatus) {
	e := Entry{Off: off, Sym: -1, Kind: End}
	k := bytes.IndexByte(data[off:], '>')
	if k < 0 {
		return e, streamNeedMore
	}
	e.End = off + k + 1
	if lookup != nil {
		name := nameAt(data[off+2 : off+k])
		if local := localOf(name); len(local) > 0 {
			if sym, ok := lookup(local); ok {
				e.Sym = sym
			}
		}
	}
	return e, streamOK
}

// classifyStartTag scans "<name attr='...' ...>" respecting quotes ('>'
// is legal inside a quoted attribute value). A '<' inside the tag —
// quoted or not — is malformed: the serial scanner is guaranteed to
// error at that byte with no later input needed, which is what lets the
// streaming indexer distinguish it from a tag merely cut short by a
// window boundary (streamNeedMore).
func classifyStartTag(data []byte, off int, lookup func([]byte) (int32, bool)) (Entry, streamStatus) {
	e := Entry{Off: off, Sym: -1, Kind: Start}
	i := off + 1
	for i < len(data) {
		switch c := data[i]; c {
		case '>':
			e.End = i + 1
			if data[i-1] == '/' {
				e.Kind = StartEmpty
			}
			if lookup != nil {
				name := nameAt(data[off+1 : i])
				if local := localOf(name); len(local) > 0 {
					if sym, ok := lookup(local); ok {
						e.Sym = sym
					}
				}
			}
			return e, streamOK
		case '"', '\'':
			k := bytes.IndexByte(data[i+1:], c)
			if k < 0 {
				return e, streamNeedMore
			}
			if bytes.IndexByte(data[i+1:i+1+k], '<') >= 0 {
				return e, streamMalformed
			}
			i += k + 2
		case '<':
			return e, streamMalformed
		default:
			i++
		}
	}
	return e, streamNeedMore
}

// classifyDirective scans a "<!DOCTYPE ...>"-style directive with the
// serial scanner's rules: quoted angle brackets ignored, nested <...>
// groups tracked by depth, comments inside skipped.
func classifyDirective(data []byte, off int) (Entry, streamStatus) {
	e := Entry{Off: off, Sym: -1, Kind: Directive}
	inquote := byte(0)
	depth := 0
	i := off + 2 // past "<!"; the first byte after is uninterpreted
	for i < len(data) {
		b := data[i]
		i++
		if inquote == 0 && b == '>' && depth == 0 {
			e.End = i
			return e, streamOK
		}
		switch {
		case b == inquote:
			inquote = 0
		case inquote != 0:
		case b == '\'' || b == '"':
			inquote = b
		case b == '>' && depth > 0:
			depth--
		case b == '<':
			if bytes.HasPrefix(data[i:], []byte("!--")) {
				k := bytes.Index(data[i+3:], []byte("-->"))
				if k < 0 {
					return e, streamNeedMore
				}
				i += 3 + k + 3
			} else {
				depth++
			}
		}
	}
	return e, streamNeedMore
}

// nameAt returns the leading XML-name byte run of b (the tag name).
func nameAt(b []byte) []byte {
	i := 0
	for i < len(b) && isNameByte(b[i]) {
		i++
	}
	return b[:i]
}

// localOf strips a single namespace prefix, mirroring scan.splitName's
// accepted shape; names it would reject return nil (Sym stays -1).
func localOf(name []byte) []byte {
	first := -1
	n := 0
	for i, c := range name {
		if c == ':' {
			if first < 0 {
				first = i
			}
			n++
		}
	}
	if n > 1 {
		return nil
	}
	if n == 1 && first > 0 && first < len(name)-1 {
		return name[first+1:]
	}
	return name
}

// isNameByte mirrors scan.isNameByte: single-byte characters allowed
// inside names, with multi-byte runes accepted permissively.
func isNameByte(c byte) bool {
	return 'A' <= c && c <= 'Z' ||
		'a' <= c && c <= 'z' ||
		'0' <= c && c <= '9' ||
		c == '_' || c == ':' || c == '.' || c == '-' ||
		c >= 0x80
}

// stitch merges the per-chunk speculative entries into ix.Entries,
// dropping entries invalidated by constructs that span chunk cuts,
// rescanning desynchronised regions, assigning absolute depths, and
// locating the root element.
func (ix *Index) stitch(data []byte, chunks [][]Entry, anoms []int, chunkSize int, opts Options) error {
	maxTok := opts.MaxTokenSize
	cursor := 0
	runStart := 0 // end of the last accepted construct: text-run origin
	depth := int32(0)
	rootClosed := false

	accept := func(e Entry) error {
		if maxTok > 0 {
			if gap := e.Off - runStart; gap > maxTok {
				return fmt.Errorf("%w (%d-byte text run)", ErrTokenTooLong, gap)
			}
			if ln := e.End - e.Off; ln > maxTok {
				return fmt.Errorf("%w (%d-byte construct)", ErrTokenTooLong, ln)
			}
		}
		e.Depth = depth
		switch e.Kind {
		case Start:
			if depth == 0 {
				if ix.RootStart >= 0 {
					return fmt.Errorf("%w: content after the root element", ErrStructure)
				}
				ix.RootStart = len(ix.Entries)
			}
			depth++
		case StartEmpty:
			if depth == 0 {
				// An empty-element root (or a second root): tiny content
				// either way, not worth fragmenting.
				return fmt.Errorf("%w: empty-element tag at depth 0", ErrStructure)
			}
		case End:
			if depth == 0 {
				return fmt.Errorf("%w: unbalanced end tag", ErrStructure)
			}
			// An End records the depth of the element it closes, so an
			// element's Start and End entries carry the same Depth.
			depth--
			e.Depth = depth
			if depth == 0 {
				ix.RootEnd = len(ix.Entries)
				rootClosed = true
			}
		}
		ix.Entries = append(ix.Entries, e)
		runStart = e.End
		return nil
	}

	for ci := range chunks {
		from := ci * chunkSize
		to := from + chunkSize
		if to > len(data) {
			to = len(data)
		}
		ents := chunks[ci]
		stop := to
		if anoms[ci] >= 0 {
			stop = anoms[ci]
		}
		i := 0
		for {
			for i < len(ents) && ents[i].Off < cursor {
				i++
			}
			if cursor >= to {
				break
			}
			// Is the cursor on ground this worker verified as text (no
			// '<' between the previous construct end and the next entry)?
			gapStart := from
			if i > 0 {
				gapStart = ents[i-1].End
			}
			if i < len(ents) {
				if cursor >= gapStart {
					if err := accept(ents[i]); err != nil {
						return err
					}
					cursor = ents[i].End
					i++
					continue
				}
			} else if cursor >= gapStart && cursor <= stop {
				if stop == to {
					cursor = to
					break // verified text to the chunk edge
				}
				// Verified up to the worker's anomaly: fall through to
				// rescan at it (classification will fail the same way).
				cursor = stop
			}
			// Desynchronised (or at an anomaly): rescan serially until the
			// cursor lands back on verified ground.
			j := bytes.IndexByte(data[cursor:], '<')
			if j < 0 {
				cursor = len(data)
				break
			}
			e, ok := classifyAt(data, cursor+j, opts.Lookup)
			if !ok {
				return fmt.Errorf("%w: unclassifiable construct at byte %d", ErrStructure, cursor+j)
			}
			if err := accept(e); err != nil {
				return err
			}
			cursor = e.End
		}
	}
	if maxTok > 0 && len(data)-runStart > maxTok {
		return fmt.Errorf("%w (%d-byte text run)", ErrTokenTooLong, len(data)-runStart)
	}
	if depth != 0 {
		return fmt.Errorf("%w: %d unterminated element(s)", ErrStructure, depth)
	}
	if ix.RootStart < 0 || !rootClosed {
		return fmt.Errorf("%w: no root element", ErrStructure)
	}
	return nil
}
