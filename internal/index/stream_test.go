package index

import (
	"errors"
	"strings"
	"testing"
)

// feedWindows drives a StreamIndexer the way the pipelined pruner does:
// each simulated read appends to the carry, the indexer classifies the
// assembled window, and everything after Consumed carries forward.
// Returned entries are rebased to absolute document offsets.
func feedWindows(t *testing.T, doc string, chunk int, maxTok int) ([]Entry, bool, error) {
	t.Helper()
	si := StreamIndexer{
		MaxTokenSize: maxTok,
		Lookup:       lookupFor("root", "item", "name", "pad", "empty", "deep", "deeper", "deepest", "a", "b"),
	}
	var all []Entry
	var carry []byte
	docPos := 0
	for lo := 0; lo < len(doc) || len(carry) > 0; lo += chunk {
		hi := lo + chunk
		if hi > len(doc) {
			hi = len(doc)
		}
		if lo > len(doc) {
			lo = len(doc)
		}
		data := append(append([]byte(nil), carry...), doc[lo:hi]...)
		w := si.Window(data)
		for _, e := range w.Entries {
			e.Off += docPos
			e.End += docPos
			all = append(all, e)
		}
		if w.Err != nil {
			return all, w.Dead, w.Err
		}
		if w.Dead {
			return all, true, nil
		}
		carry = append(carry[:0], data[w.Consumed:]...)
		docPos += w.Consumed
		if hi == len(doc) {
			break
		}
	}
	return all, false, nil
}

// TestStreamMatchesBuild: window-at-a-time indexing over every chunk
// size — including cuts mid-tag, mid-comment, mid-CDATA and mid-entity —
// yields the exact entry list the batch builder produces.
func TestStreamMatchesBuild(t *testing.T) {
	doc := `<?xml version="1.0"?><!DOCTYPE root [<!ELEMENT root ANY>]>` +
		`<root><item id="1"><name>first &amp; last</name></item>` +
		`<!-- a comment with <tags> inside -->` +
		`<item id="2>x"><![CDATA[not <a> tag]]></item>` +
		`<pad>` + strings.Repeat("x", 100) + `</pad>` +
		`<empty/><deep><deeper><deepest>t</deepest></deeper></deep></root>`
	lookup := lookupFor("root", "item", "name", "pad", "empty", "deep", "deeper", "deepest", "a", "b")
	ref, err := Build([]byte(doc), Options{Workers: 1, ChunkSize: len(doc) + 1, Lookup: lookup})
	if err != nil {
		t.Fatalf("reference Build: %v", err)
	}
	want := append([]Entry(nil), ref.Entries...)
	ref.Release()

	for _, chunk := range []int{1, 2, 3, 5, 7, 11, 16, 33, 64, 100, 255, len(doc), len(doc) + 7} {
		got, dead, werr := feedWindows(t, doc, chunk, 0)
		if werr != nil || dead {
			t.Fatalf("chunk %d: err=%v dead=%v", chunk, werr, dead)
		}
		if len(got) != len(want) {
			t.Fatalf("chunk %d: %d entries, want %d\ngot:  %+v\nwant: %+v", chunk, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("chunk %d entry %d: %+v, want %+v", chunk, i, got[i], want[i])
			}
		}
	}
}

// TestStreamDeadConditions: only the constructs the serial scanner is
// guaranteed to reject mark the stream dead — a bare '<' inside a start
// tag and an end tag at depth zero. Multiple roots, which the batch
// builder rejects as ErrStructure, are NOT dead here: the serial
// scanner accepts the bytes and errors (or not) at a higher layer, so
// the spine must see them.
func TestStreamDeadConditions(t *testing.T) {
	dead := []string{
		`<a><b <c></a>`,
		`<a x="<"></a>`,
		`</a>`,
		`<a></a></b>`,
	}
	for _, doc := range dead {
		for _, chunk := range []int{1, 4, 1 << 10} {
			_, isDead, err := feedWindows(t, doc, chunk, 0)
			if err != nil {
				t.Fatalf("%q chunk %d: unexpected err %v", doc, chunk, err)
			}
			if !isDead {
				t.Errorf("%q chunk %d: expected dead stream", doc, chunk)
			}
		}
	}
	alive := []string{
		`<a></a><b></b>`, // two roots: serial layer decides
		`<a/><b/>`,
		`<a>text with > and "<!" like bytes</a>`,
		`<a><!-- < inside comment --><![CDATA[< raw]]></a>`,
	}
	for _, doc := range alive {
		for _, chunk := range []int{1, 4, 1 << 10} {
			ents, isDead, err := feedWindows(t, doc, chunk, 0)
			if err != nil || isDead {
				t.Errorf("%q chunk %d: err=%v dead=%v", doc, chunk, err, isDead)
			}
			if len(ents) == 0 {
				t.Errorf("%q chunk %d: no entries", doc, chunk)
			}
		}
	}
}

// TestStreamDeadLatches: once dead, later windows return immediately.
func TestStreamDeadLatches(t *testing.T) {
	si := StreamIndexer{Lookup: lookupFor("a")}
	w := si.Window([]byte(`</a>`))
	if !w.Dead {
		t.Fatal("end tag at depth 0 should be dead")
	}
	w = si.Window([]byte(`<a></a>`))
	if !w.Dead || len(w.Entries) != 0 {
		t.Fatalf("dead indexer revived: %+v", w)
	}
}

// TestStreamTokenTooLong mirrors the batch builder's cap: an oversized
// construct or inter-construct text run fails with ErrTokenTooLong even
// when it spans many windows.
func TestStreamTokenTooLong(t *testing.T) {
	cases := []string{
		`<a x="` + strings.Repeat("v", 200) + `">x</a>`,
		`<a>` + strings.Repeat("t", 200) + `</a>`,
		`<a><!--` + strings.Repeat("c", 200) + `--></a>`,
	}
	for _, doc := range cases {
		for _, chunk := range []int{7, 64, 1 << 10} {
			_, _, err := feedWindows(t, doc, chunk, 64)
			if !errors.Is(err, ErrTokenTooLong) {
				t.Errorf("%.20q chunk %d: got %v, want ErrTokenTooLong", doc, chunk, err)
			}
		}
		if _, _, err := feedWindows(t, doc, 16, 1<<20); err != nil {
			t.Errorf("%.20q generous cap: %v", doc, err)
		}
	}
}

// TestStreamDepthCarries: depth persists across windows so entries in
// later windows keep absolute depths.
func TestStreamDepthCarries(t *testing.T) {
	doc := `<a><b><c>t</c></b></a>`
	ents, dead, err := feedWindows(t, doc, 4, 0)
	if err != nil || dead {
		t.Fatalf("err=%v dead=%v", err, dead)
	}
	ref, err := Build([]byte(doc), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Release()
	if len(ents) != len(ref.Entries) {
		t.Fatalf("%d entries, want %d", len(ents), len(ref.Entries))
	}
	for i := range ents {
		if ents[i].Depth != ref.Entries[i].Depth {
			t.Errorf("entry %d: depth %d, want %d", i, ents[i].Depth, ref.Entries[i].Depth)
		}
	}
}
