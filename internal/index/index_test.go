package index

import (
	"errors"
	"strings"
	"testing"
)

// lookupFor builds a Lookup over a fixed name→symbol table.
func lookupFor(names ...string) func([]byte) (int32, bool) {
	m := make(map[string]int32, len(names))
	for i, n := range names {
		m[n] = int32(i)
	}
	return func(local []byte) (int32, bool) {
		sym, ok := m[string(local)]
		return sym, ok
	}
}

func TestBuildClassifiesConstructs(t *testing.T) {
	doc := `<?xml version="1.0"?><!DOCTYPE a [<!ELEMENT a (b)*>]>` +
		`<a><!-- c --><b x="1>2">t</b><![CDATA[<raw>]]><b/><?pi d?></a>`
	ix, err := Build([]byte(doc), Options{Workers: 1, Lookup: lookupFor("a", "b")})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer ix.Release()

	wantKinds := []Kind{PI, Directive, Start, Comment, Start, End, CDATA, StartEmpty, PI, End}
	if len(ix.Entries) != len(wantKinds) {
		t.Fatalf("got %d entries, want %d: %+v", len(ix.Entries), len(wantKinds), ix.Entries)
	}
	for i, k := range wantKinds {
		if ix.Entries[i].Kind != k {
			t.Errorf("entry %d: kind %d, want %d (%+v)", i, ix.Entries[i].Kind, k, ix.Entries[i])
		}
	}
	if ix.RootStart != 2 || ix.RootEnd != len(wantKinds)-1 {
		t.Errorf("root entries %d..%d, want 2..%d", ix.RootStart, ix.RootEnd, len(wantKinds)-1)
	}
	// Depths: the prolog and the root's own tags at 0, everything
	// inside <a> at 1.
	for i, e := range ix.Entries {
		want := int32(1)
		if i < 3 || i == len(wantKinds)-1 {
			want = 0
		}
		if e.Depth != want {
			t.Errorf("entry %d (kind %d): depth %d, want %d", i, e.Kind, e.Depth, want)
		}
	}
	// Symbols: the <b> start and </b> end resolve, the quoted ">" inside
	// the attribute does not end the tag early.
	if ix.Entries[4].Sym != 1 || ix.Entries[5].Sym != 1 || ix.Entries[7].Sym != 1 {
		t.Errorf("b symbols: %+v", ix.Entries)
	}
	bStart := ix.Entries[4]
	if got := doc[bStart.Off:bStart.End]; got != `<b x="1>2">` {
		t.Errorf("b extent: %q", got)
	}
}

// TestBuildChunkSizeSweep checks that every chunk size — including ones
// that cut mid-tag, mid-comment, mid-CDATA and mid-name — produces the
// same index as a single-chunk build.
func TestBuildChunkSizeSweep(t *testing.T) {
	doc := `<root><item id="1"><name>first &amp; last</name></item>` +
		`<!-- a comment with <tags> inside -->` +
		`<item id="2"><![CDATA[not <a> tag]]></item>` +
		`<pad>` + strings.Repeat("x", 100) + `</pad>` +
		`<empty/><deep><deeper><deepest>t</deepest></deeper></deep></root>`
	lookup := lookupFor("root", "item", "name", "pad", "empty", "deep", "deeper", "deepest")

	ref, err := Build([]byte(doc), Options{Workers: 1, ChunkSize: len(doc) + 1, Lookup: lookup})
	if err != nil {
		t.Fatalf("reference Build: %v", err)
	}
	want := append([]Entry(nil), ref.Entries...)
	wantRS, wantRE := ref.RootStart, ref.RootEnd
	ref.Release()

	for _, cs := range []int{1, 2, 3, 5, 7, 11, 16, 33, 64, 100, 255} {
		for _, workers := range []int{1, 2, 4, 8} {
			ix, err := Build([]byte(doc), Options{Workers: workers, ChunkSize: cs, Lookup: lookup})
			if err != nil {
				t.Fatalf("chunk %d workers %d: %v", cs, workers, err)
			}
			if len(ix.Entries) != len(want) {
				t.Fatalf("chunk %d workers %d: %d entries, want %d", cs, workers, len(ix.Entries), len(want))
			}
			for i := range want {
				if ix.Entries[i] != want[i] {
					t.Errorf("chunk %d workers %d entry %d: %+v, want %+v", cs, workers, i, ix.Entries[i], want[i])
				}
			}
			if ix.RootStart != wantRS || ix.RootEnd != wantRE {
				t.Errorf("chunk %d workers %d: root %d..%d, want %d..%d", cs, workers, ix.RootStart, ix.RootEnd, wantRS, wantRE)
			}
			ix.Release()
		}
	}
}

func TestBuildMaxTokenSize(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"long start tag", `<root><e a="` + strings.Repeat("v", 100) + `">x</e></root>`},
		{"long text run", `<root>` + strings.Repeat("t", 200) + `</root>`},
		{"long comment", `<root><!--` + strings.Repeat("c", 150) + `--></root>`},
		{"long cdata", `<root><![CDATA[` + strings.Repeat("d", 150) + `]]></root>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Build([]byte(tc.doc), Options{Workers: 2, ChunkSize: 16, MaxTokenSize: 64}); !errors.Is(err, ErrTokenTooLong) {
				t.Fatalf("got %v, want ErrTokenTooLong", err)
			}
			// The same document indexes fine with a generous cap.
			ix, err := Build([]byte(tc.doc), Options{Workers: 2, ChunkSize: 16, MaxTokenSize: 1 << 20})
			if err != nil {
				t.Fatalf("generous cap: %v", err)
			}
			ix.Release()
		})
	}
}

func TestBuildStructureErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"two roots", `<a></a><b></b>`},
		{"empty-element root", `<a/>`},
		{"unbalanced end", `</a>`},
		{"unterminated element", `<a><b></b>`},
		{"unterminated comment", `<a><!-- no end</a>`},
		{"unterminated cdata", `<a><![CDATA[ no end</a>`},
		{"unterminated tag", `<a><b `},
		{"angle in attribute", `<a><b x="<"></b></a>`},
		{"no root", `   `},
		{"text only", `just text`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, cs := range []int{3, 1 << 20} {
				if _, err := Build([]byte(tc.doc), Options{Workers: 2, ChunkSize: cs}); !errors.Is(err, ErrStructure) {
					t.Fatalf("chunk %d: got %v, want ErrStructure", cs, err)
				}
			}
		})
	}
}

func TestBuildNoLookupLeavesSymsUnset(t *testing.T) {
	ix, err := Build([]byte(`<a><b>t</b></a>`), Options{Workers: 1})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer ix.Release()
	for i, e := range ix.Entries {
		if e.Sym != -1 {
			t.Errorf("entry %d: sym %d, want -1", i, e.Sym)
		}
	}
}
