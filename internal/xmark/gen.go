package xmark

import (
	"fmt"
	"math/rand"

	"xmlproj/internal/tree"
)

// Cardinalities at scale factor 1.0, following xmlgen (a factor-1
// document is roughly 100 MB).
const (
	baseCategories     = 1000
	baseItems          = 21750
	baseOpenAuctions   = 12000
	baseClosedAuctions = 9750
	basePersons        = 25500
)

// regionShares splits the items across the six regions, matching the
// generator's skew (Europe and North America dominate).
var regionShares = []struct {
	name  string
	share float64
}{
	{"africa", 0.05},
	{"asia", 0.10},
	{"australia", 0.10},
	{"europe", 0.30},
	{"namerica", 0.40},
	{"samerica", 0.05},
}

// Generator produces XMark auction documents deterministically.
type Generator struct {
	rng *rand.Rand

	nCategories, nItems, nOpen, nClosed, nPersons int
}

// NewGenerator returns a generator at the given scale factor, seeded
// deterministically (same factor + seed → byte-identical document).
func NewGenerator(factor float64, seed int64) *Generator {
	atLeast := func(n int) int {
		if n < 1 {
			return 1
		}
		return n
	}
	return &Generator{
		rng:         rand.New(rand.NewSource(seed)),
		nCategories: atLeast(int(baseCategories * factor)),
		nItems:      atLeast(int(baseItems * factor)),
		nOpen:       atLeast(int(baseOpenAuctions * factor)),
		nClosed:     atLeast(int(baseClosedAuctions * factor)),
		nPersons:    atLeast(int(basePersons * factor)),
	}
}

// Document generates the whole auction site.
func (g *Generator) Document() *tree.Document {
	site := tree.NewElement("site",
		g.regions(),
		g.categories(),
		g.catgraph(),
		g.people(),
		g.openAuctions(),
		g.closedAuctions(),
	)
	return tree.NewDocument(site)
}

func (g *Generator) categories() *tree.Node {
	cats := tree.NewElement("categories")
	for i := 0; i < g.nCategories; i++ {
		c := tree.NewElement("category", g.nameEl(), g.description())
		c.SetAttr("id", fmt.Sprintf("category%d", i))
		cats.Append(c)
	}
	return cats
}

func (g *Generator) catgraph() *tree.Node {
	cg := tree.NewElement("catgraph")
	for i := 0; i < g.nCategories; i++ {
		e := tree.NewElement("edge")
		e.SetAttr("from", fmt.Sprintf("category%d", g.rng.Intn(g.nCategories)))
		e.SetAttr("to", fmt.Sprintf("category%d", g.rng.Intn(g.nCategories)))
		cg.Append(e)
	}
	return cg
}

func (g *Generator) regions() *tree.Node {
	regions := tree.NewElement("regions")
	itemID := 0
	remaining := g.nItems
	for i, r := range regionShares {
		n := int(float64(g.nItems) * r.share)
		if i == len(regionShares)-1 {
			n = remaining
		}
		if n > remaining {
			n = remaining
		}
		remaining -= n
		region := tree.NewElement(r.name)
		for j := 0; j < n; j++ {
			region.Append(g.item(itemID))
			itemID++
		}
		regions.Append(region)
	}
	return regions
}

func (g *Generator) item(id int) *tree.Node {
	it := tree.NewElement("item",
		g.pcdata("location", g.country()),
		g.pcdata("quantity", fmt.Sprintf("%d", 1+g.rng.Intn(5))),
		g.nameEl(),
		g.pcdata("payment", g.payment()),
		g.description(),
		g.pcdata("shipping", "Will ship internationally, See description for charges"),
	)
	it.SetAttr("id", fmt.Sprintf("item%d", id))
	if g.rng.Intn(10) == 0 {
		it.SetAttr("featured", "yes")
	}
	for n := 1 + g.rng.Intn(3); n > 0; n-- {
		inc := tree.NewElement("incategory")
		inc.SetAttr("category", fmt.Sprintf("category%d", g.rng.Intn(g.nCategories)))
		it.Append(inc)
	}
	mailbox := tree.NewElement("mailbox")
	for n := g.rng.Intn(3); n > 0; n-- {
		mailbox.Append(tree.NewElement("mail",
			g.pcdata("from", g.personName()+" mailto:"+g.email()),
			g.pcdata("to", g.personName()+" mailto:"+g.email()),
			g.pcdata("date", g.date()),
			g.textEl(),
		))
	}
	it.Append(mailbox)
	return it
}

func (g *Generator) people() *tree.Node {
	people := tree.NewElement("people")
	for i := 0; i < g.nPersons; i++ {
		p := tree.NewElement("person",
			g.pcdata("name", g.personName()),
			g.pcdata("emailaddress", "mailto:"+g.email()),
		)
		p.SetAttr("id", fmt.Sprintf("person%d", i))
		if g.rng.Intn(2) == 0 {
			p.Append(g.pcdata("phone", fmt.Sprintf("+%d (%d) %d", 1+g.rng.Intn(99), g.rng.Intn(999), g.rng.Intn(99999999))))
		}
		if g.rng.Intn(2) == 0 {
			p.Append(tree.NewElement("address",
				g.pcdata("street", fmt.Sprintf("%d %s St", 1+g.rng.Intn(99), g.word())),
				g.pcdata("city", g.word()),
				g.pcdata("country", g.country()),
				g.pcdata("zipcode", fmt.Sprintf("%d", g.rng.Intn(99999))),
			))
		}
		if g.rng.Intn(2) == 0 {
			p.Append(g.pcdata("homepage", "http://www."+g.word()+".com/~"+g.word()))
		}
		if g.rng.Intn(4) != 0 {
			p.Append(g.pcdata("creditcard", fmt.Sprintf("%d %d %d %d", 1000+g.rng.Intn(9000), 1000+g.rng.Intn(9000), 1000+g.rng.Intn(9000), 1000+g.rng.Intn(9000))))
		}
		if g.rng.Intn(2) == 0 {
			p.Append(g.profile())
		}
		if g.rng.Intn(2) == 0 {
			w := tree.NewElement("watches")
			for n := g.rng.Intn(4); n > 0; n-- {
				watch := tree.NewElement("watch")
				watch.SetAttr("open_auction", fmt.Sprintf("open_auction%d", g.rng.Intn(g.nOpen)))
				w.Append(watch)
			}
			p.Append(w)
		}
		people.Append(p)
	}
	return people
}

func (g *Generator) profile() *tree.Node {
	pr := tree.NewElement("profile")
	pr.SetAttr("income", fmt.Sprintf("%d.%02d", 9876+g.rng.Intn(90000), g.rng.Intn(100)))
	for n := g.rng.Intn(4); n > 0; n-- {
		in := tree.NewElement("interest")
		in.SetAttr("category", fmt.Sprintf("category%d", g.rng.Intn(g.nCategories)))
		pr.Append(in)
	}
	if g.rng.Intn(2) == 0 {
		pr.Append(g.pcdata("education", pick(g.rng, educations)))
	}
	if g.rng.Intn(2) == 0 {
		pr.Append(g.pcdata("gender", pick(g.rng, []string{"male", "female"})))
	}
	pr.Append(g.pcdata("business", pick(g.rng, []string{"Yes", "No"})))
	if g.rng.Intn(2) == 0 {
		pr.Append(g.pcdata("age", fmt.Sprintf("%d", 18+g.rng.Intn(60))))
	}
	return pr
}

func (g *Generator) openAuctions() *tree.Node {
	oas := tree.NewElement("open_auctions")
	for i := 0; i < g.nOpen; i++ {
		oa := tree.NewElement("open_auction", g.money("initial"))
		oa.SetAttr("id", fmt.Sprintf("open_auction%d", i))
		if g.rng.Intn(2) == 0 {
			oa.Append(g.money("reserve"))
		}
		for n := g.rng.Intn(5); n > 0; n-- {
			pref := tree.NewElement("personref")
			pref.SetAttr("person", fmt.Sprintf("person%d", g.rng.Intn(g.nPersons)))
			oa.Append(tree.NewElement("bidder",
				g.pcdata("date", g.date()),
				g.pcdata("time", g.time()),
				pref,
				g.money("increase"),
			))
		}
		oa.Append(g.money("current"))
		if g.rng.Intn(2) == 0 {
			oa.Append(g.pcdata("privacy", pick(g.rng, []string{"Yes", "No"})))
		}
		iref := tree.NewElement("itemref")
		iref.SetAttr("item", fmt.Sprintf("item%d", g.rng.Intn(g.nItems)))
		oa.Append(iref)
		seller := tree.NewElement("seller")
		seller.SetAttr("person", fmt.Sprintf("person%d", g.rng.Intn(g.nPersons)))
		oa.Append(seller)
		oa.Append(g.annotation())
		oa.Append(g.pcdata("quantity", fmt.Sprintf("%d", 1+g.rng.Intn(5))))
		oa.Append(g.pcdata("type", pick(g.rng, []string{"Regular", "Featured", "Dutch"})))
		oa.Append(tree.NewElement("interval",
			g.pcdata("start", g.date()),
			g.pcdata("end", g.date()),
		))
		oas.Append(oa)
	}
	return oas
}

func (g *Generator) closedAuctions() *tree.Node {
	cas := tree.NewElement("closed_auctions")
	for i := 0; i < g.nClosed; i++ {
		seller := tree.NewElement("seller")
		seller.SetAttr("person", fmt.Sprintf("person%d", g.rng.Intn(g.nPersons)))
		buyer := tree.NewElement("buyer")
		buyer.SetAttr("person", fmt.Sprintf("person%d", g.rng.Intn(g.nPersons)))
		iref := tree.NewElement("itemref")
		iref.SetAttr("item", fmt.Sprintf("item%d", g.rng.Intn(g.nItems)))
		ca := tree.NewElement("closed_auction",
			seller, buyer, iref,
			g.money("price"),
			g.pcdata("date", g.date()),
			g.pcdata("quantity", fmt.Sprintf("%d", 1+g.rng.Intn(5))),
			g.pcdata("type", pick(g.rng, []string{"Regular", "Featured", "Dutch"})),
		)
		if g.rng.Intn(4) != 0 {
			ca.Append(g.annotation())
		}
		cas.Append(ca)
	}
	return cas
}

func (g *Generator) annotation() *tree.Node {
	author := tree.NewElement("author")
	author.SetAttr("person", fmt.Sprintf("person%d", g.rng.Intn(g.nPersons)))
	an := tree.NewElement("annotation", author)
	if g.rng.Intn(4) != 0 {
		an.Append(g.description())
	}
	an.Append(g.pcdata("happiness", fmt.Sprintf("%d", 1+g.rng.Intn(10))))
	return an
}

// description is the size-dominating mixed-content subtree.
func (g *Generator) description() *tree.Node {
	d := tree.NewElement("description")
	if g.rng.Intn(10) < 7 {
		d.Append(g.textEl())
	} else {
		d.Append(g.parlist(0))
	}
	return d
}

func (g *Generator) parlist(depth int) *tree.Node {
	pl := tree.NewElement("parlist")
	for n := 1 + g.rng.Intn(3); n > 0; n-- {
		li := tree.NewElement("listitem")
		if depth < 2 && g.rng.Intn(5) == 0 {
			li.Append(g.parlist(depth + 1))
		} else {
			li.Append(g.textEl())
		}
		pl.Append(li)
	}
	return pl
}

// textEl produces a mixed-content text element: sentences of word-list
// prose interleaved with bold/keyword/emph wrappers.
func (g *Generator) textEl() *tree.Node {
	t := tree.NewElement("text")
	pieces := 2 + g.rng.Intn(4)
	for i := 0; i < pieces; i++ {
		t.Append(tree.NewText(g.sentence(8 + g.rng.Intn(18))))
		if g.rng.Intn(3) != 0 {
			wrap := tree.NewElement(pick(g.rng, []string{"bold", "keyword", "emph"}))
			wrap.Append(tree.NewText(g.sentence(1 + g.rng.Intn(3))))
			t.Append(wrap)
		}
	}
	return t
}

func (g *Generator) sentence(words int) string {
	buf := make([]byte, 0, words*8)
	for i := 0; i < words; i++ {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, g.word()...)
	}
	buf = append(buf, ' ')
	return string(buf)
}

func (g *Generator) pcdata(tag, content string) *tree.Node {
	return tree.NewElement(tag, tree.NewText(content))
}

func (g *Generator) nameEl() *tree.Node {
	return g.pcdata("name", g.word()+" "+g.word())
}

func (g *Generator) money(tag string) *tree.Node {
	return g.pcdata(tag, fmt.Sprintf("%d.%02d", g.rng.Intn(300), g.rng.Intn(100)))
}

func (g *Generator) date() string {
	return fmt.Sprintf("%02d/%02d/%d", 1+g.rng.Intn(12), 1+g.rng.Intn(28), 1998+g.rng.Intn(4))
}

func (g *Generator) time() string {
	return fmt.Sprintf("%02d:%02d:%02d", g.rng.Intn(24), g.rng.Intn(60), g.rng.Intn(60))
}

func (g *Generator) word() string { return pick(g.rng, words) }

func (g *Generator) personName() string {
	return pick(g.rng, firstNames) + " " + pick(g.rng, lastNames)
}

func (g *Generator) email() string {
	return pick(g.rng, lastNames) + "@" + g.word() + ".com"
}

func (g *Generator) country() string {
	if g.rng.Intn(4) == 0 {
		return "United States"
	}
	return pick(g.rng, countries)
}

func (g *Generator) payment() string {
	opts := []string{"Creditcard", "Money order", "Personal Check", "Cash"}
	n := 1 + g.rng.Intn(len(opts))
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += ", "
		}
		out += opts[(i+g.rng.Intn(len(opts)))%len(opts)]
	}
	return out
}

func pick(r *rand.Rand, xs []string) string { return xs[r.Intn(len(xs))] }

// The word list echoes xmlgen's Shakespearean flavour.
var words = []string{
	"gold", "silver", "crown", "duke", "sword", "castle", "honest", "noble",
	"promise", "kingdom", "forest", "river", "shadow", "winter", "summer",
	"love", "fortune", "battle", "honour", "virtue", "treason", "mercy",
	"grace", "sorrow", "wisdom", "folly", "journey", "garden", "tempest",
	"whisper", "thunder", "silence", "memory", "promise", "breath", "flame",
	"harbor", "voyage", "anchor", "compass", "lantern", "scroll", "quill",
	"velvet", "marble", "copper", "ivory", "amber", "ember", "frost",
	"meadow", "orchard", "valley", "summit", "hollow", "brook", "glade",
	"falcon", "raven", "sparrow", "stallion", "serpent", "lion", "wolf",
}

var firstNames = []string{
	"Ada", "Edgar", "Umit", "Ioana", "Carlo", "Kim", "Dario", "Giuseppe",
	"Veronique", "Jerome", "Mehmet", "Sandra", "Pavel", "Lucia", "Marko",
}

var lastNames = []string{
	"Benz", "Codd", "Astrahan", "Wong", "Selinger", "Gray", "Stone",
	"Lorie", "Chamberlin", "Boyce", "Traiger", "Putzolu", "Blasgen",
}

var countries = []string{
	"Italy", "France", "Germany", "Japan", "Brazil", "Kenya", "Australia",
	"Canada", "Spain", "Norway", "Chile", "India", "Korea",
}

var educations = []string{
	"High School", "College", "Graduate School", "Other",
}
