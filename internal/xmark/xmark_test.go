package xmark

import (
	"testing"

	"xmlproj/internal/core"
	"xmlproj/internal/dtd"
	"xmlproj/internal/prune"
	"xmlproj/internal/validate"
	"xmlproj/internal/xquery"
)

func TestDTDParses(t *testing.T) {
	d := DTD()
	if d.Root != "site" {
		t.Fatalf("root = %s", d.Root)
	}
	if _, ok := d.ElementName("open_auction"); !ok {
		t.Fatal("open_auction not declared")
	}
	// The description subtree is recursive (text/bold/keyword/emph).
	if !d.IsRecursive() {
		t.Fatal("auction DTD should be recursive")
	}
	// text is a real element name here, not the text() node test.
	if n, ok := d.ElementName("text"); !ok || n != "text" {
		t.Fatal("text element missing")
	}
}

func TestGeneratedDocumentIsValid(t *testing.T) {
	d := DTD()
	doc := NewGenerator(0.002, 1).Document()
	if _, err := validate.Document(d, doc); err != nil {
		t.Fatalf("generated document invalid: %v", err)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(0.002, 7).Document().XML()
	b := NewGenerator(0.002, 7).Document().XML()
	if a != b {
		t.Fatal("generator not deterministic")
	}
	c := NewGenerator(0.002, 8).Document().XML()
	if a == c {
		t.Fatal("different seeds should give different documents")
	}
}

func TestGeneratorScales(t *testing.T) {
	small := NewGenerator(0.002, 1).Document().SerializedSize()
	large := NewGenerator(0.008, 1).Document().SerializedSize()
	if large < 3*small {
		t.Fatalf("scaling broken: %d vs %d bytes", small, large)
	}
}

func TestDescriptionDominatesSize(t *testing.T) {
	// The §6 skew: description subtrees account for the bulk of the
	// document (the paper reports ~70%).
	d := DTD()
	doc := NewGenerator(0.004, 2).Document()
	total := doc.SerializedSize()
	// Prune away description subtrees and compare sizes.
	pi := d.ReachableFromRoot().Union(d.AttNames(d.ReachableFromRoot()))
	delete(pi, dtd.Name("description"))
	pruned := prune.Tree(d, doc, pi)
	rest := pruned.SerializedSize()
	ratio := float64(total-rest) / float64(total)
	if ratio < 0.4 {
		t.Fatalf("descriptions are only %.0f%% of the document; want the dominating share", ratio*100)
	}
}

func TestAllQueriesParse(t *testing.T) {
	if len(Queries) != 20 {
		t.Fatalf("%d queries, want 20", len(Queries))
	}
	for _, q := range Queries {
		if _, err := xquery.Parse(q.Source); err != nil {
			t.Errorf("%s does not parse: %v", q.ID, err)
		}
	}
}

func TestAllQueriesRun(t *testing.T) {
	doc := NewGenerator(0.002, 3).Document()
	for _, q := range Queries {
		ast, err := xquery.Parse(q.Source)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if _, err := xquery.NewEvaluator(doc).Eval(ast); err != nil {
			t.Errorf("%s fails to evaluate: %v", q.ID, err)
		}
	}
}

func TestAllQueriesSoundUnderPruning(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	d := DTD()
	doc := NewGenerator(0.002, 4).Document()
	for _, q := range Queries {
		ast := xquery.MustParse(q.Source)
		paths := xquery.Extract(xquery.RewriteForIf(ast))
		pr, err := core.Infer(d, paths)
		if err != nil {
			t.Fatalf("%s: infer: %v", q.ID, err)
		}
		pruned := prune.Tree(d, doc, pr.Names)
		if pruned.Root == nil {
			t.Fatalf("%s: projector dropped the root", q.ID)
		}
		orig, err := xquery.NewEvaluator(doc).Eval(ast)
		if err != nil {
			t.Fatalf("%s on original: %v", q.ID, err)
		}
		after, err := xquery.NewEvaluator(pruned).Eval(ast)
		if err != nil {
			t.Fatalf("%s on pruned: %v", q.ID, err)
		}
		if o, p := xquery.Serialize(orig), xquery.Serialize(after); o != p {
			t.Errorf("%s: result changed after pruning\nπ = %s", q.ID, pr)
		}
	}
}

func TestByID(t *testing.T) {
	if q := ByID("QM05"); q == nil || q.ID != "QM05" {
		t.Fatal("ByID(QM05)")
	}
	if ByID("QM99") != nil {
		t.Fatal("ByID(QM99) should be nil")
	}
}
