package xmark

// Queries are the twenty XMark benchmark queries (QM01–QM20 in the
// paper's Table 1), written for the FLWR core this repository implements.
// Three queries are adapted, with the substitutions preserving each
// query's navigation (the part projector inference sees):
//
//   - QM04 used the document-order comparator "<<" between two
//     quantified bidders; it keeps the existential quantifier over
//     bidder/personref but compares on @person only.
//   - QM10 is the full grouping query with the French output element
//     names of the original, unabridged.
//   - QM18 declared a user conversion function; the multiplication is
//     inlined (the paper's analysis treats user functions as opaque
//     value-consumers anyway).
type Query struct {
	ID     string
	Source string
}

// Queries lists QM01–QM20.
var Queries = []Query{
	{"QM01", `for $b in /site/people/person[@id = "person0"] return $b/name/text()`},

	{"QM02", `for $b in /site/open_auctions/open_auction
return <increase>{ $b/bidder[1]/increase/text() }</increase>`},

	{"QM03", `for $b in /site/open_auctions/open_auction
where zero-or-one($b/bidder[1]/increase/text()) * 2 <= $b/bidder[last()]/increase/text()
return <increase first="{$b/bidder[1]/increase/text()}" last="{$b/bidder[last()]/increase/text()}"/>`},

	{"QM04", `for $b in /site/open_auctions/open_auction
where some $pr in $b/bidder/personref satisfies $pr/@person = "person20"
return <history>{ $b/reserve/text() }</history>`},

	{"QM05", `count(for $i in /site/closed_auctions/closed_auction
where $i/price/text() >= 40
return $i/price)`},

	{"QM06", `for $b in /site/regions return count($b//item)`},

	{"QM07", `for $p in /site
return count($p//description) + count($p//annotation) + count($p//emailaddress)`},

	{"QM08", `for $p in /site/people/person
let $a := for $t in /site/closed_auctions/closed_auction
          where $t/buyer/@person = $p/@id
          return $t
return <item person="{$p/name/text()}">{ count($a) }</item>`},

	{"QM09", `for $p in /site/people/person
let $a := for $t in /site/closed_auctions/closed_auction
          let $n := for $t2 in /site/regions/europe/item
                    where $t/itemref/@item = $t2/@id
                    return $t2
          where $p/@id = $t/buyer/@person
          return <item>{ $n/name/text() }</item>
return <person name="{$p/name/text()}">{ $a }</person>`},

	{"QM10", `for $i in distinct-values(/site/people/person/profile/interest/@category)
let $p := for $t in /site/people/person
          where $t/profile/interest/@category = $i
          return <personne>
                   <statistiques>
                     <sexe>{ $t/profile/gender/text() }</sexe>
                     <age>{ $t/profile/age/text() }</age>
                     <education>{ $t/profile/education/text() }</education>
                     <revenu>{ $t/profile/@income }</revenu>
                   </statistiques>
                   <coordonnees>
                     <nom>{ $t/name/text() }</nom>
                     <rue>{ $t/address/street/text() }</rue>
                     <ville>{ $t/address/city/text() }</ville>
                     <pays>{ $t/address/country/text() }</pays>
                     <email>{ $t/emailaddress/text() }</email>
                     <homepage>{ $t/homepage/text() }</homepage>
                   </coordonnees>
                   <cartePaiement>{ $t/creditcard/text() }</cartePaiement>
                 </personne>
return <categorie><id>{ $i }</id>{ $p }</categorie>`},

	{"QM11", `for $p in /site/people/person
let $l := for $i in /site/open_auctions/open_auction/initial
          where $p/profile/@income > 5000 * exactly-one($i/text())
          return $i
return <items name="{$p/name/text()}">{ count($l) }</items>`},

	{"QM12", `for $p in /site/people/person
let $l := for $i in /site/open_auctions/open_auction/initial
          where $p/profile/@income > 5000 * exactly-one($i/text())
          return $i
where $p/profile/@income > 50000
return <items person="{$p/profile/@income}">{ count($l) }</items>`},

	{"QM13", `for $i in /site/regions/australia/item
return <item name="{$i/name/text()}">{ $i/description }</item>`},

	{"QM14", `for $i in /site//item
where contains(string(exactly-one($i/description)), "gold")
return $i/name/text()`},

	{"QM15", `for $a in /site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()
return <text>{ $a }</text>`},

	{"QM16", `for $a in /site/closed_auctions/closed_auction
where not(empty($a/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()))
return <person id="{$a/seller/@person}"/>`},

	{"QM17", `for $p in /site/people/person
where empty($p/homepage/text())
return <person name="{$p/name/text()}"/>`},

	{"QM18", `for $i in /site/open_auctions/open_auction
return 2.20371 * zero-or-one($i/reserve/text())`},

	{"QM19", `for $b in /site/regions//item
let $k := $b/name/text()
order by zero-or-one($b/name/text()) ascending
return <item name="{$k}">{ $b/location/text() }</item>`},

	{"QM20", `<result>
 <preferred>{ count(/site/people/person/profile[@income >= 100000]) }</preferred>
 <standard>{ count(/site/people/person/profile[@income < 100000 and @income >= 30000]) }</standard>
 <challenge>{ count(/site/people/person/profile[@income < 30000]) }</challenge>
 <na>{ count(for $p in /site/people/person where empty($p/profile/@income) return $p) }</na>
</result>`},
}

// ByID returns the query with the given ID, or nil.
func ByID(id string) *Query {
	for i := range Queries {
		if Queries[i].ID == id {
			return &Queries[i]
		}
	}
	return nil
}
