// Package xmark is the XMark benchmark substrate [Schmidt et al.,
// VLDB '02] used by the paper's evaluation (§6): the auction-site DTD, a
// deterministic scalable document generator standing in for xmlgen, and
// the twenty benchmark queries QM01–QM20.
package xmark

import "xmlproj/internal/dtd"

// DTDSource is the XMark auction DTD (auction.dtd). The mixed-content
// description subtree (text/bold/keyword/emph, parlist/listitem) is the
// part that dominates document size — about 70% of the bytes — which is
// what gives Table 1 its shape.
const DTDSource = `
<!ELEMENT site (regions, categories, catgraph, people, open_auctions, closed_auctions)>

<!ELEMENT categories (category+)>
<!ELEMENT category (name, description)>
<!ATTLIST category id ID #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT description (text | parlist)>
<!ELEMENT text (#PCDATA | bold | keyword | emph)*>
<!ELEMENT bold (#PCDATA | bold | keyword | emph)*>
<!ELEMENT keyword (#PCDATA | bold | keyword | emph)*>
<!ELEMENT emph (#PCDATA | bold | keyword | emph)*>
<!ELEMENT parlist (listitem)*>
<!ELEMENT listitem (text | parlist)*>

<!ELEMENT catgraph (edge*)>
<!ELEMENT edge EMPTY>
<!ATTLIST edge from IDREF #REQUIRED to IDREF #REQUIRED>

<!ELEMENT regions (africa, asia, australia, europe, namerica, samerica)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (item*)>
<!ELEMENT australia (item*)>
<!ELEMENT europe (item*)>
<!ELEMENT namerica (item*)>
<!ELEMENT samerica (item*)>

<!ELEMENT item (location, quantity, name, payment, description, shipping, incategory+, mailbox)>
<!ATTLIST item id ID #REQUIRED featured CDATA #IMPLIED>
<!ELEMENT location (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT payment (#PCDATA)>
<!ELEMENT shipping (#PCDATA)>
<!ELEMENT incategory EMPTY>
<!ATTLIST incategory category IDREF #REQUIRED>
<!ELEMENT mailbox (mail*)>
<!ELEMENT mail (from, to, date, text)>
<!ELEMENT from (#PCDATA)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT date (#PCDATA)>

<!ELEMENT itemref EMPTY>
<!ATTLIST itemref item IDREF #REQUIRED>
<!ELEMENT personref EMPTY>
<!ATTLIST personref person IDREF #REQUIRED>

<!ELEMENT people (person*)>
<!ELEMENT person (name, emailaddress, phone?, address?, homepage?, creditcard?, profile?, watches?)>
<!ATTLIST person id ID #REQUIRED>
<!ELEMENT emailaddress (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
<!ELEMENT address (street, city, country, province?, zipcode)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT province (#PCDATA)>
<!ELEMENT zipcode (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT homepage (#PCDATA)>
<!ELEMENT creditcard (#PCDATA)>

<!ELEMENT profile (interest*, education?, gender?, business, age?)>
<!ATTLIST profile income CDATA #IMPLIED>
<!ELEMENT interest EMPTY>
<!ATTLIST interest category IDREF #REQUIRED>
<!ELEMENT education (#PCDATA)>
<!ELEMENT gender (#PCDATA)>
<!ELEMENT business (#PCDATA)>
<!ELEMENT age (#PCDATA)>

<!ELEMENT watches (watch*)>
<!ELEMENT watch EMPTY>
<!ATTLIST watch open_auction IDREF #REQUIRED>

<!ELEMENT open_auctions (open_auction*)>
<!ELEMENT open_auction (initial, reserve?, bidder*, current, privacy?, itemref, seller, annotation, quantity, type, interval)>
<!ATTLIST open_auction id ID #REQUIRED>
<!ELEMENT initial (#PCDATA)>
<!ELEMENT reserve (#PCDATA)>
<!ELEMENT current (#PCDATA)>
<!ELEMENT privacy (#PCDATA)>
<!ELEMENT seller EMPTY>
<!ATTLIST seller person IDREF #REQUIRED>
<!ELEMENT bidder (date, time, personref, increase)>
<!ELEMENT time (#PCDATA)>
<!ELEMENT increase (#PCDATA)>
<!ELEMENT type (#PCDATA)>
<!ELEMENT interval (start, end)>
<!ELEMENT start (#PCDATA)>
<!ELEMENT end (#PCDATA)>
<!ELEMENT annotation (author, description?, happiness)>
<!ELEMENT author EMPTY>
<!ATTLIST author person IDREF #REQUIRED>
<!ELEMENT happiness (#PCDATA)>

<!ELEMENT closed_auctions (closed_auction*)>
<!ELEMENT closed_auction (seller, buyer, itemref, price, date, quantity, type, annotation?)>
<!ELEMENT buyer EMPTY>
<!ATTLIST buyer person IDREF #REQUIRED>
<!ELEMENT price (#PCDATA)>
`

// DTD parses and returns the auction DTD (panicking on an internal error:
// the source is a constant).
func DTD() *dtd.DTD {
	return dtd.MustParseString(DTDSource, "site")
}
