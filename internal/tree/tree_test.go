package tree

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, s string) *Document {
	t.Helper()
	d, err := ParseString(s)
	if err != nil {
		t.Fatalf("ParseString(%q): %v", s, err)
	}
	return d
}

func TestParseSimple(t *testing.T) {
	d := mustParse(t, `<a><b>hi</b><c x="1"/></a>`)
	r := d.Root
	if r.Tag != "a" || len(r.Children) != 2 {
		t.Fatalf("root = %s with %d children, want a with 2", r.Tag, len(r.Children))
	}
	b := r.Children[0]
	if b.Tag != "b" || len(b.Children) != 1 || b.Children[0].Kind != Text || b.Children[0].Data != "hi" {
		t.Fatalf("bad <b> subtree: %+v", b)
	}
	c := r.Children[1]
	if v, ok := c.Attr("x"); !ok || v != "1" {
		t.Fatalf("c@x = %q, %v", v, ok)
	}
}

func TestParseWhitespaceDropped(t *testing.T) {
	d := mustParse(t, "<a>\n  <b/>\n  <c/>\n</a>")
	if len(d.Root.Children) != 2 {
		t.Fatalf("got %d children, want 2 (whitespace-only text dropped)", len(d.Root.Children))
	}
}

func TestParseMixedContentKeepsText(t *testing.T) {
	d := mustParse(t, "<a>one<b/>two</a>")
	kids := d.Root.Children
	if len(kids) != 3 || kids[0].Data != "one" || kids[1].Tag != "b" || kids[2].Data != "two" {
		t.Fatalf("mixed content parsed wrong: %+v", kids)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "<a>", "<a></b>", "<a/><b/>", "just text",
	} {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", src)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	srcs := []string{
		`<a><b>hi</b><c x="1"/></a>`,
		`<a>text &amp; more <b/> tail</a>`,
		`<r><x y="a&quot;b"/></r>`,
		`<a>one&lt;two</a>`,
	}
	for _, src := range srcs {
		d := mustParse(t, src)
		out := d.XML()
		d2 := mustParse(t, out)
		if !Equal(d.Root, d2.Root) {
			t.Errorf("round trip changed tree:\n in: %s\nout: %s", src, out)
		}
	}
}

func TestSerializedSizeMatchesXML(t *testing.T) {
	d := mustParse(t, `<a><b>hello</b><c x="1"/></a>`)
	if got, want := d.SerializedSize(), int64(len(d.XML())); got != want {
		t.Fatalf("SerializedSize = %d, XML length = %d", got, want)
	}
}

func TestRenumberDocumentOrder(t *testing.T) {
	d := mustParse(t, `<a><b><d/></b><c/></a>`)
	var ids []NodeID
	var tags []string
	d.Walk(func(n *Node) bool {
		ids = append(ids, n.ID)
		tags = append(tags, n.Tag)
		return true
	})
	for i, id := range ids {
		if int(id) != i {
			t.Fatalf("ids not in document order: %v (%v)", ids, tags)
		}
	}
	if want := []string{"a", "b", "d", "c"}; strings.Join(tags, ",") != strings.Join(want, ",") {
		t.Fatalf("walk order %v, want %v", tags, want)
	}
}

func TestStringValue(t *testing.T) {
	d := mustParse(t, `<a>one<b>two<c>three</c></b>four</a>`)
	if got := d.Root.StringValue(); got != "onetwothreefour" {
		t.Fatalf("StringValue = %q", got)
	}
	if got := d.Root.Children[1].StringValue(); got != "twothree" {
		t.Fatalf("StringValue(b) = %q", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	d := mustParse(t, `<a><b>hi</b></a>`)
	c := d.Clone()
	c.Root.Children[0].Children[0].Data = "changed"
	if d.Root.Children[0].Children[0].Data != "hi" {
		t.Fatal("Clone shares text nodes with original")
	}
	if !Equal(d.Root, mustParse(t, `<a><b>hi</b></a>`).Root) {
		t.Fatal("original mutated")
	}
	if c.Root.Children[0].Parent != c.Root {
		t.Fatal("clone parent links broken")
	}
}

func TestIsProjectionOf(t *testing.T) {
	d := mustParse(t, `<a><b><d/></b><c/></a>`)
	full := d.Clone()
	// Remove <c/>.
	p1 := d.Clone()
	p1.Root.Children = p1.Root.Children[:1]
	if !IsProjectionOf(p1.Root, full.Root) {
		t.Fatal("dropping a subtree should be a projection")
	}
	// Remove <d/> under <b>.
	p2 := d.Clone()
	p2.Root.Children[0].Children = nil
	if !IsProjectionOf(p2.Root, full.Root) {
		t.Fatal("dropping a nested subtree should be a projection")
	}
	// Relabelling is not a projection.
	p3 := d.Clone()
	p3.Root.Children[0].Tag = "z"
	if IsProjectionOf(p3.Root, full.Root) {
		t.Fatal("relabelled tree must not be a projection")
	}
	// The full tree is a projection of itself.
	if !IsProjectionOf(full.Root, full.Root) {
		t.Fatal("tree must be a projection of itself")
	}
	// But not vice versa once something is dropped.
	if IsProjectionOf(full.Root, p1.Root) {
		t.Fatal("projection order must not be symmetric here")
	}
}

func TestByID(t *testing.T) {
	d := mustParse(t, `<a><b/><c/></a>`)
	n := d.ByID(2)
	if n == nil || n.Tag != "c" {
		t.Fatalf("ByID(2) = %+v, want <c>", n)
	}
	if d.ByID(99) != nil {
		t.Fatal("ByID(99) should be nil")
	}
}

func TestAppendFixesLinks(t *testing.T) {
	a := NewElement("a")
	b := NewElement("b")
	c := NewText("x")
	a.Append(b)
	a.Append(c)
	if b.Parent != a || c.Parent != a || b.Index != 0 || c.Index != 1 {
		t.Fatalf("links wrong: b(%v,%d) c(%v,%d)", b.Parent == a, b.Index, c.Parent == a, c.Index)
	}
}

func TestSetAttr(t *testing.T) {
	n := NewElement("a")
	n.SetAttr("x", "1")
	n.SetAttr("x", "2")
	n.SetAttr("y", "3")
	if v, _ := n.Attr("x"); v != "2" {
		t.Fatalf("x = %q, want 2 (overwrite)", v)
	}
	if len(n.Attrs) != 2 {
		t.Fatalf("%d attrs, want 2", len(n.Attrs))
	}
}

// escapeRoundTrip is a quick property: any text survives
// serialise-then-parse unchanged.
func TestQuickTextEscapeRoundTrip(t *testing.T) {
	f := func(s string) bool {
		if !validCharData(s) {
			return true // XML cannot carry arbitrary control bytes
		}
		doc := NewDocument(NewElement("a", NewText(s)))
		out, err := ParseString(doc.XML())
		if err != nil {
			return false
		}
		if strings.TrimSpace(s) == "" {
			return len(out.Root.Children) == 0
		}
		return len(out.Root.Children) == 1 && out.Root.Children[0].Data == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func validCharData(s string) bool {
	for _, r := range s {
		if r == '�' {
			return false
		}
		if r < 0x20 && r != '\t' && r != '\n' && r != '\r' {
			return false
		}
	}
	return len(s) > 0
}

func TestEqualIgnoresIDs(t *testing.T) {
	a := mustParse(t, `<a><b/></a>`)
	b := mustParse(t, `<a><b/></a>`)
	b.Root.ID = 42
	if !Equal(a.Root, b.Root) {
		t.Fatal("Equal must ignore IDs")
	}
}

func TestIndentedXML(t *testing.T) {
	d := mustParse(t, `<a><b><c/></b><d>mixed <e/> text</d></a>`)
	out := d.IndentedXML()
	want := `<a>
  <b>
    <c/>
  </b>
  <d>mixed <e/> text</d>
</a>
`
	if out != want {
		t.Fatalf("IndentedXML:\n%s\nwant:\n%s", out, want)
	}
	// Indented output re-parses to an equivalent tree (mixed content kept
	// inline, so no whitespace was invented inside it).
	re := mustParse(t, out)
	if re.Root.Children[1].Children[0].Data != "mixed " {
		t.Fatalf("mixed text changed: %q", re.Root.Children[1].Children[0].Data)
	}
}

// Round-trip property at the document level: serialise-and-parse is the
// identity on whitespace-normalised trees.
func TestQuickDocumentRoundTrip(t *testing.T) {
	srcs := []string{
		`<a/>`,
		`<a x="1" y="&lt;&amp;&quot;"/>`,
		`<a><b>t1</b>mid<c><d>deep</d></c>tail</a>`,
		`<a>&amp;escaped&lt;</a>`,
	}
	for _, src := range srcs {
		d := mustParse(t, src)
		out, err := ParseString(d.XML())
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if !Equal(d.Root, out.Root) {
			t.Fatalf("round trip changed %s -> %s", src, out.XML())
		}
	}
}
