// Package tree implements the XQuery data model of the paper (§2.1): an
// ordered forest of labelled ordered trees with unique node identifiers.
//
// Nodes are either element nodes (a tag labelling an ordered forest of
// children), text nodes (string leaves), or the document root. Attributes —
// omitted from the paper's formal model but supported by its implementation
// (§2.1, §6) — are carried on element nodes.
package tree

import "fmt"

// NodeID is the unique identifier i of a node within a well-formed forest
// (Def. 2.2). IDs are assigned in document order by the parser and by
// Renumber, so comparing IDs of nodes of the same document compares
// document order.
type NodeID int

// Kind discriminates the node kinds of the data model.
type Kind uint8

const (
	// Element is a labelled tree node l_i[f].
	Element Kind = iota
	// Text is a string leaf s_i.
	Text
)

func (k Kind) String() string {
	switch k {
	case Element:
		return "element"
	case Text:
		return "text"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Attr is a single attribute of an element node.
type Attr struct {
	Name  string
	Value string
}

// Node is a tree t of the data model: either s_i (Kind == Text, Data holds
// s) or l_i[f] (Kind == Element, Tag holds l, Children holds f).
type Node struct {
	ID   NodeID
	Kind Kind

	// Tag is the element tag l; empty for text nodes.
	Tag string
	// Data is the text content s; empty for element nodes.
	Data string

	Attrs    []Attr
	Children []*Node

	// Parent is nil for a root node.
	Parent *Node
	// Index is the position of the node among its parent's children.
	Index int
}

// NewElement returns a parentless element node labelled tag.
func NewElement(tag string, children ...*Node) *Node {
	n := &Node{Kind: Element, Tag: tag}
	for _, c := range children {
		n.Append(c)
	}
	return n
}

// NewText returns a parentless text node holding data.
func NewText(data string) *Node {
	return &Node{Kind: Text, Data: data}
}

// Append adds c as the last child of n and fixes its parent/index links.
func (n *Node) Append(c *Node) {
	c.Parent = n
	c.Index = len(n.Children)
	n.Children = append(n.Children, c)
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// SetAttr sets (or overwrites) an attribute.
func (n *Node) SetAttr(name, value string) {
	for i, a := range n.Attrs {
		if a.Name == name {
			n.Attrs[i].Value = value
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
}

// Root walks parent links up to the root of the tree containing n.
func (n *Node) Root() *Node {
	r := n
	for r.Parent != nil {
		r = r.Parent
	}
	return r
}

// StringValue returns the concatenation of all text-node descendants of n
// in document order (the XPath string-value of an element), or Data for a
// text node.
func (n *Node) StringValue() string {
	if n.Kind == Text {
		return n.Data
	}
	var buf []byte
	var walk func(*Node)
	walk = func(m *Node) {
		if m.Kind == Text {
			buf = append(buf, m.Data...)
			return
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return string(buf)
}

// Document is a well-formed tree (Def. 2.2) rooted at a single element.
type Document struct {
	Root *Node
	// next is the next fresh NodeID.
	next NodeID
}

// NewDocument wraps root in a Document and numbers all nodes in document
// order.
func NewDocument(root *Node) *Document {
	d := &Document{Root: root}
	d.Renumber()
	return d
}

// Renumber reassigns node IDs in document order. It must be called after
// structural mutation if IDs are subsequently used for document-order
// comparison.
func (d *Document) Renumber() {
	d.next = 0
	d.Walk(func(n *Node) bool {
		n.ID = d.next
		d.next++
		return true
	})
}

// NumNodes reports the number of nodes currently numbered in the document.
func (d *Document) NumNodes() int { return int(d.next) }

// Walk visits every node of the document in document order. If f returns
// false the children of the current node are skipped.
func (d *Document) Walk(f func(*Node) bool) {
	if d.Root == nil {
		return
	}
	walk(d.Root, f)
}

func walk(n *Node, f func(*Node) bool) {
	if !f(n) {
		return
	}
	for _, c := range n.Children {
		walk(c, f)
	}
}

// ByID returns the node with the given ID, or nil. It is a linear search
// intended for tests and tooling, not for the query engine.
func (d *Document) ByID(id NodeID) *Node {
	var found *Node
	d.Walk(func(n *Node) bool {
		if n.ID == id {
			found = n
			return false
		}
		return found == nil
	})
	return found
}

// Clone returns a deep copy of the document, preserving node IDs.
func (d *Document) Clone() *Document {
	c := &Document{next: d.next}
	if d.Root != nil {
		c.Root = cloneNode(d.Root, nil)
	}
	return c
}

func cloneNode(n *Node, parent *Node) *Node {
	m := &Node{ID: n.ID, Kind: n.Kind, Tag: n.Tag, Data: n.Data, Parent: parent, Index: n.Index}
	if len(n.Attrs) > 0 {
		m.Attrs = append([]Attr(nil), n.Attrs...)
	}
	if len(n.Children) > 0 {
		m.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			m.Children[i] = cloneNode(c, m)
		}
	}
	return m
}

// Equal reports structural equality of two trees: same kinds, tags, data,
// attributes (ordered) and children. Node IDs are ignored.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Tag != b.Tag || a.Data != b.Data {
		return false
	}
	if len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// IsProjectionOf reports whether tree p is a projection of tree t in the
// sense of Def. 2.1: p is obtained from t by replacing some subforests with
// the empty forest. Matching is by node identity (IDs), so both trees must
// stem from the same numbering.
func IsProjectionOf(p, t *Node) bool {
	if p.ID != t.ID || p.Kind != t.Kind || p.Tag != t.Tag || p.Data != t.Data {
		return false
	}
	// Children of p must be an ID-subsequence of children of t, each
	// recursively a projection.
	j := 0
	for _, pc := range p.Children {
		for j < len(t.Children) && t.Children[j].ID != pc.ID {
			j++
		}
		if j == len(t.Children) {
			return false
		}
		if !IsProjectionOf(pc, t.Children[j]) {
			return false
		}
		j++
	}
	return true
}
