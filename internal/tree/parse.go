package tree

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse reads an XML document from r into the data model. Comments,
// processing instructions and the document type declaration are skipped
// (the paper's data model has only element and text nodes). Whitespace-only
// text between elements is dropped unless it is the only content.
func Parse(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	dec.Strict = true
	var root *Node
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("tree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Kind: Element, Tag: t.Name.Local}
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				n.Attrs = append(n.Attrs, Attr{Name: a.Name.Local, Value: a.Value})
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("tree: parse: multiple root elements")
				}
				root = n
			} else {
				stack[len(stack)-1].Append(n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("tree: parse: unbalanced end element %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) == 0 {
				continue // whitespace outside the root
			}
			s := string(t)
			if strings.TrimSpace(s) == "" {
				continue
			}
			parent := stack[len(stack)-1]
			// Merge adjacent character data (entity boundaries etc.).
			if k := len(parent.Children); k > 0 && parent.Children[k-1].Kind == Text {
				parent.Children[k-1].Data += s
				continue
			}
			parent.Append(NewText(s))
		case xml.Comment, xml.ProcInst, xml.Directive:
			// Outside the data model; ignored.
		}
	}
	if root == nil {
		return nil, fmt.Errorf("tree: parse: no root element")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("tree: parse: unterminated element %s", stack[len(stack)-1].Tag)
	}
	return NewDocument(root), nil
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// ParseBytes parses an XML document held in a byte slice.
func ParseBytes(b []byte) (*Document, error) {
	return Parse(bytes.NewReader(b))
}

// WriteXML serialises the document to w as XML. The output is
// deterministic: attributes in stored order, text escaped, no added
// whitespace.
func (d *Document) WriteXML(w io.Writer) error {
	bw := &errWriter{w: w}
	writeNode(bw, d.Root)
	return bw.err
}

// XML returns the document serialised as a string.
func (d *Document) XML() string {
	var sb strings.Builder
	_ = d.WriteXML(&sb)
	return sb.String()
}

// SerializedSize returns the number of bytes of the XML serialisation of d,
// without materialising it.
func (d *Document) SerializedSize() int64 {
	cw := &countWriter{}
	_ = d.WriteXML(cw)
	return cw.n
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) WriteString(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

func writeNode(w *errWriter, n *Node) {
	if n == nil {
		return
	}
	if n.Kind == Text {
		w.WriteString(EscapeText(n.Data))
		return
	}
	w.WriteString("<")
	w.WriteString(n.Tag)
	for _, a := range n.Attrs {
		w.WriteString(" ")
		w.WriteString(a.Name)
		w.WriteString("=\"")
		w.WriteString(EscapeAttr(a.Value))
		w.WriteString("\"")
	}
	if len(n.Children) == 0 {
		w.WriteString("/>")
		return
	}
	w.WriteString(">")
	for _, c := range n.Children {
		writeNode(w, c)
	}
	w.WriteString("</")
	w.WriteString(n.Tag)
	w.WriteString(">")
}

// WriteIndentedXML serialises the document with two-space indentation for
// human consumption. Mixed content (elements with text children) is left
// on one line so no significant whitespace is introduced.
func (d *Document) WriteIndentedXML(w io.Writer) error {
	bw := &errWriter{w: w}
	writeIndented(bw, d.Root, 0)
	bw.WriteString("\n")
	return bw.err
}

// IndentedXML returns the indented serialisation as a string.
func (d *Document) IndentedXML() string {
	var sb strings.Builder
	_ = d.WriteIndentedXML(&sb)
	return sb.String()
}

func writeIndented(w *errWriter, n *Node, depth int) {
	if n == nil {
		return
	}
	pad := strings.Repeat("  ", depth)
	w.WriteString(pad)
	if n.Kind == Text {
		w.WriteString(EscapeText(n.Data))
		return
	}
	// Mixed or leaf content stays on one line.
	inline := len(n.Children) == 0
	for _, c := range n.Children {
		if c.Kind == Text {
			inline = true
			break
		}
	}
	if inline {
		sub := Document{Root: n}
		w.WriteString(sub.XML())
		return
	}
	w.WriteString("<")
	w.WriteString(n.Tag)
	for _, a := range n.Attrs {
		w.WriteString(" ")
		w.WriteString(a.Name)
		w.WriteString("=\"")
		w.WriteString(EscapeAttr(a.Value))
		w.WriteString("\"")
	}
	w.WriteString(">\n")
	for _, c := range n.Children {
		writeIndented(w, c, depth+1)
		w.WriteString("\n")
	}
	w.WriteString(pad)
	w.WriteString("</")
	w.WriteString(n.Tag)
	w.WriteString(">")
}

// EscapeText escapes character data for element content.
func EscapeText(s string) string {
	if !strings.ContainsAny(s, "&<>") {
		return s
	}
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// EscapeAttr escapes character data for a double-quoted attribute value.
func EscapeAttr(s string) string {
	if !strings.ContainsAny(s, "&<>\"") {
		return s
	}
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", "\"", "&quot;")
	return r.Replace(s)
}
