//go:build !linux

package mmapio

import "errors"

// maxMapSize never admits a mapping here; Open reads instead.
const maxMapSize = int64(-1)

func mmap(f interface{ Fd() uintptr }, size int) ([]byte, error) {
	return nil, errors.New("mmapio: not supported on this platform")
}

func munmap(b []byte) error { return nil }
