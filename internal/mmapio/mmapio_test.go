package mmapio

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func TestOpenSmallReads(t *testing.T) {
	p := filepath.Join(t.TempDir(), "small.xml")
	want := []byte("<a>hi</a>")
	if err := os.WriteFile(p, want, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Mapped() {
		t.Error("small file should not be mapped")
	}
	if !bytes.Equal(d.Bytes(), want) {
		t.Errorf("content mismatch: got %q", d.Bytes())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestOpenLargeMaps(t *testing.T) {
	p := filepath.Join(t.TempDir(), "large.xml")
	want := bytes.Repeat([]byte("<a>0123456789abcdef</a>\n"), (minMapSize/24)+1)
	if err := os.WriteFile(p, want, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if runtime.GOOS == "linux" && !d.Mapped() {
		t.Error("large regular file should be mapped on linux")
	}
	if !bytes.Equal(d.Bytes(), want) {
		t.Error("content mismatch")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenMissing(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error for missing file")
	}
}
