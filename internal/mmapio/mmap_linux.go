//go:build linux

package mmapio

import "syscall"

// maxMapSize caps mappings at what an int can index.
const maxMapSize = int64(int(^uint(0) >> 1))

func mmap(f interface{ Fd() uintptr }, size int) ([]byte, error) {
	if size == 0 {
		return []byte{}, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_PRIVATE)
}

func munmap(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	return syscall.Munmap(b)
}
