// Package mmapio maps regular files into memory for zero-read-copy
// pruning. Open returns the file's content as a byte slice: on Linux a
// read-only private mapping, elsewhere (or when mapping is not worth
// it, or fails) a plain os.ReadFile. Either way the caller gets the
// whole file as one slice suitable for the in-memory prune paths; the
// distinction only matters for how the bytes arrived.
package mmapio

import "os"

// minMapSize is the smallest file worth mapping: below this a single
// read syscall into a pooled buffer beats the mmap/munmap round trip
// and its page-table churn.
const minMapSize = 64 << 10

// Data is an opened file's content. Close releases it (munmap for a
// mapping, a no-op for read files); the slice must not be used after
// Close.
type Data struct {
	b      []byte
	mapped bool
}

// Bytes is the file content. Mapped data is read-only: writing to it
// faults.
func (d *Data) Bytes() []byte { return d.b }

// Mapped reports whether the content is a memory mapping (as opposed
// to a heap buffer filled by read).
func (d *Data) Mapped() bool { return d.mapped }

// Close releases the content. Safe to call more than once.
func (d *Data) Close() error {
	b, mapped := d.b, d.mapped
	d.b, d.mapped = nil, false
	if !mapped || b == nil {
		return nil
	}
	return munmap(b)
}

// Open returns path's content. Regular files of at least 64 KiB are
// memory-mapped where the platform supports it; short files,
// irregular files and failed mappings fall back to reading.
func Open(path string) (*Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Mode().IsRegular() && fi.Size() >= minMapSize && fi.Size() <= maxMapSize {
		if b, err := mmap(f, int(fi.Size())); err == nil {
			return &Data{b: b, mapped: true}, nil
		}
		// Fall through: a file we can stat but not map (filesystem
		// without mmap support, map count limits) still reads fine.
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Data{b: b}, nil
}
