package xpath

import (
	"testing"
)

func mustPath(t *testing.T, src string) *Path {
	t.Helper()
	p, err := ParsePath(src)
	if err != nil {
		t.Fatalf("ParsePath(%q): %v", src, err)
	}
	return p
}

func TestParseSimplePaths(t *testing.T) {
	cases := []struct {
		src   string
		steps int
		abs   bool
	}{
		{"child::a", 1, false},
		{"a", 1, false},
		{"a/b/c", 3, false},
		{"/a/b", 2, true},
		{"//a", 2, true}, // descendant-or-self::node() + child::a
		{"a//b", 3, false},
		{"descendant::a/ancestor::b", 2, false},
		{".", 1, false},
		{"..", 1, false},
		{"@id", 1, false},
		{"a/@id", 2, false},
		{"self::node()", 1, false},
		{"preceding-sibling::x", 1, false},
	}
	for _, c := range cases {
		p := mustPath(t, c.src)
		if len(p.Steps) != c.steps || p.Absolute != c.abs {
			t.Errorf("ParsePath(%q) = %d steps abs=%v, want %d abs=%v (%s)",
				c.src, len(p.Steps), p.Absolute, c.steps, c.abs, p)
		}
	}
}

func TestParseAxes(t *testing.T) {
	cases := map[string]Axis{
		"child::a":              Child,
		"descendant::a":         Descendant,
		"parent::a":             Parent,
		"ancestor::a":           Ancestor,
		"self::a":               Self,
		"descendant-or-self::a": DescendantOrSelf,
		"ancestor-or-self::a":   AncestorOrSelf,
		"following-sibling::a":  FollowingSibling,
		"preceding-sibling::a":  PrecedingSibling,
		"following::a":          Following,
		"preceding::a":          Preceding,
		"attribute::a":          Attribute,
	}
	for src, want := range cases {
		p := mustPath(t, src)
		if p.Steps[0].Axis != want {
			t.Errorf("%q parsed with axis %s, want %s", src, p.Steps[0].Axis, want)
		}
	}
}

func TestParseAbbreviations(t *testing.T) {
	if s := mustPath(t, ".").Steps[0]; s.Axis != Self || s.Test.Kind != TestNode {
		t.Errorf(". = %s", s)
	}
	if s := mustPath(t, "..").Steps[0]; s.Axis != Parent || s.Test.Kind != TestNode {
		t.Errorf(".. = %s", s)
	}
	if s := mustPath(t, "@x").Steps[0]; s.Axis != Attribute || s.Test.Name != "x" {
		t.Errorf("@x = %s", s)
	}
	p := mustPath(t, "a//b")
	if p.Steps[1].Axis != DescendantOrSelf || p.Steps[1].Test.Kind != TestNode {
		t.Errorf("a//b middle step = %s", p.Steps[1])
	}
}

func TestParseNodeTests(t *testing.T) {
	if s := mustPath(t, "child::text()").Steps[0]; s.Test.Kind != TestText {
		t.Errorf("text() = %+v", s.Test)
	}
	if s := mustPath(t, "child::node()").Steps[0]; s.Test.Kind != TestNode {
		t.Errorf("node() = %+v", s.Test)
	}
	if s := mustPath(t, "child::*").Steps[0]; s.Test.Kind != TestStar {
		t.Errorf("* = %+v", s.Test)
	}
	// Crucial: bare "text" is a NAME test (XMark's <text> element).
	if s := mustPath(t, "child::text").Steps[0]; s.Test.Kind != TestName || s.Test.Name != "text" {
		t.Errorf("bare text = %+v, want name test", s.Test)
	}
	if s := mustPath(t, "description/text/keyword").Steps[1]; s.Test.Kind != TestName {
		t.Errorf("mid-path text = %+v, want name test", s.Test)
	}
}

func TestParsePredicates(t *testing.T) {
	e := MustParse(`a[b]`)
	pe := e.(PathExpr)
	if len(pe.Path.Steps[0].Preds) != 1 {
		t.Fatalf("a[b]: %d preds", len(pe.Path.Steps[0].Preds))
	}
	e = MustParse(`a[b][c]`)
	pe = e.(PathExpr)
	if len(pe.Path.Steps[0].Preds) != 2 {
		t.Fatalf("a[b][c]: %d preds", len(pe.Path.Steps[0].Preds))
	}
	e = MustParse(`a[b = "x" and position() > 1]`)
	pred := e.(PathExpr).Path.Steps[0].Preds[0].(Binary)
	if pred.Op != OpAnd {
		t.Fatalf("predicate op = %s", pred.Op)
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	e := MustParse("1 + 2 * 3")
	b := e.(Binary)
	if b.Op != OpAdd {
		t.Fatalf("top op = %s, want +", b.Op)
	}
	if inner := b.R.(Binary); inner.Op != OpMul {
		t.Fatalf("right op = %s, want *", inner.Op)
	}
	e = MustParse("a or b and c")
	if e.(Binary).Op != OpOr {
		t.Fatalf("or/and precedence wrong")
	}
	e = MustParse("1 < 2 = true()")
	if e.(Binary).Op != OpEq {
		t.Fatalf("relational/equality precedence wrong")
	}
	e = MustParse("- 3 + 1")
	if e.(Binary).Op != OpAdd {
		t.Fatalf("unary minus binds tighter than +")
	}
}

func TestParseXQueryComparators(t *testing.T) {
	for src, op := range map[string]Op{
		"1 eq 2": OpEq, "1 ne 2": OpNeq, "1 lt 2": OpLt,
		"1 le 2": OpLe, "1 gt 2": OpGt, "1 ge 2": OpGe,
	} {
		if got := MustParse(src).(Binary).Op; got != op {
			t.Errorf("%q op = %s, want %s", src, got, op)
		}
	}
}

func TestParseFunctionCalls(t *testing.T) {
	e := MustParse(`contains(title, "Dante")`)
	c := e.(Call)
	if c.Name != "contains" || len(c.Args) != 2 {
		t.Fatalf("contains parse: %+v", c)
	}
	e = MustParse("count(//a) > 3")
	if e.(Binary).Op != OpGt {
		t.Fatal("count comparison")
	}
	e = MustParse("true()")
	if e.(Call).Name != "true" {
		t.Fatal("nullary call")
	}
}

func TestParseUnionAndFilter(t *testing.T) {
	e := MustParse("a | b | c")
	b := e.(Binary)
	if b.Op != OpUnion {
		t.Fatalf("union op = %s", b.Op)
	}
	e = MustParse("$x/a/b")
	pe := e.(PathExpr)
	if _, ok := pe.Filter.(Var); !ok || len(pe.Path.Steps) != 2 {
		t.Fatalf("$x/a/b = %+v", pe)
	}
	e = MustParse("$x[1]")
	pe = e.(PathExpr)
	if len(pe.FilterPreds) != 1 {
		t.Fatalf("$x[1] preds = %d", len(pe.FilterPreds))
	}
	e = MustParse("(//a)[2]/b")
	pe = e.(PathExpr)
	if pe.Filter == nil || len(pe.FilterPreds) != 1 || len(pe.Path.Steps) != 1 {
		t.Fatalf("(//a)[2]/b = %+v", pe)
	}
}

func TestParseLiteralsAndNumbers(t *testing.T) {
	if MustParse(`"hi"`).(Literal).S != "hi" {
		t.Fatal("double-quoted literal")
	}
	if MustParse(`'hi'`).(Literal).S != "hi" {
		t.Fatal("single-quoted literal")
	}
	if MustParse("3.25").(Number).F != 3.25 {
		t.Fatal("decimal number")
	}
	if MustParse(".5").(Number).F != 0.5 {
		t.Fatal("leading-dot number")
	}
}

func TestParseVariable(t *testing.T) {
	if MustParse("$foo").(Var).Name != "foo" {
		t.Fatal("variable parse")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "a/", "a[", "a]", "a[]", "child::", "::a", "a b", "1 +", `"unterminated`,
		"foo(", "a/[1]", "$", "a @",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseXQueryComment(t *testing.T) {
	e := MustParse("(: hello (:nested:) :) /a")
	if pe := e.(PathExpr); !pe.Path.Absolute {
		t.Fatal("comment skipping broke parse")
	}
}

func TestStringRoundTrip(t *testing.T) {
	// Parse → String → Parse must be a fixpoint structurally.
	srcs := []string{
		"child::a/descendant::b",
		"/site/regions//item[child::name]",
		`a[b = "x" or c]`,
		"count(child::a) > 3.5",
		"a | b/c",
		"parent::node()/child::text()",
		"following-sibling::a[position() = last()]",
		"-1 + 2",
		"$v/a[@id]",
	}
	for _, src := range srcs {
		e1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		s1 := e1.String()
		e2, err := Parse(s1)
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", s1, src, err)
		}
		if e2.String() != s1 {
			t.Errorf("not a fixpoint: %q -> %q -> %q", src, s1, e2.String())
		}
	}
}

func TestAxisHelpers(t *testing.T) {
	if !Parent.Upward() || !Ancestor.Upward() || Child.Upward() {
		t.Fatal("Upward wrong")
	}
	if !Child.Downward() || !Self.Downward() || Parent.Downward() {
		t.Fatal("Downward wrong")
	}
	for _, a := range []Axis{Parent, Ancestor, AncestorOrSelf, Preceding, PrecedingSibling} {
		if !a.Reverse() {
			t.Errorf("%s should be reverse", a)
		}
	}
	for _, a := range []Axis{Child, Descendant, Self, Following, FollowingSibling, Attribute} {
		if a.Reverse() {
			t.Errorf("%s should be forward", a)
		}
	}
	if ax, ok := AxisByName("descendant-or-self"); !ok || ax != DescendantOrSelf {
		t.Fatal("AxisByName")
	}
	if _, ok := AxisByName("sideways"); ok {
		t.Fatal("AxisByName accepted junk")
	}
}
