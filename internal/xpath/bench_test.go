package xpath

import (
	"testing"

	"xmlproj/internal/tree"
	"xmlproj/internal/xmark"
)

// Engine micro-benchmarks: per-axis and per-construct costs over a small
// XMark document. These are the constants behind the Figure 4 numbers.

func benchDoc(b *testing.B) *tree.Document {
	b.Helper()
	return xmark.NewGenerator(0.002, 1).Document()
}

func benchQuery(b *testing.B, src string) {
	b.Helper()
	doc := benchDoc(b)
	e := MustParse(src)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := NewEvaluator(doc)
		if _, err := ev.Eval(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAxisChild(b *testing.B)      { benchQuery(b, "/site/people/person/name") }
func BenchmarkAxisDescendant(b *testing.B) { benchQuery(b, "//keyword") }
func BenchmarkAxisAncestor(b *testing.B)   { benchQuery(b, "//keyword/ancestor::description") }
func BenchmarkAxisSibling(b *testing.B) {
	benchQuery(b, "//bidder[following-sibling::bidder]")
}
func BenchmarkAxisFollowing(b *testing.B) {
	benchQuery(b, "/site/regions/*/item[1]/following::name")
}
func BenchmarkPredicateValue(b *testing.B) {
	benchQuery(b, `//person[address/country = "United States"]/name`)
}
func BenchmarkPredicatePositional(b *testing.B) {
	benchQuery(b, "//open_auction/bidder[last()]")
}
func BenchmarkPredicateCount(b *testing.B) {
	benchQuery(b, "//open_auction[count(bidder) > 2]")
}
func BenchmarkUnion(b *testing.B) {
	benchQuery(b, "//person/name | //item/name")
}

func BenchmarkParse(b *testing.B) {
	srcs := []string{
		"/site/closed_auctions/closed_auction/annotation/description/text/keyword",
		`//person[address and (phone or homepage) and (creditcard or profile)]/name`,
		"count(//item[contains(description, 'gold')]) * 2 + 1",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, src := range srcs {
			if _, err := Parse(src); err != nil {
				b.Fatal(err)
			}
		}
	}
}
