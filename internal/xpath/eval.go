package xpath

import (
	"fmt"
	"math"

	"xmlproj/internal/tree"
)

// Evaluator executes XPath expressions over a document. It is a classic
// DOM-style main-memory engine: every axis step enumerates materialised
// nodes, so its running time and allocation footprint scale with the
// number of nodes reachable from the navigation — the quantity that
// type-based projection shrinks.
type Evaluator struct {
	Doc *tree.Document
	// Vars provides values for $variables (the XQuery evaluator binds
	// FLWR variables here).
	Vars map[string]Value
	// Visited counts the nodes touched by axis enumeration; a
	// deterministic work metric used by the benchmark harness alongside
	// wall time.
	Visited int64
}

// NewEvaluator returns an evaluator over doc.
func NewEvaluator(doc *tree.Document) *Evaluator {
	return &Evaluator{Doc: doc, Vars: map[string]Value{}}
}

type context struct {
	node NodeRef
	pos  int // proximity position, 1-based
	size int // context size
}

// Eval evaluates an expression with the document root element as context
// node.
func (ev *Evaluator) Eval(e Expr) (Value, error) {
	return ev.eval(e, context{node: ElemRef(ev.Doc.Root), pos: 1, size: 1})
}

// EvalWith evaluates an expression with the given context node.
func (ev *Evaluator) EvalWith(e Expr, node NodeRef) (Value, error) {
	return ev.eval(e, context{node: node, pos: 1, size: 1})
}

// Select evaluates an expression that must produce a node-set.
func (ev *Evaluator) Select(e Expr) (NodeSet, error) {
	v, err := ev.Eval(e)
	if err != nil {
		return nil, err
	}
	ns, ok := v.(NodeSet)
	if !ok {
		return nil, fmt.Errorf("xpath: expression %s returned %T, not a node-set", e, v)
	}
	return ns, nil
}

func (ev *Evaluator) eval(e Expr, ctx context) (Value, error) {
	switch x := e.(type) {
	case Literal:
		return x.S, nil
	case Number:
		return x.F, nil
	case Var:
		v, ok := ev.Vars[x.Name]
		if !ok {
			return nil, fmt.Errorf("xpath: unbound variable $%s", x.Name)
		}
		return v, nil
	case Neg:
		v, err := ev.eval(x.E, ctx)
		if err != nil {
			return nil, err
		}
		return -ToNumber(v), nil
	case Call:
		return ev.evalCall(x, ctx)
	case Binary:
		return ev.evalBinary(x, ctx)
	case PathExpr:
		return ev.evalPathExpr(x, ctx)
	}
	return nil, fmt.Errorf("xpath: cannot evaluate %T", e)
}

func (ev *Evaluator) evalBinary(b Binary, ctx context) (Value, error) {
	switch b.Op {
	case OpOr, OpAnd:
		l, err := ev.eval(b.L, ctx)
		if err != nil {
			return nil, err
		}
		lb := ToBoolean(l)
		if b.Op == OpOr && lb {
			return true, nil
		}
		if b.Op == OpAnd && !lb {
			return false, nil
		}
		r, err := ev.eval(b.R, ctx)
		if err != nil {
			return nil, err
		}
		return ToBoolean(r), nil
	case OpUnion:
		l, err := ev.eval(b.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := ev.eval(b.R, ctx)
		if err != nil {
			return nil, err
		}
		ln, ok1 := l.(NodeSet)
		rn, ok2 := r.(NodeSet)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("xpath: union of non node-sets")
		}
		return append(append(NodeSet{}, ln...), rn...).SortDoc(), nil
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		l, err := ev.eval(b.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := ev.eval(b.R, ctx)
		if err != nil {
			return nil, err
		}
		lf, rf := ToNumber(l), ToNumber(r)
		switch b.Op {
		case OpAdd:
			return lf + rf, nil
		case OpSub:
			return lf - rf, nil
		case OpMul:
			return lf * rf, nil
		case OpDiv:
			return lf / rf, nil
		default:
			return math.Mod(lf, rf), nil
		}
	default: // comparisons
		l, err := ev.eval(b.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := ev.eval(b.R, ctx)
		if err != nil {
			return nil, err
		}
		return compare(b.Op, l, r), nil
	}
}

// compare implements the XPath 1.0 comparison semantics, including the
// existential semantics over node-sets.
func compare(op Op, l, r Value) bool {
	ln, lIsNS := l.(NodeSet)
	rn, rIsNS := r.(NodeSet)
	switch {
	case lIsNS && rIsNS:
		for _, a := range ln {
			for _, b := range rn {
				if atomicCompare(op, a.StringValue(), b.StringValue()) {
					return true
				}
			}
		}
		return false
	case lIsNS:
		if rb, ok := r.(bool); ok {
			return boolCmp(op, ToBoolean(l), rb)
		}
		for _, a := range ln {
			if compareAtomNS(op, a.StringValue(), r) {
				return true
			}
		}
		return false
	case rIsNS:
		if lb, ok := l.(bool); ok {
			return boolCmp(op, lb, ToBoolean(r))
		}
		for _, b := range rn {
			if compareAtomNS(flip(op), b.StringValue(), l) {
				return true
			}
		}
		return false
	default:
		if op == OpEq || op == OpNeq {
			if _, ok := l.(bool); ok {
				return boolCmp(op, ToBoolean(l), ToBoolean(r))
			}
			if _, ok := r.(bool); ok {
				return boolCmp(op, ToBoolean(l), ToBoolean(r))
			}
			if _, ok := l.(float64); ok {
				return numCmp(op, ToNumber(l), ToNumber(r))
			}
			if _, ok := r.(float64); ok {
				return numCmp(op, ToNumber(l), ToNumber(r))
			}
			return strCmp(op, ToString(l), ToString(r))
		}
		return numCmp(op, ToNumber(l), ToNumber(r))
	}
}

// compareAtomNS compares a node string-value (left side) to a non-node-set
// value.
func compareAtomNS(op Op, sv string, v Value) bool {
	switch x := v.(type) {
	case float64:
		return numCmp(op, ToNumber(sv), x)
	case string:
		return atomicCompare(op, sv, x)
	}
	return false
}

// atomicCompare compares two strings under op: string equality for =/!=,
// numeric comparison otherwise.
func atomicCompare(op Op, a, b string) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNeq:
		return a != b
	default:
		return numCmp(op, ToNumber(a), ToNumber(b))
	}
}

func flip(op Op) Op {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return op
}

func boolCmp(op Op, a, b bool) bool {
	if op == OpNeq {
		return a != b
	}
	if op == OpEq {
		return a == b
	}
	return numCmp(op, ToNumber(a), ToNumber(b))
}

func numCmp(op Op, a, b float64) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNeq:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	case OpGe:
		return a >= b
	}
	return false
}

func strCmp(op Op, a, b string) bool {
	if op == OpNeq {
		return a != b
	}
	return a == b
}

func (ev *Evaluator) evalPathExpr(pe PathExpr, ctx context) (Value, error) {
	var start NodeSet
	if pe.Filter != nil {
		v, err := ev.eval(pe.Filter, ctx)
		if err != nil {
			return nil, err
		}
		if len(pe.FilterPreds) == 0 && len(pe.Path.Steps) == 0 {
			return v, nil
		}
		ns, ok := v.(NodeSet)
		if !ok {
			return nil, fmt.Errorf("xpath: filter expression %s is not a node-set", pe.Filter)
		}
		for _, pred := range pe.FilterPreds {
			ns, err = ev.filterPredicate(ns, pred, false)
			if err != nil {
				return nil, err
			}
		}
		start = ns
	} else if pe.Path.Absolute {
		start = NodeSet{ElemRef(ev.Doc.Root)}
		// An absolute path starts at the (virtual) document root, whose
		// only element child is the root element: /site selects the root
		// element itself when it has the right tag.
		if len(pe.Path.Steps) > 0 {
			return ev.evalAbsolute(pe.Path, ctx)
		}
		return start, nil
	} else {
		start = NodeSet{ctx.node}
	}
	return ev.evalSteps(pe.Path.Steps, start)
}

// evalAbsolute handles /step1/… where step1 applies to the virtual
// document root.
func (ev *Evaluator) evalAbsolute(p Path, ctx context) (Value, error) {
	first := p.Steps[0]
	var start NodeSet
	root := ElemRef(ev.Doc.Root)
	switch first.Axis {
	case Child:
		// The root element is the single child of the document node.
		if matchTest(first.Test, root, Child) {
			start = NodeSet{root}
		}
	case Descendant, DescendantOrSelf:
		// descendant(-or-self) from the document node: the root element
		// and everything below it.
		cands := NodeSet{root}
		cands = append(cands, ev.axisNodes(root, Descendant)...)
		for _, c := range cands {
			if matchTest(first.Test, c, first.Axis) {
				start = append(start, c)
			}
		}
	case Self:
		// self::node() on the document node — approximate with the root
		// element (the data model has no separate document node).
		if matchTest(first.Test, root, Self) {
			start = NodeSet{root}
		}
	default:
		return NodeSet{}, nil
	}
	var err error
	start, err = ev.applyPredicates(first, start)
	if err != nil {
		return nil, err
	}
	return ev.evalSteps(p.Steps[1:], start)
}

func (ev *Evaluator) evalSteps(steps []Step, start NodeSet) (Value, error) {
	cur := start
	for i := range steps {
		st := &steps[i]
		var out NodeSet
		for _, cn := range cur {
			cands := ev.axisNodes(cn, st.Axis)
			matched := cands[:0]
			for _, c := range cands {
				if matchTest(st.Test, c, st.Axis) {
					matched = append(matched, c)
				}
			}
			filtered, err := ev.applyPredicatesOrdered(st.Preds, matched, st.Axis.Reverse())
			if err != nil {
				return nil, err
			}
			out = append(out, filtered...)
		}
		cur = out.SortDoc()
	}
	return cur, nil
}

func (ev *Evaluator) applyPredicates(st Step, ns NodeSet) (NodeSet, error) {
	return ev.applyPredicatesOrdered(st.Preds, ns, st.Axis.Reverse())
}

// applyPredicatesOrdered filters candidates (already in axis order for
// forward axes, or in document order with reverse=true for reverse axes)
// through each predicate in turn, maintaining proximity positions.
func (ev *Evaluator) applyPredicatesOrdered(preds []Expr, ns NodeSet, reverse bool) (NodeSet, error) {
	var err error
	for _, pred := range preds {
		ns, err = ev.filterPredicate(ns, pred, reverse)
		if err != nil {
			return nil, err
		}
	}
	return ns, nil
}

func (ev *Evaluator) filterPredicate(ns NodeSet, pred Expr, reverse bool) (NodeSet, error) {
	out := NodeSet{}
	size := len(ns)
	for i, r := range ns {
		pos := i + 1
		if reverse {
			pos = size - i
		}
		v, err := ev.eval(pred, context{node: r, pos: pos, size: size})
		if err != nil {
			return nil, err
		}
		keep := false
		if f, ok := v.(float64); ok {
			keep = float64(pos) == f
		} else {
			keep = ToBoolean(v)
		}
		if keep {
			out = append(out, r)
		}
	}
	return out, nil
}

// axisNodes enumerates the nodes on an axis from a context node, in axis
// order (reverse axes yield reverse document order — filterPredicate
// compensates via its reverse flag, which expects document order, so
// reverse axes are returned in document order here and positions are
// computed backwards).
func (ev *Evaluator) axisNodes(r NodeRef, axis Axis) NodeSet {
	var out NodeSet
	add := func(n NodeRef) {
		ev.Visited++
		out = append(out, n)
	}
	if r.IsAttr() {
		// From an attribute node only self/parent/ancestor(-or-self) are
		// non-empty.
		switch axis {
		case Self:
			add(r)
		case AncestorOrSelf:
			add(r)
			for n := r.N; n != nil; n = n.Parent {
				add(ElemRef(n))
			}
			out = out.SortDoc()
		case Parent:
			add(ElemRef(r.N))
		case Ancestor:
			for n := r.N; n != nil; n = n.Parent {
				add(ElemRef(n))
			}
			out = out.SortDoc()
		}
		return out
	}
	n := r.N
	switch axis {
	case Self:
		add(r)
	case Child:
		for _, c := range n.Children {
			add(ElemRef(c))
		}
	case Descendant:
		var walk func(*tree.Node)
		walk = func(m *tree.Node) {
			for _, c := range m.Children {
				add(ElemRef(c))
				walk(c)
			}
		}
		walk(n)
	case DescendantOrSelf:
		add(r)
		var walk func(*tree.Node)
		walk = func(m *tree.Node) {
			for _, c := range m.Children {
				add(ElemRef(c))
				walk(c)
			}
		}
		walk(n)
	case Parent:
		if n.Parent != nil {
			add(ElemRef(n.Parent))
		}
	case Ancestor:
		for p := n.Parent; p != nil; p = p.Parent {
			add(ElemRef(p))
		}
		out = out.SortDoc()
	case AncestorOrSelf:
		add(r)
		for p := n.Parent; p != nil; p = p.Parent {
			add(ElemRef(p))
		}
		out = out.SortDoc()
	case FollowingSibling:
		if n.Parent != nil {
			sibs := n.Parent.Children
			for i := n.Index + 1; i < len(sibs); i++ {
				add(ElemRef(sibs[i]))
			}
		}
	case PrecedingSibling:
		if n.Parent != nil {
			sibs := n.Parent.Children
			for i := 0; i < n.Index; i++ {
				add(ElemRef(sibs[i]))
			}
		}
	case Following:
		for cur := n; cur != nil; cur = cur.Parent {
			if cur.Parent == nil {
				break
			}
			sibs := cur.Parent.Children
			for i := cur.Index + 1; i < len(sibs); i++ {
				add(ElemRef(sibs[i]))
				var walk func(*tree.Node)
				walk = func(m *tree.Node) {
					for _, c := range m.Children {
						add(ElemRef(c))
						walk(c)
					}
				}
				walk(sibs[i])
			}
		}
		out = out.SortDoc()
	case Preceding:
		// All nodes strictly before n in document order, excluding
		// ancestors.
		for cur := n; cur != nil; cur = cur.Parent {
			if cur.Parent == nil {
				break
			}
			sibs := cur.Parent.Children
			for i := 0; i < cur.Index; i++ {
				add(ElemRef(sibs[i]))
				var walk func(*tree.Node)
				walk = func(m *tree.Node) {
					for _, c := range m.Children {
						add(ElemRef(c))
						walk(c)
					}
				}
				walk(sibs[i])
			}
		}
		out = out.SortDoc()
	case Attribute:
		for i := range n.Attrs {
			add(NodeRef{N: n, AttrIdx: i})
		}
	}
	return out
}

// matchTest applies a node test, honouring the principal node type of the
// axis (attribute for the attribute axis, element otherwise).
func matchTest(t NodeTest, r NodeRef, axis Axis) bool {
	if r.IsAttr() {
		switch t.Kind {
		case TestNode:
			return true
		case TestStar:
			return axis == Attribute
		case TestName:
			return axis == Attribute && r.N.Attrs[r.AttrIdx].Name == t.Name
		}
		return false
	}
	switch t.Kind {
	case TestNode:
		return true
	case TestStar:
		return r.N.Kind == tree.Element && axis != Attribute
	case TestName:
		return r.N.Kind == tree.Element && axis != Attribute && r.N.Tag == t.Name
	case TestText:
		return r.N.Kind == tree.Text
	default: // comment(), processing-instruction(): not in the data model
		return false
	}
}
