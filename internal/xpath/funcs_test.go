package xpath

import (
	"math"
	"testing"

	"xmlproj/internal/tree"
)

func fdoc(t *testing.T) *tree.Document {
	t.Helper()
	d, err := tree.ParseString(`<r><a>5</a><a>7</a><b lang="en">hello world</b></r>`)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFuncNameAndLocalName(t *testing.T) {
	doc := fdoc(t)
	cases := map[string]Value{
		`name(/r/a)`:       "a",
		`local-name(/r/b)`: "b",
		`name(/r/nope)`:    "",
		`name(/r/b/@lang)`: "lang",
	}
	for src, want := range cases {
		if got := evalVal(t, doc, src); got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
	// Context-node forms.
	ev := NewEvaluator(doc)
	b := doc.Root.Children[2]
	v, err := ev.EvalWith(MustParse("name()"), ElemRef(b))
	if err != nil || v != "b" {
		t.Fatalf("name() with context = %v, %v", v, err)
	}
}

func TestFuncStringContextForms(t *testing.T) {
	doc := fdoc(t)
	ev := NewEvaluator(doc)
	b := doc.Root.Children[2]
	for src, want := range map[string]Value{
		"string()":          "hello world",
		"string-length()":   11.0,
		"normalize-space()": "hello world",
		"number(../a[1])":   5.0,
	} {
		v, err := ev.EvalWith(MustParse(src), ElemRef(b))
		if err != nil || v != want {
			t.Errorf("%s = %v (%v), want %v", src, v, err, want)
		}
	}
}

func TestFuncSubstringEdgeCases(t *testing.T) {
	doc := fdoc(t)
	cases := map[string]string{
		// The W3C specification examples.
		`substring("12345", 1.5, 2.6)`:   "234",
		`substring("12345", 0, 3)`:       "12",
		`substring("12345", 0 div 0, 3)`: "",
		`substring("12345", -42)`:        "12345",
	}
	for src, want := range cases {
		if got := evalVal(t, doc, src); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestFuncRoundHalf(t *testing.T) {
	doc := fdoc(t)
	if got := evalVal(t, doc, "round(2.5)").(float64); got != 3 {
		t.Errorf("round(2.5) = %v", got)
	}
	if got := evalVal(t, doc, "round(-2.5)").(float64); got != -3 && got != -2 {
		// math.Round gives -3; XPath 1.0 wants -2; either is acceptable for
		// the benchmarks, but it must be one of them.
		t.Errorf("round(-2.5) = %v", got)
	}
}

func TestFuncAggregatesOnEmpty(t *testing.T) {
	doc := fdoc(t)
	if got := evalVal(t, doc, "sum(/r/none)").(float64); got != 0 {
		t.Errorf("sum(empty) = %v", got)
	}
	for _, src := range []string{"avg(/r/none)", "min(/r/none)", "max(/r/none)"} {
		if got := evalVal(t, doc, src).(float64); !math.IsNaN(got) {
			t.Errorf("%s = %v, want NaN", src, got)
		}
	}
}

func TestFuncArityErrors(t *testing.T) {
	doc := fdoc(t)
	ev := NewEvaluator(doc)
	bad := []string{
		"last(1)", "position(1)", "concat('a')", "starts-with('a')",
		"contains('a')", "substring('a')", "translate('a','b')",
		"boolean()", "not()", "true(1)", "false(1)", "floor()", "ceiling()",
		"round()", "sum()", "id('x')",
	}
	for _, src := range bad {
		if _, err := ev.Eval(MustParse(src)); err == nil {
			t.Errorf("Eval(%q) succeeded, want error", src)
		}
	}
}

func TestComparisonsAllOperators(t *testing.T) {
	doc := fdoc(t)
	cases := map[string]bool{
		"1 < 2": true, "2 <= 2": true, "3 > 2": true, "2 >= 3": false,
		"1 != 2": true, "1 = 1": true,
		// flip: node-set on the right of a relational operator.
		"6 > /r/a":    true,  // 6 > 5
		"4 > /r/a":    false, // 4 > neither 5 nor 7
		"6 < /r/a":    true,  // 6 < 7
		"5 >= /r/a":   true,
		"5 <= /r/a":   true,
		`"5" = /r/a`:  true,
		`"6" != /r/a`: true,
		// booleans compared with numbers and strings.
		"true() = 1":   true,
		"false() = 0":  true,
		"true() > 0":   true,
		`true() = "x"`: true,
		`false() = ""`: true,
		"not(1 = 2)":   true,
	}
	for src, want := range cases {
		if got := evalVal(t, doc, src); got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestNumberFormatting(t *testing.T) {
	cases := map[float64]string{
		1:        "1",
		-1:       "-1",
		1.5:      "1.5",
		0:        "0",
		1e6:      "1000000",
		0.000001: "1e-06",
	}
	for f, want := range cases {
		if got := FormatNumber(f); got != want {
			t.Errorf("FormatNumber(%v) = %q, want %q", f, got, want)
		}
	}
	if FormatNumber(math.NaN()) != "NaN" {
		t.Error("NaN formatting")
	}
	if FormatNumber(math.Inf(1)) != "Infinity" || FormatNumber(math.Inf(-1)) != "-Infinity" {
		t.Error("Infinity formatting")
	}
}

func TestValueConversions(t *testing.T) {
	if ToNumber(true) != 1 || ToNumber(false) != 0 {
		t.Error("bool to number")
	}
	if !math.IsNaN(ToNumber(struct{}{})) {
		t.Error("junk to number should be NaN")
	}
	if ToString(3.0) != "3" || ToString(false) != "false" {
		t.Error("to string")
	}
	if ToBoolean(math.NaN()) || !ToBoolean(1.0) || ToBoolean("") || !ToBoolean("x") {
		t.Error("to boolean")
	}
	if ToString(NodeSet{}) != "" || ToBoolean(NodeSet{}) {
		t.Error("empty node-set conversions")
	}
}

func TestExprStringRendering(t *testing.T) {
	// Every operator and shape renders to re-parseable XPath.
	srcs := []string{
		"1 + 2 - 3 * 4 div 5 mod 6",
		"a | b | c",
		"-a",
		`concat("x", 'y')`,
		"a < b and c > d or e <= f and g >= h",
		"a != b",
		"$v[1]/x",
		"(a)[2]",
		"processing-instruction()",
		"comment()",
		"following::a[last()]",
	}
	for _, src := range srcs {
		e1 := MustParse(src)
		s1 := e1.String()
		e2, err := Parse(s1)
		if err != nil {
			t.Fatalf("render of %q = %q does not re-parse: %v", src, s1, err)
		}
		if s2 := e2.String(); s2 != s1 {
			t.Errorf("not a fixpoint: %q -> %q -> %q", src, s1, s2)
		}
	}
}

func TestCommentAndPINeverMatch(t *testing.T) {
	doc := fdoc(t)
	if got := sel(t, doc, "//comment()"); len(got) != 0 {
		t.Errorf("comment() = %v", got)
	}
	if got := sel(t, doc, "//processing-instruction()"); len(got) != 0 {
		t.Errorf("processing-instruction() = %v", got)
	}
}
