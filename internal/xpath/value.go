package xpath

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"xmlproj/internal/tree"
)

// NodeRef identifies a node in the XPath sense: either a tree node
// (element or text) or one of an element's attributes.
type NodeRef struct {
	N *tree.Node
	// AttrIdx is -1 for the node itself, otherwise an index into N.Attrs
	// designating an attribute node.
	AttrIdx int
}

// ElemRef wraps a tree node as a NodeRef.
func ElemRef(n *tree.Node) NodeRef { return NodeRef{N: n, AttrIdx: -1} }

// IsAttr reports whether the ref designates an attribute node.
func (r NodeRef) IsAttr() bool { return r.AttrIdx >= 0 }

// StringValue returns the XPath string-value of the node.
func (r NodeRef) StringValue() string {
	if r.IsAttr() {
		return r.N.Attrs[r.AttrIdx].Value
	}
	return r.N.StringValue()
}

// Name returns the expanded name: tag for elements, attribute name for
// attribute nodes, empty for text nodes.
func (r NodeRef) Name() string {
	if r.IsAttr() {
		return r.N.Attrs[r.AttrIdx].Name
	}
	if r.N.Kind == tree.Element {
		return r.N.Tag
	}
	return ""
}

// orderKey orders nodes in document order; attribute nodes come after
// their owner element and before its children (children have larger IDs,
// so (ownerID, attrIdx+1) sorts correctly against (childID, 0)).
func (r NodeRef) orderKey() (tree.NodeID, int) { return r.N.ID, r.AttrIdx + 1 }

// Before reports document order between two refs.
func (r NodeRef) Before(o NodeRef) bool {
	a1, a2 := r.orderKey()
	b1, b2 := o.orderKey()
	if a1 != b1 {
		return a1 < b1
	}
	return a2 < b2
}

// NodeSet is a set of nodes. The evaluation engine keeps node-sets sorted
// in document order and duplicate-free.
type NodeSet []NodeRef

// SortDoc sorts the set in document order and removes duplicates.
func (s NodeSet) SortDoc() NodeSet {
	sort.Slice(s, func(i, j int) bool { return s[i].Before(s[j]) })
	out := s[:0]
	for i, r := range s {
		if i > 0 && r == s[i-1] {
			continue
		}
		out = append(out, r)
	}
	return out
}

// Nodes returns the underlying tree nodes of the non-attribute members.
func (s NodeSet) Nodes() []*tree.Node {
	out := make([]*tree.Node, 0, len(s))
	for _, r := range s {
		if !r.IsAttr() {
			out = append(out, r.N)
		}
	}
	return out
}

// Value is an XPath value: one of NodeSet, float64, string, bool.
type Value interface{}

// ToBoolean implements the boolean() conversion.
func ToBoolean(v Value) bool {
	switch x := v.(type) {
	case NodeSet:
		return len(x) > 0
	case bool:
		return x
	case float64:
		return x != 0 && !math.IsNaN(x)
	case string:
		return len(x) > 0
	}
	return false
}

// ToString implements the string() conversion.
func ToString(v Value) string {
	switch x := v.(type) {
	case NodeSet:
		if len(x) == 0 {
			return ""
		}
		return x[0].StringValue()
	case bool:
		if x {
			return "true"
		}
		return "false"
	case float64:
		return FormatNumber(x)
	case string:
		return x
	}
	return ""
}

// ToNumber implements the number() conversion.
func ToNumber(v Value) float64 {
	switch x := v.(type) {
	case NodeSet:
		return ToNumber(ToString(v))
	case bool:
		if x {
			return 1
		}
		return 0
	case float64:
		return x
	case string:
		f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
		if err != nil {
			return math.NaN()
		}
		return f
	}
	return math.NaN()
}

// FormatNumber renders a float per the XPath string() rules: integers
// without a decimal point, NaN as "NaN", infinities as "Infinity".
func FormatNumber(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "Infinity"
	case math.IsInf(f, -1):
		return "-Infinity"
	case f == math.Trunc(f) && math.Abs(f) < 1e15:
		return strconv.FormatFloat(f, 'f', -1, 64)
	default:
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
}
