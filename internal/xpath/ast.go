// Package xpath implements XPath 1.0: abstract syntax, a recursive-descent
// parser, and an in-memory evaluation engine over the tree data model.
//
// The engine plays the role Galax plays in the paper's experiments (§6): a
// main-memory processor whose time and memory costs scale with the number
// of nodes it must allocate and visit — exactly the costs that type-based
// projection reduces.
package xpath

import (
	"fmt"
	"strconv"
	"strings"
)

// Axis is one of the XPath axes.
type Axis uint8

const (
	Child Axis = iota
	Descendant
	Parent
	Ancestor
	Self
	DescendantOrSelf
	AncestorOrSelf
	FollowingSibling
	PrecedingSibling
	Following
	Preceding
	Attribute
)

var axisNames = [...]string{
	Child:            "child",
	Descendant:       "descendant",
	Parent:           "parent",
	Ancestor:         "ancestor",
	Self:             "self",
	DescendantOrSelf: "descendant-or-self",
	AncestorOrSelf:   "ancestor-or-self",
	FollowingSibling: "following-sibling",
	PrecedingSibling: "preceding-sibling",
	Following:        "following",
	Preceding:        "preceding",
	Attribute:        "attribute",
}

func (a Axis) String() string {
	if int(a) < len(axisNames) {
		return axisNames[a]
	}
	return fmt.Sprintf("Axis(%d)", uint8(a))
}

// Upward reports whether the axis moves towards the root.
func (a Axis) Upward() bool {
	return a == Parent || a == Ancestor || a == AncestorOrSelf
}

// Downward reports whether the axis moves towards the leaves (or stays).
func (a Axis) Downward() bool {
	return a == Child || a == Descendant || a == DescendantOrSelf || a == Self || a == Attribute
}

// Reverse reports whether the axis is a reverse axis (proximity position
// counts in reverse document order).
func (a Axis) Reverse() bool {
	switch a {
	case Parent, Ancestor, AncestorOrSelf, Preceding, PrecedingSibling:
		return true
	}
	return false
}

// AxisByName maps an axis name to its Axis. Unknown names return ok=false.
func AxisByName(s string) (Axis, bool) {
	for i, n := range axisNames {
		if n == s {
			return Axis(i), true
		}
	}
	return 0, false
}

// TestKind discriminates node tests.
type TestKind uint8

const (
	// TestName matches elements (or attributes on the attribute axis) with
	// a specific name.
	TestName TestKind = iota
	// TestStar matches any element (any attribute on the attribute axis).
	TestStar
	// TestNode matches any node: node().
	TestNode
	// TestText matches text nodes: text().
	TestText
	// TestComment matches comment nodes: comment(). The data model carries
	// no comments, so it never matches; it is parsed for completeness.
	TestComment
	// TestPI matches processing instructions: likewise never matches.
	TestPI
)

// NodeTest is the Test part of a step.
type NodeTest struct {
	Kind TestKind
	// Name is the element/attribute name for TestName.
	Name string
}

func (t NodeTest) String() string {
	switch t.Kind {
	case TestName:
		return t.Name
	case TestStar:
		return "*"
	case TestNode:
		return "node()"
	case TestText:
		return "text()"
	case TestComment:
		return "comment()"
	case TestPI:
		return "processing-instruction()"
	}
	return "?"
}

// NameTest builds a TestName node test.
func NameTest(name string) NodeTest { return NodeTest{Kind: TestName, Name: name} }

// NodeTestNode is the node() test.
var NodeTestNode = NodeTest{Kind: TestNode}

// TextTest is the text() test.
var TextTest = NodeTest{Kind: TestText}

// Step is one location step: Axis::Test[Pred]…[Pred].
type Step struct {
	Axis  Axis
	Test  NodeTest
	Preds []Expr
}

func (s Step) String() string {
	var sb strings.Builder
	sb.WriteString(s.Axis.String())
	sb.WriteString("::")
	sb.WriteString(s.Test.String())
	for _, p := range s.Preds {
		sb.WriteString("[")
		sb.WriteString(p.String())
		sb.WriteString("]")
	}
	return sb.String()
}

// Path is a location path.
type Path struct {
	// Absolute paths start at the document root.
	Absolute bool
	Steps    []Step
}

func (p *Path) String() string {
	var sb strings.Builder
	if p.Absolute {
		sb.WriteString("/")
	}
	for i, s := range p.Steps {
		if i > 0 {
			sb.WriteString("/")
		}
		sb.WriteString(s.String())
	}
	return sb.String()
}

// Expr is an XPath expression.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// Op is a binary operator.
type Op uint8

const (
	OpOr Op = iota
	OpAnd
	OpEq
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpUnion
)

var opNames = [...]string{
	OpOr: "or", OpAnd: "and", OpEq: "=", OpNeq: "!=", OpLt: "<", OpLe: "<=",
	OpGt: ">", OpGe: ">=", OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "div",
	OpMod: "mod", OpUnion: "|",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Binary is a binary operation L op R (including union).
type Binary struct {
	Op   Op
	L, R Expr
}

// Neg is unary minus.
type Neg struct{ E Expr }

// Literal is a string literal.
type Literal struct{ S string }

// Number is a numeric literal.
type Number struct{ F float64 }

// Var is a variable reference $name.
type Var struct{ Name string }

// Call is a function call.
type Call struct {
	Name string
	Args []Expr
}

// PathExpr is a location path used as an expression, optionally applied to
// a filter expression: Filter/Path (Filter may be nil for a bare path,
// Path may be empty for a bare filter with predicates).
type PathExpr struct {
	// Filter is the primary expression the path is applied to, or nil when
	// the path starts from the context node or root.
	Filter Expr
	// FilterPreds are predicates applied to the filter result.
	FilterPreds []Expr
	Path        Path
}

func (Binary) exprNode()   {}
func (Neg) exprNode()      {}
func (Literal) exprNode()  {}
func (Number) exprNode()   {}
func (Var) exprNode()      {}
func (Call) exprNode()     {}
func (PathExpr) exprNode() {}

func (b Binary) String() string {
	if b.Op == OpUnion {
		return fmt.Sprintf("%s | %s", b.L, b.R)
	}
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

func (n Neg) String() string { return "-" + n.E.String() }

func (l Literal) String() string { return strconv.Quote(l.S) }

func (n Number) String() string {
	return strconv.FormatFloat(n.F, 'g', -1, 64)
}

func (v Var) String() string { return "$" + v.Name }

func (c Call) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	return c.Name + "(" + strings.Join(args, ", ") + ")"
}

func (p PathExpr) String() string {
	var sb strings.Builder
	if p.Filter != nil {
		sb.WriteString("(")
		sb.WriteString(p.Filter.String())
		sb.WriteString(")")
		for _, pr := range p.FilterPreds {
			sb.WriteString("[")
			sb.WriteString(pr.String())
			sb.WriteString("]")
		}
		if len(p.Path.Steps) > 0 {
			sb.WriteString("/")
		}
	}
	sb.WriteString(p.Path.String())
	return sb.String()
}
