package xpath

import (
	"math"
	"strings"
	"testing"

	"xmlproj/internal/tree"
)

const bibXML = `<bib>
<book isbn="1" lang="it"><title>Commedia</title><author>Dante</author><year>1313</year></book>
<book isbn="2"><title>Decameron</title><author>Boccaccio</author><year>1353</year></book>
<book isbn="3" lang="it"><title>Canzoniere</title><author>Petrarca</author><author>Dante</author></book>
</bib>`

func bibDoc(t *testing.T) *tree.Document {
	t.Helper()
	d, err := tree.ParseString(bibXML)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// sel evaluates src on doc and returns the matched elements' tags (or text
// data / attribute values).
func sel(t *testing.T, doc *tree.Document, src string) []string {
	t.Helper()
	ev := NewEvaluator(doc)
	ns, err := ev.Select(MustParse(src))
	if err != nil {
		t.Fatalf("Select(%q): %v", src, err)
	}
	var out []string
	for _, r := range ns {
		switch {
		case r.IsAttr():
			out = append(out, "@"+r.Name()+"="+r.StringValue())
		case r.N.Kind == tree.Text:
			out = append(out, "#"+r.N.Data)
		default:
			out = append(out, r.N.Tag)
		}
	}
	return out
}

func evalVal(t *testing.T, doc *tree.Document, src string) Value {
	t.Helper()
	ev := NewEvaluator(doc)
	v, err := ev.Eval(MustParse(src))
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func joined(xs []string) string { return strings.Join(xs, " ") }

func TestEvalChildAndDescendant(t *testing.T) {
	doc := bibDoc(t)
	if got := sel(t, doc, "child::book"); len(got) != 3 {
		t.Fatalf("child::book = %v", got)
	}
	if got := sel(t, doc, "descendant::author"); len(got) != 4 {
		t.Fatalf("descendant::author = %v", got)
	}
	if got := sel(t, doc, "book/title"); len(got) != 3 {
		t.Fatalf("book/title = %v", got)
	}
	if got := sel(t, doc, "descendant::author/child::text()"); joined(got) != "#Dante #Boccaccio #Petrarca #Dante" {
		t.Fatalf("author texts = %v", got)
	}
}

func TestEvalAbsolutePaths(t *testing.T) {
	doc := bibDoc(t)
	if got := sel(t, doc, "/bib/book"); len(got) != 3 {
		t.Fatalf("/bib/book = %v", got)
	}
	if got := sel(t, doc, "/nosuch"); len(got) != 0 {
		t.Fatalf("/nosuch = %v", got)
	}
	if got := sel(t, doc, "//author"); len(got) != 4 {
		t.Fatalf("//author = %v", got)
	}
	if got := sel(t, doc, "//book/title"); len(got) != 3 {
		t.Fatalf("//book/title = %v", got)
	}
	// Absolute path from a nested context still starts at the root.
	ev := NewEvaluator(doc)
	title := doc.Root.Children[0].Children[0]
	v, err := ev.EvalWith(MustParse("/bib/book"), ElemRef(title))
	if err != nil || len(v.(NodeSet)) != 3 {
		t.Fatalf("absolute from nested context: %v, %v", v, err)
	}
}

func TestEvalUpwardAxes(t *testing.T) {
	doc := bibDoc(t)
	if got := sel(t, doc, "book/title/parent::node()"); joined(got) != "book book book" {
		t.Fatalf("parent = %v", got)
	}
	if got := sel(t, doc, "book/title/ancestor::bib"); joined(got) != "bib" {
		t.Fatalf("ancestor::bib = %v", got)
	}
	if got := sel(t, doc, "book/author/ancestor-or-self::node()"); len(got) != 1+3+4 {
		t.Fatalf("ancestor-or-self count = %d (%v)", len(got), got)
	}
	if got := sel(t, doc, "book/.."); joined(got) != "bib" {
		t.Fatalf(".. = %v", got)
	}
}

func TestEvalSiblingAxes(t *testing.T) {
	doc := bibDoc(t)
	if got := sel(t, doc, "book[1]/following-sibling::book"); len(got) != 2 {
		t.Fatalf("following-sibling = %v", got)
	}
	if got := sel(t, doc, "book[3]/preceding-sibling::book"); len(got) != 2 {
		t.Fatalf("preceding-sibling = %v", got)
	}
	// Proximity position on a reverse axis: the nearest preceding sibling
	// is position 1.
	if got := sel(t, doc, "book[3]/preceding-sibling::book[1]/title/child::text()"); joined(got) != "#Decameron" {
		t.Fatalf("preceding-sibling[1] = %v", got)
	}
	if got := sel(t, doc, "book[1]/title/following-sibling::node()"); len(got) != 2 { // author, year
		t.Fatalf("following-sibling::node() = %v", got)
	}
}

func TestEvalFollowingPreceding(t *testing.T) {
	doc := bibDoc(t)
	// following from first title: everything after </title> in doc order.
	got := sel(t, doc, "book[1]/title/following::author")
	if len(got) != 4 {
		t.Fatalf("following::author = %v", got)
	}
	got = sel(t, doc, "book[3]/preceding::title")
	if len(got) != 2 {
		t.Fatalf("preceding::title = %v", got)
	}
	// preceding excludes ancestors.
	got = sel(t, doc, "book[2]/title/preceding::bib")
	if len(got) != 0 {
		t.Fatalf("preceding must exclude ancestors: %v", got)
	}
}

func TestEvalAttributes(t *testing.T) {
	doc := bibDoc(t)
	if got := sel(t, doc, "book/@isbn"); joined(got) != "@isbn=1 @isbn=2 @isbn=3" {
		t.Fatalf("@isbn = %v", got)
	}
	if got := sel(t, doc, "book/attribute::*"); len(got) != 5 {
		t.Fatalf("attribute::* = %v", got)
	}
	if got := sel(t, doc, `book[@lang = "it"]`); len(got) != 2 {
		t.Fatalf("book[@lang=it] = %v", got)
	}
	if got := sel(t, doc, `book[@lang]/title`); len(got) != 2 {
		t.Fatalf("book[@lang]/title = %v", got)
	}
	// Attribute node axes.
	if got := sel(t, doc, "book/@isbn/parent::node()"); joined(got) != "book book book" {
		t.Fatalf("@isbn/parent = %v", got)
	}
	if got := sel(t, doc, "book/@isbn/ancestor::bib"); joined(got) != "bib" {
		t.Fatalf("@isbn/ancestor::bib = %v", got)
	}
}

func TestEvalPositionalPredicates(t *testing.T) {
	doc := bibDoc(t)
	if got := sel(t, doc, "book[1]/@isbn"); joined(got) != "@isbn=1" {
		t.Fatalf("book[1] = %v", got)
	}
	if got := sel(t, doc, "book[last()]/@isbn"); joined(got) != "@isbn=3" {
		t.Fatalf("book[last()] = %v", got)
	}
	if got := sel(t, doc, "book[position() > 1]"); len(got) != 2 {
		t.Fatalf("book[position()>1] = %v", got)
	}
	if got := sel(t, doc, "book[2][1]"); len(got) != 1 {
		t.Fatalf("book[2][1] = %v", got)
	}
	if got := sel(t, doc, "book[1][2]"); len(got) != 0 {
		t.Fatalf("book[1][2] = %v", got)
	}
}

func TestEvalValuePredicates(t *testing.T) {
	doc := bibDoc(t)
	if got := sel(t, doc, `book[author = "Dante"]/@isbn`); joined(got) != "@isbn=1 @isbn=3" {
		t.Fatalf("author=Dante = %v", got)
	}
	if got := sel(t, doc, `book[year > 1330]/title/child::text()`); joined(got) != "#Decameron" {
		t.Fatalf("year>1330 = %v", got)
	}
	if got := sel(t, doc, `book[not(year)]`); len(got) != 1 {
		t.Fatalf("not(year) = %v", got)
	}
	if got := sel(t, doc, `book[count(author) = 2]/@isbn`); joined(got) != "@isbn=3" {
		t.Fatalf("count(author)=2 = %v", got)
	}
	if got := sel(t, doc, `book[contains(title, "camer")]/@isbn`); joined(got) != "@isbn=2" {
		t.Fatalf("contains = %v", got)
	}
}

// The paper's running example (§3).
func TestEvalPaperQueryQ(t *testing.T) {
	doc := bibDoc(t)
	q := `/descendant::author/child::text()[self::node() = "Dante"]/ancestor::book/child::title`
	got := sel(t, doc, q)
	if len(got) != 2 {
		t.Fatalf("paper query = %v, want 2 titles", got)
	}
	ev := NewEvaluator(doc)
	ns, err := ev.Select(MustParse(q))
	if err != nil {
		t.Fatal(err)
	}
	if ns[0].StringValue() != "Commedia" || ns[1].StringValue() != "Canzoniere" {
		t.Fatalf("titles = %q, %q", ns[0].StringValue(), ns[1].StringValue())
	}
}

func TestEvalDocumentOrderAndDedup(t *testing.T) {
	doc := bibDoc(t)
	// Two routes to the same titles must be deduplicated.
	got := sel(t, doc, "book/title | //title")
	if len(got) != 3 {
		t.Fatalf("union dedup = %v", got)
	}
	// ancestor-or-self from all authors reaches bib once per result set.
	got = sel(t, doc, "descendant::node()/ancestor-or-self::bib")
	if len(got) != 1 {
		t.Fatalf("dedup over ancestors = %v", got)
	}
}

func TestEvalArithmeticAndComparison(t *testing.T) {
	doc := bibDoc(t)
	if v := evalVal(t, doc, "1 + 2 * 3"); v.(float64) != 7 {
		t.Fatalf("1+2*3 = %v", v)
	}
	if v := evalVal(t, doc, "(1 + 2) * 3"); v.(float64) != 9 {
		t.Fatalf("(1+2)*3 = %v", v)
	}
	if v := evalVal(t, doc, "10 div 4"); v.(float64) != 2.5 {
		t.Fatalf("div = %v", v)
	}
	if v := evalVal(t, doc, "10 mod 3"); v.(float64) != 1 {
		t.Fatalf("mod = %v", v)
	}
	if v := evalVal(t, doc, "-book[1]/year"); v.(float64) != -1313 {
		t.Fatalf("neg = %v", v)
	}
	if v := evalVal(t, doc, "count(book) = 3"); v != true {
		t.Fatalf("count=3: %v", v)
	}
	if v := evalVal(t, doc, `"abc" = "abc"`); v != true {
		t.Fatal("string eq")
	}
	if v := evalVal(t, doc, "1 < 2 and 2 < 1"); v != false {
		t.Fatal("and")
	}
	if v := evalVal(t, doc, "1 > 2 or 2 > 1"); v != true {
		t.Fatal("or")
	}
}

func TestEvalNodeSetComparisons(t *testing.T) {
	doc := bibDoc(t)
	// Existential semantics: some author equals "Dante".
	if v := evalVal(t, doc, `book/author = "Dante"`); v != true {
		t.Fatal("existential =")
	}
	// != is also existential: some author differs from Dante.
	if v := evalVal(t, doc, `book/author != "Dante"`); v != true {
		t.Fatal("existential !=")
	}
	if v := evalVal(t, doc, `book/year > 1340`); v != true {
		t.Fatal("nodeset > number")
	}
	if v := evalVal(t, doc, `book/year < 1000`); v != false {
		t.Fatal("nodeset < number false")
	}
	// Node-set vs node-set.
	if v := evalVal(t, doc, "book[1]/author = book[3]/author"); v != true {
		t.Fatal("Dante appears in both")
	}
	if v := evalVal(t, doc, "book[1]/title = book[2]/title"); v != false {
		t.Fatal("distinct titles reported equal")
	}
	// Node-set vs boolean compares via boolean().
	if v := evalVal(t, doc, "book = true()"); v != true {
		t.Fatal("nodeset vs bool")
	}
	if v := evalVal(t, doc, "nosuch = false()"); v != true {
		t.Fatal("empty nodeset vs false")
	}
}

func TestEvalStringFunctions(t *testing.T) {
	doc := bibDoc(t)
	cases := []struct {
		src  string
		want Value
	}{
		{`string(book[1]/title)`, "Commedia"},
		{`concat("a", "b", "c")`, "abc"},
		{`starts-with("hello", "he")`, true},
		{`contains("hello", "ell")`, true},
		{`substring("12345", 2, 3)`, "234"},
		{`substring("12345", 2)`, "2345"},
		{`substring-before("1999/04/01", "/")`, "1999"},
		{`substring-after("1999/04/01", "/")`, "04/01"},
		{`string-length("abc")`, 3.0},
		{`normalize-space("  a   b ")`, "a b"},
		{`translate("bar", "abc", "ABC")`, "BAr"},
		{`translate("-bar-", "-", "")`, "bar"},
		{`string(12)`, "12"},
		{`string(1.5)`, "1.5"},
		{`string(true())`, "true"},
	}
	for _, c := range cases {
		if got := evalVal(t, doc, c.src); got != c.want {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalNumericFunctions(t *testing.T) {
	doc := bibDoc(t)
	cases := []struct {
		src  string
		want float64
	}{
		{"floor(1.7)", 1},
		{"ceiling(1.2)", 2},
		{"round(1.5)", 2},
		{"sum(book/year)", 2666},
		{"count(//author)", 4},
		{"number('12.5')", 12.5},
		{"avg(book/year)", 1333},
		{"min(book/year)", 1313},
		{"max(book/year)", 1353},
	}
	for _, c := range cases {
		if got := evalVal(t, doc, c.src).(float64); got != c.want {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
	if got := evalVal(t, doc, "number('zzz')").(float64); !math.IsNaN(got) {
		t.Errorf("number('zzz') = %v, want NaN", got)
	}
}

func TestEvalBooleanFunctions(t *testing.T) {
	doc := bibDoc(t)
	cases := []struct {
		src  string
		want bool
	}{
		{"not(1)", false},
		{"not(0)", true},
		{"boolean(book)", true},
		{"boolean(nosuch)", false},
		{`boolean("")`, false},
		{"true()", true},
		{"false()", false},
		{"empty(nosuch)", true},
		{"empty(book)", false},
		{"exists(book)", true},
	}
	for _, c := range cases {
		if got := evalVal(t, doc, c.src); got != c.want {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalVariables(t *testing.T) {
	doc := bibDoc(t)
	ev := NewEvaluator(doc)
	ev.Vars["n"] = 2.0
	v, err := ev.Eval(MustParse("book[$n]/@isbn"))
	if err != nil {
		t.Fatal(err)
	}
	if ns := v.(NodeSet); len(ns) != 1 || ns[0].StringValue() != "2" {
		t.Fatalf("book[$n] = %v", ns)
	}
	// Node-set variable with a continuation path.
	books, _ := ev.Select(MustParse("book"))
	ev.Vars["b"] = books
	v, err = ev.Eval(MustParse("$b/title"))
	if err != nil {
		t.Fatal(err)
	}
	if len(v.(NodeSet)) != 3 {
		t.Fatalf("$b/title = %v", v)
	}
	if _, err := ev.Eval(MustParse("$undefined")); err == nil {
		t.Fatal("unbound variable must error")
	}
}

func TestEvalTextTest(t *testing.T) {
	doc := bibDoc(t)
	if got := sel(t, doc, "book/title/text()"); len(got) != 3 {
		t.Fatalf("title/text() = %v", got)
	}
	if got := sel(t, doc, "book/node()"); len(got) != 9 { // 3+3+3 element children
		t.Fatalf("book/node() = %d: %v", len(got), got)
	}
}

func TestEvalStarTest(t *testing.T) {
	doc := bibDoc(t)
	if got := sel(t, doc, "book[1]/*"); joined(got) != "title author year" {
		t.Fatalf("book/* = %v", got)
	}
}

func TestEvalVisitedCounter(t *testing.T) {
	doc := bibDoc(t)
	ev := NewEvaluator(doc)
	if _, err := ev.Select(MustParse("//author")); err != nil {
		t.Fatal(err)
	}
	if ev.Visited == 0 {
		t.Fatal("Visited not incremented")
	}
}

func TestEvalErrors(t *testing.T) {
	doc := bibDoc(t)
	ev := NewEvaluator(doc)
	for _, src := range []string{
		"unknownfn()", "count()", "count(1, 2)", `count("s")`, "1 | 2",
	} {
		if _, err := ev.Eval(MustParse(src)); err == nil {
			t.Errorf("Eval(%q) succeeded, want error", src)
		}
	}
}
