package xpath

import (
	"fmt"
	"strconv"
)

// Parser is a recursive-descent XPath 1.0 parser. The XQuery package
// embeds it to parse the path and expression fragments of FLWR queries.
type Parser struct {
	lex *Lexer
	tok Token // lookahead
	err error
}

// NewParser returns a parser reading from lex. The lexer's position is
// advanced as the parser consumes tokens.
func NewParser(lex *Lexer) (*Parser, error) {
	p := &Parser{lex: lex}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

// Parse parses a complete XPath expression (usually a location path) and
// requires all input to be consumed.
func Parse(src string) (Expr, error) {
	p, err := NewParser(NewLexer(src))
	if err != nil {
		return nil, err
	}
	e, err := p.ParseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != TokEOF {
		return nil, fmt.Errorf("xpath: trailing input at offset %d: %s", p.tok.Pos, p.tok)
	}
	return e, nil
}

// MustParse parses a known-good expression, panicking on error.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

// ParsePath parses src and requires the result to be a plain location
// path (no filter expression).
func ParsePath(src string) (*Path, error) {
	e, err := Parse(src)
	if err != nil {
		return nil, err
	}
	pe, ok := e.(PathExpr)
	if !ok || pe.Filter != nil {
		return nil, fmt.Errorf("xpath: %s is not a location path", src)
	}
	return &pe.Path, nil
}

// Tok returns the current lookahead token (used by the XQuery parser).
func (p *Parser) Tok() Token { return p.tok }

// Advance consumes the lookahead token (used by the XQuery parser).
func (p *Parser) Advance() error { return p.advance() }

// Lexer exposes the underlying lexer (used by the XQuery parser for
// element constructors, which are not token-regular).
func (p *Parser) Lexer() *Lexer { return p.lex }

// ResetLookahead re-primes the lookahead after the caller moved the lexer.
func (p *Parser) ResetLookahead() error { return p.advance() }

func (p *Parser) advance() error {
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) expect(k TokKind, what string) error {
	if p.tok.Kind != k {
		return fmt.Errorf("xpath: expected %s at offset %d, found %s", what, p.tok.Pos, p.tok)
	}
	return p.advance()
}

// ParseExpr parses an OrExpr, leaving the first unconsumed token in Tok().
func (p *Parser) ParseExpr() (Expr, error) {
	return p.parseOr()
}

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokIdent && p.tok.Text == "or" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Binary{OpOr, l, r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseEquality()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokIdent && p.tok.Text == "and" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseEquality()
		if err != nil {
			return nil, err
		}
		l = Binary{OpAnd, l, r}
	}
	return l, nil
}

func (p *Parser) parseEquality() (Expr, error) {
	l, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch {
		case p.tok.Kind == TokEq:
			op = OpEq
		case p.tok.Kind == TokNeq:
			op = OpNeq
		case p.tok.Kind == TokIdent && p.tok.Text == "eq":
			op = OpEq
		case p.tok.Kind == TokIdent && p.tok.Text == "ne":
			op = OpNeq
		default:
			return l, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseRelational()
		if err != nil {
			return nil, err
		}
		l = Binary{op, l, r}
	}
}

func (p *Parser) parseRelational() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch {
		case p.tok.Kind == TokLt:
			op = OpLt
		case p.tok.Kind == TokLe:
			op = OpLe
		case p.tok.Kind == TokGt:
			op = OpGt
		case p.tok.Kind == TokGe:
			op = OpGe
		case p.tok.Kind == TokIdent && p.tok.Text == "lt":
			op = OpLt
		case p.tok.Kind == TokIdent && p.tok.Text == "le":
			op = OpLe
		case p.tok.Kind == TokIdent && p.tok.Text == "gt":
			op = OpGt
		case p.tok.Kind == TokIdent && p.tok.Text == "ge":
			op = OpGe
		default:
			return l, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		l = Binary{op, l, r}
	}
}

func (p *Parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch p.tok.Kind {
		case TokPlus:
			op = OpAdd
		case TokMinus:
			op = OpSub
		default:
			return l, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = Binary{op, l, r}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch {
		case p.tok.Kind == TokStar:
			op = OpMul
		case p.tok.Kind == TokIdent && p.tok.Text == "div":
			op = OpDiv
		case p.tok.Kind == TokIdent && p.tok.Text == "mod":
			op = OpMod
		default:
			return l, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = Binary{op, l, r}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.tok.Kind == TokMinus {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Neg{e}, nil
	}
	return p.parseUnion()
}

func (p *Parser) parseUnion() (Expr, error) {
	l, err := p.parsePathExpr()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokPipe {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parsePathExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{OpUnion, l, r}
	}
	return l, nil
}

// startsPrimary reports whether the lookahead starts a filter (primary)
// expression rather than a location path.
func (p *Parser) startsPrimary() bool {
	switch p.tok.Kind {
	case TokLiteral, TokNumber, TokDollar, TokLParen:
		return true
	case TokIdent:
		// A function call — unless it is a node-type test.
		if isNodeType(p.tok.Text) {
			return false
		}
		save := p.lex.Pos()
		tok := p.tok
		_ = p.advance()
		isCall := p.tok.Kind == TokLParen
		p.lex.SetPos(save)
		p.tok = tok
		return isCall
	}
	return false
}

func isNodeType(s string) bool {
	switch s {
	case "node", "text", "comment", "processing-instruction":
		return true
	}
	return false
}

func (p *Parser) parsePathExpr() (Expr, error) {
	if p.startsPrimary() {
		prim, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		var preds []Expr
		for p.tok.Kind == TokLBracket {
			pred, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			preds = append(preds, pred)
		}
		if p.tok.Kind != TokSlash && p.tok.Kind != TokSlashSlash {
			if len(preds) == 0 {
				return prim, nil
			}
			return PathExpr{Filter: prim, FilterPreds: preds}, nil
		}
		pe := PathExpr{Filter: prim, FilterPreds: preds}
		if p.tok.Kind == TokSlashSlash {
			pe.Path.Steps = append(pe.Path.Steps, Step{Axis: DescendantOrSelf, Test: NodeTestNode})
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.parseRelativePath(&pe.Path); err != nil {
			return nil, err
		}
		return pe, nil
	}
	var path Path
	switch p.tok.Kind {
	case TokSlash:
		path.Absolute = true
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.startsStep() {
			return PathExpr{Path: path}, nil // bare "/"
		}
	case TokSlashSlash:
		path.Absolute = true
		path.Steps = append(path.Steps, Step{Axis: DescendantOrSelf, Test: NodeTestNode})
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.parseRelativePath(&path); err != nil {
		return nil, err
	}
	return PathExpr{Path: path}, nil
}

func (p *Parser) startsStep() bool {
	switch p.tok.Kind {
	case TokIdent, TokStar, TokAt, TokDot, TokDotDot:
		return true
	}
	return false
}

func (p *Parser) parseRelativePath(path *Path) error {
	for {
		st, err := p.parseStep()
		if err != nil {
			return err
		}
		path.Steps = append(path.Steps, st)
		switch p.tok.Kind {
		case TokSlash:
			if err := p.advance(); err != nil {
				return err
			}
		case TokSlashSlash:
			path.Steps = append(path.Steps, Step{Axis: DescendantOrSelf, Test: NodeTestNode})
			if err := p.advance(); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

func (p *Parser) parseStep() (Step, error) {
	switch p.tok.Kind {
	case TokDot:
		if err := p.advance(); err != nil {
			return Step{}, err
		}
		return Step{Axis: Self, Test: NodeTestNode}, nil
	case TokDotDot:
		if err := p.advance(); err != nil {
			return Step{}, err
		}
		return Step{Axis: Parent, Test: NodeTestNode}, nil
	}

	st := Step{Axis: Child}
	if p.tok.Kind == TokAt {
		st.Axis = Attribute
		if err := p.advance(); err != nil {
			return Step{}, err
		}
	} else if p.tok.Kind == TokIdent {
		// Possible explicit axis: ident followed by ::.
		if ax, ok := AxisByName(p.tok.Text); ok {
			save := p.lex.Pos()
			tok := p.tok
			if err := p.advance(); err != nil {
				return Step{}, err
			}
			if p.tok.Kind == TokColonColon {
				st.Axis = ax
				if err := p.advance(); err != nil {
					return Step{}, err
				}
			} else {
				p.lex.SetPos(save)
				p.tok = tok
			}
		}
	}

	// Node test.
	switch p.tok.Kind {
	case TokStar:
		st.Test = NodeTest{Kind: TestStar}
		if err := p.advance(); err != nil {
			return Step{}, err
		}
	case TokIdent:
		// Per XPath 1.0, node() / text() / comment() /
		// processing-instruction() are node-type tests only when followed
		// by parentheses; a bare name — even "text" — is a name test
		// (XMark really has a <text> element).
		name := p.tok.Text
		save := p.lex.Pos()
		tok := p.tok
		if err := p.advance(); err != nil {
			return Step{}, err
		}
		if isNodeType(name) && p.tok.Kind == TokLParen {
			if err := p.advance(); err != nil {
				return Step{}, err
			}
			// processing-instruction may take a literal argument.
			if p.tok.Kind == TokLiteral {
				if err := p.advance(); err != nil {
					return Step{}, err
				}
			}
			if err := p.expect(TokRParen, ")"); err != nil {
				return Step{}, err
			}
			switch name {
			case "node":
				st.Test = NodeTest{Kind: TestNode}
			case "text":
				st.Test = NodeTest{Kind: TestText}
			case "comment":
				st.Test = NodeTest{Kind: TestComment}
			default:
				st.Test = NodeTest{Kind: TestPI}
			}
		} else {
			p.lex.SetPos(save)
			p.tok = tok
			st.Test = NameTest(name)
			if err := p.advance(); err != nil {
				return Step{}, err
			}
		}
	default:
		return Step{}, fmt.Errorf("xpath: expected node test at offset %d, found %s", p.tok.Pos, p.tok)
	}

	for p.tok.Kind == TokLBracket {
		pred, err := p.parsePredicate()
		if err != nil {
			return Step{}, err
		}
		st.Preds = append(st.Preds, pred)
	}
	return st, nil
}

func (p *Parser) parsePredicate() (Expr, error) {
	if err := p.expect(TokLBracket, "["); err != nil {
		return nil, err
	}
	e, err := p.ParseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(TokRBracket, "]"); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.tok.Kind {
	case TokLiteral:
		e := Literal{p.tok.Text}
		return e, p.advance()
	case TokNumber:
		f, err := strconv.ParseFloat(p.tok.Text, 64)
		if err != nil {
			return nil, fmt.Errorf("xpath: bad number %q at offset %d", p.tok.Text, p.tok.Pos)
		}
		e := Number{f}
		return e, p.advance()
	case TokDollar:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Kind != TokIdent {
			return nil, fmt.Errorf("xpath: expected variable name at offset %d", p.tok.Pos)
		}
		e := Var{p.tok.Text}
		return e, p.advance()
	case TokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		name := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(TokLParen, "("); err != nil {
			return nil, err
		}
		var args []Expr
		if p.tok.Kind != TokRParen {
			for {
				a, err := p.ParseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.tok.Kind != TokComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if err := p.expect(TokRParen, ")"); err != nil {
			return nil, err
		}
		return Call{Name: name, Args: args}, nil
	}
	return nil, fmt.Errorf("xpath: unexpected token %s at offset %d", p.tok, p.tok.Pos)
}
