package xpath

import (
	"fmt"
	"math"
	"strings"
)

// evalCall dispatches the XPath 1.0 core function library plus the few
// XQuery functions the benchmark queries use (empty, exists, avg, min,
// max).
func (ev *Evaluator) evalCall(c Call, ctx context) (Value, error) {
	arity := func(n int) error {
		if len(c.Args) != n {
			return fmt.Errorf("xpath: %s() expects %d argument(s), got %d", c.Name, n, len(c.Args))
		}
		return nil
	}
	// argOrContext evaluates the single optional argument, defaulting to
	// the context node.
	argOrContext := func() (Value, error) {
		if len(c.Args) == 0 {
			return NodeSet{ctx.node}, nil
		}
		if err := arity(1); err != nil {
			return nil, err
		}
		return ev.eval(c.Args[0], ctx)
	}
	nodeSetArg := func(i int) (NodeSet, error) {
		v, err := ev.eval(c.Args[i], ctx)
		if err != nil {
			return nil, err
		}
		ns, ok := v.(NodeSet)
		if !ok {
			return nil, fmt.Errorf("xpath: %s() argument %d is not a node-set", c.Name, i+1)
		}
		return ns, nil
	}

	switch c.Name {
	case "last":
		if err := arity(0); err != nil {
			return nil, err
		}
		return float64(ctx.size), nil
	case "position":
		if err := arity(0); err != nil {
			return nil, err
		}
		return float64(ctx.pos), nil
	case "count":
		if err := arity(1); err != nil {
			return nil, err
		}
		ns, err := nodeSetArg(0)
		if err != nil {
			return nil, err
		}
		return float64(len(ns)), nil
	case "name", "local-name":
		v, err := argOrContext()
		if err != nil {
			return nil, err
		}
		ns, ok := v.(NodeSet)
		if !ok || len(ns) == 0 {
			return "", nil
		}
		return ns[0].Name(), nil
	case "string":
		v, err := argOrContext()
		if err != nil {
			return nil, err
		}
		return ToString(v), nil
	case "concat":
		if len(c.Args) < 2 {
			return nil, fmt.Errorf("xpath: concat() needs at least 2 arguments")
		}
		var sb strings.Builder
		for _, a := range c.Args {
			v, err := ev.eval(a, ctx)
			if err != nil {
				return nil, err
			}
			sb.WriteString(ToString(v))
		}
		return sb.String(), nil
	case "starts-with":
		if err := arity(2); err != nil {
			return nil, err
		}
		a, err := ev.eval(c.Args[0], ctx)
		if err != nil {
			return nil, err
		}
		b, err := ev.eval(c.Args[1], ctx)
		if err != nil {
			return nil, err
		}
		return strings.HasPrefix(ToString(a), ToString(b)), nil
	case "ends-with": // XPath 2.0, used by some XPathMark queries
		if err := arity(2); err != nil {
			return nil, err
		}
		a, err := ev.eval(c.Args[0], ctx)
		if err != nil {
			return nil, err
		}
		b, err := ev.eval(c.Args[1], ctx)
		if err != nil {
			return nil, err
		}
		return strings.HasSuffix(ToString(a), ToString(b)), nil
	case "contains":
		if err := arity(2); err != nil {
			return nil, err
		}
		a, err := ev.eval(c.Args[0], ctx)
		if err != nil {
			return nil, err
		}
		b, err := ev.eval(c.Args[1], ctx)
		if err != nil {
			return nil, err
		}
		return strings.Contains(ToString(a), ToString(b)), nil
	case "substring-before":
		if err := arity(2); err != nil {
			return nil, err
		}
		a, err := ev.eval(c.Args[0], ctx)
		if err != nil {
			return nil, err
		}
		b, err := ev.eval(c.Args[1], ctx)
		if err != nil {
			return nil, err
		}
		s, sep := ToString(a), ToString(b)
		if i := strings.Index(s, sep); i >= 0 {
			return s[:i], nil
		}
		return "", nil
	case "substring-after":
		if err := arity(2); err != nil {
			return nil, err
		}
		a, err := ev.eval(c.Args[0], ctx)
		if err != nil {
			return nil, err
		}
		b, err := ev.eval(c.Args[1], ctx)
		if err != nil {
			return nil, err
		}
		s, sep := ToString(a), ToString(b)
		if i := strings.Index(s, sep); i >= 0 {
			return s[i+len(sep):], nil
		}
		return "", nil
	case "substring":
		if len(c.Args) != 2 && len(c.Args) != 3 {
			return nil, fmt.Errorf("xpath: substring() expects 2 or 3 arguments")
		}
		v, err := ev.eval(c.Args[0], ctx)
		if err != nil {
			return nil, err
		}
		s := []rune(ToString(v))
		pv, err := ev.eval(c.Args[1], ctx)
		if err != nil {
			return nil, err
		}
		start := math.Round(ToNumber(pv))
		end := math.Inf(1)
		if len(c.Args) == 3 {
			lv, err := ev.eval(c.Args[2], ctx)
			if err != nil {
				return nil, err
			}
			end = start + math.Round(ToNumber(lv))
		}
		var sb strings.Builder
		for i, r := range s {
			p := float64(i + 1)
			if p >= start && p < end {
				sb.WriteRune(r)
			}
		}
		return sb.String(), nil
	case "string-length":
		v, err := argOrContext()
		if err != nil {
			return nil, err
		}
		return float64(len([]rune(ToString(v)))), nil
	case "normalize-space":
		v, err := argOrContext()
		if err != nil {
			return nil, err
		}
		return strings.Join(strings.Fields(ToString(v)), " "), nil
	case "translate":
		if err := arity(3); err != nil {
			return nil, err
		}
		var vs [3]string
		for i := range vs {
			v, err := ev.eval(c.Args[i], ctx)
			if err != nil {
				return nil, err
			}
			vs[i] = ToString(v)
		}
		from, to := []rune(vs[1]), []rune(vs[2])
		var sb strings.Builder
		for _, r := range vs[0] {
			idx := -1
			for i, f := range from {
				if f == r {
					idx = i
					break
				}
			}
			switch {
			case idx < 0:
				sb.WriteRune(r)
			case idx < len(to):
				sb.WriteRune(to[idx])
			}
		}
		return sb.String(), nil
	case "boolean":
		if err := arity(1); err != nil {
			return nil, err
		}
		v, err := ev.eval(c.Args[0], ctx)
		if err != nil {
			return nil, err
		}
		return ToBoolean(v), nil
	case "not":
		if err := arity(1); err != nil {
			return nil, err
		}
		v, err := ev.eval(c.Args[0], ctx)
		if err != nil {
			return nil, err
		}
		return !ToBoolean(v), nil
	case "true":
		if err := arity(0); err != nil {
			return nil, err
		}
		return true, nil
	case "false":
		if err := arity(0); err != nil {
			return nil, err
		}
		return false, nil
	case "number":
		v, err := argOrContext()
		if err != nil {
			return nil, err
		}
		return ToNumber(v), nil
	case "sum", "avg", "min", "max":
		if err := arity(1); err != nil {
			return nil, err
		}
		ns, err := nodeSetArg(0)
		if err != nil {
			return nil, err
		}
		return aggregate(c.Name, ns), nil
	case "floor":
		if err := arity(1); err != nil {
			return nil, err
		}
		v, err := ev.eval(c.Args[0], ctx)
		if err != nil {
			return nil, err
		}
		return math.Floor(ToNumber(v)), nil
	case "ceiling":
		if err := arity(1); err != nil {
			return nil, err
		}
		v, err := ev.eval(c.Args[0], ctx)
		if err != nil {
			return nil, err
		}
		return math.Ceil(ToNumber(v)), nil
	case "round":
		if err := arity(1); err != nil {
			return nil, err
		}
		v, err := ev.eval(c.Args[0], ctx)
		if err != nil {
			return nil, err
		}
		return math.Round(ToNumber(v)), nil
	case "empty": // XQuery fn:empty
		if err := arity(1); err != nil {
			return nil, err
		}
		ns, err := nodeSetArg(0)
		if err != nil {
			return nil, err
		}
		return len(ns) == 0, nil
	case "exists": // XQuery fn:exists
		if err := arity(1); err != nil {
			return nil, err
		}
		ns, err := nodeSetArg(0)
		if err != nil {
			return nil, err
		}
		return len(ns) > 0, nil
	case "zero-or-one", "exactly-one", "one-or-more", "data":
		// XQuery cardinality assertions: pass the value through (the
		// benchmark queries use them only as static hints).
		if err := arity(1); err != nil {
			return nil, err
		}
		return ev.eval(c.Args[0], ctx)
	case "id", "idref":
		// Simplified fn:id over DTD ID attributes is provided by the
		// XQuery layer; in plain XPath it is unsupported.
		return nil, fmt.Errorf("xpath: function %s() is not supported", c.Name)
	}
	return nil, fmt.Errorf("xpath: unknown function %s()", c.Name)
}

func aggregate(name string, ns NodeSet) float64 {
	if len(ns) == 0 {
		if name == "sum" {
			return 0
		}
		return math.NaN()
	}
	var acc float64
	switch name {
	case "min":
		acc = math.Inf(1)
	case "max":
		acc = math.Inf(-1)
	}
	for _, r := range ns {
		f := ToNumber(r.StringValue())
		switch name {
		case "sum", "avg":
			acc += f
		case "min":
			acc = math.Min(acc, f)
		case "max":
			acc = math.Max(acc, f)
		}
	}
	if name == "avg" {
		acc /= float64(len(ns))
	}
	return acc
}
