package xpath

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// TokKind is the kind of a lexical token.
type TokKind uint8

const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokLiteral
	TokSlash      // /
	TokSlashSlash // //
	TokDot        // .
	TokDotDot     // ..
	TokAt         // @
	TokColonColon // ::
	TokColonEq    // := (for the XQuery parser sharing this lexer)
	TokLParen     // (
	TokRParen     // )
	TokLBracket   // [
	TokRBracket   // ]
	TokComma      // ,
	TokPipe       // |
	TokPlus       // +
	TokMinus      // -
	TokEq         // =
	TokNeq        // !=
	TokLt         // <
	TokLe         // <=
	TokGt         // >
	TokGe         // >=
	TokStar       // *
	TokDollar     // $
	TokLAngleTag  // < used as tag open (XQuery constructors; lexed by the XQuery parser itself)
	TokLBrace     // { (XQuery)
	TokRBrace     // } (XQuery)
	TokSemi       // ; (unused in XPath)
)

// Token is a lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Pos  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "<eof>"
	case TokIdent, TokNumber:
		return t.Text
	case TokLiteral:
		return strconv.Quote(t.Text)
	default:
		return t.Text
	}
}

// Lexer tokenises XPath (and the XQuery FLWR core, which shares the token
// set plus braces and :=).
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Pos returns the current byte offset.
func (l *Lexer) Pos() int { return l.pos }

// SetPos rewinds or advances the lexer to a byte offset.
func (l *Lexer) SetPos(p int) { l.pos = p }

// Rest returns the unconsumed input.
func (l *Lexer) Rest() string { return l.src[l.pos:] }

// SkipSpace consumes whitespace.
func (l *Lexer) SkipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// XQuery-style comments (: … :) may appear in benchmark queries.
		if strings.HasPrefix(l.src[l.pos:], "(:") {
			depth := 1
			i := l.pos + 2
			for i < len(l.src) && depth > 0 {
				switch {
				case strings.HasPrefix(l.src[i:], "(:"):
					depth++
					i += 2
				case strings.HasPrefix(l.src[i:], ":)"):
					depth--
					i += 2
				default:
					i++
				}
			}
			l.pos = i
			continue
		}
		return
	}
}

// Next consumes and returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.SkipSpace()
	start := l.pos
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := l.src[l.pos]
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	mk := func(kind TokKind, text string) (Token, error) {
		l.pos += len(text)
		return Token{Kind: kind, Text: text, Pos: start}, nil
	}
	switch {
	case two == "//":
		return mk(TokSlashSlash, "//")
	case two == "..":
		return mk(TokDotDot, "..")
	case two == "::":
		return mk(TokColonColon, "::")
	case two == ":=":
		return mk(TokColonEq, ":=")
	case two == "!=":
		return mk(TokNeq, "!=")
	case two == "<=":
		return mk(TokLe, "<=")
	case two == ">=":
		return mk(TokGe, ">=")
	case c == '/':
		return mk(TokSlash, "/")
	case c == '@':
		return mk(TokAt, "@")
	case c == '(':
		return mk(TokLParen, "(")
	case c == ')':
		return mk(TokRParen, ")")
	case c == '[':
		return mk(TokLBracket, "[")
	case c == ']':
		return mk(TokRBracket, "]")
	case c == '{':
		return mk(TokLBrace, "{")
	case c == '}':
		return mk(TokRBrace, "}")
	case c == ',':
		return mk(TokComma, ",")
	case c == ';':
		return mk(TokSemi, ";")
	case c == '|':
		return mk(TokPipe, "|")
	case c == '+':
		return mk(TokPlus, "+")
	case c == '-':
		return mk(TokMinus, "-")
	case c == '=':
		return mk(TokEq, "=")
	case c == '<':
		return mk(TokLt, "<")
	case c == '>':
		return mk(TokGt, ">")
	case c == '*':
		return mk(TokStar, "*")
	case c == '$':
		return mk(TokDollar, "$")
	case c == '"' || c == '\'':
		end := strings.IndexByte(l.src[l.pos+1:], c)
		if end < 0 {
			return Token{}, fmt.Errorf("xpath: unterminated string literal at offset %d", start)
		}
		text := l.src[l.pos+1 : l.pos+1+end]
		l.pos += end + 2
		return Token{Kind: TokLiteral, Text: text, Pos: start}, nil
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		i := l.pos
		for i < len(l.src) && (l.src[i] >= '0' && l.src[i] <= '9' || l.src[i] == '.') {
			i++
		}
		text := l.src[l.pos:i]
		l.pos = i
		return Token{Kind: TokNumber, Text: text, Pos: start}, nil
	case c == '.':
		return mk(TokDot, ".")
	case isNameStart(rune(c)) || c >= utf8.RuneSelf:
		i := l.pos
		for i < len(l.src) {
			r, sz := utf8.DecodeRuneInString(l.src[i:])
			if !isNameChar(r) {
				break
			}
			i += sz
		}
		text := l.src[l.pos:i]
		l.pos = i
		return Token{Kind: TokIdent, Text: text, Pos: start}, nil
	}
	return Token{}, fmt.Errorf("xpath: unexpected character %q at offset %d", string(c), start)
}

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNameChar(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
