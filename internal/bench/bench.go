// Package bench is the experiment harness reproducing the paper's §6
// evaluation: Table 1 (pruning selectivity, speed-up, memory), Figures 4
// and 5 (per-query time and memory on original vs pruned documents), the
// pruning-overhead measurements, and the comparison against the
// path-based baseline of [14].
//
// The engine here is this repository's in-memory XPath/XQuery evaluator
// (the Galax stand-in), so absolute numbers differ from the paper's;
// the reproduction target is the shape: which queries prune hard, the
// speed-up and memory factors, and the fact that pruning itself is a
// cheap one-pass scan.
package bench

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"xmlproj/internal/core"
	"xmlproj/internal/dtd"
	"xmlproj/internal/pathproj"
	"xmlproj/internal/prune"
	"xmlproj/internal/tree"
	"xmlproj/internal/xmark"
	"xmlproj/internal/xpath"
	"xmlproj/internal/xpathl"
	"xmlproj/internal/xpathmark"
	"xmlproj/internal/xquery"
)

// QuerySpec is one benchmark query.
type QuerySpec struct {
	ID     string
	Source string
	XQuery bool
}

// AllQueries returns the full benchmark set: XMark QM01–QM20 (XQuery) and
// XPathMark QP01–QP23 (XPath).
func AllQueries() []QuerySpec {
	var out []QuerySpec
	for _, q := range xmark.Queries {
		out = append(out, QuerySpec{ID: q.ID, Source: q.Source, XQuery: true})
	}
	for _, q := range xpathmark.Queries {
		out = append(out, QuerySpec{ID: q.ID, Source: q.Source})
	}
	return out
}

// QueryByID finds a query in the benchmark set.
func QueryByID(id string) (QuerySpec, bool) {
	for _, q := range AllQueries() {
		if q.ID == id {
			return q, true
		}
	}
	return QuerySpec{}, false
}

// Workload is a generated XMark document plus its DTD.
type Workload struct {
	D        *dtd.DTD
	Doc      *tree.Document
	DocBytes []byte
	Factor   float64
}

// NewWorkload generates an XMark document at the given scale factor.
func NewWorkload(factor float64, seed int64) *Workload {
	d := xmark.DTD()
	doc := xmark.NewGenerator(factor, seed).Document()
	var buf bytes.Buffer
	if err := doc.WriteXML(&buf); err != nil {
		panic(err)
	}
	return &Workload{D: d, Doc: doc, DocBytes: buf.Bytes(), Factor: factor}
}

// Projector infers the type projector for a query (with the §5 heuristic
// for XQuery, materialised needs for XPath).
func (w *Workload) Projector(q QuerySpec) (*core.Projector, error) {
	paths, err := w.DataNeeds(q)
	if err != nil {
		return nil, err
	}
	if q.XQuery {
		return core.Infer(w.D, paths)
	}
	return core.InferMaterialized(w.D, paths)
}

// DataNeeds returns the XPathℓ paths extracted from a query.
func (w *Workload) DataNeeds(q QuerySpec) ([]*xpathl.Path, error) {
	if q.XQuery {
		ast, err := xquery.Parse(q.Source)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.ID, err)
		}
		return xquery.Extract(xquery.RewriteForIf(ast)), nil
	}
	e, err := xpath.Parse(q.Source)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", q.ID, err)
	}
	return xpathl.FromQuery(e)
}

// Evaluate runs the query over a document and returns the serialised
// result (used for equality checks) and the engine's visited-node count.
func Evaluate(q QuerySpec, doc *tree.Document) (string, int64, error) {
	if q.XQuery {
		ast, err := xquery.Parse(q.Source)
		if err != nil {
			return "", 0, err
		}
		ev := xquery.NewEvaluator(doc)
		s, err := ev.Eval(ast)
		if err != nil {
			return "", 0, err
		}
		return xquery.Serialize(s), ev.Visited(), nil
	}
	ast, err := xpath.Parse(q.Source)
	if err != nil {
		return "", 0, err
	}
	ev := xpath.NewEvaluator(doc)
	v, err := ev.Eval(ast)
	if err != nil {
		return "", 0, err
	}
	ns, _ := v.(xpath.NodeSet)
	return fmt.Sprintf("%d nodes", len(ns)), ev.Visited, nil
}

// Measured captures one load-and-query run: the cost model of a
// main-memory engine (parse the document, then evaluate).
type Measured struct {
	// Time is wall time for parse + evaluate.
	Time time.Duration
	// AllocBytes is the total allocation during parse + evaluate — the
	// paper's "main memory usage" proxy.
	AllocBytes uint64
	// Visited counts nodes the engine touched during evaluation.
	Visited int64
	// Result is the serialised query result.
	Result string
}

// MeasureRun parses docBytes and evaluates q over it, measuring time and
// allocations.
func MeasureRun(q QuerySpec, docBytes []byte) (Measured, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	doc, err := tree.ParseBytes(docBytes)
	if err != nil {
		return Measured{}, err
	}
	res, visited, err := Evaluate(q, doc)
	if err != nil {
		return Measured{}, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return Measured{
		Time:       elapsed,
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
		Visited:    visited,
		Result:     res,
	}, nil
}

// Row is one Table 1 row.
type Row struct {
	ID string
	// OrigBytes / PrunedBytes are document sizes on disk.
	OrigBytes, PrunedBytes int64
	// SizePercent is 100 · pruned/original (Table 1 "Gain in Size").
	SizePercent float64
	// InferTime is the static-analysis time (paper: < 0.5 s always).
	InferTime time.Duration
	// PruneTime is the one-pass streaming prune time.
	PruneTime time.Duration
	// Orig and Pruned are the engine runs on each document.
	Orig, Pruned Measured
	// Speedup is Orig.Time / Pruned.Time (Table 1 "Gain in Speed").
	Speedup float64
	// MemRatio is Orig.AllocBytes / Pruned.AllocBytes (Figure 5's gain).
	MemRatio float64
}

// MaxDocAt estimates the paper's Table 1 first row — the largest original
// document processable under the given memory budget when pruning first:
// budget divided by the pruned run's allocation per original byte.
func (r Row) MaxDocAt(budget int64) int64 {
	if r.Pruned.AllocBytes == 0 {
		return 0
	}
	perByte := float64(r.Pruned.AllocBytes) / float64(r.OrigBytes)
	return int64(float64(budget) / perByte)
}

// RunQuery executes the full pipeline for one query: infer → prune →
// evaluate on both documents → compare. It returns an error if the
// results differ (soundness is re-checked on every benchmark run).
func RunQuery(w *Workload, q QuerySpec) (Row, error) {
	row := Row{ID: q.ID, OrigBytes: int64(len(w.DocBytes))}

	start := time.Now()
	pr, err := w.Projector(q)
	if err != nil {
		return row, err
	}
	row.InferTime = time.Since(start)

	var pruned bytes.Buffer
	start = time.Now()
	if _, err := prune.Stream(&pruned, bytes.NewReader(w.DocBytes), w.D, pr.Names, prune.StreamOptions{}); err != nil {
		return row, fmt.Errorf("%s: prune: %w", q.ID, err)
	}
	row.PruneTime = time.Since(start)
	row.PrunedBytes = int64(pruned.Len())
	row.SizePercent = 100 * float64(row.PrunedBytes) / float64(row.OrigBytes)

	if row.Orig, err = MeasureRun(q, w.DocBytes); err != nil {
		return row, fmt.Errorf("%s: original run: %w", q.ID, err)
	}
	if row.Pruned, err = MeasureRun(q, pruned.Bytes()); err != nil {
		return row, fmt.Errorf("%s: pruned run: %w", q.ID, err)
	}
	if row.Orig.Result != row.Pruned.Result {
		return row, fmt.Errorf("%s: result differs on pruned document (soundness violation)", q.ID)
	}
	if row.Pruned.Time > 0 {
		row.Speedup = float64(row.Orig.Time) / float64(row.Pruned.Time)
	}
	if row.Pruned.AllocBytes > 0 {
		row.MemRatio = float64(row.Orig.AllocBytes) / float64(row.Pruned.AllocBytes)
	}
	return row, nil
}

// PruneBytes runs the streaming pruner and returns the pruned document.
func PruneBytes(w *Workload, pr *core.Projector) ([]byte, prune.Stats, error) {
	var out bytes.Buffer
	st, err := prune.Stream(&out, bytes.NewReader(w.DocBytes), w.D, pr.Names, prune.StreamOptions{})
	return out.Bytes(), st, err
}

// BaselineComparison contrasts type-based projection with the [14]
// path-based baseline on one query.
type BaselineComparison struct {
	ID string
	// TypePrunedBytes / PathPrunedBytes compare precision.
	TypePrunedBytes, PathPrunedBytes int64
	// TypeVisited / PathVisited compare pruning work: the type-driven
	// pruner skips discarded subtrees, the baseline must visit everything.
	TypeVisited, PathVisited int64
	// PathExact is false when the baseline had to degrade (predicates or
	// backward axes).
	PathExact bool
}

// RunBaseline compares the two pruners on one query.
func RunBaseline(w *Workload, q QuerySpec) (BaselineComparison, error) {
	out := BaselineComparison{ID: q.ID}
	paths, err := w.DataNeeds(q)
	if err != nil {
		return out, err
	}
	pr, err := w.Projector(q)
	if err != nil {
		return out, err
	}
	typePruned := prune.Tree(w.D, w.Doc, pr.Names)
	out.TypePrunedBytes = typePruned.SerializedSize()
	// The streaming pruner's visited work = elements it actually saw.
	var sink bytes.Buffer
	st, err := prune.Stream(&sink, bytes.NewReader(w.DocBytes), w.D, pr.Names, prune.StreamOptions{})
	if err != nil {
		return out, err
	}
	// Visited work = nodes the pruner surfaced on kept paths; the tokens
	// scanned past inside discarded subtrees (now included in ElementsIn /
	// TextIn) are cheap scanner work, not per-node pruning decisions.
	out.TypeVisited = (st.ElementsIn - st.ElementsSkipped) + (st.TextIn - st.TextSkipped)

	// The type projector above is materialised (for XPath queries), so
	// hand the baseline the materialised needs too — otherwise it would
	// look more precise simply because it keeps less of the result.
	lowered := paths
	if !q.XQuery {
		lowered = make([]*xpathl.Path, len(paths))
		for i, p := range paths {
			lowered[i] = core.Materialize(p)
		}
	}
	bp, exact := pathproj.FromXPathL(lowered)
	out.PathExact = exact
	pathPruned, pstats := pathproj.Prune(w.Doc, bp)
	out.PathPrunedBytes = pathPruned.SerializedSize()
	out.PathVisited = pstats.Visited
	return out, nil
}
