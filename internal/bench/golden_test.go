package bench

// Golden regression test: the exact projector inferred for each of the 43
// benchmark queries over the XMark DTD. These pins document the analysis'
// behaviour query by query (e.g. QM01 keeps only the people/person/name
// spine; QM07's three count() arguments keep their ancestor spines but no
// text). Any change to approximation, extraction or inference that moves
// one of these must be reviewed against the soundness property tests and
// EXPERIMENTS.md.

import (
	"strings"
	"testing"
)

var goldenProjectors = map[string]string{
	"QM01": "name name#text people person person@id site",
	"QM02": "bidder increase increase#text open_auction open_auctions site",
	"QM03": "bidder increase increase#text open_auction open_auctions site",
	"QM04": "bidder open_auction open_auctions personref personref@person reserve reserve#text site",
	"QM05": "closed_auction closed_auctions price price#text site",
	"QM06": "africa asia australia europe item namerica regions samerica site",
	"QM07": "africa annotation asia australia categories category closed_auction closed_auctions description emailaddress europe item namerica open_auction open_auctions people person regions samerica site",
	"QM08": "annotation author bold bold#text buyer buyer@person closed_auction closed_auctions date date#text description emph emph#text happiness happiness#text itemref keyword keyword#text listitem name name#text parlist people person person@id price price#text quantity quantity#text seller site text text#text type type#text",
	"QM09": "address age age#text annotation author bold bold#text business business#text buyer buyer@person city city#text closed_auction closed_auctions country country#text creditcard creditcard#text date date#text description education education#text emailaddress emailaddress#text emph emph#text europe from from#text gender gender#text happiness happiness#text homepage homepage#text incategory interest item item@id itemref itemref@item keyword keyword#text listitem location location#text mail mailbox name name#text parlist payment payment#text people person person@id phone phone#text price price#text profile province province#text quantity quantity#text regions seller shipping shipping#text site street street#text text text#text to to#text type type#text watch watches zipcode zipcode#text",
	"QM10": "address age age#text business business#text city city#text country country#text creditcard creditcard#text education education#text emailaddress emailaddress#text gender gender#text homepage homepage#text interest interest@category name name#text people person phone phone#text profile profile@income province province#text site street street#text watch watches zipcode zipcode#text",
	"QM11": "initial initial#text name name#text open_auction open_auctions people person profile profile@income site",
	"QM12": "initial initial#text open_auction open_auctions people person profile profile@income site",
	"QM13": "australia bold bold#text description emph emph#text item keyword keyword#text listitem name name#text parlist regions site text text#text",
	"QM14": "africa asia australia bold bold#text date date#text description emph emph#text europe from from#text incategory item keyword keyword#text listitem location location#text mail mailbox name name#text namerica parlist payment payment#text quantity quantity#text regions samerica shipping shipping#text site text text#text to to#text",
	"QM15": "annotation closed_auction closed_auctions description emph keyword keyword#text listitem parlist site text",
	"QM16": "annotation closed_auction closed_auctions description emph keyword keyword#text listitem parlist seller seller@person site text",
	"QM17": "homepage homepage#text name name#text people person site",
	"QM18": "open_auction open_auctions reserve reserve#text site",
	"QM19": "africa asia australia europe item location location#text name name#text namerica regions samerica site",
	"QM20": "people person profile profile@income site",
	"QP01": "annotation bold bold#text closed_auction closed_auctions description emph emph#text keyword keyword#text site text",
	"QP02": "annotation bold bold#text closed_auction closed_auctions description emph emph#text keyword keyword#text listitem parlist site text",
	"QP03": "annotation bold bold#text closed_auction closed_auctions description emph emph#text keyword keyword#text listitem parlist site text",
	"QP04": "annotation closed_auction closed_auctions date date#text description keyword site text",
	"QP05": "annotation bold closed_auction closed_auctions date date#text description emph keyword listitem parlist site text",
	"QP06": "age gender name name#text people person profile site",
	"QP07": "homepage name name#text people person phone site",
	"QP08": "address creditcard homepage name name#text people person phone profile site",
	"QP09": "item name name#text namerica regions samerica site",
	"QP10": "africa annotation asia australia bold bold#text categories category closed_auction closed_auctions description emph emph#text europe item keyword keyword#text listitem mail mailbox namerica open_auction open_auctions parlist regions samerica site text",
	"QP11": "bidder date date#text increase increase#text open_auction open_auctions personref personref@person site time time#text",
	"QP12": "bidder date date#text increase increase#text open_auction open_auctions personref personref@person site time time#text",
	"QP13": "address africa age age#text annotation asia australia author author@person bidder bold bold#text business business#text buyer buyer@person categories category category@id catgraph city city#text closed_auction closed_auctions country country#text creditcard creditcard#text current current#text date date#text description edge edge@from edge@to education education#text emailaddress emailaddress#text emph emph#text end end#text europe from from#text gender gender#text happiness happiness#text homepage homepage#text incategory incategory@category increase increase#text initial initial#text interest interest@category interval item item@featured item@id itemref itemref@item keyword keyword#text listitem location location#text mail mailbox name name#text namerica open_auction open_auction@id open_auctions parlist payment payment#text people person person@id personref personref@person phone phone#text price price#text privacy privacy#text profile profile@income province province#text quantity quantity#text regions reserve reserve#text samerica seller seller@person shipping shipping#text site start start#text street street#text text text#text time time#text to to#text type type#text watch watch@open_auction watches zipcode zipcode#text",
	"QP14": "africa asia australia europe item name name#text namerica regions samerica site",
	"QP15": "name name#text people person profile profile@income site",
	"QP16": "bidder increase increase#text open_auction open_auctions site",
	"QP17": "bidder increase increase#text open_auction open_auctions site",
	"QP18": "address country country#text name name#text people person site",
	"QP19": "africa annotation asia australia bold bold#text categories category closed_auction closed_auctions description emph emph#text europe item keyword keyword#text listitem mail mailbox namerica open_auction open_auctions parlist regions samerica site text text#text",
	"QP20": "bidder open_auction open_auction@id open_auctions site",
	"QP21": "africa asia australia bold bold#text description emph emph#text europe item keyword keyword#text listitem name name#text namerica parlist regions samerica site text text#text",
	"QP22": "africa asia australia europe from from#text item mail mailbox namerica regions samerica site",
	"QP23": "people person site watch watch@open_auction watches",
}

func TestGoldenProjectors(t *testing.T) {
	w := NewWorkload(0.001, 1)
	for _, q := range AllQueries() {
		want, ok := goldenProjectors[q.ID]
		if !ok {
			t.Errorf("%s: no golden entry", q.ID)
			continue
		}
		pr, err := w.Projector(q)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		names := pr.Names.Sorted()
		parts := make([]string, len(names))
		for i, n := range names {
			parts[i] = string(n)
		}
		if got := strings.Join(parts, " "); got != want {
			t.Errorf("%s projector changed:\n got: %s\nwant: %s", q.ID, got, want)
		}
	}
}
