package bench

import (
	"fmt"
	"io"
	"time"
)

// PrintTable1 renders Table 1 of the paper for the given rows: per query,
// document sizes, the pruned fraction, memory use and the speed-up.
func PrintTable1(w io.Writer, factor float64, rows []Row) {
	fmt.Fprintf(w, "Table 1 — XMark factor %g (original document %s)\n", factor, mb(rows[0].OrigBytes))
	fmt.Fprintf(w, "%-6s %12s %12s %8s %9s %9s %9s %8s %8s %10s\n",
		"query", "orig", "pruned", "size%", "mem-orig", "mem-prn", "mem-x", "speed-x", "prune", "max@512MB")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %12s %12s %7.1f%% %9s %9s %8.1fx %7.1fx %8s %10s\n",
			r.ID, mb(r.OrigBytes), mb(r.PrunedBytes), r.SizePercent,
			mb(int64(r.Orig.AllocBytes)), mb(int64(r.Pruned.AllocBytes)), r.MemRatio,
			r.Speedup, round(r.PruneTime), mb(r.MaxDocAt(512<<20)))
	}
}

// PrintFigure4 renders Figure 4: per-query processing time on the
// original and the pruned document.
func PrintFigure4(w io.Writer, rows []Row) {
	fmt.Fprintf(w, "Figure 4 — query processing time (parse + evaluate)\n")
	fmt.Fprintf(w, "%-6s %12s %12s\n", "query", "original", "pruned")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %12s %12s\n", r.ID, round(r.Orig.Time), round(r.Pruned.Time))
	}
}

// PrintFigure5 renders Figure 5: per-query memory (bytes allocated) on
// the original and the pruned document.
func PrintFigure5(w io.Writer, rows []Row) {
	fmt.Fprintf(w, "Figure 5 — memory used to process a query\n")
	fmt.Fprintf(w, "%-6s %12s %12s\n", "query", "original", "pruned")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %12s %12s\n", r.ID, mb(int64(r.Orig.AllocBytes)), mb(int64(r.Pruned.AllocBytes)))
	}
}

// PrintBaseline renders the comparison with the path-based pruner of
// [14]: retained bytes (precision) and visited nodes (pruning work).
func PrintBaseline(w io.Writer, comps []BaselineComparison) {
	fmt.Fprintf(w, "Baseline — type-based vs path-based projection [14]\n")
	fmt.Fprintf(w, "%-6s %14s %14s %14s %14s %6s\n",
		"query", "type-pruned", "path-pruned", "type-visits", "path-visits", "exact")
	for _, c := range comps {
		fmt.Fprintf(w, "%-6s %14s %14s %14d %14d %6v\n",
			c.ID, mb(c.TypePrunedBytes), mb(c.PathPrunedBytes), c.TypeVisited, c.PathVisited, c.PathExact)
	}
}

func mb(b int64) string {
	switch {
	case b >= 10*1024*1024:
		return fmt.Sprintf("%.1fMB", float64(b)/(1024*1024))
	case b >= 10*1024:
		return fmt.Sprintf("%.1fKB", float64(b)/1024)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func round(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
