package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllQueriesListed(t *testing.T) {
	qs := AllQueries()
	if len(qs) != 43 {
		t.Fatalf("%d queries, want 20 + 23", len(qs))
	}
	if q, ok := QueryByID("QM07"); !ok || !q.XQuery {
		t.Fatal("QM07 lookup")
	}
	if q, ok := QueryByID("QP07"); !ok || q.XQuery {
		t.Fatal("QP07 lookup")
	}
	if _, ok := QueryByID("XX"); ok {
		t.Fatal("bogus lookup")
	}
}

func TestRunQueryPipeline(t *testing.T) {
	w := NewWorkload(0.002, 1)
	for _, id := range []string{"QM01", "QM06", "QP01", "QP13", "QP21"} {
		q, _ := QueryByID(id)
		row, err := RunQuery(w, q)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if row.PrunedBytes <= 0 || row.PrunedBytes > row.OrigBytes {
			t.Errorf("%s: pruned size %d of %d", id, row.PrunedBytes, row.OrigBytes)
		}
		if row.Orig.Result != row.Pruned.Result {
			t.Errorf("%s: results differ", id)
		}
	}
}

func TestSelectiveQueriesPruneHard(t *testing.T) {
	w := NewWorkload(0.004, 2)
	q, _ := QueryByID("QM01") // person0's name: nearly everything goes
	row, err := RunQuery(w, q)
	if err != nil {
		t.Fatal(err)
	}
	if row.SizePercent > 20 {
		t.Errorf("QM01 keeps %.1f%%, want highly selective", row.SizePercent)
	}
	q, _ = QueryByID("QP13") // /site//node(): keeps everything
	row, err = RunQuery(w, q)
	if err != nil {
		t.Fatal(err)
	}
	if row.SizePercent < 90 {
		t.Errorf("QP13 keeps %.1f%%, want nearly everything", row.SizePercent)
	}
}

func TestBaselineComparisonShape(t *testing.T) {
	w := NewWorkload(0.002, 3)
	// QP05 has a descendant predicate: the baseline degrades, the
	// type-based projector does not.
	q, _ := QueryByID("QP05")
	c, err := RunBaseline(w, q)
	if err != nil {
		t.Fatal(err)
	}
	if c.PathExact {
		t.Error("QP05 lowering should be inexact for the baseline")
	}
	if c.TypePrunedBytes >= c.PathPrunedBytes {
		t.Errorf("type-based (%d) should out-prune path-based (%d) on QP05",
			c.TypePrunedBytes, c.PathPrunedBytes)
	}
	// The baseline must visit at least as many nodes as the type pruner
	// on a selective query (it cannot skip under //).
	if c.PathVisited < c.TypeVisited {
		t.Errorf("baseline visited %d < type pruner %d", c.PathVisited, c.TypeVisited)
	}
}

func TestReports(t *testing.T) {
	w := NewWorkload(0.002, 4)
	var rows []Row
	for _, id := range []string{"QM01", "QP01"} {
		q, _ := QueryByID(id)
		r, err := RunQuery(w, q)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, r)
	}
	var buf bytes.Buffer
	PrintTable1(&buf, w.Factor, rows)
	PrintFigure4(&buf, rows)
	PrintFigure5(&buf, rows)
	out := buf.String()
	for _, want := range []string{"Table 1", "Figure 4", "Figure 5", "QM01", "QP01", "size%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report misses %q:\n%s", want, out)
		}
	}
	q, _ := QueryByID("QP05")
	c, err := RunBaseline(w, q)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	PrintBaseline(&buf, []BaselineComparison{c})
	if !strings.Contains(buf.String(), "path-pruned") {
		t.Errorf("baseline report:\n%s", buf.String())
	}
}

func TestMeasureRunCountsWork(t *testing.T) {
	w := NewWorkload(0.002, 5)
	q, _ := QueryByID("QP02")
	m, err := MeasureRun(q, w.DocBytes)
	if err != nil {
		t.Fatal(err)
	}
	if m.Time <= 0 || m.AllocBytes == 0 || m.Visited == 0 {
		t.Fatalf("measurement empty: %+v", m)
	}
}
