package bench

import (
	"bytes"
	"io"
	"testing"

	"xmlproj/internal/dtd"
	"xmlproj/internal/prune"
)

// StreamPruneCase is one (projector, engine) measurement of the
// streaming pruner, in the units `go test -bench` reports.
type StreamPruneCase struct {
	// Projector names the π shape: "low" keeps a thin slice (most
	// subtrees skip-scanned), "mid" a moderate one, "full" everything
	// (the raw-copy fast path when validation is off).
	Projector string `json:"projector"`
	// Engine is "scanner" (internal/scan) or "decoder" (encoding/xml).
	Engine string `json:"engine"`
	// Validate reports whether validation was fused into the prune.
	Validate bool `json:"validate"`

	NsPerOp     int64   `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"alloc_bytes_per_op"`
	BytesOut    int64   `json:"bytes_out"`
}

// StreamPruneReport is the JSON artifact emitted by `xbench -streamprune`.
type StreamPruneReport struct {
	Factor   float64 `json:"factor"`
	Seed     int64   `json:"seed"`
	DocBytes int64   `json:"doc_bytes"`
	// SpeedupLow and AllocRatioLow compare scanner vs decoder on the
	// low-selectivity projector: throughput ratio and allocation ratio.
	SpeedupLow    float64           `json:"speedup_low"`
	AllocRatioLow float64           `json:"alloc_ratio_low"`
	Cases         []StreamPruneCase `json:"cases"`
}

// StreamPruneProjectors returns the benchmark π shapes over the XMark
// grammar, ordered low → mid → full selectivity.
func StreamPruneProjectors(d *dtd.DTD) []struct {
	Name string
	Pi   dtd.NameSet
} {
	low := dtd.NewNameSet("site", "regions", "africa", "item", "item@id",
		"location", "location#text")
	mid := dtd.NewNameSet("site", "people", "person", "person@id", "name",
		"name#text", "emailaddress", "emailaddress#text", "open_auctions",
		"open_auction", "open_auction@id", "initial", "initial#text")
	full := dtd.NewNameSet()
	for _, n := range d.Names() {
		full.Add(n)
	}
	return []struct {
		Name string
		Pi   dtd.NameSet
	}{{"low", low}, {"mid", mid}, {"full", full}}
}

// RunStreamPrune benchmarks prune.Stream on both engines across the
// projector shapes and packages the results.
func RunStreamPrune(factor float64, seed int64) (*StreamPruneReport, error) {
	w := NewWorkload(factor, seed)
	rep := &StreamPruneReport{Factor: factor, Seed: seed, DocBytes: int64(len(w.DocBytes))}
	engines := []struct {
		Name string
		Eng  prune.Engine
	}{{"scanner", prune.EngineScanner}, {"decoder", prune.EngineDecoder}}

	var lowScanner, lowDecoder *StreamPruneCase
	for _, p := range StreamPruneProjectors(w.D) {
		for _, e := range engines {
			pi, eng := p.Pi, e.Eng
			var stats prune.Stats
			var serr error
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					stats, serr = prune.Stream(io.Discard, bytes.NewReader(w.DocBytes), w.D, pi, prune.StreamOptions{Engine: eng})
					if serr != nil {
						b.Fatal(serr)
					}
				}
			})
			if serr != nil {
				return nil, serr
			}
			c := StreamPruneCase{
				Projector:   p.Name,
				Engine:      e.Name,
				NsPerOp:     r.NsPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				BytesOut:    stats.BytesOut,
			}
			if r.T > 0 {
				c.MBPerSec = float64(int64(r.N)*rep.DocBytes) / r.T.Seconds() / 1e6
			}
			rep.Cases = append(rep.Cases, c)
			if p.Name == "low" {
				switch e.Name {
				case "scanner":
					lowScanner = &rep.Cases[len(rep.Cases)-1]
				case "decoder":
					lowDecoder = &rep.Cases[len(rep.Cases)-1]
				}
			}
		}
	}
	if lowScanner != nil && lowDecoder != nil {
		if lowDecoder.MBPerSec > 0 {
			rep.SpeedupLow = lowScanner.MBPerSec / lowDecoder.MBPerSec
		}
		if lowScanner.AllocsPerOp > 0 {
			rep.AllocRatioLow = float64(lowDecoder.AllocsPerOp) / float64(lowScanner.AllocsPerOp)
		}
	}
	return rep, nil
}
