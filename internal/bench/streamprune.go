package bench

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"xmlproj/internal/dtd"
	"xmlproj/internal/engine"
	"xmlproj/internal/prune"
	"xmlproj/internal/rescache"
)

// StreamPruneCase is one (projector, engine) measurement of the
// streaming pruner, in the units `go test -bench` reports.
type StreamPruneCase struct {
	// Projector names the π shape: "low" keeps a thin slice (most
	// subtrees skip-scanned), "mid" a moderate one, "full" everything
	// (the raw-copy fast path, exercised with and without validation).
	Projector string `json:"projector"`
	// Engine is "scanner" (internal/scan), "decoder" (encoding/xml),
	// "parallel" (the two-stage intra-document parallel pruner), or the
	// span-gather variants "gather" / "gather-parallel" (output recorded
	// as spans over the input instead of copied). The shared-scan cases
	// are "multi" (one fused pass over N projectors) and "serial-xN"
	// (the same N projectors as consecutive serial gathers — the
	// baseline the fused pass is measured against). "cached" is the
	// result cache's steady-state warm hit: digest the document, look up,
	// serve the pruned bytes without scanning.
	Engine string `json:"engine"`
	// Validate reports whether validation was fused into the prune.
	Validate bool `json:"validate"`
	// Projectors is how many projectors the case evaluated at once; 0
	// means an ordinary single-projector case.
	Projectors int `json:"projectors,omitempty"`

	NsPerOp     int64   `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"alloc_bytes_per_op"`
	BytesOut    int64   `json:"bytes_out"`
	// CopiedBytesPerOp counts output bytes that crossed a user-space
	// copy on the way out: everything for the copying engines, only the
	// synthesized remainder (BytesOut minus span-referenced raw bytes)
	// for the gather engines.
	CopiedBytesPerOp int64 `json:"copied_bytes_per_op"`
}

// StreamPruneOptions tunes the parallel-pruner cases of RunStreamPrune.
type StreamPruneOptions struct {
	// IntraWorkers bounds the parallel pruner's workers (0 = GOMAXPROCS).
	IntraWorkers int
	// ChunkSize overrides the parallel pruner's stage-1 chunk size.
	ChunkSize int
}

// StreamPruneReport is the JSON artifact emitted by `xbench -streamprune`.
type StreamPruneReport struct {
	Factor   float64 `json:"factor"`
	Seed     int64   `json:"seed"`
	DocBytes int64   `json:"doc_bytes"`
	// GOMAXPROCS and NumCPU record the parallelism available to the run,
	// so consumers (CI speedup gates) can skip parallel-speedup
	// thresholds on single-CPU hosts instead of failing on them.
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// SpeedupLow and AllocRatioLow compare scanner vs decoder on the
	// low-selectivity projector: throughput ratio and allocation ratio.
	SpeedupLow    float64 `json:"speedup_low"`
	AllocRatioLow float64 `json:"alloc_ratio_low"`
	// SpeedupLowValidated compares the validating scanner against the
	// validating decoder on the low projector.
	SpeedupLowValidated float64 `json:"speedup_low_validated"`
	// ValidateOverheadLow / ValidateOverheadMid are the scanner's
	// unvalidated-to-validated throughput ratios on the low and mid
	// projectors: 1.0 means fused validation is free, 1.25 means the
	// validating pass runs 25% slower.
	ValidateOverheadLow float64 `json:"validate_overhead_low"`
	ValidateOverheadMid float64 `json:"validate_overhead_mid"`
	// SpeedupParallel compares the intra-document parallel pruner against
	// the serial scanner (full projector, unvalidated — the shape where
	// pruning is compute-bound); SpeedupParallelLow the same on the
	// low-selectivity projector. Meaningless (≈1 or below) when
	// NumCPU == 1.
	SpeedupParallel    float64 `json:"speedup_parallel"`
	SpeedupParallelLow float64 `json:"speedup_parallel_low"`
	// GatherAllocRatioLow divides the copying scanner's allocated bytes
	// per op by the span-gather path's on the low projector — the
	// zero-copy output representation's allocation win.
	GatherAllocRatioLow float64 `json:"gather_alloc_ratio_low"`
	// GatherCopiedFracLow is copied_bytes/bytes_out for the gather
	// engine on the low projector; 0 means fully zero-copy output.
	GatherCopiedFracLow float64 `json:"gather_copied_frac_low"`
	// SpeedupMultiX4 divides the wall time of 4 consecutive serial
	// gathers (one per low-selectivity projector) by one shared scan
	// evaluating the same 4 projectors at once: 4.0 would mean the fused
	// pass is free beyond the first projector, 1.0 that sharing buys
	// nothing.
	SpeedupMultiX4 float64 `json:"speedup_multi_x4"`
	// SpeedupPipelined compares the pipelined streaming pruner — fed an
	// unsized reader, the input shape (chunked upload, pipe) where the
	// batch parallel pruner cannot run — against the serial scanner on
	// the full projector; SpeedupPipelinedLow the same on the low
	// projector. Omitted, with SpeedupSkippedSingleCPU set, when the
	// host has one CPU and the pipeline has nothing to overlap.
	SpeedupPipelined    float64 `json:"speedup_pipelined,omitempty"`
	SpeedupPipelinedLow float64 `json:"speedup_pipelined_low,omitempty"`
	// SpeedupSkippedSingleCPU annotates that the pipelined speedup
	// fields were omitted because NumCPU == 1 — consumers gate on this
	// instead of failing their thresholds. Output parity and the memory
	// bound are still asserted.
	SpeedupSkippedSingleCPU bool `json:"speedup_skipped_single_cpu,omitempty"`
	// TTFB*Ns measure nanoseconds from prune start to the first output
	// byte reaching the destination (full projector, best of three):
	// the pipelined engine emits its first window while later ones are
	// still being read; the batch parallel pruner answers only after
	// the whole document is buffered and indexed.
	TTFBScannerNs   int64 `json:"ttfb_scanner_ns"`
	TTFBParallelNs  int64 `json:"ttfb_parallel_ns"`
	TTFBPipelinedNs int64 `json:"ttfb_pipelined_ns"`
	// SpeedupCachedLow divides the serial scanner's ns/op on the
	// low-selectivity projector by the result cache's warm-hit ns/op on
	// the same (document, projector) pair: how much cheaper a repeat
	// prune is once its output sits in the cache. The hit re-digests the
	// document every op — the honest steady state, where the caller
	// holds bytes, not a digest.
	SpeedupCachedLow float64 `json:"speedup_cached_low"`
	// CacheHitNs is the warm-hit cost per op (digest + lookup + serve);
	// DigestNs isolates the digest itself, the floor under every hit.
	CacheHitNs int64 `json:"cache_hit_ns_per_op"`
	DigestNs   int64 `json:"digest_ns_per_op"`
	// PipelineWindowBytes and PipelineRingDepth are the knobs every
	// pipelined case ran with; PeakWindowBytes is the high-water input
	// residency the full-projector case reached. The run fails before
	// timing anything if the peak exceeds ring x window.
	PipelineWindowBytes int               `json:"pipeline_window_bytes"`
	PipelineRingDepth   int               `json:"pipeline_ring_depth"`
	PeakWindowBytes     int64             `json:"peak_window_bytes"`
	Cases               []StreamPruneCase `json:"cases"`
}

// unsized hides an in-memory reader's size, presenting it as a stream
// of unknown length — the shape the pipelined engine exists for.
type unsized struct{ io.Reader }

// The pipelined cases run with explicit window and ring knobs so the
// report's memory-bound claim (peak ≤ ring × window) is checkable from
// the JSON alone.
const (
	pipeBenchWindow = 1 << 20
	pipeBenchRing   = 4
)

// firstByteWriter timestamps the first output byte it sees.
type firstByteWriter struct {
	start time.Time
	ttfb  time.Duration
}

func (w *firstByteWriter) Write(p []byte) (int, error) {
	if w.ttfb == 0 && len(p) > 0 {
		w.ttfb = time.Since(w.start)
	}
	return len(p), nil
}

// StreamPruneProjectors returns the benchmark π shapes over the XMark
// grammar, ordered low → mid → full selectivity.
func StreamPruneProjectors(d *dtd.DTD) []struct {
	Name string
	Pi   dtd.NameSet
} {
	low := dtd.NewNameSet("site", "regions", "africa", "item", "item@id",
		"location", "location#text")
	mid := dtd.NewNameSet("site", "people", "person", "person@id", "name",
		"name#text", "emailaddress", "emailaddress#text", "open_auctions",
		"open_auction", "open_auction@id", "initial", "initial#text")
	full := dtd.NewNameSet()
	for _, n := range d.Names() {
		full.Add(n)
	}
	return []struct {
		Name string
		Pi   dtd.NameSet
	}{{"low", low}, {"mid", mid}, {"full", full}}
}

// StreamPruneMultiProjectors returns the shared-scan benchmark set:
// four low-selectivity projectors over disjoint XMark subtrees, the
// shape the fused pass wins most on — each serial run re-scans the
// whole document to keep a thin slice of it, while the shared scan
// tokenizes once for all four.
func StreamPruneMultiProjectors() []dtd.NameSet {
	return []dtd.NameSet{
		dtd.NewNameSet("site", "regions", "africa", "item", "item@id",
			"location", "location#text"),
		dtd.NewNameSet("site", "people", "person", "person@id", "name",
			"name#text"),
		dtd.NewNameSet("site", "open_auctions", "open_auction",
			"open_auction@id", "initial", "initial#text"),
		dtd.NewNameSet("site", "categories", "category", "category@id",
			"name", "name#text"),
	}
}

// RunStreamPrune benchmarks prune.Stream on the serial scanner, the
// decoder reference and the intra-document parallel pruner across the
// projector shapes and packages the results. Before timing anything it
// asserts that the parallel pruner's output is byte-identical to the
// serial scanner's on every projector, so a benchmark report can never
// advertise the speed of a wrong answer.
func RunStreamPrune(factor float64, seed int64, opts StreamPruneOptions) (*StreamPruneReport, error) {
	w := NewWorkload(factor, seed)
	rep := &StreamPruneReport{
		Factor: factor, Seed: seed, DocBytes: int64(len(w.DocBytes)),
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
	}
	// Projections are precompiled once per projector shape and shared by
	// every case: real deployments infer/compile once and prune many
	// documents, and a per-op CompileProjection would otherwise dominate
	// the allocation numbers the gather engines exist to shrink.
	projectors := StreamPruneProjectors(w.D)
	compiled := make(map[string]*dtd.Projection, len(projectors))
	for _, p := range projectors {
		compiled[p.Name] = w.D.CompileProjection(p.Pi)
	}
	mkOpts := func(name string, eng prune.Engine, v bool) prune.StreamOptions {
		return prune.StreamOptions{
			Engine:            eng,
			Validate:          v,
			Projection:        compiled[name],
			ParallelWorkers:   opts.IntraWorkers,
			ParallelChunkSize: opts.ChunkSize,
		}
	}
	mkPipeOpts := func(name string, v bool, det *prune.PipelineDetail) prune.StreamOptions {
		o := mkOpts(name, prune.EnginePipelined, v)
		o.PipelineWindowSize = pipeBenchWindow
		o.PipelineRingDepth = pipeBenchRing
		o.Pipeline = det
		return o
	}
	rep.PipelineWindowBytes = pipeBenchWindow
	rep.PipelineRingDepth = pipeBenchRing
	// Parity gate: every engine — parallel, pipelined, gather,
	// gather-parallel — must reproduce the serial scanner's bytes before
	// anything is timed.
	for _, p := range projectors {
		var serialOut, parallelOut, pipeOut bytes.Buffer
		if _, err := prune.Stream(&serialOut, bytes.NewReader(w.DocBytes), w.D, p.Pi, mkOpts(p.Name, prune.EngineScanner, false)); err != nil {
			return nil, fmt.Errorf("serial prune (%s): %w", p.Name, err)
		}
		if _, err := prune.Stream(&parallelOut, bytes.NewReader(w.DocBytes), w.D, p.Pi, mkOpts(p.Name, prune.EngineParallel, false)); err != nil {
			return nil, fmt.Errorf("parallel prune (%s): %w", p.Name, err)
		}
		if !bytes.Equal(serialOut.Bytes(), parallelOut.Bytes()) {
			return nil, fmt.Errorf("parallel pruner output differs from serial scanner on projector %s", p.Name)
		}
		var pdet prune.PipelineDetail
		if _, err := prune.Stream(&pipeOut, unsized{bytes.NewReader(w.DocBytes)}, w.D, p.Pi, mkPipeOpts(p.Name, false, &pdet)); err != nil {
			return nil, fmt.Errorf("pipelined prune (%s): %w", p.Name, err)
		}
		if !bytes.Equal(serialOut.Bytes(), pipeOut.Bytes()) {
			return nil, fmt.Errorf("pipelined pruner output differs from serial scanner on projector %s", p.Name)
		}
		if bound := int64(pipeBenchRing) * int64(pipeBenchWindow); pdet.PeakWindowBytes > bound {
			return nil, fmt.Errorf("pipelined peak window bytes %d exceed ring bound %d on projector %s", pdet.PeakWindowBytes, bound, p.Name)
		}
		for _, eng := range []prune.Engine{prune.EngineScanner, prune.EngineParallel} {
			g, _, err := prune.StreamGather(w.DocBytes, w.D, p.Pi, mkOpts(p.Name, eng, false))
			if err != nil {
				return nil, fmt.Errorf("gather prune (%s, engine %d): %w", p.Name, eng, err)
			}
			same := bytes.Equal(serialOut.Bytes(), g.Bytes())
			g.Close()
			if !same {
				return nil, fmt.Errorf("gather output differs from serial scanner on projector %s (engine %d)", p.Name, eng)
			}
		}
	}
	engines := []struct {
		Name   string
		Eng    prune.Engine
		Gather bool
	}{
		{"scanner", prune.EngineScanner, false},
		{"decoder", prune.EngineDecoder, false},
		{"parallel", prune.EngineParallel, false},
		{"pipelined", prune.EnginePipelined, false},
		{"gather", prune.EngineScanner, true},
		{"gather-parallel", prune.EngineParallel, true},
	}

	rd := bytes.NewReader(w.DocBytes)
	for _, p := range projectors {
		for _, e := range engines {
			for _, validate := range []bool{false, true} {
				name, pi, eng, v := p.Name, p.Pi, e.Eng, validate
				var stats prune.Stats
				var rawBytes int64
				var serr error
				var r testing.BenchmarkResult
				if e.Gather {
					r = testing.Benchmark(func(b *testing.B) {
						b.ReportAllocs()
						for i := 0; i < b.N; i++ {
							g, st, err := prune.StreamGather(w.DocBytes, w.D, pi, mkOpts(name, eng, v))
							if err != nil {
								serr = err
								b.Fatal(err)
							}
							stats, rawBytes = st, g.RawBytes()
							g.Close()
						}
					})
				} else if eng == prune.EnginePipelined {
					var pdet prune.PipelineDetail
					r = testing.Benchmark(func(b *testing.B) {
						b.ReportAllocs()
						for i := 0; i < b.N; i++ {
							rd.Reset(w.DocBytes)
							stats, serr = prune.Stream(io.Discard, unsized{rd}, w.D, pi, mkPipeOpts(name, v, &pdet))
							if serr != nil {
								b.Fatal(serr)
							}
						}
					})
					if name == "full" && !v {
						rep.PeakWindowBytes = pdet.PeakWindowBytes
					}
				} else {
					r = testing.Benchmark(func(b *testing.B) {
						b.ReportAllocs()
						for i := 0; i < b.N; i++ {
							rd.Reset(w.DocBytes)
							stats, serr = prune.Stream(io.Discard, rd, w.D, pi, mkOpts(name, eng, v))
							if serr != nil {
								b.Fatal(serr)
							}
						}
					})
				}
				if serr != nil {
					return nil, serr
				}
				c := StreamPruneCase{
					Projector:        p.Name,
					Engine:           e.Name,
					Validate:         v,
					NsPerOp:          r.NsPerOp(),
					AllocsPerOp:      r.AllocsPerOp(),
					BytesPerOp:       r.AllocedBytesPerOp(),
					BytesOut:         stats.BytesOut,
					CopiedBytesPerOp: stats.BytesOut - rawBytes,
				}
				if r.T > 0 {
					c.MBPerSec = float64(int64(r.N)*rep.DocBytes) / r.T.Seconds() / 1e6
				}
				rep.Cases = append(rep.Cases, c)
			}
		}
	}
	// Shared-scan cases: the same 4 low-selectivity projectors as one
	// fused pass ("multi") and as 4 consecutive serial gathers
	// ("serial-x4"). Parity first: every fused output must be
	// byte-identical to its serial gather.
	multiPis := StreamPruneMultiProjectors()
	multiProjs := make([]*dtd.Projection, len(multiPis))
	for j, pi := range multiPis {
		multiProjs[j] = w.D.CompileProjection(pi)
	}
	combined, err := dtd.CombineProjections(multiProjs)
	if err != nil {
		return nil, fmt.Errorf("combine projections: %w", err)
	}
	mopts := prune.MultiOptions{Projections: multiProjs, Combined: combined}
	serialOf := func(j int) (*prune.Gather, prune.Stats, error) {
		return prune.StreamGather(w.DocBytes, w.D, multiPis[j], prune.StreamOptions{
			Engine: prune.EngineScanner, Projection: multiProjs[j],
		})
	}
	gathers, _, merrs := prune.StreamMultiGather(w.DocBytes, w.D, multiPis, mopts)
	for j := range multiPis {
		if merrs[j] != nil {
			return nil, fmt.Errorf("multi prune (projector %d): %w", j, merrs[j])
		}
		g, _, err := serialOf(j)
		if err != nil {
			return nil, fmt.Errorf("serial gather (projector %d): %w", j, err)
		}
		same := bytes.Equal(gathers[j].Bytes(), g.Bytes())
		g.Close()
		gathers[j].Close()
		if !same {
			return nil, fmt.Errorf("shared-scan output differs from serial gather on projector %d", j)
		}
	}

	var multiOut int64
	rMulti := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			gs, sts, errs := prune.StreamMultiGather(w.DocBytes, w.D, multiPis, mopts)
			multiOut = 0
			for j, g := range gs {
				if errs[j] != nil {
					b.Fatal(errs[j])
				}
				multiOut += sts[j].BytesOut
				g.Close()
			}
		}
	})
	var serialOut int64
	rSerial := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			serialOut = 0
			for j := range multiPis {
				g, st, err := serialOf(j)
				if err != nil {
					b.Fatal(err)
				}
				serialOut += st.BytesOut
				g.Close()
			}
		}
	})
	for _, mc := range []struct {
		name string
		r    testing.BenchmarkResult
		out  int64
	}{{"multi", rMulti, multiOut}, {"serial-x4", rSerial, serialOut}} {
		c := StreamPruneCase{
			Projector:   "low4",
			Engine:      mc.name,
			Projectors:  len(multiPis),
			NsPerOp:     mc.r.NsPerOp(),
			AllocsPerOp: mc.r.AllocsPerOp(),
			BytesPerOp:  mc.r.AllocedBytesPerOp(),
			BytesOut:    mc.out,
		}
		if mc.r.T > 0 {
			// One op covers the whole projector set, so throughput is the
			// document set's bytes over the op — the fused pass reads the
			// document once, the serial baseline once per projector.
			c.MBPerSec = float64(int64(mc.r.N)*rep.DocBytes) / mc.r.T.Seconds() / 1e6
		}
		rep.Cases = append(rep.Cases, c)
	}
	if ns := rMulti.NsPerOp(); ns > 0 {
		rep.SpeedupMultiX4 = float64(rSerial.NsPerOp()) / float64(ns)
	}

	find := func(proj, eng string, validate bool) *StreamPruneCase {
		for i := range rep.Cases {
			c := &rep.Cases[i]
			if c.Projector == proj && c.Engine == eng && c.Validate == validate {
				return c
			}
		}
		return nil
	}
	ratio := func(num, den *StreamPruneCase) float64 {
		if num == nil || den == nil || den.MBPerSec <= 0 {
			return 0
		}
		return num.MBPerSec / den.MBPerSec
	}
	lowScanner := find("low", "scanner", false)
	lowDecoder := find("low", "decoder", false)
	rep.SpeedupLow = ratio(lowScanner, lowDecoder)
	if lowScanner != nil && lowDecoder != nil && lowScanner.AllocsPerOp > 0 {
		rep.AllocRatioLow = float64(lowDecoder.AllocsPerOp) / float64(lowScanner.AllocsPerOp)
	}
	rep.SpeedupLowValidated = ratio(find("low", "scanner", true), find("low", "decoder", true))
	rep.ValidateOverheadLow = ratio(lowScanner, find("low", "scanner", true))
	rep.ValidateOverheadMid = ratio(find("mid", "scanner", false), find("mid", "scanner", true))
	rep.SpeedupParallel = ratio(find("full", "parallel", false), find("full", "scanner", false))
	rep.SpeedupParallelLow = ratio(find("low", "parallel", false), lowScanner)
	rep.SpeedupPipelined = ratio(find("full", "pipelined", false), find("full", "scanner", false))
	rep.SpeedupPipelinedLow = ratio(find("low", "pipelined", false), lowScanner)
	if rep.NumCPU == 1 {
		// One CPU: the pipeline has nothing to overlap, so a speedup
		// threshold is meaningless. Omit the numbers and say why, instead
		// of shipping a ratio a CI gate would fail on.
		rep.SpeedupPipelined = 0
		rep.SpeedupPipelinedLow = 0
		rep.SpeedupSkippedSingleCPU = true
	}

	// Time to first output byte on the full projector, best of three per
	// engine. The bench destination buffers nothing, so the timestamp is
	// the moment the pruner's own write path first emits.
	var fullPi dtd.NameSet
	for _, p := range projectors {
		if p.Name == "full" {
			fullPi = p.Pi
		}
	}
	ttfb := func(eng prune.Engine) int64 {
		best := int64(-1)
		for i := 0; i < 3; i++ {
			fw := &firstByteWriter{start: time.Now()}
			var o prune.StreamOptions
			var src io.Reader = bytes.NewReader(w.DocBytes)
			if eng == prune.EnginePipelined {
				o = mkPipeOpts("full", false, nil)
				src = unsized{src}
			} else {
				o = mkOpts("full", eng, false)
			}
			if _, err := prune.Stream(fw, src, w.D, fullPi, o); err != nil {
				return -1
			}
			if d := fw.ttfb.Nanoseconds(); best < 0 || d < best {
				best = d
			}
		}
		return best
	}
	rep.TTFBScannerNs = ttfb(prune.EngineScanner)
	rep.TTFBParallelNs = ttfb(prune.EngineParallel)
	rep.TTFBPipelinedNs = ttfb(prune.EnginePipelined)
	// Result-cache steady state on the low projector: parity first (cold
	// fill and warm hit must both reproduce the serial scanner's bytes,
	// with the validated variant under its own key), then the warm-hit
	// and digest costs.
	if err := runCachedCase(w, rep, mkOpts, lowScanner); err != nil {
		return nil, err
	}
	if lowGather := find("low", "gather", false); lowGather != nil {
		if lowScanner != nil {
			// Steady state the gather path allocates nothing at all;
			// clamp the denominator so a perfect 0 B/op reports a finite
			// (conservative) ratio instead of dividing by zero.
			den := lowGather.BytesPerOp
			if den < 1 {
				den = 1
			}
			rep.GatherAllocRatioLow = float64(lowScanner.BytesPerOp) / float64(den)
		}
		if lowGather.BytesOut > 0 {
			rep.GatherCopiedFracLow = float64(lowGather.CopiedBytesPerOp) / float64(lowGather.BytesOut)
		}
	}
	return rep, nil
}

// runCachedCase measures the result cache's warm hit on the
// low-selectivity projector and appends the "cached" case: parity of
// the cold fill, the warm hit and the validated variant against fresh
// serial prunes, then the steady-state hit cost (digest + lookup +
// serve) and the digest floor.
func runCachedCase(w *Workload, rep *StreamPruneReport, mkOpts func(string, prune.Engine, bool) prune.StreamOptions, lowScanner *StreamPruneCase) error {
	lowPi := StreamPruneProjectors(w.D)[0].Pi
	eng := engine.New(engine.Options{ResultCacheBytes: 256 << 20})
	fillOf := func(validate bool) func() (*prune.Gather, prune.Stats, error) {
		return func() (*prune.Gather, prune.Stats, error) {
			return prune.StreamGather(w.DocBytes, w.D, lowPi, mkOpts("low", prune.EngineScanner, validate))
		}
	}
	// The variant would be the schema+π fingerprint through the public
	// API; any per-(projector, validate) unique string keys the same way.
	keyOf := func(validate bool) rescache.Key {
		variant := "bench/low"
		if validate {
			variant += "/validate"
		}
		return rescache.Key{Doc: rescache.DigestBytes(w.DocBytes), Variant: variant}
	}
	for _, validate := range []bool{false, true} {
		var want bytes.Buffer
		if _, err := prune.Stream(&want, bytes.NewReader(w.DocBytes), w.D, lowPi, mkOpts("low", prune.EngineScanner, validate)); err != nil {
			return fmt.Errorf("cached-case serial prune (validate=%v): %w", validate, err)
		}
		_, g, _, hit, err := eng.CachedGather(keyOf(validate), fillOf(validate))
		if err != nil {
			return fmt.Errorf("cached-case cold fill (validate=%v): %w", validate, err)
		}
		if hit || g == nil {
			return fmt.Errorf("cached-case cold fill (validate=%v) did not run the prune", validate)
		}
		same := bytes.Equal(g.Bytes(), want.Bytes())
		g.Close()
		if !same {
			return fmt.Errorf("cached-case cold output differs from serial scanner (validate=%v)", validate)
		}
		entry, g, _, hit, err := eng.CachedGather(keyOf(validate), fillOf(validate))
		if err != nil {
			return fmt.Errorf("cached-case warm hit (validate=%v): %w", validate, err)
		}
		if !hit || g != nil {
			return fmt.Errorf("cached-case warm lookup (validate=%v) missed", validate)
		}
		if !bytes.Equal(entry.Bytes(), want.Bytes()) {
			return fmt.Errorf("cached-case warm output differs from serial scanner (validate=%v)", validate)
		}
	}

	var sink rescache.Digest
	rDigest := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink = rescache.DigestBytes(w.DocBytes)
		}
	})
	_ = sink
	var stats prune.Stats
	rHit := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			entry, g, st, hit, err := eng.CachedGather(keyOf(false), fillOf(false))
			if err != nil || !hit || g != nil || entry == nil {
				b.Fatalf("warm hit degraded mid-benchmark: hit=%v err=%v", hit, err)
			}
			stats = st
		}
	})
	rep.DigestNs = rDigest.NsPerOp()
	rep.CacheHitNs = rHit.NsPerOp()
	if lowScanner != nil && rep.CacheHitNs > 0 {
		rep.SpeedupCachedLow = float64(lowScanner.NsPerOp) / float64(rep.CacheHitNs)
	}
	c := StreamPruneCase{
		Projector:   "low",
		Engine:      "cached",
		NsPerOp:     rHit.NsPerOp(),
		AllocsPerOp: rHit.AllocsPerOp(),
		BytesPerOp:  rHit.AllocedBytesPerOp(),
		BytesOut:    stats.BytesOut,
	}
	if rHit.T > 0 {
		c.MBPerSec = float64(int64(rHit.N)*rep.DocBytes) / rHit.T.Seconds() / 1e6
	}
	rep.Cases = append(rep.Cases, c)
	return nil
}
