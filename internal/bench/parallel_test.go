package bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"
	"testing"

	"xmlproj/internal/engine"
)

// TestParallelPruneMatchesSerial: pruning a batch through the engine's
// worker pool produces exactly the bytes the serial streaming pruner
// produces for each document.
func TestParallelPruneMatchesSerial(t *testing.T) {
	w := NewWorkload(0.002, 5)
	q, ok := QueryByID("QP01")
	if !ok {
		t.Fatal("QP01 missing")
	}
	pr, err := w.Projector(q)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := PruneBytes(w, pr)
	if err != nil {
		t.Fatal(err)
	}
	const docs = 8
	e := engine.New(engine.Options{})
	jobs := make([]engine.Job, docs)
	outs := make([]*bytes.Buffer, docs)
	for i := range jobs {
		outs[i] = &bytes.Buffer{}
		jobs[i] = engine.Job{Name: fmt.Sprint(i), Src: bytes.NewReader(w.DocBytes), Dst: outs[i]}
	}
	if _, _, err := e.PruneBatch(context.Background(), w.D, pr.Names, jobs, engine.BatchOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		if !bytes.Equal(out.Bytes(), want) {
			t.Fatalf("doc %d: parallel prune differs from serial prune", i)
		}
	}
}

// BenchmarkParallelPrune measures batch-pruning throughput as the worker
// pool widens from 1 to GOMAXPROCS over a batch of XMark documents —
// the §6 pruner is a one-pass scan with no shared state, so throughput
// should scale close to linearly until the memory bus saturates.
func BenchmarkParallelPrune(b *testing.B) {
	w := NewWorkload(0.004, 3)
	q, ok := QueryByID("QP01")
	if !ok {
		b.Fatal("QP01 missing")
	}
	pr, err := w.Projector(q)
	if err != nil {
		b.Fatal(err)
	}
	const docs = 16
	widths := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		widths = append(widths, n)
	}
	for _, workers := range widths {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := engine.New(engine.Options{})
			b.SetBytes(int64(len(w.DocBytes)) * docs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				jobs := make([]engine.Job, docs)
				for j := range jobs {
					jobs[j] = engine.Job{Name: fmt.Sprint(j), Src: bytes.NewReader(w.DocBytes), Dst: io.Discard}
				}
				if _, _, err := e.PruneBatch(context.Background(), w.D, pr.Names, jobs, engine.BatchOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
