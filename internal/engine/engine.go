// Package engine is the concurrent projection engine: a bounded LRU
// cache of inferred projectors with single-flight deduplication, a
// worker pool that prunes batches of documents through the §6 streaming
// pruner, and counters exposing what the engine did.
//
// The design follows the journal version of the paper (Benzaken,
// Castagna, Colazzo, Nguyên, arXiv:1104.2079): projectors are closed
// under union and depend only on the schema and the query bunch, so a
// server can infer one projector per workload and reuse it across every
// document and every concurrent client. Inference is the only
// non-trivial cost; pruning itself is a one-pass constant-memory scan
// that parallelises trivially across documents.
package engine

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"io"
	"runtime"
	"sync"
	"time"

	"xmlproj/internal/core"
	"xmlproj/internal/rescache"
)

// Key identifies a cached projector: the schema fingerprint, the
// canonical rendering of the query bunch, and the inference mode.
// Projector inference is deterministic in these three inputs.
type Key struct {
	Schema string
	Bunch  string
	Mode   uint8
}

// DefaultCacheSize bounds the projector cache when Options.CacheSize is
// zero. Projectors are small (a name set over the DTD), so the bound
// exists to cap the number of distinct workloads retained, not memory.
const DefaultCacheSize = 128

// Options configures an Engine.
type Options struct {
	// CacheSize is the maximum number of cached projectors. Zero means
	// DefaultCacheSize; negative disables caching (single-flight
	// deduplication of concurrent identical requests still applies).
	CacheSize int
	// Workers is the default worker-pool width for PruneBatch when the
	// batch options leave it unset. Zero means GOMAXPROCS.
	Workers int
	// ResultCacheBytes budgets the content-addressed cache of pruned
	// outputs (internal/rescache): repeat (document digest, projection
	// fingerprint, validate) requests are served from cached bytes
	// instead of rescanning. Zero or negative disables it.
	ResultCacheBytes int64
}

// Engine is safe for concurrent use by any number of goroutines.
type Engine struct {
	opts Options

	mu     sync.Mutex
	lru    *list.List // *entry, most recently used first
	idx    map[Key]*list.Element
	flight map[Key]*flightCall

	// proj caches compiled projections (π against a DTD's symbol table)
	// so batches and repeated prunes of one workload compile π once.
	proj *projCache

	// multi caches fused multi-projection decision tables (guarded by
	// proj.mu) so repeated shared-scan requests fuse their set once.
	multi *multiCache

	// results caches pruned outputs by (document digest, variant); nil
	// when Options.ResultCacheBytes is not positive.
	results *rescache.Cache

	m counters
}

type entry struct {
	key Key
	pr  *core.Projector
}

// flightCall is one in-flight inference; concurrent requests for the
// same key block on done and share pr/err.
type flightCall struct {
	done chan struct{}
	pr   *core.Projector
	err  error
}

// New returns an engine with the given options.
func New(opts Options) *Engine {
	return &Engine{
		opts:    opts,
		lru:     list.New(),
		idx:     make(map[Key]*list.Element),
		flight:  make(map[Key]*flightCall),
		proj:    newProjCache(),
		multi:   newMultiCache(),
		results: rescache.New(opts.ResultCacheBytes),
	}
}

func (e *Engine) cacheCap() int {
	switch {
	case e.opts.CacheSize < 0:
		return 0
	case e.opts.CacheSize == 0:
		return DefaultCacheSize
	default:
		return e.opts.CacheSize
	}
}

func (e *Engine) workers() int {
	if e.opts.Workers > 0 {
		return e.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// InferCached returns the projector for key, computing it with infer on
// a cache miss. Concurrent calls for the same key are deduplicated: one
// caller runs infer, the rest block and share the result. Errors are
// shared with the callers that were waiting but are not cached, so a
// later request retries.
func (e *Engine) InferCached(key Key, infer func() (*core.Projector, error)) (*core.Projector, error) {
	e.mu.Lock()
	if el, ok := e.idx[key]; ok {
		e.lru.MoveToFront(el)
		pr := el.Value.(*entry).pr
		e.mu.Unlock()
		e.m.hits.Add(1)
		return pr, nil
	}
	if c, ok := e.flight[key]; ok {
		e.mu.Unlock()
		<-c.done
		e.m.coalesced.Add(1)
		return c.pr, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	e.flight[key] = c
	e.mu.Unlock()

	e.m.misses.Add(1)
	start := time.Now()
	c.pr, c.err = infer()
	e.m.inferences.Add(1)
	e.m.inferNanos.Add(time.Since(start).Nanoseconds())

	e.mu.Lock()
	delete(e.flight, key)
	if c.err == nil {
		e.insertLocked(key, c.pr)
	}
	e.mu.Unlock()
	close(c.done)
	return c.pr, c.err
}

// insertLocked adds key→pr to the LRU, evicting from the cold end.
func (e *Engine) insertLocked(key Key, pr *core.Projector) {
	cap := e.cacheCap()
	if cap == 0 {
		return
	}
	if el, ok := e.idx[key]; ok {
		el.Value.(*entry).pr = pr
		e.lru.MoveToFront(el)
		return
	}
	e.idx[key] = e.lru.PushFront(&entry{key: key, pr: pr})
	for e.lru.Len() > cap {
		cold := e.lru.Back()
		e.lru.Remove(cold)
		delete(e.idx, cold.Value.(*entry).key)
		e.m.evictions.Add(1)
	}
}

// CacheLen returns the number of cached projectors.
func (e *Engine) CacheLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lru.Len()
}

// Fingerprint hashes the given parts into a compact stable hex key,
// suitable for Key.Schema and Key.Bunch. Parts are length-delimited, so
// distinct part lists never collide by concatenation.
func Fingerprint(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		var n [8]byte
		for i, l := 0, len(p); i < 8; i, l = i+1, l>>8 {
			n[i] = byte(l)
		}
		h.Write(n[:])
		io.WriteString(h, p)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}
