package engine

import (
	"container/list"

	"xmlproj/internal/dtd"
)

// multiKey identifies a fused projector set: the grammar by identity and
// the member projectors by an ORDER-PRESERVING fingerprint over the
// per-π fingerprints. Order matters — bit j of every mask in the fused
// table answers for member j, so [π1, π2] and [π2, π1] are different
// tables even though they fuse the same set.
type multiKey struct {
	d  *dtd.DTD
	fp string
}

// multiEntry is one cached fused decision table.
type multiEntry struct {
	key multiKey
	mp  *dtd.MultiProjection
}

// multiFlight is one in-flight fuse; concurrent requests for the same
// key block on done and share mp.
type multiFlight struct {
	done chan struct{}
	mp   *dtd.MultiProjection
}

// multiCache caches fused multi-projection decision tables with the
// same LRU + single-flight discipline as the projection cache: a server
// answering a stream of identical multiprune requests fuses the set
// once.
type multiCache struct {
	lru    *list.List // *multiEntry, most recently used first
	idx    map[multiKey]*list.Element
	flight map[multiKey]*multiFlight
}

func newMultiCache() *multiCache {
	return &multiCache{
		lru:    list.New(),
		idx:    make(map[multiKey]*list.Element),
		flight: make(map[multiKey]*multiFlight),
	}
}

// MultiProjectionFor compiles every projector in pis through the
// projection cache and fuses the set into one cached decision table.
// It returns the fused table (nil when the set is empty or exceeds
// dtd.MaxMultiProjections — the prune layer then shards and fuses per
// shard), the compiled members aligned with pis, and whether the fused
// table was answered from the cache (piggybacking on an in-flight fuse
// counts as a hit).
func (e *Engine) MultiProjectionFor(d *dtd.DTD, pis []dtd.NameSet) (*dtd.MultiProjection, []*dtd.Projection, bool) {
	projs := make([]*dtd.Projection, len(pis))
	fps := make([]string, len(pis))
	for j, pi := range pis {
		projs[j] = e.projectionFor(d, pi)
		fps[j] = piFingerprint(pi)
	}
	if len(pis) == 0 || len(pis) > dtd.MaxMultiProjections {
		return nil, projs, false
	}
	c := e.multi
	key := multiKey{d: d, fp: Fingerprint(fps...)}
	// The projection cache's lock also serialises this cache; fusing and
	// prunes happen outside it.
	e.proj.mu.Lock()
	if el, ok := c.idx[key]; ok {
		c.lru.MoveToFront(el)
		mp := el.Value.(*multiEntry).mp
		e.proj.mu.Unlock()
		e.m.multiHits.Add(1)
		return mp, projs, true
	}
	if f, ok := c.flight[key]; ok {
		e.proj.mu.Unlock()
		<-f.done
		e.m.multiHits.Add(1)
		return f.mp, projs, true
	}
	f := &multiFlight{done: make(chan struct{})}
	c.flight[key] = f
	e.proj.mu.Unlock()

	e.m.multiMisses.Add(1)
	// The members were all compiled against d's symbol table and the set
	// is within the fuse limit, so combining cannot fail.
	f.mp, _ = dtd.CombineProjections(projs)

	e.proj.mu.Lock()
	delete(c.flight, key)
	if cap := e.cacheCap(); cap > 0 && f.mp != nil {
		c.idx[key] = c.lru.PushFront(&multiEntry{key: key, mp: f.mp})
		for c.lru.Len() > cap {
			cold := c.lru.Back()
			c.lru.Remove(cold)
			delete(c.idx, cold.Value.(*multiEntry).key)
		}
	}
	e.proj.mu.Unlock()
	close(f.done)
	return f.mp, projs, false
}
