package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"xmlproj/internal/dtd"
	"xmlproj/internal/prune"
	"xmlproj/internal/rescache"
)

// Job is one document to prune: a source stream and a destination.
// If Dst implements io.Closer it is closed when the job finishes and
// the close error folds into the job's error — write-behind failures
// like a full disk surface on the job, and a batch holds at most
// Workers destinations open at a time.
type Job struct {
	// Name labels the job in results (typically the input path).
	Name string
	Src  io.Reader
	Dst  io.Writer
}

// JobResult is the outcome of one batch job.
type JobResult struct {
	Name string
	// Stats is the streaming pruner's report; on error it covers the
	// prefix processed before the failure.
	Stats prune.Stats
	// BytesIn counts bytes read from the job's source.
	BytesIn int64
	// Elapsed is the wall time the prune took (zero for skipped jobs),
	// so callers can report per-job throughput.
	Elapsed time.Duration
	// Parallel holds the per-stage timings of an intra-document parallel
	// prune; Parallel.Workers == 0 means the job ran serially.
	Parallel prune.ParallelDetail
	// Pipeline holds the per-stage timings of a pipelined streaming
	// prune; Pipeline.Workers == 0 means the pipelined engine did not
	// run. Auto-selection picks it for unsized (or large sized) reader
	// sources on multi-CPU hosts.
	Pipeline prune.PipelineDetail
	// Err is nil on success. Jobs skipped after cancellation (fail-fast
	// or a cancelled context) carry the context error.
	Err error
}

// Throughput returns the job's input processing rate in MB/s (0 when
// nothing was timed).
func (r JobResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.BytesIn) / r.Elapsed.Seconds() / 1e6
}

// BatchOptions configures one PruneBatch call.
type BatchOptions struct {
	// Workers bounds the pool for this batch; zero uses the engine's
	// default (Options.Workers, else GOMAXPROCS).
	Workers int
	// Validate fuses DTD validation with the prune.
	Validate bool
	// FailFast cancels the remaining jobs after the first failure.
	// Otherwise the batch keeps going and reports every error.
	FailFast bool
	// Engine selects the pruner per job; the zero value (EngineAuto)
	// uses the serial scanner for small or unsized inputs and the
	// intra-document parallel pruner for large ones on multi-CPU hosts.
	Engine prune.Engine
	// IntraWorkers bounds the parallel pruner's workers within one
	// document. Zero budgets automatically: each job gets
	// IntraBudget(GOMAXPROCS, effective batch workers) workers, so
	// Workers × IntraWorkers ≈ GOMAXPROCS and a batch of large
	// documents never oversubscribes the CPUs.
	IntraWorkers int
	// IntraChunkSize overrides the parallel pruner's stage-1 chunk
	// granularity in bytes (0 = auto).
	IntraChunkSize int
	// PipelineWindowSize and PipelineRingDepth bound the pipelined
	// streaming pruner's window slabs and in-flight slab count per job
	// (0 = engine defaults); peak per-job input residency is their
	// product.
	PipelineWindowSize int
	PipelineRingDepth  int
	// ResultVariant enables the result cache for this batch: the
	// projection-variant half of the cache key (projection fingerprint
	// with the validate mode already folded in — see the public layer's
	// resultFingerprint). Empty leaves the cache out of the batch.
	// Only jobs whose sources expose in-memory bytes (prune.BytesSource)
	// take the cached path; streaming jobs are pruned as before.
	ResultVariant string
}

// BatchStats aggregates a batch.
type BatchStats struct {
	// Stats sums the per-job pruner stats; MaxDepth is the maximum.
	prune.Stats
	// BytesIn sums bytes read across jobs.
	BytesIn int64
	// Pruned and Failed count jobs by outcome; Skipped counts jobs never
	// started because the batch was cancelled.
	Pruned, Failed, Skipped int
}

// PruneBatch prunes every job against π through a bounded worker pool.
// Results are returned in job order. The batch stops early when ctx is
// cancelled or, with FailFast, on the first job error; the remaining
// jobs are marked with the cancellation error. The returned error is
// nil only if every job succeeded.
func (e *Engine) PruneBatch(ctx context.Context, d *dtd.DTD, pi dtd.NameSet, jobs []Job, opts BatchOptions) ([]JobResult, BatchStats, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = e.workers()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]JobResult, len(jobs))
	if len(jobs) == 0 {
		return results, BatchStats{}, nil
	}
	// Budget intra-document parallelism against the pool width: a batch
	// of large documents would otherwise run Workers × GOMAXPROCS
	// pruning goroutines.
	if opts.IntraWorkers <= 0 {
		opts.IntraWorkers = IntraBudget(runtime.GOMAXPROCS(0), workers)
	}

	// Compile π once for the whole batch (cached across batches too):
	// every worker shares the same immutable *dtd.Projection.
	proj := e.projectionFor(d, pi)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = e.runJob(ctx, d, pi, proj, jobs[i], opts)
				if results[i].Err != nil && opts.FailFast {
					cancel()
				}
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case next <- i:
		case <-ctx.Done():
			// Mark every unfed job as skipped, releasing its destination.
			for j := i; j < len(jobs); j++ {
				results[j] = JobResult{Name: jobs[j].Name, Err: ctx.Err()}
				closeDst(jobs[j].Dst)
			}
			break feed
		}
	}
	close(next)
	wg.Wait()

	var agg BatchStats
	var firstErr error
	for i := range results {
		r := &results[i]
		agg.ElementsIn += r.Stats.ElementsIn
		agg.ElementsOut += r.Stats.ElementsOut
		agg.TextIn += r.Stats.TextIn
		agg.TextOut += r.Stats.TextOut
		agg.ElementsSkipped += r.Stats.ElementsSkipped
		agg.TextSkipped += r.Stats.TextSkipped
		agg.BytesOut += r.Stats.BytesOut
		if r.Stats.MaxDepth > agg.MaxDepth {
			agg.MaxDepth = r.Stats.MaxDepth
		}
		agg.BytesIn += r.BytesIn
		switch {
		case r.Err == nil:
			agg.Pruned++
		case isContextErr(r.Err):
			agg.Skipped++
		default:
			agg.Failed++
			if firstErr == nil {
				firstErr = fmt.Errorf("engine: job %s: %w", r.Name, r.Err)
			}
		}
	}
	if firstErr == nil && ctx.Err() != nil && agg.Skipped > 0 {
		firstErr = ctx.Err()
	}
	if firstErr != nil && agg.Failed+agg.Skipped > 1 {
		firstErr = fmt.Errorf("%w (and %d more jobs failed or were skipped)", firstErr, agg.Failed+agg.Skipped-1)
	}
	return results, agg, firstErr
}

// runJob prunes one document, accounting bytes and metrics.
func (e *Engine) runJob(ctx context.Context, d *dtd.DTD, pi dtd.NameSet, proj *dtd.Projection, job Job, opts BatchOptions) JobResult {
	res := JobResult{Name: job.Name}
	if err := ctx.Err(); err != nil {
		res.Err = err
	} else {
		src := &countingReader{r: job.Src, ctx: ctx}
		start := time.Now()
		if !e.tryCachedJob(src, job, d, pi, proj, opts, &res) {
			res.Stats, res.Err = prune.Stream(job.Dst, src, d, pi, prune.StreamOptions{
				Validate:           opts.Validate,
				Projection:         proj,
				Engine:             opts.Engine,
				ParallelWorkers:    opts.IntraWorkers,
				ParallelChunkSize:  opts.IntraChunkSize,
				PipelineWindowSize: opts.PipelineWindowSize,
				PipelineRingDepth:  opts.PipelineRingDepth,
				Detail:             &res.Parallel,
				Pipeline:           &res.Pipeline,
			})
		}
		res.Elapsed = time.Since(start)
		res.BytesIn = src.n
		// A prune aborted by cancellation already carries the context
		// error (possibly wrapped by the pruner); errors.Is classifies it
		// as skipped. A job that failed on its own input before the batch
		// was cancelled keeps its root cause — overwriting it with
		// ctx.Err() would lose the only record of why the batch died —
		// with the cancellation noted alongside.
		if res.Err != nil && ctx.Err() != nil && !isContextErr(res.Err) {
			res.Err = fmt.Errorf("%w (batch cancelled: %v)", res.Err, ctx.Err())
		}
	}
	if cerr := closeDst(job.Dst); cerr != nil && res.Err == nil {
		res.Err = cerr
	}
	e.RecordPrune(res.BytesIn, res.Stats.BytesOut, res.Parallel, res.Pipeline, res.Err)
	return res
}

// tryCachedJob serves one batch job through the result cache, reporting
// whether it handled the job. Eligibility: the cache and a batch
// variant are configured, the engine is not forced pipelined (a
// streaming-semantics engine the cache deliberately bypasses), and the
// source exposes its whole input in memory. The file-identity fast path
// kicks in when the source also implements rescache.Identifier, so
// repeat runs over unchanged files skip rehashing. On a cold key the
// fill prunes the in-memory bytes with the shared compiled projection —
// the same spans the streaming path would emit — and the output lands
// in the cache; warm keys copy cached bytes straight to the
// destination.
func (e *Engine) tryCachedJob(src *countingReader, job Job, d *dtd.DTD, pi dtd.NameSet, proj *dtd.Projection, opts BatchOptions, res *JobResult) bool {
	if e.results == nil || opts.ResultVariant == "" || opts.Engine == prune.EnginePipelined {
		return false
	}
	data := src.InputBytes()
	if data == nil {
		// Not an in-memory source (or cancelled): the streaming path's own
		// InputBytes probe repeats the question, which is harmless — a nil
		// answer left nothing consumed.
		return false
	}
	var idp *rescache.Identity
	if ider, ok := job.Src.(rescache.Identifier); ok {
		if id, idOK := ider.ResultCacheIdentity(); idOK {
			idp = &id
		}
	}
	key := rescache.Key{
		Doc:     e.results.DigestFor(data, idp),
		Variant: opts.ResultVariant,
	}
	entry, g, stats, _, err := e.CachedGather(key, func() (*prune.Gather, prune.Stats, error) {
		return prune.StreamGather(data, d, pi, prune.StreamOptions{
			Validate:          opts.Validate,
			Projection:        proj,
			Engine:            opts.Engine,
			ParallelWorkers:   opts.IntraWorkers,
			ParallelChunkSize: opts.IntraChunkSize,
			Detail:            &res.Parallel,
		})
	})
	if err != nil {
		res.Err = err
		return true
	}
	res.Stats = stats
	if g != nil {
		_, werr := g.WriteTo(job.Dst)
		g.Close()
		res.Err = werr
	} else {
		_, werr := entry.WriteTo(job.Dst)
		res.Err = werr
	}
	return true
}

// RecordPrune credits one streaming prune into the engine's counters —
// batch jobs go through it, and serving layers that stream through
// Projector.PruneStream directly call it so /debug/vars style exports
// see every document, not only batch ones. Outcome classification
// matches the batch pool's: nil is a pruned document, a (possibly
// wrapped) context error is a skip counted in neither bucket, anything
// else is a prune error.
func (e *Engine) RecordPrune(bytesIn, bytesOut int64, det prune.ParallelDetail, pdet prune.PipelineDetail, err error) {
	e.m.bytesIn.Add(bytesIn)
	e.m.bytesOut.Add(bytesOut)
	if det.Workers > 0 {
		e.m.parallelPrunes.Add(1)
		if det.Fallback {
			e.m.parallelFallbacks.Add(1)
		}
		e.m.indexNanos.Add(det.IndexTime.Nanoseconds())
		e.m.fragmentNanos.Add(det.PruneTime.Nanoseconds())
		e.m.stitchNanos.Add(det.StitchTime.Nanoseconds())
	}
	if pdet.Workers > 0 {
		e.m.pipelinedPrunes.Add(1)
		if pdet.Fallback {
			e.m.pipelinedFallbacks.Add(1)
		}
		e.m.pipeReadNanos.Add(pdet.ReadTime.Nanoseconds())
		e.m.pipeIndexNanos.Add(pdet.IndexTime.Nanoseconds())
		e.m.pipePruneNanos.Add(pdet.PruneTime.Nanoseconds())
		e.m.pipeEmitNanos.Add(pdet.EmitTime.Nanoseconds())
		maxInt64(&e.m.peakWindowBytes, pdet.PeakWindowBytes)
	}
	switch {
	case err == nil:
		e.m.docsPruned.Add(1)
	case isContextErr(err):
		// Skipped, not failed; counted in neither bucket.
	default:
		e.m.pruneErrors.Add(1)
	}
}

// isContextErr reports whether err is a cancellation or deadline error,
// however deeply wrapped — a context error surfaced through the
// countingReader comes back as "prune: context canceled". An i/o
// deadline on the source (a server arming connection deadlines) is the
// same outcome by another mechanism: the prune was cut short, the
// document wasn't at fault.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, os.ErrDeadlineExceeded)
}

// IntraBudget divides procs CPU slots across width concurrent prunes:
// the per-document worker budget for intra-document parallelism, never
// below 1. PruneBatch applies it against the pool width; a server
// applies it against its admission-control limit so concurrent requests
// and batch jobs share one sizing rule.
func IntraBudget(procs, width int) int {
	if width < 1 {
		width = 1
	}
	if b := procs / width; b > 1 {
		return b
	}
	return 1
}

// closeDst closes the job destination if it is a Closer, so write-behind
// errors (a full disk at close) surface and file descriptors are bounded
// by the pool width, not the batch size.
func closeDst(dst io.Writer) error {
	if c, ok := dst.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// countingReader counts bytes and aborts reads once ctx is cancelled, so
// a fail-fast batch does not finish streaming multi-gigabyte inputs that
// no longer matter.
type countingReader struct {
	r   io.Reader
	ctx context.Context
	n   int64
}

// InputSize forwards the underlying reader's size so prune.Stream's
// auto-selection can still see it through the wrapper.
func (c *countingReader) InputSize() (int64, bool) {
	return prune.InputSize(c.r)
}

// InputBytes forwards an in-memory source (prune.BytesSource) through
// the counting wrapper. The contract is one call at the point of
// commitment, so the whole input is credited as consumed here — the
// prune takes it from memory instead of through Read.
func (c *countingReader) InputBytes() []byte {
	bs, ok := c.r.(prune.BytesSource)
	if !ok || c.ctx.Err() != nil {
		return nil
	}
	b := bs.InputBytes()
	c.n += int64(len(b))
	return b
}

func (c *countingReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
