package engine

import (
	"sync/atomic"
	"time"

	"xmlproj/internal/rescache"
)

// counters are the engine's live counters, updated with atomics so the
// hot paths never serialise on a metrics lock.
type counters struct {
	hits        atomic.Int64
	misses      atomic.Int64
	coalesced   atomic.Int64
	evictions   atomic.Int64
	inferences  atomic.Int64
	inferNanos  atomic.Int64
	docsPruned  atomic.Int64
	pruneErrors atomic.Int64
	bytesIn     atomic.Int64
	bytesOut    atomic.Int64
	projHits    atomic.Int64
	projMisses  atomic.Int64
	multiHits   atomic.Int64
	multiMisses atomic.Int64

	parallelPrunes    atomic.Int64
	parallelFallbacks atomic.Int64
	indexNanos        atomic.Int64
	fragmentNanos     atomic.Int64
	stitchNanos       atomic.Int64

	pipelinedPrunes    atomic.Int64
	pipelinedFallbacks atomic.Int64
	pipeReadNanos      atomic.Int64
	pipeIndexNanos     atomic.Int64
	pipePruneNanos     atomic.Int64
	pipeEmitNanos      atomic.Int64
	peakWindowBytes    atomic.Int64
}

// maxInt64 raises the gauge to v if v is larger (lock-free max).
func maxInt64(g *atomic.Int64, v int64) {
	for {
		cur := g.Load()
		if v <= cur || g.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Metrics is a point-in-time snapshot of the engine's counters.
type Metrics struct {
	// CacheHits counts InferCached calls answered from the cache;
	// CacheMisses counts calls that ran inference; Coalesced counts
	// calls that piggybacked on another caller's in-flight inference
	// (single-flight deduplication). Evictions counts LRU evictions.
	CacheHits, CacheMisses, Coalesced, Evictions int64
	// CacheEntries is the number of projectors currently cached.
	CacheEntries int
	// Inferences counts projector inferences actually executed and
	// InferenceTime their cumulative wall time.
	Inferences    int64
	InferenceTime time.Duration
	// DocsPruned / PruneErrors count batch jobs by outcome.
	DocsPruned, PruneErrors int64
	// BytesIn / BytesOut total the document bytes read and written by
	// batch pruning.
	BytesIn, BytesOut int64
	// ProjectionHits / ProjectionMisses count compiled-projection cache
	// lookups (a miss compiles π against the DTD's symbol table; calls
	// that piggyback on an in-flight compilation count as hits).
	ProjectionHits, ProjectionMisses int64
	// MultiHits / MultiMisses count fused multi-projection cache lookups
	// (a miss fuses the projector set into one decision table; calls that
	// piggyback on an in-flight fuse count as hits).
	MultiHits, MultiMisses int64
	// ParallelPrunes counts batch jobs that ran on the intra-document
	// parallel pruner; ParallelFallbacks the subset handed back to the
	// serial scanner (unindexable input). IndexTime, FragmentTime and
	// StitchTime are the cumulative per-stage wall times across those
	// jobs.
	ParallelPrunes, ParallelFallbacks int64
	IndexTime                         time.Duration
	FragmentTime                      time.Duration
	StitchTime                        time.Duration
	// PipelinedPrunes counts prunes that ran on the pipelined streaming
	// engine; PipelinedFallbacks the subset handed to the serial scanner
	// (token cap too small for the windowing invariants). The stage times
	// are cumulative wall times across those prunes, and PeakWindowBytes
	// is the largest window-slab residency any single prune reached.
	PipelinedPrunes, PipelinedFallbacks int64
	PipelineReadTime                    time.Duration
	PipelineIndexTime                   time.Duration
	PipelinePruneTime                   time.Duration
	PipelineEmitTime                    time.Duration
	PeakWindowBytes                     int64
	// ResultCache is the content-addressed pruned-output cache snapshot
	// (all zero when the cache is disabled).
	ResultCache rescache.Metrics
}

// Metrics returns a snapshot. Individual counters are each read
// atomically; the snapshot as a whole is not a consistent cut, which is
// fine for observability.
func (e *Engine) Metrics() Metrics {
	return Metrics{
		CacheHits:        e.m.hits.Load(),
		CacheMisses:      e.m.misses.Load(),
		Coalesced:        e.m.coalesced.Load(),
		Evictions:        e.m.evictions.Load(),
		CacheEntries:     e.CacheLen(),
		Inferences:       e.m.inferences.Load(),
		InferenceTime:    time.Duration(e.m.inferNanos.Load()),
		DocsPruned:       e.m.docsPruned.Load(),
		PruneErrors:      e.m.pruneErrors.Load(),
		BytesIn:          e.m.bytesIn.Load(),
		BytesOut:         e.m.bytesOut.Load(),
		ProjectionHits:   e.m.projHits.Load(),
		ProjectionMisses: e.m.projMisses.Load(),
		MultiHits:        e.m.multiHits.Load(),
		MultiMisses:      e.m.multiMisses.Load(),

		ParallelPrunes:    e.m.parallelPrunes.Load(),
		ParallelFallbacks: e.m.parallelFallbacks.Load(),
		IndexTime:         time.Duration(e.m.indexNanos.Load()),
		FragmentTime:      time.Duration(e.m.fragmentNanos.Load()),
		StitchTime:        time.Duration(e.m.stitchNanos.Load()),

		PipelinedPrunes:    e.m.pipelinedPrunes.Load(),
		PipelinedFallbacks: e.m.pipelinedFallbacks.Load(),
		PipelineReadTime:   time.Duration(e.m.pipeReadNanos.Load()),
		PipelineIndexTime:  time.Duration(e.m.pipeIndexNanos.Load()),
		PipelinePruneTime:  time.Duration(e.m.pipePruneNanos.Load()),
		PipelineEmitTime:   time.Duration(e.m.pipeEmitNanos.Load()),
		PeakWindowBytes:    e.m.peakWindowBytes.Load(),

		ResultCache: e.results.Snapshot(),
	}
}

// Map flattens the snapshot into export-friendly key/value pairs —
// the hook expvar-style publishers (the xmlprojd /debug/vars endpoint)
// serialise. Durations are exported in nanoseconds.
func (m Metrics) Map() map[string]any {
	return map[string]any{
		"cache_hits":              m.CacheHits,
		"cache_misses":            m.CacheMisses,
		"coalesced":               m.Coalesced,
		"evictions":               m.Evictions,
		"cache_entries":           m.CacheEntries,
		"inferences":              m.Inferences,
		"inference_nanos":         int64(m.InferenceTime),
		"docs_pruned":             m.DocsPruned,
		"prune_errors":            m.PruneErrors,
		"bytes_in":                m.BytesIn,
		"bytes_out":               m.BytesOut,
		"projection_hits":         m.ProjectionHits,
		"projection_misses":       m.ProjectionMisses,
		"multi_projection_hits":   m.MultiHits,
		"multi_projection_misses": m.MultiMisses,
		"parallel_prunes":         m.ParallelPrunes,
		"parallel_fallbacks":      m.ParallelFallbacks,
		"parallel_index_nanos":    int64(m.IndexTime),
		"parallel_fragment_nanos": int64(m.FragmentTime),
		"parallel_stitch_nanos":   int64(m.StitchTime),

		"pipelined_prunes":            m.PipelinedPrunes,
		"pipelined_fallbacks":         m.PipelinedFallbacks,
		"pipelined_read_nanos":        int64(m.PipelineReadTime),
		"pipelined_index_nanos":       int64(m.PipelineIndexTime),
		"pipelined_prune_nanos":       int64(m.PipelinePruneTime),
		"pipelined_emit_nanos":        int64(m.PipelineEmitTime),
		"pipelined_peak_window_bytes": m.PeakWindowBytes,

		"result_cache_hits":            m.ResultCache.Hits,
		"result_cache_misses":          m.ResultCache.Misses,
		"result_cache_coalesced":       m.ResultCache.Coalesced,
		"result_cache_evictions":       m.ResultCache.Evictions,
		"result_cache_bypasses":        m.ResultCache.Bypasses,
		"result_cache_identity_hits":   m.ResultCache.IdentityHits,
		"result_cache_identity_misses": m.ResultCache.IdentityMisses,
		"result_cache_entries":         m.ResultCache.Entries,
		"result_cache_bytes":           m.ResultCache.Bytes,
		"result_cache_budget_bytes":    m.ResultCache.Budget,
	}
}
