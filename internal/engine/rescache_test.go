package engine

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xmlproj/internal/prune"
	"xmlproj/internal/rescache"
)

const cachedDoc = `<bib><book><title>Projection</title><author>B</author><year>2006</year></book></bib>`

// memSource is an in-memory batch source that takes the zero-copy
// bytes path and (optionally) volunteers a file identity.
type memSource struct {
	data  []byte
	id    rescache.Identity
	hasID bool
	off   int
}

func (m *memSource) Read(p []byte) (int, error) {
	n := copy(p, m.data[m.off:])
	m.off += n
	if n == 0 {
		return 0, errEOF
	}
	return n, nil
}

var errEOF = errStr("eof")

type errStr string

func (e errStr) Error() string { return string(e) }

func (m *memSource) InputBytes() []byte                             { return m.data }
func (m *memSource) InputSize() (int64, bool)                       { return int64(len(m.data)), true }
func (m *memSource) ResultCacheIdentity() (rescache.Identity, bool) { return m.id, m.hasID }

// TestCachedGatherSingleFlight mirrors TestInferCachedSingleFlight one
// layer down: N concurrent cold CachedGather calls for one key run
// exactly one prune; the leader keeps the pooled Gather, the rest share
// the cached entry, and every caller sees identical bytes.
func TestCachedGatherSingleFlight(t *testing.T) {
	d := bib(t)
	pi := titleProjector(t, d)
	e := New(Options{ResultCacheBytes: 1 << 20})
	key := rescache.Key{Doc: rescache.DigestBytes([]byte(cachedDoc)), Variant: "fp"}

	var calls atomic.Int64
	fill := func() (*prune.Gather, prune.Stats, error) {
		calls.Add(1)
		time.Sleep(20 * time.Millisecond) // hold the flight open so others pile on
		return prune.StreamGather([]byte(cachedDoc), d, pi, prune.StreamOptions{})
	}

	want, _, err := prune.StreamGather([]byte(cachedDoc), d, pi, prune.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := want.AppendTo(nil)
	want.Close()

	const n = 8
	start := make(chan struct{})
	outs := make([][]byte, n)
	hits := make([]bool, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			entry, g, _, hit, err := e.CachedGather(key, fill)
			if err != nil {
				t.Errorf("CachedGather: %v", err)
				return
			}
			hits[i] = hit
			if g != nil {
				outs[i] = g.AppendTo(nil)
				g.Close()
			} else {
				outs[i] = entry.AppendTo(nil)
			}
		}(i)
	}
	close(start)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fill ran %d times, want 1", got)
	}
	var hitCount int
	for i := range outs {
		if !bytes.Equal(outs[i], wantBytes) {
			t.Fatalf("caller %d output differs:\n got %q\nwant %q", i, outs[i], wantBytes)
		}
		if hits[i] {
			hitCount++
		}
	}
	if hitCount != n-1 {
		t.Fatalf("%d callers reported hits, want %d (one leader)", hitCount, n-1)
	}
	m := e.Metrics().ResultCache
	if m.Misses != 1 || m.Coalesced != n-1 {
		t.Fatalf("result cache misses=%d coalesced=%d, want 1 and %d", m.Misses, m.Coalesced, n-1)
	}

	// Warm lookup: the entry survives, no new fill.
	entry, g, _, hit, err := e.CachedGather(key, fill)
	if err != nil || !hit || g != nil || entry == nil {
		t.Fatalf("warm CachedGather: entry=%v g=%v hit=%v err=%v", entry, g, hit, err)
	}
	if !bytes.Equal(entry.AppendTo(nil), wantBytes) {
		t.Fatalf("warm entry bytes differ")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("warm lookup ran fill (%d calls)", got)
	}
}

// TestCachedGatherUncacheableOutput: an output above the per-shard
// budget is served but never stored; later callers prune again.
func TestCachedGatherUncacheableOutput(t *testing.T) {
	d := bib(t)
	pi := titleProjector(t, d)
	// Budget so small every real output exceeds a shard's slice.
	e := New(Options{ResultCacheBytes: 16})
	key := rescache.Key{Doc: rescache.DigestBytes([]byte(cachedDoc)), Variant: "fp"}

	var calls atomic.Int64
	fill := func() (*prune.Gather, prune.Stats, error) {
		calls.Add(1)
		return prune.StreamGather([]byte(cachedDoc), d, pi, prune.StreamOptions{})
	}
	for i := 0; i < 2; i++ {
		entry, g, _, hit, err := e.CachedGather(key, fill)
		if err != nil {
			t.Fatal(err)
		}
		if hit || entry != nil || g == nil {
			t.Fatalf("round %d: uncacheable output: entry=%v hit=%v g=%v", i, entry, hit, g)
		}
		g.Close()
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("fill ran %d times, want 2 (nothing cached)", got)
	}
	if m := e.Metrics().ResultCache; m.Entries != 0 {
		t.Fatalf("uncacheable output was stored: %+v", m)
	}
}

// TestBatchResultCache: a batch with ResultVariant set serves repeat
// documents from the cache — byte-identical to the uncached run — and
// sources that volunteer a file identity skip rehashing on the second
// round.
func TestBatchResultCache(t *testing.T) {
	d := bib(t)
	pi := titleProjector(t, d)
	e := New(Options{ResultCacheBytes: 1 << 20})

	id := rescache.Identity{Dev: 1, Ino: 99, Size: int64(len(cachedDoc)), MTimeNanos: 7}
	runBatch := func(variant string) []byte {
		var out bytes.Buffer
		jobs := []Job{{
			Name: "doc",
			Src:  &memSource{data: []byte(cachedDoc), id: id, hasID: true},
			Dst:  &out,
		}}
		_, _, err := e.PruneBatch(context.Background(), d, pi, jobs, BatchOptions{
			Workers:       1,
			ResultVariant: variant,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}

	plain := runBatch("") // cache bypassed: the reference output
	first := runBatch("fp")
	second := runBatch("fp")
	if !bytes.Equal(first, plain) || !bytes.Equal(second, plain) {
		t.Fatalf("cached batch output differs from uncached:\nplain  %q\nfirst  %q\nsecond %q", plain, first, second)
	}

	m := e.Metrics().ResultCache
	if m.Misses != 1 || m.Hits != 1 {
		t.Fatalf("result cache misses=%d hits=%d, want 1 and 1", m.Misses, m.Hits)
	}
	if m.IdentityHits != 1 {
		t.Fatalf("identity fast path hits=%d, want 1 (second round memoized)", m.IdentityHits)
	}
	em := e.Metrics()
	if em.DocsPruned != 3 {
		t.Fatalf("docs pruned = %d, want 3 (cache hits still count)", em.DocsPruned)
	}
	if em.BytesIn != 3*int64(len(cachedDoc)) {
		t.Fatalf("bytes in = %d, want %d", em.BytesIn, 3*len(cachedDoc))
	}
}
