package engine

import (
	"xmlproj/internal/dtd"
	"xmlproj/internal/prune"
	"xmlproj/internal/rescache"
)

// ResultCache exposes the engine's content-addressed cache of pruned
// outputs; nil when disabled. Callers use it for digesting (with the
// file-identity memo) and for peek-style lookups (HEAD, CachedLen).
func (e *Engine) ResultCache() *rescache.Cache { return e.results }

// ProjectionFor exposes the compiled-projection cache so front doors
// that prune outside PruneBatch (the result-cache fill paths) still
// compile π once per (DTD, π) pair.
func (e *Engine) ProjectionFor(d *dtd.DTD, pi dtd.NameSet) *dtd.Projection {
	return e.projectionFor(d, pi)
}

// CachedGather serves one prune through the result cache with
// single-flight fill. On a hit (or when this caller coalesced onto
// another's fill) it returns the shared immutable entry with g == nil.
// On a miss the caller's fill runs: the returned g is the live pooled
// Gather — the caller keeps zero-copy ownership and must Close it —
// while the cache retains its own materialized copy (made here, at
// insert time, so pool reuse can never alias cached bytes). Outputs
// larger than a shard's budget are returned but not cached, and a
// caller that coalesced onto such a fill re-runs fill privately.
//
// With the cache disabled this degenerates to calling fill.
func (e *Engine) CachedGather(key rescache.Key, fill func() (*prune.Gather, prune.Stats, error)) (entry *rescache.Entry, g *prune.Gather, stats prune.Stats, hit bool, err error) {
	if e.results == nil {
		g, stats, err = fill()
		return nil, g, stats, false, err
	}
	entry, hit, err = e.results.GetOrFill(key, func() (*rescache.Entry, error) {
		gg, st, ferr := fill()
		if ferr != nil {
			return nil, ferr
		}
		g, stats = gg, st
		if !e.results.Cacheable(gg.Len()) {
			return nil, nil
		}
		return rescache.NewEntry(gg.AppendTo(make([]byte, 0, gg.Len())), st), nil
	})
	switch {
	case err != nil:
		return nil, nil, prune.Stats{}, false, err
	case hit:
		return entry, nil, entry.Stats, true, nil
	case g != nil:
		// This caller was the fill leader: it owns the pooled Gather.
		return entry, g, stats, false, nil
	default:
		// Coalesced onto a leader whose output was too large to cache:
		// nothing shareable came back, so prune privately.
		g, stats, err = fill()
		return nil, g, stats, false, err
	}
}
