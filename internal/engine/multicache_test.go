package engine

import (
	"sync"
	"testing"

	"xmlproj/internal/dtd"
)

func multiTestSets() []dtd.NameSet {
	return []dtd.NameSet{
		dtd.NewNameSet("bib", "book", "title", "title#text"),
		dtd.NewNameSet("bib", "book", "author", "author#text"),
		dtd.NewNameSet("bib", "book", "year"),
	}
}

func TestMultiProjectionForCachesFusedTable(t *testing.T) {
	d := bib(t)
	e := New(Options{})
	pis := multiTestSets()

	mp1, projs, hit := e.MultiProjectionFor(d, pis)
	if mp1 == nil || hit {
		t.Fatalf("cold lookup: mp=%v hit=%v", mp1, hit)
	}
	if len(projs) != len(pis) {
		t.Fatalf("got %d compiled members, want %d", len(projs), len(pis))
	}
	if mp1.N() != len(pis) {
		t.Fatalf("fused table holds %d projectors, want %d", mp1.N(), len(pis))
	}

	mp2, _, hit := e.MultiProjectionFor(d, pis)
	if mp2 != mp1 || !hit {
		t.Fatalf("warm lookup: same table=%v hit=%v", mp2 == mp1, hit)
	}

	// Member order is part of the key: bit j answers for member j.
	swapped := []dtd.NameSet{pis[1], pis[0], pis[2]}
	mp3, _, hit := e.MultiProjectionFor(d, swapped)
	if mp3 == mp1 || hit {
		t.Fatalf("reordered set answered from cache (hit=%v)", hit)
	}

	m := e.Metrics()
	if m.MultiHits != 1 || m.MultiMisses != 2 {
		t.Fatalf("multi hits/misses = %d/%d, want 1/2", m.MultiHits, m.MultiMisses)
	}
	// Every member compile beyond the first per π is a projection hit.
	if m.ProjectionMisses != 3 {
		t.Fatalf("projection misses = %d, want 3", m.ProjectionMisses)
	}
	for _, k := range []string{"multi_projection_hits", "multi_projection_misses"} {
		if _, ok := m.Map()[k]; !ok {
			t.Fatalf("metrics map lacks %q", k)
		}
	}
}

func TestMultiProjectionForOversizeSet(t *testing.T) {
	d := bib(t)
	e := New(Options{})
	pis := make([]dtd.NameSet, dtd.MaxMultiProjections+1)
	for j := range pis {
		pis[j] = dtd.NewNameSet("bib", "book")
	}
	mp, projs, hit := e.MultiProjectionFor(d, pis)
	if mp != nil || hit {
		t.Fatalf("oversize set fused: mp=%v hit=%v", mp, hit)
	}
	if len(projs) != len(pis) {
		t.Fatalf("got %d compiled members, want %d", len(projs), len(pis))
	}
	if m := e.Metrics(); m.MultiHits != 0 || m.MultiMisses != 0 {
		t.Fatalf("oversize set moved fuse counters: %d/%d", m.MultiHits, m.MultiMisses)
	}
}

func TestMultiProjectionForSingleFlight(t *testing.T) {
	d := bib(t)
	e := New(Options{})
	pis := multiTestSets()
	const callers = 16
	tables := make([]*dtd.MultiProjection, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tables[i], _, _ = e.MultiProjectionFor(d, pis)
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if tables[i] != tables[0] {
			t.Fatalf("caller %d got a different fused table", i)
		}
	}
	if m := e.Metrics(); m.MultiMisses != 1 {
		t.Fatalf("%d fuses ran for one key, want 1", m.MultiMisses)
	}
}
