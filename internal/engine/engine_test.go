package engine

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xmlproj/internal/core"
	"xmlproj/internal/dtd"
	"xmlproj/internal/xpath"
	"xmlproj/internal/xpathl"
)

const bibDTD = `
<!ELEMENT bib (book*)>
<!ELEMENT book (title, author+, year?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`

func bib(t *testing.T) *dtd.DTD {
	t.Helper()
	d, err := dtd.ParseString(bibDTD, "bib")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func inferTitle(t *testing.T, d *dtd.DTD) func() (*core.Projector, error) {
	t.Helper()
	e := xpath.MustParse("//book/title")
	paths, err := xpathl.FromQuery(e)
	if err != nil {
		t.Fatal(err)
	}
	return func() (*core.Projector, error) {
		return core.InferMaterialized(d, paths)
	}
}

// TestInferCachedSingleFlight: N concurrent requests for one cold key
// run exactly one inference; everyone gets the same projector.
func TestInferCachedSingleFlight(t *testing.T) {
	d := bib(t)
	e := New(Options{})
	key := Key{Schema: "s", Bunch: "b", Mode: 0}

	var calls atomic.Int64
	base := inferTitle(t, d)
	slow := func() (*core.Projector, error) {
		calls.Add(1)
		time.Sleep(20 * time.Millisecond) // hold the flight open so others pile on
		return base()
	}

	const N = 8
	var wg sync.WaitGroup
	prs := make([]*core.Projector, N)
	errs := make([]error, N)
	start := make(chan struct{})
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			prs[i], errs[i] = e.InferCached(key, slow)
		}(i)
	}
	close(start)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("inference ran %d times for one key, want 1", got)
	}
	for i := 0; i < N; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if prs[i] != prs[0] {
			t.Fatalf("caller %d got a different projector instance", i)
		}
	}
	m := e.Metrics()
	if m.Inferences != 1 || m.CacheMisses != 1 {
		t.Fatalf("metrics after cold burst: %+v", m)
	}
	if m.Coalesced != N-1 {
		t.Fatalf("Coalesced = %d, want %d", m.Coalesced, N-1)
	}

	// Warm cache: another concurrent burst performs zero inferences.
	var wg2 sync.WaitGroup
	for i := 0; i < N; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			if _, err := e.InferCached(key, slow); err != nil {
				t.Error(err)
			}
		}()
	}
	wg2.Wait()
	m = e.Metrics()
	if m.Inferences != 1 {
		t.Fatalf("warm cache still inferred: %+v", m)
	}
	if m.CacheHits != N {
		t.Fatalf("CacheHits = %d, want %d", m.CacheHits, N)
	}
}

// TestInferCachedErrorNotCached: a failed inference is reported to every
// waiter but not cached, so the next request retries.
func TestInferCachedErrorNotCached(t *testing.T) {
	e := New(Options{})
	key := Key{Schema: "s", Bunch: "bad"}
	var calls atomic.Int64
	fail := func() (*core.Projector, error) {
		calls.Add(1)
		return nil, fmt.Errorf("boom")
	}
	if _, err := e.InferCached(key, fail); err == nil {
		t.Fatal("error swallowed")
	}
	if _, err := e.InferCached(key, fail); err == nil {
		t.Fatal("error cached as success")
	}
	if calls.Load() != 2 {
		t.Fatalf("failed inference not retried: %d calls", calls.Load())
	}
	if e.CacheLen() != 0 {
		t.Fatal("error cached")
	}
}

// TestCacheEviction: the LRU stays bounded and evicts the cold end.
func TestCacheEviction(t *testing.T) {
	d := bib(t)
	e := New(Options{CacheSize: 2})
	infer := inferTitle(t, d)
	for i := 0; i < 4; i++ {
		if _, err := e.InferCached(Key{Bunch: fmt.Sprint(i)}, infer); err != nil {
			t.Fatal(err)
		}
	}
	if e.CacheLen() != 2 {
		t.Fatalf("cache size = %d, want 2", e.CacheLen())
	}
	// Key 0 and 1 were evicted; 2 and 3 remain.
	var calls atomic.Int64
	counting := func() (*core.Projector, error) { calls.Add(1); return infer() }
	e.InferCached(Key{Bunch: "3"}, counting)
	e.InferCached(Key{Bunch: "0"}, counting)
	if calls.Load() != 1 {
		t.Fatalf("want 1 re-inference (evicted key), got %d", calls.Load())
	}
	if m := e.Metrics(); m.Evictions == 0 {
		t.Fatalf("no evictions recorded: %+v", m)
	}
	// Disabled cache still single-flights but stores nothing.
	off := New(Options{CacheSize: -1})
	off.InferCached(Key{Bunch: "x"}, infer)
	if off.CacheLen() != 0 {
		t.Fatal("disabled cache stored an entry")
	}
}

func batchJobs(n int) ([]Job, []*bytes.Buffer) {
	jobs := make([]Job, n)
	outs := make([]*bytes.Buffer, n)
	for i := range jobs {
		outs[i] = &bytes.Buffer{}
		doc := fmt.Sprintf(`<bib><book><title>T%d</title><author>A%d</author></book></bib>`, i, i)
		jobs[i] = Job{Name: fmt.Sprintf("doc%d", i), Src: strings.NewReader(doc), Dst: outs[i]}
	}
	return jobs, outs
}

func titleProjector(t *testing.T, d *dtd.DTD) dtd.NameSet {
	t.Helper()
	pr, err := inferTitle(t, d)()
	if err != nil {
		t.Fatal(err)
	}
	return pr.Names
}

// TestPruneBatch: every document is pruned, results stay in job order,
// stats aggregate.
func TestPruneBatch(t *testing.T) {
	d := bib(t)
	e := New(Options{})
	pi := titleProjector(t, d)
	jobs, outs := batchJobs(20)
	results, agg, err := e.PruneBatch(context.Background(), d, pi, jobs, BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Name != fmt.Sprintf("doc%d", i) {
			t.Fatalf("result %d out of order: %s", i, r.Name)
		}
		if r.Err != nil {
			t.Fatalf("job %s: %v", r.Name, r.Err)
		}
		want := fmt.Sprintf("<title>T%d</title>", i)
		if !strings.Contains(outs[i].String(), want) {
			t.Fatalf("job %d output = %s", i, outs[i].String())
		}
		if strings.Contains(outs[i].String(), "A") {
			t.Fatalf("job %d authors survived: %s", i, outs[i].String())
		}
	}
	if agg.Pruned != 20 || agg.Failed != 0 || agg.Skipped != 0 {
		t.Fatalf("aggregate outcome: %+v", agg)
	}
	if agg.ElementsOut != 20*3 || agg.BytesIn == 0 || agg.BytesOut == 0 || agg.MaxDepth != 3 {
		t.Fatalf("aggregate stats: %+v", agg)
	}
	m := e.Metrics()
	if m.DocsPruned != 20 || m.BytesIn != agg.BytesIn || m.BytesOut != agg.BytesOut {
		t.Fatalf("metrics: %+v", m)
	}
}

// TestPruneBatchKeepGoing: without FailFast a bad document fails alone;
// every other job still completes.
func TestPruneBatchKeepGoing(t *testing.T) {
	d := bib(t)
	e := New(Options{})
	pi := titleProjector(t, d)
	jobs, outs := batchJobs(6)
	jobs[2].Src = strings.NewReader(`<bib><unknown/></bib>`)
	results, agg, err := e.PruneBatch(context.Background(), d, pi, jobs, BatchOptions{Workers: 2})
	if err == nil {
		t.Fatal("batch error swallowed")
	}
	if results[2].Err == nil {
		t.Fatal("bad job reported success")
	}
	if agg.Pruned != 5 || agg.Failed != 1 || agg.Skipped != 0 {
		t.Fatalf("aggregate outcome: %+v", agg)
	}
	for i := range jobs {
		if i == 2 {
			continue
		}
		if results[i].Err != nil || !strings.Contains(outs[i].String(), "<title>") {
			t.Fatalf("job %d did not complete: err=%v out=%s", i, results[i].Err, outs[i].String())
		}
	}
}

// TestPruneBatchFailFast: with FailFast the remaining jobs are skipped
// and marked with the cancellation error.
func TestPruneBatchFailFast(t *testing.T) {
	d := bib(t)
	e := New(Options{})
	pi := titleProjector(t, d)
	const n = 64
	jobs, _ := batchJobs(n)
	jobs[0].Src = strings.NewReader(`not xml at all <<<`)
	results, agg, err := e.PruneBatch(context.Background(), d, pi, jobs, BatchOptions{Workers: 1, FailFast: true})
	if err == nil {
		t.Fatal("batch error swallowed")
	}
	if results[0].Err == nil {
		t.Fatal("bad job reported success")
	}
	if agg.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", agg.Failed)
	}
	if agg.Skipped == 0 {
		t.Fatalf("fail-fast skipped nothing: %+v", agg)
	}
	for _, r := range results[1:] {
		if r.Err != nil && r.Err != context.Canceled {
			t.Fatalf("job %s: unexpected error %v", r.Name, r.Err)
		}
	}
}

// TestPruneBatchContextCancel: a cancelled context stops the batch.
func TestPruneBatchContextCancel(t *testing.T) {
	d := bib(t)
	e := New(Options{})
	pi := titleProjector(t, d)
	jobs, _ := batchJobs(16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the batch starts
	results, agg, err := e.PruneBatch(ctx, d, pi, jobs, BatchOptions{Workers: 4})
	if err == nil {
		t.Fatal("cancelled batch reported success")
	}
	if agg.Pruned != 0 {
		t.Fatalf("cancelled batch pruned %d jobs", agg.Pruned)
	}
	for _, r := range results {
		if r.Err == nil {
			t.Fatalf("job %s ran after cancellation", r.Name)
		}
	}
}

// TestFingerprint: stable, collision-resistant across part boundaries.
func TestFingerprint(t *testing.T) {
	if Fingerprint("a", "bc") == Fingerprint("ab", "c") {
		t.Fatal("fingerprint collides across part boundaries")
	}
	if Fingerprint("x") != Fingerprint("x") {
		t.Fatal("fingerprint not deterministic")
	}
}

// TestProjectionCache: a batch compiles π against the symbol table once;
// later batches for the same (DTD, π) workload reuse the compilation,
// and the same name set built independently fingerprints to the same
// cache entry.
func TestProjectionCache(t *testing.T) {
	d := bib(t)
	e := New(Options{})
	pi := titleProjector(t, d)

	jobs, _ := batchJobs(8)
	if _, _, err := e.PruneBatch(context.Background(), d, pi, jobs, BatchOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.ProjectionMisses != 1 || m.ProjectionHits != 0 {
		t.Fatalf("first batch: projection hits=%d misses=%d", m.ProjectionHits, m.ProjectionMisses)
	}

	jobs2, _ := batchJobs(8)
	if _, _, err := e.PruneBatch(context.Background(), d, pi, jobs2, BatchOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	m = e.Metrics()
	if m.ProjectionMisses != 1 || m.ProjectionHits != 1 {
		t.Fatalf("second batch: projection hits=%d misses=%d", m.ProjectionHits, m.ProjectionMisses)
	}

	// An independently built but equal name set is the same workload.
	cp := dtd.NameSet{}
	for n := range pi {
		cp[n] = struct{}{}
	}
	if e.projectionFor(d, cp) != e.projectionFor(d, pi) {
		t.Fatal("equal name sets compiled to distinct projections")
	}

	// A different π is a different entry.
	e.projectionFor(d, dtd.NewNameSet("bib"))
	m = e.Metrics()
	if m.ProjectionMisses != 2 {
		t.Fatalf("distinct π did not miss: %+v", m)
	}
}

// TestProjectionForSingleFlight: concurrent cold requests for one
// workload share a single compilation.
func TestProjectionForSingleFlight(t *testing.T) {
	d := bib(t)
	e := New(Options{})
	pi := titleProjector(t, d)

	var wg sync.WaitGroup
	got := make([]*dtd.Projection, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = e.projectionFor(d, pi)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent callers saw distinct projections")
		}
	}
	m := e.Metrics()
	if m.ProjectionMisses != 1 {
		t.Fatalf("want exactly one compilation, got %d misses", m.ProjectionMisses)
	}
	if m.ProjectionHits != 15 {
		t.Fatalf("want 15 hits (cached or coalesced), got %d", m.ProjectionHits)
	}
}
