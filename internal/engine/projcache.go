package engine

import (
	"container/list"
	"sort"
	"sync"

	"xmlproj/internal/dtd"
)

// projKey identifies a compiled projection: the grammar by identity (a
// *dtd.DTD is immutable after parsing, and its symbol table — which the
// compiled projection indexes into — is bound to that same pointer) and
// π by fingerprint.
type projKey struct {
	d  *dtd.DTD
	pi string
}

// projEntry is one cached compiled projection.
type projEntry struct {
	key projKey
	p   *dtd.Projection
}

// projFlight is one in-flight compilation; concurrent requests for the
// same key block on done and share p. Compilation cannot fail, so there
// is no error to share.
type projFlight struct {
	done chan struct{}
	p    *dtd.Projection
}

// projCache caches compiled projections with the same LRU +
// single-flight discipline as the projector cache: a 10k-document batch
// compiles π against the symbol table once, and concurrent batches for
// the same workload share that one compilation.
type projCache struct {
	mu     sync.Mutex
	lru    *list.List // *projEntry, most recently used first
	idx    map[projKey]*list.Element
	flight map[projKey]*projFlight
}

func newProjCache() *projCache {
	return &projCache{
		lru:    list.New(),
		idx:    make(map[projKey]*list.Element),
		flight: make(map[projKey]*projFlight),
	}
}

// projectionFor returns the compiled form of π against d, compiling on a
// cache miss. Calls that piggyback on another caller's in-flight
// compilation count as hits.
func (e *Engine) projectionFor(d *dtd.DTD, pi dtd.NameSet) *dtd.Projection {
	c := e.proj
	key := projKey{d: d, pi: piFingerprint(pi)}
	c.mu.Lock()
	if el, ok := c.idx[key]; ok {
		c.lru.MoveToFront(el)
		p := el.Value.(*projEntry).p
		c.mu.Unlock()
		e.m.projHits.Add(1)
		return p
	}
	if f, ok := c.flight[key]; ok {
		c.mu.Unlock()
		<-f.done
		e.m.projHits.Add(1)
		return f.p
	}
	f := &projFlight{done: make(chan struct{})}
	c.flight[key] = f
	c.mu.Unlock()

	e.m.projMisses.Add(1)
	f.p = d.CompileProjection(pi)

	c.mu.Lock()
	delete(c.flight, key)
	if cap := e.cacheCap(); cap > 0 {
		c.idx[key] = c.lru.PushFront(&projEntry{key: key, p: f.p})
		for c.lru.Len() > cap {
			cold := c.lru.Back()
			c.lru.Remove(cold)
			delete(c.idx, cold.Value.(*projEntry).key)
		}
	}
	c.mu.Unlock()
	close(f.done)
	return f.p
}

// piFingerprint canonicalises π: names sorted, then hashed
// length-delimited, so equal sets fingerprint equally regardless of
// iteration order.
func piFingerprint(pi dtd.NameSet) string {
	names := make([]string, 0, len(pi))
	for n := range pi {
		names = append(names, string(n))
	}
	sort.Strings(names)
	return Fingerprint(names...)
}
