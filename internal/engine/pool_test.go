package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"

	"xmlproj/internal/prune"
)

// cancelAfterReader serves its document, then cancels the batch context
// instead of returning EOF — the next read through the countingReader
// surfaces the context error mid-document.
type cancelAfterReader struct {
	data   []byte
	cancel context.CancelFunc
}

func (r *cancelAfterReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		r.cancel()
		return 0, nil // countingReader reports ctx.Err() on the retry
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// TestBatchWrappedContextClassifiedSkipped: a job aborted mid-read by
// cancellation carries the context error wrapped by the pruner
// ("prune: context canceled"), not the bare sentinel. It must count as
// Skipped, not Failed, and not bump the engine's error metric.
func TestBatchWrappedContextClassifiedSkipped(t *testing.T) {
	d := bib(t)
	e := New(Options{})
	pi := titleProjector(t, d)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := []Job{{
		Name: "aborted",
		Src:  &cancelAfterReader{data: []byte(`<bib><book><title>T`), cancel: cancel},
		Dst:  &bytes.Buffer{},
	}}
	results, agg, err := e.PruneBatch(ctx, d, pi, jobs, BatchOptions{Workers: 1})
	if err == nil {
		t.Fatal("cancelled batch reported success")
	}
	rerr := results[0].Err
	if rerr == nil {
		t.Fatal("aborted job reported success")
	}
	if !errors.Is(rerr, context.Canceled) {
		t.Fatalf("job error %v does not unwrap to context.Canceled", rerr)
	}
	if rerr == context.Canceled {
		t.Fatalf("job error is the bare sentinel; expected the pruner's wrapped form")
	}
	if agg.Skipped != 1 || agg.Failed != 0 {
		t.Fatalf("wrapped context error misclassified: %+v", agg)
	}
	if m := e.Metrics(); m.PruneErrors != 0 {
		t.Fatalf("skipped job counted as prune error: %+v", m)
	}
}

// badDocCancelReader delivers an invalid document and cancels the
// batch context together with the final chunk, so the job's genuine
// input failure races with — and must survive — the cancellation.
type badDocCancelReader struct {
	data   []byte
	cancel context.CancelFunc
}

func (r *badDocCancelReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	if len(r.data) == 0 {
		// Cancel inside the read: the countingReader's pre-read check
		// already passed, so the pruner sees the whole bad document and
		// fails on it while ctx is already cancelled.
		r.cancel()
		return n, io.EOF
	}
	return n, nil
}

// TestBatchPreservesRootCauseOnCancel: a job that failed on bad input
// while the batch was being cancelled keeps its root-cause error (the
// old code overwrote it with ctx.Err(), losing the only record of what
// was wrong) and still counts as Failed.
func TestBatchPreservesRootCauseOnCancel(t *testing.T) {
	d := bib(t)
	e := New(Options{})
	pi := titleProjector(t, d)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := []Job{{
		Name: "bad",
		Src:  &badDocCancelReader{data: []byte(`<bib><zzz/></bib>`), cancel: cancel},
		Dst:  &bytes.Buffer{},
	}}
	results, agg, err := e.PruneBatch(ctx, d, pi, jobs, BatchOptions{Workers: 1})
	if err == nil {
		t.Fatal("failed batch reported success")
	}
	rerr := results[0].Err
	if rerr == nil {
		t.Fatal("bad job reported success")
	}
	if !strings.Contains(rerr.Error(), "zzz") {
		t.Fatalf("root cause lost: %v", rerr)
	}
	if !strings.Contains(rerr.Error(), "batch cancelled") {
		t.Fatalf("cancellation not recorded alongside the root cause: %v", rerr)
	}
	if errors.Is(rerr, context.Canceled) {
		t.Fatalf("genuine input failure classifies as a context error: %v", rerr)
	}
	if agg.Failed != 1 || agg.Skipped != 0 {
		t.Fatalf("root-cause failure misclassified: %+v", agg)
	}
	if !strings.Contains(err.Error(), "zzz") {
		t.Fatalf("batch error lost the root cause: %v", err)
	}
}

// TestIntraBudget: the worker-budget rule divides the CPUs across the
// pool width and never goes below one.
func TestIntraBudget(t *testing.T) {
	cases := []struct{ procs, width, want int }{
		{8, 4, 2},
		{4, 4, 1},
		{4, 8, 1},
		{4, 1, 4},
		{4, 0, 4},
		{1, 3, 1},
	}
	for _, c := range cases {
		if got := IntraBudget(c.procs, c.width); got != c.want {
			t.Errorf("IntraBudget(%d, %d) = %d, want %d", c.procs, c.width, got, c.want)
		}
	}
}

// TestBatchBoundsIntraWorkers: with IntraWorkers unset, a parallel
// batch budgets each job's intra-document workers against the pool
// width, so total pruning goroutines stay ~GOMAXPROCS instead of
// Workers × GOMAXPROCS.
func TestBatchBoundsIntraWorkers(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	d := bib(t)
	e := New(Options{})
	pi := titleProjector(t, d)

	const workers = 2
	jobs := make([]Job, 4)
	outs := make([]*bytes.Buffer, len(jobs))
	for i := range jobs {
		outs[i] = &bytes.Buffer{}
		doc := fmt.Sprintf(`<bib><book><title>T%d</title><author>A%d</author></book></bib>`, i, i)
		jobs[i] = Job{Name: fmt.Sprintf("doc%d", i), Src: strings.NewReader(doc), Dst: outs[i]}
	}
	results, _, err := e.PruneBatch(context.Background(), d, pi, jobs, BatchOptions{
		Workers: workers,
		Engine:  prune.EngineParallel, // force the intra-document pruner regardless of size
	})
	if err != nil {
		t.Fatal(err)
	}
	wantBudget := IntraBudget(4, workers) // 2
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("job %s: %v", r.Name, r.Err)
		}
		if r.Parallel.Workers == 0 {
			t.Fatalf("job %s did not run the parallel pruner", r.Name)
		}
		if r.Parallel.Workers > wantBudget {
			t.Fatalf("job %s ran %d intra workers; budget for %d batch workers on 4 CPUs is %d",
				r.Name, r.Parallel.Workers, workers, wantBudget)
		}
	}
}
