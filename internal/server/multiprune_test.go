package server

import (
	"bytes"
	"encoding/json"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// readParts decodes a multipart/mixed multiprune response into its
// parts, in order.
type prunePart struct {
	header map[string][]string
	body   []byte
}

func readParts(t *testing.T, resp *http.Response, body []byte) []prunePart {
	t.Helper()
	mt, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil || mt != "multipart/mixed" {
		t.Fatalf("Content-Type = %q (%v), want multipart/mixed", resp.Header.Get("Content-Type"), err)
	}
	mr := multipart.NewReader(bytes.NewReader(body), params["boundary"])
	var parts []prunePart
	for {
		p, err := mr.NextPart()
		if err == io.EOF {
			return parts
		}
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(p)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, prunePart{header: p.Header, body: data})
	}
}

// TestMultipruneByteIdentical: each part of a multiprune response holds
// exactly the bytes a serial /prune of that projector returns, in
// request order, for named projections and ad-hoc proj specs alike.
func TestMultipruneByteIdentical(t *testing.T) {
	s := newTestServer(t, Options{})
	if err := s.AddProjection("authors", "bib", false, "//book/author"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	serialOf := func(url string) []byte {
		resp, got := postPrune(t, ts, url, strings.NewReader(bibDoc))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", url, resp.StatusCode, got)
		}
		return got
	}
	wants := [][]byte{
		serialOf("/prune?projection=titles"),
		serialOf("/prune?projection=authors"),
		serialOf("/prune?schema=bib&q=%2F%2Fbook%2Fyear"),
	}

	url := "/multiprune?projection=titles&projection=authors&proj=%2F%2Fbook%2Fyear&schema=bib"
	resp, body := postPrune(t, ts, url, strings.NewReader(bibDoc))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	parts := readParts(t, resp, body)
	if len(parts) != 3 {
		t.Fatalf("got %d parts, want 3", len(parts))
	}
	labels := []string{"titles", "authors", "proj0"}
	for j, part := range parts {
		if got := part.header["X-Projection"]; len(got) != 1 || got[0] != labels[j] {
			t.Fatalf("part %d label = %v, want %q", j, got, labels[j])
		}
		if e := part.header["X-Prune-Error"]; len(e) != 0 {
			t.Fatalf("part %d carries error %v", j, e)
		}
		if !bytes.Equal(part.body, wants[j]) {
			t.Fatalf("part %d differs from serial /prune\nmulti:  %q\nserial: %q", j, part.body, wants[j])
		}
	}
}

// TestMultipruneMixedVerdicts: a projector that descends into a broken
// region fails its part while a projector that discards that region
// still delivers — verdicts are per projector within one response.
func TestMultipruneMixedVerdicts(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The undeclared <x/> hides inside title: the author projector
	// discards title and skips it syntax-only, the title projector
	// descends into it and trips over the unknown element.
	invalid := `<bib><book><title>T<x/></title><author>A</author></book></bib>`
	url := "/multiprune?schema=bib" +
		"&proj=%2F%2Fbook%2Fauthor" + // discards title: never sees <x/>
		"&proj=%2F%2Fbook%2Ftitle" // keeps title: fails on <x/>
	resp, body := postPrune(t, ts, url, strings.NewReader(invalid))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	parts := readParts(t, resp, body)
	if len(parts) != 2 {
		t.Fatalf("got %d parts, want 2", len(parts))
	}
	if e := parts[0].header["X-Prune-Error"]; len(e) != 0 {
		t.Fatalf("author projector failed: %v", e)
	}
	if len(parts[0].body) == 0 {
		t.Fatal("author projector returned no output")
	}
	if e := parts[1].header["X-Prune-Error"]; len(e) == 0 {
		t.Fatal("title projector accepted the undeclared element")
	}
	if len(parts[1].body) != 0 {
		t.Fatalf("failed part carries a body: %q", parts[1].body)
	}
}

// TestMultipruneRejections: the resolver's failure statuses.
func TestMultipruneRejections(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		url    string
		status int
	}{
		{"/multiprune", http.StatusBadRequest},
		{"/multiprune?projection=nosuch", http.StatusNotFound},
		{"/multiprune?proj=%2F%2Fbook", http.StatusBadRequest}, // proj without schema
		{"/multiprune?schema=nosuch&proj=%2F%2Fbook", http.StatusNotFound},
		{"/multiprune?schema=bib&proj=%28%28%28", http.StatusBadRequest}, // unparsable query
	}
	for _, c := range cases {
		resp, body := postPrune(t, ts, c.url, strings.NewReader(bibDoc))
		if resp.StatusCode != c.status {
			t.Fatalf("%s: status %d, want %d: %s", c.url, resp.StatusCode, c.status, body)
		}
	}
}

// TestMultipruneCounters: the /debug/vars counters new with multiprune —
// request count, fan-out, fused-table cache hits/misses, and the
// engine's multi-projection cache counters — move as requests run.
func TestMultipruneCounters(t *testing.T) {
	s := newTestServer(t, Options{})
	if err := s.AddProjection("authors", "bib", false, "//book/author"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	vars := func() (server, engine map[string]any) {
		resp, err := http.Get(ts.URL + "/debug/vars")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/debug/vars: %d", resp.StatusCode)
		}
		var v struct {
			Engine map[string]any `json:"engine"`
			Server map[string]any `json:"server"`
		}
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		return v.Server, v.Engine
	}
	num := func(m map[string]any, k string) float64 {
		v, ok := m[k].(float64)
		if !ok {
			t.Fatalf("vars key %q missing or not numeric: %v", k, m[k])
		}
		return v
	}

	sv0, ev0 := vars()
	url := "/multiprune?projection=titles&projection=authors"
	for i := 0; i < 2; i++ {
		resp, body := postPrune(t, ts, url, strings.NewReader(bibDoc))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	sv1, ev1 := vars()

	if got := num(sv1, "multi_requests") - num(sv0, "multi_requests"); got != 2 {
		t.Fatalf("multi_requests moved by %v, want 2", got)
	}
	if got := num(sv1, "multi_fanout") - num(sv0, "multi_fanout"); got != 4 {
		t.Fatalf("multi_fanout moved by %v, want 4", got)
	}
	// First request fuses the table (miss), the second reuses it (hit).
	if got := num(sv1, "multi_table_misses") - num(sv0, "multi_table_misses"); got != 1 {
		t.Fatalf("multi_table_misses moved by %v, want 1", got)
	}
	if got := num(sv1, "multi_table_hits") - num(sv0, "multi_table_hits"); got != 1 {
		t.Fatalf("multi_table_hits moved by %v, want 1", got)
	}
	if got := num(ev1, "multi_projection_misses") - num(ev0, "multi_projection_misses"); got != 1 {
		t.Fatalf("engine multi_projection_misses moved by %v, want 1", got)
	}
	if got := num(ev1, "multi_projection_hits") - num(ev0, "multi_projection_hits"); got != 1 {
		t.Fatalf("engine multi_projection_hits moved by %v, want 1", got)
	}

	// The pruned documents count toward the engine's documents/bytes too:
	// two requests × two projectors.
	if got := num(ev1, "docs_pruned") - num(ev0, "docs_pruned"); got != 4 {
		t.Fatalf("docs_pruned moved by %v, want 4", got)
	}
}
