package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"xmlproj"
)

const bibDTD = `
<!ELEMENT bib (book*)>
<!ELEMENT book (title, author+, year?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`

const bibDoc = `<bib><book><title>Commedia</title><author>Dante</author><year>1313</year></book><book><title>Decameron</title><author>Boccaccio</author></book></bib>`

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = quietLogger()
	}
	s := New(opts)
	d, err := xmlproj.ParseDTDString(bibDTD, "bib")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddSchema("bib", d); err != nil {
		t.Fatal(err)
	}
	if err := s.AddProjection("titles", "bib", false, "//book/title"); err != nil {
		t.Fatal(err)
	}
	return s
}

func postPrune(t *testing.T, ts *httptest.Server, url string, body io.Reader) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+url, "application/xml", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestPruneByteIdentical: the HTTP path returns exactly the bytes the
// library's streaming pruner produces, for both ad-hoc query requests
// and precompiled projections.
func TestPruneByteIdentical(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	d, err := xmlproj.ParseDTDString(bibDTD, "bib")
	if err != nil {
		t.Fatal(err)
	}
	q, err := xmlproj.Compile("//book/title")
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Infer(xmlproj.Materialized, q)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if _, err := p.PruneStreamOpts(&want, strings.NewReader(bibDoc), xmlproj.StreamOptions{}); err != nil {
		t.Fatal(err)
	}

	for _, url := range []string{
		"/prune?schema=bib&q=" + "%2F%2Fbook%2Ftitle",
		"/prune?projection=titles",
	} {
		resp, got := postPrune(t, ts, url, strings.NewReader(bibDoc))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", url, resp.StatusCode, got)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("%s: HTTP output differs from prune.Stream:\n http: %q\n want: %q", url, got, want.Bytes())
		}
		if tr := resp.Trailer.Get(errorTrailer); tr != "" {
			t.Fatalf("%s: unexpected error trailer %q", url, tr)
		}
	}
}

// TestPruneRejections: the distinct failure statuses — unknown schema
// or projection 404, missing/bad query 400, bad document 422, oversized
// body 413, busy 429, timeout 408.
func TestPruneRejections(t *testing.T) {
	s := newTestServer(t, Options{MaxBodyBytes: 256})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, url, body string
		want            int
	}{
		{"unknown schema", "/prune?schema=nope&q=//a", bibDoc, http.StatusNotFound},
		{"unknown projection", "/prune?projection=nope", bibDoc, http.StatusNotFound},
		{"missing query", "/prune?schema=bib", bibDoc, http.StatusBadRequest},
		{"bad query", "/prune?schema=bib&q=" + "%2F%2F%5B", bibDoc, http.StatusBadRequest},
		// A well-formed query matching nothing in the schema is not an
		// error: inference yields the root-only projector and the prune
		// returns the empty skeleton.
		{"query outside schema", "/prune?schema=bib&q=%2F%2Fnope", bibDoc, http.StatusOK},
		{"bad document", "/prune?projection=titles", "<bib><unknown/></bib>", http.StatusUnprocessableEntity},
		{"oversized body", "/prune?projection=titles", "<bib>" + strings.Repeat("<book><title>x</title><author>a</author></book>", 20) + "</bib>", http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		resp, body := postPrune(t, ts, c.url, strings.NewReader(c.body))
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d (body %q)", c.name, resp.StatusCode, c.want, body)
		}
	}

	// Wrong method → 405 from the mux's method pattern.
	resp, err := http.Get(ts.URL + "/prune?projection=titles")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /prune: status %d, want 405", resp.StatusCode)
	}
}

// TestPruneOversizedChunkedBody: a body with no declared length is cut
// off by MaxBytesReader mid-stream and still reports 413.
func TestPruneOversizedChunkedBody(t *testing.T) {
	s := newTestServer(t, Options{MaxBodyBytes: 128})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	pr, pw := io.Pipe()
	go func() {
		pw.Write([]byte("<bib>"))
		row := []byte("<book><title>t</title><author>a</author></book>")
		for i := 0; i < 100; i++ {
			if _, err := pw.Write(row); err != nil {
				return // server stopped reading at the limit
			}
		}
		pw.Close()
	}()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/prune?projection=titles", pr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("chunked oversize: status %d, want 413", resp.StatusCode)
	}
}

// TestPruneRequestTimeout: a prune that cannot finish before the
// per-request deadline aborts with 408 instead of hanging a slot.
func TestPruneRequestTimeout(t *testing.T) {
	s := newTestServer(t, Options{RequestTimeout: 50 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	pr, pw := io.Pipe()
	defer pw.Close()
	go pw.Write([]byte("<bib><book><title>stall")) // never completes

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/prune?projection=titles", pr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("stalled prune: status %d, want 408", resp.StatusCode)
	}
}

// inFlight polls /debug/vars until the server reports n prunes holding
// admission slots.
func waitInFlight(t *testing.T, ts *httptest.Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/debug/vars")
		if err != nil {
			t.Fatal(err)
		}
		var vars struct {
			Server struct {
				InFlight int64 `json:"in_flight"`
			} `json:"server"`
		}
		err = json.NewDecoder(resp.Body).Decode(&vars)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if vars.Server.InFlight == n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("server never reached %d in-flight prunes", n)
}

// TestPruneConcurrencyLimit: with one admission slot held, the next
// request is rejected with 429; once the slot frees, requests flow
// again.
func TestPruneConcurrencyLimit(t *testing.T) {
	s := newTestServer(t, Options{MaxConcurrent: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	pr, pw := io.Pipe()
	done := make(chan *http.Response, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/prune?projection=titles", pr)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- nil
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp
	}()
	pw.Write([]byte(bibDoc)) // full document, pipe left open: prune waits for EOF
	waitInFlight(t, ts, 1)

	resp, body := postPrune(t, ts, "/prune?projection=titles", strings.NewReader(bibDoc))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429 (body %q)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	pw.Close() // release the slot
	if first := <-done; first == nil || first.StatusCode != http.StatusOK {
		t.Fatalf("held request did not finish cleanly: %+v", first)
	}

	resp, _ = postPrune(t, ts, "/prune?projection=titles", strings.NewReader(bibDoc))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d, want 200", resp.StatusCode)
	}
}

// TestGracefulShutdownDrains: Shutdown waits for the in-flight prune,
// which completes with a full, correct response.
func TestGracefulShutdownDrains(t *testing.T) {
	s := newTestServer(t, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()

	pr, pw := io.Pipe()
	type result struct {
		status int
		body   []byte
	}
	done := make(chan result, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPost, base+"/prune?projection=titles", pr)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- result{}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		done <- result{resp.StatusCode, body}
	}()
	pw.Write([]byte(bibDoc[:20])) // request is mid-stream

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- httpSrv.Shutdown(ctx)
	}()
	// Let Shutdown begin refusing new work, then finish the request.
	time.Sleep(20 * time.Millisecond)
	pw.Write([]byte(bibDoc[20:]))
	pw.Close()

	res := <-done
	if res.status != http.StatusOK {
		t.Fatalf("drained request: status %d, body %q", res.status, res.body)
	}
	if !bytes.Contains(res.body, []byte("<title>Commedia</title>")) {
		t.Fatalf("drained request returned wrong body: %q", res.body)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestConcurrentMixedRequests: valid prunes, bad documents, bad
// queries and oversized bodies in parallel — exercised under -race in
// CI; statuses must stay in the expected set and valid prunes must
// return correct bytes.
func TestConcurrentMixedRequests(t *testing.T) {
	s := newTestServer(t, Options{MaxBodyBytes: 1 << 20, MaxConcurrent: 4, AdmissionWait: 2 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	want := "<bib><book><title>Commedia</title></book><book><title>Decameron</title></book></bib>"
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		for _, kind := range []int{0, 1, 2, 3} {
			wg.Add(1)
			go func(kind int) {
				defer wg.Done()
				var url, body string
				var wantStatus int
				switch kind {
				case 0:
					url, body, wantStatus = "/prune?projection=titles", bibDoc, http.StatusOK
				case 1:
					url, body, wantStatus = "/prune?projection=titles", "<bib><nope/></bib>", http.StatusUnprocessableEntity
				case 2:
					url, body, wantStatus = "/prune?schema=bib&q=%2F%2F%5B", bibDoc, http.StatusBadRequest
				case 3:
					url = "/prune?projection=titles"
					body = "<bib>" + strings.Repeat("<book><title>t</title><author>a</author></book>", 40000) + "</bib>"
					wantStatus = http.StatusRequestEntityTooLarge
				}
				resp, err := http.Post(ts.URL+url, "application/xml", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != wantStatus {
					errs <- fmt.Errorf("kind %d: status %d, want %d", kind, resp.StatusCode, wantStatus)
					return
				}
				if kind == 0 && string(data) != want {
					errs <- fmt.Errorf("valid prune returned %q", data)
				}
			}(kind)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestDebugVars: the expvar document carries the engine snapshot, the
// server counters and the latency histogram, and they move with
// traffic.
func TestDebugVars(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, _ := postPrune(t, ts, "/prune?projection=titles", strings.NewReader(bibDoc))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("prune %d failed: %d", i, resp.StatusCode)
		}
	}
	postPrune(t, ts, "/prune?schema=nope&q=//a", strings.NewReader(bibDoc))

	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		Engine map[string]any `json:"engine"`
		Server struct {
			Requests    int64          `json:"requests"`
			OK          int64          `json:"ok"`
			BadRequests int64          `json:"bad_requests"`
			BytesIn     int64          `json:"bytes_in"`
			BytesOut    int64          `json:"bytes_out"`
			Latency     map[string]any `json:"latency"`
		} `json:"server"`
		Limits map[string]any `json:"limits"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars.Server.Requests != 4 || vars.Server.OK != 3 || vars.Server.BadRequests != 1 {
		t.Fatalf("server counters: %+v", vars.Server)
	}
	if vars.Server.BytesIn == 0 || vars.Server.BytesOut == 0 {
		t.Fatalf("byte counters did not move: %+v", vars.Server)
	}
	if vars.Server.Latency["count"].(float64) != 3 {
		t.Fatalf("latency histogram count: %v", vars.Server.Latency)
	}
	// The engine snapshot must expose every Metrics counter the Map hook
	// flattens, inference included (the projection was precompiled).
	// Served prunes are credited into the engine counters (RecordPrune),
	// not just the server's own.
	if got := vars.Engine["docs_pruned"].(float64); got != 3 {
		t.Fatalf("engine docs_pruned = %v, want 3", got)
	}
	for _, key := range []string{"inferences", "docs_pruned", "bytes_in", "bytes_out", "cache_hits", "projection_hits", "parallel_prunes"} {
		if _, ok := vars.Engine[key]; !ok {
			t.Errorf("engine snapshot missing %q: %v", key, vars.Engine)
		}
	}
	if vars.Engine["inferences"].(float64) < 1 {
		t.Errorf("engine snapshot shows no inference: %v", vars.Engine)
	}
	if vars.Limits["max_concurrent"].(float64) <= 0 {
		t.Errorf("limits missing max_concurrent: %v", vars.Limits)
	}
}

// TestAdminHandler: pprof index and vars respond on the admin mux.
func TestAdminHandler(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.AdminHandler())
	defer ts.Close()

	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
}

// TestSchemasEndpoint: the catalogue lists schemas and projections.
func TestSchemasEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/schemas")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Schemas []struct {
			Name, Root string
		} `json:"schemas"`
		Projections []struct {
			Name, Schema string
		} `json:"projections"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Schemas) != 1 || out.Schemas[0].Name != "bib" || out.Schemas[0].Root != "bib" {
		t.Fatalf("schemas: %+v", out.Schemas)
	}
	if len(out.Projections) != 1 || out.Projections[0].Name != "titles" {
		t.Fatalf("projections: %+v", out.Projections)
	}
}

// TestValidateParam: validation fused into the HTTP prune rejects a
// DTD-invalid document that parses fine without validation.
func TestValidateParam(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// book without the required author: well-formed, DTD-invalid.
	invalid := `<bib><book><title>T</title></book></bib>`
	resp, _ := postPrune(t, ts, "/prune?projection=titles", strings.NewReader(invalid))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unvalidated prune of invalid doc: status %d", resp.StatusCode)
	}
	resp, body := postPrune(t, ts, "/prune?projection=titles&validate=1", strings.NewReader(invalid))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("validated prune of invalid doc: status %d (body %q)", resp.StatusCode, body)
	}
}

// TestGatherPath: a body of known, bounded length is served by the
// span-gather path — the response carries a real Content-Length (no
// trailer), the output matches the streaming pruner byte for byte, the
// gather counter moves, and a prune failure gets a clean error status.
func TestGatherPath(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	d, err := xmlproj.ParseDTDString(bibDTD, "bib")
	if err != nil {
		t.Fatal(err)
	}
	q, err := xmlproj.Compile("//book/title")
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Infer(xmlproj.Materialized, q)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if _, err := p.PruneStreamOpts(&want, strings.NewReader(bibDoc), xmlproj.StreamOptions{}); err != nil {
		t.Fatal(err)
	}

	resp, got := postPrune(t, ts, "/prune?projection=titles", strings.NewReader(bibDoc))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if cl := resp.Header.Get("Content-Length"); cl != fmt.Sprint(want.Len()) {
		t.Errorf("Content-Length = %q, want %d", cl, want.Len())
	}
	if resp.Header.Get("Trailer") != "" {
		t.Errorf("gather response declared a trailer")
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("gather output differs from streaming prune:\n got: %q\nwant: %q", got, want.Bytes())
	}
	if n := s.m.gatherPrunes.Load(); n != 1 {
		t.Errorf("gather_prunes = %d, want 1", n)
	}

	// A bad document fails with a clean pre-write status on this path.
	resp, _ = postPrune(t, ts, "/prune?projection=titles", strings.NewReader("<bib><unknown/></bib>"))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad document: status %d, want 422", resp.StatusCode)
	}

	// Disabling the path falls back to streaming: chunked-style
	// trailer-declared responses, no gather counter movement.
	s2 := newTestServer(t, Options{MaxGatherBytes: -1})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, got = postPrune(t, ts2, "/prune?projection=titles", strings.NewReader(bibDoc))
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("streaming fallback: status %d, output match %v", resp.StatusCode, bytes.Equal(got, want.Bytes()))
	}
	if n := s2.m.gatherPrunes.Load(); n != 0 {
		t.Errorf("gather_prunes = %d with path disabled", n)
	}
}

// TestPipelinedPath: a chunked (unsized) body on a multi-CPU host is
// served by the pipelined streaming engine — output still byte-identical
// to the serial pruner, and the pipelined counters move: the server's
// pipelined_prunes and peak_window_bytes, and the engine's pipelined
// stage metrics.
func TestPipelinedPath(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	// MaxConcurrent 1 gives each request the full GOMAXPROCS worker
	// budget (the pipelined engine refuses to run with a budget of 1).
	s := newTestServer(t, Options{MaxConcurrent: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var doc strings.Builder
	doc.WriteString("<bib>")
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&doc, "<book><title>T%d</title><author>A%d</author></book>", i, i)
	}
	doc.WriteString("</bib>")

	d, err := xmlproj.ParseDTDString(bibDTD, "bib")
	if err != nil {
		t.Fatal(err)
	}
	q, err := xmlproj.Compile("//book/title")
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Infer(xmlproj.Materialized, q)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if _, err := p.PruneStreamOpts(&want, strings.NewReader(doc.String()), xmlproj.StreamOptions{Engine: xmlproj.PruneScanner}); err != nil {
		t.Fatal(err)
	}

	// Wrapping the reader hides its size from net/http: the request goes
	// out chunked and the server sees ContentLength -1.
	resp, got := postPrune(t, ts, "/prune?projection=titles", struct{ io.Reader }{strings.NewReader(doc.String())})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got[:min(len(got), 200)])
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("pipelined HTTP output differs from serial prune (%d vs %d bytes)", len(got), want.Len())
	}
	if n := s.m.pipelinedPrunes.Load(); n != 1 {
		t.Errorf("pipelined_prunes = %d, want 1", n)
	}
	if n := s.m.peakWindowBytes.Load(); n <= 0 {
		t.Errorf("peak_window_bytes = %d, want > 0", n)
	}
	if n := s.eng.Metrics().PipelinedPrunes; n != 1 {
		t.Errorf("engine PipelinedPrunes = %d, want 1", n)
	}
}
