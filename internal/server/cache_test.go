package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// TestPruneResultCacheHTTP: the gather path serves a repeat document
// from the result cache — MISS then HIT, byte-identical bodies, stable
// ETag/X-Doc-Digest — and a client echoing the ETag revalidates with an
// empty 304.
func TestPruneResultCacheHTTP(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first, firstBody := postPrune(t, ts, "/prune?projection=titles", strings.NewReader(bibDoc))
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first POST: status %d: %s", first.StatusCode, firstBody)
	}
	if got := first.Header.Get(headerXCache); got != "MISS" {
		t.Fatalf("first POST: X-Cache = %q, want MISS", got)
	}
	etag := first.Header.Get("ETag")
	digest := first.Header.Get(headerDocDigest)
	if etag == "" || digest == "" {
		t.Fatalf("first POST: missing cache headers: ETag=%q digest=%q", etag, digest)
	}

	second, secondBody := postPrune(t, ts, "/prune?projection=titles", strings.NewReader(bibDoc))
	if second.StatusCode != http.StatusOK {
		t.Fatalf("second POST: status %d: %s", second.StatusCode, secondBody)
	}
	if got := second.Header.Get(headerXCache); got != "HIT" {
		t.Fatalf("second POST: X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(secondBody, firstBody) {
		t.Fatalf("cache hit differs from fresh prune:\n hit: %q\nmiss: %q", secondBody, firstBody)
	}
	if second.Header.Get("ETag") != etag || second.Header.Get(headerDocDigest) != digest {
		t.Fatalf("cache identity unstable: ETag %q->%q digest %q->%q",
			etag, second.Header.Get("ETag"), digest, second.Header.Get(headerDocDigest))
	}
	if cl := second.Header.Get("Content-Length"); cl != strconv.Itoa(len(firstBody)) {
		t.Fatalf("second POST: Content-Length %q, body %d bytes", cl, len(firstBody))
	}

	// Revalidation with the body: the server digests, matches the ETag
	// and answers 304 without pruning or sending the entity.
	req, err := http.NewRequest("POST", ts.URL+"/prune?projection=titles", strings.NewReader(bibDoc))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", etag)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("If-None-Match POST: status %d, %d body bytes", resp.StatusCode, len(body))
	}

	// Body-free revalidation: echoing the digest means no body upload at
	// all — the 304 happens before the server would read one.
	req, err = http.NewRequest("POST", ts.URL+"/prune?projection=titles", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", etag)
	req.Header.Set(headerDocDigest, digest)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("body-free revalidation: status %d", resp.StatusCode)
	}

	// A different validate mode is a different entity: same document,
	// fresh MISS, distinct ETag.
	other, _ := postPrune(t, ts, "/prune?projection=titles&validate=1", strings.NewReader(bibDoc))
	if got := other.Header.Get(headerXCache); got != "MISS" {
		t.Fatalf("validated POST: X-Cache = %q, want MISS", got)
	}
	if other.Header.Get("ETag") == etag {
		t.Fatalf("validated POST shares the unvalidated ETag %q", etag)
	}
}

// TestPruneHead: HEAD /prune probes the cache by digest without a body
// — ETag always, Content-Length on a hit, 304 on an If-None-Match
// match, 400 without a digest.
func TestPruneHead(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	head := func(digest, inm string) *http.Response {
		t.Helper()
		req, err := http.NewRequest("HEAD", ts.URL+"/prune?projection=titles", nil)
		if err != nil {
			t.Fatal(err)
		}
		if digest != "" {
			req.Header.Set(headerDocDigest, digest)
		}
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	if resp := head("", ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("HEAD without digest: status %d, want 400", resp.StatusCode)
	}

	// Populate the cache, then probe.
	posted, body := postPrune(t, ts, "/prune?projection=titles", strings.NewReader(bibDoc))
	etag := posted.Header.Get("ETag")
	digest := posted.Header.Get(headerDocDigest)

	resp := head(digest, "")
	if resp.StatusCode != http.StatusOK || resp.Header.Get(headerXCache) != "HIT" {
		t.Fatalf("HEAD after POST: status %d X-Cache %q", resp.StatusCode, resp.Header.Get(headerXCache))
	}
	if resp.Header.Get("ETag") != etag {
		t.Fatalf("HEAD ETag %q != POST ETag %q", resp.Header.Get("ETag"), etag)
	}
	if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(body)) {
		t.Fatalf("HEAD Content-Length %q, cached entity is %d bytes", cl, len(body))
	}

	if resp := head(digest, etag); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("HEAD If-None-Match: status %d, want 304", resp.StatusCode)
	}

	// A digest the cache has never seen: valid request, MISS.
	unknown := strings.Repeat("0", len(digest))
	resp = head(unknown, "")
	if resp.StatusCode != http.StatusOK || resp.Header.Get(headerXCache) != "MISS" {
		t.Fatalf("HEAD unknown digest: status %d X-Cache %q", resp.StatusCode, resp.Header.Get(headerXCache))
	}
	if resp.Header.Get("Content-Length") != "" && resp.Header.Get("Content-Length") != "0" {
		t.Fatalf("HEAD miss advertised Content-Length %q", resp.Header.Get("Content-Length"))
	}
}

// TestPruneCacheDisabled: a negative budget turns the cache off — no
// cache headers on POST, HEAD refused.
func TestPruneCacheDisabled(t *testing.T) {
	s := newTestServer(t, Options{ResultCacheBytes: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, _ := postPrune(t, ts, "/prune?projection=titles", strings.NewReader(bibDoc))
	if resp.Header.Get(headerXCache) != "" || resp.Header.Get("ETag") != "" {
		t.Fatalf("disabled cache still set headers: X-Cache=%q ETag=%q",
			resp.Header.Get(headerXCache), resp.Header.Get("ETag"))
	}

	req, err := http.NewRequest("HEAD", ts.URL+"/prune?projection=titles", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(headerDocDigest, strings.Repeat("0", 32))
	hr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusBadRequest {
		t.Fatalf("HEAD with cache disabled: status %d, want 400", hr.StatusCode)
	}
}

// TestPruneStreamingBypassesCache: an unsized (chunked) body takes the
// streaming path, which the cache does not cover — X-Cache: BYPASS,
// and no cache counters move.
func TestPruneStreamingBypassesCache(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// An io.Reader that is not a *bytes.Reader/*strings.Reader forces
	// chunked encoding: no Content-Length, so no gather path.
	req, err := http.NewRequest("POST", ts.URL+"/prune?projection=titles", io.MultiReader(strings.NewReader(bibDoc)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chunked POST: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(headerXCache); got != "BYPASS" {
		t.Fatalf("chunked POST: X-Cache = %q, want BYPASS", got)
	}
	if resp.Header.Get("ETag") != "" {
		t.Fatalf("chunked POST set an ETag %q with no digest to stand behind it", resp.Header.Get("ETag"))
	}
	if m := s.m.cacheHits.Load() + s.m.cacheMisses.Load(); m != 0 {
		t.Fatalf("streaming prune moved cache counters: %d", m)
	}
}

// TestDebugVarsCache: /debug/vars exposes the server's cache_* counters
// and the engine's result_cache_* counters, and they move with traffic.
func TestDebugVarsCache(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		resp, body := postPrune(t, ts, "/prune?projection=titles", strings.NewReader(bibDoc))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	req, _ := http.NewRequest("POST", ts.URL+"/prune?projection=titles", strings.NewReader(bibDoc))
	req.Header.Set("If-None-Match", "*")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match *: status %d", resp.StatusCode)
	}

	vresp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	var vars struct {
		Engine map[string]json.Number     `json:"engine"`
		Server map[string]json.RawMessage `json:"server"`
	}
	if err := json.NewDecoder(vresp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	intVar := func(m map[string]json.RawMessage, key string) int64 {
		t.Helper()
		raw, ok := m[key]
		if !ok {
			t.Fatalf("vars missing %q", key)
		}
		n, err := strconv.ParseInt(string(raw), 10, 64)
		if err != nil {
			t.Fatalf("vars[%q] = %s: %v", key, raw, err)
		}
		return n
	}
	if got := intVar(vars.Server, "cache_hits"); got != 1 {
		t.Fatalf("cache_hits = %d, want 1", got)
	}
	if got := intVar(vars.Server, "cache_misses"); got != 1 {
		t.Fatalf("cache_misses = %d, want 1", got)
	}
	if got := intVar(vars.Server, "cache_304"); got != 1 {
		t.Fatalf("cache_304 = %d, want 1", got)
	}
	for _, key := range []string{"result_cache_hits", "result_cache_bytes", "result_cache_budget_bytes", "result_cache_evictions"} {
		if _, ok := vars.Engine[key]; !ok {
			t.Fatalf("engine vars missing %q", key)
		}
	}
	if n, _ := vars.Engine["result_cache_hits"].Int64(); n < 1 {
		t.Fatalf("result_cache_hits = %d, want >= 1", n)
	}
}
