// Package server implements xmlprojd's HTTP serving layer: streaming
// type-based projection behind a long-lived service, the deployment the
// paper's load-time pruning is designed for (§6 — prune while parsing,
// in front of a main-memory query engine).
//
// A request POSTs a document to /prune naming a schema and a query
// bunch (or a projection precompiled at startup); the body streams
// through the one-pass pruner and the pruned document streams back.
// Bodies route by size: a declared Content-Length up to MaxGatherBytes
// is buffered once and served on the span-gather path with a real
// Content-Length; larger or chunked (unsized) bodies stream — on
// multi-CPU hosts through the pipelined streaming engine, which
// overlaps reading, indexing and pruning under bounded window memory
// and flushes pruned windows to the client as they complete. The
// streaming path never buffers the whole document, and every engine's
// worker budget is divided by the admission-control width so a
// saturated server never oversubscribes its CPUs.
//
// Admission control, body-size and token-size limits, and per-request
// deadlines make the service safe to expose to untrusted inputs;
// /debug/vars and the admin pprof listener make it observable.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"xmlproj"
)

// DefaultMaxBodyBytes bounds request bodies when Options.MaxBodyBytes
// is zero: 1 GiB, far above any sensible document but finite.
const DefaultMaxBodyBytes = 1 << 30

// DefaultMaxGatherBytes bounds the span-gather fast path when
// Options.MaxGatherBytes is zero: bodies of known length up to 32 MiB
// are buffered once and pruned in place, and the response carries a
// real Content-Length instead of a trailer.
const DefaultMaxGatherBytes = 32 << 20

// Options configures a Server.
type Options struct {
	// Engine handles projector inference and caching; nil creates a
	// default engine.
	Engine *xmlproj.Engine
	// MaxBodyBytes bounds the request body; a larger body fails the
	// prune with 413. Zero means DefaultMaxBodyBytes, negative disables
	// the limit.
	MaxBodyBytes int64
	// MaxTokenSize bounds the scanner's token buffer per request (zero
	// means the scanner default, 8 MiB), so one hostile token cannot
	// take the server's memory hostage.
	MaxTokenSize int
	// MaxGatherBytes bounds the span-gather fast path: a body with a
	// declared Content-Length up to this is buffered whole, pruned in
	// place with zero output copies (the kept subtrees are sent straight
	// from the request buffer), and answered with a real Content-Length
	// — prune failures get a clean error status instead of a trailer.
	// Larger or unsized bodies stream as before. Zero means
	// DefaultMaxGatherBytes, negative disables the path.
	MaxGatherBytes int64
	// MaxConcurrent bounds prunes running at once; requests beyond it
	// wait up to AdmissionWait for a slot and are then rejected with
	// 429. Zero means GOMAXPROCS.
	MaxConcurrent int
	// AdmissionWait is how long a request queues for an admission slot
	// before 429. Zero rejects immediately.
	AdmissionWait time.Duration
	// RequestTimeout bounds one prune from admission to the last byte;
	// on expiry the prune aborts and the request fails with 408. Zero
	// means no per-request deadline.
	RequestTimeout time.Duration
	// ResultCacheBytes budgets the engine's content-addressed cache of
	// pruned outputs when the server creates its own engine (Engine ==
	// nil; an explicitly provided engine keeps its own configuration).
	// Gather-path requests for a repeat (document, projection, validate)
	// triple are served from cached bytes with a strong ETag, and
	// clients holding the ETag revalidate body-free via If-None-Match +
	// X-Doc-Digest. Zero means xmlproj.DefaultResultCacheBytes (256
	// MiB); negative disables the cache.
	ResultCacheBytes int64
	// Logger receives one structured record per /prune request. Nil
	// means slog.Default().
	Logger *slog.Logger
}

// Server serves streaming projection over HTTP. Configure it with
// AddSchema/AddProjection before serving; the handlers themselves are
// safe for any number of concurrent requests.
type Server struct {
	opts         Options
	eng          *xmlproj.Engine
	schemas      map[string]*xmlproj.DTD
	projections  map[string]*namedProjection
	sem          chan struct{}
	maxBody      int64
	maxGather    int64
	intraWorkers int
	log          *slog.Logger
	m            metrics
}

// namedProjection is a projector precompiled at startup, addressable by
// name so hot workloads skip query compilation entirely.
type namedProjection struct {
	schema   string
	queries  []string
	validate bool
	p        *xmlproj.Projector
}

// New returns a server with the given options and no schemas yet.
func New(opts Options) *Server {
	eng := opts.Engine
	if eng == nil {
		resultCache := opts.ResultCacheBytes
		if resultCache == 0 {
			resultCache = xmlproj.DefaultResultCacheBytes
		}
		if resultCache < 0 {
			resultCache = 0
		}
		eng = xmlproj.NewEngine(xmlproj.EngineOptions{ResultCacheBytes: resultCache})
	}
	width := opts.MaxConcurrent
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	maxBody := opts.MaxBodyBytes
	if maxBody == 0 {
		maxBody = DefaultMaxBodyBytes
	}
	maxGather := opts.MaxGatherBytes
	if maxGather == 0 {
		maxGather = DefaultMaxGatherBytes
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	return &Server{
		opts:        opts,
		eng:         eng,
		schemas:     make(map[string]*xmlproj.DTD),
		projections: make(map[string]*namedProjection),
		sem:         make(chan struct{}, width),
		maxBody:     maxBody,
		maxGather:   maxGather,
		// The same budget rule as engine.PruneBatch, fed by the
		// admission width: MaxConcurrent requests at full load share
		// the CPUs, so each prune gets GOMAXPROCS/MaxConcurrent
		// intra-document workers (never below 1 — 1 keeps it serial).
		intraWorkers: xmlproj.IntraWorkerBudget(runtime.GOMAXPROCS(0), width),
		log:          logger,
	}
}

// AddSchema registers a schema under name. Not safe to call once the
// server is handling requests.
func (s *Server) AddSchema(name string, d *xmlproj.DTD) error {
	if name == "" {
		return fmt.Errorf("server: schema name must not be empty")
	}
	if _, dup := s.schemas[name]; dup {
		return fmt.Errorf("server: schema %q already registered", name)
	}
	s.schemas[name] = d
	return nil
}

// AddProjection precompiles a named projection: the projector for the
// query bunch against a registered schema, inferred once at startup.
// Not safe to call once the server is handling requests.
func (s *Server) AddProjection(name, schema string, validate bool, queries ...string) error {
	if name == "" {
		return fmt.Errorf("server: projection name must not be empty")
	}
	if _, dup := s.projections[name]; dup {
		return fmt.Errorf("server: projection %q already registered", name)
	}
	d, ok := s.schemas[schema]
	if !ok {
		return fmt.Errorf("server: projection %q names unknown schema %q", name, schema)
	}
	p, err := s.infer(d, queries)
	if err != nil {
		return fmt.Errorf("server: projection %q: %w", name, err)
	}
	s.projections[name] = &namedProjection{schema: schema, queries: queries, validate: validate, p: p}
	return nil
}

// infer compiles the query bunch and runs (cached) projector inference.
func (s *Server) infer(d *xmlproj.DTD, queries []string) (*xmlproj.Projector, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("no queries")
	}
	compiled := make([]*xmlproj.Query, len(queries))
	for i, src := range queries {
		q, err := xmlproj.Compile(src)
		if err != nil {
			return nil, fmt.Errorf("query %q: %w", src, err)
		}
		compiled[i] = q
	}
	return s.eng.InferCached(d, xmlproj.Materialized, compiled...)
}

// Handler returns the public mux: POST /prune, GET /healthz, GET
// /schemas and GET /debug/vars.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /prune", s.handlePrune)
	mux.HandleFunc("HEAD /prune", s.handlePruneHead)
	mux.HandleFunc("POST /multiprune", s.handleMultiprune)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /schemas", s.handleSchemas)
	mux.HandleFunc("GET /debug/vars", s.handleVars)
	return mux
}

// AdminHandler returns the admin mux — pprof and /debug/vars — meant
// for a localhost-only listener.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", s.handleVars)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleSchemas lists the registered schemas and precompiled
// projections.
func (s *Server) handleSchemas(w http.ResponseWriter, r *http.Request) {
	type schemaInfo struct {
		Name string `json:"name"`
		Root string `json:"root"`
	}
	type projInfo struct {
		Name     string   `json:"name"`
		Schema   string   `json:"schema"`
		Queries  []string `json:"queries"`
		Validate bool     `json:"validate"`
		Names    int      `json:"projector_names"`
	}
	var out struct {
		Schemas     []schemaInfo `json:"schemas"`
		Projections []projInfo   `json:"projections"`
	}
	for name, d := range s.schemas {
		out.Schemas = append(out.Schemas, schemaInfo{Name: name, Root: d.Root()})
	}
	sort.Slice(out.Schemas, func(i, j int) bool { return out.Schemas[i].Name < out.Schemas[j].Name })
	for name, np := range s.projections {
		out.Projections = append(out.Projections, projInfo{
			Name: name, Schema: np.schema, Queries: np.queries,
			Validate: np.validate, Names: len(np.p.Names()),
		})
	}
	sort.Slice(out.Projections, func(i, j int) bool { return out.Projections[i].Name < out.Projections[j].Name })
	writeJSON(w, out)
}

// errorTrailer carries a prune error that surfaced after response bytes
// were already streamed, when the status line is long gone.
const errorTrailer = "X-Xmlprojd-Error"

// headerDocDigest carries the document's content digest. The server
// returns it alongside every cache-eligible response; a client that
// echoes it (with If-None-Match) on a later request lets the server
// answer 304 without reading the body at all, and it is what makes
// HEAD /prune addressable without a body.
const headerDocDigest = "X-Doc-Digest"

// headerXCache reports how the result cache treated the request: HIT,
// MISS, or BYPASS (streaming/unsized bodies, which the cache does not
// cover).
const headerXCache = "X-Cache"

// etagMatch reports whether an If-None-Match header value matches the
// given strong ETag. Weak prefixes are ignored — the cache's ETags are
// strong and byte-exact, so W/"x" and "x" name the same bytes here.
func etagMatch(ifNoneMatch, etag string) bool {
	if ifNoneMatch == "" || etag == "" {
		return false
	}
	for _, part := range strings.Split(ifNoneMatch, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}

// statusClientGone is nginx's non-standard "client closed request";
// nothing can be delivered, the code only exists for logs and metrics.
const statusClientGone = 499

// isTimeout reports whether err is an i/o timeout from the armed
// connection read deadline (as opposed to the request context's
// deadline, which errors.Is catches directly).
func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// handlePrune streams the request body through the pruner and the
// pruned document back. The serial path holds O(depth) state, never the
// document.
func (s *Server) handlePrune(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.m.requests.Add(1)

	np, errStatus, errMsg := s.resolve(r)
	if np == nil {
		s.m.badRequests.Add(1)
		http.Error(w, errMsg, errStatus)
		s.logRequest(r, errStatus, 0, 0, xmlproj.PruneAuto, xmlproj.ParallelStages{}, xmlproj.PipelineStages{}, time.Since(start), "", errors.New(errMsg))
		return
	}

	// Body-free revalidation: a client that echoes the digest from a
	// prior response can 304 on the ETag alone — before admission
	// control, before a single body byte is read. The digest pins the
	// exact document bytes, so the match is as strong as re-digesting.
	if dig := r.Header.Get(headerDocDigest); dig != "" {
		if etag := s.eng.ResultETag(np.p, dig, np.validate); etagMatch(r.Header.Get("If-None-Match"), etag) {
			s.m.cache304.Add(1)
			w.Header().Set("ETag", etag)
			w.Header().Set(headerDocDigest, dig)
			w.Header().Set(headerXCache, "HIT")
			w.WriteHeader(http.StatusNotModified)
			s.logRequest(r, http.StatusNotModified, 0, 0, xmlproj.PruneAuto, xmlproj.ParallelStages{}, xmlproj.PipelineStages{}, time.Since(start), "revalidated", nil)
			return
		}
	}

	if s.maxBody > 0 && r.ContentLength > s.maxBody {
		s.m.rejectedLarge.Add(1)
		http.Error(w, fmt.Sprintf("request body %d bytes exceeds limit %d", r.ContentLength, s.maxBody), http.StatusRequestEntityTooLarge)
		s.logRequest(r, http.StatusRequestEntityTooLarge, 0, 0, xmlproj.PruneAuto, xmlproj.ParallelStages{}, xmlproj.PipelineStages{}, time.Since(start), "", errors.New("content-length over limit"))
		return
	}

	if !s.admit(r.Context()) {
		s.m.rejectedBusy.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server at concurrency limit", http.StatusTooManyRequests)
		s.logRequest(r, http.StatusTooManyRequests, 0, 0, xmlproj.PruneAuto, xmlproj.ParallelStages{}, xmlproj.PipelineStages{}, time.Since(start), "", errors.New("admission rejected"))
		return
	}
	defer func() { <-s.sem }()
	s.m.inFlight.Add(1)
	defer s.m.inFlight.Add(-1)

	ctx := r.Context()
	var rc *http.ResponseController
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
		// The context only gates the gaps between reads; a read already
		// blocked on a stalled body can outlive it. Arm the connection
		// deadlines too, so a blocked read (or a write to a client that
		// stopped draining) fails with an i/o timeout.
		rc = http.NewResponseController(w)
		deadline := time.Now().Add(s.opts.RequestTimeout)
		_ = rc.SetReadDeadline(deadline)
		_ = rc.SetWriteDeadline(deadline)
	}

	var src io.Reader = r.Body
	if s.maxBody > 0 {
		src = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	body := &meteredBody{r: src, size: r.ContentLength}

	if s.maxGather > 0 && body.size > 0 && body.size <= s.maxGather {
		s.pruneGathered(w, r, np, body, ctx, rc, start)
		return
	}

	// Headers must be final before the first body byte: declare the
	// error trailer now, since a mid-stream failure can no longer change
	// the status code.
	w.Header().Set("Content-Type", "application/xml")
	w.Header().Set("Trailer", errorTrailer)
	// The streaming path never holds the whole document, so there is
	// nothing to digest or cache — say so explicitly, so clients can tell
	// a bypass from a cache-disabled server.
	cacheAttr := ""
	if s.eng.ResultCacheEnabled() {
		w.Header().Set(headerXCache, "BYPASS")
		cacheAttr = "bypass"
	}

	cw := &countingResponseWriter{rw: w}
	// Stream the pruned bytes out as they are produced: the pipelined
	// engine (auto-selected here for chunked and over-gather bodies on
	// multi-CPU hosts) emits windows long before the document ends, so
	// flushing after each pruner write gives the client a first byte
	// while later windows are still being read and pruned.
	var dst io.Writer = cw
	if f, ok := w.(http.Flusher); ok {
		dst = &flushWriter{w: cw, f: f}
	}
	var det xmlproj.ParallelStages
	var pdet xmlproj.PipelineStages
	chosen := xmlproj.PruneAuto
	stats, err := np.p.PruneStreamOpts(dst, body, xmlproj.StreamOptions{
		Validate:     np.validate,
		MaxTokenSize: s.opts.MaxTokenSize,
		IntraWorkers: s.intraWorkers,
		Context:      ctx,
		Detail:       &det,
		Pipeline:     &pdet,
		Chosen:       &chosen,
	})
	elapsed := time.Since(start)

	if rc != nil {
		// Clear the prune deadlines so the error response (written after
		// an expired deadline) still reaches the client.
		_ = rc.SetReadDeadline(time.Time{})
		_ = rc.SetWriteDeadline(time.Time{})
	}

	status := http.StatusOK
	if err != nil {
		status = s.classifyPruneErr(err)
		if cw.wrote {
			// Bytes are out; the only channel left is the trailer.
			w.Header().Set(errorTrailer, err.Error())
		} else {
			w.Header().Del("Trailer")
			http.Error(w, err.Error(), status)
		}
	}
	s.finish(r, status, body, stats, chosen, det, pdet, elapsed, cacheAttr, err)
}

// gatherBufPool recycles the request-body buffers of the span-gather
// path; maxPooledGatherBuf keeps an occasional huge body (a raised
// MaxGatherBytes) from pinning its buffer in the pool forever.
var gatherBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledGatherBuf = DefaultMaxGatherBytes

// pruneGathered serves a body of known, bounded length on the
// span-gather path: the body is buffered once, pruned with zero output
// copies (prune output is a gather list over the request buffer), and
// the response carries a real Content-Length. Because nothing is
// written before the prune finishes, errors get a clean pre-write
// status — no trailer.
func (s *Server) pruneGathered(w http.ResponseWriter, r *http.Request, np *namedProjection, body *meteredBody, ctx context.Context, rc *http.ResponseController, start time.Time) {
	buf := gatherBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	buf.Grow(int(body.size))
	_, err := buf.ReadFrom(body)

	var det xmlproj.ParallelStages
	chosen := xmlproj.PruneAuto
	var stats xmlproj.PruneStats
	var res *xmlproj.PruneResult
	var info xmlproj.CacheInfo
	var notModified bool
	if err == nil {
		sopts := xmlproj.StreamOptions{
			Validate:     np.validate,
			MaxTokenSize: s.opts.MaxTokenSize,
			IntraWorkers: s.intraWorkers,
			Context:      ctx,
			Detail:       &det,
			Chosen:       &chosen,
		}
		if digest, ok := s.eng.DigestBytes(buf.Bytes()); ok {
			// The body is in hand and digested; if the client already
			// holds exactly this pruned entity, skip the prune and send
			// nothing back.
			etag := s.eng.ResultETag(np.p, digest, np.validate)
			if etagMatch(r.Header.Get("If-None-Match"), etag) {
				notModified = true
				info = xmlproj.CacheInfo{Enabled: true, Hit: true, Digest: digest, ETag: etag}
			} else {
				res, info, err = s.eng.PruneGatherDigest(np.p, buf.Bytes(), digest, sopts)
			}
		} else {
			res, err = np.p.PruneGather(buf.Bytes(), sopts)
		}
		if res != nil {
			stats = res.Stats
		}
	}
	elapsed := time.Since(start)

	if rc != nil {
		// Clear the prune deadlines so the response (possibly written
		// after an expired deadline) still reaches the client.
		_ = rc.SetReadDeadline(time.Time{})
		_ = rc.SetWriteDeadline(time.Time{})
	}

	cacheAttr := ""
	status := http.StatusOK
	switch {
	case err != nil:
		status = s.classifyPruneErr(err)
		http.Error(w, err.Error(), status)
	case notModified:
		s.m.cache304.Add(1)
		status = http.StatusNotModified
		w.Header().Set("ETag", info.ETag)
		w.Header().Set(headerDocDigest, info.Digest)
		w.Header().Set(headerXCache, "HIT")
		w.WriteHeader(status)
		cacheAttr = "revalidated"
	default:
		s.m.gatherPrunes.Add(1)
		if info.Enabled {
			w.Header().Set("ETag", info.ETag)
			w.Header().Set(headerDocDigest, info.Digest)
			if info.Hit {
				s.m.cacheHits.Add(1)
				w.Header().Set(headerXCache, "HIT")
				cacheAttr = "hit"
			} else {
				s.m.cacheMisses.Add(1)
				w.Header().Set(headerXCache, "MISS")
				cacheAttr = "miss"
			}
		}
		w.Header().Set("Content-Type", "application/xml")
		w.Header().Set("Content-Length", strconv.FormatInt(res.Len(), 10))
		if _, werr := res.WriteTo(w); werr != nil {
			// The status line is out; record the failure for logs and
			// metrics. A write error here means the client stopped
			// reading, so classify accordingly.
			err = werr
			status = s.classifyPruneErr(werr)
		}
		res.Close()
	}
	// The gather result referenced buf until Close; only now may the
	// buffer be reused.
	if buf.Cap() <= maxPooledGatherBuf {
		gatherBufPool.Put(buf)
	}
	s.finish(r, status, body, stats, chosen, det, xmlproj.PipelineStages{}, elapsed, cacheAttr, err)
}

// handlePruneHead answers HEAD /prune from the result cache alone: no
// body is read and no prune runs. The client names the document by
// digest (X-Doc-Digest, as returned by a prior POST) and the projection
// by the usual query parameters; the response carries the strong ETag
// and, when the pruned output is cached right now, X-Cache: HIT with
// its Content-Length. With If-None-Match it degenerates to a pure
// revalidation probe (304 on match).
func (s *Server) handlePruneHead(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.m.requests.Add(1)
	s.m.cacheHead.Add(1)

	np, errStatus, errMsg := s.resolve(r)
	if np == nil {
		s.m.badRequests.Add(1)
		http.Error(w, errMsg, errStatus)
		s.logRequest(r, errStatus, 0, 0, xmlproj.PruneAuto, xmlproj.ParallelStages{}, xmlproj.PipelineStages{}, time.Since(start), "", errors.New(errMsg))
		return
	}
	dig := r.Header.Get(headerDocDigest)
	var msg string
	switch {
	case !s.eng.ResultCacheEnabled():
		msg = "HEAD /prune needs the result cache, which is disabled"
	case dig == "":
		msg = "HEAD /prune needs an " + headerDocDigest + " header (as returned by a prior POST /prune)"
	}
	if msg != "" {
		s.m.badRequests.Add(1)
		http.Error(w, msg, http.StatusBadRequest)
		s.logRequest(r, http.StatusBadRequest, 0, 0, xmlproj.PruneAuto, xmlproj.ParallelStages{}, xmlproj.PipelineStages{}, time.Since(start), "", errors.New(msg))
		return
	}

	etag := s.eng.ResultETag(np.p, dig, np.validate)
	w.Header().Set("ETag", etag)
	w.Header().Set(headerDocDigest, dig)
	status := http.StatusOK
	var cacheAttr string
	switch {
	case etagMatch(r.Header.Get("If-None-Match"), etag):
		s.m.cache304.Add(1)
		status = http.StatusNotModified
		w.Header().Set(headerXCache, "HIT")
		cacheAttr = "revalidated"
	default:
		if n, ok := s.eng.CachedLen(np.p, dig, np.validate); ok {
			w.Header().Set(headerXCache, "HIT")
			w.Header().Set("Content-Type", "application/xml")
			w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
			cacheAttr = "hit"
		} else {
			w.Header().Set(headerXCache, "MISS")
			cacheAttr = "miss"
		}
	}
	w.WriteHeader(status)
	s.m.ok.Add(1)
	s.logRequest(r, status, 0, 0, xmlproj.PruneAuto, xmlproj.ParallelStages{}, xmlproj.PipelineStages{}, time.Since(start), cacheAttr, nil)
}

// classifyPruneErr maps a failed prune (or body read) to its HTTP
// status, bumping the matching outcome counter.
func (s *Server) classifyPruneErr(err error) int {
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe):
		s.m.rejectedLarge.Add(1)
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, context.DeadlineExceeded), isTimeout(err):
		s.m.timeouts.Add(1)
		return http.StatusRequestTimeout
	case errors.Is(err, context.Canceled):
		s.m.clientGone.Add(1)
		return statusClientGone
	default:
		s.m.pruneFailures.Add(1)
		return http.StatusUnprocessableEntity
	}
}

// finish records the request's metrics and log line.
func (s *Server) finish(r *http.Request, status int, body *meteredBody, stats xmlproj.PruneStats, chosen xmlproj.PruneEngine, det xmlproj.ParallelStages, pdet xmlproj.PipelineStages, elapsed time.Duration, cache string, err error) {
	s.m.bytesIn.Add(body.n)
	s.m.bytesOut.Add(stats.BytesOut)
	s.m.latency.observe(elapsed)
	if pdet.Workers > 0 {
		s.m.pipelinedPrunes.Add(1)
		raise(&s.m.peakWindowBytes, pdet.PeakWindowBytes)
	}
	s.eng.RecordPrune(body.n, stats, det, pdet, err)
	if err == nil {
		s.m.ok.Add(1)
	}
	s.logRequest(r, status, body.n, stats.BytesOut, chosen, det, pdet, elapsed, cache, err)
}

// resolve maps the request to a projector: either a precompiled named
// projection or schema + query bunch (compiled here, inference cached
// by the engine). A nil return carries the HTTP status and message.
func (s *Server) resolve(r *http.Request) (*namedProjection, int, string) {
	q := r.URL.Query()
	validate := q.Get("validate") == "1" || q.Get("validate") == "true"
	if name := q.Get("projection"); name != "" {
		np, ok := s.projections[name]
		if !ok {
			return nil, http.StatusNotFound, fmt.Sprintf("unknown projection %q", name)
		}
		if q.Has("validate") && validate != np.validate {
			cp := *np
			cp.validate = validate
			return &cp, 0, ""
		}
		return np, 0, ""
	}
	schema := q.Get("schema")
	if schema == "" {
		return nil, http.StatusBadRequest, "missing schema or projection parameter"
	}
	d, ok := s.schemas[schema]
	if !ok {
		return nil, http.StatusNotFound, fmt.Sprintf("unknown schema %q", schema)
	}
	queries := q["q"]
	if len(queries) == 0 {
		return nil, http.StatusBadRequest, "missing q parameter (at least one query)"
	}
	p, err := s.infer(d, queries)
	if err != nil {
		return nil, http.StatusBadRequest, err.Error()
	}
	return &namedProjection{schema: schema, queries: queries, validate: validate, p: p}, 0, ""
}

// admit takes an admission slot, waiting up to AdmissionWait. It
// reports false when the server is at its concurrency limit (or the
// client gave up while queued).
func (s *Server) admit(ctx context.Context) bool {
	select {
	case s.sem <- struct{}{}:
		return true
	default:
	}
	if s.opts.AdmissionWait <= 0 {
		return false
	}
	t := time.NewTimer(s.opts.AdmissionWait)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return true
	case <-t.C:
		return false
	case <-ctx.Done():
		return false
	}
}

// logRequest emits the per-request structured record. cache is the
// result-cache outcome ("hit", "miss", "bypass", "revalidated"; empty
// when the cache played no part).
func (s *Server) logRequest(r *http.Request, status int, bytesIn, bytesOut int64, eng xmlproj.PruneEngine, det xmlproj.ParallelStages, pdet xmlproj.PipelineStages, elapsed time.Duration, cache string, err error) {
	attrs := []any{
		"method", r.Method,
		"path", r.URL.Path,
		"query", r.URL.RawQuery,
		"remote", r.RemoteAddr,
		"status", status,
		"bytes_in", bytesIn,
		"bytes_out", bytesOut,
		"engine", eng.String(),
		"elapsed", elapsed,
	}
	if cache != "" {
		attrs = append(attrs, "cache", cache)
	}
	if det.Workers > 0 {
		attrs = append(attrs,
			"intra_workers", det.Workers,
			"intra_tasks", det.Tasks,
			"index_time", det.IndexTime,
			"prune_time", det.PruneTime,
			"stitch_time", det.StitchTime,
			"intra_fallback", det.Fallback,
		)
	}
	if pdet.Workers > 0 {
		attrs = append(attrs,
			"pipeline_workers", pdet.Workers,
			"pipeline_windows", pdet.Windows,
			"pipeline_tasks", pdet.Tasks,
			"peak_window_bytes", pdet.PeakWindowBytes,
			"pipeline_fallback", pdet.Fallback,
		)
	}
	if err != nil {
		attrs = append(attrs, "err", err.Error())
		s.log.Warn("prune", attrs...)
		return
	}
	s.log.Info("prune", attrs...)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// meteredBody counts bytes read and forwards the declared request size
// so engine auto-selection can consider the parallel pruner for large
// uploads of known length.
type meteredBody struct {
	r    io.Reader
	n    int64
	size int64 // Content-Length; <= 0 means unknown
}

func (b *meteredBody) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	b.n += int64(n)
	return n, err
}

// InputSize implements prune.Sizer: the unread remainder of a body of
// declared length.
func (b *meteredBody) InputSize() (int64, bool) {
	if b.size <= 0 {
		return 0, false
	}
	return b.size - b.n, true
}

// flushWriter pushes each pruner write through to the client: the
// streaming path's output arrives in window-sized bursts long before
// the document ends (the pipelined engine emits windows as they are
// pruned), and flushing per write turns that into a real
// time-to-first-byte win instead of buffering until net/http feels
// like it. The pruner writes through a bufio layer, so writes here are
// already batched — the flush cost is per window, not per token.
type flushWriter struct {
	w io.Writer
	f http.Flusher
}

func (fw *flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if n > 0 {
		fw.f.Flush()
	}
	return n, err
}

// countingResponseWriter counts body bytes and records whether the
// response has started, which decides between a clean error status and
// the trailer path.
type countingResponseWriter struct {
	rw    http.ResponseWriter
	n     int64
	wrote bool
}

func (w *countingResponseWriter) Write(p []byte) (int, error) {
	w.wrote = true
	n, err := w.rw.Write(p)
	w.n += int64(n)
	return n, err
}
