package server

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"
)

// latencyBounds are the inclusive upper bounds of the request-latency
// histogram buckets; requests slower than the last bound land in the
// overflow bucket.
var latencyBounds = [...]time.Duration{
	1 * time.Millisecond,
	2 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
}

// histogram is a fixed-bucket latency histogram updated with atomics, so
// the request path never serialises on a metrics lock.
type histogram struct {
	buckets [len(latencyBounds) + 1]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

func (h *histogram) observe(d time.Duration) {
	i := 0
	for i < len(latencyBounds) && d > latencyBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(d.Nanoseconds())
}

// snapshot renders the histogram Prometheus-style: cumulative counts per
// "le" bound plus count and sum.
func (h *histogram) snapshot() map[string]any {
	m := make(map[string]any, len(latencyBounds)+3)
	var cum int64
	for i, b := range latencyBounds {
		cum += h.buckets[i].Load()
		m["le_"+b.String()] = cum
	}
	m["le_inf"] = cum + h.buckets[len(latencyBounds)].Load()
	m["count"] = h.count.Load()
	m["sum_nanos"] = h.sum.Load()
	return m
}

// metrics are the server's own counters, alongside the engine's.
type metrics struct {
	// requests counts every /prune request received; the outcome
	// counters below partition the finished ones.
	requests      atomic.Int64
	ok            atomic.Int64
	badRequests   atomic.Int64 // malformed request: unknown schema, bad query, wrong method
	rejectedBusy  atomic.Int64 // admission control said no (429)
	rejectedLarge atomic.Int64 // body over the size limit (413)
	timeouts      atomic.Int64 // request deadline passed mid-prune (408)
	pruneFailures atomic.Int64 // the document itself failed to prune (422)
	clientGone    atomic.Int64 // client disconnected mid-request
	gatherPrunes  atomic.Int64 // requests served by the span-gather path
	inFlight      atomic.Int64 // prunes currently holding an admission slot

	// pipelinedPrunes counts requests served by the pipelined streaming
	// engine; peakWindowBytes is the largest window-slab residency any
	// single request reached (a high-water gauge, not a counter).
	pipelinedPrunes atomic.Int64
	peakWindowBytes atomic.Int64

	// multiRequests counts /multiprune requests; multiFanout totals the
	// projectors they named (fanout/requests is the mean set size).
	// multiTableHits / multiTableMisses count whether each request's
	// fused decision table came from the engine's projector cache.
	multiRequests    atomic.Int64
	multiFanout      atomic.Int64
	multiTableHits   atomic.Int64
	multiTableMisses atomic.Int64

	// cacheHits / cacheMisses partition gather-path prunes that went
	// through the result cache (HIT served cached bytes, MISS filled the
	// cache); cache304 counts body-free revalidations answered 304 (both
	// the POST If-None-Match path and HEAD probes); cacheHead counts
	// HEAD /prune requests. Eviction and byte-residency counters live in
	// the engine section of /debug/vars as result_cache_*.
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	cache304    atomic.Int64
	cacheHead   atomic.Int64

	bytesIn  atomic.Int64
	bytesOut atomic.Int64
	latency  histogram
}

// raise lifts a high-water gauge to v if v is larger (lock-free max).
func raise(g *atomic.Int64, v int64) {
	for {
		cur := g.Load()
		if v <= cur || g.CompareAndSwap(cur, v) {
			return
		}
	}
}

func (m *metrics) snapshot() map[string]any {
	return map[string]any{
		"requests":             m.requests.Load(),
		"ok":                   m.ok.Load(),
		"bad_requests":         m.badRequests.Load(),
		"rejected_concurrency": m.rejectedBusy.Load(),
		"rejected_too_large":   m.rejectedLarge.Load(),
		"timeouts":             m.timeouts.Load(),
		"prune_failures":       m.pruneFailures.Load(),
		"client_gone":          m.clientGone.Load(),
		"gather_prunes":        m.gatherPrunes.Load(),
		"pipelined_prunes":     m.pipelinedPrunes.Load(),
		"peak_window_bytes":    m.peakWindowBytes.Load(),
		"in_flight":            m.inFlight.Load(),
		"multi_requests":       m.multiRequests.Load(),
		"multi_fanout":         m.multiFanout.Load(),
		"multi_table_hits":     m.multiTableHits.Load(),
		"multi_table_misses":   m.multiTableMisses.Load(),
		"cache_hits":           m.cacheHits.Load(),
		"cache_misses":         m.cacheMisses.Load(),
		"cache_304":            m.cache304.Load(),
		"cache_head":           m.cacheHead.Load(),
		"bytes_in":             m.bytesIn.Load(),
		"bytes_out":            m.bytesOut.Load(),
		"latency":              m.latency.snapshot(),
	}
}

// handleVars serves the /debug/vars document: the full engine.Metrics
// snapshot plus the server counters, as one JSON object. It is
// self-contained (not the global expvar registry) so several servers in
// one process — or one test binary — never fight over published names.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	vars := map[string]any{
		"engine": s.eng.MetricsMap(),
		"server": s.m.snapshot(),
		"limits": map[string]any{
			"max_body_bytes":   s.maxBody,
			"max_token_size":   s.opts.MaxTokenSize,
			"max_gather_bytes": s.maxGather,
			"max_concurrent":   cap(s.sem),
			"intra_workers":    s.intraWorkers,
		},
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(vars)
}
