package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"mime/multipart"
	"net/http"
	"net/textproto"
	"strconv"
	"strings"
	"time"

	"xmlproj"
)

// handleMultiprune prunes one request body against several projectors in
// a single shared scan (POST /multiprune). The projector set is named by
// repeated projection= parameters (precompiled at startup) or by
// schema= plus repeated proj= query bunches (queries separated by ';'),
// in request order. The response is multipart/mixed with one part per
// projector, in the same order: successful parts carry the pruned
// document plus X-Prune-* stats headers, failed parts are empty and
// carry X-Prune-Error. Verdicts are per projector — one projector's
// validation failure does not disturb the others' output.
func (s *Server) handleMultiprune(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.m.requests.Add(1)
	s.m.multiRequests.Add(1)

	nps, errStatus, errMsg := s.resolveMulti(r)
	if nps == nil {
		s.m.badRequests.Add(1)
		http.Error(w, errMsg, errStatus)
		s.logRequest(r, errStatus, 0, 0, xmlproj.PruneAuto, xmlproj.ParallelStages{}, xmlproj.PipelineStages{}, time.Since(start), "", errors.New(errMsg))
		return
	}
	s.m.multiFanout.Add(int64(len(nps)))

	if s.maxBody > 0 && r.ContentLength > s.maxBody {
		s.m.rejectedLarge.Add(1)
		http.Error(w, fmt.Sprintf("request body %d bytes exceeds limit %d", r.ContentLength, s.maxBody), http.StatusRequestEntityTooLarge)
		s.logRequest(r, http.StatusRequestEntityTooLarge, 0, 0, xmlproj.PruneAuto, xmlproj.ParallelStages{}, xmlproj.PipelineStages{}, time.Since(start), "", errors.New("content-length over limit"))
		return
	}

	if !s.admit(r.Context()) {
		s.m.rejectedBusy.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server at concurrency limit", http.StatusTooManyRequests)
		s.logRequest(r, http.StatusTooManyRequests, 0, 0, xmlproj.PruneAuto, xmlproj.ParallelStages{}, xmlproj.PipelineStages{}, time.Since(start), "", errors.New("admission rejected"))
		return
	}
	defer func() { <-s.sem }()
	s.m.inFlight.Add(1)
	defer s.m.inFlight.Add(-1)

	ctx := r.Context()
	var rc *http.ResponseController
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
		rc = http.NewResponseController(w)
		deadline := time.Now().Add(s.opts.RequestTimeout)
		_ = rc.SetReadDeadline(deadline)
		_ = rc.SetWriteDeadline(deadline)
	}

	// The shared scan tokenizes in place, so the body is buffered whole
	// (bounded by MaxBodyBytes) — the multi path is the span-gather path.
	var src = r.Body
	if s.maxBody > 0 {
		src = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	body := &meteredBody{r: src, size: r.ContentLength}
	buf := gatherBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if body.size > 0 {
		buf.Grow(int(body.size))
	}
	_, rerr := buf.ReadFrom(body)

	var results []*xmlproj.PruneResult
	var errs []error
	if rerr == nil {
		ps := make([]*xmlproj.Projector, len(nps))
		for j, np := range nps {
			ps[j] = np.p
		}
		var hit bool
		results, errs, hit = s.eng.PruneMultiGather(ps, buf.Bytes(), xmlproj.StreamOptions{
			Validate:     nps[0].validate,
			MaxTokenSize: s.opts.MaxTokenSize,
			Context:      ctx,
		})
		if hit {
			s.m.multiTableHits.Add(1)
		} else {
			s.m.multiTableMisses.Add(1)
		}
	}
	elapsed := time.Since(start)

	if rc != nil {
		_ = rc.SetReadDeadline(time.Time{})
		_ = rc.SetWriteDeadline(time.Time{})
	}

	if rerr != nil {
		status := s.classifyPruneErr(rerr)
		http.Error(w, rerr.Error(), status)
		if buf.Cap() <= maxPooledGatherBuf {
			gatherBufPool.Put(buf)
		}
		s.m.bytesIn.Add(body.n)
		s.m.latency.observe(elapsed)
		s.logRequest(r, status, body.n, 0, xmlproj.PruneAuto, xmlproj.ParallelStages{}, xmlproj.PipelineStages{}, elapsed, "", rerr)
		return
	}

	// Per-projector verdicts ride in the parts, so the response itself is
	// 200 even when some (or all) projectors failed on this document.
	mw := multipart.NewWriter(w)
	w.Header().Set("Content-Type", "multipart/mixed; boundary="+mw.Boundary())
	var bytesOut int64
	var firstErr error
	failed := 0
	for j, np := range nps {
		h := make(textproto.MIMEHeader)
		h.Set("X-Projection", np.label)
		if errs[j] != nil {
			h.Set("X-Prune-Error", errs[j].Error())
			if firstErr == nil {
				firstErr = errs[j]
			}
			failed++
			mw.CreatePart(h)
			s.recordMultiPart(0, xmlproj.PruneStats{}, errs[j])
			continue
		}
		res := results[j]
		h.Set("Content-Type", "application/xml")
		h.Set("Content-Length", strconv.FormatInt(res.Len(), 10))
		h.Set("X-Prune-Elements-Out", strconv.FormatInt(res.Stats.ElementsOut, 10))
		h.Set("X-Prune-Elements-Skipped", strconv.FormatInt(res.Stats.ElementsSkipped, 10))
		h.Set("X-Prune-Bytes-Out", strconv.FormatInt(res.Stats.BytesOut, 10))
		pw, perr := mw.CreatePart(h)
		if perr == nil {
			_, perr = res.WriteTo(pw)
		}
		// The input bytes are credited once, on the first part — the
		// document was read once, however many projectors shared the scan.
		in := int64(0)
		if j == 0 {
			in = body.n
		}
		s.recordMultiPart(in, res.Stats, perr)
		bytesOut += res.Stats.BytesOut
		res.Close()
		if perr != nil {
			// The client stopped draining mid-part; nothing more can be
			// delivered.
			if firstErr == nil {
				firstErr = perr
			}
			break
		}
	}
	mw.Close()
	// Close released the gather lists referencing buf; it may be reused.
	if buf.Cap() <= maxPooledGatherBuf {
		gatherBufPool.Put(buf)
	}

	s.m.bytesIn.Add(body.n)
	s.m.bytesOut.Add(bytesOut)
	s.m.latency.observe(elapsed)
	if failed == 0 && firstErr == nil {
		s.m.ok.Add(1)
	} else if firstErr != nil {
		s.classifyPruneErr(firstErr)
	}
	// The shared scan prunes N projections in one pass; its outputs are
	// interleaved with the scan, so the result cache never covers it.
	cacheAttr := ""
	if s.eng.ResultCacheEnabled() {
		cacheAttr = "bypass"
	}
	s.logRequest(r, http.StatusOK, body.n, bytesOut, xmlproj.PruneAuto, xmlproj.ParallelStages{}, xmlproj.PipelineStages{}, elapsed, cacheAttr, firstErr)
}

// recordMultiPart credits one projector's share of a multiprune into the
// engine counters, with the usual outcome classification.
func (s *Server) recordMultiPart(bytesIn int64, stats xmlproj.PruneStats, err error) {
	s.eng.RecordPrune(bytesIn, stats, xmlproj.ParallelStages{}, xmlproj.PipelineStages{}, err)
}

// multiProjection is one member of a multiprune set: a resolved
// projector plus the label its response part carries.
type multiProjection struct {
	label    string
	validate bool
	p        *xmlproj.Projector
}

// resolveMulti maps the request to an ordered projector list: repeated
// projection= names, or schema= with repeated proj= query bunches
// (queries separated by ';'), or both — named projections first, then
// specs, all against one schema. A nil return carries the HTTP status
// and message.
func (s *Server) resolveMulti(r *http.Request) ([]*multiProjection, int, string) {
	q := r.URL.Query()
	var out []*multiProjection
	schema := q.Get("schema")
	validate := q.Get("validate") == "1" || q.Get("validate") == "true"

	for _, name := range q["projection"] {
		np, ok := s.projections[name]
		if !ok {
			return nil, http.StatusNotFound, fmt.Sprintf("unknown projection %q", name)
		}
		if schema == "" {
			schema = np.schema
		} else if np.schema != schema {
			return nil, http.StatusBadRequest, fmt.Sprintf("projection %q is for schema %q, request uses %q — one multiprune shares one scan, so one schema", name, np.schema, schema)
		}
		v := np.validate
		if q.Has("validate") {
			v = validate
		}
		out = append(out, &multiProjection{label: name, validate: v, p: np.p})
	}

	specs := q["proj"]
	if len(specs) > 0 && schema == "" {
		return nil, http.StatusBadRequest, "proj parameters need a schema parameter"
	}
	if len(specs) > 0 {
		d, ok := s.schemas[schema]
		if !ok {
			return nil, http.StatusNotFound, fmt.Sprintf("unknown schema %q", schema)
		}
		for i, spec := range specs {
			var queries []string
			for _, part := range strings.Split(spec, ";") {
				if part = strings.TrimSpace(part); part != "" {
					queries = append(queries, part)
				}
			}
			p, err := s.infer(d, queries)
			if err != nil {
				return nil, http.StatusBadRequest, fmt.Sprintf("proj %d: %v", i, err)
			}
			out = append(out, &multiProjection{label: fmt.Sprintf("proj%d", i), validate: validate, p: p})
		}
	}

	switch {
	case len(out) == 0:
		return nil, http.StatusBadRequest, "missing projection or proj parameters"
	case len(out) > xmlproj.MaxFusedProjectors:
		return nil, http.StatusBadRequest, fmt.Sprintf("%d projections exceed the limit of %d per request", len(out), xmlproj.MaxFusedProjectors)
	}
	// One scan, one validation mode: a validating projector would see
	// kills a non-validating one must not, so the set has to agree.
	for _, m := range out[1:] {
		if m.validate != out[0].validate {
			return nil, http.StatusBadRequest, "projections disagree on validation; pass an explicit validate parameter"
		}
	}
	return out, 0, ""
}
