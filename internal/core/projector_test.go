package core

import (
	"testing"

	"xmlproj/internal/dtd"
	"xmlproj/internal/xpath"
	"xmlproj/internal/xpathl"
)

func inferFor(t *testing.T, d *dtd.DTD, src string) *Projector {
	t.Helper()
	paths, err := xpathl.FromQuery(xpath.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	pr, err := Infer(d, paths)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func bibDTD(t *testing.T) *dtd.DTD {
	t.Helper()
	d, err := dtd.ParseString(`
<!ELEMENT bib (book*)>
<!ELEMENT book (title, author+, year?)>
<!ATTLIST book isbn CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`, "")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestProjectorSimpleChild(t *testing.T) {
	d := bibDTD(t)
	pr := inferFor(t, d, "child::book/child::title")
	for _, want := range []dtd.Name{"bib", "book", "title"} {
		if !pr.Has(want) {
			t.Fatalf("π misses %s: %s", want, pr)
		}
	}
	for _, unwanted := range []dtd.Name{"author", "year", dtd.TextName("title")} {
		if pr.Has(unwanted) {
			t.Fatalf("π keeps useless %s: %s", unwanted, pr)
		}
	}
}

func TestProjectorDescendantSelective(t *testing.T) {
	d := bibDTD(t)
	// descendant::year keeps only the spine bib/book/year.
	pr := inferFor(t, d, "descendant::year")
	for _, want := range []dtd.Name{"bib", "book", "year"} {
		if !pr.Has(want) {
			t.Fatalf("π misses %s: %s", want, pr)
		}
	}
	if pr.Has("title") || pr.Has("author") {
		t.Fatalf("π keeps siblings not needed: %s", pr)
	}
}

func TestProjectorUpwardAxis(t *testing.T) {
	d := bibDTD(t)
	pr := inferFor(t, d, "descendant::author/parent::node()/child::title")
	for _, want := range []dtd.Name{"bib", "book", "author", "title"} {
		if !pr.Has(want) {
			t.Fatalf("π misses %s: %s", want, pr)
		}
	}
	if pr.Has("year") {
		t.Fatalf("π keeps year: %s", pr)
	}
}

// The paper's running example Q (§3): the projector must keep exactly the
// names needed to navigate down to author text and back up to title.
func TestProjectorPaperQuery(t *testing.T) {
	d := bibDTD(t)
	q := `/descendant::author/child::text()[self::node() = "Dante"]/ancestor::book/child::title`
	pr := inferFor(t, d, q)
	for _, want := range []dtd.Name{"bib", "book", "author", dtd.TextName("author"), "title"} {
		if !pr.Has(want) {
			t.Fatalf("π misses %s: %s", want, pr)
		}
	}
	if pr.Has("year") || pr.Has(dtd.TextName("title")) {
		t.Fatalf("π imprecise: %s", pr)
	}
}

func TestProjectorEmptyQueryPrunesHard(t *testing.T) {
	d := bibDTD(t)
	// A query that can never match keeps only the root.
	pr := inferFor(t, d, "child::title")
	if pr.Names.Len() != 1 || !pr.Has("bib") {
		t.Fatalf("π for empty query = %s, want {bib}", pr)
	}
}

func TestProjectorCondition(t *testing.T) {
	d := bibDTD(t)
	pr := inferFor(t, d, "child::book[child::year]/child::title")
	for _, want := range []dtd.Name{"bib", "book", "year", "title"} {
		if !pr.Has(want) {
			t.Fatalf("π misses %s: %s", want, pr)
		}
	}
	if pr.Has("author") {
		t.Fatalf("π keeps author: %s", pr)
	}
	// Value comparisons additionally need the compared text.
	pr = inferFor(t, d, `child::book[child::author = "Dante"]/child::title`)
	if !pr.Has(dtd.TextName("author")) {
		t.Fatalf("π misses the compared text: %s", pr)
	}
}

func TestProjectorAttributeQuery(t *testing.T) {
	d := bibDTD(t)
	pr := inferFor(t, d, "child::book/attribute::isbn")
	if !pr.Has(dtd.AttrName("book", "isbn")) {
		t.Fatalf("π misses @isbn: %s", pr)
	}
	pr = inferFor(t, d, "child::book[attribute::isbn]/child::title")
	if !pr.Has(dtd.AttrName("book", "isbn")) || !pr.Has("title") {
		t.Fatalf("π = %s", pr)
	}
}

// Thm. 4.7's counterexample DTD: {X → a[Y,W], W → c[], Y → b[Z], Z → d[]}.
func thm47DTD(t *testing.T) *dtd.DTD {
	t.Helper()
	d, err := dtd.ParseString(`
<!ELEMENT a (b, c)>
<!ELEMENT c EMPTY>
<!ELEMENT b (d)>
<!ELEMENT d EMPTY>
`, "a")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestProjectorNotStronglySpecifiedKeepsMore(t *testing.T) {
	d := thm47DTD(t)
	// self::a[child::node()] is not strongly specified; the paper notes
	// the inferred projector includes W=c beyond the optimal {X,Y}.
	pr := inferFor(t, d, "self::a[child::node()]")
	if !pr.Has("a") {
		t.Fatalf("π misses a: %s", pr)
	}
	if !pr.Has("b") && !pr.Has("c") {
		t.Fatalf("π should keep the condition's data needs: %s", pr)
	}
}

func TestProjectorStronglySpecifiedOptimal(t *testing.T) {
	d := thm47DTD(t)
	// self::a[child::b] is strongly specified: optimal projector {a, b}.
	pr := inferFor(t, d, "self::a[b]")
	if !pr.Has("a") || !pr.Has("b") {
		t.Fatalf("π misses needed names: %s", pr)
	}
	if pr.Has("c") || pr.Has("d") {
		t.Fatalf("π not optimal: %s", pr)
	}
}

func TestProjectorDescendantOrSelfSplit(t *testing.T) {
	d := bibDTD(t)
	// //title  ≡ descendant-or-self::node()/child::title.
	pr := inferFor(t, d, "//title")
	for _, want := range []dtd.Name{"bib", "book", "title"} {
		if !pr.Has(want) {
			t.Fatalf("π misses %s: %s", want, pr)
		}
	}
	if pr.Has("author") || pr.Has("year") {
		t.Fatalf("π imprecise: %s", pr)
	}
}

func TestMaterializeKeepsSubtree(t *testing.T) {
	d := bibDTD(t)
	paths, err := xpathl.FromQuery(xpath.MustParse("child::book"))
	if err != nil {
		t.Fatal(err)
	}
	pr, err := InferMaterialized(d, paths)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []dtd.Name{
		"bib", "book", "title", "author", "year",
		dtd.TextName("title"), dtd.TextName("author"), dtd.TextName("year"),
		dtd.AttrName("book", "isbn"),
	} {
		if !pr.Has(want) {
			t.Fatalf("materialised π misses %s: %s", want, pr)
		}
	}
	// Materialize is idempotent on already-widened paths.
	m := Materialize(paths[0])
	if got := Materialize(m).String(); got != m.String() {
		t.Fatalf("Materialize not idempotent: %s vs %s", got, m)
	}
}

func TestMaterializeSelectiveStillPrunes(t *testing.T) {
	d := bibDTD(t)
	paths, _ := xpathl.FromQuery(xpath.MustParse("child::book/child::title"))
	pr, err := InferMaterialized(d, paths)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Has(dtd.TextName("title")) {
		t.Fatalf("π misses title text: %s", pr)
	}
	if pr.Has("author") || pr.Has("year") {
		t.Fatalf("materialised π over-keeps: %s", pr)
	}
}

func TestProjectorUnionOfQueries(t *testing.T) {
	d := bibDTD(t)
	p1, _ := xpathl.FromQuery(xpath.MustParse("child::book/child::title"))
	p2, _ := xpathl.FromQuery(xpath.MustParse("child::book/child::year"))
	pr, err := Infer(d, append(p1, p2...))
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Has("title") || !pr.Has("year") {
		t.Fatalf("bunch projector misses names: %s", pr)
	}
	if pr.Has("author") {
		t.Fatalf("bunch projector over-keeps: %s", pr)
	}
}

func TestProjectorRecursiveDTDTerminates(t *testing.T) {
	d, err := dtd.ParseString(`
<!ELEMENT part (name, part*)>
<!ELEMENT name (#PCDATA)>
`, "part")
	if err != nil {
		t.Fatal(err)
	}
	pr := inferFor(t, d, "descendant::part/child::name")
	if !pr.Has("part") || !pr.Has("name") {
		t.Fatalf("π = %s", pr)
	}
	if pr.Has(dtd.TextName("name")) {
		t.Fatalf("π keeps text needlessly: %s", pr)
	}
	// Deeply nested descendants with backward steps still terminate.
	pr = inferFor(t, d, "descendant::name/ancestor::part/child::name")
	if !pr.Has("part") || !pr.Has("name") {
		t.Fatalf("π = %s", pr)
	}
}

func TestProjectorRejectsUnrewrittenAxis(t *testing.T) {
	inf := NewInferencer(bibDTD(t))
	bad := &xpathl.Path{Steps: []xpathl.Step{{SStep: xpathl.SStep{Axis: xpath.FollowingSibling, Test: xpath.NodeTestNode}}}}
	if _, err := inf.InferPath(bad); err == nil {
		t.Fatal("sibling axis must be rejected (callers rewrite first)")
	}
}

func TestProjectorAncestorClosedChains(t *testing.T) {
	// Every name in π (other than the root) has a parent in π: π is a
	// union of chains from the root (Def. 2.6).
	d := bibDTD(t)
	for _, q := range []string{
		"descendant::year", "//author/parent::node()", "child::book[year]/child::title",
		`/descendant::author/child::text()[self::node() = "Dante"]/ancestor::book/child::title`,
	} {
		pr := inferFor(t, d, q)
		for n := range pr.Names {
			if n == d.Root {
				continue
			}
			if d.Parents(n).Intersect(pr.Names).Empty() {
				t.Errorf("%s: name %s has no parent in π = %s", q, n, pr)
			}
		}
	}
}

func TestKeepRatio(t *testing.T) {
	d := bibDTD(t)
	all := inferFor(t, d, "descendant-or-self::node()/descendant-or-self::node()")
	if r := all.KeepRatio(); r <= 0 || r > 1 {
		t.Fatalf("KeepRatio = %v", r)
	}
	selective := inferFor(t, d, "child::nosuchelement")
	if r := selective.KeepRatio(); r <= 0 || r > 0.5 {
		t.Fatalf("selective KeepRatio = %v", r)
	}
}
