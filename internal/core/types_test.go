package core

import (
	"testing"

	"xmlproj/internal/dtd"
	"xmlproj/internal/xpath"
	"xmlproj/internal/xpathl"
)

// paperDTD builds the grammar. DTD syntax cannot literally write
// (d?, #PCDATA), so build it programmatically the way the paper writes it.
func paperDTD(t *testing.T) *dtd.DTD {
	t.Helper()
	d, err := dtd.ParseString(`
<!ELEMENT c (a, b)>
<!ELEMENT a (d?, atext)>
<!ELEMENT atext (#PCDATA)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT d (a?)>
`, "c")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func lpath(t *testing.T, src string) *xpathl.Path {
	t.Helper()
	ps, err := xpathl.FromQuery(xpath.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 {
		t.Fatalf("expected one path for %q, got %d", src, len(ps))
	}
	return ps[0]
}

func typeOf(t *testing.T, d *dtd.DTD, src string) dtd.NameSet {
	t.Helper()
	return NewChecker(d).Type(lpath(t, src))
}

func TestAxisType(t *testing.T) {
	d := paperDTD(t)
	c := dtd.NewNameSet("c")
	if got := AxisType(d, c, xpath.Child); !got.Equal(dtd.NewNameSet("a", "b")) {
		t.Fatalf("child(c) = %s", got)
	}
	desc := AxisType(d, c, xpath.Descendant)
	for _, want := range []dtd.Name{"a", "b", "d", dtd.TextName("atext"), dtd.TextName("b")} {
		if !desc.Has(want) {
			t.Fatalf("descendant(c) misses %s: %s", want, desc)
		}
	}
	if desc.Has("c") {
		t.Fatalf("descendant(c) must not contain c: %s", desc)
	}
	// Y = a occurs under both c and d.
	if got := AxisType(d, dtd.NewNameSet("a"), xpath.Parent); !got.Equal(dtd.NewNameSet("c", "d")) {
		t.Fatalf("parent(a) = %s", got)
	}
	if got := AxisType(d, c, xpath.DescendantOrSelf); !got.Has("c") || !got.Has("d") {
		t.Fatalf("dos(c) = %s", got)
	}
	anc := AxisType(d, dtd.NewNameSet("d"), xpath.Ancestor)
	if !anc.Has("a") || !anc.Has("c") || !anc.Has("d") {
		// d is recursive through a: d → a? and a → d?.
		t.Fatalf("ancestor(d) = %s", anc)
	}
}

func TestTestType(t *testing.T) {
	d := paperDTD(t)
	all := d.ReachableFromRoot()
	if got := TestType(d, all, xpath.NameTest("a")); !got.Equal(dtd.NewNameSet("a")) {
		t.Fatalf("T(a) = %s", got)
	}
	txt := TestType(d, all, xpath.TextTest)
	if !txt.Has(dtd.TextName("b")) || txt.Has("b") {
		t.Fatalf("T(text) = %s", txt)
	}
	star := TestType(d, all, xpath.NodeTest{Kind: xpath.TestStar})
	if star.Has(dtd.TextName("b")) || !star.Has("b") {
		t.Fatalf("T(*) = %s", star)
	}
	if got := TestType(d, all, xpath.NodeTestNode); !got.Equal(all) {
		t.Fatalf("T(node) = %s", got)
	}
}

// The motivating example of §4.1: self::c/child::a/parent::node() must
// type to {X}={c}, not {c,d} — the context rules out d.
func TestContextMakesParentPrecise(t *testing.T) {
	d := paperDTD(t)
	got := typeOf(t, d, "self::c/child::a/parent::node()")
	if !got.Equal(dtd.NewNameSet("c")) {
		t.Fatalf("type = %s, want {c} (the context must exclude d)", got)
	}
	// Without a preceding downward step the parent really is ambiguous…
	got = typeOf(t, d, "descendant::a/parent::node()")
	if !got.Has("c") || !got.Has("d") {
		t.Fatalf("descendant::a/parent = %s, want both c and d", got)
	}
}

func TestTypeSimpleQueries(t *testing.T) {
	d := paperDTD(t)
	cases := []struct {
		src  string
		want dtd.NameSet
	}{
		{"self::c", dtd.NewNameSet("c")},
		{"child::a", dtd.NewNameSet("a")},
		{"child::nosuch", dtd.NameSet{}},
		{"child::a/child::d", dtd.NewNameSet("d")},
		{"child::b/child::text()", dtd.NewNameSet(dtd.TextName("b"))},
		{"descendant::d/ancestor::node()", dtd.NewNameSet("c", "a", "d")},
		{"child::b/parent::node()", dtd.NewNameSet("c")},
		{"child::b/child::a", dtd.NameSet{}}, // b has no element children
	}
	for _, c := range cases {
		if got := typeOf(t, d, c.src); !got.Equal(c.want) {
			t.Errorf("type(%s) = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestTypeEmptinessProperty2(t *testing.T) {
	// Property (2) of §4.1: paths that are empty on every instance type to
	// ∅ (on well-behaved DTDs).
	d := paperDTD(t)
	for _, src := range []string{
		"child::d",                             // d only occurs under a
		"child::a/child::b",                    // b is a child of c, not a
		"self::c/parent::node()",               // root has no parent
		"child::a/child::text()/child::node()", // text has no children
	} {
		if got := typeOf(t, d, src); !got.Empty() {
			t.Errorf("type(%s) = %s, want empty", src, got)
		}
	}
}

func TestTypeConditions(t *testing.T) {
	d := paperDTD(t)
	// [child::d] can hold only for a.
	got := typeOf(t, d, "descendant::node()[d]")
	if !got.Equal(dtd.NewNameSet("a")) {
		t.Fatalf("descendant::node()[d] = %s, want {a}", got)
	}
	// An unsatisfiable condition empties the type.
	got = typeOf(t, d, "child::a[nosuch]")
	if !got.Empty() {
		t.Fatalf("a[nosuch] = %s, want empty", got)
	}
	// A non-structural condition keeps everything.
	got = typeOf(t, d, "child::a[position() > 1]")
	if !got.Equal(dtd.NewNameSet("a")) {
		t.Fatalf("a[position()>1] = %s", got)
	}
	// Disjunction.
	got = typeOf(t, d, "child::node()[self::a or self::b]")
	if !got.Equal(dtd.NewNameSet("a", "b")) {
		t.Fatalf("[self::a or self::b] = %s", got)
	}
}

func TestTypeAttributes(t *testing.T) {
	d, err := dtd.ParseString(`
<!ELEMENT r (e*)>
<!ELEMENT e (#PCDATA)>
<!ATTLIST e id CDATA #REQUIRED other CDATA #IMPLIED>
`, "r")
	if err != nil {
		t.Fatal(err)
	}
	got := typeOf(t, d, "child::e/attribute::id")
	if !got.Equal(dtd.NewNameSet(dtd.AttrName("e", "id"))) {
		t.Fatalf("@id = %s", got)
	}
	got = typeOf(t, d, "child::e/attribute::*")
	if got.Len() != 2 {
		t.Fatalf("@* = %s", got)
	}
	got = typeOf(t, d, "child::e/attribute::id/parent::node()")
	if !got.Equal(dtd.NewNameSet("e")) {
		t.Fatalf("@id/parent = %s", got)
	}
	// The child axis never yields attribute names.
	got = typeOf(t, d, "child::e/child::node()")
	if got.Has(dtd.AttrName("e", "id")) {
		t.Fatalf("child::node() leaked attributes: %s", got)
	}
}

// §4.1's completeness counterexample 1: X → c[Y|Z] not *-guarded; the
// query self::c[child::a]/child::b is always empty but its type is not.
// The analysis must stay sound (superset) — and the DTD must be flagged.
func TestRecursiveUnguardedStaysSound(t *testing.T) {
	d, err := dtd.ParseString(`
<!ELEMENT c (a | b)>
<!ELEMENT a (a*, t)>
<!ELEMENT t (#PCDATA)>
<!ELEMENT b (#PCDATA)>
`, "c")
	if err != nil {
		t.Fatal(err)
	}
	if d.IsStarGuarded() {
		t.Fatal("DTD should not be *-guarded")
	}
	if !d.IsRecursive() {
		t.Fatal("DTD should be recursive")
	}
	got := typeOf(t, d, "self::c[a]/child::b")
	// Incomplete (paper says {Y,Z} are uselessly included) but must
	// contain at least the sound answer; the point is no crash and
	// supersetness, checked by the soundness property tests in prune.
	if !got.Has("b") {
		t.Fatalf("type misses b: %s", got)
	}
	// Counterexample 2: recursion + backward axis loses precision but the
	// result must still include the true answer {c}.
	got = typeOf(t, d, "self::c/child::a/parent::node()")
	if !got.Has("c") {
		t.Fatalf("type misses c: %s", got)
	}
}

func TestWellFormednessPreserved(t *testing.T) {
	// After every step of a chain of judgements, κ ⊆ τ ∪ ancestors(τ).
	d := paperDTD(t)
	c := NewChecker(d)
	env := RootEnv(d)
	path := lpath(t, "descendant::node()/self::d/ancestor::node()/child::a")
	for _, s := range path.Steps {
		env = c.TypeStep(env, s)
		keep := env.Tau.Union(d.Ancestors(env.Tau))
		for n := range env.Kappa {
			if !keep.Has(n) {
				t.Fatalf("context %s not well-formed for τ=%s after %s", env.Kappa, env.Tau, s)
			}
		}
	}
}
