// Package core implements the paper's central contribution: the static
// analysis that infers a type projector from an XPathℓ path and a DTD.
//
// It has two layers, mirroring §4 of the paper:
//
//   - the type system of Fig. 1 (this file): judgements
//     (τ,κ) ⊢E Path : (τ′,κ′) computing the set of names a path can
//     produce, with *contexts* κ making upward axes precise;
//   - the projector-inference rules of Fig. 2 (projector.go): judgements
//     (τ,κ) ⊩E Path : π computing the type projector itself.
package core

import (
	"fmt"
	"strings"

	"xmlproj/internal/dtd"
	"xmlproj/internal/xpath"
	"xmlproj/internal/xpathl"
)

// Env is an environment Σ = (τ, κ): the current type and context. The
// context contains only names occurring on chains that end at names in τ
// (well-formedness, §4.1); it is what makes the analysis of upward axes
// precise on DTDs where a name occurs in several contents.
type Env struct {
	Tau   dtd.NameSet
	Kappa dtd.NameSet
}

func (e Env) String() string {
	return fmt.Sprintf("(%s, %s)", e.Tau, e.Kappa)
}

// RootEnv is the initial environment ({X}, {X}) for a DTD rooted at X.
func RootEnv(d *dtd.DTD) Env {
	return Env{Tau: dtd.NewNameSet(d.Root), Kappa: dtd.NewNameSet(d.Root)}
}

// AxisType implements A_E(τ, Axis) of Def. 4.1 extended with the
// descendant-or-self / ancestor-or-self / attribute axes used by the
// implementation (§6).
func AxisType(d *dtd.DTD, tau dtd.NameSet, axis xpath.Axis) dtd.NameSet {
	switch axis {
	case xpath.Self:
		return tau.Clone()
	case xpath.Child:
		return d.ContentStep(tau)
	case xpath.Descendant:
		return d.ContentDescendants(tau)
	case xpath.DescendantOrSelf:
		return tau.Union(d.ContentDescendants(tau))
	case xpath.Parent:
		return d.StepUp(tau)
	case xpath.Ancestor:
		return d.Ancestors(tau)
	case xpath.AncestorOrSelf:
		return tau.Union(d.Ancestors(tau))
	case xpath.Attribute:
		return d.AttNames(tau)
	default:
		// Sibling and preceding/following axes are rewritten away by
		// xpathl.RewriteAxis before the analysis runs.
		return dtd.NameSet{}
	}
}

// TestType implements T_E(τ, Test) of Def. 4.1. Attribute names can only
// enter a type through the attribute axis (A_E filters them out
// everywhere else), so name and * tests match them by their attribute
// part without needing to know the axis — which the encoding
// Axis::Test ⇒ Axis::node/self::Test erases anyway.
func TestType(d *dtd.DTD, tau dtd.NameSet, test xpath.NodeTest) dtd.NameSet {
	out := dtd.NameSet{}
	for n := range tau {
		switch test.Kind {
		case xpath.TestNode:
			out.Add(n)
		case xpath.TestText:
			if n.IsText() {
				out.Add(n)
			}
		case xpath.TestStar:
			if !n.IsText() {
				out.Add(n)
			}
		case xpath.TestName:
			if n.IsAttr() {
				if strings.HasSuffix(string(n), "@"+test.Name) {
					out.Add(n)
				}
			} else if !n.IsText() {
				if def := d.Def(n); def != nil && def.Tag == test.Name {
					out.Add(n)
				}
			}
		}
	}
	return out
}

// Checker runs the Fig. 1 type system over a fixed DTD.
type Checker struct {
	D *dtd.DTD
	// NoContext disables the context intersection on upward axes — the
	// naive type system the paper's §4.1 example rejects. It exists only
	// for the ablation benchmark quantifying what contexts buy.
	NoContext bool
}

// NewChecker returns a Checker for d.
func NewChecker(d *dtd.DTD) *Checker { return &Checker{D: d} }

// restrictContext returns κ ∩ (τ ∪ A_E(τ, ancestor)): the names of κ still
// on a chain ending at τ. It re-establishes well-formedness after τ
// shrank.
func (c *Checker) restrictContext(kappa, tau dtd.NameSet) dtd.NameSet {
	keep := tau.Union(c.D.Ancestors(tau))
	return kappa.Intersect(keep)
}

// TypeSimpleStep types one predicate-free step, implementing the first
// three rules of Fig. 1 (with Axis::Test for Test ≠ node encoded as
// Axis::node/self::Test, fifth rule).
func (c *Checker) TypeSimpleStep(env Env, s xpathl.SStep) Env {
	if s.Axis != xpath.Self && (s.Test.Kind != xpath.TestNode) {
		env = c.TypeSimpleStep(env, xpathl.SStep{Axis: s.Axis, Test: xpath.NodeTestNode})
		return c.TypeSimpleStep(env, xpathl.SStep{Axis: xpath.Self, Test: s.Test})
	}
	switch {
	case s.Axis == xpath.Self:
		// Third rule: filter by the test, then discard context names that
		// only led to discarded nodes.
		tau := TestType(c.D, env.Tau, s.Test)
		return Env{Tau: tau, Kappa: c.restrictContext(env.Kappa, tau)}
	case s.Axis.Upward():
		// Second rule: upward axes intersect with the context.
		tau := AxisType(c.D, env.Tau, s.Axis)
		if !c.NoContext {
			tau = tau.Intersect(env.Kappa)
			return Env{Tau: tau, Kappa: c.restrictContext(env.Kappa, tau)}
		}
		return Env{Tau: tau, Kappa: tau.Union(c.D.Ancestors(tau))}
	default:
		// First rule: downward axes extend the context.
		tau := AxisType(c.D, env.Tau, s.Axis)
		return Env{Tau: tau, Kappa: env.Kappa.Union(tau)}
	}
}

// TypeSimplePath types a predicate-free path by step composition (the
// "cut" rule of Fig. 1). Absolute paths restart from the root
// environment.
func (c *Checker) TypeSimplePath(env Env, p xpathl.SimplePath) Env {
	if p.Absolute {
		env = RootEnv(c.D)
	}
	for _, s := range p.Steps {
		env = c.TypeSimpleStep(env, s)
		if env.Tau.Empty() {
			return Env{Tau: dtd.NameSet{}, Kappa: dtd.NameSet{}}
		}
	}
	return env
}

// CondHolds reports whether the condition may hold for a single name:
// some disjunct types to a non-empty set from ({x}, κx) (fourth rule of
// Fig. 1).
func (c *Checker) CondHolds(x dtd.Name, kappa dtd.NameSet, cond *xpathl.Cond) bool {
	single := dtd.NewNameSet(x)
	kx := kappa.Intersect(single.Union(c.D.Ancestors(single)))
	env := Env{Tau: single, Kappa: kx}
	for _, p := range cond.Disjuncts {
		if !c.TypeSimplePath(env, p).Tau.Empty() {
			return true
		}
	}
	return false
}

// TypeCondStep types self::node()[Cond] (fourth rule of Fig. 1): keep the
// names for which some disjunct may yield a non-empty result.
func (c *Checker) TypeCondStep(env Env, cond *xpathl.Cond) Env {
	tau := dtd.NameSet{}
	for x := range env.Tau {
		if c.CondHolds(x, env.Kappa, cond) {
			tau.Add(x)
		}
	}
	return Env{Tau: tau, Kappa: c.restrictContext(env.Kappa, tau)}
}

// TypeStep types one XPathℓ step, conditions included (sixth rule of
// Fig. 1 encodes Axis::Test[Cond] as Axis::Test/self::node[Cond]).
func (c *Checker) TypeStep(env Env, s xpathl.Step) Env {
	env = c.TypeSimpleStep(env, s.SStep)
	if s.Cond != nil {
		env = c.TypeCondStep(env, s.Cond)
	}
	return env
}

// TypePath types a full XPathℓ path from env: the judgement
// Σ ⊢E Path : Σ′.
func (c *Checker) TypePath(env Env, p *xpathl.Path) Env {
	if p.Absolute {
		env = RootEnv(c.D)
	}
	for _, s := range p.Steps {
		env = c.TypeStep(env, s)
		if env.Tau.Empty() {
			return Env{Tau: dtd.NameSet{}, Kappa: dtd.NameSet{}}
		}
	}
	return env
}

// Type returns the type of a path evaluated from the DTD root: the set τ
// with ({X},{X}) ⊢E P : (τ, _). Soundness (Thm. 4.4): every node produced
// by P on a valid document has its name in τ.
func (c *Checker) Type(p *xpathl.Path) dtd.NameSet {
	return c.TypePath(RootEnv(c.D), p).Tau
}
