package core

import (
	"testing"

	"xmlproj/internal/dtd"
	"xmlproj/internal/gen"
	"xmlproj/internal/validate"
	"xmlproj/internal/xpath"
	"xmlproj/internal/xpathl"
)

// TestTypeSoundnessProperty checks Thm. 4.4's soundness statement
// empirically: for random DTDs, documents and queries, the names (under
// ℑ) of every node the query selects are contained in the type inferred
// for the query's XPathℓ approximation. (The approximation only weakens
// conditions and widens axes, so original-query results are a subset of
// the approximation's, whose names τ over-approximates.)
func TestTypeSoundnessProperty(t *testing.T) {
	rounds := int64(15)
	if testing.Short() {
		rounds = 3
	}
	for seed := int64(0); seed < rounds; seed++ {
		d := gen.RandomDTD(seed, gen.DTDOptions{Elements: 8, AllowRecursion: seed%3 == 0})
		checker := NewChecker(d)
		qg := gen.NewQueryGen(d, seed*13+1, gen.QueryOptions{MaxSteps: 4, MaxPreds: 2, AllAxes: true})
		instance := gen.New(d, seed, gen.Options{MaxDepth: 6}).Document()
		it, err := validate.Document(d, instance)
		if err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < 30; qi++ {
			q := qg.Query()
			paths, err := xpathl.FromQuery(q)
			if err != nil {
				t.Fatalf("seed %d: %q: %v", seed, q, err)
			}
			tau := checker.Type(paths[0])
			res, err := xpath.NewEvaluator(instance).Eval(q)
			if err != nil {
				t.Fatalf("seed %d: %q: %v", seed, q, err)
			}
			for _, r := range res.(xpath.NodeSet) {
				var name dtd.Name
				if r.IsAttr() {
					name = dtd.AttrName(it.NameOf(r.N), r.Name())
				} else {
					name = it.NameOf(r.N)
				}
				if !tau.Has(name) {
					t.Fatalf("seed %d: %q selected %s ∉ τ = %s\ngrammar:\n%s\ndoc: %s",
						seed, q, name, tau, d, instance.XML())
				}
			}
		}
	}
}
