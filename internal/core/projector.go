package core

import (
	"fmt"
	"sort"
	"strings"

	"xmlproj/internal/dtd"
	"xmlproj/internal/xpath"
	"xmlproj/internal/xpathl"
)

// Projector is an inferred type projector π for a DTD (Def. 2.6): the set
// of names whose nodes survive pruning.
type Projector struct {
	D     *dtd.DTD
	Names dtd.NameSet
}

// Has reports whether a name is kept by the projector.
func (p *Projector) Has(n dtd.Name) bool { return p.Names.Has(n) }

// Union merges another projector for the same DTD into p (projectors are
// closed under union, §5).
func (p *Projector) Union(q *Projector) {
	p.Names.AddAll(q.Names)
}

// KeepRatio returns |π| / |DN(E) reachable from the root| — a static
// indicator of pruning selectivity.
func (p *Projector) KeepRatio() float64 {
	reach := p.D.ReachableFromRoot()
	if reach.Len() == 0 {
		return 1
	}
	return float64(p.Names.Intersect(reach).Len()) / float64(reach.Len())
}

func (p *Projector) String() string {
	names := p.Names.Sorted()
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = string(n)
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}

// Inferencer runs the Fig. 2 projector-inference rules.
type Inferencer struct {
	c *Checker
	// memo caches ⊩ results keyed by (name, context, path suffix).
	memo map[string]dtd.NameSet
}

// NewInferencer returns an Inferencer over d.
func NewInferencer(d *dtd.DTD) *Inferencer {
	return &Inferencer{c: NewChecker(d), memo: map[string]dtd.NameSet{}}
}

// InferPath infers the projector for one XPathℓ path evaluated from the
// document root: ({X},{X}) ⊩E P : π (Thm. 4.5: querying the π-pruned
// document is equivalent to querying the original).
//
// descendant-or-self and ancestor-or-self steps are not covered by the
// Fig. 2 rules; each such step is expanded into its self and
// descendant/ancestor variants and the per-variant projectors are
// unioned (projectors are closed under union). A trailing
// descendant-or-self::node() — the materialisation marker of §5 — thereby
// realises exactly the remark after Thm. 4.5: π = τ′ ∪ A_E(τ″, descendant).
func (inf *Inferencer) InferPath(p *xpathl.Path) (*Projector, error) {
	for _, s := range p.Steps {
		if err := checkAxis(s.Axis); err != nil {
			return nil, err
		}
		if s.Cond != nil {
			for _, d := range s.Cond.Disjuncts {
				for _, ds := range d.Steps {
					if err := checkAxis(ds.Axis); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	root := RootEnv(inf.c.D)
	names := dtd.NewNameSet(inf.c.D.Root)
	for _, variant := range expandOrSelf(p.Steps) {
		names.AddAll(inf.project(root.Tau, root.Kappa, variant))
	}
	return &Projector{D: inf.c.D, Names: names}, nil
}

func checkAxis(a xpath.Axis) error {
	switch a {
	case xpath.Child, xpath.Descendant, xpath.Parent, xpath.Ancestor,
		xpath.Self, xpath.DescendantOrSelf, xpath.AncestorOrSelf, xpath.Attribute:
		return nil
	}
	return fmt.Errorf("core: axis %s must be rewritten before projector inference", a)
}

// expandOrSelf replaces every descendant-or-self (ancestor-or-self) step
// by its self and descendant (ancestor) variants, returning up to 2^k
// variant paths.
func expandOrSelf(steps []xpathl.Step) [][]xpathl.Step {
	out := [][]xpathl.Step{{}}
	for _, s := range steps {
		var alts []xpathl.Step
		switch s.Axis {
		case xpath.DescendantOrSelf:
			self, desc := s, s
			self.Axis = xpath.Self
			desc.Axis = xpath.Descendant
			alts = []xpathl.Step{self, desc}
		case xpath.AncestorOrSelf:
			self, anc := s, s
			self.Axis = xpath.Self
			anc.Axis = xpath.Ancestor
			alts = []xpathl.Step{self, anc}
		default:
			alts = []xpathl.Step{s}
		}
		var next [][]xpathl.Step
		for _, prefix := range out {
			for _, a := range alts {
				variant := make([]xpathl.Step, len(prefix), len(prefix)+1)
				copy(variant, prefix)
				next = append(next, append(variant, a))
			}
		}
		out = next
	}
	return out
}

// expandSimpleOrSelf is expandOrSelf for predicate-free condition paths.
func expandSimpleOrSelf(p xpathl.SimplePath) []xpathl.SimplePath {
	steps := make([]xpathl.Step, len(p.Steps))
	for i, s := range p.Steps {
		steps[i] = xpathl.Step{SStep: s}
	}
	var out []xpathl.SimplePath
	for _, variant := range expandOrSelf(steps) {
		sp := xpathl.SimplePath{Absolute: p.Absolute}
		for _, s := range variant {
			sp.Steps = append(sp.Steps, s.SStep)
		}
		out = append(out, sp)
	}
	return out
}

// project implements Σ ⊩E P : τ for an expanded (or-self-free) path.
func (inf *Inferencer) project(tau, kappa dtd.NameSet, steps []xpathl.Step) dtd.NameSet {
	out := dtd.NameSet{}
	if len(steps) == 0 {
		return out
	}
	// Third rule of Fig. 2: decompose the type into singletons.
	for y := range tau {
		out.AddAll(inf.projectSingle(y, kappa, steps))
	}
	return out
}

func (inf *Inferencer) projectSingle(y dtd.Name, kappa dtd.NameSet, steps []xpathl.Step) dtd.NameSet {
	key := memoKey(y, kappa, steps)
	if cached, ok := inf.memo[key]; ok {
		return cached
	}
	// Seed the memo against (impossible in well-founded paths, but cheap)
	// re-entrancy with the empty set.
	inf.memo[key] = dtd.NameSet{}
	res := inf.projectSingleUncached(y, kappa, steps)
	inf.memo[key] = res
	return res
}

func memoKey(y dtd.Name, kappa dtd.NameSet, steps []xpathl.Step) string {
	var sb strings.Builder
	sb.WriteString(string(y))
	sb.WriteString("\x00")
	for _, n := range kappa.Sorted() {
		sb.WriteString(string(n))
		sb.WriteString(",")
	}
	sb.WriteString("\x00")
	for i := range steps {
		sb.WriteString(steps[i].String())
		sb.WriteString("/")
	}
	return sb.String()
}

func (inf *Inferencer) projectSingleUncached(y dtd.Name, kappa dtd.NameSet, steps []xpathl.Step) dtd.NameSet {
	c := inf.c
	s := steps[0]
	rest := steps[1:]
	selfEnv := Env{Tau: dtd.NewNameSet(y), Kappa: kappa}

	// Encoded rules: normalise to the three primitive forms.
	if s.Cond != nil && !(s.Axis == xpath.Self && s.Test.Kind == xpath.TestNode) {
		// Axis::Test[Cond]/P ⇒ Axis::Test/self::node[Cond]/P.
		norm := append([]xpathl.Step{
			{SStep: s.SStep},
			{SStep: xpathl.SStep{Axis: xpath.Self, Test: xpath.NodeTestNode}, Cond: s.Cond},
		}, rest...)
		return inf.projectSingle(y, kappa, norm)
	}
	if s.Cond == nil && s.Axis != xpath.Self && s.Test.Kind != xpath.TestNode {
		// Axis::Test/P ⇒ Axis::node/self::Test/P.
		norm := append([]xpathl.Step{
			{SStep: xpathl.SStep{Axis: s.Axis, Test: xpath.NodeTestNode}},
			{SStep: xpathl.SStep{Axis: xpath.Self, Test: s.Test}},
		}, rest...)
		return inf.projectSingle(y, kappa, norm)
	}

	// Base rule (single step): Σ ⊢ Step : (τ,κ′) ⟹ Σ ⊩ Step : τ ∪ κ′.
	// Step[Cond] is encoded as Step[Cond]/self::node() (second base rule).
	if len(rest) == 0 {
		if s.Cond != nil {
			norm := []xpathl.Step{s, {SStep: xpathl.SStep{Axis: xpath.Self, Test: xpath.NodeTestNode}}}
			return inf.projectSingle(y, kappa, norm)
		}
		env := c.TypeSimpleStep(selfEnv, s.SStep)
		return env.Tau.Union(env.Kappa)
	}

	switch {
	case s.Axis == xpath.Self && s.Cond == nil:
		// First primitive rule: self::Test/P.
		env := c.TypeStep(selfEnv, s)
		res := dtd.NewNameSet(y)
		res.AddAll(inf.project(env.Tau, env.Kappa, rest))
		return res

	case s.Axis == xpath.Self && s.Cond != nil:
		// Second primitive rule: self::node[P1 or … or Pn]/P.
		env := c.TypeCondStep(selfEnv, s.Cond)
		res := dtd.NewNameSet(y)
		res.AddAll(inf.project(env.Tau, env.Kappa, rest))
		if !env.Tau.Empty() {
			for _, d := range s.Cond.Disjuncts {
				res.AddAll(inf.projectCondPath(env, d))
			}
		}
		return res

	case s.Axis == xpath.Parent || s.Axis == xpath.Child || s.Axis == xpath.Attribute:
		// Third primitive rule: Axis::node/P for one-step axes. Instead of
		// sharing the (sibling-polluted) context κ′ = κ ∪ A_E(τ, Axis)
		// across all premises, each name Xi continues with its own chain
		// context — for a downward step exactly κ ∪ {Xi}, for an upward
		// one the restriction of κ to Xi's chains. This is the §6
		// implementation refinement that keeps contexts chain-shaped; it
		// is sound (per-name contexts still contain every name on a chain
		// to Xi) and strictly more precise than the shared context.
		env := c.TypeSimpleStep(selfEnv, s.SStep)
		res := dtd.NewNameSet(y)
		for x := range env.Tau {
			kx := inf.chainContext(kappa, env.Kappa, x, s.Axis)
			sub := Env{Tau: dtd.NewNameSet(x), Kappa: kx}
			if inf.typePathSteps(sub, rest).Tau.Empty() {
				continue
			}
			res.Add(x)
			res.AddAll(inf.projectSingle(x, kx, rest))
		}
		return res

	case s.Axis == xpath.Descendant:
		// Fourth primitive rule: desc::node/P ⇒ keep the useful
		// intermediate names, then continue with child::node/P from them.
		// The chain to any selected node passes only through useful names
		// (each intermediate has the selection as a descendant), so the
		// continuation context is κ ∪ useful, not κ ∪ A_E(τ, descendant).
		env := c.TypeSimpleStep(selfEnv, s.SStep)
		useful := dtd.NewNameSet(y)
		for x := range env.Tau {
			sub := Env{Tau: dtd.NewNameSet(x), Kappa: env.Kappa}
			if !inf.typePathSteps(sub, steps).Tau.Empty() {
				useful.Add(x)
			}
		}
		childStep := xpathl.Step{SStep: xpathl.SStep{Axis: xpath.Child, Test: xpath.NodeTestNode}}
		res := useful.Clone()
		res.AddAll(inf.project(useful, kappa.Union(useful), append([]xpathl.Step{childStep}, rest...)))
		return res

	case s.Axis == xpath.Ancestor:
		// Fifth primitive rule: ancs::node/P, symmetric via parent.
		env := c.TypeSimpleStep(selfEnv, s.SStep)
		useful := dtd.NewNameSet(y)
		for x := range env.Tau {
			sub := Env{Tau: dtd.NewNameSet(x), Kappa: env.Kappa}
			if !inf.typePathSteps(sub, steps).Tau.Empty() {
				useful.Add(x)
			}
		}
		parentStep := xpathl.Step{SStep: xpathl.SStep{Axis: xpath.Parent, Test: xpath.NodeTestNode}}
		res := useful.Clone()
		res.AddAll(inf.project(useful, env.Kappa.Intersect(kappa.Union(useful)), append([]xpathl.Step{parentStep}, rest...)))
		return res
	}
	// Unreachable given checkAxis + expandOrSelf.
	panic(fmt.Sprintf("core: unhandled step %s", s))
}

// chainContext computes the continuation context for a single name x
// reached by one step from a node whose pre-step context was kappaBefore
// (post-step shared context kappaAfter): downward steps extend the chain
// by exactly x; upward steps restrict the post-step context to x's
// chains.
func (inf *Inferencer) chainContext(kappaBefore, kappaAfter dtd.NameSet, x dtd.Name, axis xpath.Axis) dtd.NameSet {
	if axis.Upward() {
		single := dtd.NewNameSet(x)
		return kappaAfter.Intersect(single.Union(inf.c.D.Ancestors(single)))
	}
	out := kappaBefore.Clone()
	out.Add(x)
	return out
}

// typePathSteps runs the type system over a step slice (helper for the
// usefulness premises ({Xi},κ′) ⊢ P : Σ^i of Fig. 2).
func (inf *Inferencer) typePathSteps(env Env, steps []xpathl.Step) Env {
	for _, s := range steps {
		env = inf.c.TypeStep(env, s)
		if env.Tau.Empty() {
			return env
		}
	}
	return env
}

// projectCondPath infers the projector of one condition disjunct
// (Σ ⊩ Pi : τi in the second primitive rule). Absolute disjuncts run from
// the root environment.
func (inf *Inferencer) projectCondPath(env Env, p xpathl.SimplePath) dtd.NameSet {
	res := dtd.NameSet{}
	for _, variant := range expandSimpleOrSelf(p) {
		steps := make([]xpathl.Step, len(variant.Steps))
		for i, s := range variant.Steps {
			steps[i] = xpathl.Step{SStep: s}
		}
		if len(steps) == 0 {
			continue
		}
		if variant.Absolute {
			root := RootEnv(inf.c.D)
			res.AddAll(inf.project(root.Tau, root.Kappa, steps))
			continue
		}
		res.AddAll(inf.project(env.Tau, env.Kappa, steps))
	}
	return res
}

// Infer computes the union projector for a set of XPathℓ paths — the
// whole-query (or query-bunch) analysis of §5.
func Infer(d *dtd.DTD, paths []*xpathl.Path) (*Projector, error) {
	return NewInferencer(d).inferAll(paths)
}

// InferNoContext is Infer with the Fig. 1 context machinery disabled —
// the naive upward typing the paper's §4.1 example rules out. It exists
// for the ablation benchmark quantifying the precision contexts buy; it
// is still sound, just coarser.
func InferNoContext(d *dtd.DTD, paths []*xpathl.Path) (*Projector, error) {
	inf := NewInferencer(d)
	inf.c.NoContext = true
	return inf.inferAll(paths)
}

func (inf *Inferencer) inferAll(paths []*xpathl.Path) (*Projector, error) {
	out := &Projector{D: inf.c.D, Names: dtd.NewNameSet(inf.c.D.Root)}
	for _, p := range paths {
		pr, err := inf.InferPath(p)
		if err != nil {
			return nil, err
		}
		out.Union(pr)
	}
	return out, nil
}

// Materialize widens a path so that the full subtrees of its results are
// kept (remark after Thm. 4.5): it appends descendant-or-self::node() —
// whose descendant variant realises A_E(τ″, descendant) — and, for
// attribute-bearing results, the attribute names.
func Materialize(p *xpathl.Path) *xpathl.Path {
	out := &xpathl.Path{Absolute: p.Absolute}
	out.Steps = append(out.Steps, p.Steps...)
	if n := len(out.Steps); n > 0 {
		last := out.Steps[n-1].SStep
		if last.Axis == xpath.DescendantOrSelf && last.Test.Kind == xpath.TestNode {
			return out // already materialised
		}
	}
	out.Steps = append(out.Steps, xpathl.Step{
		SStep: xpathl.SStep{Axis: xpath.DescendantOrSelf, Test: xpath.NodeTestNode},
	})
	return out
}

// InferMaterialized infers a projector that also keeps the subtrees (and
// attributes) of every result node, suitable for materialising query
// results.
func InferMaterialized(d *dtd.DTD, paths []*xpathl.Path) (*Projector, error) {
	widened := make([]*xpathl.Path, len(paths))
	for i, p := range paths {
		widened[i] = Materialize(p)
	}
	pr, err := Infer(d, widened)
	if err != nil {
		return nil, err
	}
	// A materialised subtree must keep its attributes as well: the
	// descendant closure of the base rule only covers tree children, so
	// add the attribute names of every result name and of its descendants
	// (the implementation-level attribute extension of §6).
	c := NewChecker(d)
	for _, p := range paths {
		result := c.Type(p)
		subtree := result.Union(d.ContentDescendants(result))
		pr.Names.AddAll(d.AttNames(subtree))
	}
	return pr, nil
}
