package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"xmlproj/internal/dtd"
	"xmlproj/internal/xpath"
	"xmlproj/internal/xpathl"
)

// largeDTD synthesises an XHTML-scale grammar: width top-level sections,
// each a depth-deep chain of containers whose leaves are mixed-content
// paragraphs sharing inline elements (the sharing makes upward axes
// genuinely ambiguous, like XHTML's %inline entities).
func largeDTD(width, depth int) *dtd.DTD {
	var sb strings.Builder
	sb.WriteString("<!ELEMENT doc (")
	for i := 0; i < width; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "sec%d_0", i)
	}
	sb.WriteString(")>\n")
	for i := 0; i < width; i++ {
		for d := 0; d < depth; d++ {
			if d == depth-1 {
				fmt.Fprintf(&sb, "<!ELEMENT sec%d_%d (para*)>\n", i, d)
			} else {
				fmt.Fprintf(&sb, "<!ELEMENT sec%d_%d (title?, sec%d_%d*)>\n", i, d, i, d+1)
			}
		}
	}
	sb.WriteString(`
<!ELEMENT title (#PCDATA)>
<!ELEMENT para (#PCDATA | em | strong | span | a)*>
<!ELEMENT em (#PCDATA | em | strong | span | a)*>
<!ELEMENT strong (#PCDATA | em | strong | span | a)*>
<!ELEMENT span (#PCDATA | em | strong | span | a)*>
<!ELEMENT a (#PCDATA)>
<!ATTLIST a href CDATA #REQUIRED>
`)
	return dtd.MustParseString(sb.String(), "doc")
}

// TestLargeDTDLongQuery reproduces the §6 stress: a large DTD (hundreds
// of element names) and an XPath expression of twenty-odd steps; the
// static analysis must stay well below the paper's half-second bound and
// produce a selective projector.
func TestLargeDTDLongQuery(t *testing.T) {
	d := largeDTD(30, 8) // 30·8 sections + inlines ≈ 250 element names
	if got := len(d.Names()); got < 240 {
		t.Fatalf("stress DTD has only %d names", got)
	}

	// A 20-step query: down a section chain, into paragraphs, through the
	// recursive inline soup and back up.
	steps := []string{"self::doc"}
	for i := 0; i < 8; i++ {
		steps = append(steps, fmt.Sprintf("child::sec7_%d", i))
	}
	steps = append(steps,
		"child::para", "descendant::em", "child::strong", "descendant::a",
		"parent::node()", "ancestor::para", "child::span", "descendant::a",
		"child::text()", "parent::node()", "ancestor::sec7_3",
	)
	src := strings.Join(steps, "/")
	paths, err := xpathl.FromQuery(xpath.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	pr, err := Infer(d, paths)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 500*time.Millisecond {
		t.Errorf("inference took %s, paper's bound is 0.5 s", elapsed)
	}
	// Other sections' chains must be pruned away entirely.
	for i := 0; i < 30; i++ {
		if i == 7 {
			continue
		}
		if pr.Has(dtd.Name(fmt.Sprintf("sec%d_4", i))) {
			t.Fatalf("projector keeps unrelated section sec%d_4: took %s", i, elapsed)
		}
	}
	if !pr.Has("sec7_7") || !pr.Has("para") {
		t.Fatalf("projector misses the queried spine: %s", pr)
	}
	t.Logf("large-DTD inference: %d names in DTD, %d in π, %s", len(d.Names()), pr.Names.Len(), elapsed)
}

// TestLargeDTDQueryBunch runs all-sections queries as a bunch, the §5
// multi-query scenario at scale.
func TestLargeDTDQueryBunch(t *testing.T) {
	d := largeDTD(20, 6)
	var all []*xpathl.Path
	start := time.Now()
	for i := 0; i < 20; i++ {
		src := fmt.Sprintf("/doc/sec%d_0//para[a]/title | /doc/sec%d_0//title", i, i)
		ps, err := xpathl.FromQuery(xpath.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, ps...)
	}
	pr, err := Infer(d, all)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Errorf("bunch inference took %s", elapsed)
	}
	if !pr.Has("title") {
		t.Fatalf("bunch projector misses title: %s", pr)
	}
	t.Logf("bunch of 20 queries over %d names: π has %d names, %s", len(d.Names()), pr.Names.Len(), elapsed)
}
