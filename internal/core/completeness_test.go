package core

import (
	"fmt"
	"testing"

	"xmlproj/internal/dtd"
	"xmlproj/internal/gen"
	"xmlproj/internal/prune"
	"xmlproj/internal/tree"
	"xmlproj/internal/xpath"
	"xmlproj/internal/xpathl"
)

// TestCompleteness exercises Thm. 4.7: on a *-guarded, non-recursive,
// parent-unambiguous DTD and strongly-specified queries, the inferred
// projector is minimal — removing any name Y (together with
// A_E({Y}, descendant), as the theorem prescribes) changes the query's
// result on some witness document.
func TestCompleteness(t *testing.T) {
	d, err := dtd.ParseString(`
<!ELEMENT store (dept*, audit?)>
<!ELEMENT dept (name, item*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT item (label, price?)>
<!ELEMENT label (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT audit (entry*)>
<!ELEMENT entry (#PCDATA)>
`, "store")
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsStarGuarded() || d.IsRecursive() || !d.IsParentUnambiguous() {
		t.Fatal("DTD must be in the completeness class")
	}

	queries := []string{
		"child::dept/child::item/child::label",
		"descendant::price",
		"child::dept[child::item]/child::name",
		"descendant::item/parent::dept/child::name",
		"child::audit/child::entry",
	}

	// A pool of random instances to hunt witnesses in.
	docs := make([]*tree.Document, 40)
	for i := range docs {
		docs[i] = gen.New(d, int64(i), gen.Options{MaxDepth: 6, MaxRepeat: 3}).Document()
	}

	results := func(q xpath.Expr, doc *tree.Document) string {
		v, err := xpath.NewEvaluator(doc).Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		ns := v.(xpath.NodeSet)
		out := ""
		for _, r := range ns {
			out += fmt.Sprintf("%d,", r.N.ID)
		}
		return out
	}

	for _, src := range queries {
		q := xpath.MustParse(src)
		paths, err := xpathl.FromQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := Infer(d, paths)
		if err != nil {
			t.Fatal(err)
		}
		for y := range pr.Names {
			if y == d.Root {
				continue // removing the root empties every document
			}
			cut := dtd.NewNameSet(y)
			cut.AddAll(d.ContentDescendants(cut))
			smaller := pr.Names.Minus(cut)
			witness := false
			for _, doc := range docs {
				full := results(q, doc)
				prunedDoc := prune.Tree(d, doc, smaller)
				if prunedDoc.Root == nil {
					if full != "" {
						witness = true
						break
					}
					continue
				}
				if results(q, prunedDoc) != full {
					witness = true
					break
				}
			}
			if !witness {
				t.Errorf("%s: removing %s (and descendants) from π = %s changes no result on %d instances — projector not minimal",
					src, y, pr, len(docs))
			}
		}
	}
}

// TestCompletenessFailsOutsideClass documents why the theorem's
// preconditions matter: on the paper's non-*-guarded recursive DTD the
// projector for self::c[a]/child::b keeps names (a, t) that no instance
// ever needs — soundly, but incompletely.
func TestCompletenessFailsOutsideClass(t *testing.T) {
	d, err := dtd.ParseString(`
<!ELEMENT c (a | b)>
<!ELEMENT a (a*, t)>
<!ELEMENT t (#PCDATA)>
<!ELEMENT b (#PCDATA)>
`, "c")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := xpathl.FromQuery(xpath.MustParse("self::c[a]/child::b"))
	if err != nil {
		t.Fatal(err)
	}
	pr, err := Infer(d, paths)
	if err != nil {
		t.Fatal(err)
	}
	// The query is empty on every instance (a and b are alternatives),
	// yet the projector keeps the condition's names — the incompleteness
	// the paper attributes to the unguarded union c → (a | b).
	if !pr.Has("a") {
		t.Skipf("projector unexpectedly precise (%s); the incompleteness example no longer applies", pr)
	}
	for _, doc := range []int64{0, 1, 2, 3} {
		instance := gen.New(d, doc, gen.Options{MaxDepth: 4}).Document()
		v, err := xpath.NewEvaluator(instance).Eval(xpath.MustParse("self::c[a]/child::b"))
		if err != nil {
			t.Fatal(err)
		}
		if len(v.(xpath.NodeSet)) != 0 {
			t.Fatalf("query should be empty on every instance")
		}
	}
}
