// Package xpathl implements XPathℓ, the fragment of XPath the paper's
// static analysis operates on (§3): paths of upward/downward steps whose
// predicates are unnested disjunctions of simple paths.
//
// The package also implements the two sound approximations that map full
// XPath into XPathℓ:
//
//   - §3.3: the path-extraction function P(Exp) turning an arbitrary
//     predicate expression into a disjunction of simple paths, using the
//     per-function table F(f, i);
//   - §4.3: the rewriting of the sibling, preceding and following axes
//     into parent/child/ancestor-or-self/descendant-or-self steps.
package xpathl

import (
	"strings"

	"xmlproj/internal/xpath"
)

// SStep is a simple step Axis::Test without predicate. Allowed axes:
// child, descendant, parent, ancestor, self, descendant-or-self,
// ancestor-or-self, attribute.
type SStep struct {
	Axis xpath.Axis
	Test xpath.NodeTest
}

func (s SStep) String() string {
	return s.Axis.String() + "::" + testString(s.Test)
}

func testString(t xpath.NodeTest) string {
	// The paper writes node/text without parentheses; we keep the XPath
	// form so rendered paths re-parse.
	return t.String()
}

// SimplePath is a predicate-free path (SPath in the paper's grammar),
// possibly absolute.
type SimplePath struct {
	Absolute bool
	Steps    []SStep
}

func (p SimplePath) String() string {
	var sb strings.Builder
	if p.Absolute {
		sb.WriteString("/")
	}
	for i, s := range p.Steps {
		if i > 0 {
			sb.WriteString("/")
		}
		sb.WriteString(s.String())
	}
	return sb.String()
}

// SelfNode is the always-true condition path self::node().
func SelfNode() SimplePath {
	return SimplePath{Steps: []SStep{{Axis: xpath.Self, Test: xpath.NodeTestNode}}}
}

// IsSelfNode reports whether the path is exactly self::node().
func (p SimplePath) IsSelfNode() bool {
	return !p.Absolute && len(p.Steps) == 1 &&
		p.Steps[0].Axis == xpath.Self && p.Steps[0].Test.Kind == xpath.TestNode
}

// Append returns p extended with an extra step.
func (p SimplePath) Append(s SStep) SimplePath {
	steps := make([]SStep, 0, len(p.Steps)+1)
	steps = append(steps, p.Steps...)
	// self::node() is the identity step: appending or prefixing it is a
	// no-op, and dropping it keeps extracted paths readable.
	if s.Axis == xpath.Self && s.Test.Kind == xpath.TestNode && len(steps) > 0 {
		return SimplePath{Absolute: p.Absolute, Steps: steps}
	}
	steps = append(steps, s)
	return SimplePath{Absolute: p.Absolute, Steps: steps}
}

// Prefix returns prefix/p (prefix must be relative-compatible: if p is
// absolute, p is returned unchanged, since absolute paths ignore context).
func (p SimplePath) Prefix(prefix []SStep) SimplePath {
	if p.Absolute {
		return p
	}
	steps := make([]SStep, 0, len(prefix)+len(p.Steps))
	steps = append(steps, prefix...)
	for _, s := range p.Steps {
		if s.Axis == xpath.Self && s.Test.Kind == xpath.TestNode && len(steps) > 0 {
			continue
		}
		steps = append(steps, s)
	}
	if len(steps) == 0 {
		return SelfNode()
	}
	return SimplePath{Steps: steps}
}

// Cond is an XPathℓ condition: a disjunction of simple paths.
type Cond struct {
	Disjuncts []SimplePath
}

func (c *Cond) String() string {
	parts := make([]string, len(c.Disjuncts))
	for i, p := range c.Disjuncts {
		parts[i] = p.String()
	}
	return strings.Join(parts, " or ")
}

// HasSelfNode reports whether one of the disjuncts is the always-true
// self::node() (the marker for non-structural sub-conditions, §3.3).
func (c *Cond) HasSelfNode() bool {
	for _, p := range c.Disjuncts {
		if p.IsSelfNode() {
			return true
		}
	}
	return false
}

// add inserts a disjunct, dropping duplicates.
func (c *Cond) add(p SimplePath) {
	s := p.String()
	for _, q := range c.Disjuncts {
		if q.String() == s {
			return
		}
	}
	c.Disjuncts = append(c.Disjuncts, p)
}

// Step is an XPathℓ step with an optional condition.
type Step struct {
	SStep
	Cond *Cond
}

func (s Step) String() string {
	base := s.SStep.String()
	if s.Cond == nil {
		return base
	}
	return base + "[" + s.Cond.String() + "]"
}

// Path is an XPathℓ path.
type Path struct {
	Absolute bool
	Steps    []Step
}

func (p *Path) String() string {
	var sb strings.Builder
	if p.Absolute {
		sb.WriteString("/")
	}
	for i, s := range p.Steps {
		if i > 0 {
			sb.WriteString("/")
		}
		sb.WriteString(s.String())
	}
	return sb.String()
}

// Clone returns a copy of the path sharing no mutable state (conditions
// are shared: they are never mutated after construction).
func (p *Path) Clone() *Path {
	out := &Path{Absolute: p.Absolute}
	out.Steps = append(out.Steps, p.Steps...)
	return out
}

// AppendStep returns p extended with a trailing step; appending
// self::node() is the identity.
func (p *Path) AppendStep(s SStep) *Path {
	if s.Axis == xpath.Self && s.Test.Kind == xpath.TestNode && len(p.Steps) > 0 {
		return p.Clone()
	}
	out := p.Clone()
	out.Steps = append(out.Steps, Step{SStep: s})
	return out
}

// Concat returns prefix/rel. If rel is absolute it ignores the prefix
// (absolute paths restart at the root).
func Concat(prefix, rel *Path) *Path {
	if rel.Absolute {
		return rel.Clone()
	}
	out := prefix.Clone()
	for _, s := range rel.Steps {
		if s.Axis == xpath.Self && s.Test.Kind == xpath.TestNode && s.Cond == nil && len(out.Steps) > 0 {
			continue
		}
		out.Steps = append(out.Steps, s)
	}
	return out
}

// Simple reports whether no step carries a condition, and returns the
// path as a SimplePath if so.
func (p *Path) Simple() (SimplePath, bool) {
	sp := SimplePath{Absolute: p.Absolute}
	for _, s := range p.Steps {
		if s.Cond != nil {
			return SimplePath{}, false
		}
		sp.Steps = append(sp.Steps, s.SStep)
	}
	return sp, true
}

// FromSimple wraps a SimplePath as a Path.
func FromSimple(sp SimplePath) *Path {
	p := &Path{Absolute: sp.Absolute}
	for _, s := range sp.Steps {
		p.Steps = append(p.Steps, Step{SStep: s})
	}
	return p
}

// ToXPath converts the XPathℓ path back into an equivalent full-XPath
// AST, used to evaluate approximated queries in tests.
func (p *Path) ToXPath() xpath.Expr {
	out := xpath.Path{Absolute: p.Absolute}
	for _, s := range p.Steps {
		st := xpath.Step{Axis: s.Axis, Test: s.Test}
		if s.Cond != nil {
			var e xpath.Expr
			for _, d := range s.Cond.Disjuncts {
				de := simpleToXPath(d)
				if e == nil {
					e = de
				} else {
					e = xpath.Binary{Op: xpath.OpOr, L: e, R: de}
				}
			}
			if e != nil {
				st.Preds = []xpath.Expr{e}
			}
		}
		out.Steps = append(out.Steps, st)
	}
	return xpath.PathExpr{Path: out}
}

func simpleToXPath(sp SimplePath) xpath.Expr {
	out := xpath.Path{Absolute: sp.Absolute}
	for _, s := range sp.Steps {
		out.Steps = append(out.Steps, xpath.Step{Axis: s.Axis, Test: s.Test})
	}
	return xpath.PathExpr{Path: out}
}

// RewriteAxis translates one full-XPath step into the equivalent (or
// soundly approximating) sequence of XPathℓ simple steps (§4.3). The node
// test lands on the last returned step.
func RewriteAxis(axis xpath.Axis, test xpath.NodeTest) []SStep {
	nodeStep := func(a xpath.Axis) SStep { return SStep{Axis: a, Test: xpath.NodeTestNode} }
	switch axis {
	case xpath.FollowingSibling, xpath.PrecedingSibling:
		// §4.3 second pass: Axis-sibling::Test ⇒ parent::node()/child::Test.
		return []SStep{nodeStep(xpath.Parent), {Axis: xpath.Child, Test: test}}
	case xpath.Following, xpath.Preceding:
		// §4.3 first pass (W3C): ancestor-or-self::node()/
		// (Axis-sibling)::node()/descendant-or-self::Test, then the second
		// pass on the sibling step.
		return []SStep{
			nodeStep(xpath.AncestorOrSelf),
			nodeStep(xpath.Parent),
			nodeStep(xpath.Child),
			{Axis: xpath.DescendantOrSelf, Test: test},
		}
	default:
		return []SStep{{Axis: axis, Test: test}}
	}
}
