package xpathl

import (
	"strings"
	"testing"

	"xmlproj/internal/xpath"
)

// approx parses a full XPath query and returns the single approximated
// XPathℓ path rendered as a string.
func approx(t *testing.T, src string) string {
	t.Helper()
	ps, err := FromQuery(xpath.MustParse(src))
	if err != nil {
		t.Fatalf("FromQuery(%q): %v", src, err)
	}
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return strings.Join(parts, " ; ")
}

func TestApproxPlainPaths(t *testing.T) {
	cases := map[string]string{
		"child::a/descendant::b":  "child::a/descendant::b",
		"/a/b":                    "/self::a/child::b",
		"a//b":                    "child::a/descendant-or-self::node()/child::b",
		"parent::node()/child::a": "parent::node()/child::a",
	}
	for src, want := range cases {
		if got := approx(t, src); got != want {
			t.Errorf("approx(%q) = %q, want %q", src, got, want)
		}
	}
}

func TestApproxSiblingAxes(t *testing.T) {
	// §4.3 second pass.
	if got := approx(t, "following-sibling::a"); got != "parent::node()/child::a" {
		t.Errorf("following-sibling::a = %q", got)
	}
	if got := approx(t, "preceding-sibling::a"); got != "parent::node()/child::a" {
		t.Errorf("preceding-sibling::a = %q", got)
	}
}

func TestApproxFollowingPreceding(t *testing.T) {
	// §4.3 both passes.
	want := "ancestor-or-self::node()/parent::node()/child::node()/descendant-or-self::a"
	if got := approx(t, "following::a"); got != want {
		t.Errorf("following::a = %q, want %q", got, want)
	}
	if got := approx(t, "preceding::a"); got != want {
		t.Errorf("preceding::a = %q, want %q", got, want)
	}
}

func TestApproxUnion(t *testing.T) {
	got := approx(t, "a | b/c")
	if got != "child::a ; child::b/child::c" {
		t.Errorf("union = %q", got)
	}
}

func TestApproxStructuralPredicate(t *testing.T) {
	// [child::a] is purely structural: no self::node() safety disjunct.
	got := approx(t, "descendant::node()[a]")
	if got != "descendant::node()[child::a]" {
		t.Errorf("got %q", got)
	}
	got = approx(t, "x[a/b or c]")
	if got != "child::x[child::a/child::b or child::c]" {
		t.Errorf("got %q", got)
	}
}

// The paper's §3.3 example: [position()>1 and parent::node/book/author =
// "Dante" and year>1313] approximates to [self::node or
// parent::node/book/author(/dos) or year(/dos)].
func TestApproxPaperExample(t *testing.T) {
	src := `x[position() > 1 and parent::node()/book/author = "Dante" and year > 1313]`
	ps, err := FromQuery(xpath.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	cond := ps[0].Steps[0].Cond
	if cond == nil {
		t.Fatal("no condition extracted")
	}
	if !cond.HasSelfNode() {
		t.Fatalf("position() must contribute self::node(): %s", cond)
	}
	var hasAuthor, hasYear bool
	for _, d := range cond.Disjuncts {
		s := d.String()
		if strings.HasPrefix(s, "parent::node()/child::book/child::author") {
			hasAuthor = true
		}
		if strings.HasPrefix(s, "child::year") {
			hasYear = true
		}
	}
	if !hasAuthor || !hasYear {
		t.Fatalf("missing structural disjuncts: %s", cond)
	}
}

// The paper's §3.3 discussion: descendant::node()[child::a] restricts,
// while descendant::node()[not(child::a)] and
// descendant::node()[count(child::a) < 5] must include self::node().
func TestApproxNonStructuralFunctions(t *testing.T) {
	ps := MustFromQuery(xpath.MustParse("descendant::node()[not(a)]"))
	cond := ps[0].Steps[0].Cond
	if !cond.HasSelfNode() {
		t.Fatalf("not(): missing self::node(): %s", cond)
	}
	found := false
	for _, d := range cond.Disjuncts {
		if d.String() == "child::a" {
			found = true
		}
	}
	if !found {
		t.Fatalf("not(): argument path not extracted: %s", cond)
	}

	ps = MustFromQuery(xpath.MustParse("descendant::node()[count(a) < 5]"))
	cond = ps[0].Steps[0].Cond
	if !cond.HasSelfNode() {
		t.Fatalf("count()<5: missing self::node(): %s", cond)
	}
}

func TestApproxValueComparisonAppendsDOS(t *testing.T) {
	// [a = "x"]: a's string-value is needed, so descendant-or-self::node()
	// is appended (see the package comment on the deliberate
	// strengthening of the paper's elided definition).
	ps := MustFromQuery(xpath.MustParse(`b[a = "x"]`))
	cond := ps[0].Steps[0].Cond
	want := "child::a/descendant-or-self::node()"
	found := false
	for _, d := range cond.Disjuncts {
		if d.String() == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("cond %s misses %s", cond, want)
	}
	if cond.HasSelfNode() {
		t.Fatalf("pure value comparison on paths should still restrict: %s", cond)
	}
}

func TestApproxCountKeepsSelfStep(t *testing.T) {
	// F(count, 1) = self::node(): the argument subtree is NOT needed.
	ps := MustFromQuery(xpath.MustParse("b[count(a) = 1]"))
	cond := ps[0].Steps[0].Cond
	for _, d := range cond.Disjuncts {
		if strings.Contains(d.String(), "descendant-or-self") {
			t.Fatalf("count() argument got a dos step: %s", cond)
		}
	}
}

func TestApproxStringNeedsSubtree(t *testing.T) {
	// F(string, 1) = descendant-or-self::node().
	ps := MustFromQuery(xpath.MustParse(`b[contains(a, "x")]`))
	cond := ps[0].Steps[0].Cond
	found := false
	for _, d := range cond.Disjuncts {
		if d.String() == "child::a/descendant-or-self::node()" {
			found = true
		}
	}
	if !found {
		t.Fatalf("contains() argument lacks dos: %s", cond)
	}
}

func TestApproxPositionalOnly(t *testing.T) {
	for _, src := range []string{"a[3]", "a[position() = last()]", "a[position() > 1]"} {
		ps := MustFromQuery(xpath.MustParse(src))
		cond := ps[0].Steps[0].Cond
		if !cond.HasSelfNode() {
			t.Errorf("%s: positional predicate must yield self::node(): %s", src, cond)
		}
	}
}

func TestApproxNestedPredicates(t *testing.T) {
	// [a[b]/c] flattens into a/c plus a/b.
	ps := MustFromQuery(xpath.MustParse("x[a[b]/c]"))
	cond := ps[0].Steps[0].Cond
	var got []string
	for _, d := range cond.Disjuncts {
		got = append(got, d.String())
	}
	s := strings.Join(got, " ; ")
	if !strings.Contains(s, "child::a/child::c") || !strings.Contains(s, "child::a/child::b") {
		t.Fatalf("nested flattening wrong: %s", s)
	}
}

func TestApproxMultiplePredicatesMerge(t *testing.T) {
	ps := MustFromQuery(xpath.MustParse("x[a][b]"))
	cond := ps[0].Steps[0].Cond
	if len(cond.Disjuncts) != 2 {
		t.Fatalf("two predicates should merge into one cond: %s", cond)
	}
}

func TestApproxPredicateWithSiblingAxis(t *testing.T) {
	// Axis rewriting applies inside predicates too.
	ps := MustFromQuery(xpath.MustParse("x[following-sibling::a]"))
	cond := ps[0].Steps[0].Cond
	if cond.Disjuncts[0].String() != "parent::node()/child::a" {
		t.Fatalf("sibling axis in predicate: %s", cond)
	}
}

func TestApproxAbsolutePredicatePath(t *testing.T) {
	ps := MustFromQuery(xpath.MustParse("x[/r/a]"))
	cond := ps[0].Steps[0].Cond
	found := false
	for _, d := range cond.Disjuncts {
		if d.Absolute && d.String() == "/self::r/child::a" {
			found = true
		}
	}
	if !found {
		t.Fatalf("absolute predicate path lost: %s", cond)
	}
}

func TestApproxVariablePredicate(t *testing.T) {
	ps := MustFromQuery(xpath.MustParse("x[$v]"))
	if !ps[0].Steps[0].Cond.HasSelfNode() {
		t.Fatal("variable predicate must be conservative")
	}
}

func TestFromQueryErrors(t *testing.T) {
	for _, src := range []string{"1 + 2", `"s"`, "count(a)", "$x/a", "(a)[1]"} {
		if _, err := FromQuery(xpath.MustParse(src)); err == nil {
			t.Errorf("FromQuery(%q) succeeded, want error", src)
		}
	}
}

func TestToXPathRoundTrip(t *testing.T) {
	// Approximation output must re-parse as valid XPath.
	for _, src := range []string{
		"descendant::node()[a or not(b)]",
		"/site//item[name]/description",
		"x[following::k]",
		"a[b = 3]/c",
	} {
		ps := MustFromQuery(xpath.MustParse(src))
		for _, p := range ps {
			rendered := p.ToXPath().String()
			if _, err := xpath.Parse(rendered); err != nil {
				t.Errorf("approx(%q) = %q does not re-parse: %v", src, rendered, err)
			}
		}
	}
}

func TestSimplePathHelpers(t *testing.T) {
	if !SelfNode().IsSelfNode() {
		t.Fatal("SelfNode not self-node")
	}
	p := SimplePath{Steps: []SStep{{Axis: xpath.Child, Test: xpath.NameTest("a")}}}
	if p.IsSelfNode() {
		t.Fatal("child::a is not self-node")
	}
	// Appending self::node() is the identity.
	if got := p.Append(SStep{Axis: xpath.Self, Test: xpath.NodeTestNode}); got.String() != "child::a" {
		t.Fatalf("append self = %s", got)
	}
	// Prefixing onto an absolute path is the identity.
	abs := SimplePath{Absolute: true, Steps: p.Steps}
	if got := abs.Prefix([]SStep{{Axis: xpath.Child, Test: xpath.NameTest("r")}}); !got.Absolute || len(got.Steps) != 1 {
		t.Fatalf("prefix abs = %s", got)
	}
	// Prefix merges and drops redundant self steps.
	sp := SelfNode().Prefix([]SStep{{Axis: xpath.Child, Test: xpath.NameTest("r")}})
	if sp.String() != "child::r" {
		t.Fatalf("prefix self = %s", sp)
	}
}

func TestPathSimple(t *testing.T) {
	ps := MustFromQuery(xpath.MustParse("a/b"))
	sp, ok := ps[0].Simple()
	if !ok || sp.String() != "child::a/child::b" {
		t.Fatalf("Simple = %v %q", ok, sp)
	}
	ps = MustFromQuery(xpath.MustParse("a[b]"))
	if _, ok := ps[0].Simple(); ok {
		t.Fatal("conditioned path reported simple")
	}
}
