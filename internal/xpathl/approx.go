package xpathl

import (
	"fmt"

	"xmlproj/internal/xpath"
)

// This file implements §3.3: rewriting arbitrary XPath predicates into
// XPathℓ conditions via the path-extraction function P(Exp), and the
// approximation of whole queries.
//
// One deliberate strengthening over the paper's (elided) formal
// definition: operands of value comparisons (=, <, eq, …) get
// descendant-or-self::node() appended, because evaluating the comparison
// needs the operands' string-values, i.e. their text subtrees. The paper
// relegates the per-function/per-operator details to its footnote 3; this
// choice keeps the inferred projectors sound (TestSoundness* exercise it).

// FuncArgAxis is the paper's F(f, i): the step to append to paths
// extracted from the i-th argument of function f. It returns self::node()
// for functions that only need the nodes themselves, and
// descendant-or-self::node() for functions that need string-values.
func FuncArgAxis(fn string, argIdx int) SStep {
	switch fn {
	case "count", "not", "empty", "exists", "boolean", "name", "local-name",
		"position", "last", "zero-or-one", "exactly-one", "one-or-more":
		return SStep{Axis: xpath.Self, Test: xpath.NodeTestNode}
	default:
		// string, number, contains, substring*, normalize-space, sum, avg,
		// min, max, floor, ceiling, round, translate, concat, data, …
		return SStep{Axis: xpath.DescendantOrSelf, Test: xpath.NodeTestNode}
	}
}

// structuralFuncs are functions whose truth depends only on the presence
// of nodes, so that extracted argument paths may restrict the projector
// without the {self::node} safety disjunct. Everything else (not, count
// comparisons, arithmetic, string tests …) is non-structural: its paths
// are kept for data needs but self::node() must be added so no candidate
// node is pruned away (§3.3).
var structuralFuncs = map[string]bool{
	"exists": true, "boolean": true,
}

// ExtractCond implements P(Exp): it approximates a full-XPath predicate
// expression by a set of simple paths (relative to the predicate's
// context node) whose disjunction soundly over-approximates the
// predicate's data needs.
func ExtractCond(e xpath.Expr) []SimplePath {
	x := &extractor{}
	paths := x.extract(e, true)
	if len(paths) == 0 {
		// A predicate with no structural content at all (e.g. [3],
		// [position() < last()]) must not restrict anything.
		paths = []SimplePath{SelfNode()}
	}
	return dedup(paths)
}

type extractor struct{}

// extract returns the simple paths of e evaluated for its effective
// boolean value (a predicate or an or/and operand). Non-structural parts
// that may be true regardless of structure — truthy constants, function
// results, variables — contribute the always-true self::node(), which
// neutralises restriction (§3.3); falsy constants contribute nothing (a
// disjunct that is never true cannot satisfy the predicate).
func (x *extractor) extract(e xpath.Expr, restricting bool) []SimplePath {
	switch t := e.(type) {
	case xpath.Literal:
		if len(t.S) > 0 {
			return []SimplePath{SelfNode()} // [..."x" or P]: always true
		}
		return nil
	case xpath.Number:
		// A bare number in a predicate is positional ([2]); as an or/and
		// operand its effective boolean value decides. Either way a
		// truthy constant must not restrict.
		if t.F != 0 && t.F == t.F { // non-zero, non-NaN
			return []SimplePath{SelfNode()}
		}
		return nil
	case xpath.Var:
		// A free variable's value cannot be analysed here; keep the
		// context node.
		return []SimplePath{SelfNode()}
	case xpath.Neg:
		return withSelf(x.valueOperand(t.E))
	case xpath.Binary:
		switch t.Op {
		case xpath.OpOr, xpath.OpAnd, xpath.OpUnion:
			return append(x.extract(t.L, restricting), x.extract(t.R, restricting)...)
		case xpath.OpEq, xpath.OpNeq, xpath.OpLt, xpath.OpLe, xpath.OpGt, xpath.OpGe:
			// Value comparison: operands' string-values are needed. The
			// comparison can only be true when its node-set operands are
			// non-empty, so restriction by the operand paths stays sound
			// and no self::node() is added.
			return append(x.valueOperand(t.L), x.valueOperand(t.R)...)
		default: // arithmetic: non-structural truth
			return withSelf(append(x.valueOperand(t.L), x.valueOperand(t.R)...))
		}
	case xpath.Call:
		var out []SimplePath
		for i, a := range t.Args {
			step := FuncArgAxis(t.Name, i)
			for _, p := range x.argOperand(a) {
				out = append(out, p.Append(step))
			}
		}
		if !structuralFuncs[t.Name] {
			out = append(out, SelfNode())
		}
		return out
	case xpath.PathExpr:
		return x.pathPaths(t, SStep{Axis: xpath.Self, Test: xpath.NodeTestNode})
	}
	return []SimplePath{SelfNode()}
}

// argOperand extracts paths from a function argument: constants carry no
// data needs, path operands keep their skeleton (the caller appends the
// per-function F(f, i) step, which decides how much of the subtree the
// function consumes), everything else recurses.
func (x *extractor) argOperand(e xpath.Expr) []SimplePath {
	switch t := e.(type) {
	case xpath.Literal, xpath.Number:
		return nil
	case xpath.PathExpr:
		return x.pathPaths(t, SStep{Axis: xpath.Self, Test: xpath.NodeTestNode})
	}
	return x.extract(e, false)
}

// valueOperand extracts paths from a comparison/arithmetic operand. A
// direct path operand gets descendant-or-self::node() appended (its
// string-value is needed); constants carry no data needs (unlike in
// boolean position, where a truthy constant must block restriction);
// other shapes recurse normally (their own F-steps already account for
// data needs).
func (x *extractor) valueOperand(e xpath.Expr) []SimplePath {
	switch t := e.(type) {
	case xpath.Literal, xpath.Number:
		return nil
	case xpath.PathExpr:
		return x.pathPaths(t, SStep{Axis: xpath.DescendantOrSelf, Test: xpath.NodeTestNode})
	}
	return x.extract(e, false)
}

// pathPaths flattens a (possibly predicated, possibly absolute) path
// expression into simple paths: the skeleton with `final` appended, plus
// one path per nested predicate, prefixed by the skeleton up to the step
// carrying it.
func (x *extractor) pathPaths(pe xpath.PathExpr, final SStep) []SimplePath {
	if pe.Filter != nil {
		// $x/path or (expr)/path inside a plain XPath predicate: the
		// XQuery layer resolves variables before approximation; here we
		// conservatively keep the context node and any nested structure.
		out := []SimplePath{SelfNode()}
		for _, pr := range pe.FilterPreds {
			out = append(out, x.extract(pr, false)...)
		}
		for _, st := range pe.Path.Steps {
			for _, pr := range st.Preds {
				out = append(out, x.extract(pr, false)...)
			}
		}
		return out
	}
	var skeleton []SStep
	out := []SimplePath{}
	for _, st := range pe.Path.Steps {
		first := len(skeleton) == 0
		skeleton = append(skeleton, RewriteAxis(st.Axis, st.Test)...)
		if first && pe.Path.Absolute {
			adjustAbsoluteFirst(skeleton)
		}
		for _, pr := range st.Preds {
			prefix := make([]SStep, len(skeleton))
			copy(prefix, skeleton)
			for _, np := range x.extract(pr, false) {
				p := np.Prefix(prefix)
				p.Absolute = p.Absolute || pe.Path.Absolute && !np.Absolute
				out = append(out, p)
			}
		}
	}
	main := SimplePath{Absolute: pe.Path.Absolute, Steps: skeleton}
	if len(skeleton) == 0 {
		main = SelfNode()
		main.Absolute = pe.Path.Absolute
	}
	out = append([]SimplePath{main.Append(final)}, out...)
	return out
}

func withSelf(paths []SimplePath) []SimplePath {
	return append(paths, SelfNode())
}

func dedup(paths []SimplePath) []SimplePath {
	seen := map[string]bool{}
	out := paths[:0]
	for _, p := range paths {
		k := p.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, p)
	}
	return out
}

// FromQuery approximates a full XPath query by one or more XPathℓ paths
// (§3.3 + §4.3): sibling/preceding/following axes are rewritten, every
// step's predicates are collapsed into one disjunctive condition via
// P(Exp), and top-level unions yield one path each. The projector
// inferred for the returned paths is sound for the original query.
func FromQuery(e xpath.Expr) ([]*Path, error) {
	switch t := e.(type) {
	case xpath.Binary:
		if t.Op != xpath.OpUnion {
			return nil, fmt.Errorf("xpathl: %s is not a query (top-level %s)", e, t.Op)
		}
		l, err := FromQuery(t.L)
		if err != nil {
			return nil, err
		}
		r, err := FromQuery(t.R)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	case xpath.PathExpr:
		if t.Filter != nil {
			return nil, fmt.Errorf("xpathl: filter expressions are not queries: %s", e)
		}
		return []*Path{approximatePath(t.Path)}, nil
	default:
		return nil, fmt.Errorf("xpathl: %T is not a query", e)
	}
}

// MustFromQuery is FromQuery for known-good queries.
func MustFromQuery(e xpath.Expr) []*Path {
	ps, err := FromQuery(e)
	if err != nil {
		panic(err)
	}
	return ps
}

// adjustAbsoluteFirst fixes up the leading step of an absolute path: the
// analysis starts at the root *element* while "/" denotes the document
// node, whose children are exactly the root element and whose descendants
// are the root element and everything below it.
func adjustAbsoluteFirst(steps []SStep) {
	if len(steps) == 0 {
		return
	}
	switch steps[0].Axis {
	case xpath.Child:
		steps[0].Axis = xpath.Self
	case xpath.Descendant:
		steps[0].Axis = xpath.DescendantOrSelf
	}
}

// MakeAbsolute roots a relative path at the document node: it marks the
// path absolute and applies the document-node adjustment to its first
// step. Used when a free variable is assumed bound to the document root.
func MakeAbsolute(p *Path) *Path {
	if p.Absolute {
		return p.Clone()
	}
	out := p.Clone()
	out.Absolute = true
	if len(out.Steps) > 0 {
		switch out.Steps[0].Axis {
		case xpath.Child:
			out.Steps[0].Axis = xpath.Self
		case xpath.Descendant:
			out.Steps[0].Axis = xpath.DescendantOrSelf
		}
	}
	return out
}

func approximatePath(p xpath.Path) *Path {
	out := &Path{Absolute: p.Absolute}
	for _, st := range p.Steps {
		steps := RewriteAxis(st.Axis, st.Test)
		if p.Absolute && len(out.Steps) == 0 {
			adjustAbsoluteFirst(steps)
		}
		for i, s := range steps {
			ls := Step{SStep: s}
			if i == len(steps)-1 && len(st.Preds) > 0 {
				cond := &Cond{}
				for _, pr := range st.Preds {
					for _, sp := range ExtractCond(pr) {
						cond.add(sp)
					}
				}
				ls.Cond = cond
			}
			out.Steps = append(out.Steps, ls)
		}
	}
	return out
}
